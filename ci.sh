#!/bin/sh
# CI gate: build, vet, race-enabled tests.
#
#   ./ci.sh          full gate (build + vet + race tests)
#   ./ci.sh quick    race-disabled short tests only
#
# The race run matters: the sigbuild fan-out in core.Analyze, the parallel
# per-app corpus mode in evaluate.RunAllParallel, and the obs shard/drain
# protocol are all exercised concurrently by the test suite.
set -eu
cd "$(dirname "$0")"

if [ "${1:-}" = "quick" ]; then
    exec go test -short ./...
fi

echo "== gofmt"
# Fail on any unformatted file; gofmt -l prints offenders but exits 0, so
# turn non-empty output into a failure explicitly.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:"
    echo "$unformatted"
    exit 1
fi

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== fault injection under -race"
# Robustness gate: injected panics and hangs in every pipeline phase must
# degrade into diagnostics, not crashes, with the per-job recovery paths
# racing against the worker pools.
go test -race -run 'TestFaultInjection|TestDecodeFault|TestInjectedHang|TestEvaluateAggregates|TestDegradation' .

echo "== go test -race"
go test -race ./...

echo "== result cache smoke under -race"
# End-to-end warm-path gate on the real binaries: analyze the same .apkb
# twice into one cache directory; the second (warm) run must produce an
# identical report — modulo the run-local timing lines — and its profile
# must record exactly one report-cache hit.
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
go run -race ./cmd/apkgen -out "$smoke" "radio reddit"
apkb=$(ls "$smoke"/*.apkb)
go run -race ./cmd/extractocol -cache "$smoke/cache" "$apkb" \
    | grep -v -e 'analysis time' -e 'phases:' > "$smoke/cold.txt"
go run -race ./cmd/extractocol -cache "$smoke/cache" "$apkb" \
    | grep -v -e 'analysis time' -e 'phases:' > "$smoke/warm.txt"
diff "$smoke/cold.txt" "$smoke/warm.txt"
go run -race ./cmd/extractocol -cache "$smoke/cache" -profile "$apkb" \
    | grep -q '"cache_report_hits": 1'

echo "== differential harness under -race"
# Correctness gate over the seeded generative corpus: 100 generated apps,
# every equivalence axis (same-seed regeneration, serial/parallel,
# cold/warm cache, budgeted/unbudgeted, oracle/indexed pairing, and the
# interpretive-vs-compiled signature matcher over recorded and labeled
# traffic) must be byte-identical. The deadline feeds the budgeted axis;
# generous on purpose — a budget that trips under -race is itself a
# mismatch.
go run -race ./cmd/evaluate -gen 1729:100 -deadline 5m

echo "== ops plane smoke under -race"
# Live-telemetry gate: a differential run serves /metrics and /healthz
# while it works. The scrape happens mid-run — it must see the per-phase
# latency histogram series and the cache/budget counters — and the run
# must still shut down cleanly and finish byte-identical.
go run -race ./cmd/evaluate -gen 1729:20 -ops 127.0.0.1:0 \
    > "$smoke/gen.txt" 2> "$smoke/gen.err" &
genpid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#^ops: serving on ##p' "$smoke/gen.err" | head -n 1)
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "ops listener never announced its address"
    cat "$smoke/gen.err"
    exit 1
fi
scraped=0
for _ in $(seq 1 400); do
    if curl -sf "$addr/metrics" > "$smoke/metrics.txt" 2>/dev/null \
        && grep -q 'extractocol_phase_latency_seconds_bucket' "$smoke/metrics.txt"; then
        scraped=1
        break
    fi
    kill -0 "$genpid" 2>/dev/null || break
    sleep 0.05
done
if [ "$scraped" != 1 ]; then
    echo "never scraped phase latency histograms from $addr"
    cat "$smoke/metrics.txt" 2>/dev/null || true
    exit 1
fi
grep -q 'extractocol_phase_latency_seconds_bucket{phase="slice"' "$smoke/metrics.txt"
grep -q 'extractocol_phase_seconds_total' "$smoke/metrics.txt"
grep -q 'extractocol_cache_report_hits_total' "$smoke/metrics.txt"
grep -q 'extractocol_budget_exceeded_total' "$smoke/metrics.txt"
curl -sf "$addr/healthz" | grep -q '"status":"ok"'
wait "$genpid"
grep -q 'OK: all axes byte-identical' "$smoke/gen.txt"

echo "== classifier smoke under -race"
# End-to-end gate on the classifier binary: both matcher backends over
# seeded labeled traffic must produce identical classifications, and the
# regex-derived ground-truth labels must be reproduced in full.
go run -race ./cmd/classify -app "radio reddit" -gen 7:500 -check \
    | tee "$smoke/classify.txt"
grep -q 'ground-truth labels reproduced: 500/500' "$smoke/classify.txt"

echo "== bench smoke"
go test -run=NONE -bench=. -benchtime=1x .

echo "CI OK"

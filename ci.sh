#!/bin/sh
# CI gate: build, vet, race-enabled tests.
#
#   ./ci.sh          full gate (build + vet + race tests)
#   ./ci.sh quick    race-disabled short tests only
#
# The race run matters: the sigbuild fan-out in core.Analyze, the parallel
# per-app corpus mode in evaluate.RunAllParallel, and the obs shard/drain
# protocol are all exercised concurrently by the test suite.
set -eu
cd "$(dirname "$0")"

if [ "${1:-}" = "quick" ]; then
    exec go test -short ./...
fi

echo "== gofmt"
# Fail on any unformatted file; gofmt -l prints offenders but exits 0, so
# turn non-empty output into a failure explicitly.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:"
    echo "$unformatted"
    exit 1
fi

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== fault injection under -race"
# Robustness gate: injected panics and hangs in every pipeline phase must
# degrade into diagnostics, not crashes, with the per-job recovery paths
# racing against the worker pools.
go test -race -run 'TestFaultInjection|TestDecodeFault|TestInjectedHang|TestEvaluateAggregates|TestDegradation' .

echo "== go test -race"
go test -race ./...

echo "== result cache smoke under -race"
# End-to-end warm-path gate on the real binaries: analyze the same .apkb
# twice into one cache directory; the second (warm) run must produce an
# identical report — modulo the run-local timing lines — and its profile
# must record exactly one report-cache hit.
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
go run -race ./cmd/apkgen -out "$smoke" "radio reddit"
apkb=$(ls "$smoke"/*.apkb)
go run -race ./cmd/extractocol -cache "$smoke/cache" "$apkb" \
    | grep -v -e 'analysis time' -e 'phases:' > "$smoke/cold.txt"
go run -race ./cmd/extractocol -cache "$smoke/cache" "$apkb" \
    | grep -v -e 'analysis time' -e 'phases:' > "$smoke/warm.txt"
diff "$smoke/cold.txt" "$smoke/warm.txt"
go run -race ./cmd/extractocol -cache "$smoke/cache" -profile "$apkb" \
    | grep -q '"cache_report_hits": 1'

echo "== differential harness under -race"
# Correctness gate over the seeded generative corpus: 100 generated apps,
# every equivalence axis (same-seed regeneration, serial/parallel,
# cold/warm cache, budgeted/unbudgeted, oracle/indexed pairing, and the
# interpretive-vs-compiled signature matcher over recorded and labeled
# traffic) must be byte-identical. The deadline feeds the budgeted axis;
# generous on purpose — a budget that trips under -race is itself a
# mismatch.
go run -race ./cmd/evaluate -gen 1729:100 -deadline 5m

echo "== classifier smoke under -race"
# End-to-end gate on the classifier binary: both matcher backends over
# seeded labeled traffic must produce identical classifications, and the
# regex-derived ground-truth labels must be reproduced in full.
go run -race ./cmd/classify -app "radio reddit" -gen 7:500 -check \
    | tee "$smoke/classify.txt"
grep -q 'ground-truth labels reproduced: 500/500' "$smoke/classify.txt"

echo "== bench smoke"
go test -run=NONE -bench=. -benchtime=1x .

echo "CI OK"

// FuzzCorpusSpec drives the generative corpus from raw bytes: any input
// decodes (via corpus.DecodeSpec) into a clamped, generatable AppSpec, and
// the resulting app must survive the full pipeline. Two properties are
// pinned for every input: a budgeted core.Analyze finishes without
// panicking, and a warm-cache replay of the same program reproduces the
// stored report byte-for-byte (the codec round-trip on arbitrary trait
// combinations, not just the hand-built corpus).
package extractocol

import (
	"testing"
	"time"

	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/evaluate"
	"extractocol/internal/resultcache"
)

func FuzzCorpusSpec(f *testing.F) {
	// Seeds spanning the trait space: empty, single-byte, every-scenario
	// bitmask, and a long mixed draw.
	f.Add([]byte{})
	f.Add([]byte{7})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 0x3f})
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec := corpus.DecodeSpec(data)
		app := corpus.Generate(spec)

		// Budgeted analysis must degrade, never panic: wall-clock plus
		// deterministic step budgets tight enough that hostile trait
		// combinations actually trip them.
		budgeted := core.NewOptions()
		budgeted.Deadline = 10 * time.Second
		budgeted.MaxSliceSteps = 200_000
		budgeted.MaxFixpointIters = 100_000
		if _, err := core.Analyze(app.Prog, budgeted); err != nil {
			t.Fatalf("budgeted analyze: %v", err)
		}

		// Warm-cache replay: store on the first clean run, load on the
		// second, and require byte-identical canonical reports. Only
		// deterministic options participate — a deadline could make the
		// stored run time-dependent.
		cache, err := resultcache.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		opts := core.NewOptions()
		key, err := resultcache.KeyForProgram(app.Prog, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Cache = cache
		opts.CacheKey = key
		cold, err := core.Analyze(app.Prog, opts)
		if err != nil {
			t.Fatalf("cold analyze: %v", err)
		}
		warm, err := core.Analyze(app.Prog, opts)
		if err != nil {
			t.Fatalf("warm analyze: %v", err)
		}
		cb, err := evaluate.CanonicalReport(cold)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := evaluate.CanonicalReport(warm)
		if err != nil {
			t.Fatal(err)
		}
		if string(cb) != string(wb) {
			t.Fatalf("warm-cache replay diverges for %q:\n--- cold ---\n%s\n--- warm ---\n%s",
				spec.Name, cb, wb)
		}
	})
}

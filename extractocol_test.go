package extractocol

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"extractocol/internal/corpus"
	"extractocol/internal/dex"
)

func TestFacadeAnalyzeFile(t *testing.T) {
	app := corpus.RadioReddit()
	path := filepath.Join(t.TempDir(), "rr.apkb")
	if err := dex.WriteFile(path, app.Prog); err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Transactions) != 6 {
		t.Fatalf("transactions = %d, want 6", len(rep.Transactions))
	}

	text := TextReport(rep)
	if !strings.Contains(text, "api/vote") {
		t.Error("text report missing vote transaction")
	}
	data, err := JSONReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("JSON report invalid: %v", err)
	}
	if dot := DOTReport(rep); !strings.HasPrefix(dot, "digraph") {
		t.Error("DOT report malformed")
	}
}

func TestFacadeAnalyzeWithOptions(t *testing.T) {
	app := corpus.Kayak()
	opts := DefaultOptions()
	opts.ScopePrefix = "com.kayak."
	rep, err := Analyze(app.Prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Transactions) != 46 {
		t.Fatalf("scoped transactions = %d, want 46", len(rep.Transactions))
	}
}

func TestFacadeAnalyzeFileMissing(t *testing.T) {
	if _, err := AnalyzeFile(filepath.Join(t.TempDir(), "nope.apkb")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

// ExampleAnalyze demonstrates the library API: decode a binary, analyze
// it, and inspect the reconstructed transactions.
func ExampleAnalyze() {
	app := corpus.RadioReddit()
	rep, err := Analyze(app.Prog, DefaultOptions())
	if err != nil {
		panic(err)
	}
	for _, tx := range rep.Transactions {
		if tx.Request.Method == "POST" && strings.Contains(tx.URIRegex(), "login") {
			fmt.Println(tx.Request.Method, "login transaction found; paired:", tx.Paired)
		}
	}
	// Output: POST login transaction found; paired: true
}

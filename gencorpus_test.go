// Seeded generative corpus: scenario coverage, generator determinism, and
// the default-report pin. The scenario tests hold each protocol-surface
// extension (gzip and chunked transfer encodings, multipart uploads,
// cookie sessions, token-refresh chains, pagination cursors, long-poll
// retry loops) to a
// concrete analysis outcome — non-empty signatures and, for the session
// scenarios, inter-transaction dependency edges. The determinism tests
// pin that corpus.Rand is a pure function of its seed, and the digest
// test pins the default 34-app corpus reports byte-for-byte so opt-in
// report layers (the security lens) can never leak into default output.
package extractocol

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/dex"
	"extractocol/internal/evaluate"
	"extractocol/internal/obfuscate"
	"extractocol/internal/report"
	"extractocol/internal/siglang"
	"extractocol/internal/txdep"
)

// scenarioApp generates a minimal one-scenario app: one baseline GET plus
// the scenario's transactions, so assertions cannot hit the wrong tx.
func scenarioApp(t *testing.T, scenario string) *core.Report {
	t.Helper()
	spec := corpus.AppSpec{
		Name: "scen-" + scenario, Package: "scen." + scenario,
		Host: "api.scen.example.com", Protocol: "HTTPS", Library: "okhttp",
		Counts:    map[string]corpus.MethodCounts{"GET": {E: 1, M: 1, A: 1}},
		Scenarios: []string{scenario},
	}
	app := corpus.Generate(spec)
	rep, err := core.Analyze(app.Prog, core.NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// txWithPath finds the transaction whose reconstructed URI contains the
// path fragment.
func txWithPath(t *testing.T, rep *core.Report, fragment string) *core.Transaction {
	t.Helper()
	for _, tx := range rep.Transactions {
		if strings.Contains(siglang.RegexBody(tx.Request.URI), fragment) {
			return tx
		}
	}
	t.Fatalf("no transaction with %q in its URI; report:\n%s", fragment, report.Text(rep))
	return nil
}

// depsTo lists the dependency edges arriving at one transaction.
func depsTo(rep *core.Report, id int) []txdep.Dep {
	var out []txdep.Dep
	for _, d := range rep.Deps {
		if d.To == id {
			out = append(out, d)
		}
	}
	return out
}

func TestScenarioGzipSignature(t *testing.T) {
	rep := scenarioApp(t, "gzip")
	tx := txWithPath(t, rep, "/gz/")
	if tx.Response == nil || tx.Response.BodyKind != "json" {
		t.Fatalf("gzip response not reconstructed as json: %+v", tx.Response)
	}
	if keys := siglang.Keywords(&siglang.JSON{Root: tx.Response.JSON}); len(keys) == 0 {
		t.Error("gzip response signature has no keys: decompression decorator lost the body")
	}
	if !tx.Paired {
		t.Error("gzip transaction not paired with its response")
	}
}

func TestScenarioChunkedSignature(t *testing.T) {
	rep := scenarioApp(t, "chunked")
	tx := txWithPath(t, rep, "/stream/")
	if tx.Response == nil || tx.Response.BodyKind != "json" {
		t.Fatalf("chunked response not reconstructed as json: %+v", tx.Response)
	}
	if keys := siglang.Keywords(&siglang.JSON{Root: tx.Response.JSON}); len(keys) == 0 {
		t.Error("chunked response signature has no keys: buffered-reader decorator lost the body")
	}
}

func TestScenarioMultipartSignature(t *testing.T) {
	rep := scenarioApp(t, "multipart")
	tx := txWithPath(t, rep, "/upload/")
	if tx.Request.Method != "POST" {
		t.Errorf("multipart upload method = %q, want POST", tx.Request.Method)
	}
	if tx.Request.BodyKind != "multipart" {
		t.Fatalf("body kind = %q, want multipart", tx.Request.BodyKind)
	}
	if body := siglang.Regex(tx.Request.Body); !strings.Contains(body, "=") {
		t.Errorf("multipart body signature %q lists no parts", body)
	}
}

func TestScenarioTokenRefreshChain(t *testing.T) {
	rep := scenarioApp(t, "token")
	secure := txWithPath(t, rep, "/secure/")
	refresh := txWithPath(t, rep, "/oauth/refresh")

	// The authenticated call must consume the token grant's response field
	// through its Authorization header.
	var viaHeader bool
	for _, d := range depsTo(rep, secure.ID) {
		if d.FromField == "access_token" && d.ToPart == "header:Authorization" {
			viaHeader = true
		}
	}
	if !viaHeader {
		t.Errorf("no access_token -> header:Authorization edge into /secure/; deps: %+v", rep.Deps)
	}
	// The refresh call closes the chain: its body reuses the previous
	// grant's access_token, giving the paper's inter-transaction
	// dependency shape (grant -> use -> refresh).
	if len(depsTo(rep, refresh.ID)) == 0 {
		t.Errorf("token refresh transaction has no incoming dependency edge; deps: %+v", rep.Deps)
	}
}

func TestScenarioCookieSession(t *testing.T) {
	rep := scenarioApp(t, "cookie")
	// /account/login is the POST; the session-gated call is the GET.
	var gated *core.Transaction
	for _, tx := range rep.Transactions {
		uri := siglang.RegexBody(tx.Request.URI)
		if strings.Contains(uri, "/account/") && tx.Request.Method == "GET" {
			gated = tx
		}
	}
	if gated == nil {
		t.Fatalf("no gated GET /account/ transaction; report:\n%s", report.Text(rep))
	}
	var viaCookie bool
	for _, d := range depsTo(rep, gated.ID) {
		if d.FromField == "session_id" && d.ToPart == "header:Cookie" {
			viaCookie = true
		}
	}
	if !viaCookie {
		t.Errorf("no session_id -> header:Cookie edge; deps: %+v", rep.Deps)
	}
}

func TestScenarioPaginateCursor(t *testing.T) {
	rep := scenarioApp(t, "paginate")
	page := txWithPath(t, rep, "/page/")
	var viaURI bool
	for _, d := range depsTo(rep, page.ID) {
		if d.FromField == "next_page" && d.ToPart == "uri" {
			viaURI = true
		}
	}
	if !viaURI {
		t.Errorf("no next_page -> uri edge into /page/; deps: %+v", rep.Deps)
	}
}

func TestScenarioLongPoll(t *testing.T) {
	rep := scenarioApp(t, "longpoll")
	tx := txWithPath(t, rep, "/poll/")
	uri := siglang.RegexBody(tx.Request.URI)
	if !strings.Contains(uri, "timeout=") {
		t.Errorf("poll URI %q lost the timeout query key", uri)
	}
	if tx.Response == nil || tx.Response.BodyKind != "json" {
		t.Fatalf("poll response not reconstructed as json: %+v", tx.Response)
	}
	if keys := siglang.Keywords(&siglang.JSON{Root: tx.Response.JSON}); len(keys) == 0 {
		t.Error("poll response signature has no keys")
	}
	if !tx.Paired {
		t.Error("poll transaction not paired with its response")
	}
	// The retry self-call must not fork a second transaction: one /poll/
	// endpoint, polled in a loop, is still one protocol behavior.
	polls := 0
	for _, other := range rep.Transactions {
		if strings.Contains(siglang.RegexBody(other.Request.URI), "/poll/") {
			polls++
		}
	}
	if polls != 1 {
		t.Errorf("%d /poll/ transactions, want 1 (retry loop folded)", polls)
	}
}

// TestGenSpecsDeterministic pins corpus.RandSpecs as a pure function of
// its seed: two derivations of the same (seed, n) are deep-equal, and a
// different seed actually moves the trait space.
func TestGenSpecsDeterministic(t *testing.T) {
	a, b := corpus.RandSpecs(1729, 50), corpus.RandSpecs(1729, 50)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed spec derivations differ")
	}
	c := corpus.RandSpecs(1730, 50)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds derived identical specs")
	}
}

// TestGenProgramsDeterministic re-generates a seed sample and requires the
// built programs — including obfuscated ones, whose renaming runs inside
// Generate — to encode byte-identically, and their analysis reports to
// match byte-for-byte. This is the unit-level form of the differential
// harness's regeneration axis.
func TestGenProgramsDeterministic(t *testing.T) {
	const seed, n = 99, 12
	first, second := corpus.Rand(seed, n), corpus.Rand(seed, n)
	for i := range first {
		e1, err := dex.Encode(first[i].Prog)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := dex.Encode(second[i].Prog)
		if err != nil {
			t.Fatal(err)
		}
		if string(e1) != string(e2) {
			t.Fatalf("%s: regenerated program encodes differently", first[i].Spec.Name)
		}
		r1, err := core.Analyze(first[i].Prog, core.NewOptions())
		if err != nil {
			t.Fatal(err)
		}
		r2, err := core.Analyze(second[i].Prog, core.NewOptions())
		if err != nil {
			t.Fatal(err)
		}
		c1, err := evaluate.CanonicalReport(r1)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := evaluate.CanonicalReport(r2)
		if err != nil {
			t.Fatal(err)
		}
		if string(c1) != string(c2) {
			t.Fatalf("%s: regenerated analysis reports differ", first[i].Spec.Name)
		}
	}
}

// TestGenMetamorphicObfuscation extends the corpus metamorphic suite to
// the generated trait space: for a 50-app seeded sample, ProGuard-style
// renaming must preserve transaction counts, mapped signature keys,
// dependency edges and rendered report blocks (the same invariants
// TestMetamorphicObfuscation pins on the hand-built corpus).
func TestGenMetamorphicObfuscation(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes 50 generated apps twice")
	}
	specs := corpus.RandSpecs(2718, 50)
	for i := range specs {
		// The generator may pre-obfuscate; this test owns the renaming so
		// both sides start from the same plain program.
		specs[i].Obfuscated = false
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			plainApp, obfApp := corpus.Generate(spec), corpus.Generate(spec)
			mapping := obfuscate.Apply(obfApp.Prog, obfuscate.Options{KeepEntryPoints: true})

			plain, err := core.Analyze(plainApp.Prog, core.NewOptions())
			if err != nil {
				t.Fatal(err)
			}
			after, err := core.Analyze(obfApp.Prog, core.NewOptions())
			if err != nil {
				t.Fatalf("obfuscated: %v", err)
			}

			if len(after.Transactions) != len(plain.Transactions) {
				t.Errorf("transactions: %d obfuscated vs %d plain",
					len(after.Transactions), len(plain.Transactions))
			}
			if after.PairCount() != plain.PairCount() {
				t.Errorf("pairs: %d obfuscated vs %d plain", after.PairCount(), plain.PairCount())
			}
			if len(after.Deps) != len(plain.Deps) {
				t.Errorf("dependency edges: %d obfuscated vs %d plain",
					len(after.Deps), len(plain.Deps))
			}
			pk, ak := keysMapped(plain, mapping), keysMapped(after, nil)
			if !equalStrings(pk, ak) {
				t.Errorf("signature keys differ\nplain (mapped): %v\nobfuscated:     %v", pk, ak)
			}
			pe, ae := edgeSet(plain, mapping), edgeSet(after, nil)
			if !equalStrings(pe, ae) {
				t.Errorf("dependency edges differ\nplain (mapped): %v\nobfuscated:     %v", pe, ae)
			}
			pb, ab := textBlocks(plain), textBlocks(after)
			if !equalStrings(pb, ab) {
				t.Errorf("report blocks differ\n--- plain ---\n%s\n--- obfuscated ---\n%s",
					strings.Join(pb, "\n<block>\n"), strings.Join(ab, "\n<block>\n"))
			}
		})
	}
}

// ---- Default-report pin --------------------------------------------------

const reportDigestPath = "testdata/report_digest.json"

type reportDigest struct {
	Apps   int    `json:"apps"`
	Digest string `json:"digest"`
}

// TestDefaultReportsPinned hashes the canonical default report (text +
// JSON, no opt-in layers) of every original corpus app against the
// committed digest. It fails when default output changes for any reason —
// in particular if the security lens ever renders without being asked.
// Regenerate after an intentional report change with:
//
//	EXTRACTOCOL_REPORT_DIGEST=write go test -run TestDefaultReportsPinned .
func TestDefaultReportsPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes the whole corpus")
	}
	apps := corpus.Apps()
	h := sha256.New()
	for _, app := range apps {
		rep, err := core.Analyze(app.Prog, core.NewOptions())
		if err != nil {
			t.Fatalf("%s: %v", app.Spec.Name, err)
		}
		c, err := evaluate.CanonicalReport(rep)
		if err != nil {
			t.Fatal(err)
		}
		h.Write(c)
	}
	cur := reportDigest{Apps: len(apps), Digest: hex.EncodeToString(h.Sum(nil))}

	data, err := os.ReadFile(reportDigestPath)
	if os.IsNotExist(err) || os.Getenv("EXTRACTOCOL_REPORT_DIGEST") == "write" {
		out, merr := json.MarshalIndent(cur, "", "  ")
		if merr != nil {
			t.Fatal(merr)
		}
		if werr := os.WriteFile(reportDigestPath, append(out, '\n'), 0o644); werr != nil {
			t.Fatal(werr)
		}
		t.Logf("wrote %s: %s", reportDigestPath, out)
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	var base reportDigest
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("corrupt %s: %v", reportDigestPath, err)
	}
	if cur.Apps != base.Apps {
		t.Fatalf("corpus has %d apps, digest pins %d; regenerate %s", cur.Apps, base.Apps, reportDigestPath)
	}
	if cur.Digest != base.Digest {
		t.Errorf("default corpus reports changed: digest %s, pinned %s; if intentional, regenerate %s",
			cur.Digest, base.Digest, reportDigestPath)
	}
}

// TestSecurityLensOptIn pins the lens contract at the report-renderer
// level: with Options zero the output is byte-identical to the historical
// renderers, and with Security set annotations appear only on
// transactions that have something to report.
func TestSecurityLensOptIn(t *testing.T) {
	spec := corpus.AppSpec{
		Name: "lens-optin", Package: "lens.optin", Host: "api.lens.example.com",
		Protocol: "HTTP", Library: "urlconn",
		Counts:    map[string]corpus.MethodCounts{"GET": {E: 1, M: 1, A: 1}},
		Scenarios: []string{"token"},
	}
	app := corpus.Generate(spec)
	rep, err := core.Analyze(app.Prog, core.NewOptions())
	if err != nil {
		t.Fatal(err)
	}

	if got, want := report.TextOpts(rep, report.Options{}), report.Text(rep); got != want {
		t.Error("TextOpts with zero Options diverges from Text")
	}
	j1, err := report.JSONOpts(rep, report.Options{})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := report.JSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Error("JSONOpts with zero Options diverges from JSON")
	}
	if strings.Contains(string(j2), `"security"`) {
		t.Error("default JSON leaks security annotations")
	}

	sec := report.TextOpts(rep, report.Options{Security: true})
	if !strings.Contains(sec, "security: cleartext http") {
		t.Errorf("HTTP app missing cleartext annotation:\n%s", sec)
	}
	if !strings.Contains(sec, "credential keys:") {
		t.Errorf("token-scenario app missing credential keys:\n%s", sec)
	}
	sj, err := report.JSONOpts(rep, report.Options{Security: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sj), `"credential_keys"`) {
		t.Error("security JSON missing credential_keys")
	}
	// HTTPS app with no sensitive keys: lens on, nothing to say.
	quiet := scenarioApp(t, "gzip")
	qt := report.TextOpts(quiet, report.Options{Security: true})
	if strings.Contains(qt, "security:") {
		t.Errorf("HTTPS no-credential app got a security line:\n%s", qt)
	}
}

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), plus component
// microbenchmarks and the ablations DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
package extractocol

import (
	"sync"
	"testing"

	"extractocol/internal/callgraph"
	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/dex"
	"extractocol/internal/evaluate"
	"extractocol/internal/fuzz"
	"extractocol/internal/httpsim"
	"extractocol/internal/intern"
	"extractocol/internal/ir"
	"extractocol/internal/obfuscate"
	"extractocol/internal/obs"
	"extractocol/internal/pairing"
	"extractocol/internal/resultcache"
	"extractocol/internal/semmodel"
	"extractocol/internal/siglang"
	"extractocol/internal/sigvm"
	"extractocol/internal/slice"
	"extractocol/internal/taint"
	"extractocol/internal/trace"
)

// The corpus evaluation fixture is shared across benchmarks that only
// post-process its results.
var (
	fixtureOnce sync.Once
	fixture     []*evaluate.AppResult
	fixtureErr  error
)

func corpusResults(b *testing.B) []*evaluate.AppResult {
	b.Helper()
	fixtureOnce.Do(func() { fixture, fixtureErr = evaluate.RunAll() })
	if fixtureErr != nil {
		b.Fatal(fixtureErr)
	}
	return fixture
}

// ---- Table 1: full coverage comparison over the corpus -------------------

func BenchmarkTable1_FullCorpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := evaluate.RunAll()
		if err != nil {
			b.Fatal(err)
		}
		rows := evaluate.Table1(results)
		if len(rows) != 34 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// ---- Figures 6 and 7: signature and keyword totals ------------------------

func BenchmarkFigure6_SignatureTotals(b *testing.B) {
	results := corpusResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		open := evaluate.Figure6(results, true)
		closed := evaluate.Figure6(results, false)
		if closed.URIs.E <= closed.URIs.M {
			b.Fatal("coverage ordering violated")
		}
		_ = open
	}
}

func BenchmarkFigure7_KeywordTotals(b *testing.B) {
	results := corpusResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		open := evaluate.Figure7(results, true)
		closed := evaluate.Figure7(results, false)
		if closed.Request.E <= closed.Request.A {
			b.Fatal("keyword ordering violated")
		}
		_ = open
	}
}

// ---- Table 2: matched-byte accounting --------------------------------------

func BenchmarkTable2_ByteAccounting(b *testing.B) {
	results := corpusResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		open := evaluate.Table2(results, true)
		closed := evaluate.Table2(results, false)
		if open.Request.Total() == 0 || closed.Request.Total() == 0 {
			b.Fatal("no bytes accounted")
		}
	}
}

// ---- Tables 3-6: case studies ----------------------------------------------

func BenchmarkTable3_RadioReddit(b *testing.B) {
	app := corpus.RadioReddit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.Analyze(app.Prog, core.NewOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Transactions) != 6 {
			b.Fatalf("transactions = %d", len(rep.Transactions))
		}
	}
}

func BenchmarkTable4_TED(b *testing.B) {
	app := corpus.TED()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.Analyze(app.Prog, core.NewOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Deps) == 0 {
			b.Fatal("no dependencies")
		}
	}
}

func BenchmarkTable5_KayakScoped(b *testing.B) {
	app := corpus.Kayak()
	opts := core.NewOptions()
	opts.ScopePrefix = "com.kayak."
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.Analyze(app.Prog, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Transactions) != 46 {
			b.Fatalf("endpoints = %d", len(rep.Transactions))
		}
	}
}

func BenchmarkTable6_KayakReplay(b *testing.B) {
	app := corpus.Kayak()
	opts := core.NewOptions()
	opts.ScopePrefix = "com.kayak."
	rep, err := core.Analyze(app.Prog, opts)
	if err != nil {
		b.Fatal(err)
	}
	var ua string
	for _, tx := range rep.Transactions {
		for _, h := range tx.Request.Headers {
			if h.Key == "User-Agent" {
				if l, ok := h.Val.(*siglang.Lit); ok {
					ua = l.Val
				}
			}
		}
	}
	if ua == "" {
		b.Fatal("User-Agent not recovered")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := app.NewNetwork()
		hdr := map[string]string{"User-Agent": ua}
		resp := net.RoundTrip(&httpsim.Request{Method: "POST",
			URL:     "https://www.kayak.example/k/authajax",
			Headers: hdr, Body: "action=registerandroid&uuid=x"})
		if resp.Status != 200 {
			b.Fatalf("authajax = %d", resp.Status)
		}
	}
}

// ---- §5.1 timing: open- vs closed-source analysis cost ---------------------

func BenchmarkAnalyzeOpenSource(b *testing.B) {
	apps := corpus.OpenSource()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app := apps[i%len(apps)]
		if _, err := core.Analyze(app.Prog, core.NewOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeClosedSource(b *testing.B) {
	apps := corpus.ClosedSource()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app := apps[i%len(apps)]
		if _, err := core.Analyze(app.Prog, core.NewOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- §5.1 obfuscation: analysis of renamed binaries -------------------------

func BenchmarkObfuscatedAnalysis(b *testing.B) {
	app := corpus.Diode()
	obfuscate.Apply(app.Prog, obfuscate.Options{KeepEntryPoints: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(app.Prog, core.NewOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation: the §3.4 asynchronous-event heuristic ------------------------

func BenchmarkAsyncHeuristicOff(b *testing.B) {
	benchAsyncHops(b, 0)
}

func BenchmarkAsyncHeuristicOn(b *testing.B) {
	benchAsyncHops(b, 1)
}

func benchAsyncHops(b *testing.B, hops int) {
	app, err := corpus.ByName("Weather Notification")
	if err != nil {
		b.Fatal(err)
	}
	opts := core.NewOptions()
	opts.MaxAsyncHops = hops
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(app.Prog, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Component microbenchmarks -----------------------------------------------

func BenchmarkDexEncodeDecode(b *testing.B) {
	app := corpus.Kayak()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := dex.Encode(app.Prog)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dex.Decode(data); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
	}
}

func BenchmarkManualFuzzing(b *testing.B) {
	app := corpus.RadioReddit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := app.NewNetwork()
		if _, err := fuzz.Run(app.Prog, net, fuzz.Manual); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSignatureMatching(b *testing.B) {
	app := corpus.RadioReddit()
	rep, err := core.Analyze(app.Prog, core.NewOptions())
	if err != nil {
		b.Fatal(err)
	}
	net := app.NewNetwork()
	if _, err := fuzz.Run(app.Prog, net, fuzz.Manual); err != nil {
		b.Fatal(err)
	}
	entries := trace.FromNetwork(net.Trace())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := trace.MatchReport(rep, entries)
		if res.SigsValid != res.SigsWithTraffic {
			b.Fatal("invalid signatures")
		}
	}
}

func BenchmarkRegexCompile(b *testing.B) {
	app := corpus.Diode()
	rep, err := core.Analyze(app.Prog, core.NewOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tx := range rep.Transactions {
			if _, err := siglang.Compile(tx.Request.URI); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		apps := corpus.Apps()
		if len(apps) != 34 {
			b.Fatalf("apps = %d", len(apps))
		}
	}
}

// ---- Seeded generative corpus -------------------------------------------------

// The generated-corpus fixture is built once: a fixed 100-app seed, the
// same corpus the ci.sh differential stage exercises.
var (
	genFixtureOnce sync.Once
	genFixture     []*corpus.App
)

func genApps(b *testing.B) []*corpus.App {
	b.Helper()
	genFixtureOnce.Do(func() { genFixture = corpus.Rand(1729, 100) })
	return genFixture
}

// BenchmarkGenCorpusRand measures pure generation throughput: specs drawn
// from the seed stream plus program construction, 100 apps per op.
func BenchmarkGenCorpusRand(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		apps := corpus.Rand(1729, 100)
		if len(apps) != 100 {
			b.Fatalf("apps = %d", len(apps))
		}
	}
}

// BenchmarkGenCorpusAnalyze measures end-to-end analysis over the fixed
// 100-app generated corpus (serial, default options) — the workload the
// differential harness replays per axis and TestGenBenchGuard pins.
func BenchmarkGenCorpusAnalyze(b *testing.B) {
	apps := genApps(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, app := range apps {
			if _, err := core.Analyze(app.Prog, core.NewOptions()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---- §3.1 slicing: worker pool and shared analysis caches ---------------------

// firstDP locates the first demarcation-point invoke of an app in program
// order, mirroring slice.Find's job enumeration.
func firstDP(b *testing.B, p *ir.Program, model *semmodel.Model) (taint.StmtID, int) {
	b.Helper()
	for _, c := range p.AppClasses() {
		for _, m := range c.Methods {
			for i := range m.Instrs {
				in := &m.Instrs[i]
				if in.Op != ir.OpInvoke {
					continue
				}
				mm := model.Lookup(in.Sym)
				if mm == nil || !mm.DP || mm.ReqArg < 0 || mm.ReqArg >= len(in.Args) {
					continue
				}
				return taint.StmtID{Method: m.Ref(), Index: i}, in.Args[mm.ReqArg]
			}
		}
	}
	b.Fatal("no demarcation point found")
	return taint.StmtID{}, 0
}

// BenchmarkSliceFind measures full transaction extraction — the pool, the
// shared caches, and backward/forward slicing — on the paper's running
// example.
func BenchmarkSliceFind(b *testing.B) {
	app := corpus.RadioReddit()
	model := semmodel.Default()
	cg := callgraph.Build(app.Prog, model)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txs := slice.Find(app.Prog, model, cg, slice.Options{MaxAsyncHops: 1})
		if len(txs) == 0 {
			b.Fatal("no transactions")
		}
	}
}

// BenchmarkTaintBackward measures one request slice with a fresh engine per
// iteration (each engine builds its private summary cache from scratch).
func BenchmarkTaintBackward(b *testing.B) {
	app := corpus.RadioReddit()
	model := semmodel.Default()
	cg := callgraph.Build(app.Prog, model)
	dp, reg := firstDP(b, app.Prog, model)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := taint.NewEngine(app.Prog, model, cg)
		if res := eng.Backward(dp, reg); res.Size() == 0 {
			b.Fatal("empty slice")
		}
	}
}

// BenchmarkAugment measures the incremental-worklist slice augmentation.
// Augment mutates its Result, so each iteration gets a fresh copy of the
// seed slice (the copy happens with the timer stopped).
func BenchmarkAugment(b *testing.B) {
	app := corpus.RadioReddit()
	model := semmodel.Default()
	cg := callgraph.Build(app.Prog, model)
	dp, reg := firstDP(b, app.Prog, model)
	eng := taint.NewEngine(app.Prog, model, cg)
	seed := eng.Backward(dp, reg)
	if seed.Size() == 0 {
		b.Fatal("empty seed slice")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		res := seed.Clone()
		b.StartTimer()
		slice.Augment(app.Prog, model, res)
		if res.Size() < seed.Size() {
			b.Fatal("augment shrank the slice")
		}
	}
}

// ---- Interned-symbol layer ----------------------------------------------------

// BenchmarkInternIndex measures building the per-program dense index (the
// method symbol table plus statement/register ID bases) that every analysis
// phase shares. The index is built once per decoded program, so this is the
// interning layer's entire fixed overhead.
func BenchmarkInternIndex(b *testing.B) {
	app := corpus.RadioReddit()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := ir.NewIndex(app.Prog)
		if idx.NumMethods() == 0 {
			b.Fatal("empty index")
		}
	}
}

// BenchmarkInternBitsUnion measures the dense-set operations the slicing
// and taint hot loops lean on — clone, union, and membership iteration over
// statement-universe-sized bitsets — the replacements for the old
// map[string]bool set algebra.
func BenchmarkInternBitsUnion(b *testing.B) {
	app := corpus.RadioReddit()
	idx := ir.NewIndex(app.Prog)
	n := idx.NumStmts()
	x, y := intern.NewBits(n), intern.NewBits(n)
	for id := 0; id < n; id += 3 {
		x.Add(uint32(id))
	}
	for id := 0; id < n; id += 7 {
		y.Add(uint32(id))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := x.Clone()
		u.Union(y)
		count := 0
		u.Each(func(uint32) bool { count++; return true })
		if count == 0 {
			b.Fatal("empty union")
		}
	}
}

// ---- §3.3 pairing: indexed group analysis -------------------------------------

// BenchmarkPairingAnalyze measures the pairing group analysis over real
// slicer output (the running example's transaction set). This is the hot
// path the inverted-index rewrite de-quadratized; TestPairingBenchGuard
// pins it against BENCH_pairing.json.
func BenchmarkPairingAnalyze(b *testing.B) {
	app := corpus.RadioReddit()
	model := semmodel.Default()
	cg := callgraph.Build(app.Prog, model)
	txs := slice.Find(app.Prog, model, cg, slice.Options{MaxAsyncHops: 1})
	if len(txs) == 0 {
		b.Fatal("no transactions")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairs := pairing.Analyze(txs)
		if len(pairs) != len(txs) {
			b.Fatalf("pairs = %d, txs = %d", len(pairs), len(txs))
		}
	}
}

// ---- Persistent result cache: warm-path analysis ------------------------------

// BenchmarkCacheWarmRun measures a fully warm core.Analyze: the report is
// served from a primed persistent cache, so each iteration is one key
// lookup, one entry read, and one decode — the steady-state cost of
// re-analyzing an unchanged binary.
func BenchmarkCacheWarmRun(b *testing.B) {
	app := corpus.RadioReddit()
	cache, err := resultcache.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	opts := core.NewOptions()
	key, err := resultcache.KeyForProgram(app.Prog, opts)
	if err != nil {
		b.Fatal(err)
	}
	opts.Cache = cache
	opts.CacheKey = key
	if _, err := core.Analyze(app.Prog, opts); err != nil { // prime
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.Analyze(app.Prog, opts)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Profile.Counters[obs.CtrCacheReportHits] != 1 {
			b.Fatal("warm run missed the cache")
		}
	}
}

// ---- Ablation: the §4 intent-modeling extension -------------------------------

func BenchmarkIntentModelingOff(b *testing.B) {
	benchIntents(b, false)
}

func BenchmarkIntentModelingOn(b *testing.B) {
	benchIntents(b, true)
}

func benchIntents(b *testing.B, model bool) {
	app, err := corpus.ByName("MusicDownloader")
	if err != nil {
		b.Fatal(err)
	}
	opts := core.NewOptions()
	opts.ModelIntents = model
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.Analyze(app.Prog, opts)
		if err != nil {
			b.Fatal(err)
		}
		// With intents modeled, the seven intent-triggered GETs appear.
		if model && rep.CountByMethod()["GET"] <= 3 {
			b.Fatal("intent modeling gained no transactions")
		}
	}
}

// ---- Observability: tracing must be free when disabled -------------------------

// BenchmarkTracerDisabled measures the span-instrumented hot path — start a
// span, bump a counter, end the span — on an untraced shard, exactly what
// every taint fixpoint and worker job executes when no -trace flag is given.
// The contract (pinned by TestTracerDisabledZeroAlloc) is 0 allocs/op: with
// no tracer bound, Span is a nil check returning a value-type ActiveSpan and
// End is a nil check, so instrumentation costs nothing when off.
func BenchmarkTracerDisabled(b *testing.B) {
	s := obs.NewShard()
	// Pre-insert the counter key: incrementing an existing map key does not
	// allocate, and the steady state is what the hot loops see.
	s.Add(obs.CtrTaintFacts, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := s.Span(obs.CatTaintBackward, "bench")
		s.Add(obs.CtrTaintFacts, 1)
		sp.End()
	}
}

// ---- §3.4 de-obfuscation of a renamed HTTP library ----------------------------

func BenchmarkDeobfuscation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		app := corpus.Diode()
		obfuscate.Apply(app.Prog, obfuscate.Options{
			KeepEntryPoints:        true,
			ObfuscateLibraryPrefix: "org.apache.http",
		})
		b.StartTimer()
		recovered := obfuscate.Deobfuscate(app.Prog, semmodel.Default())
		if len(recovered) == 0 {
			b.Fatal("nothing recovered")
		}
	}
}

// ---- Signature-matcher VM throughput -------------------------------------------

// The classifier fixture is shared across the throughput benchmarks and
// the BENCH_classify.json guard: the RadioReddit report, a large seeded
// labeled trace, and the signatures compiled once to sigvm bytecode.
var (
	classifyOnce    sync.Once
	classifyRep     *core.Report
	classifyEntries []trace.Entry
	classifyBundle  *sigvm.Bundle
	classifyErr     error
)

func classifyInput(b *testing.B) (*core.Report, []trace.Entry, *sigvm.Bundle) {
	classifyOnce.Do(func() {
		app := corpus.RadioReddit()
		rep, err := core.Analyze(app.Prog, core.NewOptions())
		if err != nil {
			classifyErr = err
			return
		}
		classifyRep = rep
		classifyEntries = trace.Entries(trace.RandEntries(99, rep, 4000))
		classifyBundle = sigvm.Compile(rep)
	})
	if classifyErr != nil {
		b.Fatal(classifyErr)
	}
	return classifyRep, classifyEntries, classifyBundle
}

func benchClassify(b *testing.B, opt trace.ClassifyOptions) {
	rep, entries, bundle := classifyInput(b)
	if opt.VM {
		opt.Bundle = bundle
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := trace.Classify(rep, entries, opt)
		if res.TraceEntries == 0 {
			b.Fatal("classifier considered no entries")
		}
	}
	b.ReportMetric(float64(len(entries))*float64(b.N)/b.Elapsed().Seconds(), "entries/sec")
}

// BenchmarkClassifyThroughput compares classifier throughput across
// backends over the same labeled trace: the compiled VM serially, the VM
// under worker fan-out, and the interpretive oracle (which re-derives its
// regexps per run, as MatchReport always has).
func BenchmarkClassifyThroughput(b *testing.B) {
	b.Run("vm", func(b *testing.B) {
		benchClassify(b, trace.ClassifyOptions{VM: true})
	})
	b.Run("vm_parallel", func(b *testing.B) {
		benchClassify(b, trace.ClassifyOptions{VM: true, Workers: -1})
	})
	b.Run("interp", func(b *testing.B) {
		benchClassify(b, trace.ClassifyOptions{})
	})
}

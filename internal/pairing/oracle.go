package pairing

import (
	"sort"

	"extractocol/internal/intern"
	"extractocol/internal/slice"
	"extractocol/internal/taint"
)

// AnalyzeOracle is the reference pairwise-scan implementation of Analyze,
// kept verbatim from before the inverted-index rewrite. It is quadratic in
// the per-DP group size but trivially auditable; the equivalence tests and
// the differential-testing harness (internal/evaluate) hold Analyze to
// deep-equal output on every input.
func AnalyzeOracle(txs []*slice.Transaction) []Pair {
	byDP := map[taint.StmtID][]*slice.Transaction{}
	for _, tx := range txs {
		byDP[tx.DP] = append(byDP[tx.DP], tx)
	}
	out := make([]Pair, 0, len(txs))
	for _, tx := range txs {
		group := byDP[tx.DP]
		p := Pair{
			Tx:               tx,
			HasResponse:      tx.Response != nil && tx.Response.Size() > 0,
			DisjointRequest:  oracleDisjoint(tx.Request, oracleRequestsOf(group, tx)),
			DisjointResponse: oracleDisjoint(tx.Response, oracleResponsesOf(group, tx)),
		}
		p.OneToOne = p.HasResponse && (len(group) == 1 || !p.DisjointResponse.Empty())
		if p.HasResponse && len(group) > 1 && p.DisjointResponse.Empty() {
			p.SharedHandler = oracleSameStmtsAsAnother(tx, group)
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tx.ID < out[j].Tx.ID })
	return out
}

func oracleRequestsOf(group []*slice.Transaction, skip *slice.Transaction) []*taint.Result {
	var rs []*taint.Result
	for _, t := range group {
		if t != skip && t.Request != nil {
			rs = append(rs, t.Request)
		}
	}
	return rs
}

func oracleResponsesOf(group []*slice.Transaction, skip *slice.Transaction) []*taint.Result {
	var rs []*taint.Result
	for _, t := range group {
		if t != skip && t.Response != nil {
			rs = append(rs, t.Response)
		}
	}
	return rs
}

func oracleDisjoint(r *taint.Result, others []*taint.Result) *intern.Bits {
	out := &intern.Bits{}
	if r == nil {
		return out
	}
	r.Stmts().Each(func(s uint32) bool {
		shared := false
		for _, o := range others {
			if o.Stmts().Has(s) {
				shared = true
				break
			}
		}
		if !shared {
			out.Add(s)
		}
		return true
	})
	return out
}

func oracleSameStmtsAsAnother(tx *slice.Transaction, group []*slice.Transaction) bool {
	for _, o := range group {
		if o == tx || o.Response == nil || tx.Response == nil {
			continue
		}
		if tx.Response.Stmts().Equal(o.Response.Stmts()) {
			return true
		}
	}
	return false
}

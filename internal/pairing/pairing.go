// Package pairing reconstructs complete HTTP transactions by pairing each
// request with its corresponding response (§3.3). Transactions are already
// separated per context by the slicer; this package performs the paper's
// disjoint-sub-slice analysis to validate the pairing when multiple
// requests share a demarcation point through code reuse (Fig. 5), and
// detects shared response handlers where pairing is legitimately
// many-to-one.
package pairing

import (
	"fmt"
	"sort"

	"extractocol/internal/budget"
	"extractocol/internal/callgraph"
	"extractocol/internal/ir"
	"extractocol/internal/obs"
	"extractocol/internal/semmodel"
	"extractocol/internal/slice"
	"extractocol/internal/taint"
)

// Pair describes the pairing quality of one transaction.
type Pair struct {
	Tx *slice.Transaction
	// HasResponse reports whether a response slice exists at all.
	HasResponse bool
	// OneToOne is true when the transaction's response slice contains
	// statements disjoint from every other transaction sharing its
	// demarcation point — the Fig. 5 condition for unambiguous pairing.
	OneToOne bool
	// SharedHandler is true when another transaction processes its
	// response with the exact same statement set (a common response
	// handler, where pairing may not be one-to-one).
	SharedHandler bool
	// DisjointRequest and DisjointResponse are the statements unique to
	// this transaction among all same-DP transactions.
	DisjointRequest  map[taint.StmtID]bool
	DisjointResponse map[taint.StmtID]bool
	// FlowConfirmed is set by VerifyFlow when information-flow analysis
	// from the disjoint request segment reaches the response slice — the
	// paper's Fig. 5 pairing check.
	FlowConfirmed bool
	// FlowSeeds is how many disjoint request statements seeded that check,
	// and FlowWitness is the smallest (method, index) response-slice
	// statement the flow reached — the concrete witness behind
	// FlowConfirmed, surfaced by the explain layer. Zero when unconfirmed.
	FlowSeeds   int
	FlowWitness taint.StmtID
}

// Analyze computes pairing facts for every transaction.
func Analyze(txs []*slice.Transaction) []Pair {
	byDP := map[taint.StmtID][]*slice.Transaction{}
	for _, tx := range txs {
		byDP[tx.DP] = append(byDP[tx.DP], tx)
	}
	out := make([]Pair, 0, len(txs))
	for _, tx := range txs {
		group := byDP[tx.DP]
		p := Pair{
			Tx:               tx,
			HasResponse:      tx.Response != nil && tx.Response.Size() > 0,
			DisjointRequest:  disjoint(tx.Request, requestsOf(group, tx)),
			DisjointResponse: disjoint(tx.Response, responsesOf(group, tx)),
		}
		p.OneToOne = p.HasResponse && (len(group) == 1 || len(p.DisjointResponse) > 0)
		if p.HasResponse && len(group) > 1 && len(p.DisjointResponse) == 0 {
			p.SharedHandler = sameStmtsAsAnother(tx, group)
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tx.ID < out[j].Tx.ID })
	return out
}

func requestsOf(group []*slice.Transaction, skip *slice.Transaction) []*taint.Result {
	var rs []*taint.Result
	for _, t := range group {
		if t != skip && t.Request != nil {
			rs = append(rs, t.Request)
		}
	}
	return rs
}

func responsesOf(group []*slice.Transaction, skip *slice.Transaction) []*taint.Result {
	var rs []*taint.Result
	for _, t := range group {
		if t != skip && t.Response != nil {
			rs = append(rs, t.Response)
		}
	}
	return rs
}

// disjoint returns the statements of r not present in any other slice.
func disjoint(r *taint.Result, others []*taint.Result) map[taint.StmtID]bool {
	out := map[taint.StmtID]bool{}
	if r == nil {
		return out
	}
	for s := range r.Stmts {
		shared := false
		for _, o := range others {
			if o.Stmts[s] {
				shared = true
				break
			}
		}
		if !shared {
			out[s] = true
		}
	}
	return out
}

func sameStmtsAsAnother(tx *slice.Transaction, group []*slice.Transaction) bool {
	for _, o := range group {
		if o == tx || o.Response == nil || tx.Response == nil {
			continue
		}
		if equalStmts(tx.Response.Stmts, o.Response.Stmts) {
			return true
		}
	}
	return false
}

// VerifyFlow runs the paper's information-flow pairing check: the disjoint
// request segment of each transaction is used as taint source; the pairing
// is confirmed when propagation reaches the transaction's own response
// slice. With the disjoint-sub-slice preprocessing this is one-to-one even
// under code reuse (Fig. 5). stats, when non-nil, receives flow-check and
// taint workload counters; VerifyFlow is sequential, so one unsynchronized
// shard suffices. sums, when non-nil, is a shared taint summary cache
// (summaries are universe-independent, so the slice phase's cache is
// directly reusable here).
func VerifyFlow(p *ir.Program, model *semmodel.Model, cg *callgraph.Graph, pairs []Pair, stats *obs.Shard, sums *taint.SummaryCache) {
	VerifyFlowBudgeted(p, model, cg, pairs, stats, sums, nil)
}

// VerifyFlowBudgeted is VerifyFlow under a budget: each pair's flow check
// is skipped once the budget is exhausted (one diagnostic names how many
// checks were dropped), a truncated propagation leaves the pair unconfirmed
// with a diagnostic, and a panicking check is recovered per pair. Degraded
// pairs keep FlowConfirmed == false — pairing quality downgrades, the
// report still ships. A nil budget behaves exactly like VerifyFlow.
func VerifyFlowBudgeted(p *ir.Program, model *semmodel.Model, cg *callgraph.Graph,
	pairs []Pair, stats *obs.Shard, sums *taint.SummaryCache, bud *budget.Budget) []budget.Diagnostic {

	var diags []budget.Diagnostic
	for i := range pairs {
		pr := &pairs[i]
		if !pr.HasResponse {
			continue
		}
		site := fmt.Sprintf("%s@%d", pr.Tx.DP.Method, pr.Tx.DP.Index)
		if ex := bud.Over(budget.PhasePairing, site); ex != nil {
			remaining := 0
			for _, q := range pairs[i:] {
				if q.HasResponse {
					remaining++
				}
			}
			d := budget.ExceededDiag(ex)
			d.Detail = fmt.Sprintf("%s; %d flow checks skipped", ex.Limit, remaining)
			diags = append(diags, d)
			break
		}
		if d := verifyPairFlow(p, model, cg, pr, site, stats, sums, bud); d != nil {
			diags = append(diags, *d)
		}
	}
	return diags
}

// verifyPairFlow runs one pair's information-flow check, converting panics
// and budget truncation into a diagnostic (nil when the check completed).
func verifyPairFlow(p *ir.Program, model *semmodel.Model, cg *callgraph.Graph,
	pr *Pair, site string, stats *obs.Shard, sums *taint.SummaryCache,
	bud *budget.Budget) (diag *budget.Diagnostic) {

	defer func() {
		if r := recover(); r != nil {
			d := budget.PanicDiag(budget.PhasePairing, site, r)
			diag = &d
		}
	}()
	bud.MaybePanic(budget.PhasePairing, site)
	sp := stats.Span(obs.CatPairFlow, site)
	defer sp.End()

	stats.Add(obs.CtrPairFlowChecks, 1)
	eng := taint.NewEngine(p, model, cg)
	eng.MaxAsyncHops = 1
	eng.Stats = stats
	eng.Budget = bud
	eng.BudgetPhase = budget.PhasePairing
	if sums != nil {
		eng.Summaries = sums
	}
	seeds := map[taint.StmtID]int{}
	src := pr.DisjointRequest
	if len(src) == 0 {
		src = pr.Tx.Request.Stmts
	}
	for s := range src {
		m := p.Method(s.Method)
		if m == nil || s.Index >= len(m.Instrs) {
			continue
		}
		if d := m.Instrs[s.Index].Def(); d != ir.NoReg {
			seeds[s] = d
		}
	}
	if len(seeds) == 0 {
		return nil
	}
	pr.FlowSeeds = len(seeds)
	flow := eng.ForwardFacts(seeds)
	if flow.Truncated != nil {
		d := budget.ExceededDiag(flow.Truncated)
		d.Phase = budget.PhasePairing
		d.Site = site
		return &d
	}
	// Keep the smallest reached statement as the deterministic witness of
	// the confirmation (map iteration order must not leak into provenance).
	for s := range pr.Tx.Response.Stmts {
		if !flow.Stmts[s] {
			continue
		}
		if !pr.FlowConfirmed || stmtLess(s, pr.FlowWitness) {
			pr.FlowWitness = s
		}
		pr.FlowConfirmed = true
	}
	return nil
}

// stmtLess orders statements by (method, index).
func stmtLess(a, b taint.StmtID) bool {
	if a.Method != b.Method {
		return a.Method < b.Method
	}
	return a.Index < b.Index
}

func equalStmts(a, b map[taint.StmtID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for s := range a {
		if !b[s] {
			return false
		}
	}
	return true
}

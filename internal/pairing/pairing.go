// Package pairing reconstructs complete HTTP transactions by pairing each
// request with its corresponding response (§3.3). Transactions are already
// separated per context by the slicer; this package performs the paper's
// disjoint-sub-slice analysis to validate the pairing when multiple
// requests share a demarcation point through code reuse (Fig. 5), and
// detects shared response handlers where pairing is legitimately
// many-to-one.
package pairing

import (
	"fmt"
	"sort"

	"extractocol/internal/budget"
	"extractocol/internal/callgraph"
	"extractocol/internal/intern"
	"extractocol/internal/ir"
	"extractocol/internal/obs"
	"extractocol/internal/semmodel"
	"extractocol/internal/slice"
	"extractocol/internal/taint"
)

// Pair describes the pairing quality of one transaction.
type Pair struct {
	Tx *slice.Transaction
	// HasResponse reports whether a response slice exists at all.
	HasResponse bool
	// OneToOne is true when the transaction's response slice contains
	// statements disjoint from every other transaction sharing its
	// demarcation point — the Fig. 5 condition for unambiguous pairing.
	OneToOne bool
	// SharedHandler is true when another transaction processes its
	// response with the exact same statement set (a common response
	// handler, where pairing may not be one-to-one).
	SharedHandler bool
	// DisjointRequest and DisjointResponse are the statements unique to
	// this transaction among all same-DP transactions, as dense statement
	// sets over the transaction slices' program index.
	DisjointRequest  *intern.Bits
	DisjointResponse *intern.Bits
	// FlowConfirmed is set by VerifyFlow when information-flow analysis
	// from the disjoint request segment reaches the response slice — the
	// paper's Fig. 5 pairing check.
	FlowConfirmed bool
	// FlowSeeds is how many disjoint request statements seeded that check,
	// and FlowWitness is the smallest (method, index) response-slice
	// statement the flow reached — the concrete witness behind
	// FlowConfirmed, surfaced by the explain layer. Zero when unconfirmed.
	FlowSeeds   int
	FlowWitness taint.StmtID
}

// Analyze computes pairing facts for every transaction.
//
// Group analysis is indexed, not pairwise: for each demarcation-point group
// it builds two inverted owner-count indexes (statement → number of group
// transactions whose request/response slice contains it) and an
// equality-class partition of the response statement sets, all in one pass
// over the group's statements. Disjoint segments then fall out of a single
// scan of each transaction's own slice (a statement is disjoint exactly
// when its owner count is 1), and shared-handler detection is a lookup in
// the precomputed partition — O(total statements) per group where the
// previous implementation re-ran pairwise set scans per transaction,
// O(n²·|stmts|) in group size. Results are identical (pairing_oracle_test.go
// keeps the old implementation as an equivalence oracle).
func Analyze(txs []*slice.Transaction) []Pair {
	byDP := map[taint.StmtID][]*slice.Transaction{}
	for _, tx := range txs {
		byDP[tx.DP] = append(byDP[tx.DP], tx)
	}
	indexes := make(map[taint.StmtID]*groupIndex, len(byDP))
	out := make([]Pair, 0, len(txs))
	for _, tx := range txs {
		group := byDP[tx.DP]
		if len(group) == 1 {
			// Singleton groups (the common case) need no index: every
			// statement is trivially disjoint and no handler can be shared.
			p := Pair{
				Tx:               tx,
				HasResponse:      tx.Response != nil && tx.Response.Size() > 0,
				DisjointRequest:  copyStmts(tx.Request),
				DisjointResponse: copyStmts(tx.Response),
			}
			p.OneToOne = p.HasResponse
			out = append(out, p)
			continue
		}
		gi := indexes[tx.DP]
		if gi == nil {
			gi = indexGroup(group)
			indexes[tx.DP] = gi
		}
		p := Pair{
			Tx:               tx,
			HasResponse:      tx.Response != nil && tx.Response.Size() > 0,
			DisjointRequest:  ownedStmts(tx.Request, gi.reqOwners),
			DisjointResponse: ownedStmts(tx.Response, gi.respOwners),
		}
		p.OneToOne = p.HasResponse && !p.DisjointResponse.Empty()
		if p.HasResponse && p.DisjointResponse.Empty() {
			p.SharedHandler = gi.sharedHandler[tx]
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tx.ID < out[j].Tx.ID })
	return out
}

// groupIndex carries the per-group inverted indexes: how many transactions'
// request/response slices own each statement, and which transactions share
// their exact response statement set with another group member.
type groupIndex struct {
	reqOwners     map[uint32]int
	respOwners    map[uint32]int
	sharedHandler map[*slice.Transaction]bool
}

// indexGroup builds the indexes for one multi-transaction demarcation-point
// group: one counting pass over the group's slice statements, then a
// partition of the duplicate-candidate response sets.
func indexGroup(group []*slice.Transaction) *groupIndex {
	nreq, nresp := 0, 0
	for _, t := range group {
		if t.Request != nil {
			nreq += t.Request.Size()
		}
		if t.Response != nil {
			nresp += t.Response.Size()
		}
	}
	gi := &groupIndex{
		reqOwners:  make(map[uint32]int, nreq),
		respOwners: make(map[uint32]int, nresp),
	}
	hashes := make([]uint64, len(group))
	for i, t := range group {
		if t.Request != nil {
			t.Request.Stmts().Each(func(s uint32) bool {
				gi.reqOwners[s]++
				return true
			})
		}
		if t.Response == nil {
			continue
		}
		var h uint64
		t.Response.Stmts().Each(func(s uint32) bool {
			gi.respOwners[s]++
			h ^= stmtHash(s)
			return true
		})
		hashes[i] = h
	}

	// Shared-handler detection partitions response sets into equality
	// classes, but only duplicate candidates — non-empty sets with no
	// uniquely owned statement — can be flagged, and a set equal to a
	// candidate shares all its owner counts and is therefore a candidate
	// itself, so non-candidates need never be compared. Candidates are
	// bucketed by an order-independent shape key (size + folded statement
	// hash); exact set equality is only verified inside a bucket.
	type shape struct {
		n int
		h uint64
	}
	var classes map[shape][][]*slice.Transaction
	for i, t := range group {
		if t.Response == nil || t.Response.Size() == 0 {
			continue
		}
		candidate := true
		t.Response.Stmts().Each(func(s uint32) bool {
			if gi.respOwners[s] == 1 {
				candidate = false
				return false
			}
			return true
		})
		if !candidate {
			continue
		}
		if classes == nil {
			classes = map[shape][][]*slice.Transaction{}
		}
		key := shape{n: t.Response.Size(), h: hashes[i]}
		placed := false
		for j, class := range classes[key] {
			if t.Response.Stmts().Equal(class[0].Response.Stmts()) {
				classes[key][j] = append(class, t)
				placed = true
				break
			}
		}
		if !placed {
			classes[key] = append(classes[key], []*slice.Transaction{t})
		}
	}
	for _, buckets := range classes {
		for _, class := range buckets {
			if len(class) < 2 {
				continue
			}
			if gi.sharedHandler == nil {
				gi.sharedHandler = make(map[*slice.Transaction]bool, len(class))
			}
			for _, t := range class {
				gi.sharedHandler[t] = true
			}
		}
	}
	return gi
}

// copyStmts clones a slice's statement set (the whole set is disjoint when
// no other transaction shares the demarcation point).
func copyStmts(r *taint.Result) *intern.Bits {
	if r == nil {
		return &intern.Bits{}
	}
	return r.Stmts().Clone()
}

// ownedStmts returns the statements of r owned by no other slice in the
// group: exactly those whose owner count is 1 (r itself).
func ownedStmts(r *taint.Result, owners map[uint32]int) *intern.Bits {
	out := &intern.Bits{}
	if r == nil {
		return out
	}
	r.Stmts().Each(func(s uint32) bool {
		if owners[s] == 1 {
			out.Add(s)
		}
		return true
	})
	return out
}

// stmtHash folds a dense statement ID into an order-independent set hash
// (a splitmix64-style bit mix).
func stmtHash(s uint32) uint64 {
	h := uint64(s) + 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// VerifyFlow runs the paper's information-flow pairing check: the disjoint
// request segment of each transaction is used as taint source; the pairing
// is confirmed when propagation reaches the transaction's own response
// slice. With the disjoint-sub-slice preprocessing this is one-to-one even
// under code reuse (Fig. 5). stats, when non-nil, receives flow-check and
// taint workload counters; VerifyFlow is sequential, so one unsynchronized
// shard suffices. sums, when non-nil, is a shared taint summary cache
// (summaries are universe-independent, so the slice phase's cache is
// directly reusable here).
func VerifyFlow(p *ir.Program, model *semmodel.Model, cg *callgraph.Graph, pairs []Pair, stats *obs.Shard, sums *taint.SummaryCache) {
	VerifyFlowBudgeted(p, model, cg, pairs, stats, sums, nil, false)
}

// VerifyFlowBudgeted is VerifyFlow under a budget: each pair's flow check
// is skipped once the budget is exhausted (one diagnostic names how many
// checks were dropped), a truncated propagation leaves the pair unconfirmed
// with a diagnostic, and a panicking check is recovered per pair. Degraded
// pairs keep FlowConfirmed == false — pairing quality downgrades, the
// report still ships. A nil budget behaves exactly like VerifyFlow. legacy
// selects the taint engine's pre-interning replay (differential oracle).
func VerifyFlowBudgeted(p *ir.Program, model *semmodel.Model, cg *callgraph.Graph,
	pairs []Pair, stats *obs.Shard, sums *taint.SummaryCache, bud *budget.Budget,
	legacy bool) []budget.Diagnostic {

	var diags []budget.Diagnostic
	for i := range pairs {
		pr := &pairs[i]
		if !pr.HasResponse {
			continue
		}
		site := fmt.Sprintf("%s@%d", pr.Tx.DP.Method, pr.Tx.DP.Index)
		if ex := bud.Over(budget.PhasePairing, site); ex != nil {
			remaining := 0
			for _, q := range pairs[i:] {
				if q.HasResponse {
					remaining++
				}
			}
			d := budget.ExceededDiag(ex)
			d.Detail = fmt.Sprintf("%s; %d flow checks skipped", ex.Limit, remaining)
			diags = append(diags, d)
			break
		}
		if d := verifyPairFlow(p, model, cg, pr, site, stats, sums, bud, legacy); d != nil {
			diags = append(diags, *d)
		}
	}
	return diags
}

// verifyPairFlow runs one pair's information-flow check, converting panics
// and budget truncation into a diagnostic (nil when the check completed).
func verifyPairFlow(p *ir.Program, model *semmodel.Model, cg *callgraph.Graph,
	pr *Pair, site string, stats *obs.Shard, sums *taint.SummaryCache,
	bud *budget.Budget, legacy bool) (diag *budget.Diagnostic) {

	defer func() {
		if r := recover(); r != nil {
			d := budget.PanicDiag(budget.PhasePairing, site, r)
			diag = &d
		}
	}()
	bud.MaybePanic(budget.PhasePairing, site)
	sp := stats.Span(obs.CatPairFlow, site)
	defer sp.End()

	stats.Add(obs.CtrPairFlowChecks, 1)
	eng := taint.NewEngine(p, model, cg)
	eng.MaxAsyncHops = 1
	eng.Stats = stats
	eng.Budget = bud
	eng.BudgetPhase = budget.PhasePairing
	eng.Legacy = legacy
	if sums != nil {
		eng.Summaries = sums
	}
	seeds := map[taint.StmtID]int{}
	src := pr.DisjointRequest
	if src.Empty() {
		src = pr.Tx.Request.Stmts()
	}
	idx := pr.Tx.Request.Index()
	idx.EachStmt(src, func(m *ir.Method, _ uint32, i int) bool {
		if d := m.Instrs[i].Def(); d != ir.NoReg {
			seeds[taint.StmtID{Method: m.Ref(), Index: i}] = d
		}
		return true
	})
	if len(seeds) == 0 {
		return nil
	}
	pr.FlowSeeds = len(seeds)
	flow := eng.ForwardFacts(seeds)
	if flow.Truncated != nil {
		d := budget.ExceededDiag(flow.Truncated)
		d.Phase = budget.PhasePairing
		d.Site = site
		return &d
	}
	// Keep the smallest reached statement as the deterministic witness of
	// the confirmation (ordered by (method, index), not by dense ID, so
	// provenance matches the pre-interning implementation byte for byte).
	pr.Tx.Response.EachStmt(func(m *ir.Method, i int) bool {
		if !flow.Contains(m.Ref(), i) {
			return true
		}
		s := taint.StmtID{Method: m.Ref(), Index: i}
		if !pr.FlowConfirmed || stmtLess(s, pr.FlowWitness) {
			pr.FlowWitness = s
		}
		pr.FlowConfirmed = true
		return true
	})
	return nil
}

// stmtLess orders statements by (method, index).
func stmtLess(a, b taint.StmtID) bool {
	if a.Method != b.Method {
		return a.Method < b.Method
	}
	return a.Index < b.Index
}

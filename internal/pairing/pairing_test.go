package pairing

import (
	"testing"

	"extractocol/internal/intern"
	"extractocol/internal/ir"
	"extractocol/internal/slice"
	"extractocol/internal/taint"
)

// The dense taint.Result is keyed by an ir.Index, so the hand-built
// transactions in these tests share one synthetic program that declares
// every method the test statement IDs refer to (16 instructions each —
// larger than any index used below).
var testIdx, testTab = buildTestUniverse()

func buildTestUniverse() (*ir.Index, *intern.SyncTable) {
	p := ir.NewProgram("a")
	add := func(class string, methods ...string) {
		c := p.AddClass(&ir.Class{Name: class})
		for _, name := range methods {
			m := ir.NewMethod(c, name, true, nil, "void")
			for i := 0; i < 15; i++ {
				m.ConstInt(int64(i))
			}
			m.ReturnVoid()
			m.Done()
		}
	}
	add("a.M", "go", "play")
	add("a.Common", "exec")
	add("a.A", "run")
	add("a.B", "run")
	add("a.C", "run", "exec")
	add("a.Handler", "on")
	add("a.Other", "exec")
	add("a.M0", "run")
	add("a.M1", "run")
	add("a.M2", "run")
	add("a.M3", "run")
	add("a.DP", "one", "two", "three")
	return ir.NewIndex(p), &intern.SyncTable{}
}

func res(stmts ...taint.StmtID) *taint.Result {
	r := taint.NewResult(testIdx, testTab)
	for _, s := range stmts {
		if !r.AddStmt(s.Method, s.Index) {
			panic("pairing test: statement outside the synthetic universe: " + s.Method)
		}
	}
	return r
}

// has reports bit-set membership of one statement identity.
func has(b *intern.Bits, id taint.StmtID) bool {
	mid, ok := testIdx.MethodID(id.Method)
	return ok && b.Has(testIdx.StmtID(mid, id.Index))
}

func s(m string, i int) taint.StmtID { return taint.StmtID{Method: m, Index: i} }

func TestSingleTransactionIsOneToOne(t *testing.T) {
	tx := &slice.Transaction{
		ID: 1, DP: s("a.M.go", 5),
		Request:  res(s("a.M.go", 1), s("a.M.go", 5)),
		Response: res(s("a.M.go", 5), s("a.M.go", 7)),
	}
	pairs := Analyze([]*slice.Transaction{tx})
	if len(pairs) != 1 || !pairs[0].OneToOne || !pairs[0].HasResponse {
		t.Fatalf("pairs = %+v", pairs)
	}
}

// Fig. 5: two transactions share the demarcation point in common code but
// keep disjoint request and response segments.
func TestSharedDPDisjointSegments(t *testing.T) {
	dp := s("a.Common.exec", 9)
	shared := s("a.Common.exec", 3)
	a := &slice.Transaction{
		ID: 1, DP: dp, Entry: ir.EntryPoint{Method: "a.A.run"},
		Request:  res(s("a.A.run", 1), shared, dp),
		Response: res(dp, s("a.A.run", 8)),
	}
	b := &slice.Transaction{
		ID: 2, DP: dp, Entry: ir.EntryPoint{Method: "a.B.run"},
		Request:  res(s("a.B.run", 1), shared, dp),
		Response: res(dp, s("a.B.run", 8)),
	}
	pairs := Analyze([]*slice.Transaction{a, b})
	for _, p := range pairs {
		if !p.OneToOne {
			t.Errorf("tx %d not one-to-one", p.Tx.ID)
		}
		if p.SharedHandler {
			t.Errorf("tx %d wrongly flagged shared handler", p.Tx.ID)
		}
		// The disjoint request segment must exclude the shared statements.
		if has(p.DisjointRequest, shared) || has(p.DisjointRequest, dp) {
			t.Errorf("tx %d disjoint segment contains shared code", p.Tx.ID)
		}
		if p.DisjointRequest.Empty() {
			t.Errorf("tx %d has no disjoint request segment", p.Tx.ID)
		}
	}
}

func TestCommonResponseHandlerDetected(t *testing.T) {
	dp := s("a.C.exec", 9)
	handler := res(dp, s("a.Handler.on", 2))
	a := &slice.Transaction{ID: 1, DP: dp,
		Request:  res(s("a.A.run", 1), dp),
		Response: handler,
	}
	b := &slice.Transaction{ID: 2, DP: dp,
		Request:  res(s("a.B.run", 1), dp),
		Response: res(dp, s("a.Handler.on", 2)),
	}
	pairs := Analyze([]*slice.Transaction{a, b})
	for _, p := range pairs {
		if p.OneToOne {
			t.Errorf("tx %d should not be one-to-one (common handler)", p.Tx.ID)
		}
		if !p.SharedHandler {
			t.Errorf("tx %d should be flagged as shared handler", p.Tx.ID)
		}
	}
}

func TestNoResponse(t *testing.T) {
	tx := &slice.Transaction{ID: 1, DP: s("a.M.play", 2),
		Request: res(s("a.M.play", 0), s("a.M.play", 2))}
	pairs := Analyze([]*slice.Transaction{tx})
	if pairs[0].HasResponse || pairs[0].OneToOne {
		t.Fatalf("pairs = %+v", pairs)
	}
}

package pairing

import (
	"testing"

	"extractocol/internal/ir"
	"extractocol/internal/slice"
	"extractocol/internal/taint"
)

func res(stmts ...taint.StmtID) *taint.Result {
	r := &taint.Result{Stmts: map[taint.StmtID]bool{}}
	for _, s := range stmts {
		r.Stmts[s] = true
	}
	return r
}

func s(m string, i int) taint.StmtID { return taint.StmtID{Method: m, Index: i} }

func TestSingleTransactionIsOneToOne(t *testing.T) {
	tx := &slice.Transaction{
		ID: 1, DP: s("a.M.go", 5),
		Request:  res(s("a.M.go", 1), s("a.M.go", 5)),
		Response: res(s("a.M.go", 5), s("a.M.go", 7)),
	}
	pairs := Analyze([]*slice.Transaction{tx})
	if len(pairs) != 1 || !pairs[0].OneToOne || !pairs[0].HasResponse {
		t.Fatalf("pairs = %+v", pairs)
	}
}

// Fig. 5: two transactions share the demarcation point in common code but
// keep disjoint request and response segments.
func TestSharedDPDisjointSegments(t *testing.T) {
	dp := s("a.Common.exec", 9)
	shared := s("a.Common.exec", 3)
	a := &slice.Transaction{
		ID: 1, DP: dp, Entry: ir.EntryPoint{Method: "a.A.run"},
		Request:  res(s("a.A.run", 1), shared, dp),
		Response: res(dp, s("a.A.run", 8)),
	}
	b := &slice.Transaction{
		ID: 2, DP: dp, Entry: ir.EntryPoint{Method: "a.B.run"},
		Request:  res(s("a.B.run", 1), shared, dp),
		Response: res(dp, s("a.B.run", 8)),
	}
	pairs := Analyze([]*slice.Transaction{a, b})
	for _, p := range pairs {
		if !p.OneToOne {
			t.Errorf("tx %d not one-to-one", p.Tx.ID)
		}
		if p.SharedHandler {
			t.Errorf("tx %d wrongly flagged shared handler", p.Tx.ID)
		}
		// The disjoint request segment must exclude the shared statements.
		if p.DisjointRequest[shared] || p.DisjointRequest[dp] {
			t.Errorf("tx %d disjoint segment contains shared code", p.Tx.ID)
		}
		if len(p.DisjointRequest) == 0 {
			t.Errorf("tx %d has no disjoint request segment", p.Tx.ID)
		}
	}
}

func TestCommonResponseHandlerDetected(t *testing.T) {
	dp := s("a.C.exec", 9)
	handler := res(dp, s("a.Handler.on", 2))
	a := &slice.Transaction{ID: 1, DP: dp,
		Request:  res(s("a.A.run", 1), dp),
		Response: handler,
	}
	b := &slice.Transaction{ID: 2, DP: dp,
		Request:  res(s("a.B.run", 1), dp),
		Response: res(dp, s("a.Handler.on", 2)),
	}
	pairs := Analyze([]*slice.Transaction{a, b})
	for _, p := range pairs {
		if p.OneToOne {
			t.Errorf("tx %d should not be one-to-one (common handler)", p.Tx.ID)
		}
		if !p.SharedHandler {
			t.Errorf("tx %d should be flagged as shared handler", p.Tx.ID)
		}
	}
}

func TestNoResponse(t *testing.T) {
	tx := &slice.Transaction{ID: 1, DP: s("a.M.play", 2),
		Request: res(s("a.M.play", 0), s("a.M.play", 2))}
	pairs := Analyze([]*slice.Transaction{tx})
	if pairs[0].HasResponse || pairs[0].OneToOne {
		t.Fatalf("pairs = %+v", pairs)
	}
}

package pairing

// The pre-index implementation of Analyze lives in oracle.go as the
// exported AnalyzeOracle (the differential harness also compares against
// it). The indexed rewrite in pairing.go must produce deep-equal output for
// any input; the equivalence tests below check that over hand-built edge
// cases, randomized transaction sets, and real corpus slices.

import (
	"fmt"
	"reflect"
	"testing"

	"extractocol/internal/callgraph"
	"extractocol/internal/corpus"
	"extractocol/internal/semmodel"
	"extractocol/internal/slice"
	"extractocol/internal/taint"
)

// analyzeOracle keeps the historical test-local name.
var analyzeOracle = AnalyzeOracle

// requireEquivalent fails unless the indexed Analyze and the oracle agree on
// every Pair field, including nil-vs-empty map distinctions.
func requireEquivalent(t *testing.T, label string, txs []*slice.Transaction) {
	t.Helper()
	got := Analyze(txs)
	want := analyzeOracle(txs)
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, oracle %d", label, len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s: pair %d (tx %d) diverges\n got: %+v\nwant: %+v",
				label, i, want[i].Tx.ID, got[i], want[i])
		}
	}
}

// TestAnalyzeMatchesOracleEdgeCases covers the group shapes that exercise
// every branch of the index build: singleton groups, nil requests and
// responses, empty (Size 0) responses, fully shared sets, partially shared
// sets, and exact-duplicate response handlers.
func TestAnalyzeMatchesOracleEdgeCases(t *testing.T) {
	dp1 := s("a.Common.exec", 9)
	dp2 := s("a.Other.exec", 4)
	shared := s("a.Common.exec", 3)
	handler := func() *taint.Result { return res(dp1, s("a.Handler.on", 2)) }

	cases := map[string][]*slice.Transaction{
		"empty": nil,
		"singleton": {
			{ID: 1, DP: dp1, Request: res(s("a.A.run", 1), dp1), Response: res(dp1, s("a.A.run", 8))},
		},
		"nil request": {
			{ID: 1, DP: dp1, Response: res(dp1)},
			{ID: 2, DP: dp1, Request: res(dp1), Response: res(dp1, s("a.B.run", 2))},
		},
		"nil response": {
			{ID: 1, DP: dp1, Request: res(s("a.A.run", 1), dp1)},
			{ID: 2, DP: dp1, Request: res(s("a.B.run", 1), dp1), Response: res(dp1)},
		},
		"empty response set": {
			{ID: 1, DP: dp1, Request: res(dp1), Response: res()},
			{ID: 2, DP: dp1, Request: res(dp1), Response: res()},
		},
		"disjoint segments": {
			{ID: 1, DP: dp1, Request: res(s("a.A.run", 1), shared, dp1), Response: res(dp1, s("a.A.run", 8))},
			{ID: 2, DP: dp1, Request: res(s("a.B.run", 1), shared, dp1), Response: res(dp1, s("a.B.run", 8))},
		},
		"shared handler": {
			{ID: 1, DP: dp1, Request: res(s("a.A.run", 1), dp1), Response: handler()},
			{ID: 2, DP: dp1, Request: res(s("a.B.run", 1), dp1), Response: handler()},
		},
		"fully shared no duplicate": {
			{ID: 1, DP: dp1, Request: res(dp1), Response: res(dp1, shared)},
			{ID: 2, DP: dp1, Request: res(dp1), Response: res(dp1, shared, s("a.B.run", 8))},
			{ID: 3, DP: dp1, Request: res(dp1), Response: res(dp1, shared, s("a.B.run", 8), s("a.C.run", 8))},
		},
		"two groups": {
			{ID: 1, DP: dp1, Request: res(s("a.A.run", 1), dp1), Response: res(dp1, s("a.A.run", 8))},
			{ID: 2, DP: dp1, Request: res(s("a.B.run", 1), dp1), Response: res(dp1, s("a.B.run", 8))},
			{ID: 3, DP: dp2, Request: res(s("a.C.run", 1), dp2), Response: res(dp2, s("a.C.run", 8))},
		},
	}
	for label, txs := range cases {
		requireEquivalent(t, label, txs)
	}
}

// TestAnalyzeMatchesOracleRandomized throws deterministic pseudo-random
// transaction sets at both implementations: small statement alphabets force
// heavy sharing, duplicate response sets, and hash-bucket collisions.
func TestAnalyzeMatchesOracleRandomized(t *testing.T) {
	// Tiny xorshift so the test is hermetic and reproducible.
	seed := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return int(seed % uint64(n))
	}
	stmt := func() taint.StmtID {
		return s(fmt.Sprintf("a.M%d.run", next(4)), next(6))
	}
	randRes := func() *taint.Result {
		switch next(5) {
		case 0:
			return nil
		case 1:
			return res()
		default:
			r := res()
			for i, n := 0, 1+next(5); i < n; i++ {
				st := stmt()
				r.AddStmt(st.Method, st.Index)
			}
			return r
		}
	}
	dps := []taint.StmtID{s("a.DP.one", 1), s("a.DP.two", 2), s("a.DP.three", 3)}
	for trial := 0; trial < 200; trial++ {
		var txs []*slice.Transaction
		for i, n := 0, next(9); i < n; i++ {
			txs = append(txs, &slice.Transaction{
				ID:       i + 1,
				DP:       dps[next(len(dps))],
				Request:  randRes(),
				Response: randRes(),
			})
		}
		requireEquivalent(t, fmt.Sprintf("trial %d", trial), txs)
	}
}

// TestAnalyzeMatchesOracleOnCorpus runs both implementations over real
// slicer output for every corpus app — the inputs the rewrite actually has
// to preserve byte-for-byte through the report pipeline.
func TestAnalyzeMatchesOracleOnCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep in -short mode")
	}
	model := semmodel.Default()
	for _, app := range corpus.Apps() {
		cg := callgraph.Build(app.Prog, model)
		txs := slice.Find(app.Prog, model, cg, slice.Options{MaxAsyncHops: 1})
		requireEquivalent(t, app.Spec.Name, txs)
	}
}

// benchTxs builds the running example's transaction set once for the
// old-vs-new comparison benchmarks (EXPERIMENTS.md quotes their ratio).
func benchTxs(b *testing.B) []*slice.Transaction {
	b.Helper()
	app, err := corpus.ByName("radio reddit")
	if err != nil {
		b.Fatal(err)
	}
	model := semmodel.Default()
	cg := callgraph.Build(app.Prog, model)
	txs := slice.Find(app.Prog, model, cg, slice.Options{MaxAsyncHops: 1})
	if len(txs) == 0 {
		b.Fatal("no transactions")
	}
	return txs
}

func BenchmarkAnalyzeIndexed(b *testing.B) {
	txs := benchTxs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(txs)
	}
}

func BenchmarkAnalyzeOracle(b *testing.B) {
	txs := benchTxs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzeOracle(txs)
	}
}

// Property tests for the ByteStats accounting invariants of MatchResult,
// holding over randomized generated traffic for both matcher backends:
//
//  1. partition: matched + unmatched entries account for every considered
//     entry (TraceEntries), and skipped entries are charged nowhere;
//  2. additivity: matching a trace equals matching its concatenated parts
//     — entry counts, byte statistics, and unmatched lists all compose;
//  3. empty trace: all-zero statistics.
package trace

import (
	"reflect"
	"testing"

	"extractocol/internal/siglang"
)

// bothBackends runs a subtest against the interpretive and VM matchers.
func bothBackends(t *testing.T, f func(t *testing.T, opt MatchOptions)) {
	t.Run("interp", func(t *testing.T) { f(t, MatchOptions{}) })
	t.Run("vm", func(t *testing.T) { f(t, MatchOptions{VM: true}) })
}

func TestPropMatchedPlusUnmatchedIsTotal(t *testing.T) {
	reps := genReports(t, 51, 3)
	bothBackends(t, func(t *testing.T, opt MatchOptions) {
		for i, rep := range reps {
			labeled := RandEntries(uint64(900+i), rep, 200)
			entries := Entries(labeled)
			skipped := 0
			for _, e := range entries {
				if e.Status >= 400 {
					skipped++
				}
			}
			res := MatchReportOpts(rep, entries, opt)
			if res.TraceEntries != len(entries)-skipped {
				t.Fatalf("app %d: TraceEntries = %d, want %d considered entries",
					i, res.TraceEntries, len(entries)-skipped)
			}
			if res.MatchedEntries+len(res.Unmatched) != res.TraceEntries {
				t.Fatalf("app %d: %d matched + %d unmatched != %d considered",
					i, res.MatchedEntries, len(res.Unmatched), res.TraceEntries)
			}
		}
	})
}

func TestPropStatsAdditiveAcrossEntries(t *testing.T) {
	reps := genReports(t, 52, 3)
	bothBackends(t, func(t *testing.T, opt MatchOptions) {
		for i, rep := range reps {
			entries := Entries(RandEntries(uint64(950+i), rep, 240))
			full := MatchReportOpts(rep, entries, opt)
			for _, cut := range []int{0, 1, len(entries) / 3, len(entries) / 2, len(entries)} {
				a := MatchReportOpts(rep, entries[:cut], opt)
				b := MatchReportOpts(rep, entries[cut:], opt)
				sum := func(f func(*MatchResult) siglang.ByteStats) siglang.ByteStats {
					s := f(a)
					s.Add(f(b))
					return s
				}
				if got := sum(func(r *MatchResult) siglang.ByteStats { return r.URIStats }); got != full.URIStats {
					t.Fatalf("app %d cut %d: URIStats %+v + split != full %+v", i, cut, got, full.URIStats)
				}
				if got := sum(func(r *MatchResult) siglang.ByteStats { return r.ReqStats }); got != full.ReqStats {
					t.Fatalf("app %d cut %d: ReqStats not additive", i, cut)
				}
				if got := sum(func(r *MatchResult) siglang.ByteStats { return r.RespStats }); got != full.RespStats {
					t.Fatalf("app %d cut %d: RespStats not additive", i, cut)
				}
				if a.TraceEntries+b.TraceEntries != full.TraceEntries ||
					a.MatchedEntries+b.MatchedEntries != full.MatchedEntries {
					t.Fatalf("app %d cut %d: entry counts not additive", i, cut)
				}
				joined := append(append([]string{}, a.Unmatched...), b.Unmatched...)
				if len(joined) == 0 {
					joined = nil
				}
				var fullUnmatched []string
				if len(full.Unmatched) > 0 {
					fullUnmatched = full.Unmatched
				}
				if !reflect.DeepEqual(joined, fullUnmatched) {
					t.Fatalf("app %d cut %d: unmatched lists not additive", i, cut)
				}
			}
		}
	})
}

func TestPropEmptyTraceIsZero(t *testing.T) {
	reps := genReports(t, 53, 2)
	bothBackends(t, func(t *testing.T, opt MatchOptions) {
		for i, rep := range reps {
			res := MatchReportOpts(rep, nil, opt)
			if res.TraceEntries != 0 || res.MatchedEntries != 0 || len(res.Unmatched) != 0 {
				t.Fatalf("app %d: empty trace counted entries: %+v", i, res)
			}
			var zero siglang.ByteStats
			if res.URIStats != zero || res.ReqStats != zero || res.RespStats != zero {
				t.Fatalf("app %d: empty trace accounted bytes: %+v", i, res)
			}
			if res.SigsWithTraffic != 0 || res.SigsValid != 0 {
				t.Fatalf("app %d: empty trace validated signatures: %+v", i, res)
			}
		}
	})
}

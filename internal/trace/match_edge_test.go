// MatchReport edge cases: an empty trace, signatures that never see
// traffic, and the byte accounting of unmatched entries. These pin the
// denominators of the §5.1 validity summary — a signature without observed
// traffic must be excluded from SigsWithTraffic rather than counted valid,
// and unmatched exchanges must not leak bytes into the Table 2 statistics.
package trace

import (
	"testing"

	"extractocol/internal/core"
	"extractocol/internal/sigbuild"
	"extractocol/internal/siglang"
)

func litTx(id int, method, uri string) *core.Transaction {
	return &core.Transaction{ID: id, Request: &sigbuild.RequestSig{
		Method: method, URI: &siglang.Lit{Val: uri}}}
}

func TestMatchReportEmptyTrace(t *testing.T) {
	rep := &core.Report{Transactions: []*core.Transaction{
		litTx(1, "GET", "https://a.example.com/x"),
	}}
	res := MatchReport(rep, nil)
	if res.TraceEntries != 0 || res.MatchedEntries != 0 {
		t.Fatalf("entry counts = %+v", res)
	}
	if res.SigsWithTraffic != 0 || res.SigsValid != 0 {
		t.Fatalf("a signature without traffic was counted: %+v", res)
	}
	if len(res.Unmatched) != 0 {
		t.Fatalf("unmatched = %v, want none", res.Unmatched)
	}
	if res.URIStats.Total()+res.ReqStats.Total()+res.RespStats.Total() != 0 {
		t.Fatalf("empty trace accounted bytes: %+v", res)
	}
}

func TestMatchReportSignatureWithoutTraffic(t *testing.T) {
	// Two signatures, traffic for one: only the exercised signature enters
	// the validity denominator, and it is valid.
	rep := &core.Report{Transactions: []*core.Transaction{
		litTx(1, "GET", "https://a.example.com/seen"),
		litTx(2, "POST", "https://a.example.com/never"),
	}}
	es := []Entry{
		{Method: "GET", URL: "https://a.example.com/seen", Status: 200, RouteID: "GET /seen"},
		{Method: "GET", URL: "https://a.example.com/seen", Status: 404, RouteID: "GET /seen"}, // errors are skipped
	}
	res := MatchReport(rep, es)
	if res.TraceEntries != 1 || res.MatchedEntries != 1 {
		t.Fatalf("entry counts = %+v", res)
	}
	if res.SigsWithTraffic != 1 {
		t.Fatalf("SigsWithTraffic = %d, want 1 (the POST sig saw no traffic)", res.SigsWithTraffic)
	}
	if res.SigsValid != 1 {
		t.Fatalf("SigsValid = %d, want 1", res.SigsValid)
	}
	// The matched literal URI is all key bytes.
	if res.URIStats.Key == 0 || res.URIStats.None != 0 {
		t.Fatalf("uri stats = %+v", res.URIStats)
	}
}

func TestMatchReportUnmatchedEntryByteAccounting(t *testing.T) {
	rep := &core.Report{Transactions: []*core.Transaction{
		litTx(1, "GET", "https://a.example.com/known"),
	}}
	es := []Entry{
		// Unmatched by URL, carrying request and response payloads that must
		// NOT be accounted anywhere.
		{Method: "GET", URL: "https://other.example.com/mystery", Status: 200,
			ReqBody: "k=v&x=y", RespType: "json", RespBody: `{"a":1}`,
			RouteID: "GET /mystery"},
		// Unmatched by method.
		{Method: "DELETE", URL: "https://a.example.com/known", Status: 200,
			RouteID: "DELETE /known"},
	}
	res := MatchReport(rep, es)
	if res.TraceEntries != 2 || res.MatchedEntries != 0 {
		t.Fatalf("entry counts = %+v", res)
	}
	if len(res.Unmatched) != 2 ||
		res.Unmatched[0] != "GET /mystery" || res.Unmatched[1] != "DELETE /known" {
		t.Fatalf("unmatched = %v", res.Unmatched)
	}
	if res.SigsWithTraffic != 0 || res.SigsValid != 0 {
		t.Fatalf("unmatched traffic reached a signature: %+v", res)
	}
	if got := res.URIStats.Total() + res.ReqStats.Total() + res.RespStats.Total(); got != 0 {
		t.Fatalf("unmatched entries accounted %d bytes, want 0", got)
	}
}

// Labeled-traffic generator tests: RandEntries must be deterministic per
// seed, its labels must be exact ground truth (computed from the regex
// specification, not from a matcher), and both matcher backends — at any
// worker count — must reproduce those labels verbatim.
package trace

import (
	"encoding/json"
	"reflect"
	"testing"

	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/fuzz"
	"extractocol/internal/sigvm"
)

// genReports analyzes a few seeded generated apps.
func genReports(t testing.TB, seed uint64, n int) []*core.Report {
	t.Helper()
	var reps []*core.Report
	for _, app := range corpus.Rand(seed, n) {
		rep, err := core.Analyze(app.Prog, core.NewOptions())
		if err != nil {
			t.Fatalf("%s: %v", app.Spec.Name, err)
		}
		reps = append(reps, rep)
	}
	return reps
}

func TestRandEntriesDeterministic(t *testing.T) {
	rep := genReports(t, 11, 1)[0]
	a := RandEntries(42, rep, 100)
	b := RandEntries(42, rep, 100)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different labeled traffic")
	}
	if len(a) != 100 {
		t.Fatalf("generated %d entries, want 100", len(a))
	}
	c := RandEntries(43, rep, 100)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traffic")
	}
}

func TestRandEntriesMixesVerdicts(t *testing.T) {
	rep := genReports(t, 12, 1)[0]
	if len(rep.Transactions) == 0 {
		t.Skip("generated app yielded no transactions")
	}
	labeled := RandEntries(7, rep, 300)
	matching, misses := 0, 0
	for _, le := range labeled {
		if le.WantID != 0 {
			matching++
		} else {
			misses++
		}
	}
	if matching == 0 || misses == 0 {
		t.Fatalf("degenerate corpus: %d matching, %d near-miss", matching, misses)
	}
}

// TestClassifyReproducesLabels is the exact-verdict gate: every entry's
// best-match transaction must equal the label, for the interpretive
// backend, the VM backend, and the VM backend under parallel fan-out —
// and all three full results must be byte-identical.
func TestClassifyReproducesLabels(t *testing.T) {
	for i, rep := range genReports(t, 21, 4) {
		labeled := RandEntries(uint64(100+i), rep, 250)
		entries := Entries(labeled)
		bundle := sigvm.Compile(rep)
		interp := Classify(rep, entries, ClassifyOptions{})
		vm := Classify(rep, entries, ClassifyOptions{VM: true, Bundle: bundle})
		vmPar := Classify(rep, entries, ClassifyOptions{VM: true, Bundle: bundle, Workers: 4})

		for j, le := range labeled {
			if interp.Verdicts[j] != le.WantID {
				t.Fatalf("app %d entry %d (%s %s): interp verdict %d, label %d",
					i, j, le.Method, le.URL, interp.Verdicts[j], le.WantID)
			}
		}
		ji := mustJSON(t, interp)
		jv := mustJSON(t, vm)
		jp := mustJSON(t, vmPar)
		if ji != jv {
			t.Fatalf("app %d: interp and VM classifications differ:\n%s\n%s", i, ji, jv)
		}
		if jv != jp {
			t.Fatalf("app %d: serial and parallel VM classifications differ:\n%s\n%s", i, jv, jp)
		}
	}
}

// TestMatchReportVMEquivalence drives both backends over real interpreter
// traffic (not generated entries) from seeded apps and demands identical
// MatchResults.
func TestMatchReportVMEquivalence(t *testing.T) {
	for _, app := range corpus.Rand(31, 4) {
		rep, err := core.Analyze(app.Prog, core.NewOptions())
		if err != nil {
			t.Fatalf("%s: %v", app.Spec.Name, err)
		}
		n := app.NewNetwork()
		if _, err := fuzz.Run(app.Prog, n, fuzz.Manual); err != nil {
			t.Fatalf("%s: %v", app.Spec.Name, err)
		}
		entries := FromNetwork(n.Trace())
		want := MatchReport(rep, entries)
		got := MatchReportOpts(rep, entries, MatchOptions{VM: true})
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: backends disagree:\ninterp %+v\nvm     %+v", app.Spec.Name, want, got)
		}
	}
}

func mustJSON(t testing.TB, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

package trace

import (
	"path/filepath"
	"reflect"
	"testing"

	"extractocol/internal/core"
	"extractocol/internal/httpsim"
	"extractocol/internal/ir"
	"extractocol/internal/runtime"
)

func sampleEntries() []Entry {
	return []Entry{
		{Seq: 1, Method: "GET", URL: "https://a.example.com/items?id=7&sort=top",
			Status: 200, RespType: "json",
			RespBody: `{"token":"T","items":[{"name":"x","price":3}]}`,
			RouteID:  "GET /items"},
		{Seq: 2, Method: "POST", URL: "https://a.example.com/login",
			ReqBody: "user=alice&passwd=pw", Status: 200, RespType: "json",
			RespBody: `{"session":"S"}`, RouteID: "POST /login"},
		{Seq: 3, Method: "GET", URL: "https://a.example.com/items?id=8",
			Status: 200, RespType: "json", RespBody: `{"token":"U"}`,
			RouteID: "GET /items"},
		{Seq: 4, Method: "GET", URL: "https://a.example.com/broken",
			Status: 404, RespType: "text", RouteID: ""},
		{Seq: 5, Method: "GET", URL: "https://a.example.com/feed.xml",
			Status: 200, RespType: "xml",
			RespBody: `<feed version="2"><item><title>t</title></item></feed>`,
			RouteID:  "GET /feed.xml"},
	}
}

func TestUniqueRoutesAndCounts(t *testing.T) {
	es := sampleEntries()
	routes := UniqueRoutes(es)
	want := []string{"GET /feed.xml", "GET /items", "POST /login"}
	if !reflect.DeepEqual(routes, want) {
		t.Fatalf("routes = %v", routes)
	}
	counts := CountByMethod(es)
	if counts["GET"] != 2 || counts["POST"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestBodyKindCounts(t *testing.T) {
	q, j, x := BodyKindCounts(sampleEntries())
	if q != 1 { // login form body
		t.Errorf("query = %d", q)
	}
	if j != 2 { // two unique routes with JSON responses
		t.Errorf("json = %d", j)
	}
	if x != 1 {
		t.Errorf("xml = %d", x)
	}
}

func TestKeywordExtraction(t *testing.T) {
	es := sampleEntries()
	req := RequestKeywords(es)
	for _, want := range []string{"id", "sort", "user", "passwd"} {
		if !contains(req, want) {
			t.Errorf("request keywords missing %q: %v", want, req)
		}
	}
	resp := ResponseKeywords(es)
	for _, want := range []string{"token", "items", "name", "price", "session", "feed", "item", "title", "version"} {
		if !contains(resp, want) {
			t.Errorf("response keywords missing %q: %v", want, resp)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	es := sampleEntries()
	if err := Save(path, es); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(es, got) {
		t.Fatalf("round trip mismatch:\n%v\n%v", es, got)
	}
}

func TestFromNetwork(t *testing.T) {
	n := httpsim.NewNetwork()
	s := httpsim.NewServer("h.example.com")
	s.Handle("GET", "/x", func(r *httpsim.Request) *httpsim.Response {
		return httpsim.JSON(`{"a":1}`)
	})
	n.Register(s)
	n.RoundTrip(&httpsim.Request{Method: "GET", URL: "https://h.example.com/x"})
	es := FromNetwork(n.Trace())
	if len(es) != 1 || es[0].RouteID != "GET h.example.com/x" || es[0].RespType != "json" {
		t.Fatalf("entries = %+v", es)
	}
}

// End-to-end: the static analyzer's signatures must match the interpreter's
// actual traffic.
func TestMatchReportEndToEnd(t *testing.T) {
	p := ir.NewProgram("t.e2e")
	c := p.AddClass(&ir.Class{Name: "t.e2e.A"})
	b := ir.NewMethod(c, "go", false, []string{"int"}, "void")
	id := b.Param(0)
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial("java.lang.StringBuilder.<init>", sb)
	s1 := b.ConstStr("https://e2e.example.com/items?id=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, s1)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, id)
	uri := b.Invoke("java.lang.StringBuilder.toString", sb)
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial("org.apache.http.client.methods.HttpGet.<init>", req, uri)
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial("org.apache.http.impl.client.DefaultHttpClient.<init>", cl)
	resp := b.Invoke("org.apache.http.client.HttpClient.execute", cl, req)
	ent := b.Invoke("org.apache.http.HttpResponse.getEntity", resp)
	raw := b.InvokeStatic("org.apache.http.util.EntityUtils.toString", ent)
	js := b.InvokeStatic("org.json.JSONObject.parse", raw)
	k := b.ConstStr("token")
	b.Invoke("org.json.JSONObject.getString", js, k)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.e2e.A.go", Kind: ir.EventClick}}

	// Static side.
	rep, err := core.Analyze(p, core.NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Transactions) != 1 {
		t.Fatalf("transactions = %d", len(rep.Transactions))
	}

	// Dynamic side.
	n := httpsim.NewNetwork()
	s := httpsim.NewServer("e2e.example.com")
	s.Handle("GET", "/items", func(r *httpsim.Request) *httpsim.Response {
		return httpsim.JSON(`{"token":"TK","extra":"ignored"}`)
	})
	n.Register(s)
	vmRun(t, p, n)

	es := FromNetwork(n.Trace())
	res := MatchReport(rep, es)
	if res.TraceEntries != 1 || res.MatchedEntries != 1 {
		t.Fatalf("match result = %+v", res)
	}
	if res.SigsWithTraffic != 1 || res.SigsValid != 1 {
		t.Fatalf("sig validity = %+v", res)
	}
	// Response accounting: "token" key matched, "extra" unread -> None.
	if res.RespStats.Key == 0 || res.RespStats.None == 0 {
		t.Fatalf("resp stats = %+v", res.RespStats)
	}
}

func vmRun(t *testing.T, p *ir.Program, n *httpsim.Network) {
	t.Helper()
	vm := runtime.New(p, n)
	for _, ep := range p.Manifest.EntryPoints {
		if err := vm.Fire(ep); err != nil {
			t.Fatal(err)
		}
	}
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

func TestMatchReportUnmatchedTraffic(t *testing.T) {
	rep := &core.Report{}
	es := []Entry{{Method: "GET", URL: "https://x.example.com/a", Status: 200, RouteID: "GET /a"}}
	res := MatchReport(rep, es)
	if res.MatchedEntries != 0 || len(res.Unmatched) != 1 {
		t.Fatalf("res = %+v", res)
	}
}

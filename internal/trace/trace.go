// Package trace models captured HTTP traffic: serialization of recorded
// transactions, unique-message accounting against ground-truth routes,
// keyword extraction from payloads, and matching of traffic against
// Extractocol signatures with the byte-level statistics of Table 2.
package trace

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"sort"
	"strings"

	"extractocol/internal/httpsim"
)

// Entry is one serializable traffic-trace record.
type Entry struct {
	Seq        int               `json:"seq"`
	Method     string            `json:"method"`
	URL        string            `json:"url"`
	ReqHeaders map[string]string `json:"req_headers,omitempty"`
	ReqBody    string            `json:"req_body,omitempty"`
	Status     int               `json:"status"`
	RespType   string            `json:"resp_type"`
	RespBody   string            `json:"resp_body,omitempty"`
	RouteID    string            `json:"route_id"`
}

// FromNetwork converts recorded transactions into trace entries.
func FromNetwork(txs []*httpsim.Transaction) []Entry {
	out := make([]Entry, 0, len(txs))
	for _, t := range txs {
		out = append(out, Entry{
			Seq:        t.Seq,
			Method:     t.Request.Method,
			URL:        t.Request.URL,
			ReqHeaders: t.Request.Headers,
			ReqBody:    t.Request.Body,
			Status:     t.Response.Status,
			RespType:   t.Response.Type,
			RespBody:   t.Response.Body,
			RouteID:    t.Response.RouteID,
		})
	}
	return out
}

// Save writes a trace as JSON lines.
func Save(path string, entries []Entry) error {
	var b strings.Builder
	for _, e := range entries {
		data, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("trace: marshal: %w", err)
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// Load reads a JSON-lines trace.
func Load(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("trace: parse: %w", err)
		}
		out = append(out, e)
	}
	return out, nil
}

// UniqueRoutes returns the distinct ground-truth route IDs observed (the
// grouping the paper performed manually on URI patterns), sorted.
func UniqueRoutes(entries []Entry) []string {
	set := map[string]bool{}
	for _, e := range entries {
		if e.RouteID != "" && e.Status < 400 {
			set[e.RouteID] = true
		}
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// CountByMethod tallies unique successful routes per HTTP method.
func CountByMethod(entries []Entry) map[string]int {
	perMethod := map[string]map[string]bool{}
	for _, e := range entries {
		if e.RouteID == "" || e.Status >= 400 {
			continue
		}
		if perMethod[e.Method] == nil {
			perMethod[e.Method] = map[string]bool{}
		}
		perMethod[e.Method][e.RouteID] = true
	}
	out := map[string]int{}
	for m, rs := range perMethod {
		out[m] = len(rs)
	}
	return out
}

// BodyKindCounts tallies unique routes by payload representation: request
// query-string bodies, JSON bodies on either side, XML bodies.
func BodyKindCounts(entries []Entry) (query, jsonN, xmlN int) {
	q, j, x := map[string]bool{}, map[string]bool{}, map[string]bool{}
	for _, e := range entries {
		if e.RouteID == "" || e.Status >= 400 {
			continue
		}
		if e.ReqBody != "" && isQueryBody(e.ReqBody) {
			q[e.RouteID] = true
		}
		if (e.ReqBody != "" && json.Valid([]byte(e.ReqBody))) || e.RespType == "json" {
			j[e.RouteID] = true
		}
		if e.RespType == "xml" || strings.HasPrefix(strings.TrimSpace(e.ReqBody), "<") {
			x[e.RouteID] = true
		}
	}
	return len(q), len(j), len(x)
}

func isQueryBody(body string) bool {
	if json.Valid([]byte(body)) && strings.HasPrefix(strings.TrimSpace(body), "{") {
		return false
	}
	return strings.Contains(body, "=")
}

// RequestKeywords extracts the constant protocol keywords of the request
// side of a trace: query-string keys (URL and body) and JSON body keys.
func RequestKeywords(entries []Entry) []string {
	set := map[string]bool{}
	for _, e := range entries {
		if e.Status >= 400 {
			continue
		}
		if u, err := url.Parse(e.URL); err == nil {
			for k := range u.Query() {
				set[k] = true
			}
		}
		collectBodyKeywords(e.ReqBody, set)
	}
	return sorted(set)
}

// ResponseKeywords extracts JSON keys and XML tags/attributes from the
// response bodies of a trace.
func ResponseKeywords(entries []Entry) []string {
	set := map[string]bool{}
	for _, e := range entries {
		if e.Status >= 400 {
			continue
		}
		switch e.RespType {
		case "json":
			collectJSONKeys([]byte(e.RespBody), set)
		case "xml":
			collectXMLNames(e.RespBody, set)
		}
	}
	return sorted(set)
}

func collectBodyKeywords(body string, set map[string]bool) {
	if body == "" {
		return
	}
	if json.Valid([]byte(body)) && strings.HasPrefix(strings.TrimSpace(body), "{") {
		collectJSONKeys([]byte(body), set)
		return
	}
	for _, pair := range strings.Split(body, "&") {
		if k, _, found := strings.Cut(pair, "="); found && k != "" {
			set[k] = true
		}
	}
}

func collectJSONKeys(data []byte, set map[string]bool) {
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return
	}
	var walk func(any)
	walk = func(v any) {
		switch t := v.(type) {
		case map[string]any:
			for k, sub := range t {
				set[k] = true
				walk(sub)
			}
		case []any:
			for _, sub := range t {
				walk(sub)
			}
		}
	}
	walk(v)
}

func collectXMLNames(body string, set map[string]bool) {
	inTag := false
	var tag strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case c == '<':
			inTag = true
			tag.Reset()
		case inTag && (c == '>' || c == ' ' || c == '/'):
			name := tag.String()
			if name != "" && name[0] != '?' && name[0] != '!' {
				set[name] = true
			}
			if c == ' ' {
				// Attributes follow: scan name=... pairs until '>'.
				j := i
				for j < len(body) && body[j] != '>' {
					j++
				}
				for _, part := range strings.Fields(body[i:j]) {
					if k, _, found := strings.Cut(part, "="); found {
						set[strings.TrimSpace(k)] = true
					}
				}
				i = j
			}
			inTag = false
		case inTag:
			tag.WriteByte(c)
		}
	}
}

func sorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

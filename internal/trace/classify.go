package trace

import (
	"runtime"
	"sync"

	"extractocol/internal/core"
	"extractocol/internal/obs"
	"extractocol/internal/sigvm"
)

// ClassifyOptions configures Classify: backend selection (as in
// MatchOptions) plus the worker fan-out.
type ClassifyOptions struct {
	// VM matches with the compiled sigvm backend; false is the
	// interpretive oracle.
	VM bool
	// Bundle optionally reuses a compiled bundle (VM only); nil compiles
	// one from the report.
	Bundle *sigvm.Bundle
	// Workers is the matcher fan-out; 0 or 1 runs serially, <0 uses
	// GOMAXPROCS. The result is byte-identical at any width: entries are
	// split into contiguous chunks and partial results merge in chunk
	// order.
	Workers int
	// Col, when non-nil, receives per-entry classification latencies
	// (obs.HistClassifyEntry) through per-worker shards — the telemetry
	// hook for cmd/classify's -profile/-ops flags. Nil skips all clock
	// reads.
	Col *obs.Collector
}

// SigHits is one signature's classification tally.
type SigHits struct {
	TxID   int    `json:"tx_id"`
	Method string `json:"method"`
	Hits   int    `json:"hits"`
}

// ClassifyResult is MatchReport's aggregate plus the per-entry and
// per-signature views a classifier needs: which transaction each entry
// resolved to, and how often each signature fired.
type ClassifyResult struct {
	MatchResult
	// PerSig tallies hits per signature, in report transaction order
	// (every transaction appears, hit or not).
	PerSig []SigHits
	// Verdicts holds, for every input entry in order, the transaction ID
	// of its best-matching signature; 0 when the entry was skipped
	// (status >= 400) or matched no signature.
	Verdicts []int
}

// Classify streams entries through the selected matcher backend and
// returns the full classification: MatchReport's aggregate, per-entry
// verdicts, and per-signature hit tallies. With Workers > 1 the entries
// are fanned out over contiguous chunks — the compiled bundle is shared
// read-only, each worker owns a Matcher — and the merged result is
// byte-identical to a serial run.
func Classify(rep *core.Report, entries []Entry, opt ClassifyOptions) *ClassifyResult {
	workers := opt.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 0 {
		workers = 1
	}
	if workers > len(entries) {
		workers = max(1, len(entries))
	}

	// One bundle compilation (or regex compilation, for the oracle) shared
	// by every worker; only Matcher scratch is per-worker.
	var bundle *sigvm.Bundle
	var interp *interpBackend
	if opt.VM {
		bundle = opt.Bundle
		if bundle == nil {
			bundle = sigvm.Compile(rep)
		}
	} else {
		interp = newInterpBackend(rep)
	}
	backend := func() sigBackend {
		if opt.VM {
			return &vmBackend{b: bundle, m: bundle.NewMatcher()}
		}
		// The interpretive backend is stateless per entry (compiled
		// regexps are safe for concurrent use), so workers share it.
		return interp
	}

	res := &ClassifyResult{Verdicts: make([]int, len(entries))}
	sigMatched := map[int]bool{}
	sigFailed := map[int]bool{}
	hits := map[int]int{}

	// Latency shards: one per worker, nil (free) when no collector is
	// threaded through.
	newStats := func() *obs.Shard {
		if opt.Col == nil {
			return nil
		}
		return opt.Col.NewShard()
	}

	if workers == 1 {
		stats := newStats()
		matchChunk(backend(), entries, &res.MatchResult, sigMatched, sigFailed, hits, res.Verdicts, stats)
		opt.Col.Drain(stats)
	} else {
		type partial struct {
			res     MatchResult
			matched map[int]bool
			failed  map[int]bool
			hits    map[int]int
		}
		parts := make([]partial, workers)
		shards := make([]*obs.Shard, workers)
		chunk := (len(entries) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, len(entries))
			if lo >= hi {
				continue
			}
			shards[w] = newStats()
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				p := &parts[w]
				p.matched = map[int]bool{}
				p.failed = map[int]bool{}
				p.hits = map[int]int{}
				matchChunk(backend(), entries[lo:hi], &p.res, p.matched, p.failed, p.hits, res.Verdicts[lo:hi], shards[w])
			}(w, lo, hi)
		}
		wg.Wait()
		for _, s := range shards {
			if s != nil {
				opt.Col.Drain(s)
			}
		}
		// Merge in chunk order: counters and byte stats are commutative
		// sums, Unmatched concatenates back into entry order.
		for w := range parts {
			p := &parts[w]
			res.TraceEntries += p.res.TraceEntries
			res.MatchedEntries += p.res.MatchedEntries
			res.Unmatched = append(res.Unmatched, p.res.Unmatched...)
			res.URIStats.Add(p.res.URIStats)
			res.ReqStats.Add(p.res.ReqStats)
			res.RespStats.Add(p.res.RespStats)
			for id := range p.matched {
				sigMatched[id] = true
			}
			for id := range p.failed {
				sigFailed[id] = true
			}
			for id, n := range p.hits {
				hits[id] += n
			}
		}
	}
	finishSigCounts(&res.MatchResult, sigMatched, sigFailed)

	for _, tx := range rep.Transactions {
		res.PerSig = append(res.PerSig, SigHits{
			TxID:   tx.ID,
			Method: tx.Request.Method,
			Hits:   hits[tx.ID],
		})
	}
	return res
}

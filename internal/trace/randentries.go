package trace

import (
	"encoding/json"
	"fmt"
	"regexp"
	"sort"
	"strings"

	"extractocol/internal/core"
	"extractocol/internal/siglang"
)

// LabeledEntry is a generated trace entry plus the ground-truth matching
// verdict: the transaction ID of the signature that should classify it, or
// 0 when no signature should (near-miss mutants, failed exchanges).
type LabeledEntry struct {
	Entry
	// WantID is the expected best-match transaction ID (0 = none). It is
	// computed from the signatures' rendered regular expressions — method
	// equality, regexp match, longest-regex tie-break — independently of
	// either matcher backend, so tests assert exact verdicts rather than
	// one backend's opinion of the other.
	WantID int
}

// Entries strips the labels, for feeding the matchers.
func Entries(labeled []LabeledEntry) []Entry {
	out := make([]Entry, len(labeled))
	for i, le := range labeled {
		out[i] = le.Entry
	}
	return out
}

// RandEntries derives n labeled traffic entries from a report's
// signatures with a seeded splitmix64 stream: known-matching entries
// synthesized from each signature's URI template and body model,
// interleaved with deliberate near-misses (unknown methods, newline
// injection, digit corruption, truncation, failed statuses). Labels come
// from the regex specification, not from either matcher, so the same
// corpus can judge both.
func RandEntries(seed uint64, rep *core.Report, n int) []LabeledEntry {
	r := &entropy{state: seed ^ 0xE7037ED1A0B428DB}
	r.next()
	lab := newLabeler(rep)
	out := make([]LabeledEntry, 0, n)
	for i := 0; len(out) < n; i++ {
		if len(rep.Transactions) == 0 {
			break
		}
		tx := rep.Transactions[r.intn(len(rep.Transactions))]
		e := genEntry(r, tx, i)
		switch r.intn(5) {
		case 0:
			mutate(r, &e)
		case 1:
			// A second mutation sometimes stacks, sometimes repairs nothing.
			mutate(r, &e)
			if r.intn(2) == 0 {
				mutate(r, &e)
			}
		}
		out = append(out, LabeledEntry{Entry: e, WantID: lab.label(e)})
	}
	return out
}

// genEntry synthesizes one entry that the transaction's signature should
// match: a URL drawn from the URI template, a body drawn from the body
// model, a response drawn from the response signature.
func genEntry(r *entropy, tx *core.Transaction, seq int) Entry {
	e := Entry{
		Seq:     seq,
		Method:  tx.Request.Method,
		URL:     genText(r, tx.Request.URI),
		Status:  200,
		RouteID: fmt.Sprintf("rand-%d", seq),
	}
	switch tx.Request.BodyKind {
	case "query":
		e.ReqBody = genQuery(r, tx.Request.Body)
	case "json":
		e.ReqBody = genJSON(r, tx.Request.Body)
	case "text":
		e.ReqBody = genText(r, tx.Request.Body)
	}
	if tx.Response != nil {
		switch tx.Response.BodyKind {
		case "json":
			e.RespType = "json"
			if tx.Response.JSON != nil {
				e.RespBody = genJSON(r, tx.Response.JSON)
			} else {
				e.RespBody = "{}"
			}
		case "xml":
			e.RespType = "xml"
			e.RespBody = genXML(r, tx.Response.XML)
		case "text":
			e.RespType = "text"
			e.RespBody = "ok-" + r.word()
		}
	}
	return e
}

// mutate turns a matching entry into a near-miss (or a should-be-skipped
// failure). Labels are recomputed afterwards, so a mutation that happens
// to keep the entry matching is simply labeled as such.
func mutate(r *entropy, e *Entry) {
	switch r.intn(5) {
	case 0:
		e.Method = "TRACE" // no generated signature uses it
	case 1:
		e.URL += "\n" // defeats ".*" and the '$' anchor alike
	case 2:
		// Corrupt the first digit: breaks "[0-9]+" spans.
		if i := strings.IndexFunc(e.URL, func(c rune) bool { return c >= '0' && c <= '9' }); i >= 0 {
			e.URL = e.URL[:i] + "x" + e.URL[i+1:]
		} else {
			e.URL += "?junk"
		}
	case 3:
		// Truncate the tail: breaks trailing literals.
		if len(e.URL) > 1 {
			e.URL = e.URL[:len(e.URL)-1]
		}
	case 4:
		e.Status = 500 // failed exchange: skipped entirely
	}
}

// labeler computes ground-truth verdicts straight from the rendered
// regular expressions.
type labeler struct {
	sigs []labelSig
}

type labelSig struct {
	id     int
	method string
	re     *regexp.Regexp
	spec   int
}

func newLabeler(rep *core.Report) *labeler {
	l := &labeler{}
	for _, tx := range rep.Transactions {
		re, err := siglang.Compile(tx.Request.URI)
		if err != nil {
			continue
		}
		l.sigs = append(l.sigs, labelSig{
			id:     tx.ID,
			method: tx.Request.Method,
			re:     re,
			spec:   len(re.String()),
		})
	}
	return l
}

// label returns the transaction ID the matchers must report for e: the
// method- and regex-matching signature with the longest rendered regex,
// or 0 for failed or unmatched entries.
func (l *labeler) label(e Entry) int {
	if e.Status >= 400 {
		return 0
	}
	best := -1
	for i := range l.sigs {
		s := &l.sigs[i]
		if s.method != e.Method || !s.re.MatchString(e.URL) {
			continue
		}
		if best < 0 || s.spec > l.sigs[best].spec {
			best = i
		}
	}
	if best < 0 {
		return 0
	}
	return l.sigs[best].id
}

// ---- generation from signature trees ----

// genText draws a string the signature's regular expression accepts (when
// its wildcards are filled benignly).
func genText(r *entropy, s siglang.Sig) string {
	var b strings.Builder
	writeText(r, s, &b)
	return b.String()
}

func writeText(r *entropy, s siglang.Sig, b *strings.Builder) {
	switch v := s.(type) {
	case nil:
		b.WriteString(r.word())
	case *siglang.Lit:
		b.WriteString(v.Val)
	case *siglang.Unknown:
		switch v.Type {
		case siglang.VInt:
			fmt.Fprintf(b, "%d", r.intn(100000))
		case siglang.VBool:
			b.WriteString([]string{"true", "false"}[r.intn(2)])
		default:
			b.WriteString(r.word())
		}
	case *siglang.Concat:
		for _, p := range v.Parts {
			writeText(r, p, b)
		}
	case *siglang.Rep:
		for i, reps := 0, r.intn(3); i < reps; i++ {
			writeText(r, v.Body, b)
		}
	case *siglang.Or:
		if len(v.Alts) > 0 {
			writeText(r, v.Alts[r.intn(len(v.Alts))], b)
		}
	default:
		b.WriteString(r.word())
	}
}

// genQuery draws a query body containing every signature-known key, plus
// an occasional unknown pair.
func genQuery(r *entropy, s siglang.Sig) string {
	keys := siglang.Keywords(s)
	var pairs []string
	for _, k := range keys {
		pairs = append(pairs, k+"="+r.word())
	}
	if r.intn(3) == 0 {
		pairs = append(pairs, "zz_extra="+r.word())
	}
	return strings.Join(pairs, "&")
}

// genJSON draws a payload whose constant keys cover the signature's.
func genJSON(r *entropy, s siglang.Sig) string {
	v := genJSONValue(r, s, 0)
	data, err := json.Marshal(v)
	if err != nil {
		return "{}"
	}
	return string(data)
}

func genJSONValue(r *entropy, s siglang.Sig, depth int) any {
	if depth > 8 {
		return r.word()
	}
	switch v := s.(type) {
	case nil:
		return r.word()
	case *siglang.JSON:
		return genJSONValue(r, v.Root, depth+1)
	case *siglang.Obj:
		m := map[string]any{}
		if v == nil {
			return m
		}
		for _, kv := range v.Pairs {
			if kv.Dyn {
				m["dyn_"+r.word()] = genJSONValue(r, kv.Val, depth+1)
				continue
			}
			m[kv.Key] = genJSONValue(r, kv.Val, depth+1)
		}
		if r.intn(4) == 0 {
			m["zz_unmodeled"] = r.intn(100)
		}
		return m
	case *siglang.Arr:
		var arr []any
		for i, n := 0, 1+r.intn(2); i < n; i++ {
			for _, e := range v.Elems {
				arr = append(arr, genJSONValue(r, e, depth+1))
			}
		}
		if arr == nil {
			arr = []any{}
		}
		return arr
	case *siglang.Or:
		if len(v.Alts) > 0 {
			return genJSONValue(r, v.Alts[r.intn(len(v.Alts))], depth+1)
		}
		return nil
	case *siglang.Lit:
		if v.Num {
			var f float64
			if _, err := fmt.Sscanf(v.Val, "%g", &f); err == nil {
				return f
			}
		}
		switch v.Val {
		case "true":
			return true
		case "false":
			return false
		}
		return v.Val
	case *siglang.Unknown:
		switch v.Type {
		case siglang.VInt:
			return r.intn(100000)
		case siglang.VBool:
			return r.intn(2) == 0
		default:
			return r.word()
		}
	default:
		return genText(r, s)
	}
}

// genXML renders a payload element tree covering the signature's tags and
// attributes.
func genXML(r *entropy, root *siglang.Elem) string {
	if root == nil {
		return "<root/>"
	}
	var b strings.Builder
	writeXML(r, root, &b, 0)
	return b.String()
}

func writeXML(r *entropy, e *siglang.Elem, b *strings.Builder, depth int) {
	tag := e.Tag
	if tag == "*" {
		// The wildcard document root: wrap the children in a carrier tag.
		b.WriteString("<doc>")
		for _, c := range e.Children {
			writeXML(r, c, b, depth+1)
		}
		b.WriteString("</doc>")
		return
	}
	b.WriteString("<" + tag)
	// Attribute order must be deterministic for a seeded generator.
	attrs := append([]siglang.KV(nil), e.Attrs...)
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
	for _, a := range attrs {
		fmt.Fprintf(b, " %s=%q", a.Key, r.word())
	}
	b.WriteString(">")
	for _, c := range e.Children {
		writeXML(r, c, b, depth+1)
	}
	if e.Text != nil {
		b.WriteString(r.word())
	}
	b.WriteString("</" + tag + ">")
}

// entropy is the same splitmix64 stream the corpus generator uses, local
// to trace so the package keeps its import direction (corpus must not be
// needed to replay traffic).
type entropy struct{ state uint64 }

func (r *entropy) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *entropy) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

var entropyWords = []string{
	"alpha", "bravo", "delta", "echo", "kilo", "lima", "nova", "omega",
	"pixel", "quartz", "raven", "sonic", "tango", "umbra", "vexel", "wharf",
}

func (r *entropy) word() string {
	return entropyWords[r.intn(len(entropyWords))]
}

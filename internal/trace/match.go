package trace

import (
	"regexp"
	"strings"

	"extractocol/internal/core"
	"extractocol/internal/siglang"
)

// MatchResult aggregates signature-versus-traffic validation (§5.1
// "signature validity" and Table 2 byte accounting).
type MatchResult struct {
	// TraceEntries is the number of successful trace exchanges considered.
	TraceEntries int
	// MatchedEntries is how many were matched by some signature.
	MatchedEntries int
	// Unmatched lists route IDs of trace entries no signature covered.
	Unmatched []string

	// SigsWithTraffic counts signatures for which traffic was observed;
	// SigsValid counts those whose every observed exchange matched.
	SigsWithTraffic int
	SigsValid       int

	// URIStats, ReqStats and RespStats accumulate matched-byte statistics
	// over URIs, request bodies/query strings, and response bodies.
	URIStats  siglang.ByteStats
	ReqStats  siglang.ByteStats
	RespStats siglang.ByteStats
}

// MatchReport validates an analysis report against a traffic trace.
func MatchReport(rep *core.Report, entries []Entry) *MatchResult {
	type compiled struct {
		tx *core.Transaction
		re *regexp.Regexp
	}
	var sigs []compiled
	for _, tx := range rep.Transactions {
		re, err := siglang.Compile(tx.Request.URI)
		if err != nil {
			continue
		}
		sigs = append(sigs, compiled{tx: tx, re: re})
	}

	res := &MatchResult{}
	sigMatched := map[int]bool{}
	sigFailed := map[int]bool{}

	for _, e := range entries {
		if e.Status >= 400 {
			continue
		}
		res.TraceEntries++
		var best *compiled
		for i := range sigs {
			s := &sigs[i]
			if s.tx.Request.Method != e.Method {
				continue
			}
			if !s.re.MatchString(e.URL) {
				continue
			}
			// Prefer the most specific match (longest literal regex).
			if best == nil || len(s.re.String()) > len(best.re.String()) {
				best = s
			}
		}
		if best == nil {
			res.Unmatched = append(res.Unmatched, e.RouteID)
			continue
		}
		res.MatchedEntries++
		sigMatched[best.tx.ID] = true
		ok := true

		if _, st := siglang.MatchText(best.tx.Request.URI, e.URL); st.Total() > 0 {
			res.URIStats.Add(st)
		}
		if !matchRequestBody(best.tx, e, &res.ReqStats) {
			ok = false
		}
		if !matchResponseBody(best.tx, e, &res.RespStats) {
			ok = false
		}
		if !ok {
			sigFailed[best.tx.ID] = true
		}
	}
	res.SigsWithTraffic = len(sigMatched)
	for id := range sigMatched {
		if !sigFailed[id] {
			res.SigsValid++
		}
	}
	return res
}

func matchRequestBody(tx *core.Transaction, e Entry, agg *siglang.ByteStats) bool {
	if e.ReqBody == "" {
		return true
	}
	switch tx.Request.BodyKind {
	case "query":
		ok, st := siglang.MatchQuery(tx.Request.Body, e.ReqBody)
		agg.Add(st)
		return ok
	case "json":
		ok, st, err := siglang.MatchJSON(tx.Request.Body, []byte(e.ReqBody))
		if err != nil {
			return false
		}
		agg.Add(st)
		return ok
	case "text":
		ok, st := matchTextOrQuery(tx.Request.Body, e.ReqBody)
		agg.Add(st)
		return ok
	default:
		// Signature has no body model: all bytes unaccounted.
		agg.Add(siglang.ByteStats{None: len(e.ReqBody)})
		return true
	}
}

// matchTextOrQuery matches text bodies; bodies shaped like query strings
// get key/value accounting.
func matchTextOrQuery(sig siglang.Sig, body string) (bool, siglang.ByteStats) {
	if strings.Contains(body, "=") && !strings.HasPrefix(strings.TrimSpace(body), "{") {
		return siglang.MatchQuery(sig, body)
	}
	return siglang.MatchText(sig, body)
}

func matchResponseBody(tx *core.Transaction, e Entry, agg *siglang.ByteStats) bool {
	if tx.Response == nil || e.RespBody == "" {
		return true
	}
	switch {
	case tx.Response.BodyKind == "json" && e.RespType == "json":
		ok, st, err := siglang.MatchJSON(&siglang.JSON{Root: tx.Response.JSON}, []byte(e.RespBody))
		if err != nil {
			return false
		}
		agg.Add(st)
		return ok
	case tx.Response.BodyKind == "xml" && e.RespType == "xml":
		ok, st, err := siglang.MatchXML(&siglang.XML{Root: tx.Response.XML}, []byte(e.RespBody))
		if err != nil {
			return false
		}
		agg.Add(st)
		return ok
	default:
		agg.Add(siglang.ByteStats{None: len(e.RespBody)})
		return true
	}
}

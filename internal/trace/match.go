package trace

import (
	"regexp"
	"time"

	"extractocol/internal/core"
	"extractocol/internal/obs"
	"extractocol/internal/siglang"
	"extractocol/internal/sigvm"
)

// MatchResult aggregates signature-versus-traffic validation (§5.1
// "signature validity" and Table 2 byte accounting).
type MatchResult struct {
	// TraceEntries is the number of successful trace exchanges considered.
	TraceEntries int
	// MatchedEntries is how many were matched by some signature.
	MatchedEntries int
	// Unmatched lists route IDs of trace entries no signature covered.
	Unmatched []string

	// SigsWithTraffic counts signatures for which traffic was observed;
	// SigsValid counts those whose every observed exchange matched.
	SigsWithTraffic int
	SigsValid       int

	// URIStats, ReqStats and RespStats accumulate matched-byte statistics
	// over URIs, request bodies/query strings, and response bodies.
	URIStats  siglang.ByteStats
	ReqStats  siglang.ByteStats
	RespStats siglang.ByteStats
}

// MatchOptions selects the matcher backend behind MatchReport. The zero
// value is the interpretive matcher — the equivalence oracle, kept exactly
// as shipped (the same survival pattern as pairing.AnalyzeOracle and
// core.Options.LegacySets). VM switches to the compiled matcher
// (internal/sigvm); the two are held byte-identical by a differential axis
// in internal/evaluate and by FuzzSigVM.
type MatchOptions struct {
	// VM matches with the compiled sigvm backend instead of the
	// interpretive one.
	VM bool
	// Bundle optionally reuses an already-compiled bundle (it must have
	// been compiled from the same report). Nil compiles one on demand.
	Bundle *sigvm.Bundle
}

// sigBackend is what the shared verdict-aggregation loop needs from a
// matcher: per-signature identity (transaction ID, method, specificity)
// and the four matching primitives. Both backends implement it, so
// aggregation — best-match selection, validity bookkeeping, byte-stat
// accumulation — is equal by construction; the per-signature primitives
// are held equal by the differential and fuzz gates.
type sigBackend interface {
	NumSigs() int
	TxID(i int) int
	Method(i int) string
	SpecLen(i int) int
	MatchURI(i int, url string) bool
	URIStats(i int, url string) siglang.ByteStats
	MatchRequestBody(i int, body string) (bool, siglang.ByteStats)
	MatchResponseBody(i int, respType, body string) (bool, siglang.ByteStats)
}

// MatchReport validates an analysis report against a traffic trace with
// the interpretive matcher.
func MatchReport(rep *core.Report, entries []Entry) *MatchResult {
	return MatchReportOpts(rep, entries, MatchOptions{})
}

// MatchReportOpts validates an analysis report against a traffic trace
// with the backend selected by opt.
func MatchReportOpts(rep *core.Report, entries []Entry, opt MatchOptions) *MatchResult {
	b := newBackend(rep, opt)
	res := &MatchResult{}
	sigMatched := map[int]bool{}
	sigFailed := map[int]bool{}
	matchChunk(b, entries, res, sigMatched, sigFailed, nil, nil, nil)
	finishSigCounts(res, sigMatched, sigFailed)
	return res
}

func newBackend(rep *core.Report, opt MatchOptions) sigBackend {
	if opt.VM {
		bundle := opt.Bundle
		if bundle == nil {
			bundle = sigvm.Compile(rep)
		}
		return &vmBackend{m: bundle.NewMatcher(), b: bundle}
	}
	return newInterpBackend(rep)
}

// matchChunk runs the shared verdict loop over a slice of entries,
// accumulating into res and the per-signature maps. When hits/verdicts are
// non-nil it also counts per-signature hits (keyed by transaction ID) and
// records each entry's best-match transaction ID (0 = entry skipped or
// unmatched), for Classify. A non-nil stats shard additionally records the
// per-entry classification latency (obs.HistClassifyEntry); nil skips the
// clock reads entirely, so the default match path is unchanged.
func matchChunk(b sigBackend, entries []Entry, res *MatchResult, sigMatched, sigFailed map[int]bool, hits map[int]int, verdicts []int, stats *obs.Shard) {
	var t0 time.Time
	for ei, e := range entries {
		if e.Status >= 400 {
			continue
		}
		if stats != nil {
			t0 = time.Now()
		}
		res.TraceEntries++
		best := -1
		for i := 0; i < b.NumSigs(); i++ {
			if b.Method(i) != e.Method {
				continue
			}
			if !b.MatchURI(i, e.URL) {
				continue
			}
			// Prefer the most specific match (longest literal regex).
			if best < 0 || b.SpecLen(i) > b.SpecLen(best) {
				best = i
			}
		}
		if best < 0 {
			res.Unmatched = append(res.Unmatched, e.RouteID)
			if stats != nil {
				stats.Observe(obs.HistClassifyEntry, time.Since(t0).Nanoseconds())
			}
			continue
		}
		res.MatchedEntries++
		sigMatched[b.TxID(best)] = true
		if hits != nil {
			hits[b.TxID(best)]++
		}
		if verdicts != nil {
			verdicts[ei] = b.TxID(best)
		}
		ok := true

		if st := b.URIStats(best, e.URL); st.Total() > 0 {
			res.URIStats.Add(st)
		}
		if bodyOK, st := b.MatchRequestBody(best, e.ReqBody); !bodyOK {
			ok = false
			res.ReqStats.Add(st)
		} else {
			res.ReqStats.Add(st)
		}
		if respOK, st := b.MatchResponseBody(best, e.RespType, e.RespBody); !respOK {
			ok = false
			res.RespStats.Add(st)
		} else {
			res.RespStats.Add(st)
		}
		if !ok {
			sigFailed[b.TxID(best)] = true
		}
		if stats != nil {
			stats.Observe(obs.HistClassifyEntry, time.Since(t0).Nanoseconds())
		}
	}
}

// finishSigCounts derives the signature-level tallies from the per-ID maps.
func finishSigCounts(res *MatchResult, sigMatched, sigFailed map[int]bool) {
	res.SigsWithTraffic = len(sigMatched)
	for id := range sigMatched {
		if !sigFailed[id] {
			res.SigsValid++
		}
	}
}

// interpBackend is the interpretive oracle: per-signature compiled
// regexps for the URI pre-filter, everything else re-derived per entry by
// the siglang matchers, exactly as MatchReport always has.
type interpBackend struct {
	sigs []interpSig
}

type interpSig struct {
	tx *core.Transaction
	re *regexp.Regexp
}

func newInterpBackend(rep *core.Report) *interpBackend {
	b := &interpBackend{}
	for _, tx := range rep.Transactions {
		re, err := siglang.Compile(tx.Request.URI)
		if err != nil {
			continue
		}
		b.sigs = append(b.sigs, interpSig{tx: tx, re: re})
	}
	return b
}

func (b *interpBackend) NumSigs() int        { return len(b.sigs) }
func (b *interpBackend) TxID(i int) int      { return b.sigs[i].tx.ID }
func (b *interpBackend) Method(i int) string { return b.sigs[i].tx.Request.Method }
func (b *interpBackend) SpecLen(i int) int   { return len(b.sigs[i].re.String()) }

func (b *interpBackend) MatchURI(i int, url string) bool {
	return b.sigs[i].re.MatchString(url)
}

func (b *interpBackend) URIStats(i int, url string) siglang.ByteStats {
	_, st := siglang.MatchText(b.sigs[i].tx.Request.URI, url)
	return st
}

func (b *interpBackend) MatchRequestBody(i int, body string) (bool, siglang.ByteStats) {
	tx := b.sigs[i].tx
	if body == "" {
		return true, siglang.ByteStats{}
	}
	switch tx.Request.BodyKind {
	case "query":
		return siglang.MatchQuery(tx.Request.Body, body)
	case "json":
		ok, st, err := siglang.MatchJSON(tx.Request.Body, []byte(body))
		if err != nil {
			return false, siglang.ByteStats{}
		}
		return ok, st
	case "text":
		return matchTextOrQuery(tx.Request.Body, body)
	default:
		// Signature has no body model: all bytes unaccounted.
		return true, siglang.ByteStats{None: len(body)}
	}
}

// matchTextOrQuery matches text bodies; bodies shaped like query strings
// get key/value accounting.
func matchTextOrQuery(sig siglang.Sig, body string) (bool, siglang.ByteStats) {
	if siglang.QueryShapedBody(body) {
		return siglang.MatchQuery(sig, body)
	}
	return siglang.MatchText(sig, body)
}

func (b *interpBackend) MatchResponseBody(i int, respType, body string) (bool, siglang.ByteStats) {
	tx := b.sigs[i].tx
	if tx.Response == nil || body == "" {
		return true, siglang.ByteStats{}
	}
	switch {
	case tx.Response.BodyKind == "json" && respType == "json":
		ok, st, err := siglang.MatchJSON(&siglang.JSON{Root: tx.Response.JSON}, []byte(body))
		if err != nil {
			return false, siglang.ByteStats{}
		}
		return ok, st
	case tx.Response.BodyKind == "xml" && respType == "xml":
		ok, st, err := siglang.MatchXML(&siglang.XML{Root: tx.Response.XML}, []byte(body))
		if err != nil {
			return false, siglang.ByteStats{}
		}
		return ok, st
	default:
		return true, siglang.ByteStats{None: len(body)}
	}
}

// vmBackend adapts a compiled bundle + per-worker matcher to the shared
// loop.
type vmBackend struct {
	b *sigvm.Bundle
	m *sigvm.Matcher
}

func (v *vmBackend) NumSigs() int        { return v.b.NumSigs() }
func (v *vmBackend) TxID(i int) int      { return v.b.TxID(i) }
func (v *vmBackend) Method(i int) string { return v.b.Method(i) }
func (v *vmBackend) SpecLen(i int) int   { return v.b.SpecLen(i) }

func (v *vmBackend) MatchURI(i int, url string) bool {
	return v.m.MatchURI(i, url)
}

func (v *vmBackend) URIStats(i int, url string) siglang.ByteStats {
	return v.m.URIStats(i, url)
}

func (v *vmBackend) MatchRequestBody(i int, body string) (bool, siglang.ByteStats) {
	return v.m.MatchRequestBody(i, body)
}

func (v *vmBackend) MatchResponseBody(i int, respType, body string) (bool, siglang.ByteStats) {
	return v.m.MatchResponseBody(i, respType, body)
}

package resultcache

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"extractocol/internal/budget"
	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/obs"
	"extractocol/internal/report"
	"extractocol/internal/semmodel"
)

// cleanReport analyzes a corpus app and strips the run-local fields the
// codec deliberately never stores.
func cleanReport(t *testing.T, name string, explain bool) *core.Report {
	t.Helper()
	app, err := corpus.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.NewOptions()
	opts.Explain = explain
	rep, err := core.Analyze(app.Prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diagnostics) != 0 {
		t.Fatalf("%s: unexpected diagnostics %v", name, rep.Diagnostics)
	}
	rep.Duration = 0
	rep.Profile = nil
	return rep
}

// renderings returns the two user-facing serializations a cached report
// must reproduce exactly.
func renderings(t *testing.T, rep *core.Report) (string, string) {
	t.Helper()
	data, err := report.JSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(data), report.Text(rep)
}

// TestCodecRoundTripsCorpusReports checks losslessness on real pipeline
// output, with and without the explain layer: the decoded report renders
// byte-identically in both output formats, and re-encoding it reproduces
// the entry bytes (the codec is a fixed point on its own output).
func TestCodecRoundTripsCorpusReports(t *testing.T) {
	for _, tc := range []struct {
		app     string
		explain bool
	}{
		{"radio reddit", false},
		{"radio reddit", true},
		{"KAYAK", false},
		{"TED", true},
	} {
		rep := cleanReport(t, tc.app, tc.explain)
		wantJSON, wantText := renderings(t, rep)
		enc, err := EncodeReport(rep)
		if err != nil {
			t.Fatalf("%s: encode: %v", tc.app, err)
		}
		dec, err := DecodeReport(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.app, err)
		}
		gotJSON, gotText := renderings(t, dec)
		if gotJSON != wantJSON {
			t.Errorf("%s (explain=%v): JSON rendering diverges after round trip", tc.app, tc.explain)
		}
		if gotText != wantText {
			t.Errorf("%s (explain=%v): text rendering diverges after round trip", tc.app, tc.explain)
		}
		enc2, err := EncodeReport(dec)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", tc.app, err)
		}
		if string(enc2) != string(enc) {
			t.Errorf("%s (explain=%v): re-encoding is not byte-identical", tc.app, tc.explain)
		}
	}
}

// TestCacheGetPut exercises the disk layer directly: miss on empty dir,
// hit after Put, entries shared across Cache handles on the same dir.
func TestCacheGetPut(t *testing.T) {
	rep := cleanReport(t, "radio reddit", false)
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := KeyFor("deadbeef", core.NewOptions())
	if key == "" {
		t.Fatal("default options must be cacheable")
	}
	if _, hit, err := c.Get(key); hit || err != nil {
		t.Fatalf("empty cache: hit=%v err=%v", hit, err)
	}
	if err := c.Put(key, rep); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir) // a second handle sees the same entries
	if err != nil {
		t.Fatal(err)
	}
	got, hit, err := c2.Get(key)
	if !hit || err != nil {
		t.Fatalf("after put: hit=%v err=%v", hit, err)
	}
	wantJSON, _ := renderings(t, rep)
	gotJSON, _ := renderings(t, got)
	if gotJSON != wantJSON {
		t.Error("cached report renders differently")
	}
}

// TestContentionGauges pins the same-key contention instrumentation: Open
// returns one shared Cache per directory, a blocked same-key acquisition
// counts a race and accumulates lock-wait time, and DrainContention is
// read-and-reset.
func TestContentionGauges(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c {
		t.Fatal("Open must return the shared cache for one directory")
	}
	c.DrainContention()

	// Hold the key's lock, then Get the same key from another goroutine:
	// its TryLock must fail (one race) and its wait is charged to the gauge.
	key := KeyFor("deadbeef", core.NewOptions())
	unlock := c.lock(key)
	done := make(chan error, 1)
	go func() {
		_, hit, err := c.Get(key)
		if hit {
			err = os.ErrExist
		}
		done <- err
	}()
	for i := 0; c.sameKeyRaces.Load() == 0 && i < 5000; i++ {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(2 * time.Millisecond) // accumulate measurable wait
	unlock()
	if err := <-done; err != nil {
		t.Fatalf("contended Get: %v", err)
	}

	wait, races, retries := c.DrainContention()
	if races != 1 {
		t.Errorf("same-key races = %d, want 1", races)
	}
	if wait <= 0 {
		t.Errorf("lock-wait ns = %d, want > 0", wait)
	}
	if retries != 0 {
		t.Errorf("install retries = %d, want 0", retries)
	}
	if w, r, i := c.DrainContention(); w != 0 || r != 0 || i != 0 {
		t.Errorf("second drain = (%d, %d, %d), want zeros", w, r, i)
	}
}

// TestAnalyzeDrainsContention checks the core wiring: gauges staged on the
// shared cache surface as counters in the next analysis profile, and a
// contention-free run records none of them.
func TestAnalyzeDrainsContention(t *testing.T) {
	app, err := corpus.ByName("radio reddit")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := core.NewOptions()
	key, err := KeyForProgram(app.Prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = c
	opts.CacheKey = key

	c.lockWaitNS.Add(123)
	c.sameKeyRaces.Add(4)
	c.installRetries.Add(5)
	rep, err := core.Analyze(app.Prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Profile.Counters[obs.CtrCacheLockWaitNS]; got != 123 {
		t.Errorf("cache_lock_wait_ns = %d, want 123", got)
	}
	if got := rep.Profile.Counters[obs.CtrCacheKeyRaces]; got != 4 {
		t.Errorf("cache_key_races = %d, want 4", got)
	}
	if got := rep.Profile.Counters[obs.CtrCacheInstallRetries]; got != 5 {
		t.Errorf("cache_install_retries = %d, want 5", got)
	}

	// The drain is read-and-reset, so an uncontended warm run is clean.
	warm, err := core.Analyze(app.Prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, ctr := range []string{obs.CtrCacheLockWaitNS, obs.CtrCacheKeyRaces, obs.CtrCacheInstallRetries} {
		if got := warm.Profile.Counters[ctr]; got != 0 {
			t.Errorf("uncontended warm run %s = %d, want 0", ctr, got)
		}
	}
}

// entryFile returns the single .report entry in dir.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.report"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("entries = %v (err %v), want exactly 1", matches, err)
	}
	return matches[0]
}

// TestCorruptEntriesNeverServeWrongReports is the invalidation guarantee:
// flipping any byte of an entry, truncating it, or rewriting it with a
// wrong version must yield either a clean miss-with-error (so core
// recomputes) — never a panic and never a silently wrong report.
func TestCorruptEntriesNeverServeWrongReports(t *testing.T) {
	rep := cleanReport(t, "radio reddit", false)
	wantJSON, _ := renderings(t, rep)
	key := KeyFor("deadbeef", core.NewOptions())

	check := func(t *testing.T, mutate func(data []byte) []byte) {
		t.Helper()
		dir := t.TempDir()
		c, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Put(key, rep); err != nil {
			t.Fatal(err)
		}
		path := entryFile(t, dir)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
			t.Fatal(err)
		}
		got, hit, err := c.Get(key)
		if err == nil && hit {
			// The mutation happened to keep the entry decodable (e.g. a
			// byte flip inside a string literal that the checksum catches
			// — it cannot, flips always change the CRC, so reaching here
			// with identical rendering means the mutation was a no-op).
			gotJSON, _ := renderings(t, got)
			if gotJSON != wantJSON {
				t.Fatal("corrupt entry served a wrong report")
			}
			return
		}
		if err == nil {
			t.Fatal("corrupt entry reported as a clean miss, want decode error")
		}
	}

	t.Run("byte flips", func(t *testing.T) {
		// Flip a spread of offsets: magic, version, checksum, and payload.
		probe := []int{0, 3, 4, 5, 6, 9, 20, 100}
		for _, off := range probe {
			off := off
			check(t, func(data []byte) []byte {
				if off >= len(data) {
					off = len(data) - 1
				}
				out := append([]byte(nil), data...)
				out[off] ^= 0x40
				return out
			})
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for _, keep := range []int{0, 3, 9, 10} {
			keep := keep
			check(t, func(data []byte) []byte { return data[:keep] })
		}
		check(t, func(data []byte) []byte { return data[:len(data)/2] })
		check(t, func(data []byte) []byte { return data[:len(data)-1] })
	})
	t.Run("trailing garbage", func(t *testing.T) {
		check(t, func(data []byte) []byte { return append(append([]byte(nil), data...), 0xFF) })
	})
	t.Run("wrong version", func(t *testing.T) {
		check(t, func(data []byte) []byte {
			out := append([]byte(nil), data...)
			out[4], out[5] = 0xFF, 0xFF
			return out
		})
	})
}

// TestAnalyzeRecomputesOnCorruptEntry drives the fallback end to end
// through core.Analyze: a corrupted entry must produce a full recompute
// with a typed cache diagnostic and the invalid counter — and the
// recomputed report must match a cache-off run exactly.
func TestAnalyzeRecomputesOnCorruptEntry(t *testing.T) {
	app, err := corpus.ByName("radio reddit")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.NewOptions()
	key, err := KeyForProgram(app.Prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = c
	opts.CacheKey = key

	cold, err := core.Analyze(app.Prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := cold.Profile.Counters[obs.CtrCacheReportWrites]; got != 1 {
		t.Fatalf("cold run cache_report_writes = %d, want 1", got)
	}

	path := entryFile(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := core.Analyze(app.Prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Profile.Counters[obs.CtrCacheReportInvalid]; got != 1 {
		t.Fatalf("cache_report_invalid = %d, want 1", got)
	}
	if got := rep.Profile.Counters[obs.CtrCacheReportHits]; got != 0 {
		t.Fatalf("cache_report_hits = %d, want 0", got)
	}
	// The forced recompute repairs the entry in the same run (a cache-read
	// diagnostic doesn't mark the analysis itself degraded).
	if got := rep.Profile.Counters[obs.CtrCacheReportWrites]; got != 1 {
		t.Fatalf("repair write: cache_report_writes = %d, want 1", got)
	}
	var found bool
	for _, d := range rep.Diagnostics {
		if d.Phase == budget.PhaseCache && d.Kind == budget.DiagCache {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cache diagnostic in %v", rep.Diagnostics)
	}

	// The degraded-to-recompute report must still match a cache-off run,
	// modulo the run-local fields and the cache diagnostic itself.
	plain, err := core.Analyze(app.Prog, core.NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep.Duration, plain.Duration = 0, 0
	rep.Profile, plain.Profile = nil, nil
	rep.Diagnostics, plain.Diagnostics = nil, nil
	wantJSON, _ := renderings(t, plain)
	gotJSON, _ := renderings(t, rep)
	if gotJSON != wantJSON {
		t.Error("recomputed report differs from cache-off run")
	}

	// The repaired entry serves the next run as a plain hit.
	warm, err := core.Analyze(app.Prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.Profile.Counters[obs.CtrCacheReportHits]; got != 1 {
		t.Fatalf("after repair: cache_report_hits = %d, want 1", got)
	}
}

// TestKeySensitivity pins the invalidation matrix: a changed binary or any
// changed report-affecting option moves the key; excluded fields do not;
// a custom model disables caching.
func TestKeySensitivity(t *testing.T) {
	opts := core.NewOptions()
	base := KeyFor("aa", opts)
	if base == "" {
		t.Fatal("default options must be cacheable")
	}
	if KeyFor("ab", opts) == base {
		t.Error("binary hash change kept the key")
	}

	mutations := map[string]func(*core.Options){
		"hops":       func(o *core.Options) { o.MaxAsyncHops = 2 },
		"scope":      func(o *core.Options) { o.ScopePrefix = "com.kayak." },
		"intents":    func(o *core.Options) { o.ModelIntents = !o.ModelIntents },
		"slicesteps": func(o *core.Options) { o.MaxSliceSteps = 12345 },
		"fixiters":   func(o *core.Options) { o.MaxFixpointIters = 77 },
		"explain":    func(o *core.Options) { o.Explain = true },
	}
	for name, mutate := range mutations {
		o := core.NewOptions()
		mutate(&o)
		if KeyFor("aa", o) == base {
			t.Errorf("%s change kept the key", name)
		}
	}

	// Run-local fields must NOT move the key: a deadline-degraded run is
	// never cached anyway (clean-runs-only store policy), and profiling
	// must not fork the cache.
	neutral := map[string]func(*core.Options){
		"deadline": func(o *core.Options) { o.Deadline = 1 },
		"workers":  func(o *core.Options) { o.Workers = 7 },
		"tracer":   func(o *core.Options) { o.Tracer = obs.NewTracer() },
	}
	for name, mutate := range neutral {
		o := core.NewOptions()
		mutate(&o)
		if KeyFor("aa", o) != base {
			t.Errorf("%s change moved the key", name)
		}
	}

	custom := core.NewOptions()
	custom.Model = semmodel.Default()
	if KeyFor("aa", custom) != "" {
		t.Error("custom model must disable caching")
	}
}

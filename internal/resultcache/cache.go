// Package resultcache is the persistent, content-addressed report cache
// behind warm-path analysis. Extractocol's pipeline is whole-program and
// per-binary, so a deployment serving repeated analyses of the same app
// binaries recomputes identical reports on every request; this package
// makes the repeated-analysis path a disk read instead, the same reusable
// precomputed-summary idea StubDroid applies to library code.
//
// Cache entries are keyed by SHA-256 over three components:
//
//	(SHA-256 of the .apkb container bytes,
//	 canonical fingerprint of every report-affecting core.Options field,
//	 cache entry format version)
//
// so a changed binary, a changed analysis configuration, or a changed codec
// each miss cleanly instead of serving a stale or misread report. Entries
// are whole core.Report values in the codec.go binary format; Duration and
// Profile are never cached — a warm run recomputes both, and its profile
// records only the resultcache phase plus a cache_report_hits counter.
//
// The cache is safe for concurrent use by independent processes and
// goroutines: reads are plain file reads of immutable content-addressed
// entries, writes go through a temp file and an atomic rename.
package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"extractocol/internal/core"
	"extractocol/internal/dex"
	"extractocol/internal/ir"
)

// Cache is an on-disk report store rooted at one directory. It implements
// core.ReportCache.
//
// Same-key operations are serialized in-process through a per-key lock
// table, and the cache keeps contention gauges — time spent blocked on a
// key's lock, contended (same-key race) acquisitions, and atomic-install
// retries — that core.Analyze drains into each report's profile (see
// DrainContention).
type Cache struct {
	dir string

	locks sync.Map // cache key -> *sync.Mutex

	lockWaitNS     atomic.Int64
	sameKeyRaces   atomic.Int64
	installRetries atomic.Int64
}

// opened deduplicates Open calls on the same directory: parallel corpus
// workers each Open the shared cache dir, and contention is only observable
// when they share one lock table.
var (
	openMu sync.Mutex
	opened = map[string]*Cache{}
)

// Open returns the cache rooted at dir, creating the directory if needed.
// Opening the same directory again returns the same *Cache, so every
// same-process user shares one lock table and one set of gauges.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	id := dir
	if abs, err := filepath.Abs(dir); err == nil {
		id = abs
	}
	openMu.Lock()
	defer openMu.Unlock()
	if c := opened[id]; c != nil {
		return c, nil
	}
	c := &Cache{dir: dir}
	opened[id] = c
	return c, nil
}

// lock serializes same-key cache operations within the process, recording
// contended acquisitions and the time spent blocked. It returns the unlock.
func (c *Cache) lock(key string) func() {
	v, _ := c.locks.LoadOrStore(key, &sync.Mutex{})
	mu := v.(*sync.Mutex)
	if !mu.TryLock() {
		// Another goroutine holds this key: a same-key race. Everything
		// past this point is pure wait, charged to the lock-wait gauge.
		c.sameKeyRaces.Add(1)
		start := time.Now()
		mu.Lock()
		c.lockWaitNS.Add(time.Since(start).Nanoseconds())
	}
	return mu.Unlock
}

// DrainContention returns the contention gauges accumulated since the last
// drain and resets them: total nanoseconds goroutines spent blocked on
// per-key locks, contended same-key acquisitions, and atomic-install
// retries. core.Analyze type-asserts for this method and folds the deltas
// into the report profile, so corpus-wide aggregation sums correctly even
// though racing workers drain a shared cache.
func (c *Cache) DrainContention() (lockWaitNS, sameKeyRaces, installRetries int64) {
	return c.lockWaitNS.Swap(0), c.sameKeyRaces.Swap(0), c.installRetries.Swap(0)
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// path maps a cache key to its entry file.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".report")
}

// Get implements core.ReportCache: (report, true, nil) on a hit,
// (nil, false, nil) when no entry exists, and a non-nil error when an entry
// exists but cannot be decoded — the caller recomputes and reports a
// diagnostic, never a wrong report.
func (c *Cache) Get(key string) (*core.Report, bool, error) {
	defer c.lock(key)()
	data, err := os.ReadFile(c.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("resultcache: read entry: %w", err)
	}
	rep, err := DecodeReport(data)
	if err != nil {
		return nil, false, err
	}
	return rep, true, nil
}

// Put implements core.ReportCache: it encodes r and installs the entry
// atomically (temp file + rename), so concurrent corpus workers and racing
// processes can only ever observe absent or complete entries.
func (c *Cache) Put(key string, r *core.Report) error {
	data, err := EncodeReport(r)
	if err != nil {
		return err
	}
	defer c.lock(key)()
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("resultcache: write entry: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: write entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: write entry: %w", err)
	}
	// The rename can transiently fail when an external process races the
	// same entry (e.g. a scanner holding the destination open on some
	// platforms); retry a couple of times before giving up, counting each
	// extra attempt in the install-retry gauge.
	for attempt := 0; ; attempt++ {
		err = os.Rename(tmp.Name(), c.path(key))
		if err == nil {
			return nil
		}
		if attempt >= 2 {
			break
		}
		c.installRetries.Add(1)
		time.Sleep(time.Duration(attempt+1) * time.Millisecond)
	}
	os.Remove(tmp.Name())
	return fmt.Errorf("resultcache: install entry: %w", err)
}

// HashBytes returns the hex SHA-256 of an .apkb container's raw bytes —
// the binary-identity component of the cache key.
func HashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Fingerprint canonically renders every report-affecting core.Options
// field. Fields that cannot change the report's content are deliberately
// excluded: Workers (output is deterministic regardless), Tracer and the
// profile machinery (recomputed per run), and Deadline/Cancel/Faults
// (time- and fault-dependent degradation is never cached — see core's
// clean-runs-only store policy). The deterministic step budgets DO
// participate, because a truncating budget changes which transactions
// survive. A custom semantic model makes the options non-cacheable (second
// return false): two distinct models would collide on one fingerprint. The
// same policy covers PairingOracle and LegacySets: both are
// differential-testing reference paths, and caching them would either
// collide with production entries or double every fingerprint for modes no
// production run uses.
func Fingerprint(opts core.Options) (string, bool) {
	if opts.Model != nil || opts.PairingOracle || opts.LegacySets {
		return "", false
	}
	var b strings.Builder
	b.WriteString("fp1")
	b.WriteString("|hops=")
	b.WriteString(strconv.Itoa(opts.MaxAsyncHops))
	b.WriteString("|scope=")
	b.WriteString(opts.ScopePrefix)
	b.WriteString("|intents=")
	b.WriteString(strconv.FormatBool(opts.ModelIntents))
	b.WriteString("|slicesteps=")
	b.WriteString(strconv.FormatInt(opts.MaxSliceSteps, 10))
	b.WriteString("|fixiters=")
	b.WriteString(strconv.FormatInt(opts.MaxFixpointIters, 10))
	b.WriteString("|explain=")
	b.WriteString(strconv.FormatBool(opts.Explain))
	return b.String(), true
}

// KeyFor combines a container hash (HashBytes), the options fingerprint
// and the codec version into the content address of one cache entry. It
// returns "" when the options are not cacheable; core.Analyze treats an
// empty key as cache-off.
func KeyFor(apkbHash string, opts core.Options) string {
	fp, ok := Fingerprint(opts)
	if !ok {
		return ""
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00codec=%d", apkbHash, fp, CodecVersion)
	return hex.EncodeToString(h.Sum(nil))
}

// KeyForProgram is KeyFor for callers holding a decoded program instead of
// container bytes (the in-memory evaluation corpus): the binary identity is
// the SHA-256 of the program's canonical .apkb encoding, so a file-based
// and an in-memory caller of the same app share entries.
func KeyForProgram(p *ir.Program, opts core.Options) (string, error) {
	data, err := dex.Encode(p)
	if err != nil {
		return "", fmt.Errorf("resultcache: encode program for hashing: %w", err)
	}
	return KeyFor(HashBytes(data), opts), nil
}

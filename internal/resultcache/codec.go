// Report codec: a lossless, deterministic binary encoding of core.Report
// for the persistent result cache. The encoding covers every
// profile-independent field — transactions with full signature trees,
// dependency edges, diagnostics, slice fraction — and deliberately excludes
// Duration and Profile, which describe one machine's run rather than the
// binary, and are always recomputed on the warm path.
//
// Layout mirrors the .apkb container idiom (package dex): a fixed header
//
//	magic "EXRC" | u16 codec version | u32 crc32(payload) | payload
//
// over a varint-encoded payload. Strings are length-prefixed (reports are
// small enough that a shared pool would not pay for itself); maps encode
// with sorted keys so equal reports always produce equal bytes; signature
// trees use one tag byte per node. Decode bounds every count by the
// remaining payload and every recursion by a depth limit, and recovers
// internal panics, so arbitrary bytes can never take the process down —
// they produce an error and a cache miss.
package resultcache

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"extractocol/internal/budget"
	"extractocol/internal/core"
	"extractocol/internal/ir"
	"extractocol/internal/sigbuild"
	"extractocol/internal/siglang"
	"extractocol/internal/txdep"
)

// codecMagic identifies cached report entries on disk.
var codecMagic = [4]byte{'E', 'X', 'R', 'C'}

// CodecVersion is the cache entry format version; it participates in the
// cache key, so a codec change orphans old entries instead of misreading
// them, and is also checked in the header for entries reached by other
// means.
const CodecVersion uint16 = 1

// Errors returned by DecodeReport.
var (
	ErrBadMagic    = errors.New("resultcache: bad magic (not a cached report)")
	ErrBadVersion  = errors.New("resultcache: unsupported cache format version")
	ErrBadChecksum = errors.New("resultcache: payload checksum mismatch")
)

// maxSigDepth bounds signature-tree recursion during decode, mirroring
// siglang's parser limit: hostile nesting fails the entry instead of
// overflowing the stack.
const maxSigDepth = 200

// Signature-node tags.
const (
	tagNil byte = iota
	tagLit
	tagUnknown
	tagConcat
	tagRep
	tagOr
	tagObj
	tagArr
	tagJSON
	tagXML
)

// EncodeReport serializes r into the cache entry format. The encoding is
// deterministic: equal reports (ignoring Duration and Profile) produce
// equal bytes.
func EncodeReport(r *core.Report) ([]byte, error) {
	if r == nil {
		return nil, errors.New("resultcache: nil report")
	}
	e := &encoder{}
	e.str(r.Package)
	e.str(r.AppName)
	e.f64(r.SliceFraction)
	e.uvarint(uint64(r.DPCount))
	e.uvarint(uint64(len(r.Transactions)))
	for _, tx := range r.Transactions {
		e.tx(tx)
	}
	e.uvarint(uint64(len(r.Deps)))
	for _, d := range r.Deps {
		e.varint(int64(d.From))
		e.varint(int64(d.To))
		e.str(d.FromField)
		e.str(d.ToPart)
		e.str(d.Via)
	}
	e.uvarint(uint64(len(r.Diagnostics)))
	for _, d := range r.Diagnostics {
		e.str(d.Phase)
		e.str(d.Kind)
		e.str(d.Site)
		e.str(d.Detail)
	}
	if e.err != nil {
		return nil, e.err
	}

	payload := e.buf.Bytes()
	out := make([]byte, 0, len(payload)+10)
	out = append(out, codecMagic[:]...)
	out = binary.LittleEndian.AppendUint16(out, CodecVersion)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...), nil
}

// DecodeReport parses a cache entry produced by EncodeReport. Arbitrary
// input yields an error, never a panic; a report that decodes successfully
// re-encodes to byte-identical output.
func DecodeReport(data []byte) (rep *core.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, fmt.Errorf("resultcache: decoder panic on malformed entry: %v", r)
		}
	}()
	if len(data) < 10 {
		return nil, ErrBadMagic
	}
	if !bytes.Equal(data[:4], codecMagic[:]) {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != CodecVersion {
		return nil, fmt.Errorf("%w: %d (want %d)", ErrBadVersion, v, CodecVersion)
	}
	payload := data[10:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[6:10]) {
		return nil, ErrBadChecksum
	}

	d := &decoder{data: payload}
	r := &core.Report{}
	r.Package = d.str()
	r.AppName = d.str()
	r.SliceFraction = d.f64()
	r.DPCount = int(d.uvarint())
	ntx := d.count()
	for i := uint64(0); i < ntx && d.err == nil; i++ {
		r.Transactions = append(r.Transactions, d.tx())
	}
	ndep := d.count()
	for i := uint64(0); i < ndep && d.err == nil; i++ {
		r.Deps = append(r.Deps, txdep.Dep{
			From:      int(d.varint()),
			To:        int(d.varint()),
			FromField: d.str(),
			ToPart:    d.str(),
			Via:       d.str(),
		})
	}
	ndiag := d.count()
	for i := uint64(0); i < ndiag && d.err == nil; i++ {
		r.Diagnostics = append(r.Diagnostics, budget.Diagnostic{
			Phase: d.str(), Kind: d.str(), Site: d.str(), Detail: d.str(),
		})
	}
	if d.err == nil && d.off != len(d.data) {
		d.fail(fmt.Errorf("%d trailing payload bytes", len(d.data)-d.off))
	}
	if d.err != nil {
		return nil, fmt.Errorf("resultcache: corrupt entry: %w", d.err)
	}
	return r, nil
}

// ---- encoder -------------------------------------------------------------

type encoder struct {
	buf bytes.Buffer
	err error
	tmp [binary.MaxVarintLen64]byte
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.tmp[:], v)
	e.buf.Write(e.tmp[:n])
}

func (e *encoder) varint(v int64) {
	n := binary.PutVarint(e.tmp[:], v)
	e.buf.Write(e.tmp[:n])
}

func (e *encoder) bool(b bool) {
	if b {
		e.uvarint(1)
	} else {
		e.uvarint(0)
	}
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf.WriteString(s)
}

func (e *encoder) f64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	e.buf.Write(b[:])
}

func (e *encoder) strs(ss []string) {
	e.uvarint(uint64(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

// strsMap encodes a string → []string map with sorted keys.
func (e *encoder) strsMap(m map[string][]string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.strs(m[k])
	}
}

// strMap encodes a string → string map with sorted keys.
func (e *encoder) strMap(m map[string]string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.str(m[k])
	}
}

func (e *encoder) tx(t *core.Transaction) {
	if t == nil {
		e.err = errors.New("resultcache: nil transaction")
		return
	}
	e.varint(int64(t.ID))
	e.str(t.DP)
	e.str(t.DPRef)
	e.str(t.Entry.Method)
	e.uvarint(uint64(t.Entry.Kind))
	e.str(t.Entry.Label)
	e.bool(t.Request != nil)
	if t.Request != nil {
		e.reqSig(t.Request)
	}
	e.bool(t.Response != nil)
	if t.Response != nil {
		e.respSig(t.Response)
	}
	e.bool(t.Paired)
	e.bool(t.OneToOne)
	e.bool(t.SharedHandler)
	e.bool(t.FlowConfirmed)
	e.strs(t.Sinks)
	e.strs(t.Sources)
	e.strs(t.Entries)
	e.bool(t.Evidence != nil)
	if t.Evidence != nil {
		e.evidence(t.Evidence)
	}
}

func (e *encoder) evidence(ev *core.Evidence) {
	e.str(ev.Entry)
	e.str(ev.EntryKind)
	e.str(ev.EntryLabel)
	e.str(ev.DP)
	e.str(ev.DPRef)
	e.varint(int64(ev.ReqStmts))
	e.varint(int64(ev.ReqSliced))
	e.varint(int64(ev.ReqMethods))
	e.varint(int64(ev.RespStmts))
	e.varint(int64(ev.RespSliced))
	e.varint(int64(ev.RespMethods))
	e.strs(ev.HeapReads)
	e.strs(ev.HeapWrites)
	e.varint(int64(ev.FlowSeeds))
	e.str(ev.FlowWitness)
	e.varint(int64(ev.SigMethods))
	e.varint(int64(ev.SigPrePass))
}

func (e *encoder) reqSig(r *sigbuild.RequestSig) {
	e.str(r.Method)
	e.sig(r.URI)
	e.kvs(r.Headers)
	e.str(r.BodyKind)
	e.sig(r.Body)
	e.strs(r.URIDeps)
	e.strs(r.BodyDeps)
	e.strsMap(r.FieldDeps)
	e.strsMap(r.HeaderDeps)
}

func (e *encoder) respSig(r *sigbuild.ResponseSig) {
	e.str(r.DPID)
	e.str(r.BodyKind)
	e.bool(r.JSON != nil)
	if r.JSON != nil {
		e.objBody(r.JSON)
	}
	e.elem(r.XML)
	e.strMap(r.WriteOrigins)
	e.strs(r.Sinks)
}

func (e *encoder) kvs(kvs []siglang.KV) {
	e.uvarint(uint64(len(kvs)))
	for _, kv := range kvs {
		e.str(kv.Key)
		e.bool(kv.Dyn)
		e.sig(kv.Val)
	}
}

func (e *encoder) objBody(o *siglang.Obj) { e.kvs(o.Pairs) }

func (e *encoder) sig(s siglang.Sig) {
	switch v := s.(type) {
	case nil:
		e.buf.WriteByte(tagNil)
	case *siglang.Lit:
		e.buf.WriteByte(tagLit)
		e.str(v.Val)
		e.bool(v.Num)
	case *siglang.Unknown:
		e.buf.WriteByte(tagUnknown)
		e.uvarint(uint64(v.Type))
		e.str(v.Origin)
	case *siglang.Concat:
		e.buf.WriteByte(tagConcat)
		e.uvarint(uint64(len(v.Parts)))
		for _, p := range v.Parts {
			e.sig(p)
		}
	case *siglang.Rep:
		e.buf.WriteByte(tagRep)
		e.sig(v.Body)
	case *siglang.Or:
		e.buf.WriteByte(tagOr)
		e.uvarint(uint64(len(v.Alts)))
		for _, a := range v.Alts {
			e.sig(a)
		}
	case *siglang.Obj:
		e.buf.WriteByte(tagObj)
		e.objBody(v)
	case *siglang.Arr:
		e.buf.WriteByte(tagArr)
		e.uvarint(uint64(len(v.Elems)))
		for _, el := range v.Elems {
			e.sig(el)
		}
		e.bool(v.Open)
	case *siglang.JSON:
		e.buf.WriteByte(tagJSON)
		e.sig(v.Root)
	case *siglang.XML:
		e.buf.WriteByte(tagXML)
		e.elem(v.Root)
	default:
		e.err = fmt.Errorf("resultcache: unencodable signature node %T", s)
	}
}

func (e *encoder) elem(el *siglang.Elem) {
	e.bool(el != nil)
	if el == nil {
		return
	}
	e.str(el.Tag)
	e.kvs(el.Attrs)
	e.uvarint(uint64(len(el.Children)))
	for _, c := range el.Children {
		e.elem(c)
	}
	e.sig(el.Text)
}

// ---- decoder -------------------------------------------------------------

type decoder struct {
	data  []byte
	off   int
	depth int
	err   error
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail(io.ErrUnexpectedEOF)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail(io.ErrUnexpectedEOF)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) bool() bool { return d.uvarint() != 0 }

// count reads an element count and rejects values that cannot fit in the
// remaining payload (every element costs at least one byte), bounding both
// preallocation and loop trips against hostile entries.
func (d *decoder) count() uint64 {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.data)-d.off) {
		d.fail(fmt.Errorf("count %d exceeds %d remaining payload bytes", n, len(d.data)-d.off))
		return 0
	}
	return n
}

func (d *decoder) str() string {
	n := d.count()
	if d.err != nil {
		return ""
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.data) {
		d.fail(io.ErrUnexpectedEOF)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) strs() []string {
	n := d.count()
	if n == 0 || d.err != nil {
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, d.str())
	}
	return out
}

func (d *decoder) strsMap() map[string][]string {
	n := d.count()
	if n == 0 || d.err != nil {
		return nil
	}
	out := make(map[string][]string, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		k := d.str()
		out[k] = d.strs()
	}
	return out
}

func (d *decoder) strMap() map[string]string {
	n := d.count()
	if n == 0 || d.err != nil {
		return nil
	}
	out := make(map[string]string, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		k := d.str()
		out[k] = d.str()
	}
	return out
}

func (d *decoder) tx() *core.Transaction {
	t := &core.Transaction{}
	t.ID = int(d.varint())
	t.DP = d.str()
	t.DPRef = d.str()
	t.Entry.Method = d.str()
	kind := d.uvarint()
	if kind > math.MaxUint8 {
		d.fail(fmt.Errorf("entry-point kind %d out of range", kind))
		return t
	}
	t.Entry.Kind = ir.EventKind(kind)
	t.Entry.Label = d.str()
	if d.bool() {
		t.Request = d.reqSig()
	}
	if d.bool() {
		t.Response = d.respSig()
	}
	t.Paired = d.bool()
	t.OneToOne = d.bool()
	t.SharedHandler = d.bool()
	t.FlowConfirmed = d.bool()
	t.Sinks = d.strs()
	t.Sources = d.strs()
	t.Entries = d.strs()
	if d.bool() {
		t.Evidence = d.evidence()
	}
	return t
}

func (d *decoder) evidence() *core.Evidence {
	return &core.Evidence{
		Entry:       d.str(),
		EntryKind:   d.str(),
		EntryLabel:  d.str(),
		DP:          d.str(),
		DPRef:       d.str(),
		ReqStmts:    int(d.varint()),
		ReqSliced:   int(d.varint()),
		ReqMethods:  int(d.varint()),
		RespStmts:   int(d.varint()),
		RespSliced:  int(d.varint()),
		RespMethods: int(d.varint()),
		HeapReads:   d.strs(),
		HeapWrites:  d.strs(),
		FlowSeeds:   int(d.varint()),
		FlowWitness: d.str(),
		SigMethods:  int(d.varint()),
		SigPrePass:  int(d.varint()),
	}
}

func (d *decoder) reqSig() *sigbuild.RequestSig {
	return &sigbuild.RequestSig{
		Method:     d.str(),
		URI:        d.sig(),
		Headers:    d.kvs(),
		BodyKind:   d.str(),
		Body:       d.sig(),
		URIDeps:    d.strs(),
		BodyDeps:   d.strs(),
		FieldDeps:  d.strsMap(),
		HeaderDeps: d.strsMap(),
	}
}

func (d *decoder) respSig() *sigbuild.ResponseSig {
	r := &sigbuild.ResponseSig{DPID: d.str(), BodyKind: d.str()}
	if d.bool() {
		r.JSON = d.objBody()
	}
	r.XML = d.elem()
	r.WriteOrigins = d.strMap()
	r.Sinks = d.strs()
	return r
}

func (d *decoder) kvs() []siglang.KV {
	n := d.count()
	if n == 0 || d.err != nil {
		return nil
	}
	out := make([]siglang.KV, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, siglang.KV{Key: d.str(), Dyn: d.bool(), Val: d.sig()})
	}
	return out
}

func (d *decoder) objBody() *siglang.Obj { return &siglang.Obj{Pairs: d.kvs()} }

func (d *decoder) sig() siglang.Sig {
	if d.err != nil {
		return nil
	}
	d.depth++
	defer func() { d.depth-- }()
	if d.depth > maxSigDepth {
		d.fail(fmt.Errorf("signature nested deeper than %d levels", maxSigDepth))
		return nil
	}
	if d.off >= len(d.data) {
		d.fail(io.ErrUnexpectedEOF)
		return nil
	}
	tag := d.data[d.off]
	d.off++
	switch tag {
	case tagNil:
		return nil
	case tagLit:
		return &siglang.Lit{Val: d.str(), Num: d.bool()}
	case tagUnknown:
		typ := d.uvarint()
		if typ > math.MaxUint8 {
			d.fail(fmt.Errorf("unknown-term type %d out of range", typ))
			return nil
		}
		return &siglang.Unknown{Type: siglang.VType(typ), Origin: d.str()}
	case tagConcat:
		n := d.count()
		c := &siglang.Concat{}
		for i := uint64(0); i < n && d.err == nil; i++ {
			c.Parts = append(c.Parts, d.sig())
		}
		return c
	case tagRep:
		return &siglang.Rep{Body: d.sig()}
	case tagOr:
		n := d.count()
		o := &siglang.Or{}
		for i := uint64(0); i < n && d.err == nil; i++ {
			o.Alts = append(o.Alts, d.sig())
		}
		return o
	case tagObj:
		return d.objBody()
	case tagArr:
		n := d.count()
		a := &siglang.Arr{}
		for i := uint64(0); i < n && d.err == nil; i++ {
			a.Elems = append(a.Elems, d.sig())
		}
		a.Open = d.bool()
		return a
	case tagJSON:
		return &siglang.JSON{Root: d.sig()}
	case tagXML:
		return &siglang.XML{Root: d.elem()}
	}
	d.fail(fmt.Errorf("unknown signature tag %d at offset %d", tag, d.off-1))
	return nil
}

func (d *decoder) elem() *siglang.Elem {
	if d.err != nil {
		return nil
	}
	d.depth++
	defer func() { d.depth-- }()
	if d.depth > maxSigDepth {
		d.fail(fmt.Errorf("signature nested deeper than %d levels", maxSigDepth))
		return nil
	}
	if !d.bool() {
		return nil
	}
	el := &siglang.Elem{Tag: d.str(), Attrs: d.kvs()}
	n := d.count()
	for i := uint64(0); i < n && d.err == nil; i++ {
		el.Children = append(el.Children, d.elem())
	}
	el.Text = d.sig()
	return el
}

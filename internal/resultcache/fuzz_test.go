package resultcache

// FuzzResultCacheCodec guards the cache entry codec against the two ways a
// persistent format goes wrong: losing information on its own output, and
// trusting foreign bytes. Arbitrary input must never panic the decoder, and
// anything the decoder accepts must re-encode byte-identically (the codec
// is a fixed point on its own output — the invariant behind serving cached
// entries without re-validating them against the pipeline).

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"extractocol/internal/core"
	"extractocol/internal/corpus"
)

func FuzzResultCacheCodec(f *testing.F) {
	for _, seed := range []struct {
		app     string
		explain bool
	}{
		{"Diode", false},
		{"radio reddit", true},
		{"TED", false},
	} {
		app, err := corpus.ByName(seed.app)
		if err != nil {
			f.Fatal(err)
		}
		opts := core.NewOptions()
		opts.Explain = seed.explain
		rep, err := core.Analyze(app.Prog, opts)
		if err != nil {
			f.Fatal(err)
		}
		rep.Duration = 0
		rep.Profile = nil
		enc, err := EncodeReport(rep)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Raw mutation first: must reject or accept cleanly, never panic.
		if rep, err := DecodeReport(data); err == nil {
			roundTrip(t, rep, data)
		}

		// Re-seal the payload so mutations reach the structure decoding
		// behind the checksum, not just the envelope check.
		if len(data) < 10 {
			return
		}
		sealed := append([]byte(nil), data...)
		copy(sealed[:4], codecMagic[:])
		binary.LittleEndian.PutUint16(sealed[4:6], CodecVersion)
		binary.LittleEndian.PutUint32(sealed[6:10], crc32.ChecksumIEEE(sealed[10:]))
		if rep, err := DecodeReport(sealed); err == nil {
			roundTrip(t, rep, sealed)
		}
	})
}

// roundTrip checks the fixed-point invariant on a decoder-accepted entry:
// re-encoding reproduces the input bytes, and the re-encoding still decodes.
func roundTrip(t *testing.T, rep *core.Report, data []byte) {
	t.Helper()
	enc, err := EncodeReport(rep)
	if err != nil {
		t.Fatalf("decoder accepted an entry the encoder rejects: %v", err)
	}
	if string(enc) != string(data) {
		t.Fatalf("codec is not a fixed point:\n in: %d bytes\nout: %d bytes", len(data), len(enc))
	}
	if _, err := DecodeReport(enc); err != nil {
		t.Fatalf("re-encoded entry fails to decode: %v", err)
	}
}

package txdep

import (
	"testing"

	"extractocol/internal/sigbuild"
	"extractocol/internal/siglang"
)

func mkResp(dpid string, origins map[string]string) *sigbuild.ResponseSig {
	return &sigbuild.ResponseSig{DPID: dpid, BodyKind: "json",
		JSON: &siglang.Obj{}, WriteOrigins: origins}
}

func TestInferHeapCarriedDependency(t *testing.T) {
	login := &Tx{ID: 1, DPID: "a.Login.go@5",
		Req:  &sigbuild.RequestSig{Method: "POST"},
		Resp: mkResp("a.Login.go@5", map[string]string{"f:a.Api.modhash": "modhash"}),
	}
	vote := &Tx{ID: 2, DPID: "a.Vote.go@9",
		Req: &sigbuild.RequestSig{Method: "POST",
			BodyDeps:  []string{"f:a.Api.modhash"},
			FieldDeps: map[string][]string{"uh": {"f:a.Api.modhash"}},
		},
	}
	deps := Infer([]*Tx{login, vote})
	foundField := false
	for _, d := range deps {
		if d.From == 1 && d.To == 2 && d.ToPart == "body:uh" && d.FromField == "modhash" {
			foundField = true
		}
	}
	if !foundField {
		t.Fatalf("deps = %+v", deps)
	}
}

func TestInferDirectDPDependency(t *testing.T) {
	a := &Tx{ID: 1, DPID: "m.H.run@3",
		Req:  &sigbuild.RequestSig{Method: "GET"},
		Resp: mkResp("m.H.run@3", nil)}
	b := &Tx{ID: 2, DPID: "m.H.run@9",
		Req: &sigbuild.RequestSig{Method: "GET", URIDeps: []string{"dp:m.H.run@3:url"}}}
	deps := Infer([]*Tx{a, b})
	if len(deps) != 1 || deps[0].From != 1 || deps[0].To != 2 ||
		deps[0].ToPart != "uri" || deps[0].FromField != "url" {
		t.Fatalf("deps = %+v", deps)
	}
}

func TestNoSelfDependency(t *testing.T) {
	a := &Tx{ID: 1, DPID: "m.H.run@3",
		Req:  &sigbuild.RequestSig{Method: "GET", URIDeps: []string{"f:m.X.tok"}},
		Resp: mkResp("m.H.run@3", map[string]string{"f:m.X.tok": "tok"})}
	if deps := Infer([]*Tx{a}); len(deps) != 0 {
		t.Fatalf("self-dependency reported: %+v", deps)
	}
}

func TestGraphAdjacency(t *testing.T) {
	deps := []Dep{
		{From: 1, To: 2, ToPart: "uri"},
		{From: 1, To: 2, ToPart: "body"},
		{From: 1, To: 3, ToPart: "uri"},
	}
	g := Graph(deps)
	if len(g[1]) != 2 || g[1][0] != 2 || g[1][1] != 3 {
		t.Fatalf("graph = %v", g)
	}
}

func TestDedupe(t *testing.T) {
	a := &Tx{ID: 1, DPID: "d@1", Req: &sigbuild.RequestSig{},
		Resp: mkResp("d@1", map[string]string{"f:x.y": "k"})}
	b := &Tx{ID: 2, DPID: "d@2",
		Req: &sigbuild.RequestSig{
			URIDeps:  []string{"f:x.y"},
			BodyDeps: nil,
			FieldDeps: map[string][]string{
				"q": {"f:x.y", "f:x.y"},
			},
		}}
	deps := Infer([]*Tx{a, b})
	seen := map[Dep]bool{}
	for _, d := range deps {
		if seen[d] {
			t.Fatalf("duplicate dep %+v", d)
		}
		seen[d] = true
	}
}

// Package txdep infers fine-grained dependencies between HTTP transactions
// (§3.3): whether objects derived from one transaction's response are used
// to construct another transaction's request, at field granularity. The
// carriers are heap fields, static fields, SQLite rows, and direct
// dataflow from a prior demarcation point's response within one handler.
package txdep

import (
	"fmt"
	"sort"
	"strings"

	"extractocol/internal/obs"
	"extractocol/internal/sigbuild"
)

// Tx is the analyzed view of one transaction consumed by the inference.
type Tx struct {
	ID   int
	DPID string // "method@index" of the demarcation point
	Req  *sigbuild.RequestSig
	Resp *sigbuild.ResponseSig
}

// Dep is one inferred dependency edge: request part ToPart of transaction
// To originates from response field FromField of transaction From, carried
// via Via (a heap location, database row, or direct dataflow "dp:...").
type Dep struct {
	From, To  int
	FromField string // response tree path ("" = whole body)
	ToPart    string // "uri", "body", "body:<field>", "header:<name>"
	Via       string
}

// Explain renders the edge as a human-readable provenance line for the
// explain layer, naming the destination part, the source field, and the
// carrier location.
func (d Dep) Explain() string {
	field := d.FromField
	if field == "" {
		field = "(whole body)"
	}
	return fmt.Sprintf("%s <- tx#%d response field %s via %s",
		d.ToPart, d.From, field, d.Via)
}

// Infer computes all dependency edges among the transactions.
func Infer(txs []*Tx) []Dep { return InferObs(txs, nil) }

// InferObs is Infer with workload counters: carrier locations indexed and
// dependency edges produced are recorded in stats when non-nil.
func InferObs(txs []*Tx, stats *obs.Shard) []Dep {
	// Index: which transaction's response wrote each carrier location, and
	// which transaction answers each DP site.
	writers := map[string][]*Tx{}
	byDP := map[string]*Tx{}
	for _, t := range txs {
		if t.Resp == nil {
			continue
		}
		byDP[t.DPID] = t
		for loc := range t.Resp.WriteOrigins {
			writers[loc] = append(writers[loc], t)
		}
	}

	var out []Dep
	add := func(to *Tx, part, dep string) {
		if site, path, ok := parseDPDep(dep); ok {
			if from, present := byDP[site]; present && from.ID != to.ID {
				out = append(out, Dep{From: from.ID, To: to.ID,
					FromField: path, ToPart: part, Via: "dp:" + site})
			}
			return
		}
		for _, from := range writers[dep] {
			if from.ID == to.ID {
				continue
			}
			out = append(out, Dep{From: from.ID, To: to.ID,
				FromField: from.Resp.WriteOrigins[dep], ToPart: part, Via: dep})
		}
	}

	for _, t := range txs {
		if t.Req == nil {
			continue
		}
		for _, d := range t.Req.URIDeps {
			add(t, "uri", d)
		}
		for _, d := range t.Req.BodyDeps {
			add(t, "body", d)
		}
		for field, ds := range t.Req.FieldDeps {
			for _, d := range ds {
				add(t, "body:"+field, d)
			}
		}
		for name, ds := range t.Req.HeaderDeps {
			for _, d := range ds {
				add(t, "header:"+name, d)
			}
		}
	}

	out = dedupe(out)
	stats.Add(obs.CtrTxdepCarriers, int64(len(writers)))
	stats.Add(obs.CtrTxdepEdges, int64(len(out)))
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		if out[i].ToPart != out[j].ToPart {
			return out[i].ToPart < out[j].ToPart
		}
		return out[i].Via < out[j].Via
	})
	return out
}

// parseDPDep splits "dp:<method>@<idx>:<path>" into site and path.
func parseDPDep(d string) (site, path string, ok bool) {
	if !strings.HasPrefix(d, "dp:") {
		return "", "", false
	}
	rest := d[3:]
	i := strings.LastIndex(rest, ":")
	if i < 0 {
		return rest, "", true
	}
	return rest[:i], rest[i+1:], true
}

func dedupe(deps []Dep) []Dep {
	seen := map[Dep]bool{}
	out := deps[:0]
	for _, d := range deps {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

// Graph renders the dependency edges among transactions as an adjacency
// list keyed by transaction ID, for report output.
func Graph(deps []Dep) map[int][]int {
	out := map[int][]int{}
	seen := map[[2]int]bool{}
	for _, d := range deps {
		k := [2]int{d.From, d.To}
		if seen[k] {
			continue
		}
		seen[k] = true
		out[d.From] = append(out[d.From], d.To)
	}
	for _, vs := range out {
		sort.Ints(vs)
	}
	return out
}

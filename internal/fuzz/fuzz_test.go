package fuzz

import (
	"strings"
	"testing"

	"extractocol/internal/httpsim"
	"extractocol/internal/ir"
)

const (
	getInit = "org.apache.http.client.methods.HttpGet.<init>"
	clInit  = "org.apache.http.impl.client.DefaultHttpClient.<init>"
	execRef = "org.apache.http.client.HttpClient.execute"
)

// buildApp creates an app with one GET per entry-point kind.
func buildApp(kinds []ir.EventKind, gate bool) (*ir.Program, func() *httpsim.Network) {
	p := ir.NewProgram("t.fz")
	c := p.AddClass(&ir.Class{Name: "t.fz.A"})
	for i, k := range kinds {
		name := "on" + strings.Title(k.String())
		b := ir.NewMethod(c, name, false, nil, "void")
		u := b.ConstStr("https://fz.example.com/" + k.String())
		req := b.New("org.apache.http.client.methods.HttpGet")
		b.InvokeSpecial(getInit, req, u)
		cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
		b.InvokeSpecial(clInit, cl)
		b.Invoke(execRef, cl, req)
		b.ReturnVoid()
		b.Done()
		label := ""
		if gate && k == ir.EventCustomUI && i >= 0 {
			label = GateLabel
		}
		p.Manifest.EntryPoints = append(p.Manifest.EntryPoints,
			ir.EntryPoint{Method: "t.fz.A." + name, Kind: k, Label: label})
	}
	mkNet := func() *httpsim.Network {
		n := httpsim.NewNetwork()
		s := httpsim.NewServer("fz.example.com")
		for _, k := range kinds {
			path := "/" + k.String()
			s.Handle("GET", path, func(r *httpsim.Request) *httpsim.Response {
				return httpsim.JSON(`{"ok":true}`)
			})
		}
		n.Register(s)
		return n
	}
	return p, mkNet
}

var allKinds = []ir.EventKind{
	ir.EventCreate, ir.EventClick, ir.EventCustomUI, ir.EventLogin,
	ir.EventAction, ir.EventTimer, ir.EventServerPush, ir.EventLocation,
	ir.EventIntent,
}

func routesOf(n *httpsim.Network) map[string]bool {
	out := map[string]bool{}
	for _, t := range n.Trace() {
		out[t.Response.RouteID] = true
	}
	return out
}

func TestManualCoverage(t *testing.T) {
	p, mkNet := buildApp(allKinds, false)
	n := mkNet()
	res, err := Run(p, n, Manual)
	if err != nil {
		t.Fatal(err)
	}
	routes := routesOf(n)
	// Manual reaches create/click/customui/login/location/intent.
	for _, want := range []string{"/create", "/click", "/customui", "/login", "/location", "/intent"} {
		if !routes["GET fz.example.com"+want] {
			t.Errorf("manual fuzzing missed %s", want)
		}
	}
	// But never timers, server pushes or side-effect actions.
	for _, miss := range []string{"/timer", "/serverpush", "/action"} {
		if routes["GET fz.example.com"+miss] {
			t.Errorf("manual fuzzing should not reach %s", miss)
		}
	}
	if res.Aborted {
		t.Error("manual fuzzing never aborts")
	}
}

func TestAutoCoverage(t *testing.T) {
	p, mkNet := buildApp(allKinds, false)
	n := mkNet()
	if _, err := Run(p, n, Auto); err != nil {
		t.Fatal(err)
	}
	routes := routesOf(n)
	for _, want := range []string{"/create", "/click"} {
		if !routes["GET fz.example.com"+want] {
			t.Errorf("auto fuzzing missed %s", want)
		}
	}
	for _, miss := range []string{"/customui", "/login", "/intent", "/timer", "/action"} {
		if routes["GET fz.example.com"+miss] {
			t.Errorf("auto fuzzing should not reach %s", miss)
		}
	}
}

func TestAutoAbortsOnCustomUIGate(t *testing.T) {
	p, mkNet := buildApp(allKinds, true)
	n := mkNet()
	res, err := Run(p, n, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("auto fuzzing should abort at the custom-UI gate")
	}
	if len(n.Trace()) != 0 {
		t.Fatalf("gated auto fuzzing produced traffic: %d entries", len(n.Trace()))
	}
	// Manual fuzzing is unaffected by the gate.
	n2 := mkNet()
	if _, err := Run(p, n2, Manual); err != nil {
		t.Fatal(err)
	}
	if len(n2.Trace()) == 0 {
		t.Fatal("manual fuzzing should still produce traffic")
	}
}

func TestRunAllProducesBothTraces(t *testing.T) {
	p, mkNet := buildApp([]ir.EventKind{ir.EventCreate, ir.EventLogin}, false)
	traces, err := RunAll(p, mkNet)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces["manual"]) != 2 {
		t.Errorf("manual trace = %d entries", len(traces["manual"]))
	}
	if len(traces["auto"]) != 1 {
		t.Errorf("auto trace = %d entries", len(traces["auto"]))
	}
}

func TestCoverageStrings(t *testing.T) {
	if !strings.Contains(Coverage(Manual), "login") {
		t.Error("manual coverage missing login")
	}
	if strings.Contains(Coverage(Auto), "login") {
		t.Error("auto coverage should not include login")
	}
}

// Package fuzz implements the paper's two dynamic baselines (§5.1):
//
//   - Manual UI fuzzing: a human explores the whole UI, signs up and logs
//     in, handles custom widgets, and follows deep links — but cannot
//     trigger timers, server pushes, or actions with real-world side
//     effects (purchases, job applications).
//   - Automatic UI fuzzing (PUMA-like): a UI-automation tool iterates over
//     standard clickable elements only; it cannot log in, and it stops
//     exploring entirely when the app gates progress behind custom-drawn
//     UI it does not recognize.
//
// Both drive the interpreter against the simulated network, producing the
// traffic traces the evaluation compares against Extractocol's output.
package fuzz

import (
	"fmt"
	"sort"
	"strings"

	"extractocol/internal/httpsim"
	"extractocol/internal/ir"
	"extractocol/internal/runtime"
)

// Mode selects the baseline.
type Mode int

// Fuzzing modes.
const (
	// Manual models a human tester with credentials.
	Manual Mode = iota
	// Auto models a PUMA-style UI automation tool.
	Auto
)

// String names the mode.
func (m Mode) String() string {
	if m == Auto {
		return "auto"
	}
	return "manual"
}

// GateLabel marks a custom-UI entry point that blocks automatic
// exploration of the whole app (a custom-drawn first screen).
const GateLabel = "ui_gate"

// Result summarizes one fuzzing run.
type Result struct {
	Mode    Mode
	Fired   []string // entry points triggered, in order
	Skipped []string // entry points out of the mode's reach
	// Aborted is set when automatic fuzzing hit a custom-UI gate and
	// stopped exploring.
	Aborted bool
	// Errors records per-entry interpreter failures (the run continues).
	Errors []string
}

// reachable reports whether the mode can trigger the event kind.
func reachable(mode Mode, k ir.EventKind) bool {
	switch mode {
	case Manual:
		switch k {
		case ir.EventCreate, ir.EventClick, ir.EventCustomUI, ir.EventLogin,
			ir.EventLocation, ir.EventIntent:
			return true
		}
		return false
	default: // Auto
		switch k {
		case ir.EventCreate, ir.EventClick:
			return true
		}
		return false
	}
}

// Run fuzzes the app in the given mode, recording traffic into net.
func Run(p *ir.Program, net *httpsim.Network, mode Mode) (*Result, error) {
	res := &Result{Mode: mode}
	if mode == Auto {
		for _, ep := range p.Manifest.EntryPoints {
			if ep.Kind == ir.EventCustomUI && ep.Label == GateLabel {
				// PUMA cannot recognize the custom first screen: it stops
				// before generating any traffic.
				res.Aborted = true
				for _, e := range p.Manifest.EntryPoints {
					res.Skipped = append(res.Skipped, e.Method)
				}
				return res, nil
			}
		}
	}
	vm := runtime.New(p, net)
	for _, ep := range p.Manifest.EntryPoints {
		if !reachable(mode, ep.Kind) {
			res.Skipped = append(res.Skipped, ep.Method)
			continue
		}
		if err := vm.Fire(ep); err != nil {
			res.Errors = append(res.Errors, fmt.Sprintf("%s: %v", ep.Method, err))
			continue
		}
		res.Fired = append(res.Fired, ep.Method)
	}
	return res, nil
}

// RunAll executes one run per mode on fresh traces and returns the traces
// keyed by mode name.
func RunAll(p *ir.Program, mkNet func() *httpsim.Network) (map[string][]*httpsim.Transaction, error) {
	out := map[string][]*httpsim.Transaction{}
	for _, mode := range []Mode{Manual, Auto} {
		net := mkNet()
		if _, err := Run(p, net, mode); err != nil {
			return nil, err
		}
		out[mode.String()] = net.Trace()
	}
	return out, nil
}

// Coverage summarizes which event kinds a mode reaches, for documentation
// and the evaluation harness.
func Coverage(mode Mode) string {
	var kinds []string
	for k := ir.EventCreate; k <= ir.EventIntent; k++ {
		if reachable(mode, k) {
			kinds = append(kinds, k.String())
		}
	}
	sort.Strings(kinds)
	return strings.Join(kinds, ",")
}

package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestPhaseAccumulates(t *testing.T) {
	c := NewCollector()
	end := c.Phase("slice")
	time.Sleep(time.Millisecond)
	end()
	end = c.Phase("slice")
	end()
	c.Phase("txdep")()

	p := c.Snapshot()
	if len(p.Phases) != 2 {
		t.Fatalf("phases = %d, want 2 (re-entry must accumulate)", len(p.Phases))
	}
	if p.Phases[0].Name != "slice" || p.Phases[1].Name != "txdep" {
		t.Fatalf("phase order = %v, want first-start order", p.Phases)
	}
	if p.Phase("slice") < time.Millisecond {
		t.Fatalf("slice phase = %v, want >= 1ms", p.Phase("slice"))
	}
	if p.Phase("missing") != 0 {
		t.Fatal("missing phase must read as 0")
	}
}

func TestCountersAndGauges(t *testing.T) {
	c := NewCollector()
	c.Add("a", 2)
	c.Add("a", 3)
	c.Gauge("g", 0.5)
	p := c.Snapshot()
	if p.Counter("a") != 5 {
		t.Fatalf("counter a = %d, want 5", p.Counter("a"))
	}
	if p.Gauges["g"] != 0.5 {
		t.Fatalf("gauge g = %v, want 0.5", p.Gauges["g"])
	}
	if names := p.CounterNames(); len(names) != 1 || names[0] != "a" {
		t.Fatalf("counter names = %v", names)
	}
}

func TestShardDrain(t *testing.T) {
	c := NewCollector()
	s := c.NewShard()
	s.Add("x", 7)
	if s.Count("x") != 7 {
		t.Fatalf("shard count = %d", s.Count("x"))
	}
	c.Drain(s)
	c.Drain(s) // second drain is a no-op: the shard was reset
	if got := c.Snapshot().Counter("x"); got != 7 {
		t.Fatalf("drained counter = %d, want 7", got)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Collector
	c.Phase("p")()
	c.Add("x", 1)
	c.Gauge("g", 1)
	c.Drain(nil)
	if c.Snapshot() != nil {
		t.Fatal("nil collector must snapshot to nil")
	}

	var s *Shard
	s.Add("x", 1)
	if s.Count("x") != 0 {
		t.Fatal("nil shard must count 0")
	}

	var p *Profile
	if p.Phase("x") != 0 || p.Counter("x") != 0 || p.PhaseSum() != 0 || p.CounterNames() != nil {
		t.Fatal("nil profile accessors must be zero")
	}
	p.Merge(&Profile{TotalNS: 1}) // must not panic
}

// TestConcurrentShards exercises the worker-pool pattern under the race
// detector: N goroutines each own a shard, the coordinator drains after
// the pool joins, and direct Add/Gauge calls race against them safely.
func TestConcurrentShards(t *testing.T) {
	c := NewCollector()
	const workers, perWorker = 8, 1000
	shards := make([]*Shard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		shard := c.NewShard()
		shards[w] = shard
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				shard.Add("jobs", 1)
			}
			c.Add("direct", 1) // collector mutations are themselves safe
		}()
	}
	wg.Wait()
	for _, s := range shards {
		c.Drain(s)
	}
	p := c.Snapshot()
	if p.Counter("jobs") != workers*perWorker {
		t.Fatalf("jobs = %d, want %d", p.Counter("jobs"), workers*perWorker)
	}
	if p.Counter("direct") != workers {
		t.Fatalf("direct = %d, want %d", p.Counter("direct"), workers)
	}
}

func TestProfileMerge(t *testing.T) {
	a := &Profile{
		TotalNS:  100,
		Phases:   []PhaseProfile{{Name: "slice", DurationNS: 60}, {Name: "txdep", DurationNS: 10}},
		Counters: map[string]int64{"x": 1},
		Gauges:   map[string]float64{"u": 1.0},
	}
	b := &Profile{
		TotalNS:  300,
		Phases:   []PhaseProfile{{Name: "slice", DurationNS: 200}, {Name: "dedup", DurationNS: 5}},
		Counters: map[string]int64{"x": 2, "y": 3},
		Gauges:   map[string]float64{"u": 0.5},
	}
	a.Merge(b)
	if a.TotalNS != 400 {
		t.Fatalf("total = %d", a.TotalNS)
	}
	if a.Phase("slice") != 260 || a.Phase("txdep") != 10 || a.Phase("dedup") != 5 {
		t.Fatalf("merged phases wrong: %+v", a.Phases)
	}
	if a.Counters["x"] != 3 || a.Counters["y"] != 3 {
		t.Fatalf("merged counters wrong: %v", a.Counters)
	}
	// Time-weighted gauge: (1.0*100 + 0.5*300) / 400 = 0.625.
	if got := a.Gauges["u"]; got < 0.624 || got > 0.626 {
		t.Fatalf("merged gauge = %v, want 0.625", got)
	}
}

func TestProfileJSONShape(t *testing.T) {
	c := NewCollector()
	c.Phase("validate")()
	c.Add("dp_sites", 3)
	data, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Phases) != 1 || back.Phases[0].Name != "validate" || back.Counter("dp_sites") != 3 {
		t.Fatalf("round-trip mismatch: %s", data)
	}
}

// Package obs is the pipeline observability layer: lightweight phase
// timers, monotonic counters and gauges threaded through the Extractocol
// pipeline. The evaluation (§5, Table 2) reports per-app analysis time;
// this package breaks that single number into per-phase durations and
// workload counters so every later performance change (sharding, batching,
// caching) has a measurement substrate to build on.
//
// Concurrency model: a Collector owns the merged view and takes a mutex on
// every mutation; hot paths (taint worklists, sigbuild workers) never touch
// it directly. Instead each goroutine owns an unsynchronized Shard and the
// coordinator drains shards into the collector at phase end — no locks or
// atomics on the hot path, and no per-increment allocation (map assignment
// of an existing key does not allocate).
package obs

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// Phase names of the core.Analyze pipeline, in execution order.
const (
	PhaseValidate  = "validate"
	PhaseCallgraph = "callgraph"
	PhaseSlice     = "slice"
	PhasePairing   = "pairing"
	PhaseSigbuild  = "sigbuild"
	PhaseDedup     = "dedup"
	PhaseTxdep     = "txdep"
	// PhaseResultCache brackets persistent report-cache lookups and stores
	// (see internal/resultcache); it is the only phase a warm run records.
	PhaseResultCache = "resultcache"
)

// Counter names recorded by the pipeline.
const (
	// CtrDPSites is the number of distinct demarcation point sites found.
	CtrDPSites = "dp_sites"
	// CtrSlicesBackward / CtrSlicesForward count computed request and
	// response slices.
	CtrSlicesBackward = "slices_backward"
	CtrSlicesForward  = "slices_forward"
	// CtrTaintFacts counts worklist facts processed by the taint engine;
	// CtrTaintStmts counts statements added to slices.
	CtrTaintFacts = "taint_facts"
	CtrTaintStmts = "taint_stmts"
	// CtrSliceJobs counts (entry point, DP site) extraction jobs run by the
	// slice worker pool; CtrSliceBusyNS accumulates worker busy time (the
	// numerator of pool utilization).
	CtrSliceJobs   = "slice_jobs"
	CtrSliceBusyNS = "slice_busy_ns"
	// Analysis-cache hit/miss counters: memoized per-entry-point
	// reachability, per-method type inference, and per-(method, register)
	// taint transfer summaries (see callgraph and taint).
	CtrCacheReachableHits    = "cache_reachable_hits"
	CtrCacheReachableMisses  = "cache_reachable_misses"
	CtrCacheInferTypesHits   = "cache_infertypes_hits"
	CtrCacheInferTypesMisses = "cache_infertypes_misses"
	CtrCacheSummaryHits      = "cache_summaries_hits"
	CtrCacheSummaryMisses    = "cache_summaries_misses"
	// Persistent report-cache counters (internal/resultcache): whole-report
	// hits and misses keyed by (binary hash, options fingerprint), entries
	// written back after cold runs, and entries found but unusable
	// (corrupt, truncated, wrong format version).
	CtrCacheReportHits    = "cache_report_hits"
	CtrCacheReportMisses  = "cache_report_misses"
	CtrCacheReportWrites  = "cache_report_writes"
	CtrCacheReportInvalid = "cache_report_invalid"
	// Report-cache contention gauges, drained from the shared cache after
	// each Get/Put: nanoseconds spent blocked on per-key locks, contended
	// same-key acquisitions, and atomic-install rename retries. All zero
	// unless parallel workers actually race on the cache.
	CtrCacheLockWaitNS     = "cache_lock_wait_ns"
	CtrCacheKeyRaces       = "cache_key_races"
	CtrCacheInstallRetries = "cache_install_retries"
	// CtrPairFlowChecks counts information-flow pairing verifications run.
	CtrPairFlowChecks = "pairing_flow_checks"
	// CtrSigbuildJobs counts signature-extraction jobs executed by the
	// worker pool; CtrSigbuildBusyNS accumulates the time workers spent on
	// jobs (the numerator of pool utilization). CtrSigbuildMethods counts
	// methods abstractly interpreted. Scoped/errored jobs are broken out.
	CtrSigbuildJobs    = "sigbuild_jobs"
	CtrSigbuildBusyNS  = "sigbuild_busy_ns"
	CtrSigbuildMethods = "sigbuild_methods_evaluated"
	CtrSigbuildScoped  = "sigbuild_scoped_out"
	CtrSigbuildErrors  = "sigbuild_errors"
	// CtrTransactions / CtrDedupFolded count deduplicated output
	// transactions and the duplicates folded into them.
	CtrTransactions = "transactions"
	CtrDedupFolded  = "dedup_folded"
	// CtrTxdepCarriers / CtrTxdepEdges count carrier heap locations indexed
	// and dependency edges inferred.
	CtrTxdepCarriers = "txdep_carriers"
	CtrTxdepEdges    = "txdep_edges"
	// Degradation counters (see internal/budget): CtrDiagnostics totals all
	// diagnostics on the report, broken out into recovered worker panics,
	// budget-truncated work, and jobs skipped at an exhausted boundary.
	// Unbudgeted, fault-free runs record none of these.
	CtrDiagnostics     = "diagnostics"
	CtrPanicsRecovered = "panics_recovered"
	CtrBudgetExceeded  = "budget_exceeded"
	CtrBudgetSkipped   = "budget_jobs_skipped"
)

// Gauge names.
const (
	// GaugeSigbuildWorkers is the size of the sigbuild worker pool.
	GaugeSigbuildWorkers = "sigbuild_workers"
	// GaugeSigbuildUtilization is total worker busy time divided by
	// (workers × fan-out wall time), in [0, 1].
	GaugeSigbuildUtilization = "sigbuild_worker_utilization"
	// GaugeSliceWorkers / GaugeSliceUtilization are the analogous pool
	// metrics for the slice-extraction fan-out.
	GaugeSliceWorkers     = "slice_workers"
	GaugeSliceUtilization = "slice_worker_utilization"
)

// Collector accumulates phases, counters and gauges for one analysis run.
// All methods are safe for concurrent use; a nil *Collector is a no-op so
// callers may thread one through optionally.
type Collector struct {
	start time.Time

	// tr, when non-nil, turns the collector's phases into spans and binds
	// every shard it hands out to a tracer track (see trace.go). Set once
	// before the pipeline starts; nil keeps tracing strictly zero-cost.
	tr *Tracer

	// ev/app, when set, stream lifecycle events (phase start/end here, job
	// and run events at the instrumentation sites) to a structured event
	// log tagged with the app under analysis (see events.go).
	ev  *EventLog
	app string

	mu       sync.Mutex
	flight   bool
	ring     *flightRing
	order    []string
	phaseNS  map[string]int64
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*Hist
}

// NewCollector returns an empty collector; its total clock starts now.
func NewCollector() *Collector {
	return &Collector{
		start:    time.Now(),
		phaseNS:  map[string]int64{},
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		hists:    map[string]*Hist{},
	}
}

// SetTracer attaches a span tracer: phases become coordinator spans with a
// ReadMemStats heap gauge sampled at each phase end, and shards created
// afterwards record worker spans. A nil tracer (the default) is free.
func (c *Collector) SetTracer(tr *Tracer) {
	if c == nil {
		return
	}
	c.tr = tr
}

// SetEvents attaches a structured event log: phases emit start/end events
// tagged with the given app name, and shards created afterwards carry the
// log so job-level instrumentation sites can emit through them. A nil log
// (the default) is free.
func (c *Collector) SetEvents(l *EventLog, app string) {
	if c == nil {
		return
	}
	c.ev = l
	c.app = app
}

// Event emits one event through the collector's log (no-op when none is
// attached), filling the App field when the caller left it empty.
func (c *Collector) Event(e Event) {
	if c == nil || c.ev == nil {
		return
	}
	if e.App == "" {
		e.App = c.app
	}
	c.ev.Emit(e)
}

// Phase starts timing the named phase and returns the function that stops
// it. Re-entering a phase name accumulates into the same entry. With a
// tracer attached the phase is also recorded as a coordinator span, and
// the post-phase heap size lands in the GaugeHeapAllocAfter gauges.
func (c *Collector) Phase(name string) func() {
	if c == nil {
		return func() {}
	}
	t0 := time.Now()
	endSpan := c.tr.Span(CatPhase, name)
	tok := c.flightPush(CatPhase, name)
	c.Event(Event{Type: EvPhaseStart, Phase: name})
	return func() {
		ns := time.Since(t0).Nanoseconds()
		c.AddPhaseNS(name, ns)
		c.Observe(HistPhasePrefix+name, ns)
		c.flightEnd(tok)
		c.Event(Event{Type: EvPhaseEnd, Phase: name, DurNS: ns})
		if c.tr != nil {
			endSpan()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			c.Gauge(GaugeHeapAllocAfter+name, float64(ms.HeapAlloc))
		}
	}
}

// AddPhaseNS adds ns nanoseconds to the named phase.
func (c *Collector) AddPhaseNS(name string, ns int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.phaseNS[name]; !ok {
		c.order = append(c.order, name)
	}
	c.phaseNS[name] += ns
}

// Add increments the named counter by delta.
func (c *Collector) Add(name string, delta int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.counters[name] += delta
	c.mu.Unlock()
}

// Gauge sets the named gauge.
func (c *Collector) Gauge(name string, v float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.gauges[name] = v
	c.mu.Unlock()
}

// Observe records one nanosecond measurement into the named histogram.
// Coordinator-path equivalent of Shard.Observe; takes the collector mutex.
func (c *Collector) Observe(name string, ns int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	h := c.hists[name]
	if h == nil {
		h = &Hist{}
		c.hists[name] = h
	}
	h.Observe(ns)
	c.mu.Unlock()
}

// NewShard returns an unsynchronized counter shard. The shard must be
// owned by exactly one goroutine until it is passed to Drain. When a
// tracer is attached, the shard is bound to a fresh tracer track so the
// owning worker's spans render on their own row.
func (c *Collector) NewShard() *Shard {
	s := &Shard{counts: map[string]int64{}}
	if c == nil {
		return s
	}
	if c.tr != nil {
		s.tr = c.tr
		s.tid = c.tr.allocTID()
	}
	s.ev, s.app = c.ev, c.app
	c.mu.Lock()
	if c.flight {
		start := c.start
		s.ring = newFlightRing(func() int64 { return time.Since(start).Nanoseconds() })
	}
	c.mu.Unlock()
	return s
}

// flightPush records a coordinator-level span start into the collector's
// flight ring; returns 0 when the recorder is unarmed.
func (c *Collector) flightPush(cat, name string) uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ring == nil {
		return 0
	}
	return c.ring.push(cat, name)
}

// flightEnd closes a coordinator-level flight record.
func (c *Collector) flightEnd(tok uint64) {
	if c == nil || tok == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ring != nil {
		c.ring.end(tok)
	}
}

// Drain merges a shard's counts into the collector, flushes its span
// buffer into the tracer, and resets the shard. The shard's owner must
// have stopped writing (e.g. after wg.Wait).
func (c *Collector) Drain(s *Shard) {
	if c == nil || s == nil {
		return
	}
	c.mu.Lock()
	for k, v := range s.counts {
		c.counters[k] += v
	}
	for k, sh := range s.hists {
		h := c.hists[k]
		if h == nil {
			h = &Hist{}
			c.hists[k] = h
		}
		h.merge(sh)
	}
	c.mu.Unlock()
	s.counts = map[string]int64{}
	s.hists = nil
	s.flushSpans()
}

// Shard is a single-goroutine counter and span buffer: no locks, no
// atomics. A nil *Shard is a no-op, so instrumented code never needs to
// branch on configuration.
type Shard struct {
	counts map[string]int64

	// hists holds the shard's latency histograms, allocated lazily on the
	// first Observe of each name; steady-state Observe is map-lookup plus
	// Hist.Observe, with no allocation.
	hists map[string]*Hist

	// tr/tid bind the shard to a tracer track; nil tr (the default for
	// standalone shards and untraced collectors) makes Span a no-op.
	tr    *Tracer
	tid   int64
	spans []spanRec

	// ring, when armed via Collector.EnableFlight, keeps the newest
	// flightDepth spans for post-mortem dumps (see flight.go).
	ring *flightRing

	// ev/app let job-level instrumentation emit structured events without
	// reaching back to the collector.
	ev  *EventLog
	app string
}

// Event emits one event through the shard's log (no-op when none is
// attached), tagged with the shard's app.
func (s *Shard) Event(e Event) {
	if s == nil || s.ev == nil {
		return
	}
	if e.App == "" {
		e.App = s.app
	}
	s.ev.Emit(e)
}

// Span starts a worker span on this shard's tracer track and, when the
// flight recorder is armed, in the shard's flight ring. With neither bound
// (or a nil shard) it returns the zero ActiveSpan and performs no
// allocation, so hot loops may call it unconditionally.
func (s *Shard) Span(cat, name string) ActiveSpan {
	if s == nil || (s.tr == nil && s.ring == nil) {
		return ActiveSpan{}
	}
	a := ActiveSpan{s: s, idx: -1}
	if s.tr != nil {
		s.spans = append(s.spans, spanRec{cat: cat, name: name, start: s.tr.since()})
		a.idx = len(s.spans) - 1
	}
	if s.ring != nil {
		a.rseq = s.ring.push(cat, name)
	}
	return a
}

// flushSpans moves the shard's span buffer into its tracer (no-op when
// untraced). The shard must be quiescent.
func (s *Shard) flushSpans() {
	if s == nil || s.tr == nil || len(s.spans) == 0 {
		return
	}
	s.tr.flush(s.tid, s.spans)
	s.spans = nil
}

// NewShard returns a standalone shard not yet bound to a collector.
func NewShard() *Shard { return &Shard{counts: map[string]int64{}} }

// Add increments the named counter by delta.
func (s *Shard) Add(name string, delta int64) {
	if s == nil {
		return
	}
	s.counts[name] += delta
}

// Count returns the shard's current value for the named counter.
func (s *Shard) Count(name string) int64 {
	if s == nil {
		return 0
	}
	return s.counts[name]
}

// Observe records one nanosecond measurement into the shard's named
// histogram. Unsynchronized like Add: only the owning goroutine may call
// it. After the first observation of a name, subsequent ones allocate
// nothing (pinned by TestHistogramDisabledZeroAlloc and
// BenchmarkHistogramRecord).
func (s *Shard) Observe(name string, ns int64) {
	if s == nil {
		return
	}
	h := s.hists[name]
	if h == nil {
		if s.hists == nil {
			s.hists = map[string]*Hist{}
		}
		h = &Hist{}
		s.hists[name] = h
	}
	h.Observe(ns)
}

// Merge adds o's counts into s and resets o. Both shards must be quiescent
// (their owning goroutines done writing); used to fold worker shards into a
// caller-owned shard when no Collector is threaded through. Spans recorded
// on o flush straight to its own tracer track.
func (s *Shard) Merge(o *Shard) {
	if s == nil || o == nil {
		return
	}
	for k, v := range o.counts {
		s.counts[k] += v
	}
	for k, oh := range o.hists {
		h := s.hists[k]
		if h == nil {
			if s.hists == nil {
				s.hists = map[string]*Hist{}
			}
			h = &Hist{}
			s.hists[k] = h
		}
		h.merge(oh)
	}
	o.counts = map[string]int64{}
	o.hists = nil
	o.flushSpans()
}

// PhaseProfile is one timed pipeline stage.
type PhaseProfile struct {
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
}

// Profile is an immutable snapshot of a collector: the per-phase breakdown
// plus all counters and gauges. It is embedded in core.Report and rendered
// by the report package and the -profile CLI flags.
type Profile struct {
	TotalNS  int64                    `json:"total_ns"`
	Phases   []PhaseProfile           `json:"phases"`
	Counters map[string]int64         `json:"counters,omitempty"`
	Gauges   map[string]float64       `json:"gauges,omitempty"`
	Hists    map[string]*HistSnapshot `json:"hists,omitempty"`
}

// Snapshot freezes the collector into a Profile. Phases appear in first-
// start order; counters and gauges are copied.
func (c *Collector) Snapshot() *Profile {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p := &Profile{TotalNS: time.Since(c.start).Nanoseconds()}
	for _, name := range c.order {
		p.Phases = append(p.Phases, PhaseProfile{Name: name, DurationNS: c.phaseNS[name]})
	}
	if len(c.counters) > 0 {
		p.Counters = make(map[string]int64, len(c.counters))
		for k, v := range c.counters {
			p.Counters[k] = v
		}
	}
	if len(c.gauges) > 0 {
		p.Gauges = make(map[string]float64, len(c.gauges))
		for k, v := range c.gauges {
			p.Gauges[k] = v
		}
	}
	if len(c.hists) > 0 {
		p.Hists = make(map[string]*HistSnapshot, len(c.hists))
		for k, h := range c.hists {
			p.Hists[k] = h.snapshot()
		}
	}
	return p
}

// Phase returns the recorded duration of the named phase (0 if absent).
func (p *Profile) Phase(name string) time.Duration {
	if p == nil {
		return 0
	}
	for _, ph := range p.Phases {
		if ph.Name == name {
			return time.Duration(ph.DurationNS)
		}
	}
	return 0
}

// Counter returns the recorded value of the named counter (0 if absent).
func (p *Profile) Counter(name string) int64 {
	if p == nil {
		return 0
	}
	return p.Counters[name]
}

// PhaseSum returns the sum of all phase durations.
func (p *Profile) PhaseSum() time.Duration {
	if p == nil {
		return 0
	}
	var ns int64
	for _, ph := range p.Phases {
		ns += ph.DurationNS
	}
	return time.Duration(ns)
}

// Hist returns the named histogram snapshot (nil if absent).
func (p *Profile) Hist(name string) *HistSnapshot {
	if p == nil {
		return nil
	}
	return p.Hists[name]
}

// HistNames returns all histogram names, sorted.
func (p *Profile) HistNames() []string {
	if p == nil {
		return nil
	}
	out := make([]string, 0, len(p.Hists))
	for k := range p.Hists {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CounterNames returns all counter names, sorted.
func (p *Profile) CounterNames() []string {
	if p == nil {
		return nil
	}
	out := make([]string, 0, len(p.Counters))
	for k := range p.Counters {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Merge accumulates o into p: phase durations and counters add, gauges
// average weighted by total time, totals add. Used to aggregate per-app
// profiles into a corpus-wide view.
func (p *Profile) Merge(o *Profile) {
	if p == nil || o == nil {
		return
	}
	for _, ph := range o.Phases {
		found := false
		for i := range p.Phases {
			if p.Phases[i].Name == ph.Name {
				p.Phases[i].DurationNS += ph.DurationNS
				found = true
				break
			}
		}
		if !found {
			p.Phases = append(p.Phases, ph)
		}
	}
	for k, v := range o.Counters {
		if p.Counters == nil {
			p.Counters = map[string]int64{}
		}
		p.Counters[k] += v
	}
	for k, v := range o.Gauges {
		if p.Gauges == nil {
			p.Gauges = map[string]float64{}
		}
		if pt, ot := float64(p.TotalNS), float64(o.TotalNS); pt+ot > 0 {
			p.Gauges[k] = (p.Gauges[k]*pt + v*ot) / (pt + ot)
		} else {
			p.Gauges[k] = v
		}
	}
	for k, oh := range o.Hists {
		if p.Hists == nil {
			p.Hists = map[string]*HistSnapshot{}
		}
		h := p.Hists[k]
		if h == nil {
			h = &HistSnapshot{}
			p.Hists[k] = h
		}
		h.Merge(oh)
	}
	p.TotalNS += o.TotalNS
}

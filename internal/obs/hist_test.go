package obs

import (
	"encoding/json"
	"testing"
	"time"
)

func TestHistBucketLayout(t *testing.T) {
	// Every bucket's values must map back to that bucket, and upper bounds
	// must be strictly increasing.
	if got := histBucketOf(0); got != 0 {
		t.Fatalf("histBucketOf(0) = %d, want 0", got)
	}
	if got := histBucketOf(1023); got != 0 {
		t.Fatalf("histBucketOf(1023) = %d, want 0 (underflow)", got)
	}
	if got := histBucketOf(1024); got != 1 {
		t.Fatalf("histBucketOf(1024) = %d, want 1 (first octave bucket)", got)
	}
	if got := histBucketOf(1 << 62); got != HistBuckets-1 {
		t.Fatalf("histBucketOf(2^62) = %d, want overflow %d", got, HistBuckets-1)
	}
	prev := int64(0)
	for i := 0; i < HistBuckets-1; i++ {
		up := HistBucketUpperNS(i)
		if up <= prev {
			t.Fatalf("bucket %d upper %d not > previous %d", i, up, prev)
		}
		// A value just below the upper bound must land in bucket <= i, and
		// the upper bound itself must land strictly above i.
		if b := histBucketOf(up - 1); b > i {
			t.Errorf("value %d (below bucket %d bound) mapped to bucket %d", up-1, i, b)
		}
		if b := histBucketOf(up); b <= i {
			t.Errorf("value %d (bucket %d bound) mapped to bucket %d, want > %d", up, i, b, i)
		}
		prev = up
	}
	if up := HistBucketUpperNS(HistBuckets - 1); up != -1 {
		t.Fatalf("overflow bucket upper = %d, want -1", up)
	}
}

func TestHistObserveAndSnapshot(t *testing.T) {
	var h Hist
	vals := []int64{500, 2_000, 2_000, 50_000, int64(2 * time.Second)}
	var sum int64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	h.Observe(-5) // clamped to 0, counts in underflow
	s := h.snapshot()
	if s.Count != int64(len(vals))+1 {
		t.Fatalf("Count = %d, want %d", s.Count, len(vals)+1)
	}
	if s.SumNS != sum {
		t.Fatalf("SumNS = %d, want %d", s.SumNS, sum)
	}
	if s.MaxNS != int64(2*time.Second) {
		t.Fatalf("MaxNS = %d, want %d", s.MaxNS, int64(2*time.Second))
	}
	if s.P99NS != s.MaxNS {
		t.Fatalf("P99NS = %d, want max %d (6 samples → p99 is the max bucket)", s.P99NS, s.MaxNS)
	}
	if s.P50NS <= 0 || s.P50NS > 50_000 {
		t.Fatalf("P50NS = %d, want a mid-distribution bound", s.P50NS)
	}
	var n int64
	for _, b := range s.Buckets {
		n += b.N
	}
	if n != s.Count {
		t.Fatalf("bucket occupancy %d != count %d", n, s.Count)
	}
}

func TestHistQuantileExact(t *testing.T) {
	// 100 observations of exactly 1024ns: every quantile bound must cover
	// the value, and p50 == p99 (single-bucket distribution, clamped to max).
	var h Hist
	for i := 0; i < 100; i++ {
		h.Observe(1024)
	}
	s := h.snapshot()
	if s.P50NS != s.P99NS {
		t.Fatalf("single-bucket distribution: p50 %d != p99 %d", s.P50NS, s.P99NS)
	}
	if s.P50NS != 1024 {
		t.Fatalf("p50 = %d, want clamp to max 1024", s.P50NS)
	}
}

func TestHistSnapshotMerge(t *testing.T) {
	var a, b Hist
	for i := 0; i < 90; i++ {
		a.Observe(1_000)
	}
	for i := 0; i < 10; i++ {
		b.Observe(1_000_000)
	}
	sa, sb := a.snapshot(), b.snapshot()
	sa.Merge(sb)
	if sa.Count != 100 {
		t.Fatalf("merged Count = %d, want 100", sa.Count)
	}
	if sa.MaxNS != sb.MaxNS {
		t.Fatalf("merged MaxNS = %d, want %d", sa.MaxNS, sb.MaxNS)
	}
	if sa.P50NS >= 1_000_000 {
		t.Fatalf("p50 = %d, want below the slow tail", sa.P50NS)
	}
	if sa.P99NS != sa.MaxNS {
		t.Fatalf("p99 = %d, want the slow tail max %d", sa.P99NS, sa.MaxNS)
	}
	// Merge must be equivalent to observing everything in one histogram.
	var all Hist
	for i := 0; i < 90; i++ {
		all.Observe(1_000)
	}
	for i := 0; i < 10; i++ {
		all.Observe(1_000_000)
	}
	want, _ := json.Marshal(all.snapshot())
	got, _ := json.Marshal(sa)
	if string(got) != string(want) {
		t.Fatalf("merged snapshot != direct snapshot\n got %s\nwant %s", got, want)
	}
}

func TestHistCumulative(t *testing.T) {
	var h Hist
	h.Observe(1024)
	h.Observe(1024)
	h.Observe(1 << 40) // overflow bucket
	cum := h.snapshot().Cumulative()
	if len(cum) == 0 {
		t.Fatal("empty cumulative")
	}
	last := cum[len(cum)-1]
	if last.Idx != HistBuckets-1 || last.N != 3 {
		t.Fatalf("final cumulative bucket = %+v, want {%d 3}", last, HistBuckets-1)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i].N < cum[i-1].N || cum[i].Idx <= cum[i-1].Idx {
			t.Fatalf("cumulative not monotonic at %d: %+v", i, cum)
		}
	}
	if (&HistSnapshot{}).Cumulative()[0].N != 0 {
		t.Fatal("empty snapshot cumulative should end at 0")
	}
}

func TestShardObserveDrain(t *testing.T) {
	c := NewCollector()
	s1, s2 := c.NewShard(), c.NewShard()
	s1.Observe(HistSliceJob, 2_000)
	s1.Observe(HistSliceJob, 3_000)
	s2.Observe(HistSliceJob, 4_000)
	c.Drain(s1)
	c.Drain(s2)
	c.Observe(HistAnalyze, 10_000)
	p := c.Snapshot()
	sj := p.Hist(HistSliceJob)
	if sj == nil || sj.Count != 3 || sj.SumNS != 9_000 {
		t.Fatalf("slice_job snapshot = %+v, want count 3 sum 9000", sj)
	}
	if an := p.Hist(HistAnalyze); an == nil || an.Count != 1 {
		t.Fatalf("analyze snapshot = %+v, want count 1", an)
	}
	if names := p.HistNames(); len(names) != 2 || names[0] != HistAnalyze {
		t.Fatalf("HistNames = %v", names)
	}
}

func TestShardObserveMerge(t *testing.T) {
	a, b := NewShard(), NewShard()
	a.Observe(HistSigbuildJob, 100)
	b.Observe(HistSigbuildJob, 200)
	a.Merge(b)
	if b.hists != nil {
		t.Fatal("merge should reset source shard hists")
	}
	c := NewCollector()
	c.Drain(a)
	if got := c.Snapshot().Hist(HistSigbuildJob); got == nil || got.Count != 2 || got.SumNS != 300 {
		t.Fatalf("merged hist = %+v, want count 2 sum 300", got)
	}
}

func TestHistNilSafety(t *testing.T) {
	var c *Collector
	var s *Shard
	var snap *HistSnapshot
	c.Observe("x", 1)
	s.Observe("x", 1)
	snap.Merge(&HistSnapshot{})
	(&HistSnapshot{}).Merge(nil)
	if snap.Quantile(0.5) != 0 {
		t.Fatal("nil snapshot quantile should be 0")
	}
	if snap.Cumulative() != nil {
		t.Fatal("nil snapshot cumulative should be nil")
	}
	var p *Profile
	if p.Hist("x") != nil || p.HistNames() != nil {
		t.Fatal("nil profile hist accessors should be zero")
	}
}

func TestCollectorPhaseRecordsHistogram(t *testing.T) {
	c := NewCollector()
	done := c.Phase(PhaseSlice)
	time.Sleep(time.Millisecond)
	done()
	p := c.Snapshot()
	h := p.Hist(HistPhasePrefix + PhaseSlice)
	if h == nil || h.Count != 1 {
		t.Fatalf("phase histogram = %+v, want one observation", h)
	}
	if h.SumNS != p.Phase(PhaseSlice).Nanoseconds() {
		t.Fatalf("phase hist sum %d != phase duration %d", h.SumNS, p.Phase(PhaseSlice).Nanoseconds())
	}
}

func TestProfileMergeHists(t *testing.T) {
	mk := func(v int64) *Profile {
		c := NewCollector()
		c.Observe(HistAnalyze, v)
		return c.Snapshot()
	}
	p := mk(1_000)
	p.Merge(mk(5_000))
	h := p.Hist(HistAnalyze)
	if h == nil || h.Count != 2 || h.SumNS != 6_000 || h.MaxNS != 5_000 {
		t.Fatalf("merged profile hist = %+v", h)
	}
	// Merging into a profile with no hists must deep-initialize.
	empty := &Profile{}
	empty.Merge(p)
	if got := empty.Hist(HistAnalyze); got == nil || got.Count != 2 {
		t.Fatalf("merge into empty profile = %+v", got)
	}
}

// Flight recorder: a bounded ring of the most recent span records per
// worker, kept even when full tracing is off, so that when the budget
// layer recovers a panic or a deadline fires, the diagnostic can say what
// the worker was doing in its last moments. Like the counter shards the
// ring is unsynchronized and owned by one goroutine — recording is an
// index increment and an array store, no locks and no allocation — and it
// is only read from that same goroutine (the worker's own recover handler)
// or after the pool has quiesced.
package obs

import (
	"fmt"
	"time"
)

// flightDepth is the ring capacity: the newest flightDepth span records
// survive. 64 covers a panicking job's recent history (job span + nested
// taint fixpoints) without measurable memory cost per worker.
const flightDepth = 64

// flightRec is one recorded span: end stays 0 until the span ends, so a
// dump distinguishes in-flight work (the usual suspect) from completed
// work.
type flightRec struct {
	cat, name  string
	start, end int64 // ns since the shard ring was created
}

// flightRing is the fixed-capacity record buffer. seq counts pushes ever;
// the live window is [seq-flightDepth, seq).
type flightRing struct {
	clock func() int64
	seq   uint64
	recs  [flightDepth]flightRec
}

func newFlightRing(clock func() int64) *flightRing {
	return &flightRing{clock: clock}
}

// push records a span start and returns its 1-based token for end.
func (r *flightRing) push(cat, name string) uint64 {
	r.recs[r.seq%flightDepth] = flightRec{cat: cat, name: name, start: r.clock()}
	r.seq++
	return r.seq
}

// end closes the span with the given token, unless the ring has already
// wrapped past its slot.
func (r *flightRing) end(tok uint64) {
	if tok == 0 || r.seq >= tok+flightDepth {
		return
	}
	r.recs[(tok-1)%flightDepth].end = r.clock()
}

// dump renders the live window oldest-first, one line per record. Spans
// still in flight render with "…" in place of an end time.
func (r *flightRing) dump() []string {
	if r == nil || r.seq == 0 {
		return nil
	}
	first := uint64(0)
	if r.seq > flightDepth {
		first = r.seq - flightDepth
	}
	out := make([]string, 0, r.seq-first)
	for i := first; i < r.seq; i++ {
		rec := r.recs[i%flightDepth]
		if rec.end >= rec.start && rec.end > 0 {
			out = append(out, fmt.Sprintf("%s %s %dns+%dns", rec.cat, rec.name, rec.start, rec.end-rec.start))
		} else {
			out = append(out, fmt.Sprintf("%s %s %dns+…", rec.cat, rec.name, rec.start))
		}
	}
	return out
}

// FlightDump returns the shard's recent span history, oldest first, or nil
// when the flight recorder is not armed. Call only from the shard's owning
// goroutine (e.g. inside a worker's recover handler) or after it has
// quiesced.
func (s *Shard) FlightDump() []string {
	if s == nil {
		return nil
	}
	return s.ring.dump()
}

// EnableFlight arms the flight recorder: the collector's coordinator track
// and every shard created afterwards keep a flightDepth-deep ring of
// recent spans (phases on the coordinator, jobs and fixpoints on workers).
// Off by default — dump contents depend on worker scheduling, so recorded
// history must never leak into deterministic outputs unless asked for.
func (c *Collector) EnableFlight() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.flight = true
	if c.ring == nil {
		start := c.start
		c.ring = newFlightRing(func() int64 { return time.Since(start).Nanoseconds() })
	}
	c.mu.Unlock()
}

// FlightEnabled reports whether EnableFlight has been called.
func (c *Collector) FlightEnabled() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flight
}

// FlightDump returns the coordinator ring's recent history (phase-level
// spans), oldest first.
func (c *Collector) FlightDump() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.dump()
}

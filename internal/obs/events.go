// Structured event log: a JSONL stream of pipeline lifecycle events
// (run/phase start+end, cache hits, budget exceedances, diagnostics) with
// monotonic sequence numbers. Where the Chrome trace export (-trace) is a
// post-mortem timeline and /metrics is an aggregate, the event log is the
// replayable record: each line is one JSON object with a fixed field order
// (struct marshaling), so two runs over equal work produce structurally
// identical streams up to timing fields.
package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event types emitted by the pipeline.
const (
	EvRunStart   = "run_start"
	EvRunEnd     = "run_end"
	EvPhaseStart = "phase_start"
	EvPhaseEnd   = "phase_end"
	EvCacheHit   = "cache_hit"
	EvCacheStore = "cache_store"
	EvDiagnostic = "diagnostic"
	EvFlightDump = "flight_dump"
)

// Event is one JSONL record. Field order is fixed by the struct, so the
// serialized form is deterministic; Seq is monotonic per log and TNS is
// nanoseconds since the log was opened (epoch-relative, not wall clock, so
// streams diff cleanly across machines).
type Event struct {
	Seq    int64  `json:"seq"`
	TNS    int64  `json:"t_ns"`
	Type   string `json:"type"`
	App    string `json:"app,omitempty"`
	Phase  string `json:"phase,omitempty"`
	Site   string `json:"site,omitempty"`
	Detail string `json:"detail,omitempty"`
	DurNS  int64  `json:"dur_ns,omitempty"`
}

// EventLog writes events as JSON lines. All methods are safe for
// concurrent use and a nil *EventLog is a no-op, so the pipeline threads
// one through unconditionally.
type EventLog struct {
	epoch time.Time

	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	seq int64
	err error
}

// NewEventLog wraps w. If w is also an io.Closer, Close closes it.
func NewEventLog(w io.Writer) *EventLog {
	l := &EventLog{epoch: time.Now(), w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		l.c = c
	}
	return l
}

// Emit writes one event, stamping Seq and TNS. Write errors are sticky and
// surfaced by Close; emission never fails the pipeline.
func (l *EventLog) Emit(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	l.seq++
	e.Seq = l.seq
	e.TNS = time.Since(l.epoch).Nanoseconds()
	data, err := json.Marshal(e)
	if err != nil {
		l.err = err
		return
	}
	if _, err := l.w.Write(data); err != nil {
		l.err = err
		return
	}
	if err := l.w.WriteByte('\n'); err != nil {
		l.err = err
	}
}

// Seq returns the last sequence number issued.
func (l *EventLog) Seq() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Close flushes the stream, closes the underlying writer when it is a
// Closer, and returns the first error encountered over the log's lifetime.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if ferr := l.w.Flush(); l.err == nil {
		l.err = ferr
	}
	if l.c != nil {
		if cerr := l.c.Close(); l.err == nil {
			l.err = cerr
		}
		l.c = nil
	}
	return l.err
}

// Span tracing: the second side of the observability layer. Where the
// Collector aggregates per-phase totals, the Tracer keeps every individual
// unit of work as a hierarchical span — run → phase → slice job / sigbuild
// worker → taint fixpoint — and exports the result as Chrome trace-event
// JSON, loadable in Perfetto or chrome://tracing.
//
// Concurrency model mirrors the counter shards: hot paths record spans on
// the unsynchronized per-worker Shard they already own (no locks, no
// atomics, no allocation beyond the span buffer append), and the
// coordinator flushes them into the Tracer when it drains the shard at
// phase end. Coordinator-side spans (the run and the phases) go through
// the Tracer's mutex directly — they fire a handful of times per analysis.
//
// Everything is nil-safe: with no Tracer attached, Shard.Span is a pointer
// test returning a zero ActiveSpan, so instrumented hot loops cost nothing
// when tracing is off (benchmark-guarded by BenchmarkTracerDisabled).
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Span categories recorded by the pipeline, exported as the "cat" field of
// trace events so Perfetto can filter by pipeline layer.
const (
	// CatRun is the whole-analysis root span (one per Analyze call).
	CatRun = "run"
	// CatPhase marks the coordinator's pipeline stages.
	CatPhase = "phase"
	// CatSliceJob is one (entry point, DP site) slice-extraction job.
	CatSliceJob = "slice"
	// CatSigbuildJob is one signature-construction job.
	CatSigbuildJob = "sigbuild"
	// CatPairFlow is one information-flow pairing verification.
	CatPairFlow = "pairing"
	// CatTaintBackward / CatTaintForward are individual taint fixpoint
	// runs, nested inside the job spans that started them.
	CatTaintBackward = "taint:backward"
	CatTaintForward  = "taint:forward"
)

// GaugeHeapAllocAfter prefixes the per-phase heap gauges recorded when a
// tracer is attached: runtime.ReadMemStats' HeapAlloc, sampled as each
// phase ends, lands in Profile.Gauges under "<prefix><phase>".
const GaugeHeapAllocAfter = "heap_alloc_after_"

// Span is one finished unit of traced work, timed relative to the tracer's
// epoch. TID is the logical track: 0 for the coordinator, one per worker
// shard otherwise.
type Span struct {
	TID   int64
	Cat   string
	Name  string
	Start int64 // ns since the tracer's epoch
	Dur   int64 // ns
}

// spanRec is the in-shard representation of a span: end is filled by
// ActiveSpan.End, and zero (never ended, e.g. a panicking job) clamps to a
// zero-duration span at flush.
type spanRec struct {
	cat, name  string
	start, end int64
}

// ActiveSpan is a started span on a shard. It is a small value — never
// heap-allocated — so starting and ending spans is allocation-free. The
// zero ActiveSpan (tracing and flight recording both disabled) is a no-op.
// idx indexes the shard's span buffer (-1 when untraced); rseq is the
// flight-ring token (0 when the recorder is unarmed).
type ActiveSpan struct {
	s    *Shard
	idx  int
	rseq uint64
}

// End closes the span at the current tracer clock (and in the flight ring
// when armed).
func (a ActiveSpan) End() {
	if a.s == nil {
		return
	}
	if a.idx >= 0 {
		a.s.spans[a.idx].end = a.s.tr.since()
	}
	if a.rseq != 0 {
		a.s.ring.end(a.rseq)
	}
}

// Tracer owns the merged span timeline of one analysis run. All methods
// are safe for concurrent use and nil-safe, so callers thread one through
// optionally exactly like the Collector.
type Tracer struct {
	epoch time.Time

	mu    sync.Mutex
	next  int64 // next worker track id (0 is the coordinator)
	spans []Span
}

// NewTracer returns an empty tracer; its clock epoch starts now.
func NewTracer() *Tracer { return &Tracer{epoch: time.Now(), next: 1} }

// since returns the tracer-relative clock in nanoseconds.
func (t *Tracer) since() int64 { return time.Since(t.epoch).Nanoseconds() }

// allocTID reserves a fresh worker track.
func (t *Tracer) allocTID() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.next
	t.next++
	return id
}

// Span starts a coordinator-side span (track 0) and returns the function
// that ends it. Used for the run and phase levels of the hierarchy; worker
// spans go through Shard.Span instead.
func (t *Tracer) Span(cat, name string) func() {
	if t == nil {
		return func() {}
	}
	start := t.since()
	return func() {
		end := t.since()
		t.mu.Lock()
		t.spans = append(t.spans, Span{Cat: cat, Name: name, Start: start, Dur: end - start})
		t.mu.Unlock()
	}
}

// flush merges a quiescent shard's span buffer into the tracer.
func (t *Tracer) flush(tid int64, recs []spanRec) {
	if t == nil || len(recs) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range recs {
		end := r.end
		if end < r.start {
			end = r.start
		}
		t.spans = append(t.spans, Span{TID: tid, Cat: r.cat, Name: r.name, Start: r.start, Dur: end - r.start})
	}
}

// Spans returns a copy of the recorded spans, sorted by (start, track,
// name) so output is stable for a fixed set of measurements.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].TID != out[j].TID {
			return out[i].TID < out[j].TID
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TraceEvent is one Chrome trace-event record. Only the subset of the
// format the pipeline emits is modeled: complete events ("X") for spans
// and metadata events ("M") naming processes and threads.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace is a Chrome trace-event document (the JSON object form, which
// Perfetto and chrome://tracing both load).
type Trace struct {
	Events          []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit,omitempty"`
}

// Merge appends o's events (with their pids) into t — used to combine
// per-app traces of a corpus run into one document with one process per
// app.
func (t *Trace) Merge(o *Trace) {
	if o == nil {
		return
	}
	t.Events = append(t.Events, o.Events...)
	if t.DisplayTimeUnit == "" {
		t.DisplayTimeUnit = o.DisplayTimeUnit
	}
}

// JSON renders the document as indented Chrome trace-event JSON.
func (t *Trace) JSON() ([]byte, error) { return json.MarshalIndent(t, "", "  ") }

// Export freezes the tracer into a Chrome trace-event document under the
// given process id and name. Track 0 renders as "coordinator"; worker
// shards keep their allocation-order track numbers.
func (t *Tracer) Export(pid int64, process string) *Trace {
	spans := t.Spans()
	out := &Trace{DisplayTimeUnit: "ms"}
	out.Events = append(out.Events, TraceEvent{
		Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": process},
	})
	tids := map[int64]bool{}
	for _, sp := range spans {
		tids[sp.TID] = true
	}
	order := make([]int64, 0, len(tids))
	for tid := range tids {
		order = append(order, tid)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, tid := range order {
		name := "coordinator"
		if tid != 0 {
			name = fmt.Sprintf("worker-%d", tid)
		}
		out.Events = append(out.Events, TraceEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": name},
		})
	}
	for _, sp := range spans {
		out.Events = append(out.Events, TraceEvent{
			Name: sp.Name, Cat: sp.Cat, Ph: "X",
			TS: float64(sp.Start) / 1e3, Dur: float64(sp.Dur) / 1e3,
			PID: pid, TID: sp.TID,
		})
	}
	return out
}

// Latency histograms: the distribution side of the observability layer.
// The Collector's phase timers report sums, and sums hide tail latency —
// one 900ms slice job inside a 30s corpus run is invisible until it is the
// only thing the fleet operator needs to see. A Hist is a fixed-bucket
// log-linear histogram (HdrHistogram-style: every power-of-two octave is
// split into a few linear sub-buckets) sized so that recording is one
// array increment — no allocation, no locking on the per-worker shards —
// and merging is element-wise addition, exactly like the counter shards.
//
// The bucket layout is part of the exposition format (Prometheus `le`
// bounds) and of Profile JSON, so it is fixed at compile time: bucket 0 is
// the underflow below ~1µs, then histOctaves octaves of histSubBuckets
// linear sub-buckets from 2^histMinExp ns upward, then one overflow bucket.
// That spans ~1µs to ~2.3 minutes at ≤ 25% relative error — per-entry
// classify latencies at the bottom, whole-corpus phase times at the top.
package obs

import (
	"math/bits"
	"sort"
)

// Histogram names recorded by the pipeline. Per-phase duration histograms
// use HistPhasePrefix + the phase name; everything else is a fixed name.
const (
	// HistPhasePrefix prefixes the per-phase duration histograms (one
	// observation per phase per run; corpus-merged profiles accumulate the
	// per-app distribution).
	HistPhasePrefix = "phase_"
	// HistAnalyze is the whole-run Analyze wall time.
	HistAnalyze = "analyze"
	// HistSliceJob / HistSigbuildJob are per-job worker latencies.
	HistSliceJob    = "slice_job"
	HistSigbuildJob = "sigbuild_job"
	// HistClassifyEntry is the per-entry traffic-classification latency
	// (see trace.Classify).
	HistClassifyEntry = "classify_entry"
)

// Bucket-layout constants. histMinExp = 10 puts the first octave at
// 1024ns; histSubBits = 2 gives 4 linear sub-buckets per octave (25%
// relative resolution); histOctaves = 27 reaches 2^37 ns ≈ 137s before
// the overflow bucket.
const (
	histMinExp     = 10
	histSubBits    = 2
	histSubBuckets = 1 << histSubBits
	histOctaves    = 27
	// HistBuckets is the fixed bucket count: underflow + octaves + overflow.
	HistBuckets = 1 + histOctaves*histSubBuckets + 1
)

// histBucketOf maps a nanosecond value to its bucket index.
func histBucketOf(v int64) int {
	if v < 1<<histMinExp {
		return 0
	}
	exp := bits.Len64(uint64(v)) - 1 // floor(log2 v) >= histMinExp
	if exp >= histMinExp+histOctaves {
		return HistBuckets - 1
	}
	sub := int(v>>(uint(exp)-histSubBits)) & (histSubBuckets - 1)
	return 1 + (exp-histMinExp)*histSubBuckets + sub
}

// HistBucketUpperNS returns the exclusive upper bound of bucket idx in
// nanoseconds; the overflow bucket returns -1 (unbounded, `le="+Inf"`).
func HistBucketUpperNS(idx int) int64 {
	if idx <= 0 {
		return 1 << histMinExp
	}
	if idx >= HistBuckets-1 {
		return -1
	}
	idx--
	exp := histMinExp + idx/histSubBuckets
	sub := idx % histSubBuckets
	return (int64(histSubBuckets+sub) + 1) << (uint(exp) - histSubBits)
}

// Hist is one mutable histogram: the fixed bucket array plus exact count,
// sum and max. It is always owned by exactly one goroutine (a Shard) or
// guarded by the Collector's mutex, mirroring the counter maps.
type Hist struct {
	count   int64
	sum     int64
	max     int64
	buckets [HistBuckets]int64
}

// Observe records one nanosecond measurement: three scalar updates and one
// array increment, nothing else — the zero-allocation contract is pinned
// by BenchmarkHistogramRecord.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.buckets[histBucketOf(v)]++
}

// merge adds o into h.
func (h *Hist) merge(o *Hist) {
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
	for i := range o.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// HistBucket is one non-empty bucket of a frozen histogram: the bucket
// index into the fixed layout and its occupancy. Snapshots store only
// non-empty buckets so profile JSON stays proportional to the data.
type HistBucket struct {
	Idx int   `json:"i"`
	N   int64 `json:"n"`
}

// HistSnapshot is an immutable frozen histogram embedded in Profile: the
// derived latency quantiles (refreshed on every merge) plus the sparse
// bucket list the quantiles are computed from.
type HistSnapshot struct {
	Count int64 `json:"count"`
	SumNS int64 `json:"sum_ns"`
	MaxNS int64 `json:"max_ns"`
	P50NS int64 `json:"p50_ns"`
	P90NS int64 `json:"p90_ns"`
	P99NS int64 `json:"p99_ns"`

	Buckets []HistBucket `json:"buckets,omitempty"`
}

// snapshot freezes h.
func (h *Hist) snapshot() *HistSnapshot {
	s := &HistSnapshot{Count: h.count, SumNS: h.sum, MaxNS: h.max}
	for i, n := range h.buckets {
		if n != 0 {
			s.Buckets = append(s.Buckets, HistBucket{Idx: i, N: n})
		}
	}
	s.refreshQuantiles()
	return s
}

// Quantile returns the upper bound of the bucket holding the q-quantile
// observation (clamped to the observed maximum, so Quantile(1) == MaxNS).
// Bucket bounds are deterministic, so equal data yields equal quantiles on
// every platform.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.N
		if cum >= rank {
			up := HistBucketUpperNS(b.Idx)
			if up < 0 || up > s.MaxNS {
				return s.MaxNS
			}
			return up
		}
	}
	return s.MaxNS
}

// refreshQuantiles recomputes the derived P50/P90/P99 fields.
func (s *HistSnapshot) refreshQuantiles() {
	s.P50NS = s.Quantile(0.50)
	s.P90NS = s.Quantile(0.90)
	s.P99NS = s.Quantile(0.99)
}

// Merge accumulates o into s (bucket-wise addition) and refreshes the
// quantile fields. Used by Profile.Merge to aggregate per-app histograms
// into corpus-wide distributions.
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	if s == nil || o == nil {
		return
	}
	s.Count += o.Count
	s.SumNS += o.SumNS
	if o.MaxNS > s.MaxNS {
		s.MaxNS = o.MaxNS
	}
	dense := map[int]int64{}
	for _, b := range s.Buckets {
		dense[b.Idx] += b.N
	}
	for _, b := range o.Buckets {
		dense[b.Idx] += b.N
	}
	s.Buckets = s.Buckets[:0]
	for idx, n := range dense {
		s.Buckets = append(s.Buckets, HistBucket{Idx: idx, N: n})
	}
	sort.Slice(s.Buckets, func(i, j int) bool { return s.Buckets[i].Idx < s.Buckets[j].Idx })
	s.refreshQuantiles()
}

// Cumulative returns the cumulative (bucket upper bound, count) pairs in
// ascending order — the Prometheus histogram exposition shape. The final
// pair has upper bound -1 (+Inf) and count == Count.
func (s *HistSnapshot) Cumulative() []HistBucket {
	if s == nil {
		return nil
	}
	out := make([]HistBucket, 0, len(s.Buckets)+1)
	var cum int64
	for _, b := range s.Buckets {
		cum += b.N
		out = append(out, HistBucket{Idx: b.Idx, N: cum})
	}
	if len(out) == 0 || out[len(out)-1].Idx != HistBuckets-1 {
		out = append(out, HistBucket{Idx: HistBuckets - 1, N: cum})
	}
	return out
}

// Registry is the process-wide aggregation point of the telemetry plane:
// every live Collector attaches to it for the duration of its run, and the
// registry can render a merged view of completed + in-flight runs at any
// moment in Prometheus text exposition format. This is what the ops
// endpoint (internal/ops) scrapes — the CLI commands mount one registry
// per process, and the future extractocold daemon mounts one per server.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry aggregates collectors across their lifetimes. Attach a
// collector when its run starts and Detach it when the run ends; Gather
// merges the final profiles of completed runs with live snapshots of
// in-flight ones, so a scrape mid-corpus sees both. A nil *Registry is a
// no-op everywhere, keeping telemetry strictly opt-in.
type Registry struct {
	start time.Time

	mu        sync.Mutex
	live      map[*Collector]bool
	done      *Profile
	started   int64
	completed int64
}

// NewRegistry returns an empty registry; its uptime clock starts now.
func NewRegistry() *Registry {
	return &Registry{start: time.Now(), live: map[*Collector]bool{}, done: &Profile{}}
}

// Attach registers a live collector. The collector's snapshots become part
// of Gather output until Detach.
func (r *Registry) Attach(c *Collector) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.live[c] = true
	r.started++
	r.mu.Unlock()
}

// Detach removes a collector and folds its final snapshot into the
// completed-runs aggregate. Safe to call for a collector that was never
// attached (no-op beyond the merge guard).
func (r *Registry) Detach(c *Collector) {
	if r == nil || c == nil {
		return
	}
	snap := c.Snapshot()
	r.mu.Lock()
	if r.live[c] {
		delete(r.live, c)
		r.completed++
		r.done.Merge(snap)
	}
	r.mu.Unlock()
}

// Live returns the number of currently attached collectors.
func (r *Registry) Live() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.live)
}

// Gather merges completed-run aggregates with live snapshots into one
// Profile, plus the run lifecycle counts.
func (r *Registry) Gather() (p *Profile, started, completed, live int64) {
	if r == nil {
		return &Profile{}, 0, 0, 0
	}
	r.mu.Lock()
	collectors := make([]*Collector, 0, len(r.live))
	for c := range r.live {
		collectors = append(collectors, c)
	}
	p = &Profile{}
	p.Merge(r.done)
	started, completed, live = r.started, r.completed, int64(len(r.live))
	r.mu.Unlock()
	// Snapshot live collectors outside the registry lock: Snapshot takes
	// each collector's own mutex and may be slow under load.
	for _, c := range collectors {
		p.Merge(c.Snapshot())
	}
	return p, started, completed, live
}

// promCounterVocabulary is the known counter vocabulary, pre-seeded at 0 in
// the exposition output so dashboards and scrape-based tests can rely on
// the series existing before the first increment (a mid-run scrape may land
// before any cache or budget event has fired).
var promCounterVocabulary = []string{
	CtrDPSites, CtrSlicesBackward, CtrSlicesForward,
	CtrTaintFacts, CtrTaintStmts,
	CtrSliceJobs, CtrSliceBusyNS,
	CtrCacheReachableHits, CtrCacheReachableMisses,
	CtrCacheInferTypesHits, CtrCacheInferTypesMisses,
	CtrCacheSummaryHits, CtrCacheSummaryMisses,
	CtrCacheReportHits, CtrCacheReportMisses,
	CtrCacheReportWrites, CtrCacheReportInvalid,
	CtrCacheLockWaitNS, CtrCacheKeyRaces, CtrCacheInstallRetries,
	CtrPairFlowChecks,
	CtrSigbuildJobs, CtrSigbuildBusyNS, CtrSigbuildMethods,
	CtrSigbuildScoped, CtrSigbuildErrors,
	CtrTransactions, CtrDedupFolded,
	CtrTxdepCarriers, CtrTxdepEdges,
	CtrDiagnostics, CtrPanicsRecovered, CtrBudgetExceeded, CtrBudgetSkipped,
}

// promFloat renders a float the way Prometheus clients do: integral values
// without an exponent, everything else in shortest form.
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// promSeconds renders nanoseconds as seconds (the Prometheus base unit).
func promSeconds(ns int64) string {
	return promFloat(float64(ns) / 1e9)
}

// WritePrometheus renders the registry's merged view in Prometheus text
// exposition format. Output is deterministic for equal data: metric
// families and series are emitted in sorted order. Histograms whose name
// carries the phase prefix are folded into one
// extractocol_phase_latency_seconds family with a phase label; the rest
// become their own seconds-valued families.
func (r *Registry) WritePrometheus(w *strings.Builder) {
	p, started, completed, live := r.Gather()

	// Process lifecycle.
	w.WriteString("# TYPE extractocol_uptime_seconds gauge\n")
	var up int64
	if r != nil {
		up = time.Since(r.start).Nanoseconds()
	}
	fmt.Fprintf(w, "extractocol_uptime_seconds %s\n", promSeconds(up))
	w.WriteString("# TYPE extractocol_runs_started_total counter\n")
	fmt.Fprintf(w, "extractocol_runs_started_total %d\n", started)
	w.WriteString("# TYPE extractocol_runs_completed_total counter\n")
	fmt.Fprintf(w, "extractocol_runs_completed_total %d\n", completed)
	w.WriteString("# TYPE extractocol_runs_live gauge\n")
	fmt.Fprintf(w, "extractocol_runs_live %d\n", live)

	// Counters: the known vocabulary pre-seeded at 0, plus anything else
	// observed, in one sorted pass.
	counters := map[string]int64{}
	for _, name := range promCounterVocabulary {
		counters[name] = 0
	}
	for k, v := range p.Counters {
		counters[k] += v
	}
	names := make([]string, 0, len(counters))
	for k := range counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "# TYPE extractocol_%s_total counter\n", k)
		fmt.Fprintf(w, "extractocol_%s_total %d\n", k, counters[k])
	}

	// Gauges.
	for _, k := range sortedKeysF(p.Gauges) {
		fmt.Fprintf(w, "# TYPE extractocol_%s gauge\n", k)
		fmt.Fprintf(w, "extractocol_%s %s\n", k, promFloat(p.Gauges[k]))
	}

	// Phase sums as one labeled family.
	if len(p.Phases) > 0 {
		phases := append([]PhaseProfile(nil), p.Phases...)
		sort.Slice(phases, func(i, j int) bool { return phases[i].Name < phases[j].Name })
		w.WriteString("# TYPE extractocol_phase_seconds_total counter\n")
		for _, ph := range phases {
			fmt.Fprintf(w, "extractocol_phase_seconds_total{phase=%q} %s\n", ph.Name, promSeconds(ph.DurationNS))
		}
	}

	// Histograms: phase-prefixed ones share one family keyed by a phase
	// label; the rest get their own <name>_latency_seconds family.
	var phaseHists, otherHists []string
	for _, name := range p.HistNames() {
		if strings.HasPrefix(name, HistPhasePrefix) {
			phaseHists = append(phaseHists, name)
		} else {
			otherHists = append(otherHists, name)
		}
	}
	if len(phaseHists) > 0 {
		w.WriteString("# TYPE extractocol_phase_latency_seconds histogram\n")
		for _, name := range phaseHists {
			writePromHist(w, "extractocol_phase_latency_seconds",
				fmt.Sprintf("phase=%q", strings.TrimPrefix(name, HistPhasePrefix)), p.Hists[name])
		}
	}
	for _, name := range otherHists {
		family := "extractocol_" + name + "_latency_seconds"
		fmt.Fprintf(w, "# TYPE %s histogram\n", family)
		writePromHist(w, family, "", p.Hists[name])
	}
}

// writePromHist emits one histogram series set (buckets, sum, count) with
// an optional extra label.
func writePromHist(w *strings.Builder, family, label string, h *HistSnapshot) {
	sep := ""
	if label != "" {
		sep = ","
	}
	for _, b := range h.Cumulative() {
		le := "+Inf"
		if up := HistBucketUpperNS(b.Idx); up >= 0 {
			le = promSeconds(up)
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", family, label, sep, le, b.N)
	}
	if label != "" {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", family, label, promSeconds(h.SumNS))
		fmt.Fprintf(w, "%s_count{%s} %d\n", family, label, h.Count)
	} else {
		fmt.Fprintf(w, "%s_sum %s\n", family, promSeconds(h.SumNS))
		fmt.Fprintf(w, "%s_count %d\n", family, h.Count)
	}
}

// Prometheus renders the exposition document as a string.
func (r *Registry) Prometheus() string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

func sortedKeysF(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistryGather(t *testing.T) {
	r := NewRegistry()
	a, b := NewCollector(), NewCollector()
	r.Attach(a)
	r.Attach(b)
	a.Add(CtrTransactions, 3)
	b.Add(CtrTransactions, 4)
	a.Observe(HistAnalyze, 1_000)

	if r.Live() != 2 {
		t.Fatalf("Live = %d, want 2", r.Live())
	}
	p, started, completed, live := r.Gather()
	if started != 2 || completed != 0 || live != 2 {
		t.Fatalf("lifecycle = %d/%d/%d, want 2/0/2", started, completed, live)
	}
	if p.Counter(CtrTransactions) != 7 {
		t.Fatalf("live counter merge = %d, want 7", p.Counter(CtrTransactions))
	}

	// Detach folds the final snapshot into the completed aggregate.
	r.Detach(a)
	r.Detach(a) // double detach is a no-op
	p, started, completed, live = r.Gather()
	if started != 2 || completed != 1 || live != 1 {
		t.Fatalf("after detach = %d/%d/%d, want 2/1/1", started, completed, live)
	}
	if p.Counter(CtrTransactions) != 7 {
		t.Fatalf("post-detach counter merge = %d, want 7", p.Counter(CtrTransactions))
	}
	if h := p.Hist(HistAnalyze); h == nil || h.Count != 1 {
		t.Fatalf("detached hist lost: %+v", h)
	}
}

func TestRegistryNilSafety(t *testing.T) {
	var r *Registry
	r.Attach(NewCollector())
	r.Detach(nil)
	if r.Live() != 0 {
		t.Fatal("nil registry Live should be 0")
	}
	p, _, _, _ := r.Gather()
	if p == nil {
		t.Fatal("nil registry Gather should return an empty profile")
	}
	if out := r.Prometheus(); !strings.Contains(out, "extractocol_runs_live 0") {
		t.Fatalf("nil registry exposition missing lifecycle series:\n%s", out)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := NewCollector()
	r.Attach(c)
	done := c.Phase(PhaseSlice)
	done()
	c.Add(CtrCacheReportHits, 2)
	c.Gauge(GaugeSliceWorkers, 4)
	sh := c.NewShard()
	sh.Observe(HistSliceJob, 5_000)
	c.Drain(sh)

	out := r.Prometheus()
	for _, want := range []string{
		"# TYPE extractocol_uptime_seconds gauge",
		"extractocol_runs_started_total 1",
		"extractocol_runs_live 1",
		"extractocol_cache_report_hits_total 2",
		// Pre-seeded vocabulary: series exist before the first increment.
		"extractocol_budget_exceeded_total 0",
		"extractocol_panics_recovered_total 0",
		"extractocol_slice_workers 4",
		`extractocol_phase_seconds_total{phase="slice"}`,
		"# TYPE extractocol_phase_latency_seconds histogram",
		`extractocol_phase_latency_seconds_bucket{phase="slice",le="+Inf"} 1`,
		`extractocol_phase_latency_seconds_count{phase="slice"} 1`,
		"# TYPE extractocol_slice_job_latency_seconds histogram",
		"extractocol_slice_job_latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	// Rendering is deterministic for equal data (modulo the uptime line).
	strip := func(s string) string {
		var b strings.Builder
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "extractocol_uptime_seconds ") ||
				strings.HasPrefix(line, "extractocol_phase_seconds_total{") ||
				strings.HasPrefix(line, "extractocol_phase_latency_seconds_sum{") {
				continue
			}
			b.WriteString(line)
			b.WriteString("\n")
		}
		return b.String()
	}
	if strip(out) != strip(r.Prometheus()) {
		t.Fatal("exposition not deterministic across scrapes of identical data")
	}
}

func TestPromFloat(t *testing.T) {
	if got := promFloat(4); got != "4" {
		t.Fatalf("promFloat(4) = %q", got)
	}
	if got := promFloat(0.25); got != "0.25" {
		t.Fatalf("promFloat(0.25) = %q", got)
	}
	if got := promSeconds(1_500_000_000); got != "1.5" {
		t.Fatalf("promSeconds(1.5s) = %q", got)
	}
}

func TestEventLogStream(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	c := NewCollector()
	c.SetEvents(l, "app1")
	done := c.Phase(PhaseValidate)
	done()
	c.Event(Event{Type: EvCacheHit, Site: "resultcache"})
	sh := c.NewShard()
	sh.Event(Event{Type: EvDiagnostic, Site: "slice:job3", Detail: "boom"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d events, want 4:\n%s", len(lines), buf.String())
	}
	var prevSeq int64
	for i, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if e.Seq != prevSeq+1 {
			t.Fatalf("line %d seq = %d, want %d", i, e.Seq, prevSeq+1)
		}
		prevSeq = e.Seq
		if e.App != "app1" {
			t.Fatalf("line %d app = %q, want app1", i, e.App)
		}
		// Field order is fixed: seq then t_ns then type.
		if !strings.HasPrefix(line, `{"seq":`) || strings.Index(line, `"t_ns"`) > strings.Index(line, `"type"`) {
			t.Fatalf("line %d field order not deterministic: %s", i, line)
		}
	}
	for i, wantType := range []string{EvPhaseStart, EvPhaseEnd, EvCacheHit, EvDiagnostic} {
		var e Event
		_ = json.Unmarshal([]byte(lines[i]), &e)
		if e.Type != wantType {
			t.Fatalf("line %d type = %q, want %q", i, e.Type, wantType)
		}
		if wantType == EvPhaseEnd && e.DurNS <= 0 {
			t.Fatal("phase_end missing duration")
		}
	}

	var nilLog *EventLog
	nilLog.Emit(Event{Type: EvRunStart})
	if nilLog.Seq() != 0 || nilLog.Close() != nil {
		t.Fatal("nil event log should be a no-op")
	}
}

func TestFlightRing(t *testing.T) {
	c := NewCollector()
	if c.FlightEnabled() {
		t.Fatal("flight recorder should be off by default")
	}
	// Shards made before arming have no ring.
	cold := c.NewShard()
	if cold.FlightDump() != nil {
		t.Fatal("unarmed shard should have no flight history")
	}
	c.EnableFlight()
	if !c.FlightEnabled() {
		t.Fatal("EnableFlight did not arm")
	}

	s := c.NewShard()
	sp := s.Span(CatSliceJob, "job-0")
	sp.End()
	s.Span(CatSliceJob, "job-1") // never ended: in-flight marker
	dump := s.FlightDump()
	if len(dump) != 2 {
		t.Fatalf("dump = %v, want 2 records", dump)
	}
	if !strings.Contains(dump[0], "slice job-0") || strings.Contains(dump[0], "…") {
		t.Fatalf("completed record malformed: %q", dump[0])
	}
	if !strings.Contains(dump[1], "…") {
		t.Fatalf("in-flight record should carry the open marker: %q", dump[1])
	}

	// The ring is bounded: only the newest flightDepth records survive, and
	// ends for overwritten slots are dropped.
	old := s.Span(CatSliceJob, "stale")
	for i := 0; i < flightDepth+5; i++ {
		s.Span(CatTaintBackward, "fix").End()
	}
	old.End() // slot already overwritten; must not corrupt a newer record
	dump = s.FlightDump()
	if len(dump) != flightDepth {
		t.Fatalf("dump length = %d, want %d", len(dump), flightDepth)
	}
	for _, line := range dump {
		if strings.Contains(line, "stale") {
			t.Fatalf("overwritten record leaked into dump: %q", line)
		}
		if strings.Contains(line, "…") {
			t.Fatalf("completed record rendered as in-flight: %q", line)
		}
	}

	// Coordinator ring captures phases.
	done := c.Phase(PhaseCallgraph)
	done()
	cdump := c.FlightDump()
	if len(cdump) != 1 || !strings.Contains(cdump[0], "phase callgraph") {
		t.Fatalf("coordinator dump = %v", cdump)
	}

	var nilShard *Shard
	if nilShard.FlightDump() != nil {
		t.Fatal("nil shard dump should be nil")
	}
	var nilCol *Collector
	nilCol.EnableFlight()
	if nilCol.FlightDump() != nil || nilCol.FlightEnabled() {
		t.Fatal("nil collector flight should be inert")
	}
}

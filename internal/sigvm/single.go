package sigvm

import (
	"extractocol/internal/intern"
	"extractocol/internal/siglang"
)

// Single is one signature compiled in every matching mode — the harness
// the fuzz and property tests drive to compare the VM against the
// interpretive siglang matchers primitive by primitive, outside any
// report. Methods are not safe for concurrent use (they share one
// Matcher's scratch); report-scale matching goes through Compile.
type Single struct {
	b     *Bundle
	m     *Matcher
	text  *TextProg
	query *QueryProg
	json  *JSONProg
	xml   *XMLProg
}

// CompileSingle compiles s for text, query, JSON and (when s is an XML
// signature) XML matching. Compilation never mutates s.
func CompileSingle(s siglang.Sig) *Single {
	b := &Bundle{syms: intern.NewTable(16)}
	sg := &Single{
		b:     b,
		text:  b.note(compileText(s)),
		query: b.compileQuery(s),
		json:  b.compileJSON(s),
	}
	if x, isXML := s.(*siglang.XML); isXML {
		sg.xml = b.compileXML(x.Root)
	}
	sg.m = b.NewMatcher()
	return sg
}

// MatchText is the compiled form of siglang.MatchText(s, payload).
func (s *Single) MatchText(payload string) (bool, siglang.ByteStats) {
	return s.m.matchTextStats(s.text, payload)
}

// MatchQuery is the compiled form of siglang.MatchQuery(s, query).
func (s *Single) MatchQuery(query string) (bool, siglang.ByteStats) {
	return s.b.matchQuery(s.query, query)
}

// MatchJSON is the compiled form of siglang.MatchJSON(s, payload).
func (s *Single) MatchJSON(payload []byte) (bool, siglang.ByteStats, error) {
	return s.m.matchJSON(s.json, payload)
}

// MatchXML is the compiled form of siglang.MatchXML(s, payload); it
// requires the signature to have been an *siglang.XML.
func (s *Single) MatchXML(payload []byte) (bool, siglang.ByteStats, error) {
	return s.b.matchXML(s.xml, payload)
}

// HasXML reports whether the compiled signature was an XML signature.
func (s *Single) HasXML() bool { return s.xml != nil }

package sigvm

import (
	"strings"

	"extractocol/internal/intern"
	"extractocol/internal/siglang"
)

// QueryProg is a compiled query/form-body matcher: the signature's
// constant keys interned into the bundle's symbol table and held as a
// dense bitset, replacing the map[string]bool MatchQuery rebuilds (and
// sorts) on every call.
type QueryProg struct {
	known    *intern.Bits
	hasKnown bool // the signature names at least one key
}

func (b *Bundle) compileQuery(s siglang.Sig) *QueryProg {
	p := &QueryProg{known: intern.NewBits(0)}
	for _, k := range siglang.Keywords(s) {
		p.known.Add(b.syms.Intern(k))
		p.hasKnown = true
	}
	return p
}

// matchQuery is siglang.MatchQuery on a compiled program: identical pair
// splitting, separator accounting, and verdict rule ("every known-keyed
// pair matched, or the signature knows no keys at all"), with the key
// membership test a symbol lookup instead of a rebuilt map.
func (b *Bundle) matchQuery(p *QueryProg, query string) (bool, siglang.ByteStats) {
	var st siglang.ByteStats
	if query == "" {
		return true, st
	}
	rest := query
	for i := 0; ; i++ {
		pair := rest
		more := false
		if j := strings.IndexByte(rest, '&'); j >= 0 {
			pair, rest = rest[:j], rest[j+1:]
			more = true
		}
		sep := 0
		if i > 0 {
			sep = 1 // the '&'
		}
		k, v, found := strings.Cut(pair, "=")
		switch {
		case !found:
			st.None += len(pair) + sep
		case b.knows(p, k):
			st.Key += len(k) + 1 + sep // key, '=', '&'
			st.Value += len(v)
		default:
			st.None += len(pair) + sep
		}
		if !more {
			break
		}
	}
	return st.None == 0 || p.hasKnown, st
}

func (b *Bundle) knows(p *QueryProg, k string) bool {
	id, ok := b.syms.Lookup(k)
	return ok && p.known.Has(id)
}

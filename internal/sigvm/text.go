package sigvm

import (
	"regexp"
	"strings"
	"unicode/utf8"

	"extractocol/internal/siglang"
)

// The text engine is a Pike VM (breadth-first Thompson-NFA simulation)
// over a five-opcode bytecode compiled directly from the signature tree,
// mirroring siglang.writeRegex construct for construct:
//
//	opByte  b    consume exactly the byte b            (QuoteMeta literal)
//	opDigit      consume one byte in [0-9]             ([0-9] of "[0-9]+")
//	opNotNL      consume any byte except '\n'          (. of ".*")
//	opSplit x y  fork: continue at both x and y        (*, | and + loops)
//	opJmp   x    continue at x                         (loop back-edges)
//	opMatch      accept iff the whole input is consumed
//
// Programs are anchored on both ends, exactly like siglang.Regex's "^...$":
// execution starts at pc 0 on byte 0 and opMatch only accepts at
// end-of-input (Go's regexp "$" without (?m) likewise matches only at end
// of text). Matching is byte-wise where Go's regexp is rune-wise; the two
// agree on every pattern the renderer can emit: literals match their exact
// bytes, "[0-9]+" is pure ASCII, and ".*" — any run of runes excluding
// '\n' — equals any run of bytes excluding 0x0A, because 0x0A never occurs
// inside a multi-byte UTF-8 sequence and invalid bytes decode to U+FFFD,
// which '.' matches. Thread lists are deduplicated per input position, so
// the epsilon cycles produced by empty repetition bodies ("(?:)*")
// terminate.
type op uint8

const (
	opByte op = iota
	opDigit
	opNotNL
	opSplit
	opJmp
	opMatch
)

type inst struct {
	op   op
	b    byte
	x, y uint32
}

// TextProg is one compiled text signature: the Pike bytecode plus the
// precomputed byte-accounting inputs MatchText derives per call (literal
// fragments, rendered-regex length for best-match tie-breaking) and the
// fast-path summaries (anchored literal prefix, whole-literal form).
type TextProg struct {
	insts []inst
	lits  []string // literal fragments, for AccountText
	spec  int      // len(siglang.Regex(sig)): the tie-break weight
	valid bool     // siglang.Compile succeeded; invalid progs never match

	prefix    string // unconditional anchored literal prefix
	prefixLen uint32 // leading opByte count; the VM resumes past them
	literal   string // whole program is this exact literal ("" when not)
	isLit     bool
	altLits   []string // program accepts exactly these strings (nil: no)
	anyNoNL   bool     // program is ".*": accepts any input without '\n'

	// re is a rare rune-semantics fallback: Go's regexp matches runes, and
	// an input byte that is not valid UTF-8 decodes to U+FFFD — so a
	// signature literal containing U+FFFD matches any invalid byte, which
	// no byte comparison can reproduce. Programs whose rendered pattern
	// contains U+FFFD (equivalently: some literal does) keep the compiled
	// regexp and match through it; every other pattern the renderer emits
	// is byte/rune agnostic.
	re *regexp.Regexp
}

// compileText lowers a text signature to bytecode. Validity mirrors the
// interpretive path exactly: siglang.Compile is consulted once here, and a
// signature it rejects yields a program that never matches — the same
// outcome as MatchText's error return and MatchReport's sig skipping.
func compileText(s siglang.Sig) *TextProg {
	rx := siglang.Regex(s)
	p := &TextProg{spec: len(rx)}
	re, err := siglang.Compile(s)
	if err != nil {
		return p
	}
	p.valid = true
	p.lits = siglang.LiteralFragments(s)
	if strings.ContainsRune(rx, utf8.RuneError) {
		p.re = re
		return p
	}
	var c textCompiler
	c.emit(s)
	c.insts = append(c.insts, inst{op: opMatch})
	p.insts = c.insts
	p.prefix, p.literal, p.isLit = textSummaries(c.insts)
	p.prefixLen = uint32(len(p.prefix))
	if !p.isLit {
		if lits, ok := literalAlts(s, 8); ok {
			p.altLits = lits
		}
	}
	p.anyNoNL = isDotStar(c.insts)
	return p
}

// literalAlts enumerates the exact strings a signature accepts when it is
// a finite alternation of literals (literals, booleans, and their concats
// and alternations); ok is false past max strings or on any open-ended
// construct, and the VM handles those shapes instead.
func literalAlts(s siglang.Sig, max int) ([]string, bool) {
	switch v := s.(type) {
	case *siglang.Lit:
		return []string{v.Val}, true
	case *siglang.Unknown:
		if v.Type == siglang.VBool {
			return []string{"true", "false"}, true
		}
	case *siglang.Concat:
		out := []string{""}
		for _, part := range v.Parts {
			alts, ok := literalAlts(part, max)
			if !ok {
				return nil, false
			}
			next := make([]string, 0, len(out)*len(alts))
			for _, pre := range out {
				for _, a := range alts {
					next = append(next, pre+a)
				}
			}
			if len(next) > max {
				return nil, false
			}
			out = next
		}
		return out, true
	case *siglang.Or:
		if len(v.Alts) == 0 {
			// "(?:)": the renderer and the emitter both treat the empty
			// alternation as epsilon.
			return []string{""}, true
		}
		var out []string
		for _, a := range v.Alts {
			alts, ok := literalAlts(a, max)
			if !ok {
				return nil, false
			}
			out = append(out, alts...)
			if len(out) > max {
				return nil, false
			}
		}
		return out, true
	}
	return nil, false
}

// isDotStar recognizes the exact ".*" program dotStar emits — the most
// common URI shape after literals — whose language is simply "no newline".
func isDotStar(insts []inst) bool {
	return len(insts) == 4 &&
		insts[0].op == opSplit && insts[0].x == 1 && insts[0].y == 3 &&
		insts[1].op == opNotNL &&
		insts[2].op == opJmp && insts[2].x == 0 &&
		insts[3].op == opMatch
}

// textSummaries extracts the anchored literal prefix and, when the program
// is nothing but literal bytes, the exact string it accepts.
func textSummaries(insts []inst) (prefix, literal string, isLit bool) {
	var b strings.Builder
	for i, in := range insts {
		switch in.op {
		case opByte:
			b.WriteByte(in.b)
		case opMatch:
			if i == len(insts)-1 {
				return b.String(), b.String(), true
			}
			return b.String(), "", false
		default:
			return b.String(), "", false
		}
	}
	return b.String(), "", false
}

type textCompiler struct {
	insts []inst
}

func (c *textCompiler) pc() uint32 { return uint32(len(c.insts)) }

func (c *textCompiler) add(in inst) uint32 {
	c.insts = append(c.insts, in)
	return uint32(len(c.insts) - 1)
}

// emit compiles one signature node; the generated fragment falls through
// to whatever is emitted next.
func (c *textCompiler) emit(s siglang.Sig) {
	switch v := s.(type) {
	case nil:
		c.dotStar()
	case *siglang.Lit:
		for i := 0; i < len(v.Val); i++ {
			c.add(inst{op: opByte, b: v.Val[i]})
		}
	case *siglang.Unknown:
		switch v.Type {
		case siglang.VInt:
			// [0-9]+ : one digit, then an optional loop.
			first := c.add(inst{op: opDigit})
			sp := c.add(inst{op: opSplit, x: first})
			c.insts[sp].y = c.pc()
		case siglang.VBool:
			// (?:true|false)
			sp := c.add(inst{op: opSplit})
			c.insts[sp].x = c.pc()
			for _, b := range []byte("true") {
				c.add(inst{op: opByte, b: b})
			}
			j := c.add(inst{op: opJmp})
			c.insts[sp].y = c.pc()
			for _, b := range []byte("false") {
				c.add(inst{op: opByte, b: b})
			}
			c.insts[j].x = c.pc()
		default:
			c.dotStar()
		}
	case *siglang.Concat:
		for _, p := range v.Parts {
			c.emit(p)
		}
	case *siglang.Rep:
		// (?:body)* : split over the body with a back-edge.
		sp := c.add(inst{op: opSplit})
		c.insts[sp].x = c.pc()
		c.emit(v.Body)
		c.add(inst{op: opJmp, x: sp})
		c.insts[sp].y = c.pc()
	case *siglang.Or:
		c.alts(v.Alts)
	default:
		// *JSON / *Obj / *Arr / *XML embedded in a text position render as
		// ".*" (structural matching handles them elsewhere).
		c.dotStar()
	}
}

// dotStar emits ".*": a split over a single not-newline consumer.
func (c *textCompiler) dotStar() {
	sp := c.add(inst{op: opSplit})
	c.insts[sp].x = c.pc()
	c.add(inst{op: opNotNL})
	c.add(inst{op: opJmp, x: sp})
	c.insts[sp].y = c.pc()
}

// alts emits an alternation; zero alternatives is "(?:)", the empty match.
func (c *textCompiler) alts(alts []siglang.Sig) {
	if len(alts) == 0 {
		return
	}
	var jumps []uint32
	for i, a := range alts {
		if i < len(alts)-1 {
			sp := c.add(inst{op: opSplit})
			c.insts[sp].x = c.pc()
			c.emit(a)
			jumps = append(jumps, c.add(inst{op: opJmp}))
			c.insts[sp].y = c.pc()
		} else {
			c.emit(a)
		}
	}
	out := c.pc()
	for _, j := range jumps {
		c.insts[j].x = out
	}
}

// matchText runs a program over the input using the matcher's scratch
// thread lists. It is the bool of siglang.MatchText.
func (m *Matcher) matchText(p *TextProg, input string) bool {
	if !p.valid {
		return false
	}
	if p.re != nil {
		return p.re.MatchString(input)
	}
	if p.isLit {
		return input == p.literal
	}
	if p.altLits != nil {
		for _, l := range p.altLits {
			if input == l {
				return true
			}
		}
		return false
	}
	if p.anyNoNL {
		return strings.IndexByte(input, '\n') < 0
	}
	if !strings.HasPrefix(input, p.prefix) {
		return false
	}
	n := len(p.insts)
	m.ensure(n)
	cur, next := m.cur[:0], m.next[:0]
	m.bump()
	// The prefix bytes are verified; resume the VM past their opByte run.
	cur = m.addThread(p, cur, p.prefixLen)
	for i := int(p.prefixLen); i <= len(input); i++ {
		atEnd := i == len(input)
		var b byte
		if !atEnd {
			b = input[i]
		}
		next = next[:0]
		m.bump()
		for _, pc := range cur {
			in := p.insts[pc]
			switch in.op {
			case opMatch:
				if atEnd {
					m.cur, m.next = cur, next
					return true
				}
			case opByte:
				if !atEnd && b == in.b {
					next = m.addThread(p, next, pc+1)
				}
			case opDigit:
				if !atEnd && b >= '0' && b <= '9' {
					next = m.addThread(p, next, pc+1)
				}
			case opNotNL:
				if !atEnd && b != '\n' {
					next = m.addThread(p, next, pc+1)
				}
			}
		}
		cur, next = next, cur
		if len(cur) == 0 && !atEnd {
			break
		}
	}
	m.cur, m.next = cur, next
	return false
}

// addThread inserts pc and its epsilon closure (splits, jumps) into list,
// deduplicating against the current generation mark.
func (m *Matcher) addThread(p *TextProg, list []uint32, pc uint32) []uint32 {
	stack := m.stack[:0]
	stack = append(stack, pc)
	for len(stack) > 0 {
		pc = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if m.mark[pc] == m.gen {
			continue
		}
		m.mark[pc] = m.gen
		switch in := p.insts[pc]; in.op {
		case opSplit:
			stack = append(stack, in.y, in.x)
		case opJmp:
			stack = append(stack, in.x)
		default:
			list = append(list, pc)
		}
	}
	m.stack = stack[:0]
	return list
}

// matchTextStats is siglang.MatchText on a compiled program: the verdict
// from the VM, the byte accounting from the shared AccountText over the
// precomputed fragments.
func (m *Matcher) matchTextStats(p *TextProg, input string) (bool, siglang.ByteStats) {
	if !m.matchText(p, input) {
		return false, siglang.ByteStats{}
	}
	return true, siglang.AccountText(p.lits, input)
}

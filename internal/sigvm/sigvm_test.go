package sigvm

import (
	"fmt"
	"testing"

	"extractocol/internal/siglang"
)

// textSigs covers every construct the regex renderer can emit: literals
// (including metacharacters QuoteMeta escapes), typed unknowns, nested
// repetition and disjunction, empty bodies, and structured trees embedded
// in text positions.
func textSigs(t testing.TB) []siglang.Sig {
	sigs := []siglang.Sig{
		siglang.Str(""),
		siglang.Str("https://api.example.com/v1/items"),
		siglang.Str("dots.and+plus(paren)[set]{brace}^$|?*\\"),
		siglang.Cat(siglang.Str("https://api.example.com/v"), siglang.AnyInt(), siglang.Str("/items?count="), siglang.AnyInt()),
		siglang.Cat(siglang.Str("/u/"), siglang.AnyString(), siglang.Str("/p/"), siglang.AnyString()),
		siglang.AnyString(),
		siglang.AnyInt(),
		&siglang.Unknown{Type: siglang.VBool},
		siglang.Repeat(siglang.Cat(siglang.Str("&tag="), siglang.AnyString())),
		siglang.Repeat(siglang.Str("")), // empty repetition body: epsilon cycle
		&siglang.Or{},                   // "(?:)"
		&siglang.Or{Alts: []siglang.Sig{siglang.Str("a")}},
		&siglang.Or{Alts: []siglang.Sig{siglang.Str("GET"), siglang.Str("POST"), siglang.AnyString()}},
		siglang.Cat(siglang.Str("id="), &siglang.Or{Alts: []siglang.Sig{siglang.AnyInt(), siglang.Str("none")}}),
		&siglang.Obj{Pairs: []siglang.KV{{Key: "k", Val: siglang.Any()}}}, // structured in text position: ".*"
		siglang.Cat(siglang.Str("pre-"), siglang.Repeat(&siglang.Or{Alts: []siglang.Sig{siglang.Str("ab"), siglang.AnyInt()}}), siglang.Str("-post")),
	}
	for _, src := range []string{
		`concat("https://h/", ?string, "/x")`,
		`rep{("a" ∨ "b")}`,
		`(num(1) ∨ num(2) ∨ ?bool)`,
	} {
		s, err := siglang.Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		sigs = append(sigs, s)
	}
	return sigs
}

func textPayloads() []string {
	return []string{
		"",
		"https://api.example.com/v1/items",
		"https://api.example.com/v2/items?count=17",
		"https://api.example.com/v/items?count=",
		"/u/alice/p/42",
		"/u/alice/p/42\n",
		"line1\nline2",
		"true", "false", "truefalse", "tru",
		"0123456789", "12a34",
		"&tag=x&tag=y", "&tag=",
		"id=17", "id=none", "id=",
		"dots.and+plus(paren)[set]{brace}^$|?*\\",
		"pre--post", "pre-abab12-post", "pre-ab12x-post",
		"unicode→snowman☃", "invalid\xff\xfebytes",
		"GET", "POST", "anything",
	}
}

// TestTextVMMatchesOracle compares the Pike VM against the regexp oracle
// (match verdict and byte accounting) over the full construct × payload
// cross product.
func TestTextVMMatchesOracle(t *testing.T) {
	for _, sig := range textSigs(t) {
		single := CompileSingle(sig)
		for _, payload := range textPayloads() {
			wantOK, wantSt := siglang.MatchText(sig, payload)
			gotOK, gotSt := single.MatchText(payload)
			if wantOK != gotOK || wantSt != gotSt {
				t.Errorf("MatchText(%s, %q): interp (%v, %+v), vm (%v, %+v)",
					siglang.Canon(sig), payload, wantOK, wantSt, gotOK, gotSt)
			}
		}
	}
}

func TestQueryVMMatchesOracle(t *testing.T) {
	sigs := []siglang.Sig{
		siglang.Str("count=&tag="),
		siglang.Cat(siglang.Str("user="), siglang.AnyString(), siglang.Str("&id="), siglang.AnyInt()),
		siglang.AnyString(), // no known keys
		&siglang.Obj{Pairs: []siglang.KV{{Key: "q", Val: siglang.Any()}, {Key: "page", Val: siglang.AnyInt()}}},
	}
	queries := []string{
		"",
		"count=3",
		"count=3&tag=news",
		"tag=news&other=1",
		"noequals",
		"count=3&noequals&tag=",
		"&&",
		"a=1&a=2&a=3",
		"user=bob&id=7",
		"q=term&page=2&extra=x",
		"trailing=1&",
	}
	for _, sig := range sigs {
		single := CompileSingle(sig)
		for _, q := range queries {
			wantOK, wantSt := siglang.MatchQuery(sig, q)
			gotOK, gotSt := single.MatchQuery(q)
			if wantOK != gotOK || wantSt != gotSt {
				t.Errorf("MatchQuery(%s, %q): interp (%v, %+v), vm (%v, %+v)",
					siglang.Canon(sig), q, wantOK, wantSt, gotOK, gotSt)
			}
		}
	}
}

func jsonSigs(t testing.TB) []siglang.Sig {
	var sigs []siglang.Sig
	for _, src := range []string{
		`obj{"user": ?string, "id": ?int}`,
		`obj{"user": ?string, ?key: num(1), "hole": ?any}`,
		`json(obj{"data": obj{"items": array[obj{"name": ?string}...], "total": ?int}})`,
		`array[num(1), "two", ?bool]`,
		`array[obj{"a": ?int}, obj{"b": ?string}]`, // element confluence-merge
		`(obj{"ok": ?bool} ∨ obj{"error": ?string})`,
		`"literal"`,
		`num(42)`,
		`?any`,
		`concat("v", ?int)`, // string-leaf regex
		`rep{("x" ∨ ?int)}`,
		`obj{}`,
		`array[]`,
	} {
		s, err := siglang.Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		sigs = append(sigs, s)
	}
	return sigs
}

func jsonPayloads() []string {
	return []string{
		`{}`,
		`{"user":"bob","id":7}`,
		`{"user":"bob","id":7,"extra":[1,2,3]}`,
		`{"user":"bob"}`,
		`{"id":"not-an-int"}`,
		`{"data":{"items":[{"name":"a"},{"name":"b"}],"total":2}}`,
		`{"data":{"items":[{"nope":1}],"total":"x"}}`,
		`[1,"two",true]`,
		`[{"a":1},{"b":"s"},{"a":2,"b":"t"}]`,
		`[]`,
		`{"ok":true}`,
		`{"error":"boom"}`,
		`{"neither":null}`,
		`"literal"`,
		`"v17"`,
		`"v"`,
		`42`,
		`41.5`,
		`true`,
		`null`,
		`"x12x"`,
		`not json at all`,
		`{"trunc":`,
	}
}

// TestJSONVMMatchesOracle compares the flattened JSON matcher against the
// interpretive walk, including the error behavior on malformed payloads.
func TestJSONVMMatchesOracle(t *testing.T) {
	for _, sig := range jsonSigs(t) {
		// Compile from the pristine tree: the interpreter's array
		// confluence-merge mutates signature trees on first match, and the
		// compiled program must behave like every interpretive call, first
		// or later.
		single := CompileSingle(sig)
		before := siglang.Canon(sig)
		for round := 0; round < 2; round++ {
			for _, payload := range jsonPayloads() {
				wantOK, wantSt, wantErr := siglang.MatchJSON(sig, []byte(payload))
				gotOK, gotSt, gotErr := single.MatchJSON([]byte(payload))
				if wantOK != gotOK || wantSt != gotSt || (wantErr == nil) != (gotErr == nil) {
					t.Errorf("round %d MatchJSON(%s, %s): interp (%v, %+v, %v), vm (%v, %+v, %v)",
						round, before, payload, wantOK, wantSt, wantErr, gotOK, gotSt, gotErr)
				}
			}
		}
	}
}

// TestCompileDoesNotMutateSignature pins the Clone-before-Merge contract:
// compiling a bundle must leave the report's signature trees untouched,
// unlike the interpretive array merge.
func TestCompileDoesNotMutateSignature(t *testing.T) {
	src := `array[obj{"a": ?int}, obj{"b": ?string}]`
	sig, err := siglang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	before := siglang.Canon(sig)
	CompileSingle(sig)
	if after := siglang.Canon(sig); after != before {
		t.Fatalf("compilation mutated the signature:\n before %s\n after  %s", before, after)
	}
}

func TestXMLVMMatchesOracle(t *testing.T) {
	var sigs []*siglang.XML
	for _, src := range []string{
		`xml(<rss version="2.0" lang=?any><channel><item>?string</item></channel>"tail"</rss>)`,
		`xml(<a><b></b><b></b></a>)`,
	} {
		s, err := siglang.Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		sigs = append(sigs, s.(*siglang.XML))
	}
	// The wildcard document root the response builder produces.
	sigs = append(sigs, &siglang.XML{Root: &siglang.Elem{
		Tag:      "*",
		Children: []*siglang.Elem{{Tag: "item", Text: siglang.AnyString()}},
	}})
	payloads := []string{
		`<rss version="2.0" lang="en"><channel><item>hello</item></channel>trailing</rss>`,
		`<rss version="2.0"><channel><item>hello</item><junk attr="1">x</junk></channel></rss>`,
		`<rss><channel></channel></rss>`,
		`<a><b></b></a>`,
		`<a><b><c></c></b></a>`,
		`<other><deep><item>found</item></deep></other>`,
		`<wrong/>`,
		`not xml`,
		``,
	}
	for _, sig := range sigs {
		single := CompileSingle(sig)
		if !single.HasXML() {
			t.Fatalf("no XML program for %s", siglang.Canon(sig))
		}
		for _, payload := range payloads {
			wantOK, wantSt, wantErr := siglang.MatchXML(sig, []byte(payload))
			gotOK, gotSt, gotErr := single.MatchXML([]byte(payload))
			if wantOK != gotOK || wantSt != gotSt || (wantErr == nil) != (gotErr == nil) {
				t.Errorf("MatchXML(%s, %s): interp (%v, %+v, %v), vm (%v, %+v, %v)",
					siglang.Canon(sig), payload, wantOK, wantSt, wantErr, gotOK, gotSt, gotErr)
			}
		}
	}
}

// TestMatcherScratchReuse runs many programs through one matcher to
// exercise generation bumping and scratch growth across differently sized
// programs.
func TestMatcherScratchReuse(t *testing.T) {
	sigs := textSigs(t)
	payloads := textPayloads()
	for round := 0; round < 3; round++ {
		for _, sig := range sigs {
			single := CompileSingle(sig)
			for _, p := range payloads {
				want, _ := siglang.MatchText(sig, p)
				for i := 0; i < 2; i++ { // same matcher, repeated
					if got, _ := single.MatchText(p); got != want {
						t.Fatalf("round %d repeat %d: MatchText(%s, %q) = %v, want %v",
							round, i, siglang.Canon(sig), p, got, want)
					}
				}
			}
		}
	}
}

// TestTextVMDeepSignature checks the VM against a signature large enough
// to force scratch growth and long thread lists.
func TestTextVMDeepSignature(t *testing.T) {
	parts := []siglang.Sig{siglang.Str("/root")}
	payload := "/root"
	for i := 0; i < 50; i++ {
		parts = append(parts, siglang.Str(fmt.Sprintf("/seg%d/", i)), siglang.AnyString())
		payload += fmt.Sprintf("/seg%d/val%d", i, i)
	}
	sig := siglang.Cat(parts...)
	single := CompileSingle(sig)
	for _, p := range []string{payload, payload + "\n", "/root/seg0/"} {
		wantOK, wantSt := siglang.MatchText(sig, p)
		gotOK, gotSt := single.MatchText(p)
		if wantOK != gotOK || wantSt != gotSt {
			t.Errorf("deep sig on %q: interp (%v, %+v), vm (%v, %+v)", p, wantOK, wantSt, gotOK, gotSt)
		}
	}
}

package sigvm

import (
	"extractocol/internal/siglang"
)

// JSONProg is a compiled JSON-body matcher: the signature tree flattened
// into an array of nodes with every per-call derivation of the
// interpretive matcher precomputed — object key sets interned, the
// last-dynamic-pair value resolved, array element signatures
// confluence-merged (over clones, so compiling never mutates the report's
// trees), and string-leaf regexes lowered to text bytecode instead of
// being recompiled per payload.
type JSONProg struct {
	nodes []jsonNode
	root  int32 // index of the root node; -1 for a nil signature
}

// jsonNode is one flattened signature node. Child references are indices
// into JSONProg.nodes; -1 is the nil signature (matchLeafOrRecurse's
// "value structure unknown" branch).
type jsonNode struct {
	kind jsonKind

	// kObj
	fields   map[uint32]int32 // interned key → value node (first non-dyn pair wins, as Obj.Get does)
	required []string         // non-dyn keys that must be present in the payload
	dyn      int32            // value node of the last dynamic pair
	hasDyn   bool

	// kArr
	item int32 // confluence-merge of the element signatures

	// kOr
	alts []int32

	// kLit
	lit *siglang.Lit

	// kText: Concat/Rep (or any other leaf) matched as an anchored regex
	// against string payloads
	text *TextProg
}

type jsonKind uint8

const (
	kObj jsonKind = iota
	kArr
	kOr
	kLit
	kUnknown
	kText
)

func (b *Bundle) compileJSON(s siglang.Sig) *JSONProg {
	p := &JSONProg{}
	p.root = b.compileJSONNode(p, s)
	return p
}

// compileJSONNode flattens one signature subtree, returning its node index
// (-1 for nil). The case split mirrors matchJSONValue exactly.
func (b *Bundle) compileJSONNode(p *JSONProg, s siglang.Sig) int32 {
	switch v := s.(type) {
	case nil:
		return -1
	case *siglang.JSON:
		return b.compileJSONNode(p, v.Root)
	case *siglang.Obj:
		n := jsonNode{kind: kObj, fields: map[uint32]int32{}, dyn: -1}
		if v != nil {
			for _, kv := range v.Pairs {
				if kv.Dyn {
					// Last dynamic pair wins, as in the interpreter's scan.
					n.hasDyn = true
					n.dyn = b.compileJSONNode(p, kv.Val)
					continue
				}
				id := b.syms.Intern(kv.Key)
				if _, seen := n.fields[id]; !seen {
					// First non-dyn pair wins, as Obj.Get does.
					n.fields[id] = b.compileJSONNode(p, kv.Val)
					n.required = append(n.required, kv.Key)
				}
			}
		}
		return p.push(n)
	case *siglang.Arr:
		var item siglang.Sig
		for _, e := range v.Elems {
			// Merge mutates its first operand (MergeObj appends pairs in
			// place), so fold over clones: the report's tree stays pristine
			// and the compiled item equals what the interpreter builds.
			item = siglang.Merge(item, siglang.Clone(e))
		}
		return p.push(jsonNode{kind: kArr, item: b.compileJSONNode(p, item)})
	case *siglang.Or:
		n := jsonNode{kind: kOr}
		for _, a := range v.Alts {
			n.alts = append(n.alts, b.compileJSONNode(p, a))
		}
		return p.push(n)
	case *siglang.Lit:
		return p.push(jsonNode{kind: kLit, lit: v})
	case *siglang.Unknown:
		return p.push(jsonNode{kind: kUnknown})
	default:
		return p.push(jsonNode{kind: kText, text: compileText(s)})
	}
}

func (p *JSONProg) push(n jsonNode) int32 {
	p.nodes = append(p.nodes, n)
	return int32(len(p.nodes) - 1)
}

// matchJSON is siglang.MatchJSON on a compiled program: decode through the
// shared DecodeJSONPayload, then walk the flattened nodes with identical
// verdicts and byte accounting.
func (m *Matcher) matchJSON(p *JSONProg, payload []byte) (bool, siglang.ByteStats, error) {
	v, err := siglang.DecodeJSONPayload(payload)
	if err != nil {
		return false, siglang.ByteStats{}, err
	}
	var st siglang.ByteStats
	ok := m.matchJSONValue(p, p.root, v, &st)
	return ok, st, nil
}

// matchJSONValue mirrors siglang.matchJSONValue node for node. idx == -1
// is the nil signature: the payload subtree is unaccounted (None).
func (m *Matcher) matchJSONValue(p *JSONProg, idx int32, v any, st *siglang.ByteStats) bool {
	if idx < 0 {
		st.None += siglang.JSONSize(v)
		return true
	}
	n := &p.nodes[idx]
	switch n.kind {
	case kObj:
		mp, isMap := v.(map[string]any)
		if !isMap {
			st.None += siglang.JSONSize(v)
			return false
		}
		ok := true
		for _, k := range n.required {
			if _, present := mp[k]; !present {
				ok = false
			}
		}
		for k, val := range mp {
			if fieldIdx, known := m.lookupField(n, k); known {
				st.Key += len(k) + 3 // quotes + colon
				if !m.matchLeaf(p, fieldIdx, val, st) {
					ok = false
				}
			} else if n.hasDyn {
				st.Value += len(k) + 3
				if !m.matchLeaf(p, n.dyn, val, st) {
					ok = false
				}
			} else {
				st.None += len(k) + 3 + siglang.JSONSize(val)
			}
		}
		return ok
	case kArr:
		arr, isArr := v.([]any)
		if !isArr {
			st.None += siglang.JSONSize(v)
			return false
		}
		ok := true
		for _, el := range arr {
			if !m.matchLeaf(p, n.item, el, st) {
				ok = false
			}
		}
		return ok
	case kOr:
		for _, alt := range n.alts {
			var tmp siglang.ByteStats
			if m.matchJSONValue(p, alt, v, &tmp) {
				st.Add(tmp)
				return true
			}
		}
		st.None += siglang.JSONSize(v)
		return false
	case kLit:
		st.Value += siglang.JSONSize(v)
		return siglang.LiteralMatches(n.lit, v)
	case kUnknown:
		st.Value += siglang.JSONSize(v)
		return true
	default: // kText
		st.Value += siglang.JSONSize(v)
		str, isStr := v.(string)
		if !isStr {
			return true
		}
		return m.matchText(n.text, str)
	}
}

// matchLeaf mirrors matchLeafOrRecurse: a nil signature accepts the value
// and charges its bytes as Value (the key was known, the structure is not).
func (m *Matcher) matchLeaf(p *JSONProg, idx int32, val any, st *siglang.ByteStats) bool {
	if idx < 0 {
		st.Value += siglang.JSONSize(val)
		return true
	}
	return m.matchJSONValue(p, idx, val, st)
}

// lookupField resolves a payload key against an object node's interned
// field set.
func (m *Matcher) lookupField(n *jsonNode, k string) (int32, bool) {
	id, ok := m.b.syms.Lookup(k)
	if !ok {
		return -1, false
	}
	idx, known := n.fields[id]
	return idx, known
}

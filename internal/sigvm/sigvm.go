// Package sigvm compiles siglang signatures into compact matcher programs
// and executes them against traffic at line rate. The interpretive matcher
// (siglang.MatchText/MatchQuery/MatchJSON/MatchXML driven by
// trace.MatchReport) re-derives everything per entry: it renders and
// compiles the URI regex, rebuilds keyword sets, re-merges array element
// signatures, and recompiles string-leaf regexes. A Bundle does all of
// that once per report:
//
//   - URI templates and text bodies lower to a five-opcode Pike-VM
//     bytecode (see text.go) with precomputed literal fragments, anchored
//     literal prefixes, and the rendered-regex length used for best-match
//     tie-breaking;
//   - query/form key sets become interned-symbol bitsets (query.go);
//   - JSON body trees flatten to node arrays with key sets interned and
//     array confluence-merges precomputed over clones (json.go);
//   - XML element trees carry interned attribute/child-tag sets (xml.go).
//
// A Bundle is immutable after Compile and shared read-only across any
// number of matcher goroutines; all mutable run state (Pike thread lists,
// visited marks) lives in per-worker Matcher values. The interpretive
// matcher stays the equivalence oracle: trace.MatchOptions selects the
// backend, a differential axis in internal/evaluate compares the two over
// generated corpora, and FuzzSigVM compares them per primitive.
package sigvm

import (
	"extractocol/internal/core"
	"extractocol/internal/intern"
	"extractocol/internal/siglang"
)

// Prog is the compiled form of one transaction signature.
type Prog struct {
	TxID   int
	Method string

	uri *TextProg

	reqKind  string     // RequestSig.BodyKind: "", "query", "json", "text", ...
	reqQuery *QueryProg // "query", and the query-shaped half of "text"
	reqJSON  *JSONProg  // "json"
	reqText  *TextProg  // the text half of "text"

	hasResp  bool   // a response signature exists (even with no body model)
	respKind string // ResponseSig.BodyKind ("" when the body is unused)
	respJSON *JSONProg
	respXML  *XMLProg

	headerKeys []string // constant request-header keys (interned, informational)
}

// Bundle is a report's signatures compiled for matching: one shared
// symbol table, one Prog per transaction. Immutable after Compile.
type Bundle struct {
	syms  *intern.Table
	progs []Prog
	maxPC int // largest text program, sizes Matcher scratch
}

// Compile lowers every transaction signature in a report. Signatures whose
// URI regex does not compile still get a Prog — their text program simply
// never matches, mirroring MatchReport's skip of uncompilable signatures.
func Compile(rep *core.Report) *Bundle {
	b := &Bundle{syms: intern.NewTable(64)}
	for _, tx := range rep.Transactions {
		b.progs = append(b.progs, b.compileTx(tx))
	}
	return b
}

func (b *Bundle) compileTx(tx *core.Transaction) Prog {
	p := Prog{
		TxID:   tx.ID,
		Method: tx.Request.Method,
		uri:    b.note(compileText(tx.Request.URI)),
	}
	for _, h := range tx.Request.Headers {
		if !h.Dyn {
			b.syms.Intern(h.Key)
			p.headerKeys = append(p.headerKeys, h.Key)
		}
	}
	p.reqKind = tx.Request.BodyKind
	switch p.reqKind {
	case "query":
		p.reqQuery = b.compileQuery(tx.Request.Body)
	case "json":
		p.reqJSON = b.compileJSON(tx.Request.Body)
	case "text":
		// Text bodies shaped like query strings get key/value matching
		// (trace.matchTextOrQuery), so compile both forms.
		p.reqQuery = b.compileQuery(tx.Request.Body)
		p.reqText = b.note(compileText(tx.Request.Body))
	}
	if tx.Response != nil {
		p.hasResp = true
		p.respKind = tx.Response.BodyKind
		switch p.respKind {
		case "json":
			if tx.Response.JSON != nil {
				p.respJSON = b.compileJSON(&siglang.JSON{Root: tx.Response.JSON})
			} else {
				p.respJSON = b.compileJSON(nil)
			}
		case "xml":
			p.respXML = b.compileXML(tx.Response.XML)
		}
	}
	return p
}

// note tracks the largest text program so Matcher scratch is sized once.
// JSON string-leaf programs are compiled inside compileJSON and noted
// lazily by Matcher.ensure instead.
func (b *Bundle) note(p *TextProg) *TextProg {
	if n := len(p.insts); n > b.maxPC {
		b.maxPC = n
	}
	return p
}

// NumSigs returns the number of compiled signatures.
func (b *Bundle) NumSigs() int { return len(b.progs) }

// TxID returns signature i's transaction ID.
func (b *Bundle) TxID(i int) int { return b.progs[i].TxID }

// Method returns signature i's HTTP method.
func (b *Bundle) Method(i int) string { return b.progs[i].Method }

// SpecLen returns the length of signature i's rendered URI regex — the
// specificity weight MatchReport breaks best-match ties with.
func (b *Bundle) SpecLen(i int) int { return b.progs[i].uri.spec }

// HeaderKeys returns signature i's constant request-header keys.
func (b *Bundle) HeaderKeys(i int) []string { return b.progs[i].headerKeys }

// Matcher executes a Bundle's programs. It owns the mutable scratch of
// the Pike VM (thread lists, generation-stamped visited marks), so each
// worker goroutine needs its own Matcher; the Bundle itself is shared.
type Matcher struct {
	b         *Bundle
	cur, next []uint32
	stack     []uint32
	mark      []uint32
	gen       uint32
}

// NewMatcher returns a matcher over the bundle with scratch sized for its
// largest program.
func (b *Bundle) NewMatcher() *Matcher {
	m := &Matcher{b: b}
	m.ensure(b.maxPC)
	return m
}

// ensure grows the visited-mark scratch to cover programs of n
// instructions.
func (m *Matcher) ensure(n int) {
	if n > len(m.mark) {
		m.mark = make([]uint32, n)
		m.gen = 0
	}
}

// bump starts a new visited generation, clearing marks only on wraparound.
func (m *Matcher) bump() {
	m.gen++
	if m.gen == 0 {
		for i := range m.mark {
			m.mark[i] = 0
		}
		m.gen = 1
	}
}

// MatchURI reports whether url matches signature i's URI template —
// the VM form of MatchReport's per-entry re.MatchString pre-filter.
func (m *Matcher) MatchURI(i int, url string) bool {
	return m.matchText(m.b.progs[i].uri, url)
}

// URIStats returns the Table 2 byte accounting of url against signature
// i's URI template (zero stats when it does not match), the VM form of
// siglang.MatchText on the URI.
func (m *Matcher) URIStats(i int, url string) siglang.ByteStats {
	_, st := m.matchTextStats(m.b.progs[i].uri, url)
	return st
}

// MatchRequestBody validates a request body against signature i, the VM
// form of trace's matchRequestBody: same body-kind dispatch, same
// unmodeled-body accounting.
func (m *Matcher) MatchRequestBody(i int, body string) (bool, siglang.ByteStats) {
	if body == "" {
		return true, siglang.ByteStats{}
	}
	p := &m.b.progs[i]
	switch p.reqKind {
	case "query":
		return m.b.matchQuery(p.reqQuery, body)
	case "json":
		ok, st, err := m.matchJSON(p.reqJSON, []byte(body))
		if err != nil {
			return false, siglang.ByteStats{}
		}
		return ok, st
	case "text":
		if siglang.QueryShapedBody(body) {
			return m.b.matchQuery(p.reqQuery, body)
		}
		return m.matchTextStats(p.reqText, body)
	default:
		// Signature has no body model: all bytes unaccounted.
		return true, siglang.ByteStats{None: len(body)}
	}
}

// MatchResponseBody validates a response body against signature i, the VM
// form of trace's matchResponseBody.
func (m *Matcher) MatchResponseBody(i int, respType, body string) (bool, siglang.ByteStats) {
	p := &m.b.progs[i]
	if !p.hasResp || body == "" {
		return true, siglang.ByteStats{}
	}
	switch {
	case p.respKind == "json" && respType == "json":
		ok, st, err := m.matchJSON(p.respJSON, []byte(body))
		if err != nil {
			return false, siglang.ByteStats{}
		}
		return ok, st
	case p.respKind == "xml" && respType == "xml":
		ok, st, err := m.b.matchXML(p.respXML, []byte(body))
		if err != nil {
			return false, siglang.ByteStats{}
		}
		return ok, st
	default:
		return true, siglang.ByteStats{None: len(body)}
	}
}

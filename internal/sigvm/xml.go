package sigvm

import (
	"strings"

	"extractocol/internal/intern"
	"extractocol/internal/siglang"
)

// XMLProg is a compiled XML-body matcher: the signature's element tree
// with the per-element derivations of matchElem precomputed — attribute
// and child-tag membership as interned bitsets (replacing the linear scans
// elemHasAttr/elemHasChild run per payload attribute and child).
type XMLProg struct {
	root *xmlElem // nil when the signature models no XML body
}

type xmlElem struct {
	tag      string
	wild     bool // tag "*": the parser's document node, children match anywhere
	attrs    []string
	attrSet  *intern.Bits // interned attribute keys, for the unknown-attr scan
	children []*xmlElem
	childSet *intern.Bits // interned child tags, for the unknown-child scan
	hasText  bool
}

func (b *Bundle) compileXML(root *siglang.Elem) *XMLProg {
	return &XMLProg{root: b.compileXMLElem(root)}
}

func (b *Bundle) compileXMLElem(e *siglang.Elem) *xmlElem {
	if e == nil {
		return nil
	}
	x := &xmlElem{
		tag:      e.Tag,
		wild:     e.Tag == "*",
		attrSet:  intern.NewBits(len(e.Attrs)),
		childSet: intern.NewBits(len(e.Children)),
		hasText:  e.Text != nil,
	}
	for _, a := range e.Attrs {
		x.attrs = append(x.attrs, a.Key)
		x.attrSet.Add(b.syms.Intern(a.Key))
	}
	for _, c := range e.Children {
		x.children = append(x.children, b.compileXMLElem(c))
		x.childSet.Add(b.syms.Intern(c.Tag))
	}
	return x
}

// matchXML is siglang.MatchXML on a compiled program: decode through the
// shared ParseXMLPayload, then walk the compiled elements with identical
// verdicts and byte accounting (including the "no XML modeled → whole
// payload unaccounted but valid" case, which still requires the payload to
// parse).
func (b *Bundle) matchXML(p *XMLProg, payload []byte) (bool, siglang.ByteStats, error) {
	root, err := siglang.ParseXMLPayload(payload)
	if err != nil {
		return false, siglang.ByteStats{}, err
	}
	var st siglang.ByteStats
	if p == nil || p.root == nil {
		st.None = len(payload)
		return true, st, nil
	}
	ok := b.matchXMLElem(p.root, root, &st)
	return ok, st, nil
}

// matchXMLElem mirrors siglang.matchElem exactly: same wildcard-root
// handling, same first-matching-child rule, same byte charges.
func (b *Bundle) matchXMLElem(sig *xmlElem, node *siglang.XMLNode, st *siglang.ByteStats) bool {
	if sig == nil || node == nil {
		return sig == nil
	}
	if sig.wild {
		// Wildcard root: every named child of the signature must occur
		// somewhere in the payload tree.
		ok := true
		for _, sc := range sig.children {
			found := findXMLNode(node, sc.tag)
			if found == nil {
				ok = false
				continue
			}
			if !b.matchXMLElem(sc, found, st) {
				ok = false
			}
		}
		return ok
	}
	if sig.tag != node.Tag {
		return false
	}
	st.Key += len(node.Tag)*2 + 5 // open+close tags
	ok := true
	for _, key := range sig.attrs {
		if v, present := node.Attrs[key]; present {
			st.Key += len(key) + 3
			st.Value += len(v)
		} else {
			ok = false
		}
	}
	for k, v := range node.Attrs {
		if !b.inSet(sig.attrSet, k) {
			st.None += len(k) + 3 + len(v)
		}
	}
	for _, sc := range sig.children {
		found := false
		for _, nc := range node.Children {
			if nc.Tag == sc.tag {
				// Only the first tag-matching payload child is considered,
				// as in the interpreter.
				if b.matchXMLElem(sc, nc, st) {
					found = true
				}
				break
			}
		}
		if !found {
			ok = false
		}
	}
	for _, nc := range node.Children {
		if !b.inSet(sig.childSet, nc.Tag) {
			st.None += siglang.XMLNodeSize(nc)
		}
	}
	if sig.hasText {
		st.Value += len(strings.TrimSpace(node.Text))
	} else {
		st.None += len(strings.TrimSpace(node.Text))
	}
	return ok
}

// findXMLNode is siglang.findNode on the shared decoded tree: preorder,
// first match wins.
func findXMLNode(n *siglang.XMLNode, tag string) *siglang.XMLNode {
	if n.Tag == tag {
		return n
	}
	for _, c := range n.Children {
		if f := findXMLNode(c, tag); f != nil {
			return f
		}
	}
	return nil
}

func (b *Bundle) inSet(set *intern.Bits, s string) bool {
	id, ok := b.syms.Lookup(s)
	return ok && set.Has(id)
}

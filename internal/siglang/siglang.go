// Package siglang implements the intermediate signature language of
// Extractocol (paper Fig. 4). Signatures conservatively describe the set of
// strings a program slice can produce (request URIs, query strings, text
// bodies) or the structure it consumes (JSON/XML response bodies).
//
// The grammar, as in the paper:
//
//	sig_pat ::= term | concat(term, term) | rep{term} | term ∨ term
//	term    ::= constant | struct_str | unknown
//	struct  ::= json(obj) | xml(obj)
//	obj     ::= (key, value)*            key ::= constant
//	value   ::= constant | obj | array
//
// Signatures render to regular expressions (repetition → Kleene star,
// disjunction → |, typed unknowns → [0-9]+ or .*), to a JSON-schema-like
// form for JSON trees, and to DTDs for XML trees.
package siglang

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// VType is the inferred value type of an unknown term, used to pick the
// wildcard class when rendering regular expressions.
type VType uint8

// Value types.
const (
	VAny VType = iota
	VString
	VInt
	VBool
)

// String returns a short name for the value type.
func (v VType) String() string {
	switch v {
	case VString:
		return "string"
	case VInt:
		return "int"
	case VBool:
		return "bool"
	default:
		return "any"
	}
}

// Sig is a node in the signature language.
type Sig interface {
	isSig()
	// write renders the canonical textual form into b.
	write(b *strings.Builder)
}

// Lit is a constant term (string or numeric literal).
type Lit struct {
	Val string
	Num bool // literal is numeric
}

// Unknown is a wildcard term carrying its inferred type, and optionally the
// name of the program object it came from (diagnostics only).
type Unknown struct {
	Type   VType
	Origin string
}

// Concat is ordered concatenation of sub-signatures.
type Concat struct{ Parts []Sig }

// Rep marks a part that may repeat zero or more times (loop-variant parts).
type Rep struct{ Body Sig }

// Or is a disjunction of alternatives from different control-flow paths.
type Or struct{ Alts []Sig }

// KV is one key/value pair of a structured object. Keys are constants per
// the grammar; a dynamically generated key is represented by Dyn=true.
type KV struct {
	Key string
	Dyn bool // key is dynamically generated (wildcard key)
	Val Sig
}

// Obj is an ordered sequence of key/value pairs.
type Obj struct{ Pairs []KV }

// Arr is an array value; Open marks arrays whose length is unbounded
// (loop-built arrays).
type Arr struct {
	Elems []Sig
	Open  bool
}

// JSON is a structured string carrying a JSON tree.
type JSON struct{ Root Sig }

// XML is a structured string carrying an XML element tree.
type XML struct{ Root *Elem }

// Elem is an XML element with attributes and children.
type Elem struct {
	Tag      string
	Attrs    []KV
	Children []*Elem
	Text     Sig // nil when no text content is modeled
}

func (*Lit) isSig()     {}
func (*Unknown) isSig() {}
func (*Concat) isSig()  {}
func (*Rep) isSig()     {}
func (*Or) isSig()      {}
func (*Obj) isSig()     {}
func (*Arr) isSig()     {}
func (*JSON) isSig()    {}
func (*XML) isSig()     {}

// Str returns a string literal signature.
func Str(s string) *Lit { return &Lit{Val: s} }

// Num returns a numeric literal signature.
func Num(s string) *Lit { return &Lit{Val: s, Num: true} }

// Any returns an untyped unknown.
func Any() *Unknown { return &Unknown{Type: VAny} }

// AnyString returns a string-typed unknown.
func AnyString() *Unknown { return &Unknown{Type: VString} }

// AnyInt returns an integer-typed unknown.
func AnyInt() *Unknown { return &Unknown{Type: VInt} }

// Cat concatenates signatures, flattening nested concatenations and merging
// adjacent literals.
func Cat(parts ...Sig) Sig {
	var flat []Sig
	for _, p := range parts {
		if p == nil {
			continue
		}
		if c, ok := p.(*Concat); ok {
			flat = append(flat, c.Parts...)
		} else {
			flat = append(flat, p)
		}
	}
	var out []Sig
	for _, p := range flat {
		if l, ok := p.(*Lit); ok && len(out) > 0 {
			if pl, ok2 := out[len(out)-1].(*Lit); ok2 && !pl.Num && !l.Num {
				out[len(out)-1] = Str(pl.Val + l.Val)
				continue
			}
		}
		out = append(out, p)
	}
	switch len(out) {
	case 0:
		return Str("")
	case 1:
		return out[0]
	}
	return &Concat{Parts: out}
}

// Disjoin merges alternatives into a disjunction, flattening nested Or
// nodes and deduplicating structurally equal alternatives. A nil
// alternative is ignored; if all are nil it returns nil.
func Disjoin(alts ...Sig) Sig {
	var flat []Sig
	for _, a := range alts {
		if a == nil {
			continue
		}
		if o, ok := a.(*Or); ok {
			flat = append(flat, o.Alts...)
		} else {
			flat = append(flat, a)
		}
	}
	var out []Sig
	for _, a := range flat {
		dup := false
		for _, b := range out {
			if Equal(a, b) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, a)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return &Or{Alts: out}
}

// Repeat wraps s in a repetition marker, collapsing nested repetition.
func Repeat(s Sig) Sig {
	if r, ok := s.(*Rep); ok {
		return r
	}
	return &Rep{Body: s}
}

// Equal reports structural equality of two signatures.
func Equal(a, b Sig) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return Canon(a) == Canon(b)
}

// Canon returns the canonical textual form, usable as a map key.
func Canon(s Sig) string {
	if s == nil {
		return "<nil>"
	}
	var b strings.Builder
	s.write(&b)
	return b.String()
}

func (l *Lit) write(b *strings.Builder) {
	if l.Num {
		fmt.Fprintf(b, "num(%s)", l.Val)
	} else {
		fmt.Fprintf(b, "%q", l.Val)
	}
}

func (u *Unknown) write(b *strings.Builder) {
	fmt.Fprintf(b, "?%s", u.Type)
}

func (c *Concat) write(b *strings.Builder) {
	b.WriteString("concat(")
	for i, p := range c.Parts {
		if i > 0 {
			b.WriteString(", ")
		}
		p.write(b)
	}
	b.WriteString(")")
}

func (r *Rep) write(b *strings.Builder) {
	b.WriteString("rep{")
	r.Body.write(b)
	b.WriteString("}")
}

func (o *Or) write(b *strings.Builder) {
	b.WriteString("(")
	for i, a := range o.Alts {
		if i > 0 {
			b.WriteString(" ∨ ")
		}
		a.write(b)
	}
	b.WriteString(")")
}

func (o *Obj) write(b *strings.Builder) {
	b.WriteString("obj{")
	for i, kv := range o.Pairs {
		if i > 0 {
			b.WriteString(", ")
		}
		if kv.Dyn {
			b.WriteString("?key")
		} else {
			fmt.Fprintf(b, "%q", kv.Key)
		}
		b.WriteString(": ")
		if kv.Val == nil {
			b.WriteString("?any")
		} else {
			kv.Val.write(b)
		}
	}
	b.WriteString("}")
}

func (a *Arr) write(b *strings.Builder) {
	b.WriteString("array[")
	for i, e := range a.Elems {
		if i > 0 {
			b.WriteString(", ")
		}
		e.write(b)
	}
	if a.Open {
		b.WriteString("...")
	}
	b.WriteString("]")
}

func (j *JSON) write(b *strings.Builder) {
	b.WriteString("json(")
	if j.Root == nil {
		b.WriteString("?any")
	} else {
		j.Root.write(b)
	}
	b.WriteString(")")
}

func (x *XML) write(b *strings.Builder) {
	b.WriteString("xml(")
	writeElem(b, x.Root)
	b.WriteString(")")
}

func writeElem(b *strings.Builder, e *Elem) {
	if e == nil {
		b.WriteString("?elem")
		return
	}
	fmt.Fprintf(b, "<%s", e.Tag)
	for _, a := range e.Attrs {
		fmt.Fprintf(b, " %s=", a.Key)
		if a.Val == nil {
			b.WriteString("?any")
		} else {
			a.Val.write(b)
		}
	}
	b.WriteString(">")
	for _, c := range e.Children {
		writeElem(b, c)
	}
	if e.Text != nil {
		e.Text.write(b)
	}
	fmt.Fprintf(b, "</%s>", e.Tag)
}

// String implements fmt.Stringer-style rendering for diagnostics.
func String(s Sig) string { return Canon(s) }

// ---- Object helpers ----

// Put sets key to val, replacing an existing pair with the same key; when
// the key already holds a different signature the values are disjoined,
// mirroring JSONObject.put on divergent paths.
func (o *Obj) Put(key string, val Sig) {
	for i := range o.Pairs {
		if !o.Pairs[i].Dyn && o.Pairs[i].Key == key {
			if !Equal(o.Pairs[i].Val, val) {
				o.Pairs[i].Val = Disjoin(o.Pairs[i].Val, val)
			}
			return
		}
	}
	o.Pairs = append(o.Pairs, KV{Key: key, Val: val})
}

// PutDyn appends a dynamically keyed pair.
func (o *Obj) PutDyn(val Sig) {
	o.Pairs = append(o.Pairs, KV{Dyn: true, Val: val})
}

// Get returns the value for key, or nil.
func (o *Obj) Get(key string) Sig {
	for _, kv := range o.Pairs {
		if !kv.Dyn && kv.Key == key {
			return kv.Val
		}
	}
	return nil
}

// Keys returns the constant keys in insertion order.
func (o *Obj) Keys() []string {
	var out []string
	for _, kv := range o.Pairs {
		if !kv.Dyn {
			out = append(out, kv.Key)
		}
	}
	return out
}

// MergeObj merges b into a (set union of keys; common keys disjoin values)
// and returns a. Used at control-flow confluence points.
func MergeObj(a, b *Obj) *Obj {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	for _, kv := range b.Pairs {
		if kv.Dyn {
			a.PutDyn(kv.Val)
			continue
		}
		a.Put(kv.Key, kv.Val)
	}
	return a
}

// Merge combines two signatures for the same variable arriving from
// different control-flow paths (the confluence rule of §3.2): equal
// signatures collapse, JSON/object signatures merge structurally, and
// anything else becomes a disjunction.
func Merge(a, b Sig) Sig {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if Equal(a, b) {
		return a
	}
	if ja, ok := a.(*JSON); ok {
		if jb, ok2 := b.(*JSON); ok2 {
			oa, aok := ja.Root.(*Obj)
			ob, bok := jb.Root.(*Obj)
			if aok && bok {
				return &JSON{Root: MergeObj(oa, ob)}
			}
		}
	}
	if oa, ok := a.(*Obj); ok {
		if ob, ok2 := b.(*Obj); ok2 {
			return MergeObj(oa, ob)
		}
	}
	return Disjoin(a, b)
}

// ---- Keyword extraction ----

// Keywords returns the constant keywords carried by a signature: JSON keys,
// XML tags and attribute names, and query-string keys in literal text
// (substrings of the form "key=" or "&key="). The paper counts these to
// quantify signature quality (Fig. 7).
func Keywords(s Sig) []string {
	set := map[string]bool{}
	collectKeywords(s, set)
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func collectKeywords(s Sig, set map[string]bool) {
	switch v := s.(type) {
	case nil:
	case *Lit:
		for _, k := range queryKeys(v.Val) {
			set[k] = true
		}
	case *Unknown:
	case *Concat:
		for _, p := range v.Parts {
			collectKeywords(p, set)
		}
	case *Rep:
		collectKeywords(v.Body, set)
	case *Or:
		for _, a := range v.Alts {
			collectKeywords(a, set)
		}
	case *Obj:
		for _, kv := range v.Pairs {
			if !kv.Dyn {
				set[kv.Key] = true
			}
			collectKeywords(kv.Val, set)
		}
	case *Arr:
		for _, e := range v.Elems {
			collectKeywords(e, set)
		}
	case *JSON:
		collectKeywords(v.Root, set)
	case *XML:
		collectElemKeywords(v.Root, set)
	}
}

func collectElemKeywords(e *Elem, set map[string]bool) {
	if e == nil {
		return
	}
	set[e.Tag] = true
	for _, a := range e.Attrs {
		set[a.Key] = true
		collectKeywords(a.Val, set)
	}
	for _, c := range e.Children {
		collectElemKeywords(c, set)
	}
	collectKeywords(e.Text, set)
}

// queryKeys extracts query-string style keys ("a=1&b=2" → a, b) from a
// literal fragment. A fragment like "count=" contributes "count".
func queryKeys(s string) []string {
	var out []string
	i := 0
	for i < len(s) {
		j := strings.IndexByte(s[i:], '=')
		if j < 0 {
			break
		}
		j += i
		// Walk back to the start of the key.
		k := j
		for k > 0 && isKeyByte(s[k-1]) {
			k--
		}
		if k < j {
			out = append(out, s[k:j])
		}
		i = j + 1
	}
	return out
}

func isKeyByte(b byte) bool {
	return b == '_' || b == '-' || b == '.' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

// ---- Regex rendering ----

// Regex renders the signature as an anchored regular expression string.
func Regex(s Sig) string {
	var b strings.Builder
	b.WriteString("^")
	writeRegex(s, &b)
	b.WriteString("$")
	return b.String()
}

// Compile renders and compiles the signature's regular expression.
func Compile(s Sig) (*regexp.Regexp, error) {
	return regexp.Compile(Regex(s))
}

// RegexBody renders the un-anchored regular expression fragment.
func RegexBody(s Sig) string {
	var b strings.Builder
	writeRegex(s, &b)
	return b.String()
}

func writeRegex(s Sig, b *strings.Builder) {
	switch v := s.(type) {
	case nil:
		b.WriteString(".*")
	case *Lit:
		b.WriteString(regexp.QuoteMeta(v.Val))
	case *Unknown:
		switch v.Type {
		case VInt:
			b.WriteString("[0-9]+")
		case VBool:
			b.WriteString("(?:true|false)")
		default:
			b.WriteString(".*")
		}
	case *Concat:
		for _, p := range v.Parts {
			writeRegex(p, b)
		}
	case *Rep:
		b.WriteString("(?:")
		writeRegex(v.Body, b)
		b.WriteString(")*")
	case *Or:
		b.WriteString("(?:")
		for i, a := range v.Alts {
			if i > 0 {
				b.WriteString("|")
			}
			writeRegex(a, b)
		}
		b.WriteString(")")
	case *JSON, *Obj, *Arr, *XML:
		// Structured strings embedded in text positions match loosely;
		// structural matching uses MatchJSON/MatchXML instead.
		b.WriteString(".*")
	}
}

// Clone returns a structurally identical deep copy of s, sharing no mutable
// state with the original. Compiled matchers (internal/sigvm) clone
// signature subtrees before confluence merging so that compilation never
// mutates the report's trees (Merge appends to Obj pair slices in place).
// Clone copies the tree directly rather than round-tripping through
// Parse(Canon(s)), which would not be faithful (e.g. a nil Obj value
// renders as "?any" and parses back as *Unknown).
func Clone(s Sig) Sig {
	switch v := s.(type) {
	case nil:
		return nil
	case *Lit:
		c := *v
		return &c
	case *Unknown:
		c := *v
		return &c
	case *Concat:
		c := &Concat{Parts: make([]Sig, len(v.Parts))}
		for i, p := range v.Parts {
			c.Parts[i] = Clone(p)
		}
		return c
	case *Rep:
		return &Rep{Body: Clone(v.Body)}
	case *Or:
		c := &Or{Alts: make([]Sig, len(v.Alts))}
		for i, a := range v.Alts {
			c.Alts[i] = Clone(a)
		}
		return c
	case *Obj:
		c := &Obj{Pairs: make([]KV, len(v.Pairs))}
		for i, kv := range v.Pairs {
			c.Pairs[i] = KV{Key: kv.Key, Dyn: kv.Dyn, Val: Clone(kv.Val)}
		}
		return c
	case *Arr:
		c := &Arr{Elems: make([]Sig, len(v.Elems)), Open: v.Open}
		for i, e := range v.Elems {
			c.Elems[i] = Clone(e)
		}
		return c
	case *JSON:
		return &JSON{Root: Clone(v.Root)}
	case *XML:
		return &XML{Root: CloneElem(v.Root)}
	default:
		return s
	}
}

// CloneElem deep-copies an XML element tree (nil-safe).
func CloneElem(e *Elem) *Elem {
	if e == nil {
		return nil
	}
	c := &Elem{Tag: e.Tag, Text: Clone(e.Text)}
	if len(e.Attrs) > 0 {
		c.Attrs = make([]KV, len(e.Attrs))
		for i, a := range e.Attrs {
			c.Attrs[i] = KV{Key: a.Key, Dyn: a.Dyn, Val: Clone(a.Val)}
		}
	}
	if len(e.Children) > 0 {
		c.Children = make([]*Elem, len(e.Children))
		for i, ch := range e.Children {
			c.Children[i] = CloneElem(ch)
		}
	}
	return c
}

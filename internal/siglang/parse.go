package siglang

import (
	"fmt"
	"strconv"
	"strings"
)

// maxParseDepth bounds signature nesting so hostile inputs cannot overflow
// the stack (both the parser and the write renderer recurse per level).
const maxParseDepth = 200

// Parse parses the canonical textual form produced by Canon back into a
// signature tree. It is the inverse of Canon up to normalization: for any
// accepted input s, Canon(Parse(s)) is a fixed point of Parse∘Canon. A nil
// signature is written as "<nil>" and parses back to nil.
func Parse(s string) (Sig, error) {
	if s == "<nil>" {
		return nil, nil
	}
	p := &parser{s: s}
	sig := p.sig()
	if p.err == nil && p.off != len(p.s) {
		p.failf("trailing data at offset %d", p.off)
	}
	if p.err != nil {
		return nil, fmt.Errorf("siglang: %w", p.err)
	}
	return sig, nil
}

type parser struct {
	s     string
	off   int
	depth int
	err   error
}

func (p *parser) failf(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf(format, args...)
	}
}

func (p *parser) rest() string { return p.s[p.off:] }

// eat consumes tok if it is next and reports whether it did.
func (p *parser) eat(tok string) bool {
	if p.err == nil && strings.HasPrefix(p.rest(), tok) {
		p.off += len(tok)
		return true
	}
	return false
}

// expect consumes tok or fails the parse.
func (p *parser) expect(tok string) {
	if !p.eat(tok) && p.err == nil {
		p.failf("expected %q at offset %d", tok, p.off)
	}
}

func (p *parser) sig() Sig {
	if p.err != nil {
		return nil
	}
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxParseDepth {
		p.failf("signature nested deeper than %d levels", maxParseDepth)
		return nil
	}

	switch {
	case strings.HasPrefix(p.rest(), `"`):
		return &Lit{Val: p.quoted()}
	case p.eat("num("):
		// The numeric payload is written raw; everything up to the
		// closing paren is the literal text.
		end := strings.IndexByte(p.rest(), ')')
		if end < 0 {
			p.failf("unterminated num( at offset %d", p.off)
			return nil
		}
		val := p.rest()[:end]
		p.off += end + 1
		return &Lit{Val: val, Num: true}
	case p.eat("?any"):
		return &Unknown{Type: VAny}
	case p.eat("?string"):
		return &Unknown{Type: VString}
	case p.eat("?int"):
		return &Unknown{Type: VInt}
	case p.eat("?bool"):
		return &Unknown{Type: VBool}
	case p.eat("concat("):
		c := &Concat{}
		if !p.eat(")") {
			c.Parts = append(c.Parts, p.sig())
			for p.eat(", ") {
				c.Parts = append(c.Parts, p.sig())
			}
			p.expect(")")
		}
		return c
	case p.eat("rep{"):
		r := &Rep{Body: p.sig()}
		p.expect("}")
		return r
	case p.eat("("):
		o := &Or{Alts: []Sig{p.sig()}}
		for p.eat(" ∨ ") {
			o.Alts = append(o.Alts, p.sig())
		}
		p.expect(")")
		return o
	case p.eat("obj{"):
		o := &Obj{}
		if !p.eat("}") {
			o.Pairs = append(o.Pairs, p.pair())
			for p.eat(", ") {
				o.Pairs = append(o.Pairs, p.pair())
			}
			p.expect("}")
		}
		return o
	case p.eat("array["):
		a := &Arr{}
		if !strings.HasPrefix(p.rest(), "...") && !strings.HasPrefix(p.rest(), "]") {
			a.Elems = append(a.Elems, p.sig())
			for p.eat(", ") {
				a.Elems = append(a.Elems, p.sig())
			}
		}
		a.Open = p.eat("...")
		p.expect("]")
		return a
	case p.eat("json("):
		j := &JSON{Root: p.sig()}
		p.expect(")")
		return j
	case p.eat("xml("):
		x := &XML{Root: p.elem()}
		p.expect(")")
		return x
	}
	if p.err == nil {
		p.failf("unrecognized signature at offset %d", p.off)
	}
	return nil
}

// pair parses one obj{} entry: a constant or dynamic key, then ": value".
func (p *parser) pair() KV {
	var kv KV
	if p.eat("?key") {
		kv.Dyn = true
	} else {
		kv.Key = p.quoted()
	}
	p.expect(": ")
	kv.Val = p.sig()
	return kv
}

// elem parses an XML element tree; "?elem" denotes a nil element.
func (p *parser) elem() *Elem {
	if p.err != nil {
		return nil
	}
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxParseDepth {
		p.failf("signature nested deeper than %d levels", maxParseDepth)
		return nil
	}
	if p.eat("?elem") {
		return nil
	}
	p.expect("<")
	e := &Elem{Tag: p.name()}
	for p.eat(" ") {
		key := p.name()
		p.expect("=")
		e.Attrs = append(e.Attrs, KV{Key: key, Val: p.sig()})
	}
	p.expect(">")
	for p.err == nil {
		rest := p.rest()
		if strings.HasPrefix(rest, "?elem") {
			p.off += len("?elem")
			e.Children = append(e.Children, nil)
			continue
		}
		if strings.HasPrefix(rest, "<") && !strings.HasPrefix(rest, "</") {
			e.Children = append(e.Children, p.elem())
			continue
		}
		break
	}
	if !strings.HasPrefix(p.rest(), "</") && p.err == nil {
		e.Text = p.sig()
	}
	p.expect("</")
	if ct := p.name(); ct != e.Tag && p.err == nil {
		p.failf("mismatched close tag %q for <%s>", ct, e.Tag)
	}
	p.expect(">")
	return e
}

// quoted parses a Go-quoted string literal (the %q rendering of Lit values
// and object keys).
func (p *parser) quoted() string {
	if p.err != nil {
		return ""
	}
	q, err := strconv.QuotedPrefix(p.rest())
	if err != nil {
		p.failf("bad quoted string at offset %d: %v", p.off, err)
		return ""
	}
	s, err := strconv.Unquote(q)
	if err != nil {
		p.failf("bad quoted string at offset %d: %v", p.off, err)
		return ""
	}
	p.off += len(q)
	return s
}

// name parses an XML tag or attribute name. The accepted charset is
// restricted so that names cannot swallow the surrounding markup.
func (p *parser) name() string {
	if p.err != nil {
		return ""
	}
	i := p.off
	for i < len(p.s) && isNameByte(p.s[i]) {
		i++
	}
	if i == p.off {
		p.failf("expected name at offset %d", p.off)
		return ""
	}
	s := p.s[p.off:i]
	p.off = i
	return s
}

func isNameByte(b byte) bool {
	return b == '_' || b == '-' || b == '.' || b == ':' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

package siglang

import (
	"encoding/json"
	"math"
	"testing"
)

// TestJSONSizeMatchesEncoder pins the no-marshal size computation against
// encoding/json over the encoder's edge cases: every short and \u00XX
// string escape, HTML escaping, invalid UTF-8, the U+2028/U+2029 line
// separators, both float format regimes with the exponent trim, and
// container shapes (including nil maps and slices, which encode as null).
func TestJSONSizeMatchesEncoder(t *testing.T) {
	values := []any{
		nil, true, false,
		"", "plain", "with \"quotes\" and \\backslash",
		"ctl:\b\f\n\r\t\x00\x01\x1f", "html: <a href=\"x\">&amp;</a>",
		"bad utf8: \xff\xfe", "repl: �", "seps: \u2028\u2029",
		"unicode: héllo wörld 日本語", "\x7f del",
		0.0, 1.0, -1.5, 3.14159, 1e20, 1e21, 1e-6, 1e-7, 2.5e-9,
		-1e21, -1e-7, 123456789.123456,
		map[string]any{}, map[string]any(nil), []any{}, []any(nil),
		map[string]any{"k": "v", "n": 1.0, "a": []any{true, nil, "x"}},
		[]any{map[string]any{"deep": []any{1e-8, "\u2028"}}},
	}
	for _, v := range values {
		enc, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %#v: %v", v, err)
		}
		if got := JSONSize(v); got != len(enc) {
			t.Errorf("JSONSize(%#v) = %d, encoder produced %d bytes: %s",
				v, got, len(enc), enc)
		}
	}
}

// TestJSONSizeNonFinite pins the historical behavior: values the encoder
// rejects size to zero.
func TestJSONSizeNonFinite(t *testing.T) {
	for _, v := range []any{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := JSONSize(v); got != 0 {
			t.Errorf("JSONSize(%v) = %d, want 0", v, got)
		}
	}
}

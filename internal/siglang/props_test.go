package siglang

import (
	"testing"
	"testing/quick"
)

// Property: Merge is idempotent under canonical form.
func TestMergeIdempotent(t *testing.T) {
	f := func(lits []string, useInt bool) bool {
		parts := make([]Sig, 0, len(lits)+1)
		for _, l := range lits {
			parts = append(parts, Str(l))
		}
		if useInt {
			parts = append(parts, AnyInt())
		} else {
			parts = append(parts, AnyString())
		}
		s := Cat(parts...)
		return Canon(Merge(s, s)) == Canon(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatchQuery accounts every byte of the query exactly once.
func TestMatchQueryAccountsAllBytes(t *testing.T) {
	f := func(keys []string, vals []string) bool {
		// Build a query from sanitized keys and values.
		var sigParts []Sig
		query := ""
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		if n == 0 {
			return true
		}
		for i := 0; i < n; i++ {
			k := sanitizeKey(keys[i])
			v := sanitizeVal(vals[i])
			if k == "" {
				continue
			}
			if query != "" {
				query += "&"
				sigParts = append(sigParts, Str("&"))
			}
			query += k + "=" + v
			sigParts = append(sigParts, Str(k+"="), AnyString())
		}
		if query == "" {
			return true
		}
		_, st := MatchQuery(Cat(sigParts...), query)
		return st.Total() == len(query)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func sanitizeKey(s string) string {
	out := ""
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			out += string(r)
		}
	}
	if len(out) > 8 {
		out = out[:8]
	}
	return out
}

func sanitizeVal(s string) string {
	out := ""
	for _, r := range s {
		if r != '&' && r != '=' && r < 128 {
			out += string(r)
		}
	}
	return out
}

// Property: Disjoin produces a regex accepting everything its alternatives
// accept.
func TestDisjoinAcceptsAllAlternatives(t *testing.T) {
	f := func(a, b string) bool {
		s := Disjoin(Str(a), Str(b))
		re, err := Compile(s)
		if err != nil {
			return false
		}
		return re.MatchString(a) && re.MatchString(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVTypeStrings(t *testing.T) {
	cases := map[VType]string{VAny: "any", VString: "string", VInt: "int", VBool: "bool"}
	for v, want := range cases {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
}

func TestRepeatCollapsesNested(t *testing.T) {
	r := Repeat(Repeat(Str("x")))
	if _, ok := r.(*Rep); !ok {
		t.Fatalf("Repeat = %T", r)
	}
	if Canon(r) != Canon(Repeat(Str("x"))) {
		t.Fatal("nested repeat not collapsed")
	}
}

func TestObjPutDynAndKeys(t *testing.T) {
	o := &Obj{}
	o.Put("a", AnyInt())
	o.PutDyn(AnyString())
	o.Put("b", AnyString())
	keys := o.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
	if o.Get("missing") != nil {
		t.Fatal("Get(missing) != nil")
	}
}

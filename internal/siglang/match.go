package siglang

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode/utf8"
)

// ByteStats accounts matched bytes of a traffic payload against a
// signature, the measurement behind Table 2 of the paper:
//
//	Key   (Rk): bytes matched by constant keywords of the signature
//	Value (Rv): bytes of values whose key the signature identified
//	None  (Rn): bytes in regions where both key and value are wildcards
type ByteStats struct {
	Key, Value, None int
}

// Total returns the number of accounted bytes.
func (s ByteStats) Total() int { return s.Key + s.Value + s.None }

// Add accumulates o into s.
func (s *ByteStats) Add(o ByteStats) {
	s.Key += o.Key
	s.Value += o.Value
	s.None += o.None
}

// Fractions returns (Rk, Rv, Rn) as fractions of the total, or zeros for an
// empty payload.
func (s ByteStats) Fractions() (rk, rv, rn float64) {
	t := float64(s.Total())
	if t == 0 {
		return 0, 0, 0
	}
	return float64(s.Key) / t, float64(s.Value) / t, float64(s.None) / t
}

// MatchText reports whether the text payload matches the signature's
// regular expression, and how many payload bytes fall on literal versus
// wildcard parts. The literal accounting uses the signature's constant
// fragments greedily in order, which is exact for the anchored signatures
// the builder produces.
func MatchText(s Sig, payload string) (bool, ByteStats) {
	re, err := Compile(s)
	if err != nil || !re.MatchString(payload) {
		return false, ByteStats{}
	}
	return true, AccountText(LiteralFragments(s), payload)
}

// AccountText runs the greedy literal-fragment byte accounting of MatchText
// over an already-matched payload: each fragment's bytes count as Key, the
// wildcard-covered spans between them as Value. Exported so compiled
// matchers (internal/sigvm), which precompute the fragment list, account
// identically.
func AccountText(lits []string, payload string) ByteStats {
	var st ByteStats
	rest := payload
	for _, lit := range lits {
		if lit == "" {
			continue
		}
		i := strings.Index(rest, lit)
		if i < 0 {
			break
		}
		st.Value += i // wildcard-covered span before the literal
		st.Key += len(lit)
		rest = rest[i+len(lit):]
	}
	st.Value += len(rest)
	return st
}

// LiteralFragments returns the unconditional constant fragments of a text
// signature in order: literals under concatenation, skipping repetition
// bodies (may appear zero times) and disjunction alternatives (ambiguous).
// This is the fragment sequence MatchText accounts greedily; compiled
// matchers (internal/sigvm) precompute it once per signature.
func LiteralFragments(s Sig) []string {
	var out []string
	var walk func(Sig)
	walk = func(s Sig) {
		switch v := s.(type) {
		case *Lit:
			out = append(out, v.Val)
		case *Concat:
			for _, p := range v.Parts {
				walk(p)
			}
		case *Rep:
			// repetition contents may appear 0 times; skip
		case *Or:
			// alternatives are ambiguous; skip
		}
	}
	walk(s)
	return out
}

// MatchQuery matches a query string or form body ("k=v&k2=v2") against a
// signature, returning whether every pair with a signature-known key
// matched and byte statistics. Keys the signature knows contribute their
// bytes to Key and their values to Value; unknown pairs land in None.
func MatchQuery(s Sig, query string) (bool, ByteStats) {
	known := map[string]bool{}
	for _, k := range Keywords(s) {
		known[k] = true
	}
	var st ByteStats
	if query == "" {
		return true, st
	}
	pairs := strings.Split(query, "&")
	for i, p := range pairs {
		sep := 0
		if i > 0 {
			sep = 1 // the '&'
		}
		k, v, found := strings.Cut(p, "=")
		if !found {
			st.None += len(p) + sep
			continue
		}
		if known[k] {
			st.Key += len(k) + 1 + sep // key, '=', '&'
			st.Value += len(v)
		} else {
			st.None += len(p) + sep
		}
	}
	return st.None == 0 || len(known) > 0, st
}

// MatchJSON matches a JSON payload against a JSON/Obj signature.
// ok is true when every constant key in the signature appears in the
// payload (the signature is a valid description of what the app reads or
// writes). Bytes of payload keys known to the signature count as Key,
// their values as Value, and subtrees the signature does not describe as
// None.
func MatchJSON(s Sig, payload []byte) (bool, ByteStats, error) {
	v, err := DecodeJSONPayload(payload)
	if err != nil {
		return false, ByteStats{}, err
	}
	root := s
	if j, isJSON := s.(*JSON); isJSON {
		root = j.Root
	}
	var st ByteStats
	ok := matchJSONValue(root, v, &st)
	return ok, st, nil
}

// DecodeJSONPayload unmarshals a payload for structural matching; both the
// interpretive matcher above and the compiled matcher (internal/sigvm)
// decode through it so their error behavior is identical.
func DecodeJSONPayload(payload []byte) (any, error) {
	var v any
	if err := json.Unmarshal(payload, &v); err != nil {
		return nil, fmt.Errorf("siglang: payload is not JSON: %w", err)
	}
	return v, nil
}

func matchJSONValue(s Sig, v any, st *ByteStats) bool {
	switch sv := s.(type) {
	case nil:
		st.None += JSONSize(v)
		return true
	case *Obj:
		if sv == nil {
			sv = &Obj{} // typed-nil signature: no keys known
		}
		m, isMap := v.(map[string]any)
		if !isMap {
			st.None += JSONSize(v)
			return false
		}
		ok := true
		// Every sig key must be present.
		for _, kv := range sv.Pairs {
			if kv.Dyn {
				continue
			}
			if _, present := m[kv.Key]; !present {
				ok = false
			}
		}
		var dynVal Sig
		hasDyn := false
		for _, kv := range sv.Pairs {
			if kv.Dyn {
				hasDyn, dynVal = true, kv.Val
			}
		}
		for k, val := range m {
			if sigVal := sv.Get(k); sigVal != nil || containsKey(sv, k) {
				st.Key += len(k) + 3 // quotes + colon
				if !matchLeafOrRecurse(sigVal, val, st) {
					ok = false
				}
			} else if hasDyn {
				// Dynamically generated keys: value structure may still be known.
				st.Value += len(k) + 3
				if !matchLeafOrRecurse(dynVal, val, st) {
					ok = false
				}
			} else {
				st.None += len(k) + 3 + JSONSize(val)
			}
		}
		return ok
	case *Arr:
		arr, isArr := v.([]any)
		if !isArr {
			st.None += JSONSize(v)
			return false
		}
		var item Sig
		for _, e := range sv.Elems {
			item = Merge(item, e)
		}
		ok := true
		for _, el := range arr {
			if !matchLeafOrRecurse(item, el, st) {
				ok = false
			}
		}
		return ok
	case *JSON:
		return matchJSONValue(sv.Root, v, st)
	case *Or:
		// Accept if any alternative accepts; account bytes per best effort
		// using the first matching alternative.
		for _, alt := range sv.Alts {
			var tmp ByteStats
			if matchJSONValue(alt, v, &tmp) {
				st.Add(tmp)
				return true
			}
		}
		st.None += JSONSize(v)
		return false
	case *Lit:
		st.Value += JSONSize(v)
		return LiteralMatches(sv, v)
	case *Unknown:
		st.Value += JSONSize(v)
		return true
	default: // Concat/Rep describing a string-typed leaf
		st.Value += JSONSize(v)
		str, isStr := v.(string)
		if !isStr {
			return true
		}
		re, err := Compile(s)
		return err == nil && re.MatchString(str)
	}
}

func containsKey(o *Obj, k string) bool {
	for _, kv := range o.Pairs {
		if !kv.Dyn && kv.Key == k {
			return true
		}
	}
	return false
}

func matchLeafOrRecurse(sigVal Sig, val any, st *ByteStats) bool {
	if sigVal == nil {
		st.Value += JSONSize(val)
		return true
	}
	return matchJSONValue(sigVal, val, st)
}

// LiteralMatches reports whether a decoded JSON leaf equals a literal
// signature term: strings compare directly, numbers and booleans through
// their canonical %v rendering. Shared by the interpretive and compiled
// matchers so verdicts cannot drift.
func LiteralMatches(l *Lit, v any) bool {
	switch tv := v.(type) {
	case string:
		return tv == l.Val
	case float64:
		return l.Num && fmt.Sprintf("%v", tv) == l.Val
	case bool:
		return fmt.Sprintf("%v", tv) == l.Val
	default:
		return false
	}
}

// JSONSize returns the serialized size of a decoded JSON value — the byte
// count the Table 2 accounting charges for a subtree. Exported so compiled
// matchers account identically.
func JSONSize(v any) int {
	switch t := v.(type) {
	case nil:
		return len("null")
	case bool:
		if t {
			return len("true")
		}
		return len("false")
	case string:
		return quotedJSONLen(t)
	case float64:
		return jsonFloatLen(t)
	case map[string]any:
		if t == nil {
			return len("null")
		}
		// '{' plus, per pair, its bytes and a ',' (the last pair's comma
		// slot is the closing '}'); key order never affects the length.
		n := 1 + len(t)
		if len(t) == 0 {
			n = 2
		}
		for k, e := range t {
			n += quotedJSONLen(k) + 1 + JSONSize(e)
		}
		return n
	case []any:
		if t == nil {
			return len("null")
		}
		n := 1 + len(t)
		if len(t) == 0 {
			n = 2
		}
		for _, e := range t {
			n += JSONSize(e)
		}
		return n
	default:
		// Not a shape DecodeJSONPayload produces; defer to the encoder.
		b, err := json.Marshal(v)
		if err != nil {
			return 0
		}
		return len(b)
	}
}

// quotedJSONLen is the marshalled length of a string, replicating
// encoding/json's appendString with its default HTML escaping: short
// escapes for \", \\, \b, \f, \n, \r, \t; \u00XX for other control bytes
// and for <, >, &; the six-byte \ufffd escape for invalid UTF-8 bytes;
// \u2028 and \u2029 escaped; every other rune passes through at its
// encoded width.
func quotedJSONLen(s string) int {
	n := 2
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				n++
			} else {
				switch b {
				case '"', '\\', '\b', '\f', '\n', '\r', '\t':
					n += 2
				default:
					n += 6
				}
			}
			i++
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		switch {
		case c == utf8.RuneError && size == 1:
			n += len(`\ufffd`) // the six-byte escape sequence
		case c == '\u2028' || c == '\u2029':
			n += len(`\u2028`)
		default:
			n += size
		}
		i += size
	}
	return n
}

// jsonFloatLen is the marshalled length of a float64, replicating
// encoding/json's floatEncoder: %f inside [1e-6, 1e21), %e outside with
// the single-zero exponent trimmed ("e-09" to "e-9"); non-finite values
// fail to marshal and keep their historical size of zero.
func jsonFloatLen(f float64) int {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return 0
	}
	var buf [32]byte
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b := strconv.AppendFloat(buf[:0], f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b = b[:n-1]
		}
	}
	return len(b)
}

// MatchXML matches an XML payload against an XML signature: every tag and
// attribute named by the signature must occur in the payload. Byte
// accounting mirrors MatchJSON at element granularity.
func MatchXML(s *XML, payload []byte) (bool, ByteStats, error) {
	root, err := ParseXMLPayload(payload)
	if err != nil {
		return false, ByteStats{}, err
	}
	var st ByteStats
	if s == nil || s.Root == nil {
		st.None = len(payload)
		return true, st, nil
	}
	ok := matchElem(s.Root, root, &st)
	return ok, st, nil
}

// XMLNode is the decoded form of an XML payload: one node per element,
// attributes flattened to a map, character data concatenated. Exported so
// compiled matchers (internal/sigvm) walk the same decoded tree the
// interpretive matcher does.
type XMLNode struct {
	Tag      string
	Attrs    map[string]string
	Children []*XMLNode
	Text     string
}

// ParseXMLPayload decodes an XML payload into an XMLNode tree; both
// matcher backends decode through it so error behavior and tree shape are
// identical.
func ParseXMLPayload(data []byte) (*XMLNode, error) {
	dec := xml.NewDecoder(strings.NewReader(string(data)))
	var stack []*XMLNode
	var root *XMLNode
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &XMLNode{Tag: t.Name.Local, Attrs: map[string]string{}}
			for _, a := range t.Attr {
				n.Attrs[a.Name.Local] = a.Value
			}
			if len(stack) > 0 {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, n)
			} else {
				root = n
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].Text += string(t)
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("siglang: payload is not XML")
	}
	return root, nil
}

func matchElem(sig *Elem, node *XMLNode, st *ByteStats) bool {
	if sig == nil || node == nil {
		return sig == nil
	}
	if sig.Tag == "*" {
		// Wildcard root (the parser's document node): every named child of
		// the signature must occur somewhere in the payload tree.
		ok := true
		for _, sc := range sig.Children {
			found := findNode(node, sc.Tag)
			if found == nil {
				ok = false
				continue
			}
			if !matchElem(sc, found, st) {
				ok = false
			}
		}
		return ok
	}
	if sig.Tag != node.Tag {
		return false
	}
	st.Key += len(node.Tag)*2 + 5 // open+close tags
	ok := true
	for _, a := range sig.Attrs {
		if v, present := node.Attrs[a.Key]; present {
			st.Key += len(a.Key) + 3
			st.Value += len(v)
		} else {
			ok = false
		}
	}
	for k, v := range node.Attrs {
		if !elemHasAttr(sig, k) {
			st.None += len(k) + 3 + len(v)
		}
	}
	for _, sc := range sig.Children {
		found := false
		for _, nc := range node.Children {
			if nc.Tag == sc.Tag {
				if matchElem(sc, nc, st) {
					found = true
				}
				break
			}
		}
		if !found {
			ok = false
		}
	}
	for _, nc := range node.Children {
		if !elemHasChild(sig, nc.Tag) {
			st.None += XMLNodeSize(nc)
		}
	}
	if sig.Text != nil {
		st.Value += len(strings.TrimSpace(node.Text))
	} else {
		st.None += len(strings.TrimSpace(node.Text))
	}
	return ok
}

func findNode(n *XMLNode, tag string) *XMLNode {
	if n.Tag == tag {
		return n
	}
	for _, c := range n.Children {
		if f := findNode(c, tag); f != nil {
			return f
		}
	}
	return nil
}

func elemHasAttr(e *Elem, k string) bool {
	for _, a := range e.Attrs {
		if a.Key == k {
			return true
		}
	}
	return false
}

func elemHasChild(e *Elem, tag string) bool {
	for _, c := range e.Children {
		if c.Tag == tag {
			return true
		}
	}
	return false
}

// XMLNodeSize returns the byte count the Table 2 accounting charges for an
// undescribed XML subtree. Exported so compiled matchers account
// identically.
func XMLNodeSize(n *XMLNode) int {
	size := len(n.Tag)*2 + 5 + len(strings.TrimSpace(n.Text))
	for k, v := range n.Attrs {
		size += len(k) + 3 + len(v)
	}
	for _, c := range n.Children {
		size += XMLNodeSize(c)
	}
	return size
}

// QueryShapedBody reports whether a text body should be matched as a
// query string ("k=v&..." accounting) rather than as free text. Both the
// interpretive matcher (trace.matchTextOrQuery) and the compiled matcher
// (internal/sigvm) dispatch through this predicate so text-body verdicts
// cannot drift.
func QueryShapedBody(body string) bool {
	return strings.Contains(body, "=") && !strings.HasPrefix(strings.TrimSpace(body), "{")
}

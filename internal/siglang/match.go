package siglang

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"strings"
)

// ByteStats accounts matched bytes of a traffic payload against a
// signature, the measurement behind Table 2 of the paper:
//
//	Key   (Rk): bytes matched by constant keywords of the signature
//	Value (Rv): bytes of values whose key the signature identified
//	None  (Rn): bytes in regions where both key and value are wildcards
type ByteStats struct {
	Key, Value, None int
}

// Total returns the number of accounted bytes.
func (s ByteStats) Total() int { return s.Key + s.Value + s.None }

// Add accumulates o into s.
func (s *ByteStats) Add(o ByteStats) {
	s.Key += o.Key
	s.Value += o.Value
	s.None += o.None
}

// Fractions returns (Rk, Rv, Rn) as fractions of the total, or zeros for an
// empty payload.
func (s ByteStats) Fractions() (rk, rv, rn float64) {
	t := float64(s.Total())
	if t == 0 {
		return 0, 0, 0
	}
	return float64(s.Key) / t, float64(s.Value) / t, float64(s.None) / t
}

// MatchText reports whether the text payload matches the signature's
// regular expression, and how many payload bytes fall on literal versus
// wildcard parts. The literal accounting uses the signature's constant
// fragments greedily in order, which is exact for the anchored signatures
// the builder produces.
func MatchText(s Sig, payload string) (bool, ByteStats) {
	re, err := Compile(s)
	if err != nil || !re.MatchString(payload) {
		return false, ByteStats{}
	}
	lits := literalFragments(s)
	var st ByteStats
	rest := payload
	for _, lit := range lits {
		if lit == "" {
			continue
		}
		i := strings.Index(rest, lit)
		if i < 0 {
			break
		}
		st.None += 0
		st.Value += i // wildcard-covered span before the literal
		st.Key += len(lit)
		rest = rest[i+len(lit):]
	}
	st.Value += len(rest)
	return true, st
}

func literalFragments(s Sig) []string {
	var out []string
	var walk func(Sig)
	walk = func(s Sig) {
		switch v := s.(type) {
		case *Lit:
			out = append(out, v.Val)
		case *Concat:
			for _, p := range v.Parts {
				walk(p)
			}
		case *Rep:
			// repetition contents may appear 0 times; skip
		case *Or:
			// alternatives are ambiguous; skip
		}
	}
	walk(s)
	return out
}

// MatchQuery matches a query string or form body ("k=v&k2=v2") against a
// signature, returning whether every pair with a signature-known key
// matched and byte statistics. Keys the signature knows contribute their
// bytes to Key and their values to Value; unknown pairs land in None.
func MatchQuery(s Sig, query string) (bool, ByteStats) {
	known := map[string]bool{}
	for _, k := range Keywords(s) {
		known[k] = true
	}
	var st ByteStats
	if query == "" {
		return true, st
	}
	pairs := strings.Split(query, "&")
	for i, p := range pairs {
		sep := 0
		if i > 0 {
			sep = 1 // the '&'
		}
		k, v, found := strings.Cut(p, "=")
		if !found {
			st.None += len(p) + sep
			continue
		}
		if known[k] {
			st.Key += len(k) + 1 + sep // key, '=', '&'
			st.Value += len(v)
		} else {
			st.None += len(p) + sep
		}
	}
	return st.None == 0 || len(known) > 0, st
}

// MatchJSON matches a JSON payload against a JSON/Obj signature.
// ok is true when every constant key in the signature appears in the
// payload (the signature is a valid description of what the app reads or
// writes). Bytes of payload keys known to the signature count as Key,
// their values as Value, and subtrees the signature does not describe as
// None.
func MatchJSON(s Sig, payload []byte) (bool, ByteStats, error) {
	var v any
	if err := json.Unmarshal(payload, &v); err != nil {
		return false, ByteStats{}, fmt.Errorf("siglang: payload is not JSON: %w", err)
	}
	root := s
	if j, isJSON := s.(*JSON); isJSON {
		root = j.Root
	}
	var st ByteStats
	ok := matchJSONValue(root, v, &st)
	return ok, st, nil
}

func matchJSONValue(s Sig, v any, st *ByteStats) bool {
	switch sv := s.(type) {
	case nil:
		st.None += jsonSize(v)
		return true
	case *Obj:
		m, isMap := v.(map[string]any)
		if !isMap {
			st.None += jsonSize(v)
			return false
		}
		ok := true
		// Every sig key must be present.
		for _, kv := range sv.Pairs {
			if kv.Dyn {
				continue
			}
			if _, present := m[kv.Key]; !present {
				ok = false
			}
		}
		var dynVal Sig
		hasDyn := false
		for _, kv := range sv.Pairs {
			if kv.Dyn {
				hasDyn, dynVal = true, kv.Val
			}
		}
		for k, val := range m {
			if sigVal := sv.Get(k); sigVal != nil || containsKey(sv, k) {
				st.Key += len(k) + 3 // quotes + colon
				if !matchLeafOrRecurse(sigVal, val, st) {
					ok = false
				}
			} else if hasDyn {
				// Dynamically generated keys: value structure may still be known.
				st.Value += len(k) + 3
				if !matchLeafOrRecurse(dynVal, val, st) {
					ok = false
				}
			} else {
				st.None += len(k) + 3 + jsonSize(val)
			}
		}
		return ok
	case *Arr:
		arr, isArr := v.([]any)
		if !isArr {
			st.None += jsonSize(v)
			return false
		}
		var item Sig
		for _, e := range sv.Elems {
			item = Merge(item, e)
		}
		ok := true
		for _, el := range arr {
			if !matchLeafOrRecurse(item, el, st) {
				ok = false
			}
		}
		return ok
	case *JSON:
		return matchJSONValue(sv.Root, v, st)
	case *Or:
		// Accept if any alternative accepts; account bytes per best effort
		// using the first matching alternative.
		for _, alt := range sv.Alts {
			var tmp ByteStats
			if matchJSONValue(alt, v, &tmp) {
				st.Add(tmp)
				return true
			}
		}
		st.None += jsonSize(v)
		return false
	case *Lit:
		st.Value += jsonSize(v)
		return literalMatches(sv, v)
	case *Unknown:
		st.Value += jsonSize(v)
		return true
	default: // Concat/Rep describing a string-typed leaf
		st.Value += jsonSize(v)
		str, isStr := v.(string)
		if !isStr {
			return true
		}
		re, err := Compile(s)
		return err == nil && re.MatchString(str)
	}
}

func containsKey(o *Obj, k string) bool {
	for _, kv := range o.Pairs {
		if !kv.Dyn && kv.Key == k {
			return true
		}
	}
	return false
}

func matchLeafOrRecurse(sigVal Sig, val any, st *ByteStats) bool {
	if sigVal == nil {
		st.Value += jsonSize(val)
		return true
	}
	return matchJSONValue(sigVal, val, st)
}

func literalMatches(l *Lit, v any) bool {
	switch tv := v.(type) {
	case string:
		return tv == l.Val
	case float64:
		return l.Num && fmt.Sprintf("%v", tv) == l.Val
	case bool:
		return fmt.Sprintf("%v", tv) == l.Val
	default:
		return false
	}
}

// jsonSize returns the serialized size of a decoded JSON value.
func jsonSize(v any) int {
	b, err := json.Marshal(v)
	if err != nil {
		return 0
	}
	return len(b)
}

// MatchXML matches an XML payload against an XML signature: every tag and
// attribute named by the signature must occur in the payload. Byte
// accounting mirrors MatchJSON at element granularity.
func MatchXML(s *XML, payload []byte) (bool, ByteStats, error) {
	root, err := parseXML(payload)
	if err != nil {
		return false, ByteStats{}, err
	}
	var st ByteStats
	if s == nil || s.Root == nil {
		st.None = len(payload)
		return true, st, nil
	}
	ok := matchElem(s.Root, root, &st)
	return ok, st, nil
}

type xmlNode struct {
	tag      string
	attrs    map[string]string
	children []*xmlNode
	text     string
}

func parseXML(data []byte) (*xmlNode, error) {
	dec := xml.NewDecoder(strings.NewReader(string(data)))
	var stack []*xmlNode
	var root *xmlNode
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &xmlNode{tag: t.Name.Local, attrs: map[string]string{}}
			for _, a := range t.Attr {
				n.attrs[a.Name.Local] = a.Value
			}
			if len(stack) > 0 {
				parent := stack[len(stack)-1]
				parent.children = append(parent.children, n)
			} else {
				root = n
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].text += string(t)
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("siglang: payload is not XML")
	}
	return root, nil
}

func matchElem(sig *Elem, node *xmlNode, st *ByteStats) bool {
	if sig == nil || node == nil {
		return sig == nil
	}
	if sig.Tag == "*" {
		// Wildcard root (the parser's document node): every named child of
		// the signature must occur somewhere in the payload tree.
		ok := true
		for _, sc := range sig.Children {
			found := findNode(node, sc.Tag)
			if found == nil {
				ok = false
				continue
			}
			if !matchElem(sc, found, st) {
				ok = false
			}
		}
		return ok
	}
	if sig.Tag != node.tag {
		return false
	}
	st.Key += len(node.tag)*2 + 5 // open+close tags
	ok := true
	for _, a := range sig.Attrs {
		if v, present := node.attrs[a.Key]; present {
			st.Key += len(a.Key) + 3
			st.Value += len(v)
		} else {
			ok = false
		}
	}
	for k, v := range node.attrs {
		if !elemHasAttr(sig, k) {
			st.None += len(k) + 3 + len(v)
		}
	}
	for _, sc := range sig.Children {
		found := false
		for _, nc := range node.children {
			if nc.tag == sc.Tag {
				if matchElem(sc, nc, st) {
					found = true
				}
				break
			}
		}
		if !found {
			ok = false
		}
	}
	for _, nc := range node.children {
		if !elemHasChild(sig, nc.tag) {
			st.None += xmlSize(nc)
		}
	}
	if sig.Text != nil {
		st.Value += len(strings.TrimSpace(node.text))
	} else {
		st.None += len(strings.TrimSpace(node.text))
	}
	return ok
}

func findNode(n *xmlNode, tag string) *xmlNode {
	if n.tag == tag {
		return n
	}
	for _, c := range n.children {
		if f := findNode(c, tag); f != nil {
			return f
		}
	}
	return nil
}

func elemHasAttr(e *Elem, k string) bool {
	for _, a := range e.Attrs {
		if a.Key == k {
			return true
		}
	}
	return false
}

func elemHasChild(e *Elem, tag string) bool {
	for _, c := range e.Children {
		if c.Tag == tag {
			return true
		}
	}
	return false
}

func xmlSize(n *xmlNode) int {
	size := len(n.tag)*2 + 5 + len(strings.TrimSpace(n.text))
	for k, v := range n.attrs {
		size += len(k) + 3 + len(v)
	}
	for _, c := range n.children {
		size += xmlSize(c)
	}
	return size
}

package siglang

import (
	"fmt"
	"sort"
	"strings"
)

// JSONSchema renders a JSON signature tree as a compact JSON-Schema-like
// document. Unknown leaves become {"type": "..."} entries; objects list
// their properties; open arrays carry an "items" entry.
func JSONSchema(s Sig) string {
	var b strings.Builder
	writeSchema(s, &b)
	return b.String()
}

func writeSchema(s Sig, b *strings.Builder) {
	switch v := s.(type) {
	case nil:
		b.WriteString(`{"type":"any"}`)
	case *JSON:
		writeSchema(v.Root, b)
	case *Lit:
		if v.Num {
			fmt.Fprintf(b, `{"type":"number","const":%s}`, v.Val)
		} else {
			fmt.Fprintf(b, `{"type":"string","const":%q}`, v.Val)
		}
	case *Unknown:
		switch v.Type {
		case VInt:
			b.WriteString(`{"type":"number"}`)
		case VBool:
			b.WriteString(`{"type":"boolean"}`)
		case VString:
			b.WriteString(`{"type":"string"}`)
		default:
			b.WriteString(`{"type":"any"}`)
		}
	case *Obj:
		b.WriteString(`{"type":"object","properties":{`)
		first := true
		for _, kv := range v.Pairs {
			if kv.Dyn {
				continue
			}
			if !first {
				b.WriteString(",")
			}
			first = false
			fmt.Fprintf(b, "%q:", kv.Key)
			writeSchema(kv.Val, b)
		}
		b.WriteString("}")
		for _, kv := range v.Pairs {
			if kv.Dyn {
				b.WriteString(`,"additionalProperties":`)
				writeSchema(kv.Val, b)
				break
			}
		}
		b.WriteString("}")
	case *Arr:
		b.WriteString(`{"type":"array","items":`)
		var item Sig
		for _, e := range v.Elems {
			item = Merge(item, e)
		}
		writeSchema(item, b)
		b.WriteString("}")
	case *Or:
		b.WriteString(`{"anyOf":[`)
		for i, a := range v.Alts {
			if i > 0 {
				b.WriteString(",")
			}
			writeSchema(a, b)
		}
		b.WriteString("]}")
	case *Concat, *Rep:
		// Text-shaped signature inside a JSON position: describe as string.
		fmt.Fprintf(b, `{"type":"string","pattern":%q}`, RegexBody(s))
	case *XML:
		fmt.Fprintf(b, `{"type":"string","media":"text/xml"}`)
	}
}

// DTD renders an XML signature tree as a Document Type Definition, the
// alternative representation the paper mentions for XML bodies.
func DTD(x *XML) string {
	if x == nil || x.Root == nil {
		return ""
	}
	var b strings.Builder
	seen := map[string]bool{}
	writeDTD(x.Root, &b, seen)
	return strings.TrimRight(b.String(), "\n")
}

func writeDTD(e *Elem, b *strings.Builder, seen map[string]bool) {
	if e == nil || seen[e.Tag] {
		return
	}
	seen[e.Tag] = true
	if len(e.Children) == 0 {
		if e.Text != nil {
			fmt.Fprintf(b, "<!ELEMENT %s (#PCDATA)>\n", e.Tag)
		} else {
			fmt.Fprintf(b, "<!ELEMENT %s EMPTY>\n", e.Tag)
		}
	} else {
		names := make([]string, 0, len(e.Children))
		for _, c := range e.Children {
			names = append(names, c.Tag)
		}
		fmt.Fprintf(b, "<!ELEMENT %s (%s)>\n", e.Tag, strings.Join(names, ", "))
	}
	if len(e.Attrs) > 0 {
		attrs := make([]string, 0, len(e.Attrs))
		for _, a := range e.Attrs {
			attrs = append(attrs, fmt.Sprintf("%s CDATA #IMPLIED", a.Key))
		}
		sort.Strings(attrs)
		fmt.Fprintf(b, "<!ATTLIST %s %s>\n", e.Tag, strings.Join(attrs, " "))
	}
	for _, c := range e.Children {
		writeDTD(c, b, seen)
	}
}

// Pretty renders a human-oriented multi-line description of a signature,
// used by the CLI report output.
func Pretty(s Sig) string {
	var b strings.Builder
	writePretty(s, &b, 0)
	return b.String()
}

func writePretty(s Sig, b *strings.Builder, depth int) {
	ind := strings.Repeat("  ", depth)
	switch v := s.(type) {
	case nil:
		b.WriteString(ind + "*\n")
	case *Lit, *Unknown, *Concat, *Rep, *Or:
		b.WriteString(ind + RegexBody(s) + "\n")
	case *JSON:
		b.WriteString(ind + "JSON\n")
		writePretty(v.Root, b, depth+1)
	case *Obj:
		for _, kv := range v.Pairs {
			key := kv.Key
			if kv.Dyn {
				key = "<dynamic>"
			}
			switch val := kv.Val.(type) {
			case *Obj, *Arr, *JSON:
				b.WriteString(ind + key + ":\n")
				writePretty(val, b, depth+1)
			default:
				b.WriteString(ind + key + ": " + RegexBody(kv.Val) + "\n")
			}
		}
	case *Arr:
		b.WriteString(ind + "[\n")
		for _, e := range v.Elems {
			writePretty(e, b, depth+1)
		}
		if v.Open {
			b.WriteString(ind + "  ...\n")
		}
		b.WriteString(ind + "]\n")
	case *XML:
		b.WriteString(ind + "XML\n")
		writePrettyElem(v.Root, b, depth+1)
	}
}

func writePrettyElem(e *Elem, b *strings.Builder, depth int) {
	if e == nil {
		return
	}
	ind := strings.Repeat("  ", depth)
	b.WriteString(ind + "<" + e.Tag)
	for _, a := range e.Attrs {
		b.WriteString(" " + a.Key)
	}
	b.WriteString(">\n")
	for _, c := range e.Children {
		writePrettyElem(c, b, depth+1)
	}
}

package siglang

import "testing"

// corpusSigs covers every node kind and the tricky renderings: empty
// containers, nil values that print as wildcards, nested structures, and
// unicode in literals.
func corpusSigs() []Sig {
	return []Sig{
		Str(""),
		Str(`he said "hi" ∨ left`),
		Str("tab\tnewline\nunicode→"),
		Num("42"),
		Num("-3.5e2"),
		Any(),
		AnyString(),
		AnyInt(),
		&Unknown{Type: VBool},
		Cat(Str("https://api.example.com/v"), AnyInt(), Str("/items?count="), AnyInt()),
		&Concat{},
		Repeat(Cat(Str("&tag="), AnyString())),
		&Or{Alts: []Sig{Str("a")}},
		Disjoin(Str("GET"), Str("POST"), AnyString()),
		&Obj{Pairs: []KV{
			{Key: "user", Val: AnyString()},
			{Key: "ids", Val: &Arr{Elems: []Sig{AnyInt()}, Open: true}},
			{Dyn: true, Val: Num("1")},
			{Key: "hole", Val: nil}, // renders as ?any
		}},
		&Arr{},
		&Arr{Open: true},
		&Arr{Elems: []Sig{Str("x"), &Obj{Pairs: []KV{{Key: "k", Val: Any()}}}}},
		&JSON{Root: &Obj{Pairs: []KV{{Key: "data", Val: &JSON{Root: nil}}}}},
		&JSON{Root: nil},
		&XML{Root: nil},
		&XML{Root: &Elem{
			Tag:   "rss",
			Attrs: []KV{{Key: "version", Val: Str("2.0")}, {Key: "lang", Val: nil}},
			Children: []*Elem{
				{Tag: "channel", Children: []*Elem{
					{Tag: "item", Text: AnyString()},
					nil, // renders as ?elem
				}},
			},
			Text: Cat(Str("tail:"), AnyInt()),
		}},
		nil, // renders as <nil>
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, sig := range corpusSigs() {
		want := Canon(sig)
		got, err := Parse(want)
		if err != nil {
			t.Errorf("Parse(%q): %v", want, err)
			continue
		}
		if c := Canon(got); c != want {
			t.Errorf("round trip changed canonical form:\n in  %q\n out %q", want, c)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"bogus",
		`"unterminated`,
		"num(12",
		"concat(?any",
		"concat(?any,?int)", // missing space after comma
		"rep{?any",
		"(?any ∨ )",
		`obj{"k" ?any}`, // missing ": "
		"obj{?key: }",
		"array[?any",
		"array[?any...", // missing ]
		"json(?any",
		"xml(<a></b>)", // mismatched tags
		"xml(<a x>?any</a>)",
		"xml(<>?any</>)",
		`"ok" trailing`,
		"??any",
	}
	for _, s := range bad {
		if sig, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted malformed input as %q", s, Canon(sig))
		}
	}
}

func TestParseDepthLimit(t *testing.T) {
	deep := ""
	for i := 0; i < maxParseDepth+10; i++ {
		deep += "rep{"
	}
	deep += "?any"
	for i := 0; i < maxParseDepth+10; i++ {
		deep += "}"
	}
	if _, err := Parse(deep); err == nil {
		t.Fatal("accepted signature nested beyond the depth limit")
	}
	// A tree comfortably inside the limit must still parse.
	ok := "rep{rep{rep{rep{?int}}}}"
	if _, err := Parse(ok); err != nil {
		t.Fatalf("rejected shallow nesting: %v", err)
	}
}

// FuzzSiglangCanon checks the parser/renderer contract: any input the
// parser accepts must render to a canonical form that re-parses to the
// same canonical form (Parse∘Canon is a fixed point), and no input —
// however malformed — may panic or overflow the stack.
func FuzzSiglangCanon(f *testing.F) {
	for _, sig := range corpusSigs() {
		f.Add(Canon(sig))
	}
	f.Add("obj{")
	f.Add("xml(<a b=?any><c></c>?string</a>)")
	f.Add("(num(1) ∨ num(2) ∨ ?bool)")

	f.Fuzz(func(t *testing.T, s string) {
		sig, err := Parse(s)
		if err != nil {
			return
		}
		c1 := Canon(sig)
		sig2, err := Parse(c1)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q fails to re-parse: %v", c1, s, err)
		}
		if c2 := Canon(sig2); c2 != c1 {
			t.Fatalf("canonical form is not a fixed point:\n in  %q\n c1  %q\n c2  %q", s, c1, c2)
		}
	})
}

package siglang

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCatMergesAdjacentLiterals(t *testing.T) {
	s := Cat(Str("http://"), Str("www.reddit.com"), Str("/search/"))
	l, ok := s.(*Lit)
	if !ok {
		t.Fatalf("Cat of literals = %T, want *Lit", s)
	}
	if l.Val != "http://www.reddit.com/search/" {
		t.Fatalf("merged literal = %q", l.Val)
	}
}

func TestCatFlattensNestedConcat(t *testing.T) {
	inner := Cat(Str("a"), AnyString())
	s := Cat(inner, Str("b"))
	c, ok := s.(*Concat)
	if !ok {
		t.Fatalf("Cat = %T", s)
	}
	if len(c.Parts) != 3 {
		t.Fatalf("parts = %d, want 3 (flattened)", len(c.Parts))
	}
}

func TestDisjoinDeduplicates(t *testing.T) {
	a := Cat(Str("x"), AnyInt())
	b := Cat(Str("x"), AnyInt())
	s := Disjoin(a, b)
	if _, isOr := s.(*Or); isOr {
		t.Fatalf("Disjoin of equal sigs should collapse, got %s", Canon(s))
	}
	s2 := Disjoin(a, Str("y"))
	o, isOr := s2.(*Or)
	if !isOr || len(o.Alts) != 2 {
		t.Fatalf("Disjoin = %s", Canon(s2))
	}
}

func TestDisjoinDropsNil(t *testing.T) {
	if Disjoin(nil, nil) != nil {
		t.Fatal("Disjoin(nil,nil) != nil")
	}
	s := Disjoin(nil, Str("a"))
	if Canon(s) != Canon(Str("a")) {
		t.Fatalf("Disjoin(nil, a) = %s", Canon(s))
	}
}

func TestRegexRendering(t *testing.T) {
	tests := []struct {
		sig  Sig
		want string
	}{
		{Str("a.b"), `^a\.b$`},
		{AnyInt(), `^[0-9]+$`},
		{AnyString(), `^.*$`},
		{Cat(Str("id="), AnyInt()), `^id=[0-9]+$`},
		{Disjoin(Str("save"), Str("unsave")), `^(?:save|unsave)$`},
		{Repeat(Cat(Str("&x="), AnyString())), `^(?:&x=.*)*$`},
	}
	for _, tt := range tests {
		if got := Regex(tt.sig); got != tt.want {
			t.Errorf("Regex(%s) = %q, want %q", Canon(tt.sig), got, tt.want)
		}
	}
}

func TestRedditSearchSignatureMatchesPaperExample(t *testing.T) {
	// The paper's Diode example: http://www.reddit.com/search/.json?q=(.*)&sort=(.*)
	sig := Cat(
		Str("http://www.reddit.com/search/.json?q="),
		AnyString(),
		Str("&sort="),
		AnyString(),
	)
	re, err := Compile(sig)
	if err != nil {
		t.Fatal(err)
	}
	if !re.MatchString("http://www.reddit.com/search/.json?q=cats&sort=top") {
		t.Fatal("signature rejects a conforming URI")
	}
	if re.MatchString("http://evil.example.com/search/.json?q=cats&sort=top") {
		t.Fatal("signature accepts a non-conforming URI")
	}
}

func TestMergeCollapsesEqualAndMergesJSON(t *testing.T) {
	a := &JSON{Root: &Obj{}}
	a.Root.(*Obj).Put("modhash", AnyString())
	b := &JSON{Root: &Obj{}}
	b.Root.(*Obj).Put("cookie", AnyString())
	m := Merge(a, b)
	j, ok := m.(*JSON)
	if !ok {
		t.Fatalf("Merge = %T", m)
	}
	keys := j.Root.(*Obj).Keys()
	if len(keys) != 2 || keys[0] != "modhash" || keys[1] != "cookie" {
		t.Fatalf("merged keys = %v", keys)
	}
}

func TestObjPutDisjoinsConflictingValues(t *testing.T) {
	o := &Obj{}
	o.Put("dir", Str("1"))
	o.Put("dir", Str("-1"))
	v := o.Get("dir")
	if _, isOr := v.(*Or); !isOr {
		t.Fatalf("conflicting Put = %s, want disjunction", Canon(v))
	}
}

func TestKeywordsFromJSONAndQuery(t *testing.T) {
	o := &Obj{}
	o.Put("relay", AnyString())
	inner := &Obj{}
	inner.Put("artist", AnyString())
	o.Put("songs", inner)
	sig := Cat(Str("user="), AnyString(), Str("&passwd="), AnyString(), Str("&api_type=json"))
	kw := Keywords(&JSON{Root: o})
	want := []string{"artist", "relay", "songs"}
	if strings.Join(kw, ",") != strings.Join(want, ",") {
		t.Fatalf("JSON keywords = %v, want %v", kw, want)
	}
	kw2 := Keywords(sig)
	want2 := []string{"api_type", "passwd", "user"}
	if strings.Join(kw2, ",") != strings.Join(want2, ",") {
		t.Fatalf("query keywords = %v, want %v", kw2, want2)
	}
}

func TestMatchQueryAccounting(t *testing.T) {
	sig := Cat(Str("id="), AnyString(), Str("&uh="), AnyString())
	okMatch, st := MatchQuery(sig, "id=t3_abc&uh=f0f0f0")
	if !okMatch {
		t.Fatal("MatchQuery failed")
	}
	// "id=" (3) + "&uh=" (4) = 7 key bytes; values 6+6=12.
	if st.Key != 7 || st.Value != 12 || st.None != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMatchQueryUnknownKeyGoesToNone(t *testing.T) {
	sig := Cat(Str("id="), AnyString())
	_, st := MatchQuery(sig, "id=1&zzz=9")
	if st.None != len("&zzz=9") {
		t.Fatalf("None = %d, want %d", st.None, len("&zzz=9"))
	}
}

func TestMatchJSONValidAndAccounting(t *testing.T) {
	o := &Obj{}
	o.Put("modhash", AnyString())
	o.Put("cookie", AnyString())
	sig := &JSON{Root: o}
	ok, st, err := MatchJSON(sig, []byte(`{"modhash":"abc","cookie":"xyz","extra":42}`))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("expected valid match (all sig keys present)")
	}
	if st.Key == 0 || st.Value == 0 || st.None == 0 {
		t.Fatalf("expected all three buckets populated: %+v", st)
	}
}

func TestMatchJSONMissingKeyInvalid(t *testing.T) {
	o := &Obj{}
	o.Put("modhash", AnyString())
	ok, _, err := MatchJSON(&JSON{Root: o}, []byte(`{"other":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("match should fail when a signature key is absent")
	}
}

func TestMatchJSONNestedAndArray(t *testing.T) {
	song := &Obj{}
	song.Put("artist", AnyString())
	songs := &Obj{}
	songs.Put("song", &Arr{Elems: []Sig{song}, Open: true})
	root := &Obj{}
	root.Put("relay", AnyString())
	root.Put("songs", songs)
	payload := `{"relay":"http://cdn/x","songs":{"song":[{"artist":"stirus","id":"837"}]}}`
	ok, st, err := MatchJSON(&JSON{Root: root}, []byte(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("nested match failed")
	}
	if st.None == 0 {
		t.Fatal("unread keys (id) should land in None")
	}
}

func TestMatchJSONRejectsNonJSON(t *testing.T) {
	if _, _, err := MatchJSON(&JSON{Root: &Obj{}}, []byte("not json")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestMatchTextLiteralAccounting(t *testing.T) {
	sig := Cat(Str("https://api.ted.com/v1/talks/"), AnyInt(), Str("/ad.json?api-key="), AnyString())
	ok, st := MatchText(sig, "https://api.ted.com/v1/talks/42/ad.json?api-key=K1")
	if !ok {
		t.Fatal("MatchText failed")
	}
	wantKey := len("https://api.ted.com/v1/talks/") + len("/ad.json?api-key=")
	if st.Key != wantKey {
		t.Fatalf("Key = %d, want %d", st.Key, wantKey)
	}
	if st.Value != len("42")+len("K1") {
		t.Fatalf("Value = %d", st.Value)
	}
}

func TestJSONSchemaRendering(t *testing.T) {
	o := &Obj{}
	o.Put("url", AnyString())
	o.Put("height", AnyInt())
	got := JSONSchema(&JSON{Root: o})
	for _, frag := range []string{`"url":{"type":"string"}`, `"height":{"type":"number"}`, `"type":"object"`} {
		if !strings.Contains(got, frag) {
			t.Errorf("schema missing %q: %s", frag, got)
		}
	}
}

func TestDTDRendering(t *testing.T) {
	x := &XML{Root: &Elem{
		Tag:   "vast",
		Attrs: []KV{{Key: "version"}},
		Children: []*Elem{
			{Tag: "ad", Children: []*Elem{{Tag: "mediafile", Text: AnyString()}}},
		},
	}}
	dtd := DTD(x)
	for _, frag := range []string{"<!ELEMENT vast (ad)>", "<!ATTLIST vast version CDATA #IMPLIED>", "<!ELEMENT mediafile (#PCDATA)>"} {
		if !strings.Contains(dtd, frag) {
			t.Errorf("DTD missing %q:\n%s", frag, dtd)
		}
	}
}

func TestMatchXML(t *testing.T) {
	x := &XML{Root: &Elem{Tag: "ads", Children: []*Elem{{Tag: "url", Text: AnyString()}}}}
	ok, st, err := MatchXML(x, []byte(`<ads><url>http://a/b.mp4</url><skip>1</skip></ads>`))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("XML match failed")
	}
	if st.Key == 0 || st.None == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMatchXMLMissingTagInvalid(t *testing.T) {
	x := &XML{Root: &Elem{Tag: "ads", Children: []*Elem{{Tag: "url"}}}}
	ok, _, err := MatchXML(x, []byte(`<ads><other/></ads>`))
	if err != nil || ok {
		t.Fatalf("ok=%v err=%v, want invalid match", ok, err)
	}
}

// Property: every generated signature compiles to a valid regexp.
func TestRegexAlwaysCompiles(t *testing.T) {
	f := func(lits []string, ints []bool) bool {
		parts := make([]Sig, 0, len(lits)+len(ints))
		for _, l := range lits {
			parts = append(parts, Str(l))
		}
		for _, b := range ints {
			if b {
				parts = append(parts, AnyInt())
			} else {
				parts = append(parts, AnyString())
			}
		}
		sig := Cat(parts...)
		_, err := Compile(sig)
		if err != nil {
			return false
		}
		_, err = Compile(Repeat(sig))
		if err != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a literal signature always matches exactly its own literal.
func TestLiteralSelfMatch(t *testing.T) {
	f := func(s string) bool {
		re, err := Compile(Str(s))
		if err != nil {
			return false
		}
		return re.MatchString(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonStableForMapKeys(t *testing.T) {
	a := Cat(Str("x"), AnyInt())
	b := Cat(Str("x"), AnyInt())
	if Canon(a) != Canon(b) {
		t.Fatal("structurally equal sigs canonize differently")
	}
	if !Equal(a, b) {
		t.Fatal("Equal is false for equal sigs")
	}
}

func TestPrettyDoesNotPanic(t *testing.T) {
	o := &Obj{}
	o.Put("a", AnyString())
	o.PutDyn(AnyInt())
	sigs := []Sig{
		Str("x"), AnyInt(), Cat(Str("a"), AnyString()),
		&JSON{Root: o}, &Arr{Elems: []Sig{AnyInt()}, Open: true},
		&XML{Root: &Elem{Tag: "r", Children: []*Elem{{Tag: "c"}}}},
		Disjoin(Str("a"), Str("b")), Repeat(Str("z")),
	}
	for _, s := range sigs {
		if Pretty(s) == "" && s != nil {
			t.Errorf("empty pretty for %s", Canon(s))
		}
	}
}

package taint

import (
	"testing"

	"extractocol/internal/intern"
	"extractocol/internal/ir"
)

// TestBackwardThroughStaticFields: a static field carries the URI.
func TestBackwardThroughStaticFields(t *testing.T) {
	p := ir.NewProgram("t.sf")
	c := p.AddClass(&ir.Class{Name: "t.sf.S", Fields: []*ir.Field{
		{Name: "base", Type: "java.lang.String", Static: true},
	}})
	w := ir.NewMethod(c, "onInit", false, nil, "void")
	v := w.ConstStr("https://sf.example.com")
	w.StaticPut("t.sf.S.base", v)
	w.ReturnVoid()
	w.Done()

	r := ir.NewMethod(c, "onGo", false, nil, "void")
	base := r.StaticGet("t.sf.S.base")
	req := r.New("org.apache.http.client.methods.HttpGet")
	r.InvokeSpecial(getInit, req, base)
	cl := r.New("org.apache.http.impl.client.DefaultHttpClient")
	r.InvokeSpecial(clInit, cl)
	r.Invoke(execRef, cl, req)
	r.ReturnVoid()
	r.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{
		{Method: "t.sf.S.onInit", Kind: ir.EventCreate},
		{Method: "t.sf.S.onGo", Kind: ir.EventClick},
	}

	e := engineFor(p)
	e.Universe = e.CG.ReachableBits("t.sf.S.onGo")
	m := p.Method("t.sf.S.onGo")
	site := findInvoke(m, execRef)
	res := e.Backward(StmtID{m.Ref(), site}, m.Instrs[site].Args[1])
	if !hasStr(res.HeapReads(), "s:t.sf.S.base") {
		t.Fatalf("HeapReads = %v", res.HeapReads())
	}
	onInit := p.Method("t.sf.S.onInit")
	constIdx := -1
	for i := range onInit.Instrs {
		if onInit.Instrs[i].Op == ir.OpConstStr {
			constIdx = i
		}
	}
	if !res.Contains(onInit.Ref(), constIdx) {
		t.Fatal("static-field writer constant missing from slice")
	}
}

// TestBackwardThroughBinop: arithmetic feeding the URI (paging counters).
func TestBackwardThroughBinop(t *testing.T) {
	p := ir.NewProgram("t.bo")
	c := p.AddClass(&ir.Class{Name: "t.bo.B"})
	b := ir.NewMethod(c, "go", false, []string{"int"}, "void")
	n := b.Param(0)
	one := b.ConstInt(1)
	next := b.Binop("+", n, one)
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial(sbInit, sb)
	base := b.ConstStr("https://bo.example.com/page/")
	b.InvokeVoid(sbApp, sb, base)
	b.InvokeVoid(sbApp, sb, next)
	uri := b.Invoke(sbStr, sb)
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, uri)
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial(clInit, cl)
	b.Invoke(execRef, cl, req)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.bo.B.go", Kind: ir.EventClick}}

	e := engineFor(p)
	m := p.Method("t.bo.B.go")
	site := findInvoke(m, execRef)
	res := e.Backward(StmtID{m.Ref(), site}, m.Instrs[site].Args[1])
	foundBinop := false
	for i := range m.Instrs {
		if m.Instrs[i].Op == ir.OpBinop && res.Contains(m.Ref(), i) {
			foundBinop = true
		}
	}
	if !foundBinop {
		t.Fatal("binop feeding the URI missing from slice")
	}
}

// TestBackwardEscapeIntoHelper: the builder escapes into a helper that
// appends to it; the helper's mutation must join the slice.
func TestBackwardEscapeIntoHelper(t *testing.T) {
	p := ir.NewProgram("t.esc")
	c := p.AddClass(&ir.Class{Name: "t.esc.E"})

	h := ir.NewMethod(c, "addAuth", false, []string{"java.lang.StringBuilder"}, "void")
	sbP := h.Param(0)
	frag := h.ConstStr("&auth=secret")
	h.InvokeVoid(sbApp, sbP, frag)
	h.ReturnVoid()
	h.Done()

	b := ir.NewMethod(c, "go", false, nil, "void")
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial(sbInit, sb)
	base := b.ConstStr("https://esc.example.com/q?x=1")
	b.InvokeVoid(sbApp, sb, base)
	b.InvokeVoid("t.esc.E.addAuth", b.This(), sb)
	uri := b.Invoke(sbStr, sb)
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, uri)
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial(clInit, cl)
	b.Invoke(execRef, cl, req)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.esc.E.go", Kind: ir.EventClick}}

	e := engineFor(p)
	m := p.Method("t.esc.E.go")
	site := findInvoke(m, execRef)
	res := e.Backward(StmtID{m.Ref(), site}, m.Instrs[site].Args[1])
	helper := p.Method("t.esc.E.addAuth")
	appended := false
	for i := range helper.Instrs {
		if helper.Instrs[i].Op == ir.OpConstStr && res.Contains(helper.Ref(), i) {
			appended = true
		}
	}
	if !appended {
		t.Fatal("helper mutation missing from slice (object escape not followed)")
	}
}

// TestForwardFactsReachability: the pairing primitive.
func TestForwardFactsReachability(t *testing.T) {
	p := callChainApp()
	e := engineFor(p)
	onClick := p.Method("t.chain.Api.onClick")
	// Seed the URI constant's register.
	var seedReg, seedIdx int
	for i := range onClick.Instrs {
		if onClick.Instrs[i].Op == ir.OpConstStr && onClick.Instrs[i].Str == "https://x.example.com/ping" {
			seedReg, seedIdx = onClick.Instrs[i].Dst, i
		}
	}
	res := e.ForwardFacts(map[StmtID]int{{Method: onClick.Ref(), Index: seedIdx}: seedReg})
	doGet := p.Method("t.chain.Api.doGet")
	site := findInvoke(doGet, execRef)
	if !res.Contains(doGet.Ref(), site) {
		t.Fatal("forward facts did not reach the demarcation point")
	}
}

func TestResultHelpers(t *testing.T) {
	p := ir.NewProgram("t.helpers")
	for _, cls := range []string{"m"} {
		c := p.AddClass(&ir.Class{Name: cls})
		for _, name := range []string{"A", "B"} {
			mm := ir.NewMethod(c, name, true, nil, "void")
			for i := 0; i < 4; i++ {
				mm.ConstInt(int64(i))
			}
			mm.ReturnVoid()
			mm.Done()
		}
	}
	idx := ir.NewIndex(p)
	tab := &intern.SyncTable{}
	a := NewResult(idx, tab)
	a.AddStmt("m.A", 1)
	a.AddHeapWrite("f:x")
	a.AddSink("media")
	b := NewResult(idx, tab)
	b.AddStmt("m.B", 2)
	b.AddHeapRead("s:y")
	b.AddSource("location")
	a.Merge(b)
	if a.Size() != 2 || !hasStr(a.HeapReads(), "s:y") ||
		!hasStr(a.Sources(), "location") || !hasStr(a.Sinks(), "media") {
		t.Fatalf("merge lost data: %+v", a)
	}
	ms := a.Methods()
	if len(ms) != 2 || ms[0] != "m.A" || ms[1] != "m.B" {
		t.Fatalf("Methods = %v", ms)
	}
}

// TestForwardStaticWrites: response value stored in a static field is a
// response-originated object.
func TestForwardStaticWrites(t *testing.T) {
	p := ir.NewProgram("t.fs")
	c := p.AddClass(&ir.Class{Name: "t.fs.F"})
	b := ir.NewMethod(c, "go", false, nil, "void")
	u := b.ConstStr("https://fs.example.com/x")
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, u)
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial(clInit, cl)
	resp := b.Invoke(execRef, cl, req)
	ent := b.Invoke(getEnt, resp)
	raw := b.InvokeStatic(entCont, ent)
	b.StaticPut("t.fs.F.cache", raw)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.fs.F.go", Kind: ir.EventClick}}

	e := engineFor(p)
	m := p.Method("t.fs.F.go")
	site := findInvoke(m, execRef)
	res := e.Forward(StmtID{m.Ref(), site}, m.Instrs[site].Dst)
	if !hasStr(res.HeapWrites(), "s:t.fs.F.cache") {
		t.Fatalf("HeapWrites = %v", res.HeapWrites())
	}
}

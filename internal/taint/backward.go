package taint

import (
	"extractocol/internal/ir"
	"extractocol/internal/obs"
	"extractocol/internal/semmodel"
)

// Backward computes the request slice: all statements contributing to the
// value of register reg at the demarcation point dp, following inverted
// taint-propagation rules (tainted LHS taints RHS; callee parameters taint
// caller arguments; taint is consumed at definitions).
func (e *Engine) Backward(dp StmtID, reg int) *Result {
	res := newResult()
	w := &worklist{seen: map[fact]bool{}}
	res.Stmts[dp] = true
	w.push(fact{kind: factLocal, method: dp.Method, reg: reg})
	for {
		f, ok := w.pop()
		if !ok {
			break
		}
		e.Stats.Add(obs.CtrTaintFacts, 1)
		switch f.kind {
		case factLocal:
			e.backwardLocal(f, res, w)
		case factHeap:
			e.backwardHeap(f, res, w)
		}
	}
	return res
}

func (e *Engine) backwardLocal(f fact, res *Result, w *worklist) {
	m := e.Prog.Method(f.method)
	if m == nil {
		return
	}
	for i := range m.Instrs {
		in := &m.Instrs[i]
		if in.Def() == f.reg {
			e.backwardDef(m, i, in, f, res, w)
		}
		e.backwardMutation(m, i, in, f, res, w)
	}
	// Parameter registers propagate to every caller's argument.
	if f.reg < m.NumParamRegs() {
		e.backwardToCallers(m, f, res, w)
	}
}

// backwardDef handles a statement that defines the tainted register: the
// statement joins the slice and its operands become tainted.
func (e *Engine) backwardDef(m *ir.Method, idx int, in *ir.Instr, f fact, res *Result, w *worklist) {
	e.include(m, idx, in, res)
	switch in.Op {
	case ir.OpConstStr, ir.OpConstInt, ir.OpConstNull, ir.OpNew:
		// Constant or allocation: taint is consumed here.
	case ir.OpMove:
		w.push(fact{kind: factLocal, method: f.method, reg: in.A, hops: f.hops})
	case ir.OpBinop:
		w.push(fact{kind: factLocal, method: f.method, reg: in.A, hops: f.hops})
		w.push(fact{kind: factLocal, method: f.method, reg: in.B, hops: f.hops})
	case ir.OpFieldGet:
		loc := e.heapLoc(m, in)
		res.HeapReads[loc] = true
		w.push(fact{kind: factHeap, loc: loc, hops: f.hops})
		w.push(fact{kind: factLocal, method: f.method, reg: in.A, hops: f.hops})
	case ir.OpStaticGet:
		loc := "s:" + in.Sym
		res.HeapReads[loc] = true
		w.push(fact{kind: factHeap, loc: loc, hops: f.hops})
	case ir.OpInvoke:
		e.backwardInvokeDef(m, idx, in, f, res, w)
	}
}

func (e *Engine) backwardInvokeDef(m *ir.Method, idx int, in *ir.Instr, f fact, res *Result, w *worklist) {
	pushArg := func(pos int) {
		if pos < len(in.Args) && in.Args[pos] != ir.NoReg {
			w.push(fact{kind: factLocal, method: f.method, reg: in.Args[pos], hops: f.hops})
		}
	}
	pushAll := func(from int) {
		for p := from; p < len(in.Args); p++ {
			pushArg(p)
		}
	}
	if mm := e.Model.Lookup(in.Sym); mm != nil {
		switch mm.Kind {
		case semmodel.KGsonToJSON:
			// gson.toJson(obj): the serialized object, not the Gson
			// instance, carries the payload.
			pushArg(1)
		case semmodel.KToString, semmodel.KJSONToString,
			semmodel.KEntityContent, semmodel.KReadStream, semmodel.KRespGetEntity,
			semmodel.KRespBody, semmodel.KRespGetHeader, semmodel.KPassThrough,
			semmodel.KListGet, semmodel.KMapGet, semmodel.KJSONGetStr,
			semmodel.KJSONGetInt, semmodel.KJSONGetBool, semmodel.KJSONGetObj,
			semmodel.KJSONGetArr, semmodel.KJSONArrGet, semmodel.KJSONArrLen,
			semmodel.KOpenConnection, semmodel.KConnGetOutput, semmodel.KConnGetInput,
			semmodel.KXMLGetTag, semmodel.KXMLGetAttr, semmodel.KXMLGetText:
			pushArg(0)
		case semmodel.KValueOf, semmodel.KURLEncode, semmodel.KJSONParse,
			semmodel.KXMLParse, semmodel.KStringFormatIdentity:
			pushAll(0)
		case semmodel.KStringConcat, semmodel.KAppend:
			pushAll(0)
		case semmodel.KGsonFromJSON:
			pushArg(1)
		case semmodel.KOkBuild:
			pushArg(0)
		case semmodel.KOkNewCall:
			pushArg(1)
		case semmodel.KOkURL, semmodel.KOkPost, semmodel.KOkHeader:
			pushAll(0)
		case semmodel.KResGetString:
			if len(in.Args) >= 2 {
				if key, ok := e.constString(m, idx, in.Args[1]); ok {
					res.HeapReads["res:"+key] = true
				}
			}
		case semmodel.KDBQuery:
			for _, loc := range e.dbLocs(m, idx, in) {
				res.HeapReads[loc] = true
			}
		case semmodel.KExecuteDP:
			// The result of another transaction's DP feeding this value:
			// recorded as an execute statement; inter-transaction analysis
			// pairs the flows.
		default:
			pushAll(0)
		}
		return
	}
	// Application callee: taint its return registers.
	edges := e.appCallees(m, idx)
	if len(edges) == 0 {
		pushAll(0) // unknown method: conservative
		return
	}
	for _, edge := range edges {
		callee := e.Prog.Method(edge.Callee)
		if callee == nil || (!e.inUniverse(edge.Callee) && f.hops == 0) {
			continue
		}
		for j := range callee.Instrs {
			ret := &callee.Instrs[j]
			if ret.Op == ir.OpReturn && ret.A != ir.NoReg {
				w.push(fact{kind: factLocal, method: edge.Callee, reg: ret.A, hops: f.hops})
			}
		}
	}
}

// backwardMutation adds statements that mutate the tainted object: calls
// with the object as receiver of a modeled mutator, field stores into it,
// and app calls the object escapes into.
func (e *Engine) backwardMutation(m *ir.Method, idx int, in *ir.Instr, f fact, res *Result, w *worklist) {
	switch in.Op {
	case ir.OpFieldPut:
		if in.A == f.reg {
			e.include(m, idx, in, res)
			w.push(fact{kind: factLocal, method: f.method, reg: in.B, hops: f.hops})
		}
	case ir.OpInvoke:
		argPos := -1
		for p, a := range in.Args {
			if a == f.reg {
				argPos = p
				break
			}
		}
		if argPos < 0 {
			return
		}
		if mm := e.Model.Lookup(in.Sym); mm != nil {
			if argPos == 0 && isMutator(mm.Kind) {
				e.include(m, idx, in, res)
				for p := 1; p < len(in.Args); p++ {
					w.push(fact{kind: factLocal, method: f.method, reg: in.Args[p], hops: f.hops})
				}
			}
			if argPos == 0 && mm.Kind == semmodel.KConnGetOutput && in.Dst != ir.NoReg {
				// The output stream writes into the connection: track it.
				e.include(m, idx, in, res)
				w.push(fact{kind: factLocal, method: f.method, reg: in.Dst, hops: f.hops})
			}
			return
		}
		if in.Kind == ir.InvokeSpecial && argPos == 0 {
			// Constructor of an app or unknown class: arguments flow in.
			e.include(m, idx, in, res)
			for p := 1; p < len(in.Args); p++ {
				w.push(fact{kind: factLocal, method: f.method, reg: in.Args[p], hops: f.hops})
			}
			return
		}
		// Object escapes into an app callee: follow its parameter there so
		// mutations inside the callee join the slice.
		for _, edge := range e.appCallees(m, idx) {
			callee := e.Prog.Method(edge.Callee)
			if callee == nil || (!e.inUniverse(edge.Callee) && f.hops == 0) {
				continue
			}
			if pr := paramReg(callee, argPos); pr != ir.NoReg {
				e.include(m, idx, in, res)
				w.push(fact{kind: factLocal, method: edge.Callee, reg: pr, hops: f.hops})
			}
		}
	}
}

// isMutator reports whether calls of this kind change the receiver's
// logical value.
func isMutator(k semmodel.Kind) bool {
	switch k {
	case semmodel.KAppend, semmodel.KHTTPSetEntity, semmodel.KHTTPAddHeader,
		semmodel.KJSONPut, semmodel.KCVPut, semmodel.KListAdd, semmodel.KMapPut,
		semmodel.KConnSetMethod, semmodel.KConnSetHeader, semmodel.KOkURL,
		semmodel.KOkPost, semmodel.KOkHeader, semmodel.KStreamWrite,
		semmodel.KStringBuilderInit, semmodel.KHTTPReqInit, semmodel.KStringEntityInit,
		semmodel.KFormEntityInit, semmodel.KNVPairInit, semmodel.KURLInit:
		return true
	}
	return false
}

// backwardToCallers propagates a tainted parameter to the corresponding
// argument at every call site, including implicit (async) edges.
func (e *Engine) backwardToCallers(m *ir.Method, f fact, res *Result, w *worklist) {
	for _, edge := range e.CG.Callers(m.Ref()) {
		caller := e.Prog.Method(edge.Caller)
		if caller == nil {
			continue
		}
		// Call edges never cross the transaction context: only heap facts
		// may escape it (as asynchronous hops). Facts that already escaped
		// continue to propagate in their writer's context.
		if !e.inUniverse(edge.Caller) && f.hops == 0 {
			continue
		}
		hops := f.hops
		if edge.Site < 0 {
			// Synthetic chain edge (doInBackground -> onPostExecute):
			// the callee's data parameter is the caller's return value.
			if f.reg == 1 {
				for j := range caller.Instrs {
					ret := &caller.Instrs[j]
					if ret.Op == ir.OpReturn && ret.A != ir.NoReg {
						e.include(caller, j, ret, res)
						w.push(fact{kind: factLocal, method: edge.Caller, reg: ret.A, hops: hops})
					}
				}
			}
			continue
		}
		in := &caller.Instrs[edge.Site]
		base := 0
		if mm := e.Model.Lookup(in.Sym); mm != nil && mm.CallbackMethod != "" {
			base = mm.CallbackArg
		}
		pos := base + f.reg
		if pos < len(in.Args) && in.Args[pos] != ir.NoReg {
			e.include(caller, edge.Site, in, res)
			w.push(fact{kind: factLocal, method: edge.Caller, reg: in.Args[pos], hops: hops})
		}
	}
}

// backwardHeap propagates a heap fact to every statement writing that
// location, crossing asynchronous event boundaries at the cost of a hop.
func (e *Engine) backwardHeap(f fact, res *Result, w *worklist) {
	for _, c := range e.Prog.AppClasses() {
		for _, m := range c.Methods {
			inU := e.inUniverse(m.Ref())
			hops := f.hops
			if !inU {
				hops = f.hops + 1
				if hops > e.MaxAsyncHops {
					continue
				}
			}
			for i := range m.Instrs {
				in := &m.Instrs[i]
				switch in.Op {
				case ir.OpFieldPut:
					if e.heapLoc(m, in) == f.loc {
						e.include(m, i, in, res)
						w.push(fact{kind: factLocal, method: m.Ref(), reg: in.B, hops: hops})
					}
				case ir.OpStaticPut:
					if "s:"+in.Sym == f.loc {
						e.include(m, i, in, res)
						w.push(fact{kind: factLocal, method: m.Ref(), reg: in.B, hops: hops})
					}
				}
			}
		}
	}
}

// include records a statement in the slice and tracks sources/sinks.
func (e *Engine) include(m *ir.Method, idx int, in *ir.Instr, res *Result) {
	e.Stats.Add(obs.CtrTaintStmts, 1)
	res.Stmts[StmtID{m.Ref(), idx}] = true
	if in.Op == ir.OpInvoke {
		if mm := e.Model.Lookup(in.Sym); mm != nil {
			if mm.Source != "" {
				res.Sources[mm.Source] = true
			}
			if mm.Sink != "" {
				res.Sinks[mm.Sink] = true
			}
		}
	}
}

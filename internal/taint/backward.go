package taint

import (
	"extractocol/internal/ir"
	"extractocol/internal/semmodel"
)

// Backward computes the request slice: all statements contributing to the
// value of register reg at the demarcation point dp, following inverted
// taint-propagation rules (tainted LHS taints RHS; callee parameters taint
// caller arguments; taint is consumed at definitions).
//
// Propagation rules live in the buildBackward* functions below as transfer
// summaries; the worklist loop replays memoized summaries (see summary.go).
func (e *Engine) Backward(dp StmtID, reg int) *Result {
	e.ensure()
	if e.Legacy {
		return e.legacyBackward(dp, reg)
	}
	res := e.newResult()
	w := newDenseWorklist(e.idx)
	res.AddStmt(dp.Method, dp.Index)
	if mid, ok := e.idx.MethodID(dp.Method); ok {
		w.pushLocal(e.idx, mid, int32(reg), 0)
	}
	e.run(w, res, dirBackward, dp.Method)
	return res
}

// buildBackward derives the string-form backward summary of (method, reg)
// for the legacy replay engine; the hot path lowers the same scan straight
// to compiled form through a denseBuilder (see compiledLookup).
func (e *Engine) buildBackward(method string, reg int) *methodSummary {
	b := &sumBuilder{e: e}
	e.scanBackward(b, method, reg)
	return b.done()
}

// scanBackward emits the backward transfer effects of (method, reg) — the
// effects of processing one backward fact for that register — into b.
func (e *Engine) scanBackward(b sumEmitter, method string, reg int) {
	m := e.Prog.Method(method)
	if m == nil {
		return
	}
	for i := range m.Instrs {
		in := &m.Instrs[i]
		if in.Def() == reg {
			e.sumBackwardDef(b, m, i, in)
		}
		e.sumBackwardMutation(b, m, i, in, reg)
	}
	// Parameter registers propagate to every caller's argument.
	if reg < m.NumParamRegs() {
		e.sumBackwardToCallers(b, m, reg)
	}
}

// sumBackwardDef handles a statement that defines the tainted register: the
// statement joins the slice and its operands become tainted.
func (e *Engine) sumBackwardDef(b sumEmitter, m *ir.Method, idx int, in *ir.Instr) {
	b.include(m, idx)
	switch in.Op {
	case ir.OpConstStr, ir.OpConstInt, ir.OpConstNull, ir.OpNew:
		// Constant or allocation: taint is consumed here.
	case ir.OpMove:
		b.push(m.Ref(), in.A)
	case ir.OpBinop:
		b.push(m.Ref(), in.A)
		b.push(m.Ref(), in.B)
	case ir.OpFieldGet:
		loc := e.heapLoc(m, in)
		b.heapRead(loc)
		b.pushHeap(loc)
		b.push(m.Ref(), in.A)
	case ir.OpStaticGet:
		loc := "s:" + in.Sym
		b.heapRead(loc)
		b.pushHeap(loc)
	case ir.OpInvoke:
		e.sumBackwardInvokeDef(b, m, idx, in)
	}
}

func (e *Engine) sumBackwardInvokeDef(b sumEmitter, m *ir.Method, idx int, in *ir.Instr) {
	pushArg := func(pos int) {
		if pos < len(in.Args) && in.Args[pos] != ir.NoReg {
			b.push(m.Ref(), in.Args[pos])
		}
	}
	pushAll := func(from int) {
		for p := from; p < len(in.Args); p++ {
			pushArg(p)
		}
	}
	if mm := e.Model.Lookup(in.Sym); mm != nil {
		switch mm.Kind {
		case semmodel.KGsonToJSON:
			// gson.toJson(obj): the serialized object, not the Gson
			// instance, carries the payload.
			pushArg(1)
		case semmodel.KToString, semmodel.KJSONToString,
			semmodel.KEntityContent, semmodel.KReadStream, semmodel.KRespGetEntity,
			semmodel.KRespBody, semmodel.KRespGetHeader, semmodel.KPassThrough,
			semmodel.KListGet, semmodel.KMapGet, semmodel.KJSONGetStr,
			semmodel.KJSONGetInt, semmodel.KJSONGetBool, semmodel.KJSONGetObj,
			semmodel.KJSONGetArr, semmodel.KJSONArrGet, semmodel.KJSONArrLen,
			semmodel.KOpenConnection, semmodel.KConnGetOutput, semmodel.KConnGetInput,
			semmodel.KXMLGetTag, semmodel.KXMLGetAttr, semmodel.KXMLGetText,
			semmodel.KMultipartBuild:
			pushArg(0)
		case semmodel.KValueOf, semmodel.KURLEncode, semmodel.KJSONParse,
			semmodel.KXMLParse, semmodel.KStringFormatIdentity:
			pushAll(0)
		case semmodel.KStringConcat, semmodel.KAppend:
			pushAll(0)
		case semmodel.KGsonFromJSON:
			pushArg(1)
		case semmodel.KOkBuild:
			pushArg(0)
		case semmodel.KOkNewCall:
			pushArg(1)
		case semmodel.KOkURL, semmodel.KOkPost, semmodel.KOkHeader,
			semmodel.KStreamWrap, semmodel.KMultipartAddPart:
			pushAll(0)
		case semmodel.KResGetString:
			if len(in.Args) >= 2 {
				if key, ok := e.constString(m, idx, in.Args[1]); ok {
					b.heapRead("res:" + key)
				}
			}
		case semmodel.KDBQuery:
			for _, loc := range e.dbLocs(m, idx, in) {
				b.heapRead(loc)
			}
		case semmodel.KExecuteDP:
			// The result of another transaction's DP feeding this value:
			// recorded as an execute statement; inter-transaction analysis
			// pairs the flows.
		default:
			pushAll(0)
		}
		return
	}
	// Application callee: taint its return registers. Each edge is gated on
	// the callee being inside the transaction universe.
	edges := e.appCallees(m, idx)
	if len(edges) == 0 {
		pushAll(0) // unknown method: conservative
		return
	}
	for _, edge := range edges {
		callee := e.Prog.Method(edge.Callee)
		if callee == nil {
			continue
		}
		b.begin(edge.Callee)
		for j := range callee.Instrs {
			ret := &callee.Instrs[j]
			if ret.Op == ir.OpReturn && ret.A != ir.NoReg {
				b.push(edge.Callee, ret.A)
			}
		}
		b.end()
	}
}

// sumBackwardMutation adds statements that mutate the tainted object: calls
// with the object as receiver of a modeled mutator, field stores into it,
// and app calls the object escapes into.
func (e *Engine) sumBackwardMutation(b sumEmitter, m *ir.Method, idx int, in *ir.Instr, reg int) {
	switch in.Op {
	case ir.OpFieldPut:
		if in.A == reg {
			b.include(m, idx)
			b.push(m.Ref(), in.B)
		}
	case ir.OpInvoke:
		argPos := -1
		for p, a := range in.Args {
			if a == reg {
				argPos = p
				break
			}
		}
		if argPos < 0 {
			return
		}
		if mm := e.Model.Lookup(in.Sym); mm != nil {
			if argPos == 0 && isMutator(mm.Kind) {
				b.include(m, idx)
				for p := 1; p < len(in.Args); p++ {
					b.push(m.Ref(), in.Args[p])
				}
			}
			if argPos == 0 && mm.Kind == semmodel.KConnGetOutput && in.Dst != ir.NoReg {
				// The output stream writes into the connection: track it.
				b.include(m, idx)
				b.push(m.Ref(), in.Dst)
			}
			return
		}
		if in.Kind == ir.InvokeSpecial && argPos == 0 {
			// Constructor of an app or unknown class: arguments flow in.
			b.include(m, idx)
			for p := 1; p < len(in.Args); p++ {
				b.push(m.Ref(), in.Args[p])
			}
			return
		}
		// Object escapes into an app callee: follow its parameter there so
		// mutations inside the callee join the slice (universe-gated).
		for _, edge := range e.appCallees(m, idx) {
			callee := e.Prog.Method(edge.Callee)
			if callee == nil {
				continue
			}
			if pr := paramReg(callee, argPos); pr != ir.NoReg {
				b.begin(edge.Callee)
				b.include(m, idx)
				b.push(edge.Callee, pr)
				b.end()
			}
		}
	}
}

// isMutator reports whether calls of this kind change the receiver's
// logical value.
func isMutator(k semmodel.Kind) bool {
	switch k {
	case semmodel.KAppend, semmodel.KHTTPSetEntity, semmodel.KHTTPAddHeader,
		semmodel.KJSONPut, semmodel.KCVPut, semmodel.KListAdd, semmodel.KMapPut,
		semmodel.KConnSetMethod, semmodel.KConnSetHeader, semmodel.KOkURL,
		semmodel.KOkPost, semmodel.KOkHeader, semmodel.KStreamWrite,
		semmodel.KStringBuilderInit, semmodel.KHTTPReqInit, semmodel.KStringEntityInit,
		semmodel.KFormEntityInit, semmodel.KNVPairInit, semmodel.KURLInit,
		semmodel.KStreamWrap, semmodel.KMultipartAddPart:
		return true
	}
	return false
}

// sumBackwardToCallers propagates a tainted parameter to the corresponding
// argument at every call site, including implicit (async) edges. Call edges
// never cross the transaction context — only heap facts may escape it (as
// asynchronous hops) — so every caller-side effect is gated on the caller;
// facts that already escaped (hops > 0) continue in their writer's context.
func (e *Engine) sumBackwardToCallers(b sumEmitter, m *ir.Method, reg int) {
	for _, edge := range e.CG.Callers(m.Ref()) {
		caller := e.Prog.Method(edge.Caller)
		if caller == nil {
			continue
		}
		if edge.Site < 0 {
			// Synthetic chain edge (doInBackground -> onPostExecute):
			// the callee's data parameter is the caller's return value.
			if reg == 1 {
				b.begin(edge.Caller)
				for j := range caller.Instrs {
					ret := &caller.Instrs[j]
					if ret.Op == ir.OpReturn && ret.A != ir.NoReg {
						b.include(caller, j)
						b.push(edge.Caller, ret.A)
					}
				}
				b.end()
			}
			continue
		}
		in := &caller.Instrs[edge.Site]
		base := 0
		if mm := e.Model.Lookup(in.Sym); mm != nil && mm.CallbackMethod != "" {
			base = mm.CallbackArg
		}
		pos := base + reg
		if pos < len(in.Args) && in.Args[pos] != ir.NoReg {
			b.begin(edge.Caller)
			b.include(caller, edge.Site)
			b.push(edge.Caller, in.Args[pos])
			b.end()
		}
	}
}

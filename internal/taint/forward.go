package taint

import (
	"extractocol/internal/ir"
	"extractocol/internal/semmodel"
)

// Forward computes the response slice: all statements deriving data from
// register reg defined at statement origin (the demarcation point's
// response object, or an async callback's response parameter). Standard
// forward propagation rules apply; heap writes record response-originated
// objects for inter-transaction dependency analysis.
//
// Propagation rules live in the buildForward* functions below as transfer
// summaries; the worklist loop replays memoized summaries (see summary.go).
func (e *Engine) Forward(origin StmtID, reg int) *Result {
	e.ensure()
	if e.Legacy {
		return e.legacyForward(origin, reg)
	}
	res := e.newResult()
	w := newDenseWorklist(e.idx)
	res.AddStmt(origin.Method, origin.Index)
	if mid, ok := e.idx.MethodID(origin.Method); ok {
		w.pushLocal(e.idx, mid, int32(reg), 0)
	}
	e.run(w, res, dirForward, origin.Method)
	return res
}

// ForwardFacts runs forward propagation from a prepared set of local facts
// given as (method, register) pairs; used by the pairing analysis, which
// taints URI slices and checks reachability into response slices.
func (e *Engine) ForwardFacts(seeds map[StmtID]int) *Result {
	e.ensure()
	if e.Legacy {
		return e.legacyForwardFacts(seeds)
	}
	res := e.newResult()
	w := newDenseWorklist(e.idx)
	// Seeds are pushed in sorted (method, index) order so the worklist —
	// and with it every fixpoint observable — never depends on map
	// iteration order. The fixpoint site must be deterministic too, for
	// fault probes and diagnostics: the lexicographically first seed method.
	site := "flow-check"
	for _, s := range sortedSeeds(seeds) {
		res.AddStmt(s.Method, s.Index)
		if mid, ok := e.idx.MethodID(s.Method); ok {
			w.pushLocal(e.idx, mid, int32(seeds[s]), 0)
		}
		if site == "flow-check" || s.Method < site {
			site = s.Method
		}
	}
	e.run(w, res, dirForward, site)
	return res
}

// buildForward derives the string-form forward summary of (method, reg)
// for the legacy replay engine; the hot path lowers the same scan straight
// to compiled form through a denseBuilder (see compiledLookup).
func (e *Engine) buildForward(method string, reg int) *methodSummary {
	b := &sumBuilder{e: e}
	e.scanForward(b, method, reg)
	return b.done()
}

// scanForward emits the forward transfer effects of (method, reg) — the
// effects of processing one forward fact for that register — into b.
func (e *Engine) scanForward(b sumEmitter, method string, reg int) {
	m := e.Prog.Method(method)
	if m == nil {
		return
	}
	for i := range m.Instrs {
		in := &m.Instrs[i]
		uses := false
		in.EachUse(func(u int) {
			if u == reg {
				uses = true
			}
		})
		if !uses {
			continue
		}
		switch in.Op {
		case ir.OpMove:
			b.include(m, i)
			b.push(method, in.Dst)
		case ir.OpBinop:
			b.include(m, i)
			b.push(method, in.Dst)
		case ir.OpFieldPut:
			if in.B == reg {
				loc := e.heapLoc(m, in)
				b.include(m, i)
				b.heapWrite(loc)
				b.pushHeap(loc)
			}
		case ir.OpStaticPut:
			if in.B == reg {
				loc := "s:" + in.Sym
				b.include(m, i)
				b.heapWrite(loc)
				b.pushHeap(loc)
			}
		case ir.OpFieldGet:
			// Reading a field of a tainted object yields tainted data.
			b.include(m, i)
			b.push(method, in.Dst)
		case ir.OpReturn:
			b.include(m, i)
			e.sumForwardToCallers(b, m)
		case ir.OpInvoke:
			e.sumForwardInvoke(b, m, i, in, reg)
		}
	}
}

func (e *Engine) sumForwardInvoke(b sumEmitter, m *ir.Method, idx int, in *ir.Instr, reg int) {
	pushDst := func() {
		if in.Dst != ir.NoReg {
			b.push(m.Ref(), in.Dst)
		}
	}
	argPos := -1
	for p, a := range in.Args {
		if a == reg {
			argPos = p
			break
		}
	}
	if mm := e.Model.Lookup(in.Sym); mm != nil {
		switch mm.Kind {
		case semmodel.KAppend:
			// Receiver accumulates; result aliases receiver.
			b.include(m, idx)
			if len(in.Args) > 0 {
				b.push(m.Ref(), in.Args[0])
			}
			pushDst()
		case semmodel.KJSONPut, semmodel.KListAdd, semmodel.KMapPut, semmodel.KCVPut,
			semmodel.KHTTPSetEntity, semmodel.KHTTPAddHeader,
			semmodel.KOkURL, semmodel.KOkPost, semmodel.KOkHeader,
			semmodel.KStreamWrite, semmodel.KStreamWrap, semmodel.KMultipartAddPart,
			semmodel.KHTTPReqInit, semmodel.KStringEntityInit, semmodel.KFormEntityInit,
			semmodel.KNVPairInit, semmodel.KURLInit, semmodel.KSocketInit,
			semmodel.KStringBuilderInit:
			// Value flows into the receiver object.
			b.include(m, idx)
			if argPos > 0 && len(in.Args) > 0 {
				b.push(m.Ref(), in.Args[0])
			}
			pushDst()
		case semmodel.KDBInsert, semmodel.KDBUpdate:
			b.include(m, idx)
			for _, loc := range e.dbLocs(m, idx, in) {
				b.heapWrite(loc)
			}
		case semmodel.KMediaSetSource, semmodel.KFileWrite, semmodel.KUIDisplay:
			// Data consumption endpoint; the include carries the sink tag.
			b.include(m, idx)
		case semmodel.KExecuteDP, semmodel.KEnqueueDP:
			// Tainted data feeding another request: recorded for
			// inter-transaction dependency analysis.
			b.include(m, idx)
		case semmodel.KStringEquals, semmodel.KJSONArrLen:
			// Predicates/lengths: control data, not payload content.
			b.include(m, idx)
		default:
			b.include(m, idx)
			pushDst()
		}
		return
	}
	// Application callee: taint the matching parameter (universe-gated).
	edges := e.appCallees(m, idx)
	if len(edges) == 0 {
		b.include(m, idx)
		pushDst()
		return
	}
	for _, edge := range edges {
		callee := e.Prog.Method(edge.Callee)
		if callee == nil {
			continue
		}
		if pr := paramReg(callee, argPos); pr != ir.NoReg {
			b.begin(edge.Callee)
			b.include(m, idx)
			b.push(edge.Callee, pr)
			b.end()
		}
	}
}

// sumForwardToCallers propagates a tainted return value into each caller's
// destination register, and along synthetic async chains.
func (e *Engine) sumForwardToCallers(b sumEmitter, m *ir.Method) {
	for _, edge := range e.CG.Callees(m.Ref()) {
		if edge.Site == -1 && edge.Implicit {
			// doInBackground -> onPostExecute: return value becomes the
			// first parameter. Chain edges stay inside the task object, so
			// this push is not universe-gated (mirroring the direct rule).
			callee := e.Prog.Method(edge.Callee)
			if callee == nil {
				continue
			}
			if pr := paramReg(callee, 1); pr != ir.NoReg {
				b.push(edge.Callee, pr)
			}
		}
	}
	for _, edge := range e.CG.Callers(m.Ref()) {
		if edge.Site < 0 {
			continue
		}
		caller := e.Prog.Method(edge.Caller)
		if caller == nil {
			continue
		}
		in := &caller.Instrs[edge.Site]
		if in.Dst != ir.NoReg && !edge.Implicit {
			b.begin(edge.Caller)
			b.include(caller, edge.Site)
			b.push(edge.Caller, in.Dst)
			b.end()
		}
	}
}

package taint

import (
	"extractocol/internal/ir"
	"extractocol/internal/semmodel"
)

// Forward computes the response slice: all statements deriving data from
// register reg defined at statement origin (the demarcation point's
// response object, or an async callback's response parameter). Standard
// forward propagation rules apply; heap writes record response-originated
// objects for inter-transaction dependency analysis.
//
// Propagation rules live in the buildForward* functions below as transfer
// summaries; the worklist loop replays memoized summaries (see summary.go).
func (e *Engine) Forward(origin StmtID, reg int) *Result {
	res := newResult()
	w := &worklist{seen: map[fact]bool{}}
	res.Stmts[origin] = true
	w.push(fact{kind: factLocal, method: origin.Method, reg: reg})
	e.run(w, res, dirForward, origin.Method)
	return res
}

// ForwardFacts runs forward propagation from a prepared set of local facts
// given as (method, register) pairs; used by the pairing analysis, which
// taints URI slices and checks reachability into response slices.
func (e *Engine) ForwardFacts(seeds map[StmtID]int) *Result {
	res := newResult()
	w := &worklist{seen: map[fact]bool{}}
	// The fixpoint site must be deterministic for fault probes and
	// diagnostics: use the lexicographically first seed method.
	site := "flow-check"
	for s, reg := range seeds {
		res.Stmts[s] = true
		w.push(fact{kind: factLocal, method: s.Method, reg: reg})
		if site == "flow-check" || s.Method < site {
			site = s.Method
		}
	}
	e.run(w, res, dirForward, site)
	return res
}

// buildForward derives the forward transfer summary of (method, reg): the
// effects of processing one forward fact for that register.
func (e *Engine) buildForward(method string, reg int) *methodSummary {
	b := &sumBuilder{}
	m := e.Prog.Method(method)
	if m == nil {
		return b.done()
	}
	for i := range m.Instrs {
		in := &m.Instrs[i]
		uses := false
		for _, u := range in.Uses() {
			if u == reg {
				uses = true
				break
			}
		}
		if !uses {
			continue
		}
		switch in.Op {
		case ir.OpMove:
			b.include(e.sumInc(m, i))
			b.push(method, in.Dst)
		case ir.OpBinop:
			b.include(e.sumInc(m, i))
			b.push(method, in.Dst)
		case ir.OpFieldPut:
			if in.B == reg {
				loc := e.heapLoc(m, in)
				b.include(e.sumInc(m, i))
				b.heapWrite(loc)
				b.pushHeap(loc)
			}
		case ir.OpStaticPut:
			if in.B == reg {
				loc := "s:" + in.Sym
				b.include(e.sumInc(m, i))
				b.heapWrite(loc)
				b.pushHeap(loc)
			}
		case ir.OpFieldGet:
			// Reading a field of a tainted object yields tainted data.
			b.include(e.sumInc(m, i))
			b.push(method, in.Dst)
		case ir.OpReturn:
			b.include(e.sumInc(m, i))
			e.sumForwardToCallers(b, m)
		case ir.OpInvoke:
			e.sumForwardInvoke(b, m, i, in, reg)
		}
	}
	return b.done()
}

func (e *Engine) sumForwardInvoke(b *sumBuilder, m *ir.Method, idx int, in *ir.Instr, reg int) {
	pushDst := func() {
		if in.Dst != ir.NoReg {
			b.push(m.Ref(), in.Dst)
		}
	}
	argPos := -1
	for p, a := range in.Args {
		if a == reg {
			argPos = p
			break
		}
	}
	if mm := e.Model.Lookup(in.Sym); mm != nil {
		switch mm.Kind {
		case semmodel.KAppend:
			// Receiver accumulates; result aliases receiver.
			b.include(e.sumInc(m, idx))
			if len(in.Args) > 0 {
				b.push(m.Ref(), in.Args[0])
			}
			pushDst()
		case semmodel.KJSONPut, semmodel.KListAdd, semmodel.KMapPut, semmodel.KCVPut,
			semmodel.KHTTPSetEntity, semmodel.KHTTPAddHeader,
			semmodel.KOkURL, semmodel.KOkPost, semmodel.KOkHeader,
			semmodel.KStreamWrite, semmodel.KStreamWrap, semmodel.KMultipartAddPart,
			semmodel.KHTTPReqInit, semmodel.KStringEntityInit, semmodel.KFormEntityInit,
			semmodel.KNVPairInit, semmodel.KURLInit, semmodel.KSocketInit,
			semmodel.KStringBuilderInit:
			// Value flows into the receiver object.
			b.include(e.sumInc(m, idx))
			if argPos > 0 && len(in.Args) > 0 {
				b.push(m.Ref(), in.Args[0])
			}
			pushDst()
		case semmodel.KDBInsert, semmodel.KDBUpdate:
			b.include(e.sumInc(m, idx))
			for _, loc := range e.dbLocs(m, idx, in) {
				b.heapWrite(loc)
			}
		case semmodel.KMediaSetSource, semmodel.KFileWrite, semmodel.KUIDisplay:
			// Data consumption endpoint; the include carries the sink tag.
			b.include(e.sumInc(m, idx))
		case semmodel.KExecuteDP, semmodel.KEnqueueDP:
			// Tainted data feeding another request: recorded for
			// inter-transaction dependency analysis.
			b.include(e.sumInc(m, idx))
		case semmodel.KStringEquals, semmodel.KJSONArrLen:
			// Predicates/lengths: control data, not payload content.
			b.include(e.sumInc(m, idx))
		default:
			b.include(e.sumInc(m, idx))
			pushDst()
		}
		return
	}
	// Application callee: taint the matching parameter (universe-gated).
	edges := e.appCallees(m, idx)
	if len(edges) == 0 {
		b.include(e.sumInc(m, idx))
		pushDst()
		return
	}
	for _, edge := range edges {
		callee := e.Prog.Method(edge.Callee)
		if callee == nil {
			continue
		}
		if pr := paramReg(callee, argPos); pr != ir.NoReg {
			b.gated(edge.Callee, sumEntry{
				includes: []sumInclude{e.sumInc(m, idx)},
				pushes:   []sumPush{{method: edge.Callee, reg: pr}},
			})
		}
	}
}

// sumForwardToCallers propagates a tainted return value into each caller's
// destination register, and along synthetic async chains.
func (e *Engine) sumForwardToCallers(b *sumBuilder, m *ir.Method) {
	for _, edge := range e.CG.Callees(m.Ref()) {
		if edge.Site == -1 && edge.Implicit {
			// doInBackground -> onPostExecute: return value becomes the
			// first parameter. Chain edges stay inside the task object, so
			// this push is not universe-gated (mirroring the direct rule).
			callee := e.Prog.Method(edge.Callee)
			if callee == nil {
				continue
			}
			if pr := paramReg(callee, 1); pr != ir.NoReg {
				b.push(edge.Callee, pr)
			}
		}
	}
	for _, edge := range e.CG.Callers(m.Ref()) {
		if edge.Site < 0 {
			continue
		}
		caller := e.Prog.Method(edge.Caller)
		if caller == nil {
			continue
		}
		in := &caller.Instrs[edge.Site]
		if in.Dst != ir.NoReg && !edge.Implicit {
			b.gated(edge.Caller, sumEntry{
				includes: []sumInclude{e.sumInc(caller, edge.Site)},
				pushes:   []sumPush{{method: edge.Caller, reg: in.Dst}},
			})
		}
	}
}

package taint

import (
	"extractocol/internal/ir"
	"extractocol/internal/obs"
	"extractocol/internal/semmodel"
)

// Forward computes the response slice: all statements deriving data from
// register reg defined at statement origin (the demarcation point's
// response object, or an async callback's response parameter). Standard
// forward propagation rules apply; heap writes record response-originated
// objects for inter-transaction dependency analysis.
func (e *Engine) Forward(origin StmtID, reg int) *Result {
	res := newResult()
	w := &worklist{seen: map[fact]bool{}}
	res.Stmts[origin] = true
	w.push(fact{kind: factLocal, method: origin.Method, reg: reg})
	for {
		f, ok := w.pop()
		if !ok {
			break
		}
		e.Stats.Add(obs.CtrTaintFacts, 1)
		switch f.kind {
		case factLocal:
			e.forwardLocal(f, res, w)
		case factHeap:
			e.forwardHeap(f, res, w)
		}
	}
	return res
}

// ForwardFacts runs forward propagation from a prepared set of local facts
// given as (method, register) pairs; used by the pairing analysis, which
// taints URI slices and checks reachability into response slices.
func (e *Engine) ForwardFacts(seeds map[StmtID]int) *Result {
	res := newResult()
	w := &worklist{seen: map[fact]bool{}}
	for s, reg := range seeds {
		res.Stmts[s] = true
		w.push(fact{kind: factLocal, method: s.Method, reg: reg})
	}
	for {
		f, ok := w.pop()
		if !ok {
			break
		}
		e.Stats.Add(obs.CtrTaintFacts, 1)
		switch f.kind {
		case factLocal:
			e.forwardLocal(f, res, w)
		case factHeap:
			e.forwardHeap(f, res, w)
		}
	}
	return res
}

func (e *Engine) forwardLocal(f fact, res *Result, w *worklist) {
	m := e.Prog.Method(f.method)
	if m == nil {
		return
	}
	for i := range m.Instrs {
		in := &m.Instrs[i]
		uses := false
		for _, u := range in.Uses() {
			if u == f.reg {
				uses = true
				break
			}
		}
		if !uses {
			continue
		}
		switch in.Op {
		case ir.OpMove:
			e.include(m, i, in, res)
			w.push(fact{kind: factLocal, method: f.method, reg: in.Dst, hops: f.hops})
		case ir.OpBinop:
			e.include(m, i, in, res)
			w.push(fact{kind: factLocal, method: f.method, reg: in.Dst, hops: f.hops})
		case ir.OpFieldPut:
			if in.B == f.reg {
				loc := e.heapLoc(m, in)
				e.include(m, i, in, res)
				res.HeapWrites[loc] = true
				w.push(fact{kind: factHeap, loc: loc, hops: f.hops})
			}
		case ir.OpStaticPut:
			if in.B == f.reg {
				loc := "s:" + in.Sym
				e.include(m, i, in, res)
				res.HeapWrites[loc] = true
				w.push(fact{kind: factHeap, loc: loc, hops: f.hops})
			}
		case ir.OpFieldGet:
			// Reading a field of a tainted object yields tainted data.
			e.include(m, i, in, res)
			w.push(fact{kind: factLocal, method: f.method, reg: in.Dst, hops: f.hops})
		case ir.OpReturn:
			e.include(m, i, in, res)
			e.forwardToCallers(m, f, res, w)
		case ir.OpInvoke:
			e.forwardInvoke(m, i, in, f, res, w)
		}
	}
}

func (e *Engine) forwardInvoke(m *ir.Method, idx int, in *ir.Instr, f fact, res *Result, w *worklist) {
	pushDst := func() {
		if in.Dst != ir.NoReg {
			w.push(fact{kind: factLocal, method: f.method, reg: in.Dst, hops: f.hops})
		}
	}
	argPos := -1
	for p, a := range in.Args {
		if a == f.reg {
			argPos = p
			break
		}
	}
	if mm := e.Model.Lookup(in.Sym); mm != nil {
		switch mm.Kind {
		case semmodel.KAppend:
			// Receiver accumulates; result aliases receiver.
			e.include(m, idx, in, res)
			if len(in.Args) > 0 {
				w.push(fact{kind: factLocal, method: f.method, reg: in.Args[0], hops: f.hops})
			}
			pushDst()
		case semmodel.KJSONPut, semmodel.KListAdd, semmodel.KMapPut, semmodel.KCVPut,
			semmodel.KHTTPSetEntity, semmodel.KHTTPAddHeader,
			semmodel.KOkURL, semmodel.KOkPost, semmodel.KOkHeader,
			semmodel.KStreamWrite,
			semmodel.KHTTPReqInit, semmodel.KStringEntityInit, semmodel.KFormEntityInit,
			semmodel.KNVPairInit, semmodel.KURLInit, semmodel.KSocketInit,
			semmodel.KStringBuilderInit:
			// Value flows into the receiver object.
			e.include(m, idx, in, res)
			if argPos > 0 && len(in.Args) > 0 {
				w.push(fact{kind: factLocal, method: f.method, reg: in.Args[0], hops: f.hops})
			}
			pushDst()
		case semmodel.KDBInsert, semmodel.KDBUpdate:
			e.include(m, idx, in, res)
			for _, loc := range e.dbLocs(m, idx, in) {
				res.HeapWrites[loc] = true
			}
		case semmodel.KMediaSetSource:
			e.include(m, idx, in, res)
			res.Sinks[mm.Sink] = true
		case semmodel.KFileWrite, semmodel.KUIDisplay:
			e.include(m, idx, in, res)
			res.Sinks[mm.Sink] = true
		case semmodel.KExecuteDP, semmodel.KEnqueueDP:
			// Tainted data feeding another request: recorded for
			// inter-transaction dependency analysis.
			e.include(m, idx, in, res)
		case semmodel.KStringEquals, semmodel.KJSONArrLen:
			// Predicates/lengths: control data, not payload content.
			e.include(m, idx, in, res)
		default:
			e.include(m, idx, in, res)
			pushDst()
		}
		return
	}
	// Application callee.
	edges := e.appCallees(m, idx)
	if len(edges) == 0 {
		e.include(m, idx, in, res)
		pushDst()
		return
	}
	for _, edge := range edges {
		callee := e.Prog.Method(edge.Callee)
		if callee == nil {
			continue
		}
		if !e.inUniverse(edge.Callee) && f.hops == 0 {
			continue
		}
		hops := f.hops
		base := 0
		if mmReg := e.Model.Lookup(in.Sym); mmReg != nil && mmReg.CallbackMethod != "" {
			base = mmReg.CallbackArg
		}
		pos := argPos - base
		if pr := paramReg(callee, pos); pr != ir.NoReg {
			e.include(m, idx, in, res)
			w.push(fact{kind: factLocal, method: edge.Callee, reg: pr, hops: hops})
		}
	}
}

// forwardToCallers propagates a tainted return value into each caller's
// destination register, and along synthetic async chains.
func (e *Engine) forwardToCallers(m *ir.Method, f fact, res *Result, w *worklist) {
	for _, edge := range e.CG.Callees(m.Ref()) {
		if edge.Site == -1 && edge.Implicit {
			// doInBackground -> onPostExecute: return value becomes the
			// first parameter.
			callee := e.Prog.Method(edge.Callee)
			if callee == nil {
				continue
			}
			if pr := paramReg(callee, 1); pr != ir.NoReg {
				w.push(fact{kind: factLocal, method: edge.Callee, reg: pr, hops: f.hops})
			}
		}
	}
	for _, edge := range e.CG.Callers(m.Ref()) {
		if edge.Site < 0 {
			continue
		}
		caller := e.Prog.Method(edge.Caller)
		if caller == nil {
			continue
		}
		if !e.inUniverse(edge.Caller) && f.hops == 0 {
			continue
		}
		hops := f.hops
		in := &caller.Instrs[edge.Site]
		if in.Dst != ir.NoReg && !edge.Implicit {
			e.include(caller, edge.Site, in, res)
			w.push(fact{kind: factLocal, method: edge.Caller, reg: in.Dst, hops: hops})
		}
	}
}

// forwardHeap propagates a heap fact to every reader of the location.
func (e *Engine) forwardHeap(f fact, res *Result, w *worklist) {
	for _, c := range e.Prog.AppClasses() {
		for _, m := range c.Methods {
			hops := f.hops
			if !e.inUniverse(m.Ref()) {
				hops = f.hops + 1
				if hops > e.MaxAsyncHops {
					continue
				}
			}
			for i := range m.Instrs {
				in := &m.Instrs[i]
				switch in.Op {
				case ir.OpFieldGet:
					if e.heapLoc(m, in) == f.loc {
						e.include(m, i, in, res)
						w.push(fact{kind: factLocal, method: m.Ref(), reg: in.Dst, hops: hops})
					}
				case ir.OpStaticGet:
					if "s:"+in.Sym == f.loc {
						e.include(m, i, in, res)
						w.push(fact{kind: factLocal, method: m.Ref(), reg: in.Dst, hops: hops})
					}
				}
			}
		}
	}
}

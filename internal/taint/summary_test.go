package taint

import (
	"sync"
	"testing"

	"extractocol/internal/callgraph"
	"extractocol/internal/ir"
	"extractocol/internal/obs"
	"extractocol/internal/semmodel"
)

// sharedHelperApp: two click handlers call a common buildAndFetch helper
// with different constant URIs, and a third field-mediated flow crosses an
// async boundary. This exercises universe-gated summary entries (the helper
// is summarized once but replayed under two different universes) and the
// heap access index.
func sharedHelperApp() *ir.Program {
	p := ir.NewProgram("t.sum")
	c := p.AddClass(&ir.Class{
		Name:   "t.sum.A",
		Fields: []*ir.Field{{Name: "token", Type: "java.lang.String"}},
	})

	helper := ir.NewMethod(c, "buildAndFetch", false, []string{"java.lang.String"}, "java.lang.String")
	uri := 1 // first declared parameter register
	req := helper.New("org.apache.http.client.methods.HttpGet")
	helper.InvokeSpecial(getInit, req, uri)
	cl := helper.New("org.apache.http.impl.client.DefaultHttpClient")
	helper.InvokeSpecial(clInit, cl)
	resp := helper.Invoke(execRef, cl, req)
	ent := helper.Invoke(getEnt, resp)
	body := helper.InvokeStatic(entCont, ent)
	helper.Return(body)
	helper.Done()

	h1 := ir.NewMethod(c, "onClickOne", false, nil, "void")
	u1 := h1.ConstStr("https://s.example.com/one")
	b1 := h1.Invoke("t.sum.A.buildAndFetch", h1.This(), u1)
	h1.FieldPut(h1.This(), "token", b1)
	h1.ReturnVoid()
	h1.Done()

	h2 := ir.NewMethod(c, "onClickTwo", false, nil, "void")
	u2 := h2.ConstStr("https://s.example.com/two")
	h2.Invoke("t.sum.A.buildAndFetch", h2.This(), u2)
	h2.ReturnVoid()
	h2.Done()

	p.Manifest.EntryPoints = []ir.EntryPoint{
		{Method: "t.sum.A.onClickOne", Kind: ir.EventClick},
		{Method: "t.sum.A.onClickTwo", Kind: ir.EventClick},
	}
	return p
}

type sliceQuery struct {
	universe string // entry point restricting the universe; "" = unrestricted
	dp       StmtID
	reg      int
	forward  bool
}

func runQueries(t *testing.T, p *ir.Program, model *semmodel.Model,
	cg *callgraph.Graph, qs []sliceQuery, shared *SummaryCache) []*Result {

	t.Helper()
	var out []*Result
	for _, q := range qs {
		eng := NewEngine(p, model, cg)
		eng.MaxAsyncHops = 1
		if q.universe != "" {
			eng.Universe = cg.ReachableBits(q.universe)
		}
		if shared != nil {
			eng.Summaries = shared
		}
		if q.forward {
			out = append(out, eng.Forward(q.dp, q.reg))
		} else {
			out = append(out, eng.Backward(q.dp, q.reg))
		}
	}
	return out
}

// A shared summary cache must be transparent: replaying summaries built
// under one universe for engines running under another (or none) yields
// exactly the slices fresh engines compute, because universe gates are
// recorded in the summary and resolved at replay time.
func TestSharedSummaryCacheEquivalence(t *testing.T) {
	p := sharedHelperApp()
	model := semmodel.Default()
	cg := callgraph.Build(p, model)

	m := p.Method("t.sum.A.buildAndFetch")
	exec := findInvoke(m, execRef)
	dp := StmtID{Method: "t.sum.A.buildAndFetch", Index: exec}
	reqReg := m.Instrs[exec].Args[1]
	respReg := m.Instrs[exec].Dst

	qs := []sliceQuery{
		{universe: "t.sum.A.onClickOne", dp: dp, reg: reqReg},
		{universe: "t.sum.A.onClickTwo", dp: dp, reg: reqReg},
		{universe: "", dp: dp, reg: reqReg}, // pairing-style, unrestricted
		{universe: "t.sum.A.onClickOne", dp: dp, reg: respReg, forward: true},
		{universe: "t.sum.A.onClickTwo", dp: dp, reg: respReg, forward: true},
	}

	fresh := runQueries(t, p, model, cg, qs, nil)
	shared := NewSummaryCache()
	cached := runQueries(t, p, model, cg, qs, shared)

	for i := range qs {
		if !sameResult(fresh[i], cached[i]) {
			t.Errorf("query %d (%+v): shared-cache slice differs\nfresh:  %+v\ncached: %+v",
				i, qs[i], fresh[i], cached[i])
		}
	}
	// Contexts must actually differ (the gate is doing work): the two
	// backward slices include different click handlers.
	if fresh[0].Stmts().Equal(fresh[1].Stmts()) {
		t.Error("slices under different universes are identical; gating untested")
	}

	col := obs.NewCollector()
	shared.DrainCounters(col)
	prof := col.Snapshot()
	if prof.Counter(obs.CtrCacheSummaryMisses) == 0 {
		t.Error("no summary misses recorded")
	}
	if prof.Counter(obs.CtrCacheSummaryHits) == 0 {
		t.Error("no summary hits recorded: queries 2..5 should reuse query 1's summaries")
	}
}

// The engine's per-call private cache (installed by NewEngine) must also
// leave results identical across repeated queries on one engine.
func TestPrivateSummaryCacheRepeatedQueries(t *testing.T) {
	p := sharedHelperApp()
	model := semmodel.Default()
	cg := callgraph.Build(p, model)
	m := p.Method("t.sum.A.buildAndFetch")
	exec := findInvoke(m, execRef)
	dp := StmtID{Method: "t.sum.A.buildAndFetch", Index: exec}
	reg := m.Instrs[exec].Args[1]

	eng := NewEngine(p, model, cg)
	eng.Universe = cg.ReachableBits("t.sum.A.onClickOne")
	r1 := eng.Backward(dp, reg)
	r2 := eng.Backward(dp, reg)
	if !sameResult(r1, r2) {
		t.Error("repeated query on one engine differs")
	}
}

// Concurrent engines sharing one cache (the slice worker pool shape) must
// be race-free and produce the same slices as serial execution. Run under
// -race via ci.sh.
func TestSharedSummaryCacheConcurrent(t *testing.T) {
	p := sharedHelperApp()
	model := semmodel.Default()
	cg := callgraph.Build(p, model)
	m := p.Method("t.sum.A.buildAndFetch")
	exec := findInvoke(m, execRef)
	dp := StmtID{Method: "t.sum.A.buildAndFetch", Index: exec}
	reg := m.Instrs[exec].Args[1]

	want := runQueries(t, p, model, cg,
		[]sliceQuery{{universe: "t.sum.A.onClickOne", dp: dp, reg: reg}}, nil)[0]

	shared := NewSummaryCache()
	var wg sync.WaitGroup
	results := make([]*Result, 8)
	for w := range results {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			eng := NewEngine(p, model, cg)
			eng.MaxAsyncHops = 1
			eng.Universe = cg.ReachableBits("t.sum.A.onClickOne")
			eng.Summaries = shared
			results[w] = eng.Backward(dp, reg)
		}(w)
	}
	wg.Wait()
	for w, got := range results {
		if !sameResult(want, got) {
			t.Errorf("worker %d slice differs from serial", w)
		}
	}
}

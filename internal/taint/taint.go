// Package taint implements the bi-directional static taint propagation at
// the heart of Extractocol (§3.1). Starting from demarcation points, the
// engine tracks every operation on network-I/O-bound objects:
//
//   - backward propagation collects the statements that construct a request
//     (URI, method, headers, body) — inverted propagation rules over the
//     reversed control flow, with taint killed at definitions;
//   - forward propagation collects the statements that process a response;
//   - heap facts (instance fields, static fields, SQLite rows, Android
//     resources) bridge asynchronous events: a request fragment built in a
//     location callback and consumed by a click handler is connected by
//     backward-propagating from the setter statements (§3.4). The number of
//     asynchronous hops crossed is bounded by MaxAsyncHops, reproducing the
//     paper's single-hop limitation.
//
// Unlike classic taint analysis, which only decides reachability from
// source to sink, this engine records *all* statements touching tainted
// objects — omitting even one would corrupt the reconstructed signature.
package taint

import (
	"sort"

	"extractocol/internal/budget"
	"extractocol/internal/callgraph"
	"extractocol/internal/ir"
	"extractocol/internal/obs"
	"extractocol/internal/semmodel"
)

// StmtID identifies one instruction in the program.
type StmtID struct {
	Method string
	Index  int
}

// Result is a program slice: the statement set plus the heap locations and
// data endpoints touched while tainted.
type Result struct {
	Stmts map[StmtID]bool
	// HeapReads are heap locations whose value flows into the slice
	// (request-originating objects, for backward slices).
	HeapReads map[string]bool
	// HeapWrites are heap locations written from tainted data
	// (response-originated objects, for forward slices).
	HeapWrites map[string]bool
	// Sinks are data consumption endpoints reached ("media", "file", "ui").
	Sinks map[string]bool
	// Sources are data origins observed in the slice ("microphone", ...).
	Sources map[string]bool
	// Truncated is non-nil when a budget limit stopped propagation before
	// the fixpoint completed: the slice is partial and must not feed
	// signature construction.
	Truncated *budget.Exceeded
}

func newResult() *Result {
	return &Result{
		Stmts:      map[StmtID]bool{},
		HeapReads:  map[string]bool{},
		HeapWrites: map[string]bool{},
		Sinks:      map[string]bool{},
		Sources:    map[string]bool{},
	}
}

// Methods returns the sorted set of methods contributing statements.
func (r *Result) Methods() []string {
	set := map[string]bool{}
	for s := range r.Stmts {
		set[s.Method] = true
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Contains reports whether the statement is part of the slice.
func (r *Result) Contains(method string, index int) bool {
	return r.Stmts[StmtID{method, index}]
}

// Size returns the number of statements in the slice.
func (r *Result) Size() int { return len(r.Stmts) }

// Merge unions o into r.
func (r *Result) Merge(o *Result) {
	for k := range o.Stmts {
		r.Stmts[k] = true
	}
	for k := range o.HeapReads {
		r.HeapReads[k] = true
	}
	for k := range o.HeapWrites {
		r.HeapWrites[k] = true
	}
	for k := range o.Sinks {
		r.Sinks[k] = true
	}
	for k := range o.Sources {
		r.Sources[k] = true
	}
	if r.Truncated == nil {
		r.Truncated = o.Truncated
	}
}

// Engine performs taint propagation over one program.
type Engine struct {
	Prog  *ir.Program
	Model *semmodel.Model
	CG    *callgraph.Graph

	// MaxAsyncHops bounds how many asynchronous event boundaries a heap
	// fact may cross: 0 disables the §3.4 heuristic (the paper's setting
	// for open-source apps), 1 is the paper's closed-source setting.
	MaxAsyncHops int

	// Universe, when non-nil, restricts propagation to the given methods
	// (the per-entry-point context used for transaction separation). Heap
	// facts may escape the universe at the cost of one async hop.
	Universe map[string]bool

	// Stats receives workload counters (facts processed, statements
	// included). The shard is unsynchronized: it must be owned by the
	// engine's goroutine. Nil disables counting.
	Stats *obs.Shard

	// Summaries memoizes per-(method, register) transfer summaries and the
	// program-wide heap access index (see summary.go). NewEngine installs a
	// private cache; callers analyzing many slices over one program should
	// install a shared one so later slices reuse earlier traversals.
	Summaries *SummaryCache

	// Budget, when non-nil, bounds every fixpoint this engine runs: the
	// worklist polls it at the loop head and stops with Result.Truncated
	// set once a limit trips. Nil means unlimited.
	Budget *budget.Budget
	// BudgetPhase labels budget errors from this engine's fixpoints
	// ("slice" draws from the shared slice-step pool, "pairing" does not);
	// empty defaults to "taint".
	BudgetPhase string
}

// NewEngine creates an engine with the given configuration.
func NewEngine(p *ir.Program, model *semmodel.Model, cg *callgraph.Graph) *Engine {
	return &Engine{Prog: p, Model: model, CG: cg, MaxAsyncHops: 1,
		Summaries: NewSummaryCache()}
}

// types returns m's register types via the call graph's memoized inference
// (shared across every engine over the program).
func (e *Engine) types(m *ir.Method) []string {
	if e.CG != nil {
		return e.CG.Types(m)
	}
	return callgraph.InferTypes(e.Prog, m)
}

func (e *Engine) inUniverse(method string) bool {
	return e.Universe == nil || e.Universe[method]
}

// direction selects which transfer summaries a worklist run consults.
type direction uint8

const (
	dirBackward direction = iota
	dirForward
)

// budgetPhase is the phase label for this engine's budget accounting.
func (e *Engine) budgetPhase() string {
	if e.BudgetPhase != "" {
		return e.BudgetPhase
	}
	return budget.PhaseTaint
}

// run drains the worklist, replaying the memoized transfer summary (or heap
// access index) for each popped fact. site names the fixpoint (the slicing
// origin's method) for budget errors and fault probes. When a budget limit
// trips mid-run the partial result is marked Truncated and returned as-is.
func (e *Engine) run(w *worklist, res *Result, dir direction, site string) {
	sums := e.Summaries
	if sums == nil {
		sums = NewSummaryCache()
		e.Summaries = sums
	}
	// One span per fixpoint run, nested inside the job span of whichever
	// worker owns this engine's shard. Free when tracing is off.
	cat := obs.CatTaintBackward
	if dir == dirForward {
		cat = obs.CatTaintForward
	}
	sp := e.Stats.Span(cat, site)
	defer sp.End()
	ck := e.Budget.Checker(e.budgetPhase(), site)
	e.Budget.MaybePanic(budget.PhaseTaint, site)
	if e.Budget.Hang(budget.PhaseTaint, site) {
		// Injected divergence: spin through the checker so the hang is
		// observable yet stoppable by any armed deadline or step budget.
		for {
			if err := ck.Step(); err != nil {
				res.Truncated = ck.Exceeded()
				return
			}
		}
	}
	for {
		if err := ck.Step(); err != nil {
			res.Truncated = ck.Exceeded()
			return
		}
		f, ok := w.pop()
		if !ok {
			break
		}
		e.Stats.Add(obs.CtrTaintFacts, 1)
		switch f.kind {
		case factLocal:
			var s *methodSummary
			if dir == dirBackward {
				s = sums.backward(e, f.method, f.reg)
			} else {
				s = sums.forward(e, f.method, f.reg)
			}
			e.applySummary(s, f, res, w)
		case factHeap:
			var sites []heapSite
			if dir == dirBackward {
				sites = sums.heapWriters(e, f.loc)
			} else {
				sites = sums.heapReaders(e, f.loc)
			}
			e.applyHeapSites(sites, f, res, w)
		}
	}
}

type factKind uint8

const (
	factLocal factKind = iota
	factHeap
)

type fact struct {
	kind   factKind
	method string // local facts: owning method
	reg    int    // local facts: register
	loc    string // heap facts: location id
	hops   int    // async hops consumed so far
}

type worklist struct {
	items []fact
	seen  map[fact]bool
}

func (w *worklist) push(f fact) {
	// Deduplicate ignoring hops: keep the lowest-hop visit.
	key := f
	key.hops = 0
	if w.seen[key] {
		return
	}
	w.seen[key] = true
	w.items = append(w.items, f)
}

func (w *worklist) pop() (fact, bool) {
	if len(w.items) == 0 {
		return fact{}, false
	}
	f := w.items[len(w.items)-1]
	w.items = w.items[:len(w.items)-1]
	return f, true
}

// heapLoc computes the heap location id for a field access: the inferred
// class of the base object joined with the field name.
func (e *Engine) heapLoc(m *ir.Method, in *ir.Instr) string {
	types := e.types(m)
	base := m.Class.Name
	if in.A >= 0 && in.A < len(types) && types[in.A] != "" {
		base = types[in.A]
	}
	return "f:" + base + "." + in.Sym
}

// constString resolves the constant string feeding register reg at
// instruction site, by scanning backward for its most recent definition.
// It follows one move and resolves APK resources. ok is false when the
// value is not a compile-time constant.
func (e *Engine) constString(m *ir.Method, site, reg int) (string, bool) {
	for i := site - 1; i >= 0; i-- {
		in := &m.Instrs[i]
		if in.Def() != reg {
			continue
		}
		switch in.Op {
		case ir.OpConstStr:
			return in.Str, true
		case ir.OpMove:
			return e.constString(m, i, in.A)
		case ir.OpInvoke:
			if mm := e.Model.Lookup(in.Sym); mm != nil && mm.Kind == semmodel.KResGetString && len(in.Args) >= 2 {
				if key, ok := e.constString(m, i, in.Args[1]); ok {
					if v, present := e.Prog.Resources[key]; present {
						return v, true
					}
					return "", false
				}
			}
			return "", false
		default:
			return "", false
		}
	}
	return "", false
}

// dbLocs derives SQLite heap locations for a DB call: one per constant
// column name put into the ContentValues argument (writes) or per constant
// column argument (reads).
func (e *Engine) dbLocs(m *ir.Method, site int, in *ir.Instr) []string {
	mm := e.Model.Lookup(in.Sym)
	if mm == nil || len(in.Args) < 2 {
		return nil
	}
	table, ok := e.constString(m, site, in.Args[1])
	if !ok {
		table = "*"
	}
	switch mm.Kind {
	case semmodel.KDBQuery:
		if len(in.Args) >= 3 {
			if col, ok := e.constString(m, site, in.Args[2]); ok {
				return []string{"db:" + table + "." + col}
			}
		}
		return []string{"db:" + table + ".*"}
	case semmodel.KDBInsert, semmodel.KDBUpdate:
		if len(in.Args) < 3 {
			return nil
		}
		valuesReg := in.Args[2]
		var locs []string
		for i := 0; i < site; i++ {
			put := &m.Instrs[i]
			if put.Op != ir.OpInvoke || len(put.Args) < 3 || put.Args[0] != valuesReg {
				continue
			}
			pm := e.Model.Lookup(put.Sym)
			if pm == nil || pm.Kind != semmodel.KCVPut {
				continue
			}
			if col, ok := e.constString(m, i, put.Args[1]); ok {
				locs = append(locs, "db:"+table+"."+col)
			}
		}
		if len(locs) == 0 {
			locs = []string{"db:" + table + ".*"}
		}
		return locs
	}
	return nil
}

// paramReg maps a parameter position (receiver = 0 for instance methods,
// then declared parameters) to a register of m, or NoReg.
func paramReg(m *ir.Method, pos int) int {
	if pos < 0 || pos >= m.NumParamRegs() {
		return ir.NoReg
	}
	return pos
}

// appCallees returns the app methods the call at (m, site) may invoke.
func (e *Engine) appCallees(m *ir.Method, site int) []callgraph.Edge {
	return e.CG.CalleesAt(m.Ref(), site)
}

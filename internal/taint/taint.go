// Package taint implements the bi-directional static taint propagation at
// the heart of Extractocol (§3.1). Starting from demarcation points, the
// engine tracks every operation on network-I/O-bound objects:
//
//   - backward propagation collects the statements that construct a request
//     (URI, method, headers, body) — inverted propagation rules over the
//     reversed control flow, with taint killed at definitions;
//   - forward propagation collects the statements that process a response;
//   - heap facts (instance fields, static fields, SQLite rows, Android
//     resources) bridge asynchronous events: a request fragment built in a
//     location callback and consumed by a click handler is connected by
//     backward-propagating from the setter statements (§3.4). The number of
//     asynchronous hops crossed is bounded by MaxAsyncHops, reproducing the
//     paper's single-hop limitation.
//
// Unlike classic taint analysis, which only decides reachability from
// source to sink, this engine records *all* statements touching tainted
// objects — omitting even one would corrupt the reconstructed signature.
//
// The hot path works entirely on dense IDs: statements and register slots
// are addressed through the program's ir.Index, heap locations and
// source/sink tags through an interned symbol table shared via the
// SummaryCache, and every set (slice statements, worklist dedup, universe)
// is an intern.Bits bitset. Strings only appear at the boundaries: summary
// construction (cold, memoized) and the Result accessors consumed by the
// report layer. The pre-interning string/map replay survives in legacy.go
// behind Engine.Legacy as the differential-testing oracle.
package taint

import (
	"sort"

	"extractocol/internal/budget"
	"extractocol/internal/callgraph"
	"extractocol/internal/intern"
	"extractocol/internal/ir"
	"extractocol/internal/obs"
	"extractocol/internal/semmodel"
)

// StmtID identifies one instruction in the program.
type StmtID struct {
	Method string
	Index  int
}

// Result is a program slice: the statement set plus the heap locations and
// data endpoints touched while tainted. Statements are a dense bitset over
// the program index; heap locations and source/sink tags are interned
// through the shared symbol table. Accessors resolve back to strings at the
// report boundary.
type Result struct {
	idx *ir.Index
	tab *intern.SyncTable

	// The five sets are embedded by value — a result is one allocation
	// (plus lazy bitset words) on a path that creates two per transaction.
	stmts      intern.Bits // dense statement IDs (ir.Index space)
	heapReads  intern.Bits // interned heap location IDs
	heapWrites intern.Bits
	sinks      intern.Bits // interned sink tags
	sources    intern.Bits // interned source tags

	// Truncated is non-nil when a budget limit stopped propagation before
	// the fixpoint completed: the slice is partial and must not feed
	// signature construction.
	Truncated *budget.Exceeded
}

// NewResult returns an empty slice over the given program index and symbol
// table. idx may be nil only for results that never hold statements.
func NewResult(idx *ir.Index, tab *intern.SyncTable) *Result {
	r := &Result{idx: idx, tab: tab}
	if idx != nil {
		r.stmts = *intern.NewBits(idx.NumStmts())
	}
	if tab == nil {
		r.tab = &intern.SyncTable{}
	}
	return r
}

// Index returns the program index the statement set is addressed through.
func (r *Result) Index() *ir.Index { return r.idx }

// Stmts returns the live dense statement set. It iterates in program order;
// mutations (slice augmentation) write straight into the slice.
func (r *Result) Stmts() *intern.Bits { return &r.stmts }

// AddStmt adds one statement by (method ref, instruction index), reporting
// whether it was newly added. Unknown methods and out-of-range indexes are
// ignored — a dense ID must never alias into a neighboring method's range.
func (r *Result) AddStmt(method string, index int) bool {
	mid, ok := r.idx.MethodID(method)
	if !ok || index < 0 || index >= len(r.idx.MethodAt(mid).Instrs) {
		return false
	}
	return r.stmts.Add(r.idx.StmtID(mid, index))
}

// AddHeapRead records a heap location whose value flows into the slice.
func (r *Result) AddHeapRead(loc string) { r.heapReads.Add(r.tab.Intern(loc)) }

// AddHeapWrite records a heap location written from tainted data.
func (r *Result) AddHeapWrite(loc string) { r.heapWrites.Add(r.tab.Intern(loc)) }

// AddSink records a data consumption endpoint ("media", "file", "ui").
func (r *Result) AddSink(tag string) { r.sinks.Add(r.tab.Intern(tag)) }

// AddSource records a data origin ("microphone", ...).
func (r *Result) AddSource(tag string) { r.sources.Add(r.tab.Intern(tag)) }

// Contains reports whether the statement is part of the slice.
func (r *Result) Contains(method string, index int) bool {
	mid, ok := r.idx.MethodID(method)
	if !ok || index < 0 || index >= len(r.idx.MethodAt(mid).Instrs) {
		return false
	}
	return r.stmts.Has(r.idx.StmtID(mid, index))
}

// Size returns the number of statements in the slice.
func (r *Result) Size() int { return r.stmts.Count() }

// EachStmt walks the slice statements in program order, resolving each to
// its method body and instruction index; f returning false stops the walk.
func (r *Result) EachStmt(f func(m *ir.Method, index int) bool) {
	r.idx.EachStmt(&r.stmts, func(m *ir.Method, _ uint32, idx int) bool {
		return f(m, idx)
	})
}

// Methods returns the sorted set of methods contributing statements.
func (r *Result) Methods() []string {
	var out []string
	last := uint32(intern.None)
	r.idx.EachStmt(&r.stmts, func(m *ir.Method, id uint32, _ int) bool {
		// Iteration is grouped by method, so a change of method ID marks a
		// new distinct method.
		if id != last {
			out = append(out, m.Ref())
			last = id
		}
		return true
	})
	sort.Strings(out)
	return out
}

// HeapReads returns the sorted heap locations read by the slice.
func (r *Result) HeapReads() []string { return intern.SortedStrings(&r.heapReads, r.tab) }

// HeapWrites returns the sorted heap locations written by the slice.
func (r *Result) HeapWrites() []string { return intern.SortedStrings(&r.heapWrites, r.tab) }

// Sinks returns the sorted data consumption endpoints reached.
func (r *Result) Sinks() []string { return intern.SortedStrings(&r.sinks, r.tab) }

// Sources returns the sorted data origins observed.
func (r *Result) Sources() []string { return intern.SortedStrings(&r.sources, r.tab) }

// Merge unions o into r. Both results must address the same program through
// the same index and symbol table (they come from engines sharing one
// SummaryCache); r adopts o's when it has none.
func (r *Result) Merge(o *Result) {
	if r.idx == nil {
		r.idx = o.idx
	}
	if r.tab == nil {
		r.tab = o.tab
	}
	r.stmts.Union(&o.stmts)
	r.heapReads.Union(&o.heapReads)
	r.heapWrites.Union(&o.heapWrites)
	r.sinks.Union(&o.sinks)
	r.sources.Union(&o.sources)
	if r.Truncated == nil {
		r.Truncated = o.Truncated
	}
}

// Clone returns an independent copy sharing the (immutable) index and
// symbol table.
func (r *Result) Clone() *Result {
	return &Result{
		idx:        r.idx,
		tab:        r.tab,
		stmts:      *r.stmts.Clone(),
		heapReads:  *r.heapReads.Clone(),
		heapWrites: *r.heapWrites.Clone(),
		sinks:      *r.sinks.Clone(),
		sources:    *r.sources.Clone(),
		Truncated:  r.Truncated,
	}
}

// Engine performs taint propagation over one program.
type Engine struct {
	Prog  *ir.Program
	Model *semmodel.Model
	CG    *callgraph.Graph

	// MaxAsyncHops bounds how many asynchronous event boundaries a heap
	// fact may cross: 0 disables the §3.4 heuristic (the paper's setting
	// for open-source apps), 1 is the paper's closed-source setting.
	MaxAsyncHops int

	// Universe, when non-nil, restricts propagation to the given methods
	// (dense method IDs in the program index — callgraph.ReachableBits
	// builds the per-entry-point set). Heap facts may escape the universe
	// at the cost of one async hop.
	Universe *intern.Bits

	// Stats receives workload counters (facts processed, statements
	// included). The shard is unsynchronized: it must be owned by the
	// engine's goroutine. Nil disables counting.
	Stats *obs.Shard

	// Summaries memoizes per-(method, register) transfer summaries and the
	// program-wide heap access index (see summary.go), and owns the shared
	// symbol table heap locations and tags are interned through. NewEngine
	// installs a private cache; callers analyzing many slices over one
	// program should install a shared one so later slices reuse earlier
	// traversals.
	Summaries *SummaryCache

	// Legacy selects the pre-interning string/map replay (legacy.go): the
	// reference implementation the differential harness holds the dense
	// path to byte-identical reports against. Off for production runs.
	Legacy bool

	// Budget, when non-nil, bounds every fixpoint this engine runs: the
	// worklist polls it at the loop head and stops with Result.Truncated
	// set once a limit trips. Nil means unlimited.
	Budget *budget.Budget
	// BudgetPhase labels budget errors from this engine's fixpoints
	// ("slice" draws from the shared slice-step pool, "pairing" does not);
	// empty defaults to "taint".
	BudgetPhase string

	// idx is the dense program index, resolved once per engine from the
	// call graph (or built privately when the engine has no call graph).
	idx *ir.Index

	// scratch is the reusable summary lowering buffer (see denseBuilder).
	// Engines are single-goroutine, so one scratch per engine suffices.
	scratch *denseBuilder
}

// NewEngine creates an engine with the given configuration. The summary
// cache is created lazily on first use unless the caller installs one.
func NewEngine(p *ir.Program, model *semmodel.Model, cg *callgraph.Graph) *Engine {
	return &Engine{Prog: p, Model: model, CG: cg, MaxAsyncHops: 1}
}

// ensure resolves the engine's dense index and summary cache before a
// fixpoint runs. The index is shared through the call graph (built once in
// callgraph.Build); engines without a call graph build a private one.
func (e *Engine) ensure() {
	if e.Summaries == nil {
		e.Summaries = NewSummaryCache()
	}
	if e.idx == nil {
		if e.CG != nil {
			e.idx = e.CG.Index()
		} else {
			e.idx = ir.NewIndex(e.Prog)
		}
	}
}

// newResult allocates an empty result bound to this engine's index and the
// summary cache's symbol table.
func (e *Engine) newResult() *Result {
	e.ensure()
	return NewResult(e.idx, e.Summaries.tab)
}

// types returns m's register types via the call graph's memoized inference
// (shared across every engine over the program).
func (e *Engine) types(m *ir.Method) []string {
	if e.CG != nil {
		return e.CG.Types(m)
	}
	return callgraph.InferTypes(e.Prog, m)
}

// universeHas is the dense universe check: a nil universe admits everything.
func (e *Engine) universeHas(id uint32) bool {
	return e.Universe == nil || e.Universe.Has(id)
}

// inUniverse is universeHas by method ref, for the legacy replay and the
// string-form summary gate checks.
func (e *Engine) inUniverse(method string) bool {
	if e.Universe == nil {
		return true
	}
	id, ok := e.idx.MethodID(method)
	return ok && e.Universe.Has(id)
}

// direction selects which transfer summaries a worklist run consults.
type direction uint8

const (
	dirBackward direction = iota
	dirForward
)

// budgetPhase is the phase label for this engine's budget accounting.
func (e *Engine) budgetPhase() string {
	if e.BudgetPhase != "" {
		return e.BudgetPhase
	}
	return budget.PhaseTaint
}

// sortedSeeds returns the seed statements in (method, index) order, so
// worklist seeding never depends on map iteration order.
func sortedSeeds(seeds map[StmtID]int) []StmtID {
	out := make([]StmtID, 0, len(seeds))
	for s := range seeds {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Method != out[j].Method {
			return out[i].Method < out[j].Method
		}
		return out[i].Index < out[j].Index
	})
	return out
}

type factKind uint8

const (
	factLocal factKind = iota
	factHeap
)

// cFact is a dense worklist fact: a (method ID, register) local fact or an
// interned heap location, plus the async hops consumed so far.
type cFact struct {
	kind   factKind
	method uint32 // local facts: dense method ID
	reg    int32  // local facts: register
	loc    uint32 // heap facts: interned location ID
	hops   int32
}

// denseWorklist deduplicates facts through two bitsets — register slots for
// local facts, interned location IDs for heap facts — replacing the
// map[fact]bool of the legacy replay. Dedup ignores hops (the first visit,
// which the LIFO order makes the lowest-hop one, wins), exactly like the
// legacy key with hops zeroed.
type denseWorklist struct {
	items     []cFact
	seenLocal *intern.Bits // ir.Index register-slot space
	seenHeap  *intern.Bits // interned heap location space
}

func newDenseWorklist(idx *ir.Index) *denseWorklist {
	return &denseWorklist{
		seenLocal: intern.NewBits(idx.NumRegSlots()),
		seenHeap:  &intern.Bits{},
	}
}

func (w *denseWorklist) pushLocal(idx *ir.Index, method uint32, reg int32, hops int32) {
	if reg < 0 {
		return // NoReg never reaches a push site; guard the slot arithmetic
	}
	if !w.seenLocal.Add(idx.RegSlot(method, int(reg))) {
		return
	}
	w.items = append(w.items, cFact{kind: factLocal, method: method, reg: reg, hops: hops})
}

func (w *denseWorklist) pushHeap(loc uint32, hops int32) {
	if !w.seenHeap.Add(loc) {
		return
	}
	w.items = append(w.items, cFact{kind: factHeap, loc: loc, hops: hops})
}

func (w *denseWorklist) pop() (cFact, bool) {
	if len(w.items) == 0 {
		return cFact{}, false
	}
	f := w.items[len(w.items)-1]
	w.items = w.items[:len(w.items)-1]
	return f, true
}

// run drains the worklist, replaying the compiled transfer summary (or heap
// access index) for each popped fact. site names the fixpoint (the slicing
// origin's method) for budget errors and fault probes. When a budget limit
// trips mid-run the partial result is marked Truncated and returned as-is.
func (e *Engine) run(w *denseWorklist, res *Result, dir direction, site string) {
	sums := e.Summaries
	// One span per fixpoint run, nested inside the job span of whichever
	// worker owns this engine's shard. Free when tracing is off.
	cat := obs.CatTaintBackward
	if dir == dirForward {
		cat = obs.CatTaintForward
	}
	sp := e.Stats.Span(cat, site)
	defer sp.End()
	ck := e.Budget.Checker(e.budgetPhase(), site)
	e.Budget.MaybePanic(budget.PhaseTaint, site)
	if e.Budget.Hang(budget.PhaseTaint, site) {
		// Injected divergence: spin through the checker so the hang is
		// observable yet stoppable by any armed deadline or step budget.
		for {
			if err := ck.Step(); err != nil {
				res.Truncated = ck.Exceeded()
				return
			}
		}
	}
	for {
		if err := ck.Step(); err != nil {
			res.Truncated = ck.Exceeded()
			return
		}
		f, ok := w.pop()
		if !ok {
			break
		}
		e.Stats.Add(obs.CtrTaintFacts, 1)
		switch f.kind {
		case factLocal:
			var s *cSummary
			if dir == dirBackward {
				s = sums.compiledBackward(e, f.method, f.reg)
			} else {
				s = sums.compiledForward(e, f.method, f.reg)
			}
			e.applyCompiled(s, f, res, w)
		case factHeap:
			var sites []cHeapSite
			if dir == dirBackward {
				sites = sums.heapWritersDense(e, f.loc)
			} else {
				sites = sums.heapReadersDense(e, f.loc)
			}
			e.applyHeapSitesDense(sites, f, res, w)
		}
	}
}

// applyCompiledInclude replays one compiled include effect.
func (e *Engine) applyCompiledInclude(inc cInclude, res *Result) {
	e.Stats.Add(obs.CtrTaintStmts, 1)
	res.stmts.Add(inc.stmt)
	if inc.source != intern.None {
		res.sources.Add(inc.source)
	}
	if inc.sink != intern.None {
		res.sinks.Add(inc.sink)
	}
}

// applyCompiled replays a compiled transfer summary for fact f: gated
// groups apply when the gate method is inside the universe or the fact
// already escaped it; pushed facts inherit f's hop count.
func (e *Engine) applyCompiled(s *cSummary, f cFact, res *Result, w *denseWorklist) {
	for i := range s.entries {
		en := &s.entries[i]
		if en.gate != intern.None && f.hops == 0 && !e.universeHas(en.gate) {
			continue
		}
		for _, inc := range en.includes {
			e.applyCompiledInclude(inc, res)
		}
		for _, loc := range en.heapReads {
			res.heapReads.Add(loc)
		}
		for _, loc := range en.heapWrites {
			res.heapWrites.Add(loc)
		}
		for _, p := range en.pushes {
			if p.heap {
				w.pushHeap(p.loc, f.hops)
			} else {
				w.pushLocal(e.idx, p.method, p.reg, f.hops)
			}
		}
	}
}

// applyHeapSitesDense replays heap-index entries for a heap fact: sites
// outside the universe cost one async hop, bounded by MaxAsyncHops.
func (e *Engine) applyHeapSitesDense(sites []cHeapSite, f cFact, res *Result, w *denseWorklist) {
	for _, site := range sites {
		hops := f.hops
		if !e.universeHas(site.method) {
			hops = f.hops + 1
			if int(hops) > e.MaxAsyncHops {
				continue
			}
		}
		e.Stats.Add(obs.CtrTaintStmts, 1)
		res.stmts.Add(site.stmt)
		w.pushLocal(e.idx, site.method, site.reg, hops)
	}
}

// heapLoc computes the heap location id for a field access: the inferred
// class of the base object joined with the field name.
func (e *Engine) heapLoc(m *ir.Method, in *ir.Instr) string {
	types := e.types(m)
	base := m.Class.Name
	if in.A >= 0 && in.A < len(types) && types[in.A] != "" {
		base = types[in.A]
	}
	return "f:" + base + "." + in.Sym
}

// constString resolves the constant string feeding register reg at
// instruction site, by scanning backward for its most recent definition.
// It follows one move and resolves APK resources. ok is false when the
// value is not a compile-time constant.
func (e *Engine) constString(m *ir.Method, site, reg int) (string, bool) {
	for i := site - 1; i >= 0; i-- {
		in := &m.Instrs[i]
		if in.Def() != reg {
			continue
		}
		switch in.Op {
		case ir.OpConstStr:
			return in.Str, true
		case ir.OpMove:
			return e.constString(m, i, in.A)
		case ir.OpInvoke:
			if mm := e.Model.Lookup(in.Sym); mm != nil && mm.Kind == semmodel.KResGetString && len(in.Args) >= 2 {
				if key, ok := e.constString(m, i, in.Args[1]); ok {
					if v, present := e.Prog.Resources[key]; present {
						return v, true
					}
					return "", false
				}
			}
			return "", false
		default:
			return "", false
		}
	}
	return "", false
}

// dbLocs derives SQLite heap locations for a DB call: one per constant
// column name put into the ContentValues argument (writes) or per constant
// column argument (reads).
func (e *Engine) dbLocs(m *ir.Method, site int, in *ir.Instr) []string {
	mm := e.Model.Lookup(in.Sym)
	if mm == nil || len(in.Args) < 2 {
		return nil
	}
	table, ok := e.constString(m, site, in.Args[1])
	if !ok {
		table = "*"
	}
	switch mm.Kind {
	case semmodel.KDBQuery:
		if len(in.Args) >= 3 {
			if col, ok := e.constString(m, site, in.Args[2]); ok {
				return []string{"db:" + table + "." + col}
			}
		}
		return []string{"db:" + table + ".*"}
	case semmodel.KDBInsert, semmodel.KDBUpdate:
		if len(in.Args) < 3 {
			return nil
		}
		valuesReg := in.Args[2]
		var locs []string
		for i := 0; i < site; i++ {
			put := &m.Instrs[i]
			if put.Op != ir.OpInvoke || len(put.Args) < 3 || put.Args[0] != valuesReg {
				continue
			}
			pm := e.Model.Lookup(put.Sym)
			if pm == nil || pm.Kind != semmodel.KCVPut {
				continue
			}
			if col, ok := e.constString(m, i, put.Args[1]); ok {
				locs = append(locs, "db:"+table+"."+col)
			}
		}
		if len(locs) == 0 {
			locs = []string{"db:" + table + ".*"}
		}
		return locs
	}
	return nil
}

// paramReg maps a parameter position (receiver = 0 for instance methods,
// then declared parameters) to a register of m, or NoReg.
func paramReg(m *ir.Method, pos int) int {
	if pos < 0 || pos >= m.NumParamRegs() {
		return ir.NoReg
	}
	return pos
}

// appCallees returns the app methods the call at (m, site) may invoke.
func (e *Engine) appCallees(m *ir.Method, site int) []callgraph.Edge {
	return e.CG.CalleesAt(m.Ref(), site)
}

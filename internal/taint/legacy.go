package taint

import (
	"extractocol/internal/budget"
	"extractocol/internal/obs"
)

// This file preserves the pre-interning taint replay verbatim: string-keyed
// worklist facts deduplicated through a map, string-form transfer summaries
// replayed directly, and a map-based result. It is selected by Engine.Legacy
// and exists as the reference implementation for the differential harness
// (internal/evaluate's "legacy-sets" axis) — the dense bitset replay in
// taint.go must produce byte-identical reports. The legacy result is
// converted into the dense Result at the end of each fixpoint, so everything
// downstream of the engine is shared between the two paths.

// legacyResult is the map-based slice representation the dense Result
// replaced.
type legacyResult struct {
	Stmts      map[StmtID]bool
	HeapReads  map[string]bool
	HeapWrites map[string]bool
	Sinks      map[string]bool
	Sources    map[string]bool
	Truncated  *budget.Exceeded
}

func newLegacyResult() *legacyResult {
	return &legacyResult{
		Stmts:      map[StmtID]bool{},
		HeapReads:  map[string]bool{},
		HeapWrites: map[string]bool{},
		Sinks:      map[string]bool{},
		Sources:    map[string]bool{},
	}
}

// convert re-expresses the legacy maps as a dense Result. Statements whose
// method is unknown to the index cannot occur for real programs (every
// summary statement comes from an indexed method) and are dropped.
func (e *Engine) convertLegacy(lr *legacyResult) *Result {
	res := e.newResult()
	for s := range lr.Stmts {
		res.AddStmt(s.Method, s.Index)
	}
	for l := range lr.HeapReads {
		res.AddHeapRead(l)
	}
	for l := range lr.HeapWrites {
		res.AddHeapWrite(l)
	}
	for s := range lr.Sinks {
		res.AddSink(s)
	}
	for s := range lr.Sources {
		res.AddSource(s)
	}
	res.Truncated = lr.Truncated
	return res
}

type fact struct {
	kind   factKind
	method string // local facts: owning method
	reg    int    // local facts: register
	loc    string // heap facts: location id
	hops   int    // async hops consumed so far
}

type worklist struct {
	items []fact
	seen  map[fact]bool
}

func (w *worklist) push(f fact) {
	// Deduplicate ignoring hops: keep the lowest-hop visit.
	key := f
	key.hops = 0
	if w.seen[key] {
		return
	}
	w.seen[key] = true
	w.items = append(w.items, f)
}

func (w *worklist) pop() (fact, bool) {
	if len(w.items) == 0 {
		return fact{}, false
	}
	f := w.items[len(w.items)-1]
	w.items = w.items[:len(w.items)-1]
	return f, true
}

// legacyBackward is Backward on the legacy replay.
func (e *Engine) legacyBackward(dp StmtID, reg int) *Result {
	res := newLegacyResult()
	w := &worklist{seen: map[fact]bool{}}
	res.Stmts[dp] = true
	w.push(fact{kind: factLocal, method: dp.Method, reg: reg})
	e.legacyRun(w, res, dirBackward, dp.Method)
	return e.convertLegacy(res)
}

// legacyForward is Forward on the legacy replay.
func (e *Engine) legacyForward(origin StmtID, reg int) *Result {
	res := newLegacyResult()
	w := &worklist{seen: map[fact]bool{}}
	res.Stmts[origin] = true
	w.push(fact{kind: factLocal, method: origin.Method, reg: reg})
	e.legacyRun(w, res, dirForward, origin.Method)
	return e.convertLegacy(res)
}

// legacyForwardFacts is ForwardFacts on the legacy replay. Seeds are pushed
// in sorted (method, index) order — the same order the dense path uses — so
// worklist processing order never depends on map iteration.
func (e *Engine) legacyForwardFacts(seeds map[StmtID]int) *Result {
	res := newLegacyResult()
	w := &worklist{seen: map[fact]bool{}}
	site := "flow-check"
	for _, s := range sortedSeeds(seeds) {
		res.Stmts[s] = true
		w.push(fact{kind: factLocal, method: s.Method, reg: seeds[s]})
		if site == "flow-check" || s.Method < site {
			site = s.Method
		}
	}
	e.legacyRun(w, res, dirForward, site)
	return e.convertLegacy(res)
}

// legacyRun drains the worklist, replaying the memoized string-form transfer
// summary (or heap access index) for each popped fact — the pre-interning
// run loop, kept verbatim.
func (e *Engine) legacyRun(w *worklist, res *legacyResult, dir direction, site string) {
	sums := e.Summaries
	if sums == nil {
		sums = NewSummaryCache()
		e.Summaries = sums
	}
	cat := obs.CatTaintBackward
	if dir == dirForward {
		cat = obs.CatTaintForward
	}
	sp := e.Stats.Span(cat, site)
	defer sp.End()
	ck := e.Budget.Checker(e.budgetPhase(), site)
	e.Budget.MaybePanic(budget.PhaseTaint, site)
	if e.Budget.Hang(budget.PhaseTaint, site) {
		// Injected divergence: spin through the checker so the hang is
		// observable yet stoppable by any armed deadline or step budget.
		for {
			if err := ck.Step(); err != nil {
				res.Truncated = ck.Exceeded()
				return
			}
		}
	}
	for {
		if err := ck.Step(); err != nil {
			res.Truncated = ck.Exceeded()
			return
		}
		f, ok := w.pop()
		if !ok {
			break
		}
		e.Stats.Add(obs.CtrTaintFacts, 1)
		switch f.kind {
		case factLocal:
			var s *methodSummary
			if dir == dirBackward {
				s = sums.backward(e, f.method, f.reg)
			} else {
				s = sums.forward(e, f.method, f.reg)
			}
			e.applySummary(s, f, res, w)
		case factHeap:
			var sites []heapSite
			if dir == dirBackward {
				sites = sums.heapWriters(e, f.loc)
			} else {
				sites = sums.heapReaders(e, f.loc)
			}
			e.applyHeapSites(sites, f, res, w)
		}
	}
}

// applyInclude replays one include effect on the legacy result.
func (e *Engine) applyInclude(inc sumInclude, res *legacyResult) {
	e.Stats.Add(obs.CtrTaintStmts, 1)
	res.Stmts[inc.stmt] = true
	if inc.source != "" {
		res.Sources[inc.source] = true
	}
	if inc.sink != "" {
		res.Sinks[inc.sink] = true
	}
}

// applySummary replays a transfer summary for fact f: gated groups apply
// when the gate method is inside the universe or the fact already escaped
// it; pushed facts inherit f's hop count.
func (e *Engine) applySummary(s *methodSummary, f fact, res *legacyResult, w *worklist) {
	for i := range s.entries {
		en := &s.entries[i]
		if en.gate != "" && f.hops == 0 && !e.inUniverse(en.gate) {
			continue
		}
		for _, inc := range en.includes {
			e.applyInclude(inc, res)
		}
		for _, loc := range en.heapReads {
			res.HeapReads[loc] = true
		}
		for _, loc := range en.heapWrites {
			res.HeapWrites[loc] = true
		}
		for _, p := range en.pushes {
			if p.heap {
				w.push(fact{kind: factHeap, loc: p.loc, hops: f.hops})
			} else {
				w.push(fact{kind: factLocal, method: p.method, reg: p.reg, hops: f.hops})
			}
		}
	}
}

// applyHeapSites replays heap-index entries for a heap fact: sites outside
// the universe cost one async hop, bounded by MaxAsyncHops.
func (e *Engine) applyHeapSites(sites []heapSite, f fact, res *legacyResult, w *worklist) {
	for _, site := range sites {
		hops := f.hops
		if !e.inUniverse(site.method) {
			hops = f.hops + 1
			if hops > e.MaxAsyncHops {
				continue
			}
		}
		e.Stats.Add(obs.CtrTaintStmts, 1)
		res.Stmts[StmtID{site.method, site.index}] = true
		w.push(fact{kind: factLocal, method: site.method, reg: site.reg, hops: hops})
	}
}

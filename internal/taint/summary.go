package taint

import (
	"sort"
	"sync"
	"sync/atomic"

	"extractocol/internal/intern"
	"extractocol/internal/ir"
	"extractocol/internal/obs"
)

// This file implements IFDS-style summary reuse for the taint engine.
//
// Both propagation directions process one worklist fact at a time, and the
// work done for a fact — scanning the owning method for definitions, uses
// and mutations, resolving call edges, deriving heap locations — depends
// only on the program, the semantic model and the call graph, never on the
// transaction being sliced. The context-dependent parts (the per-entry-point
// universe restriction and the §3.4 async-hop budget) only decide whether a
// propagation step applies, not what it is.
//
// A transfer summary therefore records, per (direction, method, register)
// query, the ordered list of effects the engine would perform: statements to
// include (with their modeled source/sink tags), heap locations to record,
// and successor facts to push. Effects that the direct implementation guards
// with a universe check carry the guarded method as a gate; replay applies a
// gated group only when the gate method is inside the engine's universe or
// the fact has already escaped it (hops > 0), exactly mirroring the direct
// rules. Heap fact propagation is handled by a program-wide access index
// (location -> writers / readers) built once on first use.
//
// The scan logic in backward.go and forward.go emits effects through the
// sumEmitter interface, so one scan serves two summary forms: sumBuilder
// accumulates the string form the legacy replay consumes, and denseBuilder
// lowers effects straight to compiled form — statement and method names
// resolved through the program's ir.Index, heap locations and tags interned
// through the cache's symbol table — so the hot worklist loop replays pure
// integer effects without ever materializing the string form. Because
// effects replay in recorded order and recorded order equals the scan order
// of the direct implementation, a summarized engine produces byte-identical
// slices to the pre-summary engine, while every transaction after the first
// reuses the summaries instead of re-traversing shared callees.

// sumKey identifies one transfer-summary query.
type sumKey struct {
	method string
	reg    int
}

// sumInclude is one statement joining the slice, with its modeled
// source/sink tags resolved at build time so replay needs no instruction
// access.
type sumInclude struct {
	stmt   StmtID
	source string
	sink   string
}

// sumPush is one successor fact (hops are assigned at replay time).
type sumPush struct {
	heap   bool
	method string // local pushes: owning method
	reg    int    // local pushes: register
	loc    string // heap pushes: location id
}

// sumEntry is one ordered group of effects. gate == "" applies always;
// otherwise the group applies only when the gate method is in the universe
// or the fact has hops > 0.
type sumEntry struct {
	gate       string
	includes   []sumInclude
	heapReads  []string
	heapWrites []string
	pushes     []sumPush
}

// methodSummary is the full transfer summary of one (method, register)
// query in one direction.
type methodSummary struct {
	entries []sumEntry
}

// heapSite is one statement accessing a heap location: a writer (field/
// static put, reg = stored register) for backward propagation, or a reader
// (field/static get, reg = destination register) for forward propagation.
type heapSite struct {
	method string
	index  int
	reg    int
}

// gateUnresolved marks a gate method the index cannot resolve (impossible
// for summaries built over an indexed program, kept defensively): it fails
// every non-nil universe, like an unresolvable ref failed the legacy map
// lookup.
const gateUnresolved = intern.None - 1

// cInclude is sumInclude in dense form: a program-index statement ID plus
// interned source/sink tags (intern.None when untagged).
type cInclude struct {
	stmt   uint32
	source uint32
	sink   uint32
}

// cPush is sumPush in dense form.
type cPush struct {
	heap   bool
	method uint32 // local pushes: dense method ID
	reg    int32  // local pushes: register
	loc    uint32 // heap pushes: interned location ID
}

// cEntry is sumEntry in dense form; gate == intern.None applies always.
type cEntry struct {
	gate       uint32
	includes   []cInclude
	heapReads  []uint32
	heapWrites []uint32
	pushes     []cPush
}

// cSummary is a compiled methodSummary.
type cSummary struct {
	entries []cEntry
}

// cHeapSite is heapSite in dense form.
type cHeapSite struct {
	method uint32
	stmt   uint32
	reg    int32
}

// SummaryCache memoizes taint transfer summaries and the program-wide heap
// access index, in both string form (legacy replay) and compiled dense form
// (hot path), and owns the symbol table heap locations and source/sink tags
// are interned through. One cache may be shared by any number of engines
// analyzing the same (program, model, call graph) triple — core.Analyze
// shares one across all slice workers and the pairing flow checks — and is
// safe for concurrent use. The zero value is not usable; call
// NewSummaryCache.
type SummaryCache struct {
	mu      sync.RWMutex
	tab     *intern.SyncTable
	bwd     map[sumKey]*methodSummary
	fwd     map[sumKey]*methodSummary
	writers map[string][]heapSite // heap location -> writing statements
	readers map[string][]heapSite // heap location -> reading statements

	// Compiled forms, keyed by methodID<<32|reg. Built directly (not from
	// the string maps) so the legacy maps stay empty unless the legacy
	// replay runs.
	cbwd     map[uint64]*cSummary
	cfwd     map[uint64]*cSummary
	cwriters map[uint32][]cHeapSite
	creaders map[uint32][]cHeapSite

	hits, misses atomic.Int64
}

// NewSummaryCache returns an empty cache.
func NewSummaryCache() *SummaryCache {
	return &SummaryCache{
		tab: &intern.SyncTable{},
		bwd: map[sumKey]*methodSummary{}, fwd: map[sumKey]*methodSummary{},
		cbwd: map[uint64]*cSummary{}, cfwd: map[uint64]*cSummary{},
	}
}

// Table returns the cache's shared symbol table.
func (c *SummaryCache) Table() *intern.SyncTable { return c.tab }

// DrainCounters moves the summary hit/miss totals accumulated since the
// last drain into col, under the cache_summaries_* counters.
func (c *SummaryCache) DrainCounters(col *obs.Collector) {
	if c == nil {
		return
	}
	col.Add(obs.CtrCacheSummaryHits, c.hits.Swap(0))
	col.Add(obs.CtrCacheSummaryMisses, c.misses.Swap(0))
}

// backward returns the backward transfer summary for (method, reg),
// building it with e on first use.
func (c *SummaryCache) backward(e *Engine, method string, reg int) *methodSummary {
	return c.lookup(c.bwd, sumKey{method, reg}, func() *methodSummary {
		return e.buildBackward(method, reg)
	})
}

// forward returns the forward transfer summary for (method, reg).
func (c *SummaryCache) forward(e *Engine, method string, reg int) *methodSummary {
	return c.lookup(c.fwd, sumKey{method, reg}, func() *methodSummary {
		return e.buildForward(method, reg)
	})
}

func (c *SummaryCache) lookup(m map[sumKey]*methodSummary, k sumKey, build func() *methodSummary) *methodSummary {
	c.mu.RLock()
	s, ok := m[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return s
	}
	c.misses.Add(1)
	s = build()
	c.mu.Lock()
	if prev, ok := m[k]; ok {
		s = prev // concurrent build of the same key: identical, keep the first
	} else {
		m[k] = s
	}
	c.mu.Unlock()
	return s
}

// compiledBackward returns the compiled backward summary for (method, reg),
// building it with e on first use.
func (c *SummaryCache) compiledBackward(e *Engine, method uint32, reg int32) *cSummary {
	return c.compiledLookup(c.cbwd, method, reg, e.scanBackward, e)
}

// compiledForward returns the compiled forward summary for (method, reg).
func (c *SummaryCache) compiledForward(e *Engine, method uint32, reg int32) *cSummary {
	return c.compiledLookup(c.cfwd, method, reg, e.scanForward, e)
}

func (c *SummaryCache) compiledLookup(m map[uint64]*cSummary, method uint32, reg int32,
	scan func(b sumEmitter, method string, reg int), e *Engine) *cSummary {
	k := uint64(method)<<32 | uint64(uint32(reg))
	c.mu.RLock()
	s, ok := m[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return s
	}
	c.misses.Add(1)
	b := newDenseBuilder(e)
	scan(b, e.idx.MethodAt(method).Ref(), int(reg))
	s = b.done()
	c.mu.Lock()
	if prev, ok := m[k]; ok {
		s = prev
	} else {
		m[k] = s
	}
	c.mu.Unlock()
	return s
}

// heapWriters returns the statements writing loc, building the program-wide
// writer index on first use (legacy replay path).
func (c *SummaryCache) heapWriters(e *Engine, loc string) []heapSite {
	c.mu.RLock()
	idx := c.writers
	c.mu.RUnlock()
	if idx == nil {
		idx = c.buildHeapIndex(e, true)
	} else {
		c.hits.Add(1)
	}
	return idx[loc]
}

// heapReaders returns the statements reading loc (legacy replay path).
func (c *SummaryCache) heapReaders(e *Engine, loc string) []heapSite {
	c.mu.RLock()
	idx := c.readers
	c.mu.RUnlock()
	if idx == nil {
		idx = c.buildHeapIndex(e, false)
	} else {
		c.hits.Add(1)
	}
	return idx[loc]
}

// heapWritersDense returns the dense writer index entry for an interned
// location, building the index on first use.
func (c *SummaryCache) heapWritersDense(e *Engine, loc uint32) []cHeapSite {
	c.mu.RLock()
	idx := c.cwriters
	c.mu.RUnlock()
	if idx == nil {
		idx = c.buildHeapIndexDense(e, true)
	} else {
		c.hits.Add(1)
	}
	return idx[loc]
}

// heapReadersDense returns the dense reader index entry for an interned
// location.
func (c *SummaryCache) heapReadersDense(e *Engine, loc uint32) []cHeapSite {
	c.mu.RLock()
	idx := c.creaders
	c.mu.RUnlock()
	if idx == nil {
		idx = c.buildHeapIndexDense(e, false)
	} else {
		c.hits.Add(1)
	}
	return idx[loc]
}

// scanHeapSites scans every app method once, indexing heap accesses by
// location in program order (class insertion order, then method order, then
// instruction order — the order the direct implementation visited them).
func (e *Engine) scanHeapSites(writes bool) map[string][]heapSite {
	idx := map[string][]heapSite{}
	for _, cl := range e.Prog.AppClasses() {
		for _, m := range cl.Methods {
			for i := range m.Instrs {
				in := &m.Instrs[i]
				var loc string
				var reg int
				switch {
				case writes && in.Op == ir.OpFieldPut:
					loc, reg = e.heapLoc(m, in), in.B
				case writes && in.Op == ir.OpStaticPut:
					loc, reg = "s:"+in.Sym, in.B
				case !writes && in.Op == ir.OpFieldGet:
					loc, reg = e.heapLoc(m, in), in.Dst
				case !writes && in.Op == ir.OpStaticGet:
					loc, reg = "s:"+in.Sym, in.Dst
				default:
					continue
				}
				idx[loc] = append(idx[loc], heapSite{method: m.Ref(), index: i, reg: reg})
			}
		}
	}
	return idx
}

// buildHeapIndex builds and installs the string-form heap access index
// (legacy replay path).
func (c *SummaryCache) buildHeapIndex(e *Engine, writes bool) map[string][]heapSite {
	c.misses.Add(1)
	idx := e.scanHeapSites(writes)
	c.mu.Lock()
	if writes {
		if c.writers != nil {
			idx = c.writers
		} else {
			c.writers = idx
		}
	} else {
		if c.readers != nil {
			idx = c.readers
		} else {
			c.readers = idx
		}
	}
	c.mu.Unlock()
	return idx
}

// buildHeapIndexDense builds and installs the dense heap access index:
// locations interned in sorted order (so the symbol table's contents are
// deterministic), sites resolved to dense method/statement IDs with their
// per-location program order preserved.
func (c *SummaryCache) buildHeapIndexDense(e *Engine, writes bool) map[uint32][]cHeapSite {
	c.misses.Add(1)
	scan := e.scanHeapSites(writes)
	locs := make([]string, 0, len(scan))
	for l := range scan {
		locs = append(locs, l)
	}
	sort.Strings(locs)
	idx := make(map[uint32][]cHeapSite, len(scan))
	for _, l := range locs {
		sites := scan[l]
		cs := make([]cHeapSite, 0, len(sites))
		for _, s := range sites {
			mid, ok := e.idx.MethodID(s.method)
			if !ok {
				continue
			}
			cs = append(cs, cHeapSite{method: mid, stmt: e.idx.StmtID(mid, s.index), reg: int32(s.reg)})
		}
		idx[c.tab.Intern(l)] = cs
	}
	c.mu.Lock()
	if writes {
		if c.cwriters != nil {
			idx = c.cwriters
		} else {
			c.cwriters = idx
		}
	} else {
		if c.creaders != nil {
			idx = c.creaders
		} else {
			c.creaders = idx
		}
	}
	c.mu.Unlock()
	return idx
}

// sumEmitter receives transfer-summary effects in emission order. The scan
// logic in backward.go/forward.go is written against this interface; the two
// implementations below produce the string form (legacy replay) and the
// compiled dense form (hot path) from one shared scan.
//
// Gated groups are emitted as begin(gate) ... effects ... end(); an empty
// group (no effects between begin and end) is dropped, which mirrors the
// pre-interface builders' "only append non-empty gated entries" call sites.
type sumEmitter interface {
	// include adds statement idx of m to the slice, resolving modeled
	// source/sink tags at build time so replay is instruction-free.
	include(m *ir.Method, idx int)
	// push emits a successor local fact (hops assigned at replay).
	push(method string, reg int)
	// pushHeap emits a successor heap fact.
	pushHeap(loc string)
	heapRead(loc string)
	heapWrite(loc string)
	// begin opens a universe-gated effect group; end closes it.
	begin(gate string)
	end()
}

// sumTags resolves the modeled source/sink tags of statement idx.
func (e *Engine) sumTags(m *ir.Method, idx int) (source, sink string) {
	in := &m.Instrs[idx]
	if in.Op == ir.OpInvoke {
		if mm := e.Model.Lookup(in.Sym); mm != nil {
			return mm.Source, mm.Sink
		}
	}
	return "", ""
}

// sumBuilder accumulates string-form summary entries in emission order.
// Consecutive unconditional effects coalesce into one entry; a gated group
// flushes the pending unconditional entry first so replay order matches
// build order.
type sumBuilder struct {
	e      *Engine
	s      methodSummary
	cur    sumEntry // pending unconditional effects
	gat    sumEntry // open gated group (inGate)
	gate   string
	inGate bool
}

func (b *sumBuilder) flush() {
	if len(b.cur.includes) > 0 || len(b.cur.heapReads) > 0 ||
		len(b.cur.heapWrites) > 0 || len(b.cur.pushes) > 0 {
		b.s.entries = append(b.s.entries, b.cur)
		b.cur = sumEntry{}
	}
}

// entry returns the entry currently receiving effects.
func (b *sumBuilder) entry() *sumEntry {
	if b.inGate {
		return &b.gat
	}
	return &b.cur
}

func (b *sumBuilder) include(m *ir.Method, idx int) {
	inc := sumInclude{stmt: StmtID{m.Ref(), idx}}
	inc.source, inc.sink = b.e.sumTags(m, idx)
	en := b.entry()
	en.includes = append(en.includes, inc)
}

func (b *sumBuilder) heapRead(loc string) {
	en := b.entry()
	en.heapReads = append(en.heapReads, loc)
}

func (b *sumBuilder) heapWrite(loc string) {
	en := b.entry()
	en.heapWrites = append(en.heapWrites, loc)
}

func (b *sumBuilder) push(method string, reg int) {
	en := b.entry()
	en.pushes = append(en.pushes, sumPush{method: method, reg: reg})
}

func (b *sumBuilder) pushHeap(loc string) {
	en := b.entry()
	en.pushes = append(en.pushes, sumPush{heap: true, loc: loc})
}

func (b *sumBuilder) begin(gate string) {
	b.flush()
	b.inGate = true
	b.gate = gate
	b.gat = sumEntry{}
}

func (b *sumBuilder) end() {
	b.inGate = false
	if len(b.gat.includes) > 0 || len(b.gat.heapReads) > 0 ||
		len(b.gat.heapWrites) > 0 || len(b.gat.pushes) > 0 {
		b.gat.gate = b.gate
		b.s.entries = append(b.s.entries, b.gat)
	}
	b.gat = sumEntry{}
}

func (b *sumBuilder) done() *methodSummary {
	b.flush()
	s := b.s
	return &s
}

// denseBuilder lowers effects straight to compiled form: statement and
// method names resolved through the engine's program index, heap locations
// and tags interned through the cache's symbol table. It resolves method
// refs through a one-entry memo (consecutive effects overwhelmingly hit the
// same method).
//
// The builder is allocation-frugal: effects accumulate in reusable buffers
// (one active entry at a time — begin() flushes the pending unconditional
// entry before a gated group opens, so the unconditional and gated entries
// never accumulate concurrently) and each finished entry copies out at
// exact size. One builder per engine is recycled across summaries.
type denseBuilder struct {
	e   *Engine
	tab *intern.SyncTable

	entries []cEntry // finished entries of the summary under construction
	gate    uint32   // gate of the open group; intern.None when unconditional
	inGate  bool

	// active entry accumulation buffers; capacity reused across entries
	// and summaries.
	includes   []cInclude
	heapReads  []uint32
	heapWrites []uint32
	pushes     []cPush

	// slabs back the finished summaries: finished entries copy into large
	// shared arrays (capacity-trimmed subslices, see takeSlab), so building
	// a summary costs amortized-zero allocations instead of one per field.
	// Cached summaries keep the slabs alive; the builder never rewrites
	// published regions.
	incSlab  []cInclude
	u32Slab  []uint32 // heap reads and writes share one slab
	pushSlab []cPush
	entSlab  []cEntry
	sumSlab  []cSummary

	lastRef string // last method ref resolved by mid()
	lastID  uint32
	lastOK  bool
}

// takeSlab copies src onto the end of the slab and returns the stored
// subslice, capacity-trimmed so later slab appends can never alias it.
// Slab growth abandons the old backing array to the subslices already
// pointing into it (they are immutable once published).
func takeSlab[T any](slab *[]T, src []T) []T {
	start := len(*slab)
	*slab = append(*slab, src...)
	return (*slab)[start:len(*slab):len(*slab)]
}

// newDenseBuilder returns the engine's recycled builder, reset for a new
// summary. Engines run one fixpoint at a time, so the single scratch
// instance is never aliased.
func newDenseBuilder(e *Engine) *denseBuilder {
	b := e.scratch
	if b == nil {
		b = &denseBuilder{}
		e.scratch = b
	}
	b.e = e
	b.tab = e.Summaries.tab
	b.entries = b.entries[:0]
	b.gate = intern.None
	b.inGate = false
	b.includes = b.includes[:0]
	b.heapReads = b.heapReads[:0]
	b.heapWrites = b.heapWrites[:0]
	b.pushes = b.pushes[:0]
	b.lastRef = ""
	return b
}

// mid resolves a method ref to its dense ID through a one-entry memo.
func (b *denseBuilder) mid(ref string) (uint32, bool) {
	if ref != b.lastRef {
		b.lastRef = ref
		b.lastID, b.lastOK = b.e.idx.MethodID(ref)
	}
	return b.lastID, b.lastOK
}

func (b *denseBuilder) include(m *ir.Method, idx int) {
	id, ok := b.mid(m.Ref())
	if !ok {
		return // unindexable method: cannot occur for indexed programs
	}
	ci := cInclude{stmt: b.e.idx.StmtID(id, idx), source: intern.None, sink: intern.None}
	if source, sink := b.e.sumTags(m, idx); source != "" || sink != "" {
		if source != "" {
			ci.source = b.tab.Intern(source)
		}
		if sink != "" {
			ci.sink = b.tab.Intern(sink)
		}
	}
	b.includes = append(b.includes, ci)
}

func (b *denseBuilder) heapRead(loc string) {
	b.heapReads = append(b.heapReads, b.tab.Intern(loc))
}

func (b *denseBuilder) heapWrite(loc string) {
	b.heapWrites = append(b.heapWrites, b.tab.Intern(loc))
}

func (b *denseBuilder) push(method string, reg int) {
	id, ok := b.mid(method)
	if !ok {
		return
	}
	b.pushes = append(b.pushes, cPush{method: id, reg: int32(reg)})
}

func (b *denseBuilder) pushHeap(loc string) {
	b.pushes = append(b.pushes, cPush{heap: true, loc: b.tab.Intern(loc)})
}

// flush copies the active buffers out into a finished entry under the given
// gate (exact-size slices, so cached summaries carry no spare capacity) and
// resets them. Empty entries — including empty gated groups — are dropped.
func (b *denseBuilder) flush(gate uint32) {
	if len(b.includes) == 0 && len(b.heapReads) == 0 &&
		len(b.heapWrites) == 0 && len(b.pushes) == 0 {
		return
	}
	en := cEntry{gate: gate}
	if len(b.includes) > 0 {
		en.includes = takeSlab(&b.incSlab, b.includes)
		b.includes = b.includes[:0]
	}
	if len(b.heapReads) > 0 {
		en.heapReads = takeSlab(&b.u32Slab, b.heapReads)
		b.heapReads = b.heapReads[:0]
	}
	if len(b.heapWrites) > 0 {
		en.heapWrites = takeSlab(&b.u32Slab, b.heapWrites)
		b.heapWrites = b.heapWrites[:0]
	}
	if len(b.pushes) > 0 {
		en.pushes = takeSlab(&b.pushSlab, b.pushes)
		b.pushes = b.pushes[:0]
	}
	b.entries = append(b.entries, en)
}

func (b *denseBuilder) begin(gate string) {
	b.flush(intern.None)
	b.inGate = true
	b.gate = gateUnresolved
	if id, ok := b.e.idx.MethodID(gate); ok {
		b.gate = id
	}
}

func (b *denseBuilder) end() {
	b.flush(b.gate)
	b.inGate = false
	b.gate = intern.None
}

// emptyCSummary is the shared no-effect summary: most (method, register)
// pairs a fixpoint probes have none, so they all intern to one value.
var emptyCSummary = &cSummary{}

func (b *denseBuilder) done() *cSummary {
	b.flush(intern.None)
	if len(b.entries) == 0 {
		return emptyCSummary
	}
	b.sumSlab = append(b.sumSlab, cSummary{entries: takeSlab(&b.entSlab, b.entries)})
	b.entries = b.entries[:0]
	return &b.sumSlab[len(b.sumSlab)-1]
}

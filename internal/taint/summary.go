package taint

import (
	"sync"
	"sync/atomic"

	"extractocol/internal/ir"
	"extractocol/internal/obs"
)

// This file implements IFDS-style summary reuse for the taint engine.
//
// Both propagation directions process one worklist fact at a time, and the
// work done for a fact — scanning the owning method for definitions, uses
// and mutations, resolving call edges, deriving heap locations — depends
// only on the program, the semantic model and the call graph, never on the
// transaction being sliced. The context-dependent parts (the per-entry-point
// universe restriction and the §3.4 async-hop budget) only decide whether a
// propagation step applies, not what it is.
//
// A transfer summary therefore records, per (direction, method, register)
// query, the ordered list of effects the engine would perform: statements to
// include (with their modeled source/sink tags), heap locations to record,
// and successor facts to push. Effects that the direct implementation guards
// with a universe check carry the guarded method as a gate; replay applies a
// gated group only when the gate method is inside the engine's universe or
// the fact has already escaped it (hops > 0), exactly mirroring the direct
// rules. Heap fact propagation is handled by a program-wide access index
// (location -> writers / readers) built once on first use.
//
// Because effects replay in recorded order and recorded order equals the
// scan order of the direct implementation, a summarized engine produces
// byte-identical slices — and identical workload counters — to the
// pre-summary engine, while every transaction after the first reuses the
// summaries instead of re-traversing shared callees.

// sumKey identifies one transfer-summary query.
type sumKey struct {
	method string
	reg    int
}

// sumInclude is one statement joining the slice, with its modeled
// source/sink tags resolved at build time so replay needs no instruction
// access.
type sumInclude struct {
	stmt   StmtID
	source string
	sink   string
}

// sumPush is one successor fact (hops are assigned at replay time).
type sumPush struct {
	heap   bool
	method string // local pushes: owning method
	reg    int    // local pushes: register
	loc    string // heap pushes: location id
}

// sumEntry is one ordered group of effects. gate == "" applies always;
// otherwise the group applies only when the gate method is in the universe
// or the fact has hops > 0.
type sumEntry struct {
	gate       string
	includes   []sumInclude
	heapReads  []string
	heapWrites []string
	pushes     []sumPush
}

// methodSummary is the full transfer summary of one (method, register)
// query in one direction.
type methodSummary struct {
	entries []sumEntry
}

// heapSite is one statement accessing a heap location: a writer (field/
// static put, reg = stored register) for backward propagation, or a reader
// (field/static get, reg = destination register) for forward propagation.
type heapSite struct {
	method string
	index  int
	reg    int
}

// SummaryCache memoizes taint transfer summaries and the program-wide heap
// access index. One cache may be shared by any number of engines analyzing
// the same (program, model, call graph) triple — core.Analyze shares one
// across all slice workers and the pairing flow checks — and is safe for
// concurrent use. The zero value is not usable; call NewSummaryCache.
type SummaryCache struct {
	mu      sync.RWMutex
	bwd     map[sumKey]*methodSummary
	fwd     map[sumKey]*methodSummary
	writers map[string][]heapSite // heap location -> writing statements
	readers map[string][]heapSite // heap location -> reading statements

	hits, misses atomic.Int64
}

// NewSummaryCache returns an empty cache.
func NewSummaryCache() *SummaryCache {
	return &SummaryCache{bwd: map[sumKey]*methodSummary{}, fwd: map[sumKey]*methodSummary{}}
}

// DrainCounters moves the summary hit/miss totals accumulated since the
// last drain into col, under the cache_summaries_* counters.
func (c *SummaryCache) DrainCounters(col *obs.Collector) {
	if c == nil {
		return
	}
	col.Add(obs.CtrCacheSummaryHits, c.hits.Swap(0))
	col.Add(obs.CtrCacheSummaryMisses, c.misses.Swap(0))
}

// backward returns the backward transfer summary for (method, reg),
// building it with e on first use.
func (c *SummaryCache) backward(e *Engine, method string, reg int) *methodSummary {
	return c.lookup(c.bwd, sumKey{method, reg}, func() *methodSummary {
		return e.buildBackward(method, reg)
	})
}

// forward returns the forward transfer summary for (method, reg).
func (c *SummaryCache) forward(e *Engine, method string, reg int) *methodSummary {
	return c.lookup(c.fwd, sumKey{method, reg}, func() *methodSummary {
		return e.buildForward(method, reg)
	})
}

func (c *SummaryCache) lookup(m map[sumKey]*methodSummary, k sumKey, build func() *methodSummary) *methodSummary {
	c.mu.RLock()
	s, ok := m[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return s
	}
	c.misses.Add(1)
	s = build()
	c.mu.Lock()
	if prev, ok := m[k]; ok {
		s = prev // concurrent build of the same key: identical, keep the first
	} else {
		m[k] = s
	}
	c.mu.Unlock()
	return s
}

// heapWriters returns the statements writing loc, building the program-wide
// writer index on first use.
func (c *SummaryCache) heapWriters(e *Engine, loc string) []heapSite {
	c.mu.RLock()
	idx := c.writers
	c.mu.RUnlock()
	if idx == nil {
		idx = c.buildHeapIndex(e, true)
	} else {
		c.hits.Add(1)
	}
	return idx[loc]
}

// heapReaders returns the statements reading loc.
func (c *SummaryCache) heapReaders(e *Engine, loc string) []heapSite {
	c.mu.RLock()
	idx := c.readers
	c.mu.RUnlock()
	if idx == nil {
		idx = c.buildHeapIndex(e, false)
	} else {
		c.hits.Add(1)
	}
	return idx[loc]
}

// buildHeapIndex scans every app method once, indexing heap accesses by
// location in program order (class insertion order, then method order, then
// instruction order — the order the direct implementation visited them).
func (c *SummaryCache) buildHeapIndex(e *Engine, writes bool) map[string][]heapSite {
	c.misses.Add(1)
	idx := map[string][]heapSite{}
	for _, cl := range e.Prog.AppClasses() {
		for _, m := range cl.Methods {
			for i := range m.Instrs {
				in := &m.Instrs[i]
				var loc string
				var reg int
				switch {
				case writes && in.Op == ir.OpFieldPut:
					loc, reg = e.heapLoc(m, in), in.B
				case writes && in.Op == ir.OpStaticPut:
					loc, reg = "s:"+in.Sym, in.B
				case !writes && in.Op == ir.OpFieldGet:
					loc, reg = e.heapLoc(m, in), in.Dst
				case !writes && in.Op == ir.OpStaticGet:
					loc, reg = "s:"+in.Sym, in.Dst
				default:
					continue
				}
				idx[loc] = append(idx[loc], heapSite{method: m.Ref(), index: i, reg: reg})
			}
		}
	}
	c.mu.Lock()
	if writes {
		if c.writers != nil {
			idx = c.writers
		} else {
			c.writers = idx
		}
	} else {
		if c.readers != nil {
			idx = c.readers
		} else {
			c.readers = idx
		}
	}
	c.mu.Unlock()
	return idx
}

// sumBuilder accumulates summary entries in emission order. Consecutive
// unconditional effects coalesce into one entry; a gated group flushes the
// pending unconditional entry first so replay order matches build order.
type sumBuilder struct {
	s   methodSummary
	cur sumEntry // pending unconditional effects
}

func (b *sumBuilder) flush() {
	if len(b.cur.includes) > 0 || len(b.cur.heapReads) > 0 ||
		len(b.cur.heapWrites) > 0 || len(b.cur.pushes) > 0 {
		b.s.entries = append(b.s.entries, b.cur)
		b.cur = sumEntry{}
	}
}

func (b *sumBuilder) include(inc sumInclude) { b.cur.includes = append(b.cur.includes, inc) }
func (b *sumBuilder) heapRead(loc string)    { b.cur.heapReads = append(b.cur.heapReads, loc) }
func (b *sumBuilder) heapWrite(loc string)   { b.cur.heapWrites = append(b.cur.heapWrites, loc) }
func (b *sumBuilder) push(method string, reg int) {
	b.cur.pushes = append(b.cur.pushes, sumPush{method: method, reg: reg})
}
func (b *sumBuilder) pushHeap(loc string) {
	b.cur.pushes = append(b.cur.pushes, sumPush{heap: true, loc: loc})
}

// gated appends a universe-gated effect group.
func (b *sumBuilder) gated(gate string, en sumEntry) {
	b.flush()
	en.gate = gate
	b.s.entries = append(b.s.entries, en)
}

func (b *sumBuilder) done() *methodSummary {
	b.flush()
	s := b.s
	return &s
}

// sumInc captures an include effect for statement idx of m, resolving
// modeled source/sink tags now so replay is instruction-free.
func (e *Engine) sumInc(m *ir.Method, idx int) sumInclude {
	inc := sumInclude{stmt: StmtID{m.Ref(), idx}}
	in := &m.Instrs[idx]
	if in.Op == ir.OpInvoke {
		if mm := e.Model.Lookup(in.Sym); mm != nil {
			inc.source, inc.sink = mm.Source, mm.Sink
		}
	}
	return inc
}

// applyInclude replays one include effect (the summary analog of include).
func (e *Engine) applyInclude(inc sumInclude, res *Result) {
	e.Stats.Add(obs.CtrTaintStmts, 1)
	res.Stmts[inc.stmt] = true
	if inc.source != "" {
		res.Sources[inc.source] = true
	}
	if inc.sink != "" {
		res.Sinks[inc.sink] = true
	}
}

// applySummary replays a transfer summary for fact f: gated groups apply
// when the gate method is inside the universe or the fact already escaped
// it; pushed facts inherit f's hop count.
func (e *Engine) applySummary(s *methodSummary, f fact, res *Result, w *worklist) {
	for i := range s.entries {
		en := &s.entries[i]
		if en.gate != "" && f.hops == 0 && !e.inUniverse(en.gate) {
			continue
		}
		for _, inc := range en.includes {
			e.applyInclude(inc, res)
		}
		for _, loc := range en.heapReads {
			res.HeapReads[loc] = true
		}
		for _, loc := range en.heapWrites {
			res.HeapWrites[loc] = true
		}
		for _, p := range en.pushes {
			if p.heap {
				w.push(fact{kind: factHeap, loc: p.loc, hops: f.hops})
			} else {
				w.push(fact{kind: factLocal, method: p.method, reg: p.reg, hops: f.hops})
			}
		}
	}
}

// applyHeapSites replays heap-index entries for a heap fact: sites outside
// the universe cost one async hop, bounded by MaxAsyncHops.
func (e *Engine) applyHeapSites(sites []heapSite, f fact, res *Result, w *worklist) {
	for _, site := range sites {
		hops := f.hops
		if !e.inUniverse(site.method) {
			hops = f.hops + 1
			if hops > e.MaxAsyncHops {
				continue
			}
		}
		e.Stats.Add(obs.CtrTaintStmts, 1)
		res.Stmts[StmtID{site.method, site.index}] = true
		w.push(fact{kind: factLocal, method: site.method, reg: site.reg, hops: hops})
	}
}

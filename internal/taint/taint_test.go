package taint

import (
	"reflect"
	"testing"

	"extractocol/internal/callgraph"
	"extractocol/internal/ir"
	"extractocol/internal/semmodel"
)

const (
	sbInit  = "java.lang.StringBuilder.<init>"
	sbApp   = "java.lang.StringBuilder.append"
	sbStr   = "java.lang.StringBuilder.toString"
	getInit = "org.apache.http.client.methods.HttpGet.<init>"
	clInit  = "org.apache.http.impl.client.DefaultHttpClient.<init>"
	execRef = "org.apache.http.client.HttpClient.execute"
	jGetStr = "org.json.JSONObject.getString"
	jParse  = "org.json.JSONObject.parse"
	entCont = "org.apache.http.util.EntityUtils.toString"
	getEnt  = "org.apache.http.HttpResponse.getEntity"
)

// simpleApp: a single handler builds a URI with StringBuilder, executes,
// parses JSON from the response and stores a value into a field.
func simpleApp() *ir.Program {
	p := ir.NewProgram("t.app")
	c := p.AddClass(&ir.Class{
		Name:   "t.app.Main",
		Fields: []*ir.Field{{Name: "token", Type: "java.lang.String"}},
	})
	b := ir.NewMethod(c, "fetch", false, nil, "void")
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial(sbInit, sb)
	base := b.ConstStr("https://api.example.com/v1/items?id=")
	b.InvokeVoid(sbApp, sb, base)
	id := b.ConstInt(7)
	b.InvokeVoid(sbApp, sb, id)
	uri := b.Invoke(sbStr, sb)
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, uri)
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial(clInit, cl)
	resp := b.Invoke(execRef, cl, req)
	ent := b.Invoke(getEnt, resp)
	body := b.InvokeStatic(entCont, ent)
	js := b.InvokeStatic(jParse, body)
	keyTok := b.ConstStr("token")
	tok := b.Invoke(jGetStr, js, keyTok)
	b.FieldPut(b.This(), "token", tok)
	// Unrelated statement that must stay out of both slices.
	b.ConstStr("unrelated-noise")
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.app.Main.fetch", Kind: ir.EventCreate}}
	return p
}

func findInvoke(m *ir.Method, sym string) int {
	for i := range m.Instrs {
		if m.Instrs[i].Op == ir.OpInvoke && m.Instrs[i].Sym == sym {
			return i
		}
	}
	return -1
}

func engineFor(p *ir.Program) *Engine {
	return NewEngine(p, semmodel.Default(), callgraph.Build(p, semmodel.Default()))
}

// hasStr reports membership in a resolved string set (HeapReads, Sinks, ...).
func hasStr(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

// sameResult compares two slices by their observable projections. Raw
// struct comparison is wrong across engines: sink/source/heap bits are
// keyed by each engine's symbol table, so the same slice can carry
// different interned IDs depending on what was interned before it.
func sameResult(a, b *Result) bool {
	return a.Stmts().Equal(b.Stmts()) &&
		reflect.DeepEqual(a.HeapReads(), b.HeapReads()) &&
		reflect.DeepEqual(a.HeapWrites(), b.HeapWrites()) &&
		reflect.DeepEqual(a.Sinks(), b.Sinks()) &&
		reflect.DeepEqual(a.Sources(), b.Sources())
}

func TestBackwardCollectsURIConstruction(t *testing.T) {
	p := simpleApp()
	e := engineFor(p)
	m := p.Method("t.app.Main.fetch")
	site := findInvoke(m, execRef)
	if site < 0 {
		t.Fatal("no execute site")
	}
	reqReg := m.Instrs[site].Args[1]
	res := e.Backward(StmtID{m.Ref(), site}, reqReg)

	// The slice must contain: HttpGet init, toString, both appends, the
	// URI constant, the StringBuilder init.
	for _, sym := range []string{getInit, sbStr, sbApp, sbInit} {
		if idx := findInvoke(m, sym); !res.Contains(m.Ref(), idx) {
			t.Errorf("backward slice missing %s", sym)
		}
	}
	foundConst := false
	noise := false
	for i := range m.Instrs {
		if m.Instrs[i].Op == ir.OpConstStr {
			if m.Instrs[i].Str == "https://api.example.com/v1/items?id=" && res.Contains(m.Ref(), i) {
				foundConst = true
			}
			if m.Instrs[i].Str == "unrelated-noise" && res.Contains(m.Ref(), i) {
				noise = true
			}
		}
	}
	if !foundConst {
		t.Error("backward slice missing URI constant")
	}
	if noise {
		t.Error("backward slice includes unrelated statement")
	}
}

func TestForwardCollectsResponseProcessing(t *testing.T) {
	p := simpleApp()
	e := engineFor(p)
	m := p.Method("t.app.Main.fetch")
	site := findInvoke(m, execRef)
	respReg := m.Instrs[site].Dst
	res := e.Forward(StmtID{m.Ref(), site}, respReg)

	for _, sym := range []string{getEnt, entCont, jParse, jGetStr} {
		if idx := findInvoke(m, sym); !res.Contains(m.Ref(), idx) {
			t.Errorf("forward slice missing %s", sym)
		}
	}
	if hw := res.HeapWrites(); len(hw) != 1 || hw[0] != "f:t.app.Main.token" {
		t.Errorf("HeapWrites = %v, want token field", hw)
	}
}

// callChainApp: URI is built in the handler and passed through a helper
// that performs the request; the response travels back through the return.
func callChainApp() *ir.Program {
	p := ir.NewProgram("t.chain")
	c := p.AddClass(&ir.Class{Name: "t.chain.Api"})

	h := ir.NewMethod(c, "doGet", false, []string{"java.lang.String"}, "java.lang.String")
	uriP := h.Param(0)
	req := h.New("org.apache.http.client.methods.HttpGet")
	h.InvokeSpecial(getInit, req, uriP)
	cl := h.New("org.apache.http.impl.client.DefaultHttpClient")
	h.InvokeSpecial(clInit, cl)
	resp := h.Invoke(execRef, cl, req)
	ent := h.Invoke(getEnt, resp)
	body := h.InvokeStatic(entCont, ent)
	h.Return(body)
	h.Done()

	m := ir.NewMethod(c, "onClick", false, nil, "void")
	u := m.ConstStr("https://x.example.com/ping")
	this := m.This()
	out := m.Invoke("t.chain.Api.doGet", this, u)
	js := m.InvokeStatic(jParse, out)
	k := m.ConstStr("pong")
	v := m.Invoke(jGetStr, js, k)
	m.FieldPut(this, "last", v)
	m.ReturnVoid()
	m.Done()
	c.Fields = []*ir.Field{{Name: "last", Type: "java.lang.String"}}

	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.chain.Api.onClick", Kind: ir.EventClick}}
	return p
}

func TestBackwardCrossesCallBoundary(t *testing.T) {
	p := callChainApp()
	e := engineFor(p)
	doGet := p.Method("t.chain.Api.doGet")
	site := findInvoke(doGet, execRef)
	res := e.Backward(StmtID{doGet.Ref(), site}, doGet.Instrs[site].Args[1])

	onClick := p.Method("t.chain.Api.onClick")
	constIdx := -1
	for i := range onClick.Instrs {
		if onClick.Instrs[i].Op == ir.OpConstStr && onClick.Instrs[i].Str == "https://x.example.com/ping" {
			constIdx = i
		}
	}
	if constIdx < 0 {
		t.Fatal("missing const")
	}
	if !res.Contains(onClick.Ref(), constIdx) {
		t.Error("backward slice should reach the caller's URI constant")
	}
}

func TestForwardCrossesReturnBoundary(t *testing.T) {
	p := callChainApp()
	e := engineFor(p)
	doGet := p.Method("t.chain.Api.doGet")
	site := findInvoke(doGet, execRef)
	res := e.Forward(StmtID{doGet.Ref(), site}, doGet.Instrs[site].Dst)

	onClick := p.Method("t.chain.Api.onClick")
	if idx := findInvoke(onClick, jGetStr); !res.Contains(onClick.Ref(), idx) {
		t.Error("forward slice should follow the return into the caller")
	}
	if !hasStr(res.HeapWrites(), "f:t.chain.Api.last") {
		t.Errorf("HeapWrites = %v", res.HeapWrites())
	}
}

// asyncApp: a location callback stores a query fragment into a field; a
// click handler builds the request from that field (the weather-app
// pattern of §3.4).
func asyncApp() *ir.Program {
	p := ir.NewProgram("t.async")
	c := p.AddClass(&ir.Class{
		Name:   "t.async.W",
		Fields: []*ir.Field{{Name: "loc", Type: "java.lang.String"}},
	})

	lb := ir.NewMethod(c, "onLocation", false, []string{"java.lang.String"}, "void")
	city := lb.Param(0)
	sb := lb.New("java.lang.StringBuilder")
	lb.InvokeSpecial(sbInit, sb)
	pre := lb.ConstStr("city=")
	lb.InvokeVoid(sbApp, sb, pre)
	lb.InvokeVoid(sbApp, sb, city)
	q := lb.Invoke(sbStr, sb)
	lb.FieldPut(lb.This(), "loc", q)
	lb.ReturnVoid()
	lb.Done()

	cb := ir.NewMethod(c, "onClick", false, nil, "void")
	sb2 := cb.New("java.lang.StringBuilder")
	cb.InvokeSpecial(sbInit, sb2)
	base := cb.ConstStr("https://w.example.com/q?")
	cb.InvokeVoid(sbApp, sb2, base)
	frag := cb.FieldGet(cb.This(), "loc")
	cb.InvokeVoid(sbApp, sb2, frag)
	uri := cb.Invoke(sbStr, sb2)
	req := cb.New("org.apache.http.client.methods.HttpGet")
	cb.InvokeSpecial(getInit, req, uri)
	cl := cb.New("org.apache.http.impl.client.DefaultHttpClient")
	cb.InvokeSpecial(clInit, cl)
	cb.Invoke(execRef, cl, req)
	cb.ReturnVoid()
	cb.Done()

	p.Manifest.EntryPoints = []ir.EntryPoint{
		{Method: "t.async.W.onLocation", Kind: ir.EventLocation},
		{Method: "t.async.W.onClick", Kind: ir.EventClick},
	}
	return p
}

func TestAsyncHeuristicCrossesOneHop(t *testing.T) {
	p := asyncApp()
	e := engineFor(p)
	// Restrict the universe to the click handler's context, as the
	// transaction enumerator does.
	cg := e.CG
	e.Universe = cg.ReachableBits("t.async.W.onClick")
	e.MaxAsyncHops = 1

	m := p.Method("t.async.W.onClick")
	site := findInvoke(m, execRef)
	res := e.Backward(StmtID{m.Ref(), site}, m.Instrs[site].Args[1])

	onLoc := p.Method("t.async.W.onLocation")
	cityConst := -1
	for i := range onLoc.Instrs {
		if onLoc.Instrs[i].Op == ir.OpConstStr && onLoc.Instrs[i].Str == "city=" {
			cityConst = i
		}
	}
	if !res.Contains(onLoc.Ref(), cityConst) {
		t.Error("async heuristic should pull the location handler's constant into the slice")
	}
	if !hasStr(res.HeapReads(), "f:t.async.W.loc") {
		t.Errorf("HeapReads = %v", res.HeapReads())
	}
}

func TestAsyncHeuristicDisabledStopsAtBoundary(t *testing.T) {
	p := asyncApp()
	e := engineFor(p)
	e.Universe = e.CG.ReachableBits("t.async.W.onClick")
	e.MaxAsyncHops = 0

	m := p.Method("t.async.W.onClick")
	site := findInvoke(m, execRef)
	res := e.Backward(StmtID{m.Ref(), site}, m.Instrs[site].Args[1])

	onLoc := p.Method("t.async.W.onLocation")
	for i := range onLoc.Instrs {
		if res.Contains(onLoc.Ref(), i) {
			t.Fatalf("with hops=0 the slice must not cross the event boundary (got instr %d)", i)
		}
	}
	// The heap read itself is still observed.
	if !hasStr(res.HeapReads(), "f:t.async.W.loc") {
		t.Errorf("HeapReads = %v", res.HeapReads())
	}
}

func TestSinksRecordedInForwardSlice(t *testing.T) {
	p := ir.NewProgram("t.media")
	c := p.AddClass(&ir.Class{Name: "t.media.M"})
	b := ir.NewMethod(c, "play", false, nil, "void")
	u := b.ConstStr("https://cdn.example.com/v.mp4")
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, u)
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial(clInit, cl)
	resp := b.Invoke(execRef, cl, req)
	ent := b.Invoke(getEnt, resp)
	body := b.InvokeStatic(entCont, ent)
	mp := b.New("android.media.MediaPlayer")
	b.InvokeVoid("android.media.MediaPlayer.setDataSource", mp, body)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.media.M.play", Kind: ir.EventClick}}

	e := engineFor(p)
	m := p.Method("t.media.M.play")
	site := findInvoke(m, execRef)
	res := e.Forward(StmtID{m.Ref(), site}, m.Instrs[site].Dst)
	if !hasStr(res.Sinks(), "media") {
		t.Errorf("Sinks = %v, want media", res.Sinks())
	}
}

func TestResourceReadRecorded(t *testing.T) {
	p := ir.NewProgram("t.res")
	p.Resources["api_key"] = "KEY123"
	c := p.AddClass(&ir.Class{Name: "t.res.R"})
	b := ir.NewMethod(c, "go", false, nil, "void")
	resObj := b.New("android.content.res.Resources")
	keyName := b.ConstStr("api_key")
	key := b.Invoke("android.content.res.Resources.getString", resObj, keyName)
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial(sbInit, sb)
	pre := b.ConstStr("https://api.example.com/x?key=")
	b.InvokeVoid(sbApp, sb, pre)
	b.InvokeVoid(sbApp, sb, key)
	uri := b.Invoke(sbStr, sb)
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, uri)
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial(clInit, cl)
	b.Invoke(execRef, cl, req)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.res.R.go", Kind: ir.EventCreate}}

	e := engineFor(p)
	m := p.Method("t.res.R.go")
	site := findInvoke(m, execRef)
	res := e.Backward(StmtID{m.Ref(), site}, m.Instrs[site].Args[1])
	if !hasStr(res.HeapReads(), "res:api_key") {
		t.Errorf("HeapReads = %v, want res:api_key", res.HeapReads())
	}
}

func TestSliceIsSmallFractionOfProgram(t *testing.T) {
	// The paper reports slices around 6.3% of all code for Diode; here we
	// simply require the slice to be a strict, small subset.
	p := simpleApp()
	// Pad the program with unrelated methods.
	c := p.Class("t.app.Main")
	for i := 0; i < 20; i++ {
		b := ir.NewMethod(c, "pad"+string(rune('a'+i)), true, nil, "void")
		b.ConstStr("pad")
		b.ConstInt(int64(i))
		b.ReturnVoid()
		b.Done()
	}
	e := engineFor(p)
	m := p.Method("t.app.Main.fetch")
	site := findInvoke(m, execRef)
	res := e.Backward(StmtID{m.Ref(), site}, m.Instrs[site].Args[1])
	if total := p.InstrCount(); res.Size() >= total/2 {
		t.Fatalf("slice %d of %d instructions; not selective", res.Size(), total)
	}
}

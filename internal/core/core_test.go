package core

import (
	"strings"
	"testing"

	"extractocol/internal/ir"
	"extractocol/internal/siglang"
)

const (
	sbInit   = "java.lang.StringBuilder.<init>"
	sbApp    = "java.lang.StringBuilder.append"
	sbStr    = "java.lang.StringBuilder.toString"
	getInit  = "org.apache.http.client.methods.HttpGet.<init>"
	postInit = "org.apache.http.client.methods.HttpPost.<init>"
	clInit   = "org.apache.http.impl.client.DefaultHttpClient.<init>"
	execRef  = "org.apache.http.client.HttpClient.execute"
	jParse   = "org.json.JSONObject.parse"
	jGetStr  = "org.json.JSONObject.getString"
	entCont  = "org.apache.http.util.EntityUtils.toString"
	getEnt   = "org.apache.http.HttpResponse.getEntity"
	seInit   = "org.apache.http.entity.StringEntity.<init>"
	setEnt   = "org.apache.http.client.methods.HttpPost.setEntity"
	addHdr   = "org.apache.http.client.methods.HttpPost.addHeader"
)

// radioRedditLike builds a miniature of the paper's radio reddit app:
//   - login POST whose JSON response carries modhash and cookie,
//     stored into fields;
//   - vote POST whose body uses the stored modhash and whose header
//     carries the stored cookie.
func radioRedditLike() *ir.Program {
	p := ir.NewProgram("com.radioreddit.android")
	c := p.AddClass(&ir.Class{Name: "rr.Api", Fields: []*ir.Field{
		{Name: "modhash", Type: "java.lang.String"},
		{Name: "cookie", Type: "java.lang.String"},
	}})

	lb := ir.NewMethod(c, "onLogin", false, []string{"java.lang.String", "java.lang.String"}, "void")
	user, pass := lb.Param(0), lb.Param(1)
	sb := lb.New("java.lang.StringBuilder")
	lb.InvokeSpecial(sbInit, sb)
	s1 := lb.ConstStr("user=")
	lb.InvokeVoid(sbApp, sb, s1)
	lb.InvokeVoid(sbApp, sb, user)
	s2 := lb.ConstStr("&passwd=")
	lb.InvokeVoid(sbApp, sb, s2)
	lb.InvokeVoid(sbApp, sb, pass)
	s3 := lb.ConstStr("&api_type=json")
	lb.InvokeVoid(sbApp, sb, s3)
	body := lb.Invoke(sbStr, sb)
	ent := lb.New("org.apache.http.entity.StringEntity")
	lb.InvokeSpecial(seInit, ent, body)
	u := lb.ConstStr("https://ssl.reddit.com/api/login")
	req := lb.New("org.apache.http.client.methods.HttpPost")
	lb.InvokeSpecial(postInit, req, u)
	lb.InvokeVoid(setEnt, req, ent)
	cl := lb.New("org.apache.http.impl.client.DefaultHttpClient")
	lb.InvokeSpecial(clInit, cl)
	resp := lb.Invoke(execRef, cl, req)
	re := lb.Invoke(getEnt, resp)
	raw := lb.InvokeStatic(entCont, re)
	js := lb.InvokeStatic(jParse, raw)
	km := lb.ConstStr("modhash")
	mh := lb.Invoke(jGetStr, js, km)
	lb.FieldPut(lb.This(), "modhash", mh)
	kc := lb.ConstStr("cookie")
	ck := lb.Invoke(jGetStr, js, kc)
	lb.FieldPut(lb.This(), "cookie", ck)
	lb.ReturnVoid()
	lb.Done()

	vb := ir.NewMethod(c, "onVote", false, []string{"java.lang.String"}, "void")
	id := vb.Param(0)
	sb2 := vb.New("java.lang.StringBuilder")
	vb.InvokeSpecial(sbInit, sb2)
	v1 := vb.ConstStr("id=")
	vb.InvokeVoid(sbApp, sb2, v1)
	vb.InvokeVoid(sbApp, sb2, id)
	v2 := vb.ConstStr("&uh=")
	vb.InvokeVoid(sbApp, sb2, v2)
	uh := vb.FieldGet(vb.This(), "modhash")
	vb.InvokeVoid(sbApp, sb2, uh)
	body2 := vb.Invoke(sbStr, sb2)
	ent2 := vb.New("org.apache.http.entity.StringEntity")
	vb.InvokeSpecial(seInit, ent2, body2)
	u2 := vb.ConstStr("http://www.reddit.com/api/vote")
	req2 := vb.New("org.apache.http.client.methods.HttpPost")
	vb.InvokeSpecial(postInit, req2, u2)
	vb.InvokeVoid(setEnt, req2, ent2)
	hk := vb.ConstStr("Cookie")
	hv := vb.FieldGet(vb.This(), "cookie")
	vb.InvokeVoid(addHdr, req2, hk, hv)
	cl2 := vb.New("org.apache.http.impl.client.DefaultHttpClient")
	vb.InvokeSpecial(clInit, cl2)
	vb.Invoke(execRef, cl2, req2)
	vb.ReturnVoid()
	vb.Done()

	p.Manifest.EntryPoints = []ir.EntryPoint{
		{Method: "rr.Api.onLogin", Kind: ir.EventLogin},
		{Method: "rr.Api.onVote", Kind: ir.EventClick},
	}
	return p
}

func TestAnalyzeRadioRedditLike(t *testing.T) {
	rep, err := Analyze(radioRedditLike(), NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Transactions) != 2 {
		t.Fatalf("transactions = %d, want 2", len(rep.Transactions))
	}
	byURI := map[string]*Transaction{}
	for _, tx := range rep.Transactions {
		byURI[siglang.RegexBody(tx.Request.URI)] = tx
	}
	login := byURI[`https://ssl\.reddit\.com/api/login`]
	if login == nil {
		t.Fatalf("login transaction missing: %v", keys(byURI))
	}
	if login.Request.Method != "POST" || !login.Paired {
		t.Errorf("login: method=%s paired=%v", login.Request.Method, login.Paired)
	}
	// Login body keywords: user, passwd, api_type.
	kw := siglang.Keywords(login.Request.Body)
	if strings.Join(kw, ",") != "api_type,passwd,user" {
		t.Errorf("login body keywords = %v", kw)
	}
	// Login response: modhash + cookie.
	rkw := siglang.Keywords(&siglang.JSON{Root: login.Response.JSON})
	if strings.Join(rkw, ",") != "cookie,modhash" {
		t.Errorf("login response keywords = %v", rkw)
	}

	vote := byURI[`http://www\.reddit\.com/api/vote`]
	if vote == nil {
		t.Fatal("vote transaction missing")
	}
	if got := siglang.Keywords(vote.Request.Body); strings.Join(got, ",") != "id,uh" {
		t.Errorf("vote body keywords = %v", got)
	}

	// The dependency graph must link login -> vote for both the modhash
	// (body) and the cookie (header).
	var sawBody, sawHeader bool
	for _, d := range rep.Deps {
		if d.From == login.ID && d.To == vote.ID {
			if d.FromField == "modhash" && strings.HasPrefix(d.ToPart, "body") {
				sawBody = true
			}
			if d.FromField == "cookie" && d.ToPart == "header:Cookie" {
				sawHeader = true
			}
		}
	}
	if !sawBody {
		t.Errorf("missing modhash body dependency: %+v", rep.Deps)
	}
	if !sawHeader {
		t.Errorf("missing cookie header dependency: %+v", rep.Deps)
	}
}

func TestSliceFractionIsSmall(t *testing.T) {
	p := radioRedditLike()
	// Pad with dead code to give slices something to exclude.
	c := p.Class("rr.Api")
	for i := 0; i < 30; i++ {
		b := ir.NewMethod(c, "pad"+string(rune('A'+i)), true, nil, "void")
		for j := 0; j < 10; j++ {
			b.ConstInt(int64(j))
		}
		b.ReturnVoid()
		b.Done()
	}
	rep, err := Analyze(p, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SliceFraction <= 0 || rep.SliceFraction >= 0.5 {
		t.Fatalf("slice fraction = %.3f, want small positive", rep.SliceFraction)
	}
}

func TestDeduplicationAcrossEntries(t *testing.T) {
	// Two entry points invoking the same fetch method yield one unique
	// signature with two recorded entries.
	p := ir.NewProgram("t.dd")
	c := p.AddClass(&ir.Class{Name: "t.dd.D"})
	f := ir.NewMethod(c, "fetch", false, nil, "void")
	u := f.ConstStr("https://dd.example.com/feed.json")
	req := f.New("org.apache.http.client.methods.HttpGet")
	f.InvokeSpecial(getInit, req, u)
	cl := f.New("org.apache.http.impl.client.DefaultHttpClient")
	f.InvokeSpecial(clInit, cl)
	f.Invoke(execRef, cl, req)
	f.ReturnVoid()
	f.Done()
	for _, name := range []string{"onA", "onB"} {
		b := ir.NewMethod(c, name, false, nil, "void")
		b.InvokeVoid("t.dd.D.fetch", b.This())
		b.ReturnVoid()
		b.Done()
	}
	p.Manifest.EntryPoints = []ir.EntryPoint{
		{Method: "t.dd.D.onA", Kind: ir.EventClick},
		{Method: "t.dd.D.onB", Kind: ir.EventClick},
	}
	rep, err := Analyze(p, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Transactions) != 1 {
		t.Fatalf("transactions = %d, want 1 after dedup", len(rep.Transactions))
	}
	if len(rep.Transactions[0].Entries) != 2 {
		t.Fatalf("entries = %v", rep.Transactions[0].Entries)
	}
}

func TestScopePrefixFiltersLibraries(t *testing.T) {
	p := ir.NewProgram("com.kayak.android")
	c := p.AddClass(&ir.Class{Name: "com.kayak.Api"})
	b := ir.NewMethod(c, "go", false, nil, "void")
	u := b.ConstStr("https://www.kayak.example/api/x")
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, u)
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial(clInit, cl)
	b.Invoke(execRef, cl, req)
	b.ReturnVoid()
	b.Done()

	lib := p.AddClass(&ir.Class{Name: "com.adlib.Tracker"})
	tb := ir.NewMethod(lib, "track", false, nil, "void")
	tu := tb.ConstStr("https://ads.example.com/pixel")
	treq := tb.New("org.apache.http.client.methods.HttpGet")
	tb.InvokeSpecial(getInit, treq, tu)
	tcl := tb.New("org.apache.http.impl.client.DefaultHttpClient")
	tb.InvokeSpecial(clInit, tcl)
	tb.Invoke(execRef, tcl, treq)
	tb.ReturnVoid()
	tb.Done()

	p.Manifest.EntryPoints = []ir.EntryPoint{
		{Method: "com.kayak.Api.go", Kind: ir.EventCreate},
		{Method: "com.adlib.Tracker.track", Kind: ir.EventCreate},
	}

	full, err := Analyze(p, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Transactions) != 2 {
		t.Fatalf("unscoped transactions = %d", len(full.Transactions))
	}
	opts := NewOptions()
	opts.ScopePrefix = "com.kayak."
	scoped, err := Analyze(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(scoped.Transactions) != 1 {
		t.Fatalf("scoped transactions = %d, want 1", len(scoped.Transactions))
	}
}

func TestCountHelpers(t *testing.T) {
	rep, err := Analyze(radioRedditLike(), NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := rep.CountByMethod()
	if m["POST"] != 2 {
		t.Errorf("POST count = %d", m["POST"])
	}
	_, jsonN, _ := rep.BodyKindCounts()
	if jsonN != 1 { // login's JSON response
		t.Errorf("json count = %d", jsonN)
	}
	if rep.PairCount() != 1 {
		t.Errorf("pairs = %d", rep.PairCount())
	}
}

func keys(m map[string]*Transaction) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

package core

import (
	"testing"

	"extractocol/internal/obs"
)

// TestAnalyzeProfileInvariants pins the observability contract of Analyze:
// every pipeline stage appears in the profile, phase timings are sane, and
// the workload counters agree with the facts the report itself states.
func TestAnalyzeProfileInvariants(t *testing.T) {
	rep, err := Analyze(radioRedditLike(), NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	prof := rep.Profile
	if prof == nil {
		t.Fatal("Report.Profile is nil")
	}

	wantPhases := []string{
		obs.PhaseValidate, obs.PhaseCallgraph, obs.PhaseSlice, obs.PhasePairing,
		obs.PhaseSigbuild, obs.PhaseDedup, obs.PhaseTxdep,
	}
	if len(prof.Phases) != len(wantPhases) {
		t.Fatalf("profile has %d phases, want %d: %+v", len(prof.Phases), len(wantPhases), prof.Phases)
	}
	for i, ph := range prof.Phases {
		if ph.Name != wantPhases[i] {
			t.Errorf("phase[%d] = %q, want %q (pipeline order)", i, ph.Name, wantPhases[i])
		}
		if ph.DurationNS < 0 {
			t.Errorf("phase %q has negative duration %d", ph.Name, ph.DurationNS)
		}
	}

	sum, total := prof.PhaseSum(), rep.Duration
	if sum <= 0 {
		t.Fatalf("phase sum = %v, want > 0", sum)
	}
	if sum > total {
		t.Errorf("phase sum %v exceeds report duration %v", sum, total)
	}
	// The phases bracket essentially all of Analyze; anything else is map
	// shuffling between stages. Half the wall clock is a very generous bound
	// on that overhead.
	if sum < total/2 {
		t.Errorf("phases cover %v of %v; the breakdown is missing work", sum, total)
	}
	if prof.TotalNS <= 0 {
		t.Errorf("TotalNS = %d, want > 0", prof.TotalNS)
	}

	// Counters must agree with the report's own facts.
	if got := prof.Counter(obs.CtrDPSites); int(got) != rep.DPCount {
		t.Errorf("%s = %d, want DPCount %d", obs.CtrDPSites, got, rep.DPCount)
	}
	if got := prof.Counter(obs.CtrTransactions); int(got) != len(rep.Transactions) {
		t.Errorf("%s = %d, want %d transactions", obs.CtrTransactions, got, len(rep.Transactions))
	}
	if got := prof.Counter(obs.CtrTxdepEdges); int(got) != len(rep.Deps) {
		t.Errorf("%s = %d, want %d deps", obs.CtrTxdepEdges, got, len(rep.Deps))
	}
	// The sample app has two real transactions, so the pipeline must have
	// sliced, propagated taint, and built signatures.
	for _, ctr := range []string{
		obs.CtrSlicesBackward, obs.CtrTaintFacts, obs.CtrTaintStmts, obs.CtrSigbuildJobs,
	} {
		if prof.Counter(ctr) <= 0 {
			t.Errorf("%s = %d, want > 0", ctr, prof.Counter(ctr))
		}
	}
	if jobs, errs := prof.Counter(obs.CtrSigbuildJobs), prof.Counter(obs.CtrSigbuildErrors); errs > jobs {
		t.Errorf("sigbuild errors %d exceed jobs %d", errs, jobs)
	}

	if w := prof.Gauges[obs.GaugeSigbuildWorkers]; w < 1 {
		t.Errorf("%s = %v, want >= 1", obs.GaugeSigbuildWorkers, w)
	}
	if u := prof.Gauges[obs.GaugeSigbuildUtilization]; u < 0 || u > 1.05 {
		t.Errorf("%s = %v, want within [0, 1]", obs.GaugeSigbuildUtilization, u)
	}
}

// TestAnalyzeProfileScopedCounters checks the scope filter is visible in the
// profile: scoped-out transactions are counted, not silently dropped.
func TestAnalyzeProfileScopedCounters(t *testing.T) {
	opts := NewOptions()
	opts.ScopePrefix = "no.such.prefix"
	rep, err := Analyze(radioRedditLike(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Transactions) != 0 {
		t.Fatalf("scope filter kept %d transactions, want 0", len(rep.Transactions))
	}
	if got := rep.Profile.Counter(obs.CtrSigbuildScoped); got <= 0 {
		t.Errorf("%s = %d, want > 0 when everything is scoped out", obs.CtrSigbuildScoped, got)
	}
	if got := rep.Profile.Counter(obs.CtrSigbuildJobs); got != 0 {
		t.Errorf("%s = %d, want 0 when everything is scoped out", obs.CtrSigbuildJobs, got)
	}
}

// Package core orchestrates the Extractocol pipeline (Fig. 2): demarcation
// point identification, bidirectional network-aware slicing, object-aware
// augmentation, signature extraction, HTTP transaction reconstruction
// (request/response pairing), and inter-transaction dependency analysis.
// Its input is a binary container (ir.Program decoded by package dex); its
// output is a complete protocol behavior report.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"extractocol/internal/budget"
	"extractocol/internal/callgraph"
	"extractocol/internal/intern"
	"extractocol/internal/ir"
	"extractocol/internal/obs"
	"extractocol/internal/pairing"
	"extractocol/internal/semmodel"
	"extractocol/internal/sigbuild"
	"extractocol/internal/siglang"
	"extractocol/internal/slice"
	"extractocol/internal/taint"
	"extractocol/internal/txdep"
)

// Options configures an analysis run.
type Options struct {
	// MaxAsyncHops bounds asynchronous event-boundary crossings (§3.4).
	// 0 disables the heuristic (the paper's open-source setting); 1 is the
	// paper's closed-source setting and the default used by NewOptions.
	MaxAsyncHops int
	// ScopePrefix, when non-empty, keeps only transactions whose
	// demarcation point lies in a class with this prefix (used in §5.3 to
	// scope Kayak analysis to com.kayak, excluding external libraries).
	ScopePrefix string
	// ModelIntents enables the §4 intent extension: intent-triggered entry
	// points become analysis roots, closing the coverage gap of Table 1's
	// rows where manual fuzzing beats the analyzer.
	ModelIntents bool
	// Model overrides the semantic model; nil uses semmodel.Default().
	Model *semmodel.Model
	// PairingOracle swaps the inverted-index pairing analysis for the
	// reference pairwise-scan implementation (pairing.AnalyzeOracle). The
	// two are held to identical output by the differential harness; the
	// oracle is quadratic and exists for equivalence checking only.
	PairingOracle bool
	// LegacySets runs every taint fixpoint (slice extraction and pairing
	// flow checks) on the pre-interning string/map replay instead of the
	// dense bitset path. Like PairingOracle this is a differential-testing
	// oracle — reports must come out identical — and is never cached.
	LegacySets bool
	// Workers bounds the intra-app worker pools (slice extraction and
	// signature building): 0 means GOMAXPROCS, 1 forces serial execution.
	// Output is deterministic regardless.
	Workers int

	// Deadline bounds the wall-clock time of one Analyze call; 0 means
	// unlimited. On exhaustion in-flight loops stop at their next budget
	// check and the report ships with every completed transaction plus
	// diagnostics naming what was dropped.
	Deadline time.Duration
	// Cancel, when non-nil, aborts the analysis cooperatively when closed
	// (same graceful degradation as an exhausted deadline).
	Cancel <-chan struct{}
	// MaxSliceSteps caps cumulative taint-propagation steps across the
	// whole slice phase (a pool drained in job order; forces serial slicing
	// so the surviving transactions form a deterministic prefix). 0 = off.
	MaxSliceSteps int64
	// MaxFixpointIters caps the steps of any single fixpoint — one taint
	// worklist run or one signature interpretation. 0 = off.
	MaxFixpointIters int64
	// Faults injects deterministic panics and hangs at pipeline probe
	// points (see budget.FaultInjector); tests only.
	Faults *budget.FaultInjector

	// Tracer, when non-nil, records hierarchical spans (run → phase →
	// per-transaction job → taint fixpoint) on the same per-worker shards
	// that carry counters; export with Tracer.Export after Analyze returns.
	// Nil costs nothing on the hot path.
	Tracer *obs.Tracer
	// Explain attaches an Evidence provenance record to every reported
	// transaction (entry point, slice sizes, pairing witness, signature
	// cost). Off by default so reports stay byte-identical.
	Explain bool

	// Obs, when non-nil, attaches this run's collector to a process-wide
	// registry for the duration of the Analyze call, so a live ops endpoint
	// (internal/ops) can scrape in-flight phase latencies and counters.
	// Never affects the report.
	Obs *obs.Registry
	// Events, when non-nil, streams structured lifecycle events — run,
	// phase and job boundaries, cache hits and stores, diagnostics — as
	// JSONL through the shared log. Never affects the report.
	Events *obs.EventLog
	// Flight arms the per-worker flight recorder: the newest spans of every
	// worker survive in a bounded ring, and a recovered panic or tripped
	// deadline dumps the recording goroutine's ring into the resulting
	// Diagnostic.Flight. Off by default — ring contents depend on worker
	// scheduling, so dumps are opt-in to keep default reports
	// byte-deterministic.
	Flight bool

	// Cache, when non-nil together with a non-empty CacheKey, serves and
	// stores whole reports across Analyze calls: a hit skips every pipeline
	// phase and returns the stored report (Duration and Profile are always
	// recomputed — a warm profile records only the resultcache phase). Only
	// clean runs (no diagnostics) are stored, so degraded or fault-injected
	// reports never poison the cache.
	Cache ReportCache
	// CacheKey is the content address of this (binary, options) pair —
	// compute it with resultcache.KeyFor / resultcache.KeyForProgram after
	// every report-affecting option is set. Empty disables the cache.
	CacheKey string
}

// ReportCache serves complete reports for repeated analyses of the same
// binary + options pair. Implemented by internal/resultcache; declared here
// so core stays independent of the cache's on-disk format.
type ReportCache interface {
	// Get returns (report, true, nil) on a hit, (nil, false, nil) on a
	// miss, and a non-nil error when an entry exists under key but cannot
	// be decoded (corrupt, truncated, wrong format version).
	Get(key string) (*Report, bool, error)
	// Put stores r under key.
	Put(key string, r *Report) error
}

// drainCacheContention folds a report cache's contention gauges into this
// run's profile, when the implementation exposes them (resultcache does:
// parallel workers share one cache per directory, so same-key lock waits,
// races and install retries are observable). The drain is read-and-reset,
// so concurrent runs split the totals instead of double-counting them.
func drainCacheContention(cache ReportCache, col *obs.Collector) {
	d, ok := cache.(interface {
		DrainContention() (lockWaitNS, sameKeyRaces, installRetries int64)
	})
	if !ok {
		return
	}
	wait, races, retries := d.DrainContention()
	if wait != 0 {
		col.Add(obs.CtrCacheLockWaitNS, wait)
	}
	if races != 0 {
		col.Add(obs.CtrCacheKeyRaces, races)
	}
	if retries != 0 {
		col.Add(obs.CtrCacheInstallRetries, retries)
	}
}

// NewOptions returns the default configuration (async heuristic enabled).
func NewOptions() Options { return Options{MaxAsyncHops: 1} }

// newBudget materializes the options' resource envelope, nil when the run
// is unlimited and fault-free (the common case: zero overhead).
func (o Options) newBudget(start time.Time) *budget.Budget {
	if o.Deadline <= 0 && o.Cancel == nil && o.MaxSliceSteps <= 0 &&
		o.MaxFixpointIters <= 0 && o.Faults == nil {
		return nil
	}
	l := budget.Limits{
		Cancel:        o.Cancel,
		SliceSteps:    o.MaxSliceSteps,
		FixpointIters: o.MaxFixpointIters,
	}
	if o.Deadline > 0 {
		l.Deadline = start.Add(o.Deadline)
	}
	return budget.New(l).WithFaults(o.Faults)
}

// errScoped marks transactions excluded by Options.ScopePrefix.
var errScoped = fmt.Errorf("transaction out of scope")

// Transaction is one reconstructed HTTP transaction.
type Transaction struct {
	ID    int
	DP    string // demarcation point "method@index"
	DPRef string // modeled API performing the I/O
	Entry ir.EntryPoint

	Request  *sigbuild.RequestSig
	Response *sigbuild.ResponseSig

	// Paired reports a reconstructed request/response pair whose response
	// body is actually processed by the app.
	Paired bool
	// OneToOne/SharedHandler qualify the pairing (§3.3, Fig. 5);
	// FlowConfirmed means information-flow analysis from the request's
	// disjoint segment reached the response slice.
	OneToOne      bool
	SharedHandler bool
	FlowConfirmed bool

	Sinks   []string
	Sources []string

	// Entries lists every entry point producing this signature when
	// duplicates were folded.
	Entries []string

	// Evidence is the provenance chain behind this transaction (its
	// canonical pre-fold instance); nil unless Options.Explain was set.
	Evidence *Evidence
}

// URIRegex renders the request URI signature as an anchored regex.
func (t *Transaction) URIRegex() string { return siglang.Regex(t.Request.URI) }

// Key is the deduplication identity of the transaction's request. Two
// entry points reaching the same signature fold together; fully dynamic
// URIs ("GET (.*)", TED's transactions #4/#5/#7/#8) carry no distinguishing
// constants, so they remain distinct per demarcation-point site, matching
// how the paper counts them.
func (t *Transaction) Key() string {
	var b strings.Builder
	b.WriteString(t.Request.Method)
	b.WriteString("|")
	uriCanon := siglang.Canon(t.Request.URI)
	b.WriteString(uriCanon)
	if !strings.Contains(uriCanon, `"`) {
		b.WriteString("|")
		b.WriteString(t.DP)
	}
	b.WriteString("|")
	b.WriteString(t.Request.BodyKind)
	b.WriteString("|")
	b.WriteString(siglang.Canon(t.Request.Body))
	return b.String()
}

// Report is the complete analysis output for one application.
type Report struct {
	Package  string
	AppName  string
	Duration time.Duration

	Transactions []*Transaction
	Deps         []txdep.Dep

	// SliceFraction is the fraction of app instructions included in at
	// least one slice (the paper reports 6.3% for Diode).
	SliceFraction float64
	// DPCount is the number of demarcation point sites found.
	DPCount int

	// Profile is the per-phase timing and workload breakdown of this run
	// (validate, callgraph, slice, pairing, sigbuild, dedup, txdep).
	Profile *obs.Profile

	// Diagnostics records every degradation event of the run — skipped
	// jobs, truncated slices, recovered panics, exceeded phases — sorted
	// by (phase, site, detail) so parallel runs report identically.
	// Empty for healthy unbudgeted runs.
	Diagnostics []budget.Diagnostic
}

// Evidence is the provenance record behind one reported transaction: where
// the analysis entered, what it sliced, how pairing was confirmed, and what
// signature construction cost. Attached only under Options.Explain; nil
// otherwise, and never rendered by the default report formats.
type Evidence struct {
	// Entry is the entry-point method whose slice produced the transaction,
	// with its lifecycle/event kind and registration label.
	Entry      string `json:"entry"`
	EntryKind  string `json:"entryKind"`
	EntryLabel string `json:"entryLabel,omitempty"`
	// DP is the demarcation point site ("method@index"), DPRef the modeled
	// API performing the network I/O there.
	DP    string `json:"dp"`
	DPRef string `json:"dpRef"`

	// ReqStmts / RespStmts count statements in the final (augmented)
	// request and response slices; ReqSliced / RespSliced are the sizes
	// before object-aware augmentation, so the difference is what
	// augmentation added. ReqMethods / RespMethods count methods touched.
	ReqStmts    int `json:"reqStmts"`
	ReqSliced   int `json:"reqSliced"`
	ReqMethods  int `json:"reqMethods"`
	RespStmts   int `json:"respStmts,omitempty"`
	RespSliced  int `json:"respSliced,omitempty"`
	RespMethods int `json:"respMethods,omitempty"`

	// HeapReads / HeapWrites are the heap locations bridging asynchronous
	// events into and out of the slices (§3.4) — the raw material of
	// inter-transaction dependency edges.
	HeapReads  []string `json:"heapReads,omitempty"`
	HeapWrites []string `json:"heapWrites,omitempty"`

	// FlowSeeds is how many disjoint request statements seeded the Fig. 5
	// pairing flow check; FlowWitness ("method@index") is the smallest
	// response statement the flow reached, empty when unconfirmed.
	FlowSeeds   int    `json:"flowSeeds,omitempty"`
	FlowWitness string `json:"flowWitness,omitempty"`

	// SigMethods counts abstract method interpretations spent building the
	// signature; SigPrePass of the interpreted methods ran outside the
	// entry context to pre-populate the cross-event heap.
	SigMethods int `json:"sigMethods"`
	SigPrePass int `json:"sigPrePass,omitempty"`
}

// Analyze runs the full pipeline over a decoded application binary. Every
// stage is bracketed by a phase timer, and workload counters flow into the
// returned Report.Profile via per-goroutine shards (see internal/obs).
//
// Under a budget (Options.Deadline / step limits / Cancel) the pipeline
// degrades instead of failing: exhausted or panicking work is dropped
// per-transaction, recorded in Report.Diagnostics, and everything that
// completed still ships. A panic outside the recovered worker scopes is
// converted into an error rather than killing the process.
func Analyze(p *ir.Program, opts Options) (rep *Report, err error) {
	start := time.Now()
	bud := opts.newBudget(start)
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, fmt.Errorf("core: panic during analysis: %v", r)
		}
	}()
	col := obs.NewCollector()
	col.SetTracer(opts.Tracer)
	col.SetEvents(opts.Events, p.Manifest.Package)
	if opts.Flight {
		col.EnableFlight()
	}
	// Live exposition: the collector joins the process registry for the
	// duration of the run, so a concurrent /metrics scrape sees this app's
	// in-flight phases; Detach folds the final snapshot into the
	// completed-runs aggregate (it runs before this function's own deferred
	// recover, after all observations).
	opts.Obs.Attach(col)
	defer opts.Obs.Detach(col)
	col.Event(obs.Event{Type: obs.EvRunStart})
	defer func() {
		col.Event(obs.Event{Type: obs.EvRunEnd, DurNS: time.Since(start).Nanoseconds()})
	}()
	// The run span brackets the whole pipeline on the coordinator track;
	// nil-safe and free when tracing is off.
	endRun := opts.Tracer.Span(obs.CatRun, p.Manifest.Package)
	defer endRun()
	model := opts.Model
	if model == nil {
		model = semmodel.Default()
	}

	// diags accumulates degradation events (sorted before report assembly);
	// counting happens here (not in the phases) so each event is tallied
	// exactly once.
	var diags []budget.Diagnostic
	note := func(ds ...budget.Diagnostic) {
		for _, d := range ds {
			diags = append(diags, d)
			col.Add(obs.CtrDiagnostics, 1)
			col.Event(obs.Event{Type: obs.EvDiagnostic, Phase: d.Phase,
				Site: d.Site, Detail: d.Kind + ": " + d.Detail})
			switch d.Kind {
			case budget.DiagPanic:
				col.Add(obs.CtrPanicsRecovered, 1)
			case budget.DiagBudget:
				col.Add(obs.CtrBudgetExceeded, 1)
			case budget.DiagSkipped:
				col.Add(obs.CtrBudgetSkipped, 1)
			}
		}
	}

	// Warm path: a cache hit replaces the entire pipeline, so repeated
	// analyses of the same binary under the same options cost one disk read
	// and one decode. The lookup is bracketed by its own phase so -profile
	// and -trace distinguish warm from cold runs; an unusable entry (corrupt,
	// truncated, wrong format version) degrades to a full recompute with a
	// typed diagnostic, never an error or a wrong report.
	if opts.Cache != nil && opts.CacheKey != "" {
		endCache := col.Phase(obs.PhaseResultCache)
		cached, hit, cerr := opts.Cache.Get(opts.CacheKey)
		endCache()
		drainCacheContention(opts.Cache, col)
		switch {
		case hit:
			col.Add(obs.CtrCacheReportHits, 1)
			col.Event(obs.Event{Type: obs.EvCacheHit, Site: opts.CacheKey})
			cached.Duration = time.Since(start)
			col.Observe(obs.HistAnalyze, cached.Duration.Nanoseconds())
			cached.Profile = col.Snapshot()
			return cached, nil
		case cerr != nil:
			col.Add(obs.CtrCacheReportInvalid, 1)
			note(budget.CacheDiag(opts.CacheKey, cerr.Error()))
		default:
			col.Add(obs.CtrCacheReportMisses, 1)
		}
	}

	endValidate := col.Phase(obs.PhaseValidate)
	bud.MaybePanic(budget.PhaseValidate, p.Manifest.Package)
	verr := p.Validate()
	endValidate()
	if verr != nil {
		return nil, fmt.Errorf("core: invalid program: %w", verr)
	}

	endCallgraph := col.Phase(obs.PhaseCallgraph)
	cg := callgraph.Build(p, model)
	endCallgraph()

	// The per-program analysis cache: taint transfer summaries shared by
	// the slice worker pool and the pairing flow checks (reachability and
	// type memoization live on the call graph itself).
	sums := taint.NewSummaryCache()

	endSlice := col.Phase(obs.PhaseSlice)
	txs, sliceDiags := slice.FindBudgeted(p, model, cg, slice.Options{
		MaxAsyncHops:   opts.MaxAsyncHops,
		IncludeIntents: opts.ModelIntents,
		Workers:        opts.Workers,
		Col:            col,
		Summaries:      sums,
		Budget:         bud,
		LegacySets:     opts.LegacySets,
	})
	note(sliceDiags...)
	endSlice()

	endPairing := col.Phase(obs.PhasePairing)
	pairStats := col.NewShard()
	analyzePairs := pairing.Analyze
	if opts.PairingOracle {
		analyzePairs = pairing.AnalyzeOracle
	}
	pairs := analyzePairs(txs)
	note(pairing.VerifyFlowBudgeted(p, model, cg, pairs, pairStats, sums, bud, opts.LegacySets)...)
	col.Drain(pairStats)
	pairByTx := map[*slice.Transaction]pairing.Pair{}
	for _, pr := range pairs {
		pairByTx[pr.Tx] = pr
	}
	endPairing()

	results := buildSignatures(p, model, cg, txs, opts, col, bud)
	for _, r := range results {
		var rec *budget.Recovered
		var ex *budget.Exceeded
		switch {
		case errors.As(r.err, &rec):
			d := budget.PanicDiag(rec.Phase, rec.Site, rec.Value)
			d.Flight = r.flight
			note(d)
		case errors.As(r.err, &ex):
			d := budget.ExceededDiag(ex)
			d.Flight = r.flight
			note(d)
		}
	}

	endDedup := col.Phase(obs.PhaseDedup)
	sliceStmts := &intern.Bits{}
	out := foldTransactions(txs, results, pairByTx, sliceStmts, col, opts.Explain)
	dpSites := map[string]bool{}
	for _, tx := range txs {
		dpSites[fmt.Sprintf("%s@%d", tx.DP.Method, tx.DP.Index)] = true
	}
	col.Add(obs.CtrDPSites, int64(len(dpSites)))
	endDedup()

	// Inter-transaction dependencies on the deduplicated set. The phase is
	// skipped on an exhausted budget and panic-isolated like the workers:
	// a report without dependency edges beats no report.
	endTxdep := col.Phase(obs.PhaseTxdep)
	var deps []txdep.Dep
	func() {
		defer func() {
			if r := recover(); r != nil {
				deps = nil
				d := budget.PanicDiag(budget.PhaseTxdep, p.Manifest.Package, r)
				d.Flight = col.FlightDump()
				note(d)
			}
		}()
		if ex := bud.Over(budget.PhaseTxdep, p.Manifest.Package); ex != nil {
			note(budget.ExceededDiag(ex))
			return
		}
		bud.MaybePanic(budget.PhaseTxdep, p.Manifest.Package)
		var dtxs []*txdep.Tx
		for _, t := range out {
			dtxs = append(dtxs, &txdep.Tx{ID: t.ID, DPID: t.DP, Req: t.Request, Resp: t.Response})
		}
		txdepStats := col.NewShard()
		deps = txdep.InferObs(dtxs, txdepStats)
		col.Drain(txdepStats)
	}()
	endTxdep()

	total := p.InstrCount()
	frac := 0.0
	if total > 0 {
		frac = float64(sliceStmts.Count()) / float64(total)
	}

	// Fold the analysis-cache hit/miss totals into the profile.
	cg.DrainCacheCounters(col)
	sums.DrainCounters(col)

	rep = &Report{
		Package:       p.Manifest.Package,
		AppName:       p.Manifest.AppName,
		Transactions:  out,
		Deps:          deps,
		SliceFraction: frac,
		DPCount:       len(dpSites),
	}

	// Store clean cold runs back into the cache. Degraded runs (any
	// analysis diagnostic) are never stored: a deadline-truncated report
	// reflects this machine's clock, not the binary, and must not be served
	// later as if it were complete. Cache-phase diagnostics don't count —
	// a corrupt entry degrades only the lookup, and the recompute it forced
	// is exactly the report that should repair the entry. Duration and
	// Profile are excluded from the encoding, so the order (store, then
	// snapshot) loses nothing.
	clean := true
	for _, d := range diags {
		if d.Phase != budget.PhaseCache {
			clean = false
			break
		}
	}
	if opts.Cache != nil && opts.CacheKey != "" && clean {
		endCache := col.Phase(obs.PhaseResultCache)
		perr := opts.Cache.Put(opts.CacheKey, rep)
		endCache()
		drainCacheContention(opts.Cache, col)
		if perr != nil {
			col.Add(obs.CtrCacheReportInvalid, 1)
			note(budget.CacheDiag(opts.CacheKey, "store failed: "+perr.Error()))
		} else {
			col.Add(obs.CtrCacheReportWrites, 1)
			col.Event(obs.Event{Type: obs.EvCacheStore, Site: opts.CacheKey})
		}
	}

	// Workers complete in scheduling order, so diags arrive nondeterministically
	// under parallel runs; sort by (phase, site, detail) so the report is
	// byte-identical regardless of worker count.
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Detail < b.Detail
	})

	rep.Duration = time.Since(start)
	col.Observe(obs.HistAnalyze, rep.Duration.Nanoseconds())
	rep.Diagnostics = diags
	rep.Profile = col.Snapshot()
	return rep, nil
}

// built is one sigbuild result, positionally aligned with the transaction
// list.
type built struct {
	req  *sigbuild.RequestSig
	resp *sigbuild.ResponseSig
	info sigbuild.BuildInfo
	err  error
	// flight is the worker shard's span history captured at the moment err
	// was produced by a recovered panic or tripped budget; nil unless the
	// flight recorder was armed.
	flight []string
}

// buildSignatures runs signature extraction for every transaction.
// Extraction is independent per transaction: fan out across a bounded
// worker pool, assembling results in transaction order so output stays
// deterministic. Each worker owns a private counter shard (merged after
// the pool drains) and accumulates its busy time, from which the pool
// utilization gauge is derived.
func buildSignatures(p *ir.Program, model *semmodel.Model, cg *callgraph.Graph,
	txs []*slice.Transaction, opts Options, col *obs.Collector, bud *budget.Budget) []built {

	endSigbuild := col.Phase(obs.PhaseSigbuild)
	defer endSigbuild()
	fanStart := time.Now()

	results := make([]built, len(txs))
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(txs) {
		workers = len(txs)
	}
	if bud.HasStepLimits() && workers > 1 {
		workers = 1
	}
	scoped := func(tx *slice.Transaction) bool {
		return opts.ScopePrefix != "" && !strings.HasPrefix(tx.DP.Method, opts.ScopePrefix)
	}
	runJob := func(i int, stats *obs.Shard) {
		site := fmt.Sprintf("%s@%d", txs[i].DP.Method, txs[i].DP.Index)
		defer func() {
			if r := recover(); r != nil {
				// A panicking interpretation costs one transaction, not
				// the run; Analyze converts the error into a diagnostic,
				// carrying this worker's flight history when armed.
				results[i] = built{err: &budget.Recovered{
					Phase: budget.PhaseSigbuild, Site: site, Value: r},
					flight: stats.FlightDump()}
				stats.Add(obs.CtrSigbuildErrors, 1)
			}
		}()
		if ex := bud.Over(budget.PhaseSigbuild, site); ex != nil {
			results[i] = built{err: ex, flight: stats.FlightDump()}
			stats.Add(obs.CtrSigbuildErrors, 1)
			return
		}
		sp := stats.Span(obs.CatSigbuildJob, site)
		defer sp.End()
		t0 := time.Now()
		r, rs, info, err := sigbuild.BuildTraced(p, model, cg, txs[i], stats, bud)
		ns := time.Since(t0).Nanoseconds()
		results[i] = built{req: r, resp: rs, info: info, err: err}
		stats.Add(obs.CtrSigbuildJobs, 1)
		stats.Add(obs.CtrSigbuildBusyNS, ns)
		stats.Observe(obs.HistSigbuildJob, ns)
		if err != nil {
			stats.Add(obs.CtrSigbuildErrors, 1)
		}
	}

	mainStats := col.NewShard()
	if workers > 1 {
		var wg sync.WaitGroup
		jobs := make(chan int)
		shards := make([]*obs.Shard, workers)
		for w := 0; w < workers; w++ {
			shard := col.NewShard()
			shards[w] = shard
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					runJob(i, shard)
				}
			}()
		}
		for i, tx := range txs {
			if scoped(tx) {
				results[i] = built{err: errScoped}
				mainStats.Add(obs.CtrSigbuildScoped, 1)
				continue
			}
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		for _, shard := range shards {
			col.Drain(shard)
		}
	} else {
		for i, tx := range txs {
			if scoped(tx) {
				results[i] = built{err: errScoped}
				mainStats.Add(obs.CtrSigbuildScoped, 1)
				continue
			}
			runJob(i, mainStats)
		}
	}
	col.Drain(mainStats)

	if workers > 0 {
		col.Gauge(obs.GaugeSigbuildWorkers, float64(workers))
		totalBusy := col.Snapshot().Counter(obs.CtrSigbuildBusyNS)
		if wall := time.Since(fanStart).Nanoseconds(); wall > 0 {
			col.Gauge(obs.GaugeSigbuildUtilization,
				float64(totalBusy)/float64(int64(workers)*wall))
		}
	}
	return results
}

// foldTransactions converts sigbuild results into deduplicated report
// transactions: entry points reaching the same signature fold together,
// merging their Entries, Sinks and Sources (all kept sorted so folded
// transactions render deterministically regardless of slice discovery
// order). sliceStmts accumulates every statement covered by a kept slice
// (a dense set over the program index — all slices of one run share it);
// col (optional) receives dedup counters. explain attaches an Evidence
// record to each kept transaction (the canonical pre-fold instance; later
// folds merge entries but keep the first instance's evidence).
func foldTransactions(txs []*slice.Transaction, results []built,
	pairByTx map[*slice.Transaction]pairing.Pair,
	sliceStmts *intern.Bits, col *obs.Collector, explain bool) []*Transaction {

	var out []*Transaction
	dedup := map[string]*Transaction{}
	folded := 0
	for i, tx := range txs {
		req, resp, err := results[i].req, results[i].resp, results[i].err
		if err != nil {
			// Scoped out, or a DP unreachable under abstract evaluation
			// (e.g. dead branch): skip rather than abort the whole app.
			continue
		}
		sliceStmts.Union(tx.Request.Stmts())
		if tx.Response != nil {
			sliceStmts.Union(tx.Response.Stmts())
		}
		pr := pairByTx[tx]
		t := &Transaction{
			DP:            fmt.Sprintf("%s@%d", tx.DP.Method, tx.DP.Index),
			DPRef:         tx.DPRef,
			Entry:         tx.Entry,
			Request:       req,
			Response:      resp,
			Paired:        resp.HasBody(),
			OneToOne:      pr.OneToOne,
			SharedHandler: pr.SharedHandler,
			FlowConfirmed: pr.FlowConfirmed,
			Sinks:         sortedSet(tx.Sinks),
			Sources:       sortedSet(tx.Sources),
			Entries:       []string{tx.Entry.Method},
		}
		if explain {
			ev := &Evidence{
				Entry:      tx.Entry.Method,
				EntryKind:  tx.Entry.Kind.String(),
				EntryLabel: tx.Entry.Label,
				DP:         t.DP,
				DPRef:      tx.DPRef,
				ReqStmts:   tx.Request.Size(),
				ReqSliced:  tx.ReqStmtsSliced,
				ReqMethods: len(tx.Request.Methods()),
				HeapReads:  tx.Request.HeapReads(),
				FlowSeeds:  pr.FlowSeeds,
				SigMethods: results[i].info.MethodsEvaluated,
				SigPrePass: results[i].info.PrePassMethods,
			}
			if tx.Response != nil {
				ev.RespStmts = tx.Response.Size()
				ev.RespSliced = tx.RespStmtsSliced
				ev.RespMethods = len(tx.Response.Methods())
				ev.HeapWrites = tx.Response.HeapWrites()
			}
			if pr.FlowConfirmed {
				ev.FlowWitness = fmt.Sprintf("%s@%d",
					pr.FlowWitness.Method, pr.FlowWitness.Index)
			}
			t.Evidence = ev
		}
		key := t.Key()
		if prev, ok := dedup[key]; ok {
			mergeStringSets(&prev.Entries, t.Entries)
			prev.Paired = prev.Paired || t.Paired
			mergeStringSets(&prev.Sinks, t.Sinks)
			mergeStringSets(&prev.Sources, t.Sources)
			folded++
			continue
		}
		t.ID = len(out) + 1
		dedup[key] = t
		out = append(out, t)
	}
	col.Add(obs.CtrTransactions, int64(len(out)))
	col.Add(obs.CtrDedupFolded, int64(folded))
	return out
}

// CountByMethod tallies unique request signatures per HTTP method.
func (r *Report) CountByMethod() map[string]int {
	out := map[string]int{}
	for _, t := range r.Transactions {
		out[t.Request.Method]++
	}
	return out
}

// BodyKindCounts tallies transactions by body representation: request
// query strings, JSON bodies (either side), XML bodies (either side).
func (r *Report) BodyKindCounts() (query, json, xml int) {
	for _, t := range r.Transactions {
		if t.Request.BodyKind == "query" {
			query++
		}
		if t.Request.BodyKind == "json" || (t.Response != nil && t.Response.BodyKind == "json" && t.Response.HasBody()) {
			json++
		}
		if t.Request.BodyKind == "xml" || (t.Response != nil && t.Response.BodyKind == "xml" && t.Response.HasBody()) {
			xml++
		}
	}
	return
}

// PairCount returns the number of reconstructed request/response pairs
// whose response body is processed by the app.
func (r *Report) PairCount() int {
	n := 0
	for _, t := range r.Transactions {
		if t.Paired {
			n++
		}
	}
	return n
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// mergeStringSets inserts each element of add into the sorted set *dst in
// place (binary search + insertion), avoiding the map rebuild and full
// re-sort the previous implementation paid on every fold. *dst must already
// be sorted, which sortedSet and prior merges guarantee.
func mergeStringSets(dst *[]string, add []string) {
	for _, s := range add {
		i := sort.SearchStrings(*dst, s)
		if i < len(*dst) && (*dst)[i] == s {
			continue
		}
		*dst = append(*dst, "")
		copy((*dst)[i+1:], (*dst)[i:])
		(*dst)[i] = s
	}
}

package core

import (
	"testing"

	"extractocol/internal/ir"
)

// TestDeadBranchDPIsSkippedNotFatal: a demarcation point that abstract
// evaluation can never reach (dead code) must not abort the whole app.
func TestDeadBranchDPIsSkippedNotFatal(t *testing.T) {
	p := ir.NewProgram("t.dead")
	c := p.AddClass(&ir.Class{Name: "t.dead.D"})

	// Live transaction.
	emitSimpleGet(c, "onLive", "https://dead.example.com/live")

	// A method containing a DP that no entry point ever calls.
	orphan := ir.NewMethod(c, "orphan", false, nil, "void")
	u := orphan.ConstStr("https://dead.example.com/orphan")
	req := orphan.New("org.apache.http.client.methods.HttpGet")
	orphan.InvokeSpecial("org.apache.http.client.methods.HttpGet.<init>", req, u)
	cl := orphan.New("org.apache.http.impl.client.DefaultHttpClient")
	orphan.InvokeSpecial("org.apache.http.impl.client.DefaultHttpClient.<init>", cl)
	orphan.Invoke("org.apache.http.client.HttpClient.execute", cl, req)
	orphan.ReturnVoid()
	orphan.Done()

	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.dead.D.onLive", Kind: ir.EventClick}}

	rep, err := Analyze(p, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Transactions) != 1 {
		t.Fatalf("transactions = %d, want 1 (orphan DP unreachable)", len(rep.Transactions))
	}
}

// TestUnresolvableVolleyCallback: an enqueue whose callback type cannot be
// inferred still yields the request side.
func TestUnresolvableVolleyCallback(t *testing.T) {
	p := ir.NewProgram("t.uv")
	c := p.AddClass(&ir.Class{Name: "t.uv.V"})
	b := ir.NewMethod(c, "go", false, []string{"com.android.volley.toolbox.JsonObjectRequest"}, "void")
	// The request arrives as an opaque parameter: no allocation site, so
	// the callback type is unknown.
	req := b.Param(0)
	q := b.New("com.android.volley.RequestQueue")
	b.InvokeVoid("com.android.volley.RequestQueue.add", q, req)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.uv.V.go", Kind: ir.EventClick}}

	rep, err := Analyze(p, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Transactions) != 1 {
		t.Fatalf("transactions = %d", len(rep.Transactions))
	}
	tx := rep.Transactions[0]
	if tx.Response != nil && tx.Response.HasBody() {
		t.Fatal("no response slice should exist without a resolvable callback")
	}
}

// TestEmptyAppAnalyzes: no entry points, no transactions, no error.
func TestEmptyAppAnalyzes(t *testing.T) {
	p := ir.NewProgram("t.empty")
	rep, err := Analyze(p, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Transactions) != 0 || rep.PairCount() != 0 {
		t.Fatalf("unexpected results: %+v", rep)
	}
}

// TestInvalidProgramRejected: core refuses structurally broken binaries.
func TestInvalidProgramRejected(t *testing.T) {
	p := ir.NewProgram("t.bad")
	c := p.AddClass(&ir.Class{Name: "t.bad.B"})
	m := c.AddMethod(&ir.Method{Name: "m", Static: true, Return: "void", Registers: 1})
	m.Instrs = []ir.Instr{{Op: ir.OpGoto, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Target: 99}}
	if _, err := Analyze(p, NewOptions()); err == nil {
		t.Fatal("accepted invalid program")
	}
}

// TestRecursiveHelperTerminates: self-recursive request construction must
// not hang the evaluator.
func TestRecursiveHelperTerminates(t *testing.T) {
	p := ir.NewProgram("t.rec")
	c := p.AddClass(&ir.Class{Name: "t.rec.R"})

	h := ir.NewMethod(c, "buildPath", false, []string{"int"}, "java.lang.String")
	n := h.Param(0)
	h.IfZ(n, "base")
	one := h.ConstInt(1)
	dec := h.Binop("-", n, one)
	sub := h.Invoke("t.rec.R.buildPath", h.This(), dec)
	seg := h.ConstStr("/x")
	joined := h.Invoke("java.lang.String.concat", sub, seg)
	h.Return(joined)
	h.Label("base")
	root := h.ConstStr("https://rec.example.com")
	h.Return(root)
	h.Done()

	b := ir.NewMethod(c, "go", false, []string{"int"}, "void")
	depth := b.Param(0)
	uri := b.Invoke("t.rec.R.buildPath", b.This(), depth)
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial("org.apache.http.client.methods.HttpGet.<init>", req, uri)
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial("org.apache.http.impl.client.DefaultHttpClient.<init>", cl)
	b.Invoke("org.apache.http.client.HttpClient.execute", cl, req)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.rec.R.go", Kind: ir.EventClick}}

	rep, err := Analyze(p, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Transactions) != 1 {
		t.Fatalf("transactions = %d", len(rep.Transactions))
	}
}

package core

import (
	"reflect"
	"testing"

	"extractocol/internal/intern"
	"extractocol/internal/ir"
	"extractocol/internal/obs"
	"extractocol/internal/pairing"
	"extractocol/internal/sigbuild"
	"extractocol/internal/siglang"
	"extractocol/internal/slice"
	"extractocol/internal/taint"
)

// tx is shorthand for a report transaction with just the fields the
// aggregation helpers read.
func tx(method, reqBodyKind string, resp *sigbuild.ResponseSig, paired bool) *Transaction {
	return &Transaction{
		Request:  &sigbuild.RequestSig{Method: method, BodyKind: reqBodyKind},
		Response: resp,
		Paired:   paired,
	}
}

func jsonResp() *sigbuild.ResponseSig {
	o := &siglang.Obj{}
	o.Put("id", siglang.AnyInt())
	return &sigbuild.ResponseSig{BodyKind: "json", JSON: o}
}

func TestCountByMethod(t *testing.T) {
	cases := []struct {
		name string
		txs  []*Transaction
		want map[string]int
	}{
		{name: "empty report", txs: nil, want: map[string]int{}},
		{name: "single", txs: []*Transaction{tx("GET", "", nil, false)},
			want: map[string]int{"GET": 1}},
		{name: "mixed methods",
			txs: []*Transaction{
				tx("GET", "", nil, false),
				tx("POST", "", nil, false),
				tx("GET", "", nil, false),
				tx("PUT", "", nil, false),
			},
			want: map[string]int{"GET": 2, "POST": 1, "PUT": 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := &Report{Transactions: tc.txs}
			if got := r.CountByMethod(); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("CountByMethod() = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestBodyKindCounts(t *testing.T) {
	cases := []struct {
		name                string
		txs                 []*Transaction
		wantQ, wantJ, wantX int
	}{
		{name: "empty report"},
		{name: "query request",
			txs: []*Transaction{tx("GET", "query", nil, false)}, wantQ: 1},
		{name: "json request nil response",
			txs: []*Transaction{tx("POST", "json", nil, false)}, wantJ: 1},
		{name: "json response only",
			txs: []*Transaction{tx("GET", "", jsonResp(), true)}, wantJ: 1},
		{name: "json request and json response count once",
			txs: []*Transaction{tx("POST", "json", jsonResp(), true)}, wantJ: 1},
		{name: "empty json response body not counted",
			// BodyKind says json but the tree is empty: HasBody is false.
			txs: []*Transaction{tx("GET", "", &sigbuild.ResponseSig{BodyKind: "json"}, false)}},
		{name: "xml response with body",
			txs: []*Transaction{tx("GET", "",
				&sigbuild.ResponseSig{BodyKind: "xml", XML: &siglang.Elem{Tag: "rss"}}, true)},
			wantX: 1},
		{name: "xml response without tree not counted",
			txs: []*Transaction{tx("GET", "", &sigbuild.ResponseSig{BodyKind: "xml"}, false)}},
		{name: "query and json coexist per transaction",
			txs:   []*Transaction{tx("GET", "query", jsonResp(), true)},
			wantQ: 1, wantJ: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := &Report{Transactions: tc.txs}
			q, j, x := r.BodyKindCounts()
			if q != tc.wantQ || j != tc.wantJ || x != tc.wantX {
				t.Errorf("BodyKindCounts() = (%d, %d, %d), want (%d, %d, %d)",
					q, j, x, tc.wantQ, tc.wantJ, tc.wantX)
			}
		})
	}
}

func TestPairCount(t *testing.T) {
	cases := []struct {
		name string
		txs  []*Transaction
		want int
	}{
		{name: "empty report", want: 0},
		{name: "none paired", txs: []*Transaction{tx("GET", "", nil, false)}, want: 0},
		{name: "some paired",
			txs: []*Transaction{
				tx("GET", "", jsonResp(), true),
				tx("POST", "", nil, false),
				tx("GET", "", jsonResp(), true),
			},
			want: 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := &Report{Transactions: tc.txs}
			if got := r.PairCount(); got != tc.want {
				t.Errorf("PairCount() = %d, want %d", got, tc.want)
			}
		})
	}
}

// foldIdx/foldTab key the dense taint.Results the fold tests hand-build:
// a synthetic two-method program covering every statement ID used below.
var foldIdx, foldTab = func() (*ir.Index, *intern.SyncTable) {
	p := ir.NewProgram("fold")
	for _, cls := range []string{"a", "b"} {
		c := p.AddClass(&ir.Class{Name: cls})
		m := ir.NewMethod(c, "m", true, nil, "void")
		for i := 0; i < 4; i++ {
			m.ConstInt(int64(i))
		}
		m.ReturnVoid()
		m.Done()
	}
	return ir.NewIndex(p), &intern.SyncTable{}
}()

// sliceTx builds a minimal slice.Transaction for fold tests.
func sliceTx(dpMethod string, dpIndex int, entry string, stmts []taint.StmtID,
	sinks, sources []string) *slice.Transaction {

	req := taint.NewResult(foldIdx, foldTab)
	for _, s := range stmts {
		if !req.AddStmt(s.Method, s.Index) {
			panic("fold test: statement outside the synthetic program: " + s.Method)
		}
	}
	stx := &slice.Transaction{
		DP:      taint.StmtID{Method: dpMethod, Index: dpIndex},
		DPRef:   "modeled.execute",
		Entry:   ir.EntryPoint{Method: entry},
		Request: req,
		Sinks:   map[string]bool{},
		Sources: map[string]bool{},
	}
	for _, s := range sinks {
		stx.Sinks[s] = true
	}
	for _, s := range sources {
		stx.Sources[s] = true
	}
	return stx
}

// litReq is a request signature with a constant URI, so transactions fold
// across demarcation points when the rest of the signature matches.
func litReq(uri string) *sigbuild.RequestSig {
	return &sigbuild.RequestSig{Method: "GET", URI: siglang.Str(uri), BodyKind: "query",
		Body: siglang.Str("")}
}

func TestFoldTransactionsMergesDuplicates(t *testing.T) {
	// Three entry points reach the same constant signature (two of them via
	// the same DP, one via another), plus one distinct signature and one
	// failed build that must be skipped.
	s1 := taint.StmtID{Method: "a.m", Index: 1}
	s2 := taint.StmtID{Method: "b.m", Index: 2}
	txs := []*slice.Transaction{
		sliceTx("a.m", 1, "app.EntryB", []taint.StmtID{s1}, []string{"ui"}, []string{"resource"}),
		sliceTx("a.m", 1, "app.EntryA", []taint.StmtID{s1}, []string{"file"}, nil),
		sliceTx("c.m", 3, "app.EntryA", []taint.StmtID{s2}, nil, []string{"db"}),
		sliceTx("d.m", 4, "app.EntryC", nil, nil, nil),
		sliceTx("e.m", 5, "app.EntryD", nil, nil, nil),
	}
	results := []built{
		{req: litReq("https://x/1"), resp: jsonResp()},
		{req: litReq("https://x/1"), resp: &sigbuild.ResponseSig{}}, // same key, unpaired
		{req: litReq("https://x/1")},                                // same key via another DP
		{req: litReq("https://x/2")},
		{err: errScoped}, // must be dropped entirely
	}
	pairByTx := map[*slice.Transaction]pairing.Pair{
		txs[0]: {Tx: txs[0], OneToOne: true},
	}
	sliceStmts := &intern.Bits{}
	col := obs.NewCollector()

	out := foldTransactions(txs, results, pairByTx, sliceStmts, col, false)

	if len(out) != 2 {
		t.Fatalf("folded to %d transactions, want 2", len(out))
	}
	f := out[0]
	wantEntries := []string{"app.EntryA", "app.EntryB"}
	if !reflect.DeepEqual(f.Entries, wantEntries) {
		t.Errorf("Entries = %v, want %v (sorted, deduplicated)", f.Entries, wantEntries)
	}
	if !reflect.DeepEqual(f.Sinks, []string{"file", "ui"}) {
		t.Errorf("Sinks = %v, want merged sorted [file ui]", f.Sinks)
	}
	if !reflect.DeepEqual(f.Sources, []string{"db", "resource"}) {
		t.Errorf("Sources = %v, want merged sorted [db resource]", f.Sources)
	}
	if !f.Paired {
		t.Error("folding an unpaired duplicate must keep Paired true")
	}
	if !f.OneToOne {
		t.Error("pairing qualifiers of the first occurrence must survive the fold")
	}
	if out[1].ID != 2 || f.ID != 1 {
		t.Errorf("IDs = (%d, %d), want sequential (1, 2)", f.ID, out[1].ID)
	}
	hasStmt := func(s taint.StmtID) bool {
		mid, ok := foldIdx.MethodID(s.Method)
		return ok && sliceStmts.Has(foldIdx.StmtID(mid, s.Index))
	}
	if !hasStmt(s1) || !hasStmt(s2) {
		t.Errorf("sliceStmts = %v, want both kept slices' statements", sliceStmts)
	}
	prof := col.Snapshot()
	if prof.Counter(obs.CtrTransactions) != 2 {
		t.Errorf("%s = %d, want 2", obs.CtrTransactions, prof.Counter(obs.CtrTransactions))
	}
	if prof.Counter(obs.CtrDedupFolded) != 2 {
		t.Errorf("%s = %d, want 2 folds", obs.CtrDedupFolded, prof.Counter(obs.CtrDedupFolded))
	}
}

func TestFoldTransactionsEntriesStaySorted(t *testing.T) {
	// Regression: Entries used to be appended unsorted on every fold, so the
	// report order depended on slice discovery order.
	var txs []*slice.Transaction
	var results []built
	for _, entry := range []string{"z.E", "a.E", "m.E", "a.E"} {
		txs = append(txs, sliceTx("a.m", 1, entry, nil, nil, nil))
		results = append(results, built{req: litReq("https://x/1")})
	}
	out := foldTransactions(txs, results, map[*slice.Transaction]pairing.Pair{},
		&intern.Bits{}, nil, false)
	if len(out) != 1 {
		t.Fatalf("folded to %d transactions, want 1", len(out))
	}
	want := []string{"a.E", "m.E", "z.E"}
	if !reflect.DeepEqual(out[0].Entries, want) {
		t.Errorf("Entries = %v, want %v", out[0].Entries, want)
	}
}

func TestFoldTransactionsEmpty(t *testing.T) {
	out := foldTransactions(nil, nil, nil, &intern.Bits{}, nil, false)
	if len(out) != 0 {
		t.Fatalf("foldTransactions(nil) = %v, want empty", out)
	}
}

func TestFoldTransactionsNilResponse(t *testing.T) {
	txs := []*slice.Transaction{sliceTx("a.m", 1, "app.E", nil, nil, nil)}
	results := []built{{req: litReq("https://x/1")}} // resp nil
	out := foldTransactions(txs, results, nil, &intern.Bits{}, nil, false)
	if len(out) != 1 {
		t.Fatalf("got %d transactions, want 1", len(out))
	}
	if out[0].Paired {
		t.Error("a nil response must not count as paired")
	}
	if out[0].Response != nil {
		t.Error("nil response must stay nil in the report")
	}
}

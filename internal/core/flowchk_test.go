package core

import "testing"

func TestFlowConfirmedOnRadioRedditLike(t *testing.T) {
	rep, err := Analyze(radioRedditLike(), NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range rep.Transactions {
		if tx.Paired && !tx.FlowConfirmed {
			t.Errorf("tx %d paired but flow not confirmed", tx.ID)
		}
	}
}

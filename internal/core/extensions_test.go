package core

import (
	"strings"
	"testing"

	"extractocol/internal/httpsim"
	"extractocol/internal/ir"
	"extractocol/internal/runtime"
	"extractocol/internal/siglang"
)

// TestSocketProtocolExtension exercises the §4 extension: direct use of
// java.net.Socket for a text protocol. The socket becomes a TCP "request"
// whose payload is reconstructed like any HTTP body, and getInputStream is
// the demarcation point.
func TestSocketProtocolExtension(t *testing.T) {
	p := ir.NewProgram("t.sock")
	c := p.AddClass(&ir.Class{Name: "t.sock.Chat"})
	b := ir.NewMethod(c, "onSend", false, []string{"java.lang.String"}, "void")
	msg := b.Param(0)
	host := b.ConstStr("chat.example.com")
	port := b.ConstInt(7777)
	sock := b.New("java.net.Socket")
	b.InvokeSpecial("java.net.Socket.<init>", sock, host, port)
	out := b.Invoke("java.net.Socket.getOutputStream", sock)
	cmd := b.ConstStr("MSG ")
	b.InvokeVoid("java.io.OutputStream.write", out, cmd)
	b.InvokeVoid("java.io.OutputStream.write", out, msg)
	nl := b.ConstStr("\n")
	b.InvokeVoid("java.io.OutputStream.write", out, nl)
	in := b.Invoke("java.net.Socket.getInputStream", sock)
	resp := b.Invoke("java.io.InputStream.readAll", in)
	b.StaticPut("t.sock.Chat.last", resp)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.sock.Chat.onSend", Kind: ir.EventClick}}

	rep, err := Analyze(p, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Transactions) != 1 {
		t.Fatalf("transactions = %d, want 1", len(rep.Transactions))
	}
	tx := rep.Transactions[0]
	if tx.Request.Method != "TCP" {
		t.Errorf("method = %s, want TCP", tx.Request.Method)
	}
	uri := siglang.RegexBody(tx.Request.URI)
	if !strings.Contains(uri, "tcp://chat\\.example\\.com:7777") {
		t.Errorf("URI = %s", uri)
	}
	body := siglang.RegexBody(tx.Request.Body)
	if !strings.HasPrefix(body, "MSG ") {
		t.Errorf("payload signature = %q, want MSG prefix", body)
	}

	// Dynamic side: the interpreter speaks the same protocol.
	net := httpsim.NewNetwork()
	s := httpsim.NewServer("chat.example.com:7777")
	s.HandlePrefix("TCP", "", func(r *httpsim.Request) *httpsim.Response {
		if !strings.HasPrefix(r.Body, "MSG ") {
			return httpsim.Error(400, "bad command")
		}
		return httpsim.Text("OK " + strings.TrimSpace(strings.TrimPrefix(r.Body, "MSG ")))
	})
	net.Register(s)
	vm := runtime.New(p, net)
	if err := vm.Fire(p.Manifest.EntryPoints[0]); err != nil {
		t.Fatal(err)
	}
	if got := vm.Statics["t.sock.Chat.last"]; got != "OK input0" {
		t.Fatalf("socket reply = %v", got)
	}
	// And the signature matches the live payload.
	re, err := siglang.Compile(tx.Request.Body)
	if err != nil {
		t.Fatal(err)
	}
	tr := net.Trace()
	if len(tr) != 1 || !re.MatchString(tr[0].Request.Body) {
		t.Fatalf("payload signature does not match live traffic %q", tr[0].Request.Body)
	}
}

// TestIntentModelingExtension verifies the §4 intent extension: with
// ModelIntents enabled, intent-triggered transactions stop being invisible.
func TestIntentModelingExtension(t *testing.T) {
	p := ir.NewProgram("t.int")
	c := p.AddClass(&ir.Class{Name: "t.int.I"})
	emitSimpleGet(c, "onCreate", "https://i.example.com/visible.json")
	emitSimpleGet(c, "onDeepLink", "https://i.example.com/hidden.json")
	p.Manifest.EntryPoints = []ir.EntryPoint{
		{Method: "t.int.I.onCreate", Kind: ir.EventCreate},
		{Method: "t.int.I.onDeepLink", Kind: ir.EventIntent},
	}

	base, err := Analyze(p, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Transactions) != 1 {
		t.Fatalf("baseline transactions = %d, want 1 (intent hidden)", len(base.Transactions))
	}

	opts := NewOptions()
	opts.ModelIntents = true
	ext, err := Analyze(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.Transactions) != 2 {
		t.Fatalf("extended transactions = %d, want 2", len(ext.Transactions))
	}
	found := false
	for _, tx := range ext.Transactions {
		if strings.Contains(tx.URIRegex(), "hidden") {
			found = true
		}
	}
	if !found {
		t.Fatal("intent-triggered transaction still missing")
	}
}

func emitSimpleGet(c *ir.Class, name, uri string) {
	b := ir.NewMethod(c, name, false, nil, "void")
	u := b.ConstStr(uri)
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial("org.apache.http.client.methods.HttpGet.<init>", req, u)
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial("org.apache.http.impl.client.DefaultHttpClient.<init>", cl)
	b.Invoke("org.apache.http.client.HttpClient.execute", cl, req)
	b.ReturnVoid()
	b.Done()
}

// TestMultiHopAsyncChains verifies the §4 discussion of dependency chains
// across multiple asynchronous events: one hop loses the second handler's
// keywords, two hops ("multiple iterations") recover them.
func TestMultiHopAsyncChains(t *testing.T) {
	p := ir.NewProgram("t.hop")
	c := p.AddClass(&ir.Class{Name: "t.hop.H", Fields: []*ir.Field{
		{Name: "region", Type: "java.lang.String", Static: true},
		{Name: "query", Type: "java.lang.String", Static: true},
	}})

	// Hop 2 origin: location handler writes the region fragment.
	lb := ir.NewMethod(c, "onLocationChanged", false, []string{"java.lang.String"}, "void")
	city := lb.Param(0)
	sb0 := lb.New("java.lang.StringBuilder")
	lb.InvokeSpecial("java.lang.StringBuilder.<init>", sb0)
	r0 := lb.ConstStr("region=")
	lb.InvokeVoid("java.lang.StringBuilder.append", sb0, r0)
	lb.InvokeVoid("java.lang.StringBuilder.append", sb0, city)
	frag0 := lb.Invoke("java.lang.StringBuilder.toString", sb0)
	lb.StaticPut("t.hop.H.region", frag0)
	lb.ReturnVoid()
	lb.Done()

	// Hop 1: a timer combines the region with more parameters.
	tb := ir.NewMethod(c, "onTimer", false, nil, "void")
	sb1 := tb.New("java.lang.StringBuilder")
	tb.InvokeSpecial("java.lang.StringBuilder.<init>", sb1)
	reg := tb.StaticGet("t.hop.H.region")
	tb.InvokeVoid("java.lang.StringBuilder.append", sb1, reg)
	amp := tb.ConstStr("&units=metric")
	tb.InvokeVoid("java.lang.StringBuilder.append", sb1, amp)
	frag1 := tb.Invoke("java.lang.StringBuilder.toString", sb1)
	tb.StaticPut("t.hop.H.query", frag1)
	tb.ReturnVoid()
	tb.Done()

	// The click handler issues the request.
	cb := ir.NewMethod(c, "onRefresh", false, nil, "void")
	sb2 := cb.New("java.lang.StringBuilder")
	cb.InvokeSpecial("java.lang.StringBuilder.<init>", sb2)
	base := cb.ConstStr("https://hop.example.com/data?")
	cb.InvokeVoid("java.lang.StringBuilder.append", sb2, base)
	q := cb.StaticGet("t.hop.H.query")
	cb.InvokeVoid("java.lang.StringBuilder.append", sb2, q)
	uri := cb.Invoke("java.lang.StringBuilder.toString", sb2)
	req := cb.New("org.apache.http.client.methods.HttpGet")
	cb.InvokeSpecial("org.apache.http.client.methods.HttpGet.<init>", req, uri)
	cl := cb.New("org.apache.http.impl.client.DefaultHttpClient")
	cb.InvokeSpecial("org.apache.http.impl.client.DefaultHttpClient.<init>", cl)
	cb.Invoke("org.apache.http.client.HttpClient.execute", cl, req)
	cb.ReturnVoid()
	cb.Done()

	p.Manifest.EntryPoints = []ir.EntryPoint{
		{Method: "t.hop.H.onLocationChanged", Kind: ir.EventLocation},
		{Method: "t.hop.H.onTimer", Kind: ir.EventTimer},
		{Method: "t.hop.H.onRefresh", Kind: ir.EventClick},
	}

	kwAt := func(hops int) []string {
		opts := NewOptions()
		opts.MaxAsyncHops = hops
		rep, err := Analyze(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		set := map[string]bool{}
		for _, tx := range rep.Transactions {
			for _, k := range siglang.Keywords(tx.Request.URI) {
				set[k] = true
			}
		}
		var out []string
		for k := range set {
			out = append(out, k)
		}
		return out
	}

	oneHop := kwAt(1)
	twoHop := kwAt(2)
	if contains(oneHop, "region") {
		t.Errorf("one hop should not reach the location handler: %v", oneHop)
	}
	if !contains(oneHop, "units") {
		t.Errorf("one hop should reach the timer handler: %v", oneHop)
	}
	if !contains(twoHop, "region") || !contains(twoHop, "units") {
		t.Errorf("two hops should recover the whole chain: %v", twoHop)
	}
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

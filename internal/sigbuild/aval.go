// Package sigbuild reconstructs message signatures from program slices
// (§3.2): it interprets each slice abstractly — basic blocks in topological
// order, signature databases merged at confluence points, loop-variant
// string parts widened to repetitions — using the API semantic model to
// give meaning to library calls. The outputs are request signatures (URI,
// method, headers, body) and response signatures (JSON/XML access trees).
package sigbuild

import (
	"sort"
	"strings"

	"extractocol/internal/siglang"
)

// objKind classifies abstract objects.
type objKind uint8

const (
	oOpaque    objKind = iota
	oBuilder           // StringBuilder: accumulates buf
	oRequest           // HTTP request under construction
	oEntity            // request body entity
	oNVPair            // name/value pair
	oList              // ordered element list
	oMap               // string-keyed map / ContentValues
	oJSONBuild         // JSONObject being constructed (request side)
	oURL               // java.net.URL wrapper
	oCall              // okhttp Call wrapping a request
	oRespNode          // node of a response access tree (JSON)
	oRespXML           // node of a response XML access tree
	oRespRaw           // raw response / entity / body string carrier
	oTyped             // app-defined object (gson-style reflection)
)

// aobj is a mutable abstract object. Objects are shared by reference
// between registers, mirroring Java aliasing. Each carries the allocation
// site identity (allocID) so per-branch copies can be matched and merged at
// control-flow confluence points.
type aobj struct {
	allocID int
	kind    objKind
	class   string

	buf siglang.Sig // oBuilder accumulation

	// oRequest fields.
	uri      siglang.Sig
	method   string
	headers  []siglang.KV
	body     *aobj
	uriDeps  map[string]bool
	bodyDeps map[string]bool

	// oEntity.
	text     siglang.Sig // accumulated text/query body
	bodyKind string      // "query", "json", "text", "xml"
	jsonTree *siglang.Obj

	// oNVPair.
	key, val aval

	// oList.
	elems []aval
	open  bool // loop-extended

	// oMap / oTyped field writes.
	pairs map[string]aval
	order []string

	// oJSONBuild.
	tree *siglang.Obj

	// oRespNode / oRespXML: shared access tree of one response.
	resp     *respState
	respPath string
	node     *siglang.Obj
	elem     *siglang.Elem

	// oCall.
	request *aobj

	// oBuilder loop widening: the repetition node currently being extended
	// and the loop header it belongs to.
	lastRep     *siglang.Rep
	lastRepLoop int

	// oTyped: bound response (gson fromJson) when non-nil.
	respBound bool
}

// respState is the shared, growing access signature of one response: the
// record of everything the program reads from it.
type respState struct {
	dpID     string // "method@index" of the demarcation point
	bodyKind string // "json", "xml", "text", ""
	root     *siglang.Obj
	xmlRoot  *siglang.Elem
	// writeOrigins: heap location -> response tree path stored there.
	writeOrigins map[string]string
}

// aval is an abstract value: a signature for scalars, an object reference
// for objects, plus provenance (heap locations and response paths feeding
// the value).
type aval struct {
	sig siglang.Sig
	obj *aobj

	locs     map[string]bool // heap/db/res/dp provenance
	fromResp *respState      // response this value derives from, if any
	respPath string          // tree path within fromResp
}

func unknownVal(t siglang.VType, origin string) aval {
	return aval{sig: &siglang.Unknown{Type: t, Origin: origin}}
}

func constStr(s string) aval { return aval{sig: siglang.Str(s)} }

// sigOf returns the value's signature, deriving one for objects.
func (v aval) sigOf() siglang.Sig {
	if v.obj != nil {
		switch v.obj.kind {
		case oBuilder:
			if v.obj.buf == nil {
				return siglang.Str("")
			}
			return v.obj.buf
		case oJSONBuild:
			return &siglang.JSON{Root: v.obj.tree}
		case oEntity:
			return v.obj.text
		case oRespRaw, oRespNode:
			return siglang.AnyString()
		}
	}
	if v.sig == nil {
		return siglang.Any()
	}
	return v.sig
}

// constString returns the constant string value, if the signature is one.
func (v aval) constString() (string, bool) {
	if l, ok := v.sigOf().(*siglang.Lit); ok {
		return l.Val, true
	}
	return "", false
}

func (v aval) withLoc(loc string) aval {
	out := v
	out.locs = cloneSet(v.locs)
	out.locs[loc] = true
	return out
}

func cloneSet(in map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range in {
		out[k] = true
	}
	return out
}

func unionSet(a, b map[string]bool) map[string]bool {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := map[string]bool{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// shared reports whether the object is backed by globally shared state
// (response access trees grow monotonically and must never be forked).
func (o *aobj) shared() bool {
	switch o.kind {
	case oRespNode, oRespXML, oRespRaw:
		return true
	case oTyped:
		return o.respBound
	}
	return false
}

// cloneVal deep-copies the value's object graph so a control-flow branch
// can mutate its own copy. Aliasing within one environment is preserved by
// the memo; shared response-tree objects are never copied.
func cloneVal(v aval, memo map[*aobj]*aobj) aval {
	out := v
	out.obj = cloneObj(v.obj, memo)
	return out
}

func cloneObj(o *aobj, memo map[*aobj]*aobj) *aobj {
	if o == nil || o.shared() {
		return o
	}
	if c, ok := memo[o]; ok {
		return c
	}
	c := &aobj{}
	*c = *o
	memo[o] = c
	c.body = cloneObj(o.body, memo)
	c.request = cloneObj(o.request, memo)
	c.key = cloneVal(o.key, memo)
	c.val = cloneVal(o.val, memo)
	if o.elems != nil {
		c.elems = make([]aval, len(o.elems))
		for i := range o.elems {
			c.elems[i] = cloneVal(o.elems[i], memo)
		}
	}
	if o.pairs != nil {
		c.pairs = make(map[string]aval, len(o.pairs))
		for k, pv := range o.pairs {
			c.pairs[k] = cloneVal(pv, memo)
		}
		c.order = append([]string(nil), o.order...)
	}
	if o.headers != nil {
		c.headers = append([]siglang.KV(nil), o.headers...)
	}
	c.uriDeps = cloneNonNil(o.uriDeps)
	c.bodyDeps = cloneNonNil(o.bodyDeps)
	if o.tree != nil {
		c.tree = cloneSigObj(o.tree)
	}
	if o.jsonTree != nil {
		c.jsonTree = cloneSigObj(o.jsonTree)
	}
	return c
}

func cloneNonNil(s map[string]bool) map[string]bool {
	if s == nil {
		return nil
	}
	return cloneSet(s)
}

// cloneSigObj deep-copies a JSON signature tree under construction.
func cloneSigObj(o *siglang.Obj) *siglang.Obj {
	out := &siglang.Obj{Pairs: make([]siglang.KV, len(o.Pairs))}
	copy(out.Pairs, o.Pairs)
	for i := range out.Pairs {
		if sub, ok := out.Pairs[i].Val.(*siglang.Obj); ok {
			out.Pairs[i].Val = cloneSigObj(sub)
		}
	}
	return out
}

// mergeVals joins two abstract values arriving from different control-flow
// paths (the confluence rule of §3.2).
func mergeVals(a, b aval) aval {
	return mergeValsMemo(a, b, map[[2]*aobj]*aobj{})
}

func mergeValsMemo(a, b aval, memo map[[2]*aobj]*aobj) aval {
	if a.obj != nil && a.obj == b.obj {
		out := a
		out.locs = unionSet(a.locs, b.locs)
		return out
	}
	if a.obj != nil && b.obj != nil {
		m := mergeObjs(a.obj, b.obj, memo)
		return aval{obj: m, locs: unionSet(a.locs, b.locs),
			fromResp: firstResp(a, b), respPath: firstPath(a, b)}
	}
	if a.obj != nil || b.obj != nil {
		// Object on one path only: keep the object, union provenance.
		out := a
		if b.obj != nil {
			out = b
		}
		out.locs = unionSet(a.locs, b.locs)
		return out
	}
	out := aval{
		sig:  siglang.Merge(a.sig, b.sig),
		locs: unionSet(a.locs, b.locs),
	}
	out.fromResp, out.respPath = firstResp(a, b), firstPath(a, b)
	return out
}

func firstResp(a, b aval) *respState {
	if a.fromResp != nil {
		return a.fromResp
	}
	return b.fromResp
}

func firstPath(a, b aval) string {
	if a.fromResp != nil {
		return a.respPath
	}
	return b.respPath
}

// mergeObjs structurally merges two versions of an object (matched or not
// by allocation site) into a fresh object.
func mergeObjs(a, b *aobj, memo map[[2]*aobj]*aobj) *aobj {
	if a == b {
		return a
	}
	if a.shared() || b.shared() {
		return a // shared response state is global; keep one
	}
	key := [2]*aobj{a, b}
	if m, ok := memo[key]; ok {
		return m
	}
	m := &aobj{}
	*m = *a
	memo[key] = m
	if a.kind != b.kind {
		// Different object kinds on two paths: keep the more specific one.
		if a.kind == oOpaque {
			*m = *b
		}
		return m
	}
	m.buf = siglang.Merge(a.buf, b.buf)
	m.uri = siglang.Merge(a.uri, b.uri)
	if m.method == "" {
		m.method = b.method
	}
	m.text = siglang.Merge(a.text, b.text)
	if m.bodyKind == "" {
		m.bodyKind = b.bodyKind
	}
	m.uriDeps = unionSet(a.uriDeps, b.uriDeps)
	m.bodyDeps = unionSet(a.bodyDeps, b.bodyDeps)
	// Headers: union by key.
	m.headers = append([]siglang.KV(nil), a.headers...)
	for _, h := range b.headers {
		dup := false
		for _, e := range m.headers {
			if e.Key == h.Key && siglang.Equal(e.Val, h.Val) {
				dup = true
				break
			}
		}
		if !dup {
			m.headers = append(m.headers, h)
		}
	}
	switch {
	case a.body == nil:
		m.body = b.body
	case b.body == nil:
		m.body = a.body
	default:
		m.body = mergeObjs(a.body, b.body, memo)
	}
	switch {
	case a.request == nil:
		m.request = b.request
	case b.request == nil:
		m.request = a.request
	default:
		m.request = mergeObjs(a.request, b.request, memo)
	}
	m.key = mergeValsMemo(a.key, b.key, memo)
	m.val = mergeValsMemo(a.val, b.val, memo)
	// Lists: pairwise merge when same length, else concatenate as
	// alternatives-in-order.
	if len(a.elems) == len(b.elems) {
		m.elems = make([]aval, len(a.elems))
		for i := range a.elems {
			m.elems[i] = mergeValsMemo(a.elems[i], b.elems[i], memo)
		}
	} else {
		m.elems = append(append([]aval(nil), a.elems...), b.elems...)
		m.open = true
	}
	m.open = m.open || a.open || b.open
	// Maps / typed fields: union keys, merge common values.
	if a.pairs != nil || b.pairs != nil {
		m.pairs = map[string]aval{}
		m.order = nil
		for _, k := range a.order {
			m.order = append(m.order, k)
		}
		for k, v := range a.pairs {
			m.pairs[k] = v
		}
		for _, k := range b.order {
			if _, seen := m.pairs[k]; !seen {
				m.order = append(m.order, k)
			}
		}
		for k, v := range b.pairs {
			if av, ok := m.pairs[k]; ok {
				m.pairs[k] = mergeValsMemo(av, v, memo)
			} else {
				m.pairs[k] = v
			}
		}
	}
	if a.tree != nil || b.tree != nil {
		m.tree = siglang.MergeObj(cloneMaybe(a.tree), cloneMaybe(b.tree))
	}
	if a.jsonTree != nil || b.jsonTree != nil {
		m.jsonTree = siglang.MergeObj(cloneMaybe(a.jsonTree), cloneMaybe(b.jsonTree))
	}
	m.lastRep, m.lastRepLoop = nil, 0
	return m
}

func cloneMaybe(o *siglang.Obj) *siglang.Obj {
	if o == nil {
		return nil
	}
	return cloneSigObj(o)
}

// env is the per-program-point signature database: register -> value.
type env map[int]aval

func (e env) clone() env {
	memo := map[*aobj]*aobj{}
	out := make(env, len(e))
	for k, v := range e {
		out[k] = cloneVal(v, memo)
	}
	return out
}

// mergeEnvShared joins environments without forking object state: values
// are shared by reference, and only conflicting registers are merged. Used
// along loop-internal edges, where in-place accumulation is intended.
func mergeEnvShared(a, b env) env {
	if a == nil {
		out := make(env, len(b))
		for k, v := range b {
			out[k] = v
		}
		return out
	}
	out := make(env, len(a))
	for k, v := range a {
		out[k] = v
	}
	for r, bv := range b {
		if av, ok := out[r]; ok {
			if av.obj != nil && av.obj == bv.obj {
				continue
			}
			out[r] = mergeVals(av, bv)
		} else {
			out[r] = bv
		}
	}
	return out
}

// mergeEnv joins two environments at a confluence point. Both inputs are
// treated as immutable; the result holds fresh object copies.
func mergeEnv(a, b env) env {
	if a == nil {
		return b.clone()
	}
	// Merge under one shared memo so aliasing survives the merge.
	memoA := map[*aobj]*aobj{}
	out := make(env, len(a))
	for k, v := range a {
		out[k] = cloneVal(v, memoA)
	}
	memoB := map[*aobj]*aobj{}
	merged := map[[2]*aobj]*aobj{}
	for r, bv := range b {
		bc := cloneVal(bv, memoB)
		if av, ok := out[r]; ok {
			out[r] = mergeValsMemo(av, bc, merged)
		} else {
			out[r] = bc
		}
	}
	return out
}

// typeToVType maps an IR type name to a signature value type.
func typeToVType(t string) siglang.VType {
	switch t {
	case "int", "long", "short", "byte":
		return siglang.VInt
	case "boolean":
		return siglang.VBool
	case "java.lang.String":
		return siglang.VString
	default:
		if strings.HasPrefix(t, "java.lang.") {
			return siglang.VString
		}
		return siglang.VAny
	}
}

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

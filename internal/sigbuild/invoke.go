package sigbuild

import (
	"extractocol/internal/ir"
	"extractocol/internal/semmodel"
	"extractocol/internal/siglang"
	"extractocol/internal/taint"
)

// evalInvoke interprets a call according to the semantic model (modeled
// library methods), recurses into application callees that contribute slice
// statements, and captures the request/response at demarcation points.
func (ev *evaluator) evalInvoke(m *ir.Method, idx int, in *ir.Instr, en env, loop int) {
	arg := func(i int) aval {
		if i < len(in.Args) && in.Args[i] != ir.NoReg {
			return en[in.Args[i]]
		}
		return unknownVal(siglang.VAny, "")
	}
	setDst := func(v aval) {
		if in.Dst != ir.NoReg {
			en[in.Dst] = v
		}
	}

	here := taint.StmtID{Method: m.Ref(), Index: idx}
	mm := ev.model.Lookup(in.Sym)

	// Demarcation points: capture the request; seed the response.
	if mm != nil && mm.DP {
		ev.atDP(m, idx, in, en, mm, here)
		return
	}

	if mm != nil {
		ev.evalModeled(m, idx, in, en, mm, arg, setDst, loop)
		return
	}

	// Constructors of app/unknown classes.
	if isInit(in.Sym) {
		recv := arg(0)
		if recv.obj != nil && recv.obj.kind == oRequest && recv.obj.uri == nil && len(in.Args) > 1 {
			recv.obj.uri = arg(1).sigOf()
		}
		return
	}

	// Application callee: recurse when it carries slice statements.
	callee := ev.resolveCallee(m, in)
	if callee != nil && ev.filteredMethod(callee.Ref()) {
		args := make([]aval, len(in.Args))
		for i := range in.Args {
			args[i] = arg(i)
		}
		setDst(ev.evalMethod(callee, args))
		return
	}
	setDst(unknownVal(siglang.VAny, in.Sym))
}

func isInit(sym string) bool {
	_, name, ok := ir.SplitRef(sym)
	return ok && name == "<init>"
}

func (ev *evaluator) resolveCallee(m *ir.Method, in *ir.Instr) *ir.Method {
	cls, name, ok := ir.SplitRef(in.Sym)
	if !ok {
		return nil
	}
	// Prefer the inferred receiver type.
	if len(in.Args) > 0 {
		types := ev.types(m)
		if r := in.Args[0]; r >= 0 && r < len(types) && types[r] != "" {
			if t := ev.prog.ResolveMethod(types[r], name); t != nil {
				return t
			}
		}
	}
	if t := ev.prog.ResolveMethod(cls, name); t != nil {
		return t
	}
	// Single implementer of an interface.
	impls := ev.prog.Implementers(cls)
	if len(impls) == 1 {
		return ev.prog.ResolveMethod(impls[0], name)
	}
	return nil
}

// atDP captures the request object state and seeds the response value.
func (ev *evaluator) atDP(m *ir.Method, idx int, in *ir.Instr, en env,
	mm *semmodel.Method, here taint.StmtID) {

	var reqObj *aobj
	if mm.ReqArg >= 0 && mm.ReqArg < len(in.Args) {
		reqObj = ev.asRequest(en[in.Args[mm.ReqArg]], mm)
	}

	isPrimary := here == ev.dp
	if isPrimary && reqObj != nil {
		reqObj = cloneObj(reqObj, map[*aobj]*aobj{})
		if ev.req == nil {
			ev.req = reqObj
		} else {
			merged := mergeVals(aval{obj: ev.req}, aval{obj: reqObj})
			if merged.obj != nil {
				ev.req = merged.obj
			}
		}
	}

	// Response value.
	var rs *respState
	if isPrimary {
		rs = ev.resp
	} else {
		key := fmtDP(here)
		if ev.respSec[key] == nil {
			ev.respSec[key] = &respState{dpID: key, root: &siglang.Obj{},
				writeOrigins: map[string]string{}}
		}
		rs = ev.respSec[key]
	}

	if mm.RespRet && in.Dst != ir.NoReg {
		en[in.Dst] = aval{obj: &aobj{kind: oRespRaw, resp: rs}, fromResp: rs}
	}
	if mm.CallbackMethod != "" && mm.CallbackArg < len(in.Args) {
		// Asynchronous DP: interpret the callback with the response bound
		// to its first parameter.
		cbv := en[in.Args[mm.CallbackArg]]
		cbClass := ""
		if cbv.obj != nil {
			cbClass = cbv.obj.class
		}
		if cbClass != "" {
			if target := ev.prog.ResolveMethod(cbClass, mm.CallbackMethod); target != nil && ev.filteredMethod(target.Ref()) {
				respArg := aval{obj: &aobj{kind: oRespRaw, resp: rs}, fromResp: rs}
				args := []aval{cbv, respArg}
				if target.Static {
					args = []aval{respArg}
				}
				ev.evalMethod(target, args)
			}
		}
	}
}

// asRequest coerces the value at the DP's request position into a request
// object: an explicit request, an okhttp Call, a URL/conn, or a bare URI.
func (ev *evaluator) asRequest(v aval, mm *semmodel.Method) *aobj {
	if v.obj != nil {
		switch v.obj.kind {
		case oRequest:
			return v.obj
		case oCall:
			return v.obj.request
		case oURL:
			return &aobj{kind: oRequest, uri: v.obj.uri, method: "GET",
				uriDeps: v.obj.uriDeps, bodyDeps: map[string]bool{}}
		}
	}
	// Bare URI (MediaPlayer.setDataSource, WebView.loadUrl).
	method := mm.HTTPMethod
	if method == "" {
		method = "GET"
	}
	r := &aobj{kind: oRequest, uri: v.sigOf(), method: method,
		uriDeps: deps(v), bodyDeps: map[string]bool{}}
	return r
}

// evalModeled interprets a modeled (non-DP) library call.
func (ev *evaluator) evalModeled(m *ir.Method, idx int, in *ir.Instr, en env,
	mm *semmodel.Method, arg func(int) aval, setDst func(aval), loop int) {

	recv := arg(0)

	switch mm.Kind {
	// ---- Strings -------------------------------------------------------
	case semmodel.KStringBuilderInit:
		o := recv.obj
		if o == nil {
			o = &aobj{kind: oBuilder}
		}
		o.kind = oBuilder
		o.buf = siglang.Str("")
		if len(in.Args) > 1 {
			o.buf = arg(1).sigOf()
			o.uriDeps = unionSet(o.uriDeps, deps(arg(1)))
		}
	case semmodel.KAppend:
		ev.evalAppend(recv, arg(1), loop)
		setDst(recv)
	case semmodel.KToString:
		if recv.obj != nil && recv.obj.kind == oBuilder {
			setDst(aval{sig: recv.obj.buf, locs: recv.obj.uriDeps,
				fromResp: recv.fromResp, respPath: recv.respPath})
			return
		}
		if recv.obj != nil && (recv.obj.kind == oRespRaw || recv.obj.kind == oRespNode) {
			setDst(aval{sig: siglang.AnyString(), fromResp: recv.obj.resp,
				respPath: recv.obj.respPath})
			return
		}
		setDst(aval{sig: recv.sigOf(), locs: recv.locs, fromResp: recv.fromResp, respPath: recv.respPath})
	case semmodel.KStringConcat:
		out := aval{sig: siglang.Cat(recv.sigOf(), arg(1).sigOf()),
			locs: unionSet(deps(recv), deps(arg(1)))}
		setDst(out)
	case semmodel.KValueOf:
		v := arg(0)
		if in.Kind != ir.InvokeStatic {
			v = recv
		}
		setDst(aval{sig: v.sigOf(), locs: deps(v), fromResp: v.fromResp, respPath: v.respPath})
	case semmodel.KURLEncode:
		setDst(encodeConst(arg(0)))
	case semmodel.KPassThrough, semmodel.KStringFormatIdentity:
		v := recv
		if in.Kind == ir.InvokeStatic {
			v = arg(0)
		}
		setDst(aval{sig: v.sigOf(), obj: passThroughObj(v), locs: v.locs,
			fromResp: v.fromResp, respPath: v.respPath})
	case semmodel.KStringEquals:
		setDst(unknownVal(siglang.VBool, "equals"))

	// ---- HTTP request construction --------------------------------------
	case semmodel.KHTTPReqInit:
		o := recv.obj
		if o == nil {
			o = &aobj{}
		}
		o.kind = oRequest
		o.method = mm.HTTPMethod
		if o.method == "" {
			o.method = "GET"
		}
		o.uriDeps = map[string]bool{}
		o.bodyDeps = map[string]bool{}
		// First string-like argument is the URI; a JSON-building argument
		// becomes the body; an integer constant selects the verb (volley's
		// JsonObjectRequest(method, url, body, listener)).
		for i := 1; i < len(in.Args); i++ {
			v := arg(i)
			if l, isLit := v.sigOf().(*siglang.Lit); isLit && l.Num {
				if verb := volleyVerb(l.Val); verb != "" {
					o.method = verb
					continue
				}
			}
			if v.obj != nil && v.obj.kind == oJSONBuild {
				o.body = &aobj{kind: oEntity, bodyKind: "json", jsonTree: v.obj.tree}
				if o.method == "GET" {
					o.method = "POST"
				}
				addDeps(o.bodyDeps, v)
				continue
			}
			if o.uri == nil {
				if l, isLit := v.sigOf().(*siglang.Lit); isLit && l.Num {
					continue
				}
				switch v.sigOf().(type) {
				case *siglang.Lit, *siglang.Concat, *siglang.Unknown, *siglang.Or, *siglang.Rep:
					o.uri = v.sigOf()
					for d := range deps(v) {
						o.uriDeps[d] = true
					}
				}
			}
		}
	case semmodel.KHTTPSetEntity:
		if recv.obj != nil && recv.obj.kind == oRequest {
			body := arg(1)
			if body.obj != nil && body.obj.kind == oEntity {
				recv.obj.body = body.obj
			}
			addDeps(recv.obj.bodyDeps, body)
		}
	case semmodel.KHTTPAddHeader, semmodel.KConnSetHeader, semmodel.KOkHeader:
		if recv.obj != nil {
			k, _ := arg(1).constString()
			recv.obj.headers = append(recv.obj.headers,
				siglang.KV{Key: k, Dyn: k == "", Val: arg(2).sigOf()})
			if recv.obj.pairs == nil {
				recv.obj.pairs = map[string]aval{}
			}
			recv.obj.pairs["hdr:"+k] = arg(2)
		}
		if mm.Kind == semmodel.KOkHeader {
			setDst(recv)
		}
	case semmodel.KStringEntityInit:
		o := recv.obj
		if o == nil {
			o = &aobj{}
		}
		o.kind = oEntity
		v := arg(1)
		o.text = v.sigOf()
		if j, isJSON := v.sigOf().(*siglang.JSON); isJSON {
			o.bodyKind = "json"
			if t, isObj := j.Root.(*siglang.Obj); isObj {
				o.jsonTree = t
			}
		} else {
			o.bodyKind = "text"
		}
		o.uriDeps = deps(v)
	case semmodel.KFormEntityInit:
		o := recv.obj
		if o == nil {
			o = &aobj{}
		}
		o.kind = oEntity
		o.bodyKind = "query"
		list := arg(1)
		if list.obj != nil && list.obj.kind == oList {
			var parts []siglang.Sig
			fieldDeps := map[string]aval{}
			for i, el := range list.obj.elems {
				if i > 0 {
					parts = append(parts, siglang.Str("&"))
				}
				if el.obj != nil && el.obj.kind == oNVPair {
					parts = append(parts, el.obj.key.sigOf(), siglang.Str("="), encodeConst(el.obj.val).sigOf())
					if k, ok := el.obj.key.constString(); ok {
						fieldDeps[k] = el.obj.val
					}
				} else {
					parts = append(parts, el.sigOf())
				}
			}
			body := siglang.Cat(parts...)
			if list.obj.open {
				body = siglang.Repeat(body)
			}
			o.text = body
			if o.pairs == nil {
				o.pairs = map[string]aval{}
			}
			for k, v := range fieldDeps {
				o.pairs[k] = v
			}
		}
	case semmodel.KMultipartCreate:
		setDst(aval{obj: &aobj{kind: oEntity, bodyKind: "multipart"}})
	case semmodel.KMultipartAddPart:
		if recv.obj != nil && recv.obj.kind == oEntity {
			recv.obj.elems = append(recv.obj.elems,
				aval{obj: &aobj{kind: oNVPair, key: arg(1), val: arg(2)}})
			if loop >= 0 {
				recv.obj.open = true
			}
		}
		setDst(recv)
	case semmodel.KMultipartBuild:
		if recv.obj != nil && recv.obj.kind == oEntity {
			var parts []siglang.Sig
			for i, el := range recv.obj.elems {
				if i > 0 {
					parts = append(parts, siglang.Str("&"))
				}
				if el.obj != nil && el.obj.kind == oNVPair {
					parts = append(parts, el.obj.key.sigOf(), siglang.Str("="), el.obj.val.sigOf())
					if k, ok := el.obj.key.constString(); ok {
						if recv.obj.pairs == nil {
							recv.obj.pairs = map[string]aval{}
						}
						recv.obj.pairs[k] = el.obj.val
					}
				} else {
					parts = append(parts, el.sigOf())
				}
			}
			body := siglang.Cat(parts...)
			if recv.obj.open {
				body = siglang.Repeat(body)
			}
			recv.obj.text = body
		}
		setDst(recv)
	case semmodel.KNVPairInit:
		o := recv.obj
		if o == nil {
			o = &aobj{}
		}
		o.kind = oNVPair
		o.key = arg(1)
		o.val = arg(2)

	// ---- Raw TCP sockets ----------------------------------------------------
	case semmodel.KSocketInit:
		o := recv.obj
		if o == nil {
			o = &aobj{}
		}
		o.kind = oRequest
		o.method = "TCP"
		o.uri = siglang.Cat(siglang.Str("tcp://"), arg(1).sigOf(), siglang.Str(":"), arg(2).sigOf())
		o.uriDeps = unionSet(deps(arg(1)), deps(arg(2)))
		o.bodyDeps = map[string]bool{}

	// ---- java.net.URL / HttpURLConnection ---------------------------------
	case semmodel.KURLInit:
		o := recv.obj
		if o == nil {
			o = &aobj{}
		}
		o.kind = oURL
		o.uri = arg(1).sigOf()
		o.uriDeps = deps(arg(1))
	case semmodel.KOpenConnection:
		o := &aobj{kind: oRequest, method: "GET", uriDeps: map[string]bool{}, bodyDeps: map[string]bool{}}
		if recv.obj != nil && recv.obj.kind == oURL {
			o.uri = recv.obj.uri
			o.uriDeps = cloneSet(recv.obj.uriDeps)
		}
		setDst(aval{obj: o})
	case semmodel.KConnSetMethod:
		if recv.obj != nil {
			if s, ok := arg(1).constString(); ok {
				recv.obj.method = s
			}
		}
	case semmodel.KConnGetOutput:
		if recv.obj != nil && recv.obj.kind == oRequest {
			if recv.obj.body == nil {
				recv.obj.body = &aobj{kind: oEntity, bodyKind: "text", text: siglang.Str("")}
			}
			setDst(aval{obj: recv.obj.body})
			if recv.obj.method == "GET" {
				recv.obj.method = "POST"
			}
			return
		}
		setDst(unknownVal(siglang.VAny, "stream"))
	case semmodel.KStreamWrap:
		// Stream decorator constructor (GZIPInputStream, BufferedReader,
		// InputStreamReader, ...): the wrapper aliases the wrapped stream,
		// so reads and writes reach the underlying response or request
		// entity transparently.
		if len(in.Args) > 1 && in.Args[0] != ir.NoReg {
			en[in.Args[0]] = arg(1)
		}
	case semmodel.KStreamWrite:
		if recv.obj != nil && recv.obj.kind == oEntity {
			v := arg(1)
			recv.obj.text = siglang.Cat(recv.obj.text, v.sigOf())
			if j, isJSON := v.sigOf().(*siglang.JSON); isJSON {
				recv.obj.bodyKind = "json"
				if t, isObj := j.Root.(*siglang.Obj); isObj {
					recv.obj.jsonTree = t
				}
			}
			addDeps(ensureSet(&recv.obj.uriDeps), v)
		}

	// ---- okhttp ------------------------------------------------------------
	case semmodel.KOkRequestBuilder:
		o := recv.obj
		if o == nil {
			o = &aobj{}
		}
		o.kind = oRequest
		o.method = "GET"
		o.uriDeps = map[string]bool{}
		o.bodyDeps = map[string]bool{}
	case semmodel.KOkURL:
		if recv.obj != nil {
			recv.obj.uri = arg(1).sigOf()
			recv.obj.uriDeps = deps(arg(1))
		}
		setDst(recv)
	case semmodel.KOkPost:
		if recv.obj != nil {
			recv.obj.method = "POST"
			b := arg(1)
			if b.obj != nil && b.obj.kind == oEntity {
				recv.obj.body = b.obj
			}
			addDeps(ensureSet(&recv.obj.bodyDeps), b)
		}
		setDst(recv)
	case semmodel.KOkBuild:
		setDst(recv)
	case semmodel.KOkNewCall:
		req := arg(1)
		o := &aobj{kind: oCall}
		if req.obj != nil {
			o.request = req.obj
		}
		setDst(aval{obj: o})
	case semmodel.KOkBodyCreate:
		o := &aobj{kind: oEntity}
		v := arg(len(in.Args) - 1)
		o.text = v.sigOf()
		o.bodyKind = "text"
		if j, isJSON := v.sigOf().(*siglang.JSON); isJSON {
			o.bodyKind = "json"
			if t, isObj := j.Root.(*siglang.Obj); isObj {
				o.jsonTree = t
			}
		}
		setDst(aval{obj: o})

	// ---- Response access ----------------------------------------------------
	case semmodel.KRespGetEntity, semmodel.KEntityContent, semmodel.KReadStream,
		semmodel.KRespBody:
		v := recv
		if in.Kind == ir.InvokeStatic {
			v = arg(0)
		}
		if v.obj != nil && v.obj.resp != nil {
			setDst(aval{obj: &aobj{kind: oRespRaw, resp: v.obj.resp}, fromResp: v.obj.resp})
			return
		}
		if v.fromResp != nil {
			setDst(aval{obj: &aobj{kind: oRespRaw, resp: v.fromResp}, fromResp: v.fromResp})
			return
		}
		setDst(aval{sig: siglang.AnyString(), locs: v.locs})
	case semmodel.KRespGetHeader:
		rsp := respOf(recv)
		out := unknownVal(siglang.VString, "header")
		if rsp != nil {
			out.fromResp, out.respPath = rsp, "header:"+constOr(arg(1), "*")
		}
		setDst(out)

	// ---- JSON -----------------------------------------------------------------
	case semmodel.KJSONInit:
		o := recv.obj
		if o == nil {
			o = &aobj{}
		}
		o.kind = oJSONBuild
		o.tree = &siglang.Obj{}
	case semmodel.KJSONParse:
		src := arg(0)
		if in.Kind != ir.InvokeStatic && len(in.Args) > 1 {
			src = arg(1)
		}
		if rsp := respOf(src); rsp != nil {
			rsp.bodyKind = "json"
			setDst(respNodeVal(rsp, rsp.root, ""))
			return
		}
		// Parsing a non-response string: opaque JSON object.
		o := &aobj{kind: oJSONBuild, tree: &siglang.Obj{}}
		setDst(aval{obj: o, locs: deps(src)})
	case semmodel.KJSONPut:
		ev.evalJSONPut(recv, arg(1), arg(2), loop)
		setDst(recv)
	case semmodel.KJSONGetStr, semmodel.KJSONGetInt, semmodel.KJSONGetBool:
		setDst(ev.evalJSONGetLeaf(recv, arg(1), mm.Kind))
	case semmodel.KJSONGetObj:
		setDst(ev.evalJSONGetObj(recv, arg(1)))
	case semmodel.KJSONGetArr:
		setDst(ev.evalJSONGetArr(recv, arg(1)))
	case semmodel.KJSONArrGet:
		// Element of a response array: the array's element object.
		if recv.obj != nil && recv.obj.kind == oRespNode && recv.obj.node != nil {
			setDst(respNodeVal(recv.obj.resp, recv.obj.node, recv.obj.respPath))
			return
		}
		setDst(unknownVal(siglang.VAny, "arr"))
	case semmodel.KJSONArrLen:
		setDst(unknownVal(siglang.VInt, "len"))
	case semmodel.KJSONToString:
		if recv.obj != nil && recv.obj.kind == oJSONBuild {
			setDst(aval{sig: &siglang.JSON{Root: recv.obj.tree}, locs: recv.locs})
			return
		}
		if rsp := respOf(recv); rsp != nil {
			setDst(aval{sig: siglang.AnyString(), fromResp: rsp, respPath: recv.obj.respPath})
			return
		}
		setDst(aval{sig: siglang.AnyString()})

	// ---- gson / jackson (reflection) ------------------------------------------
	case semmodel.KGsonFromJSON:
		src := arg(1)
		clsName := constOr(arg(2), "")
		if rsp := respOf(src); rsp != nil {
			rsp.bodyKind = "json"
			o := &aobj{kind: oTyped, class: clsName, respBound: true,
				resp: rsp, node: rsp.root, pairs: map[string]aval{}}
			setDst(aval{obj: o, fromResp: rsp})
			return
		}
		setDst(unknownVal(siglang.VAny, "fromJson"))
	case semmodel.KGsonToJSON:
		v := arg(1)
		if v.obj != nil && v.obj.kind == oTyped {
			tree := ev.typedToTree(v.obj, 0)
			setDst(aval{sig: &siglang.JSON{Root: tree}, locs: v.locs})
			return
		}
		setDst(aval{sig: siglang.AnyString(), locs: v.locs})

	// ---- XML ---------------------------------------------------------------------
	case semmodel.KXMLParse:
		src := arg(0)
		if in.Kind != ir.InvokeStatic && len(in.Args) > 1 {
			src = arg(1)
		}
		if rsp := respOf(src); rsp != nil {
			rsp.bodyKind = "xml"
			if rsp.xmlRoot == nil {
				rsp.xmlRoot = &siglang.Elem{Tag: "*"}
			}
			setDst(aval{obj: &aobj{kind: oRespXML, resp: rsp, elem: rsp.xmlRoot}, fromResp: rsp})
			return
		}
		setDst(unknownVal(siglang.VAny, "xml"))
	case semmodel.KXMLGetTag:
		if recv.obj != nil && recv.obj.kind == oRespXML && recv.obj.elem != nil {
			tag := constOr(arg(1), "*")
			child := findOrAddElem(recv.obj.elem, tag)
			setDst(aval{obj: &aobj{kind: oRespXML, resp: recv.obj.resp, elem: child,
				respPath: joinPath(recv.obj.respPath, tag)}, fromResp: recv.obj.resp,
				respPath: joinPath(recv.obj.respPath, tag)})
			return
		}
		setDst(unknownVal(siglang.VAny, "elem"))
	case semmodel.KXMLGetAttr:
		if recv.obj != nil && recv.obj.kind == oRespXML && recv.obj.elem != nil {
			name := constOr(arg(1), "*")
			recv.obj.elem.Attrs = append(recv.obj.elem.Attrs,
				siglang.KV{Key: name, Val: siglang.AnyString()})
			p := joinPath(recv.obj.respPath, "@"+name)
			setDst(aval{sig: siglang.AnyString(), fromResp: recv.obj.resp, respPath: p})
			return
		}
		setDst(unknownVal(siglang.VString, "attr"))
	case semmodel.KXMLGetText:
		if recv.obj != nil && recv.obj.kind == oRespXML && recv.obj.elem != nil {
			recv.obj.elem.Text = siglang.AnyString()
			setDst(aval{sig: siglang.AnyString(), fromResp: recv.obj.resp,
				respPath: joinPath(recv.obj.respPath, "#text")})
			return
		}
		setDst(unknownVal(siglang.VString, "text"))

	// ---- Containers -----------------------------------------------------------------
	case semmodel.KListInit:
		o := recv.obj
		if o == nil {
			o = &aobj{}
		}
		o.kind = oList
	case semmodel.KListAdd:
		if recv.obj != nil && recv.obj.kind == oList {
			recv.obj.elems = append(recv.obj.elems, arg(1))
			if loop >= 0 {
				recv.obj.open = true
			}
		}
	case semmodel.KListGet:
		if recv.obj != nil && recv.obj.kind == oList && len(recv.obj.elems) > 0 {
			out := recv.obj.elems[0]
			for _, el := range recv.obj.elems[1:] {
				out = mergeVals(out, el)
			}
			setDst(out)
			return
		}
		setDst(unknownVal(siglang.VAny, "list"))
	case semmodel.KMapInit, semmodel.KCVInit:
		o := recv.obj
		if o == nil {
			o = &aobj{}
		}
		o.kind = oMap
		o.pairs = map[string]aval{}
	case semmodel.KMapPut, semmodel.KCVPut:
		if recv.obj != nil {
			if recv.obj.pairs == nil {
				recv.obj.pairs = map[string]aval{}
			}
			if k, ok := arg(1).constString(); ok {
				if _, seen := recv.obj.pairs[k]; !seen {
					recv.obj.order = append(recv.obj.order, k)
				}
				recv.obj.pairs[k] = arg(2)
			}
		}
	case semmodel.KMapGet:
		if recv.obj != nil && recv.obj.pairs != nil {
			if k, ok := arg(1).constString(); ok {
				if v, present := recv.obj.pairs[k]; present {
					setDst(v)
					return
				}
			}
		}
		setDst(unknownVal(siglang.VAny, "map"))

	// ---- Android: resources, database -------------------------------------------------
	case semmodel.KResGetString:
		key := constOr(arg(1), "")
		if v, ok := ev.prog.Resources[key]; ok && key != "" {
			setDst(aval{sig: siglang.Str(v), locs: map[string]bool{"res:" + key: true}})
			return
		}
		setDst(unknownVal(siglang.VString, "res:"+key).withLoc("res:" + key))
	case semmodel.KDBQuery:
		loc := ev.dbLoc(m, idx, in, en)
		if v, ok := ev.heap[loc]; ok {
			setDst(cloneVal(v, map[*aobj]*aobj{}).withLoc(loc))
			return
		}
		setDst(unknownVal(siglang.VString, loc).withLoc(loc))
	case semmodel.KDBInsert, semmodel.KDBUpdate:
		table := constOr(arg(1), "*")
		values := arg(2)
		if values.obj != nil && values.obj.pairs != nil {
			for _, col := range values.obj.order {
				v := values.obj.pairs[col]
				loc := "db:" + table + "." + col
				ev.recordWriteOrigin(loc, v)
				ev.heapWrite(loc, v)
			}
		}

	// ---- Sinks / sources (already recorded by the slicer) ------------------------------
	case semmodel.KFileWrite, semmodel.KUIDisplay, semmodel.KMicRead,
		semmodel.KCameraRead, semmodel.KLocationGet, semmodel.KDeviceID:
		setDst(unknownVal(siglang.VAny, mm.Ref))

	// ---- Async registrations (control handled by the call graph) -----------------------
	case semmodel.KAsyncExecute, semmodel.KThreadStart, semmodel.KTimerSchedule,
		semmodel.KHandlerPost, semmodel.KFutureSubmit, semmodel.KRxSubscribe:
		cb := recv
		if mm.CallbackArg < len(in.Args) {
			cb = arg(mm.CallbackArg)
		}
		if cb.obj != nil && cb.obj.class != "" {
			if target := ev.prog.ResolveMethod(cb.obj.class, mm.CallbackMethod); target != nil && ev.filteredMethod(target.Ref()) {
				args := []aval{cb}
				for i := mm.CallbackArg + 1; i < len(in.Args); i++ {
					args = append(args, arg(i))
				}
				ret := ev.evalMethod(target, args)
				// AsyncTask chain: result flows into onPostExecute.
				if mm.Kind == semmodel.KAsyncExecute {
					if post := ev.prog.ResolveMethod(cb.obj.class, "onPostExecute"); post != nil && ev.filteredMethod(post.Ref()) {
						ev.evalMethod(post, []aval{cb, ret})
					}
				}
			}
		}

	default:
		setDst(unknownVal(siglang.VAny, mm.Ref))
	}
}

// volleyVerb maps com.android.volley.Request.Method constants to verbs.
func volleyVerb(v string) string {
	switch v {
	case "0":
		return "GET"
	case "1":
		return "POST"
	case "2":
		return "PUT"
	case "3":
		return "DELETE"
	}
	return ""
}

func ensureSet(s *map[string]bool) map[string]bool {
	if *s == nil {
		*s = map[string]bool{}
	}
	return *s
}

func passThroughObj(v aval) *aobj { return v.obj }

func respOf(v aval) *respState {
	if v.obj != nil && v.obj.resp != nil {
		return v.obj.resp
	}
	return v.fromResp
}

func constOr(v aval, def string) string {
	if s, ok := v.constString(); ok {
		return s
	}
	return def
}

// evalAppend accumulates onto a builder; inside a loop the appended parts
// widen into a repetition marker mutated in place (rep{...} of §3.2).
func (ev *evaluator) evalAppend(recv, v aval, loop int) {
	o := recv.obj
	if o == nil || o.kind != oBuilder {
		return
	}
	s := v.sigOf()
	addDeps(ensureSet(&o.uriDeps), v)
	if loop >= 0 {
		if o.lastRep != nil && o.lastRepLoop == loop {
			// Same loop iteration context: extend the repetition body
			// mutated in place (the buf already references it).
			o.lastRep.Body = siglang.Cat(o.lastRep.Body, s)
			return
		}
		rep := &siglang.Rep{Body: s}
		o.buf = siglang.Cat(o.buf, rep)
		o.lastRep, o.lastRepLoop = rep, loop
		return
	}
	o.lastRep = nil
	o.buf = siglang.Cat(o.buf, s)
}

// evalJSONPut adds a key/value pair to a JSON object under construction.
func (ev *evaluator) evalJSONPut(recv, key, val aval, loop int) {
	if recv.obj == nil || recv.obj.kind != oJSONBuild {
		return
	}
	if recv.obj.tree == nil {
		recv.obj.tree = &siglang.Obj{}
	}
	var vs siglang.Sig
	switch {
	case val.obj != nil && val.obj.kind == oJSONBuild:
		vs = val.obj.tree
	case val.obj != nil && val.obj.kind == oList:
		a := &siglang.Arr{Open: val.obj.open}
		for _, el := range val.obj.elems {
			a.Elems = append(a.Elems, el.sigOf())
		}
		vs = a
	default:
		vs = val.sigOf()
	}
	if recv.obj.pairs == nil {
		recv.obj.pairs = map[string]aval{}
	}
	if k, ok := key.constString(); ok && loop < 0 {
		recv.obj.tree.Put(k, vs)
		recv.obj.pairs[k] = val
	} else {
		recv.obj.tree.PutDyn(vs)
	}
}

// evalJSONGetLeaf handles getString/getInt/getBoolean on response trees.
func (ev *evaluator) evalJSONGetLeaf(recv, key aval, kind semmodel.Kind) aval {
	t := siglang.VString
	switch kind {
	case semmodel.KJSONGetInt:
		t = siglang.VInt
	case semmodel.KJSONGetBool:
		t = siglang.VBool
	}
	if recv.obj != nil && recv.obj.kind == oRespNode && recv.obj.node != nil {
		k := constOr(key, "")
		if k == "" {
			recv.obj.node.PutDyn(&siglang.Unknown{Type: t})
			return aval{sig: &siglang.Unknown{Type: t}, fromResp: recv.obj.resp,
				respPath: joinPath(recv.obj.respPath, "*")}
		}
		if recv.obj.node.Get(k) == nil {
			recv.obj.node.Put(k, &siglang.Unknown{Type: t})
		}
		return aval{sig: &siglang.Unknown{Type: t}, fromResp: recv.obj.resp,
			respPath: joinPath(recv.obj.respPath, k)}
	}
	// Access on a JSON object under construction: read back the value.
	if recv.obj != nil && recv.obj.kind == oJSONBuild && recv.obj.pairs != nil {
		if k, ok := key.constString(); ok {
			if v, present := recv.obj.pairs[k]; present {
				return v
			}
		}
	}
	return aval{sig: &siglang.Unknown{Type: t, Origin: constOr(key, "?")}, locs: recv.locs,
		fromResp: recv.fromResp, respPath: joinPath(recv.respPath, constOr(key, "*"))}
}

func (ev *evaluator) evalJSONGetObj(recv, key aval) aval {
	if recv.obj != nil && recv.obj.kind == oRespNode && recv.obj.node != nil {
		k := constOr(key, "*")
		child, okObj := recv.obj.node.Get(k).(*siglang.Obj)
		if !okObj {
			child = &siglang.Obj{}
			recv.obj.node.Put(k, child)
		}
		return respNodeVal(recv.obj.resp, child, joinPath(recv.obj.respPath, k))
	}
	return unknownVal(siglang.VAny, "jsonobj")
}

func (ev *evaluator) evalJSONGetArr(recv, key aval) aval {
	if recv.obj != nil && recv.obj.kind == oRespNode && recv.obj.node != nil {
		k := constOr(key, "*")
		var elemObj *siglang.Obj
		if arr, okArr := recv.obj.node.Get(k).(*siglang.Arr); okArr && len(arr.Elems) > 0 {
			if o, isObj := arr.Elems[0].(*siglang.Obj); isObj {
				elemObj = o
			}
		}
		if elemObj == nil {
			elemObj = &siglang.Obj{}
			recv.obj.node.Put(k, &siglang.Arr{Elems: []siglang.Sig{elemObj}, Open: true})
		}
		return respNodeVal(recv.obj.resp, elemObj, joinPath(recv.obj.respPath, k+"[]"))
	}
	return unknownVal(siglang.VAny, "jsonarr")
}

// typedRespField reads field f of a gson-bound object: the access extends
// the response tree with the field name, typed by the class declaration
// (reflection-based nested JSON support).
func (ev *evaluator) typedRespField(o *aobj, field string) aval {
	t := siglang.VString
	var fieldType string
	if c := ev.prog.Class(o.class); c != nil {
		if f := c.Field(field); f != nil {
			fieldType = f.Type
			t = typeToVType(f.Type)
		}
	}
	path := joinPath(o.respPath, field)
	// Nested app-typed field: a sub-object in the tree.
	if fieldType != "" {
		if fc := ev.prog.Class(fieldType); fc != nil && !fc.Library {
			child, okObj := o.node.Get(field).(*siglang.Obj)
			if !okObj {
				child = &siglang.Obj{}
				o.node.Put(field, child)
			}
			sub := &aobj{kind: oTyped, class: fieldType, respBound: true,
				resp: o.resp, node: child, respPath: path, pairs: map[string]aval{}}
			return aval{obj: sub, fromResp: o.resp, respPath: path}
		}
	}
	if o.node.Get(field) == nil {
		o.node.Put(field, &siglang.Unknown{Type: t})
	}
	return aval{sig: &siglang.Unknown{Type: t}, fromResp: o.resp, respPath: path}
}

// typedToTree serializes an app-typed object to a JSON tree using its class
// declaration, mirroring gson.toJson reflection.
func (ev *evaluator) typedToTree(o *aobj, depth int) *siglang.Obj {
	tree := &siglang.Obj{}
	if depth > 4 {
		return tree
	}
	c := ev.prog.Class(o.class)
	if c == nil {
		for _, k := range o.order {
			tree.Put(k, o.pairs[k].sigOf())
		}
		return tree
	}
	for _, f := range c.Fields {
		if f.Static {
			continue
		}
		if v, ok := o.pairs[f.Name]; ok {
			if v.obj != nil && v.obj.kind == oTyped {
				tree.Put(f.Name, ev.typedToTree(v.obj, depth+1))
				continue
			}
			tree.Put(f.Name, v.sigOf())
			continue
		}
		if fc := ev.prog.Class(f.Type); fc != nil && !fc.Library {
			tree.Put(f.Name, ev.typedToTree(&aobj{kind: oTyped, class: f.Type}, depth+1))
			continue
		}
		tree.Put(f.Name, &siglang.Unknown{Type: typeToVType(f.Type)})
	}
	return tree
}

// dbLoc resolves the heap location of a DB read.
func (ev *evaluator) dbLoc(m *ir.Method, idx int, in *ir.Instr, en env) string {
	table := "*"
	col := "*"
	if len(in.Args) > 1 {
		if s, ok := en[in.Args[1]].constString(); ok {
			table = s
		}
	}
	if len(in.Args) > 2 {
		if s, ok := en[in.Args[2]].constString(); ok {
			col = s
		}
	}
	return "db:" + table + "." + col
}

func findOrAddElem(parent *siglang.Elem, tag string) *siglang.Elem {
	for _, c := range parent.Children {
		if c.Tag == tag {
			return c
		}
	}
	c := &siglang.Elem{Tag: tag}
	parent.Children = append(parent.Children, c)
	return c
}

// leadsToFilter reports whether a call may transitively reach statements in
// the slice filter: an app callee carrying filtered statements, or an async
// registration whose callback does.
func (ev *evaluator) leadsToFilter(m *ir.Method, in *ir.Instr) bool {
	if mm := ev.model.Lookup(in.Sym); mm != nil {
		if mm.CallbackMethod == "" {
			return false
		}
		if mm.CallbackArg >= len(in.Args) {
			return false
		}
		types := ev.types(m)
		r := in.Args[mm.CallbackArg]
		if r < 0 || r >= len(types) || types[r] == "" {
			return false
		}
		target := ev.prog.ResolveMethod(types[r], mm.CallbackMethod)
		return target != nil && ev.reachesFilter(target.Ref(), map[string]bool{})
	}
	callee := ev.resolveCallee(m, in)
	return callee != nil && ev.reachesFilter(callee.Ref(), map[string]bool{})
}

// reachesFilter walks the static call structure of a method checking
// whether it (or a transitive callee) contributes filtered statements.
func (ev *evaluator) reachesFilter(ref string, seen map[string]bool) bool {
	if ev.filteredMethod(ref) {
		return true
	}
	if seen[ref] {
		return false
	}
	seen[ref] = true
	m := ev.prog.Method(ref)
	if m == nil {
		return false
	}
	for i := range m.Instrs {
		in := &m.Instrs[i]
		if in.Op != ir.OpInvoke {
			continue
		}
		if callee := ev.resolveCallee(m, in); callee != nil {
			if ev.reachesFilter(callee.Ref(), seen) {
				return true
			}
		}
	}
	return false
}

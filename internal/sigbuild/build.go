package sigbuild

import (
	"fmt"
	"sort"

	"extractocol/internal/budget"
	"extractocol/internal/callgraph"
	"extractocol/internal/ir"
	"extractocol/internal/obs"
	"extractocol/internal/semmodel"
	"extractocol/internal/siglang"
	"extractocol/internal/slice"
)

// RequestSig is the reconstructed request side of a transaction: method,
// URI signature, headers, body, and the provenance of each part.
type RequestSig struct {
	Method string
	URI    siglang.Sig
	// Headers carries constant-keyed request headers with value signatures.
	Headers []siglang.KV
	// BodyKind is "", "query", "json", "text" or "xml".
	BodyKind string
	// Body is the request body/query-string signature (JSON bodies carry a
	// *siglang.JSON).
	Body siglang.Sig

	// URIDeps / BodyDeps name the heap locations, resources, database rows
	// and prior-response fields ("dp:<site>:<path>") feeding each part.
	URIDeps  []string
	BodyDeps []string
	// FieldDeps maps individual query/JSON body fields to their origins.
	FieldDeps map[string][]string
	// HeaderDeps maps header names to their origins.
	HeaderDeps map[string][]string
}

// ResponseSig is the reconstructed response side: the access signature of
// everything the program reads from the response.
type ResponseSig struct {
	// DPID identifies the demarcation point ("method@index").
	DPID string
	// BodyKind is "json", "xml", "text" or "" (body unused).
	BodyKind string
	JSON     *siglang.Obj
	XML      *siglang.Elem
	// WriteOrigins maps heap locations to the response path stored there
	// (the seed of inter-transaction dependency analysis).
	WriteOrigins map[string]string
	// Sinks lists where response data ends up ("media", "file", "ui").
	Sinks []string
}

// HasBody reports whether the app processes the response body at all.
func (r *ResponseSig) HasBody() bool {
	if r == nil {
		return false
	}
	switch r.BodyKind {
	case "json":
		return r.JSON != nil && len(r.JSON.Pairs) > 0
	case "xml":
		return r.XML != nil
	case "text":
		return true
	}
	return false
}

// Build reconstructs the request and response signatures of one
// transaction by abstractly interpreting its slices.
func Build(p *ir.Program, model *semmodel.Model, cg *callgraph.Graph,
	tx *slice.Transaction) (*RequestSig, *ResponseSig, error) {
	return BuildObs(p, model, cg, tx, nil)
}

// BuildObs is Build with workload counters: methods abstractly interpreted
// are recorded in stats when non-nil. The shard is unsynchronized and must
// be owned by the calling goroutine (one shard per sigbuild worker).
func BuildObs(p *ir.Program, model *semmodel.Model, cg *callgraph.Graph,
	tx *slice.Transaction, stats *obs.Shard) (*RequestSig, *ResponseSig, error) {
	return BuildBudgeted(p, model, cg, tx, stats, nil)
}

// BuildBudgeted is BuildObs under a budget: the interpreter checks one step
// per instruction and stops with a *budget.Exceeded error once a deadline
// or iteration limit trips, leaving the transaction without a signature
// (the orchestrator records the diagnostic). A nil budget is unlimited.
func BuildBudgeted(p *ir.Program, model *semmodel.Model, cg *callgraph.Graph,
	tx *slice.Transaction, stats *obs.Shard, bud *budget.Budget) (*RequestSig, *ResponseSig, error) {
	req, resp, _, err := BuildTraced(p, model, cg, tx, stats, bud)
	return req, resp, err
}

// BuildInfo is the provenance record of one signature construction,
// consumed by the explain layer: how much abstract interpretation the
// transaction's signature cost and how much of it ran outside the entry
// context (the cross-event heap pre-pass).
type BuildInfo struct {
	// MethodsEvaluated counts abstract method interpretations performed
	// (method × calling context, including nested calls and pre-pass
	// rounds).
	MethodsEvaluated int
	// PrePassMethods is the number of distinct slice methods interpreted
	// outside the entry context to populate the abstract heap first.
	PrePassMethods int
}

// BuildTraced is BuildBudgeted plus the BuildInfo provenance record. The
// record is a value — computing it costs two counters, so it is always
// returned and callers discard it when the explain layer is off.
func BuildTraced(p *ir.Program, model *semmodel.Model, cg *callgraph.Graph,
	tx *slice.Transaction, stats *obs.Shard, bud *budget.Budget) (*RequestSig, *ResponseSig, BuildInfo, error) {

	site := fmt.Sprintf("%s@%d", tx.DP.Method, tx.DP.Index)
	bud.MaybePanic(budget.PhaseSigbuild, site)

	filter := tx.Request.Stmts().Clone()
	if tx.Response != nil {
		filter.Union(tx.Response.Stmts())
	}

	dpm := model.Lookup(tx.DPRef)
	if dpm == nil {
		return nil, nil, BuildInfo{}, fmt.Errorf("sigbuild: unmodeled DP %s", tx.DPRef)
	}
	ev := newEvaluator(p, model, tx.DP, dpm, filter, tx.Request.Index())
	ev.stats = stats
	ev.cg = cg
	ev.ck = bud.Checker(budget.PhaseSigbuild, site)

	// Pre-pass: interpret slice methods outside the entry context first
	// (cross-event heap writers such as location callbacks or other
	// transactions' response handlers), so the abstract heap is populated
	// before the request is evaluated. Two rounds settle chained writes.
	reach := cg.ReachableBits(tx.Entry.Method)
	var pre []string
	ev.fmeths.Each(func(id uint32) bool {
		if !reach.Has(id) {
			pre = append(pre, ev.idx.MethodAt(id).Ref())
		}
		return true
	})
	sort.Strings(pre)
	for round := 0; round < 2; round++ {
		for _, ref := range pre {
			m := p.Method(ref)
			if m == nil {
				continue
			}
			ev.evalMethod(m, seedArgs(p, m, ev))
		}
	}

	info := BuildInfo{PrePassMethods: len(pre)}

	// Main pass from the transaction's entry point.
	entry := p.Method(tx.Entry.Method)
	if entry == nil {
		return nil, nil, info, fmt.Errorf("sigbuild: entry %s not found", tx.Entry.Method)
	}
	ev.evalMethod(entry, seedArgs(p, entry, ev))
	info.MethodsEvaluated = ev.methods

	if ev.truncated != nil {
		return nil, nil, info, ev.truncated
	}
	if ev.req == nil {
		return nil, nil, info, fmt.Errorf("sigbuild: demarcation point %s@%d never reached from %s",
			tx.DP.Method, tx.DP.Index, tx.Entry.Method)
	}

	req := assembleRequest(ev)
	var resp *ResponseSig
	if tx.Response != nil {
		resp = assembleResponse(ev, tx)
	}
	return req, resp, info, nil
}

// seedArgs builds entry argument values: typed unknowns, with instance
// receivers modeled as typed objects so field tracking works.
func seedArgs(p *ir.Program, m *ir.Method, ev *evaluator) []aval {
	var args []aval
	if !m.Static {
		args = append(args, ev.newObject(m.Class.Name))
	}
	for _, t := range m.Params {
		args = append(args, unknownVal(typeToVType(t), "param"))
	}
	return args
}

func assembleRequest(ev *evaluator) *RequestSig {
	r := ev.req
	out := &RequestSig{
		Method:     r.method,
		URI:        r.uri,
		Headers:    append([]siglang.KV{}, r.headers...),
		URIDeps:    sortedKeys(r.uriDeps),
		BodyDeps:   sortedKeys(r.bodyDeps),
		FieldDeps:  map[string][]string{},
		HeaderDeps: map[string][]string{},
	}
	if out.Method == "" {
		out.Method = "GET"
	}
	if out.URI == nil {
		out.URI = siglang.AnyString()
	}
	if r.body != nil {
		out.BodyKind = r.body.bodyKind
		switch r.body.bodyKind {
		case "json":
			out.Body = &siglang.JSON{Root: r.body.jsonTree}
		default:
			out.Body = r.body.text
		}
		// A text body whose literals carry key= fragments is a query
		// string (StringBuilder-composed form bodies).
		if out.BodyKind == "text" && len(siglang.Keywords(out.Body)) > 0 {
			out.BodyKind = "query"
		}
		// Field-level provenance recorded on the entity.
		for k, v := range r.body.pairs {
			if ds := sortedKeys(deps(v)); len(ds) > 0 {
				out.FieldDeps[k] = ds
			}
			for d := range deps(v) {
				r.bodyDeps = ensureSet(&r.bodyDeps)
				r.bodyDeps[d] = true
			}
		}
		out.BodyDeps = sortedKeys(r.bodyDeps)
	}
	// Header provenance stored in the request's field map.
	for k, v := range r.pairs {
		if len(k) > 4 && k[:4] == "hdr:" {
			if ds := sortedKeys(deps(v)); len(ds) > 0 {
				out.HeaderDeps[k[4:]] = ds
			}
		}
	}
	// JSON body field deps from the build tree values.
	if r.body != nil && r.body.bodyKind == "json" && r.body.jsonTree != nil {
		collectJSONFieldDeps(ev, r.body.jsonTree, "", out.FieldDeps)
	}
	return out
}

// collectJSONFieldDeps pulls per-field provenance from leaf unknown origins
// that reference heap locations.
func collectJSONFieldDeps(ev *evaluator, o *siglang.Obj, prefix string, out map[string][]string) {
	for _, kv := range o.Pairs {
		if kv.Dyn {
			continue
		}
		path := kv.Key
		if prefix != "" {
			path = prefix + "." + kv.Key
		}
		switch v := kv.Val.(type) {
		case *siglang.Obj:
			collectJSONFieldDeps(ev, v, path, out)
		case *siglang.Unknown:
			if v.Origin != "" && looksLikeLoc(v.Origin) {
				out[path] = append(out[path], v.Origin)
			}
		}
	}
}

func looksLikeLoc(s string) bool {
	for _, p := range []string{"f:", "s:", "db:", "res:", "dp:"} {
		if len(s) > len(p) && s[:len(p)] == p {
			return true
		}
	}
	return false
}

func assembleResponse(ev *evaluator, tx *slice.Transaction) *ResponseSig {
	rs := ev.resp
	out := &ResponseSig{
		DPID:         rs.dpID,
		BodyKind:     rs.bodyKind,
		WriteOrigins: map[string]string{},
	}
	switch rs.bodyKind {
	case "json":
		out.JSON = rs.root
	case "xml":
		out.XML = rs.xmlRoot
	}
	for loc, path := range rs.writeOrigins {
		out.WriteOrigins[loc] = path
	}
	for s := range tx.Sinks {
		out.Sinks = append(out.Sinks, s)
	}
	sort.Strings(out.Sinks)
	// A raw response consumed without structured parsing (file write, UI
	// display) is a text body; a response nobody reads has no body kind.
	if out.BodyKind == "" && tx.RespConsumed {
		out.BodyKind = "text"
	}
	return out
}

package sigbuild

import (
	"strings"
	"testing"

	"extractocol/internal/callgraph"
	"extractocol/internal/ir"
	"extractocol/internal/semmodel"
	"extractocol/internal/siglang"
	"extractocol/internal/slice"
)

const (
	sbInit   = "java.lang.StringBuilder.<init>"
	sbApp    = "java.lang.StringBuilder.append"
	sbStr    = "java.lang.StringBuilder.toString"
	getInit  = "org.apache.http.client.methods.HttpGet.<init>"
	postInit = "org.apache.http.client.methods.HttpPost.<init>"
	clInit   = "org.apache.http.impl.client.DefaultHttpClient.<init>"
	execRef  = "org.apache.http.client.HttpClient.execute"
	jInit    = "org.json.JSONObject.<init>"
	jParse   = "org.json.JSONObject.parse"
	jPut     = "org.json.JSONObject.put"
	jGetStr  = "org.json.JSONObject.getString"
	jGetObj  = "org.json.JSONObject.getJSONObject"
	jGetArr  = "org.json.JSONObject.getJSONArray"
	jArrGet  = "org.json.JSONArray.getJSONObject"
	jToStr   = "org.json.JSONObject.toString"
	entCont  = "org.apache.http.util.EntityUtils.toString"
	getEnt   = "org.apache.http.HttpResponse.getEntity"
	seInit   = "org.apache.http.entity.StringEntity.<init>"
	setEnt   = "org.apache.http.client.methods.HttpPost.setEntity"
	addHdr   = "org.apache.http.client.methods.HttpPost.addHeader"
	urlEnc   = "java.net.URLEncoder.encode"
)

// analyze runs the full front half of the pipeline on the program and
// returns signatures for every transaction.
func analyze(t *testing.T, p *ir.Program) []*RequestSig {
	t.Helper()
	reqs, _ := analyzeBoth(t, p)
	return reqs
}

func analyzeBoth(t *testing.T, p *ir.Program) ([]*RequestSig, []*ResponseSig) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid program: %v", err)
	}
	model := semmodel.Default()
	cg := callgraph.Build(p, model)
	txs := slice.Find(p, model, cg, slice.Options{MaxAsyncHops: 1})
	if len(txs) == 0 {
		t.Fatal("no transactions found")
	}
	var reqs []*RequestSig
	var resps []*ResponseSig
	for _, tx := range txs {
		rq, rs, err := Build(p, model, cg, tx)
		if err != nil {
			t.Fatalf("Build tx %d: %v", tx.ID, err)
		}
		reqs = append(reqs, rq)
		resps = append(resps, rs)
	}
	return reqs, resps
}

func newApp(pkg, cls string) (*ir.Program, *ir.Class) {
	p := ir.NewProgram(pkg)
	c := p.AddClass(&ir.Class{Name: cls})
	return p, c
}

func execute(b *ir.B, req int) int {
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial(clInit, cl)
	return b.Invoke(execRef, cl, req)
}

func TestBranchingURIProducesDisjunction(t *testing.T) {
	// The Diode pattern (Fig. 3): prefix depends on a branch; the final
	// regex must cover both alternatives.
	p, c := newApp("t.diode", "t.diode.D")
	b := ir.NewMethod(c, "doInBackground", false, []string{"int"}, "void")
	mode := b.Param(0)
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial(sbInit, sb)
	b.IfZ(mode, "search")
	front := b.ConstStr("http://www.reddit.com/.json?")
	b.InvokeVoid(sbApp, sb, front)
	b.Goto("done")
	b.Label("search")
	s1 := b.ConstStr("http://www.reddit.com/search/.json?q=")
	b.InvokeVoid(sbApp, sb, s1)
	q := b.ConstStr("cats") // placeholder user input
	enc := b.InvokeStatic(urlEnc, q)
	b.InvokeVoid(sbApp, sb, enc)
	s2 := b.ConstStr("&sort=")
	b.InvokeVoid(sbApp, sb, s2)
	srt := b.FieldGet(b.This(), "mSortSearch")
	b.InvokeVoid(sbApp, sb, srt)
	b.Label("done")
	uri := b.Invoke(sbStr, sb)
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, uri)
	execute(b, req)
	b.ReturnVoid()
	b.Done()
	c.Fields = []*ir.Field{{Name: "mSortSearch", Type: "java.lang.String"}}
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.diode.D.doInBackground", Kind: ir.EventClick}}

	reqs := analyze(t, p)
	if len(reqs) != 1 {
		t.Fatalf("requests = %d", len(reqs))
	}
	rq := reqs[0]
	if rq.Method != "GET" {
		t.Errorf("method = %s", rq.Method)
	}
	re, err := siglang.Compile(rq.URI)
	if err != nil {
		t.Fatalf("compile: %v (%s)", err, siglang.Canon(rq.URI))
	}
	if !re.MatchString("http://www.reddit.com/search/.json?q=cats&sort=top") {
		t.Errorf("URI regex %q rejects the search URI", siglang.Regex(rq.URI))
	}
	if !re.MatchString("http://www.reddit.com/.json?") {
		t.Errorf("URI regex %q rejects the frontpage URI", siglang.Regex(rq.URI))
	}
	if re.MatchString("http://evil.example.com/x") {
		t.Errorf("URI regex %q is over-broad", siglang.Regex(rq.URI))
	}
}

func TestJSONRequestBody(t *testing.T) {
	p, c := newApp("t.jb", "t.jb.J")
	b := ir.NewMethod(c, "login", false, []string{"java.lang.String", "java.lang.String"}, "void")
	user, pass := b.Param(0), b.Param(1)
	js := b.New("org.json.JSONObject")
	b.InvokeSpecial(jInit, js)
	ku := b.ConstStr("user")
	b.InvokeVoid(jPut, js, ku, user)
	kp := b.ConstStr("passwd")
	b.InvokeVoid(jPut, js, kp, pass)
	kt := b.ConstStr("api_type")
	tv := b.ConstStr("json")
	b.InvokeVoid(jPut, js, kt, tv)
	body := b.Invoke(jToStr, js)
	ent := b.New("org.apache.http.entity.StringEntity")
	b.InvokeSpecial(seInit, ent, body)
	u := b.ConstStr("https://ssl.example.com/api/login")
	req := b.New("org.apache.http.client.methods.HttpPost")
	b.InvokeSpecial(postInit, req, u)
	b.InvokeVoid(setEnt, req, ent)
	execute(b, req)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.jb.J.login", Kind: ir.EventLogin}}

	reqs := analyze(t, p)
	rq := reqs[0]
	if rq.Method != "POST" || rq.BodyKind != "json" {
		t.Fatalf("method=%s bodyKind=%s", rq.Method, rq.BodyKind)
	}
	j, ok := rq.Body.(*siglang.JSON)
	if !ok {
		t.Fatalf("body = %T", rq.Body)
	}
	keys := j.Root.(*siglang.Obj).Keys()
	if strings.Join(keys, ",") != "user,passwd,api_type" {
		t.Fatalf("body keys = %v", keys)
	}
	if v, lit := j.Root.(*siglang.Obj).Get("api_type").(*siglang.Lit); !lit || v.Val != "json" {
		t.Fatalf("api_type value = %s", siglang.Canon(j.Root.(*siglang.Obj).Get("api_type")))
	}
}

func TestQueryStringBodyViaFormEntity(t *testing.T) {
	p, c := newApp("t.q", "t.q.Q")
	b := ir.NewMethod(c, "vote", false, []string{"java.lang.String", "java.lang.String"}, "void")
	id, uh := b.Param(0), b.Param(1)
	list := b.New("java.util.ArrayList")
	b.InvokeSpecial("java.util.ArrayList.<init>", list)
	k1 := b.ConstStr("id")
	p1 := b.New("org.apache.http.message.BasicNameValuePair")
	b.InvokeSpecial("org.apache.http.message.BasicNameValuePair.<init>", p1, k1, id)
	b.InvokeVoid("java.util.ArrayList.add", list, p1)
	k2 := b.ConstStr("uh")
	p2 := b.New("org.apache.http.message.BasicNameValuePair")
	b.InvokeSpecial("org.apache.http.message.BasicNameValuePair.<init>", p2, k2, uh)
	b.InvokeVoid("java.util.ArrayList.add", list, p2)
	ent := b.New("org.apache.http.client.entity.UrlEncodedFormEntity")
	b.InvokeSpecial("org.apache.http.client.entity.UrlEncodedFormEntity.<init>", ent, list)
	u := b.ConstStr("http://www.example.com/api/vote")
	req := b.New("org.apache.http.client.methods.HttpPost")
	b.InvokeSpecial(postInit, req, u)
	b.InvokeVoid(setEnt, req, ent)
	execute(b, req)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.q.Q.vote", Kind: ir.EventClick}}

	rq := analyze(t, p)[0]
	if rq.BodyKind != "query" {
		t.Fatalf("bodyKind = %s", rq.BodyKind)
	}
	re, err := siglang.Compile(rq.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !re.MatchString("id=t3_abc&uh=hash99") {
		t.Errorf("body regex %q rejects conforming body", siglang.Regex(rq.Body))
	}
	kw := siglang.Keywords(rq.Body)
	if strings.Join(kw, ",") != "id,uh" {
		t.Errorf("keywords = %v", kw)
	}
}

func TestResponseAccessTree(t *testing.T) {
	p, c := newApp("t.r", "t.r.R")
	b := ir.NewMethod(c, "status", false, nil, "void")
	u := b.ConstStr("http://radio.example.com/api/hiphop/status.json")
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, u)
	resp := execute(b, req)
	ent := b.Invoke(getEnt, resp)
	raw := b.InvokeStatic(entCont, ent)
	js := b.InvokeStatic(jParse, raw)
	kRelay := b.ConstStr("relay")
	relay := b.Invoke(jGetStr, js, kRelay)
	kSongs := b.ConstStr("songs")
	songs := b.Invoke(jGetObj, js, kSongs)
	kSong := b.ConstStr("song")
	arr := b.Invoke(jGetArr, songs, kSong)
	zero := b.ConstInt(0)
	song := b.Invoke(jArrGet, arr, zero)
	kArtist := b.ConstStr("artist")
	b.Invoke(jGetStr, song, kArtist)
	mp := b.New("android.media.MediaPlayer")
	b.InvokeVoid("android.media.MediaPlayer.setDataSource", mp, relay)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.r.R.status", Kind: ir.EventClick}}

	_, resps := analyzeBoth(t, p)
	// Two transactions: the HTTP GET and the MediaPlayer fetch.
	var httpResp *ResponseSig
	for _, rs := range resps {
		if rs != nil && rs.BodyKind == "json" {
			httpResp = rs
		}
	}
	if httpResp == nil {
		t.Fatal("no JSON response signature")
	}
	kw := siglang.Keywords(&siglang.JSON{Root: httpResp.JSON})
	want := []string{"artist", "relay", "song", "songs"}
	if strings.Join(kw, ",") != strings.Join(want, ",") {
		t.Fatalf("response keywords = %v, want %v", kw, want)
	}
}

func TestLoopAppendWidensToRep(t *testing.T) {
	p, c := newApp("t.l", "t.l.L")
	b := ir.NewMethod(c, "list", false, []string{"int"}, "void")
	n := b.Param(0)
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial(sbInit, sb)
	base := b.ConstStr("https://api.example.com/batch?")
	b.InvokeVoid(sbApp, sb, base)
	b.Label("head")
	b.IfZ(n, "exit")
	amp := b.ConstStr("&id=")
	b.InvokeVoid(sbApp, sb, amp)
	b.InvokeVoid(sbApp, sb, n)
	one := b.ConstInt(1)
	dec := b.Binop("-", n, one)
	b.MoveTo(n, dec)
	b.Goto("head")
	b.Label("exit")
	uri := b.Invoke(sbStr, sb)
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, uri)
	execute(b, req)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.l.L.list", Kind: ir.EventClick}}

	rq := analyze(t, p)[0]
	canon := siglang.Canon(rq.URI)
	if !strings.Contains(canon, "rep{") {
		t.Fatalf("loop-built URI lacks repetition: %s", canon)
	}
	re, err := siglang.Compile(rq.URI)
	if err != nil {
		t.Fatal(err)
	}
	for _, uri := range []string{
		"https://api.example.com/batch?",
		"https://api.example.com/batch?&id=3&id=2&id=1",
	} {
		if !re.MatchString(uri) {
			t.Errorf("regex %q rejects %q", siglang.Regex(rq.URI), uri)
		}
	}
}

func TestResourceConstantFoldsIntoURI(t *testing.T) {
	p, c := newApp("t.res", "t.res.T")
	p.Resources["api_key"] = "TED-API-KEY-42"
	b := ir.NewMethod(c, "speakers", false, nil, "void")
	resObj := b.New("android.content.res.Resources")
	kn := b.ConstStr("api_key")
	key := b.Invoke("android.content.res.Resources.getString", resObj, kn)
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial(sbInit, sb)
	pre := b.ConstStr("https://api.ted.com/v1/speakers.json?api-key=")
	b.InvokeVoid(sbApp, sb, pre)
	b.InvokeVoid(sbApp, sb, key)
	uri := b.Invoke(sbStr, sb)
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, uri)
	execute(b, req)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.res.T.speakers", Kind: ir.EventCreate}}

	rq := analyze(t, p)[0]
	lit, ok := rq.URI.(*siglang.Lit)
	if !ok {
		t.Fatalf("URI = %s, want fully constant", siglang.Canon(rq.URI))
	}
	if lit.Val != "https://api.ted.com/v1/speakers.json?api-key=TED-API-KEY-42" {
		t.Fatalf("URI = %q", lit.Val)
	}
	found := false
	for _, d := range rq.URIDeps {
		if d == "res:api_key" {
			found = true
		}
	}
	if !found {
		t.Errorf("URIDeps = %v, want res:api_key", rq.URIDeps)
	}
}

func TestHeadersExtracted(t *testing.T) {
	p, c := newApp("t.h", "t.h.H")
	b := ir.NewMethod(c, "call", false, nil, "void")
	u := b.ConstStr("https://www.kayak.example/k/authajax")
	req := b.New("org.apache.http.client.methods.HttpPost")
	b.InvokeSpecial(postInit, req, u)
	hk := b.ConstStr("User-Agent")
	hv := b.ConstStr("kayakandroidphone/8.1")
	b.InvokeVoid(addHdr, req, hk, hv)
	execute(b, req)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.h.H.call", Kind: ir.EventCreate}}

	rq := analyze(t, p)[0]
	if len(rq.Headers) != 1 || rq.Headers[0].Key != "User-Agent" {
		t.Fatalf("headers = %+v", rq.Headers)
	}
	if l, ok := rq.Headers[0].Val.(*siglang.Lit); !ok || l.Val != "kayakandroidphone/8.1" {
		t.Fatalf("header value = %s", siglang.Canon(rq.Headers[0].Val))
	}
}

func TestGsonReflectionResponse(t *testing.T) {
	p, c := newApp("t.g", "t.g.G")
	p.AddClass(&ir.Class{Name: "t.g.Talk", Fields: []*ir.Field{
		{Name: "title", Type: "java.lang.String"},
		{Name: "duration", Type: "int"},
		{Name: "media", Type: "t.g.Media"},
	}})
	p.AddClass(&ir.Class{Name: "t.g.Media", Fields: []*ir.Field{
		{Name: "url", Type: "java.lang.String"},
	}})
	b := ir.NewMethod(c, "load", false, nil, "void")
	u := b.ConstStr("https://api.ted.example/v1/talks.json")
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, u)
	resp := execute(b, req)
	ent := b.Invoke(getEnt, resp)
	raw := b.InvokeStatic(entCont, ent)
	gson := b.New("com.google.gson.Gson")
	clsName := b.ConstStr("t.g.Talk")
	talk := b.Invoke("com.google.gson.Gson.fromJson", gson, raw, clsName)
	b.FieldGet(talk, "title")
	media := b.FieldGet(talk, "media")
	b.FieldGet(media, "url")
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.g.G.load", Kind: ir.EventCreate}}

	_, resps := analyzeBoth(t, p)
	rs := resps[0]
	if rs == nil || rs.BodyKind != "json" {
		t.Fatalf("response = %+v", rs)
	}
	kw := siglang.Keywords(&siglang.JSON{Root: rs.JSON})
	want := "media,title,url"
	if strings.Join(kw, ",") != want {
		t.Fatalf("gson keywords = %v, want %s", kw, want)
	}
}

func TestInterTransactionProvenanceThroughDB(t *testing.T) {
	// TED pattern: transaction 1 stores a thumbnail URI from its JSON
	// response into the DB; transaction 2 requests whatever the DB holds.
	p, c := newApp("t.db", "t.db.T")
	b := ir.NewMethod(c, "sync", false, nil, "void")
	u := b.ConstStr("https://api.ted.example/v1/talks.json")
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, u)
	resp := execute(b, req)
	ent := b.Invoke(getEnt, resp)
	raw := b.InvokeStatic(entCont, ent)
	js := b.InvokeStatic(jParse, raw)
	kThumb := b.ConstStr("thumb_url")
	thumb := b.Invoke(jGetStr, js, kThumb)
	cv := b.New("android.content.ContentValues")
	b.InvokeSpecial("android.content.ContentValues.<init>", cv)
	col := b.ConstStr("thumbnail")
	b.InvokeVoid("android.content.ContentValues.put", cv, col, thumb)
	db := b.New("android.database.sqlite.SQLiteDatabase")
	tbl := b.ConstStr("talks")
	b.InvokeVoid("android.database.sqlite.SQLiteDatabase.insert", db, tbl, cv)
	b.ReturnVoid()
	b.Done()

	b2 := ir.NewMethod(c, "showThumb", false, nil, "void")
	db2 := b2.New("android.database.sqlite.SQLiteDatabase")
	tbl2 := b2.ConstStr("talks")
	col2 := b2.ConstStr("thumbnail")
	turi := b2.Invoke("android.database.sqlite.SQLiteDatabase.query", db2, tbl2, col2)
	req2 := b2.New("org.apache.http.client.methods.HttpGet")
	b2.InvokeSpecial(getInit, req2, turi)
	execute(b2, req2)
	b2.ReturnVoid()
	b2.Done()

	p.Manifest.EntryPoints = []ir.EntryPoint{
		{Method: "t.db.T.sync", Kind: ir.EventCreate},
		{Method: "t.db.T.showThumb", Kind: ir.EventClick},
	}

	reqs, resps := analyzeBoth(t, p)
	var syncResp *ResponseSig
	var thumbReq *RequestSig
	for i, rq := range reqs {
		if resps[i] != nil && resps[i].BodyKind == "json" {
			syncResp = resps[i]
		}
		if _, isLit := rq.URI.(*siglang.Lit); !isLit {
			thumbReq = rq
		}
	}
	if syncResp == nil {
		t.Fatal("sync response missing")
	}
	if path, ok := syncResp.WriteOrigins["db:talks.thumbnail"]; !ok || path != "thumb_url" {
		t.Fatalf("WriteOrigins = %v", syncResp.WriteOrigins)
	}
	if thumbReq == nil {
		t.Fatal("thumbnail request missing")
	}
	found := false
	for _, d := range thumbReq.URIDeps {
		if d == "db:talks.thumbnail" {
			found = true
		}
	}
	if !found {
		t.Fatalf("thumb URIDeps = %v", thumbReq.URIDeps)
	}
}

func TestDynamicURIFromPriorResponse(t *testing.T) {
	// TED transaction #4: the ad URI comes directly from transaction #3's
	// response within the same handler.
	p, c := newApp("t.ad", "t.ad.A")
	b := ir.NewMethod(c, "ads", false, nil, "void")
	u := b.ConstStr("https://api.ted.example/v1/ad.json")
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, u)
	resp := execute(b, req)
	ent := b.Invoke(getEnt, resp)
	raw := b.InvokeStatic(entCont, ent)
	js := b.InvokeStatic(jParse, raw)
	kURL := b.ConstStr("url")
	adURL := b.Invoke(jGetStr, js, kURL)
	req2 := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req2, adURL)
	execute(b, req2)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.ad.A.ads", Kind: ir.EventClick}}

	reqs := analyze(t, p)
	if len(reqs) != 2 {
		t.Fatalf("requests = %d, want 2", len(reqs))
	}
	var dyn *RequestSig
	for _, rq := range reqs {
		if _, isLit := rq.URI.(*siglang.Lit); !isLit {
			dyn = rq
		}
	}
	if dyn == nil {
		t.Fatal("dynamic request not found")
	}
	hasDP := false
	for _, d := range dyn.URIDeps {
		if strings.HasPrefix(d, "dp:") && strings.HasSuffix(d, ":url") {
			hasDP = true
		}
	}
	if !hasDP {
		t.Fatalf("URIDeps = %v, want dp:...:url", dyn.URIDeps)
	}
}

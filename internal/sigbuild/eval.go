package sigbuild

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"extractocol/internal/budget"
	"extractocol/internal/callgraph"
	"extractocol/internal/cfg"
	"extractocol/internal/intern"
	"extractocol/internal/ir"
	"extractocol/internal/obs"
	"extractocol/internal/semmodel"
	"extractocol/internal/siglang"
	"extractocol/internal/taint"
)

// evaluator interprets slice statements abstractly. One evaluator serves a
// single transaction; its shared state is the abstract heap, the captured
// request snapshot and the response access tree.
type evaluator struct {
	prog   *ir.Program
	model  *semmodel.Model
	idx    *ir.Index    // dense program index the filter sets live over
	filter *intern.Bits // dense statement IDs to interpret
	fmeths *intern.Bits // dense method IDs contributing filtered statements

	dp      taint.StmtID // the transaction's demarcation point
	dpModel *semmodel.Method

	heap map[string]aval // heap location -> abstract value

	req     *aobj      // merged request snapshot at the DP
	resp    *respState // the transaction's response
	respSec map[string]*respState

	active map[string]bool // recursion guard
	depth  int

	nextAlloc int // allocation-site counter for object identity

	// stats counts methods abstractly interpreted; owned by the worker
	// goroutine running this evaluator. Nil disables counting. methods is
	// the same count kept per-evaluator for the BuildInfo provenance.
	stats   *obs.Shard
	methods int

	// cg, when non-nil, supplies memoized per-method register types
	// (BuildObs sets it); nil falls back to direct inference.
	cg *callgraph.Graph

	// ck bounds the interpretation (one Step per instruction); truncated
	// latches the budget error that stopped it, after which every
	// evalMethod call returns immediately so the evaluator unwinds fast.
	ck        *budget.Checker
	truncated *budget.Exceeded
}

// types returns m's register types, via the call graph's shared memoized
// inference when available.
func (ev *evaluator) types(m *ir.Method) []string {
	if ev.cg != nil {
		return ev.cg.Types(m)
	}
	return callgraph.InferTypes(ev.prog, m)
}

// filteredMethod reports whether ref contributes filtered statements.
func (ev *evaluator) filteredMethod(ref string) bool {
	id, ok := ev.idx.MethodID(ref)
	return ok && ev.fmeths.Has(id)
}

const maxDepth = 48

func newEvaluator(prog *ir.Program, model *semmodel.Model, dp taint.StmtID,
	dpm *semmodel.Method, filter *intern.Bits, idx *ir.Index) *evaluator {

	ev := &evaluator{
		prog: prog, model: model, idx: idx, filter: filter, dp: dp, dpModel: dpm,
		fmeths:  &intern.Bits{},
		heap:    map[string]aval{},
		respSec: map[string]*respState{},
		active:  map[string]bool{},
	}
	idx.EachStmt(filter, func(_ *ir.Method, mid uint32, _ int) bool {
		ev.fmeths.Add(mid)
		return true
	})
	ev.resp = &respState{
		dpID:         dp.Method + "@" + strconv.Itoa(dp.Index),
		root:         &siglang.Obj{},
		writeOrigins: map[string]string{},
	}
	return ev
}

// evalMethod interprets m with the given argument values and returns the
// merged return value. Blocks are visited in reverse post-order; loop
// back-edge environments are not re-propagated — loop-variant string
// accumulation is widened in place via repetition markers (see evalAppend).
func (ev *evaluator) evalMethod(m *ir.Method, args []aval) aval {
	if m == nil || len(m.Instrs) == 0 {
		return unknownVal(siglang.VAny, "")
	}
	if ev.truncated != nil {
		return unknownVal(siglang.VAny, "budget")
	}
	if ev.active[m.Ref()] || ev.depth > maxDepth {
		return unknownVal(siglang.VAny, "recursion")
	}
	ev.stats.Add(obs.CtrSigbuildMethods, 1)
	ev.methods++
	ev.active[m.Ref()] = true
	ev.depth++
	defer func() {
		delete(ev.active, m.Ref())
		ev.depth--
	}()

	g := cfg.Build(m)
	loopOf := map[int]int{} // block -> innermost loop header
	for _, l := range g.Loops() {
		for b := range l.Body {
			loopOf[b] = l.Header
		}
	}

	// One ref resolution per method body; the per-instruction filter probe
	// is then a dense bitset read.
	mid, midOK := ev.idx.MethodID(m.Ref())

	entry := env{}
	for i := 0; i < m.NumParamRegs() && i < len(args); i++ {
		entry[i] = args[i]
	}
	// Untyped defaults for missing arguments.
	for i := len(args); i < m.NumParamRegs(); i++ {
		entry[i] = unknownVal(siglang.VAny, "arg")
	}

	outs := map[int]env{}
	var ret aval
	hasRet := false
	var exit env

	for _, bid := range g.ReversePostOrder() {
		b := g.Blocks[bid]
		loop := -1
		if h, ok := loopOf[bid]; ok {
			loop = h
		}
		var in env
		if bid == 0 {
			in = entry.clone()
		}
		for _, p := range b.Preds {
			po, ok := outs[p]
			if !ok {
				continue
			}
			if loop >= 0 {
				// Inside a loop, object state is shared rather than forked
				// so latch mutations stay visible at the loop exit; the
				// widening in evalAppend supplies the rep{} semantics.
				in = mergeEnvShared(in, po)
			} else {
				in = mergeEnv(in, po)
			}
		}
		if in == nil {
			in = env{}
		}
		returned := false
		for idx := b.Start; idx < b.End; idx++ {
			if err := ev.ck.Step(); err != nil {
				ev.truncated = ev.ck.Exceeded()
				return unknownVal(siglang.VAny, "budget")
			}
			instr := &m.Instrs[idx]
			inFilter := midOK && ev.filter.Has(ev.idx.StmtID(mid, idx))
			if instr.Op == ir.OpReturn {
				returned = true
				if instr.A != ir.NoReg {
					v := in[instr.A]
					if hasRet {
						ret = mergeVals(ret, v)
					} else {
						ret, hasRet = v, true
					}
				}
				continue
			}
			if !inFilter {
				// Calls still get followed when they lead to methods that
				// carry slice statements (the demarcation point may live
				// in a callee even when the call itself moves no tainted
				// data).
				if instr.Op == ir.OpInvoke && ev.leadsToFilter(m, instr) {
					ev.evalInstr(m, idx, instr, in, loop)
				}
				continue
			}
			ev.evalInstr(m, idx, instr, in, loop)
		}
		outs[bid] = in
		if returned {
			exit = mergeEnv(exit, in)
		}
	}

	// Sync mutations of caller-owned argument objects back into the
	// caller's object graph: per-branch copies made inside this method are
	// matched by allocation site.
	syncBack(args, exit)

	if !hasRet {
		return unknownVal(siglang.VAny, "")
	}
	return ret
}

// syncBack copies the exit-time state of objects the caller passed in over
// the caller's originals, so mutations performed on branch-local copies
// remain visible after the call returns.
func syncBack(args []aval, exit env) {
	if exit == nil {
		return
	}
	byAlloc := map[int]*aobj{}
	seen := map[*aobj]bool{}
	var collect func(v aval)
	collect = func(v aval) {
		o := v.obj
		if o == nil || o.shared() || o.allocID == 0 || seen[o] {
			return
		}
		seen[o] = true
		byAlloc[o.allocID] = o
		if o.body != nil {
			collect(aval{obj: o.body})
		}
		if o.request != nil {
			collect(aval{obj: o.request})
		}
		for _, el := range o.elems {
			collect(el)
		}
		for _, pv := range o.pairs {
			collect(pv)
		}
		collect(o.key)
		collect(o.val)
	}
	for _, a := range args {
		collect(a)
	}
	if len(byAlloc) == 0 {
		return
	}
	applied := map[int]bool{}
	visited := map[*aobj]bool{}
	var apply func(v aval)
	apply = func(v aval) {
		o := v.obj
		if o == nil || o.shared() || visited[o] {
			return
		}
		visited[o] = true
		if orig, ok := byAlloc[o.allocID]; ok && orig != o && !applied[o.allocID] {
			applied[o.allocID] = true
			*orig = *o
		}
		if o.body != nil {
			apply(aval{obj: o.body})
		}
		if o.request != nil {
			apply(aval{obj: o.request})
		}
		for _, el := range o.elems {
			apply(el)
		}
		for _, pv := range o.pairs {
			apply(pv)
		}
		apply(o.key)
		apply(o.val)
	}
	for _, v := range exit {
		apply(v)
	}
}

// evalInstr applies one instruction's semantics to the environment.
func (ev *evaluator) evalInstr(m *ir.Method, idx int, in *ir.Instr, en env, loop int) {
	switch in.Op {
	case ir.OpConstStr:
		en[in.Dst] = constStr(in.Str)
	case ir.OpConstInt:
		en[in.Dst] = aval{sig: siglang.Num(strconv.FormatInt(in.Int, 10))}
	case ir.OpConstNull:
		en[in.Dst] = aval{sig: siglang.Str("")}
	case ir.OpMove:
		en[in.Dst] = en[in.A]
	case ir.OpBinop:
		en[in.Dst] = evalBinop(in.Sym, en[in.A], en[in.B])
	case ir.OpNew:
		en[in.Dst] = ev.newObject(in.Sym)
	case ir.OpFieldGet:
		en[in.Dst] = ev.fieldGet(m, in, en)
	case ir.OpFieldPut:
		ev.fieldPut(m, in, en)
	case ir.OpStaticGet:
		loc := "s:" + in.Sym
		if v, ok := ev.heap[loc]; ok {
			en[in.Dst] = cloneVal(v, map[*aobj]*aobj{}).withLoc(loc)
		} else {
			en[in.Dst] = unknownVal(ev.staticType(in.Sym), loc).withLoc(loc)
		}
	case ir.OpStaticPut:
		loc := "s:" + in.Sym
		v := en[in.B]
		ev.recordWriteOrigin(loc, v)
		ev.heapWrite(loc, v)
	case ir.OpInvoke:
		ev.evalInvoke(m, idx, in, en, loop)
	}
}

func (ev *evaluator) staticType(sym string) siglang.VType {
	cls, fname, ok := ir.SplitRef(sym)
	if !ok {
		return siglang.VAny
	}
	if c := ev.prog.Class(cls); c != nil {
		if f := c.Field(fname); f != nil {
			return typeToVType(f.Type)
		}
	}
	return siglang.VAny
}

// newObject creates the abstract object for an allocation site.
func (ev *evaluator) newObject(class string) aval {
	ev.nextAlloc++
	o := &aobj{class: class, allocID: ev.nextAlloc}
	switch {
	case strings.Contains(class, "StringBuilder"), strings.Contains(class, "StringBuffer"):
		o.kind = oBuilder
		o.buf = siglang.Str("")
	case ev.prog.Class(class) != nil && !ev.prog.Class(class).Library:
		o.kind = oTyped
		o.pairs = map[string]aval{}
	default:
		o.kind = oOpaque
	}
	return aval{obj: o}
}

func (ev *evaluator) heapLocFor(m *ir.Method, in *ir.Instr, en env) string {
	base := m.Class.Name
	if v, ok := en[in.A]; ok && v.obj != nil && v.obj.class != "" && ev.prog.Class(v.obj.class) != nil {
		base = v.obj.class
	} else if m.Class != nil {
		// Fall back to the owner of a same-named field on this class
		// hierarchy; this matches taint.Engine's location naming.
		if c := ev.fieldOwner(m.Class.Name, in.Sym); c != "" {
			base = c
		}
	}
	return "f:" + base + "." + in.Sym
}

func (ev *evaluator) fieldOwner(cls, field string) string {
	for c := ev.prog.Class(cls); c != nil; c = ev.prog.Class(c.Super) {
		if c.Field(field) != nil {
			return c.Name
		}
		if c.Super == "" {
			break
		}
	}
	return ""
}

func (ev *evaluator) fieldGet(m *ir.Method, in *ir.Instr, en env) aval {
	base := en[in.A]
	// Response-bound typed object (gson): field access reads the tree.
	if base.obj != nil && base.obj.kind == oTyped && base.obj.respBound {
		return ev.typedRespField(base.obj, in.Sym)
	}
	// App object with locally tracked fields.
	if base.obj != nil && base.obj.pairs != nil {
		if v, ok := base.obj.pairs[in.Sym]; ok {
			return v
		}
	}
	loc := ev.heapLocFor(m, in, en)
	if v, ok := ev.heap[loc]; ok {
		return cloneVal(v, map[*aobj]*aobj{}).withLoc(loc)
	}
	t := siglang.VAny
	if owner := ev.fieldOwner(m.Class.Name, in.Sym); owner != "" {
		if f := ev.prog.Class(owner).Field(in.Sym); f != nil {
			t = typeToVType(f.Type)
		}
	}
	return unknownVal(t, loc).withLoc(loc)
}

func (ev *evaluator) fieldPut(m *ir.Method, in *ir.Instr, en env) {
	base := en[in.A]
	v := en[in.B]
	if base.obj != nil && base.obj.kind == oTyped {
		if base.obj.pairs == nil {
			base.obj.pairs = map[string]aval{}
		}
		if _, seen := base.obj.pairs[in.Sym]; !seen {
			base.obj.order = append(base.obj.order, in.Sym)
		}
		base.obj.pairs[in.Sym] = v
	}
	loc := ev.heapLocFor(m, in, en)
	ev.recordWriteOrigin(loc, v)
	ev.heapWrite(loc, v)
}

// heapWrite freezes a value into the abstract heap: the stored state is a
// snapshot, merged with any previous writes to the same location.
func (ev *evaluator) heapWrite(loc string, v aval) {
	frozen := cloneVal(v, map[*aobj]*aobj{})
	if old, ok := ev.heap[loc]; ok {
		ev.heap[loc] = mergeVals(old, frozen)
	} else {
		ev.heap[loc] = frozen
	}
}

// recordWriteOrigin notes that a response-derived value was persisted to a
// heap location (the source of inter-transaction dependencies).
func (ev *evaluator) recordWriteOrigin(loc string, v aval) {
	if v.fromResp != nil {
		v.fromResp.writeOrigins[loc] = v.respPath
	} else if v.obj != nil && v.obj.resp != nil {
		v.obj.resp.writeOrigins[loc] = v.obj.respPath
	}
}

func evalBinop(op string, a, b aval) aval {
	as, aok := a.constString()
	bs, bok := b.constString()
	if aok && bok {
		ai, errA := strconv.ParseInt(as, 10, 64)
		bi, errB := strconv.ParseInt(bs, 10, 64)
		if errA == nil && errB == nil {
			var r int64
			switch op {
			case "+":
				r = ai + bi
			case "-":
				r = ai - bi
			case "*":
				r = ai * bi
			default:
				return aval{sig: siglang.AnyInt(), locs: unionSet(a.locs, b.locs)}
			}
			return aval{sig: siglang.Num(strconv.FormatInt(r, 10))}
		}
	}
	return aval{sig: siglang.AnyInt(), locs: unionSet(a.locs, b.locs)}
}

// deps extracts the provenance labels of a value: heap/static/db/resource
// locations plus response-tree origins ("dp:<site>:<path>").
func deps(v aval) map[string]bool {
	out := map[string]bool{}
	for l := range v.locs {
		out[l] = true
	}
	if v.fromResp != nil {
		out["dp:"+v.fromResp.dpID+":"+v.respPath] = true
	}
	if v.obj != nil {
		if v.obj.resp != nil {
			out["dp:"+v.obj.resp.dpID+":"+v.obj.respPath] = true
		}
		// Content-level provenance accumulated on the object (builder
		// appends, entity payloads).
		for l := range v.obj.uriDeps {
			out[l] = true
		}
		for l := range v.obj.bodyDeps {
			out[l] = true
		}
	}
	return out
}

func addDeps(dst map[string]bool, v aval) {
	for d := range deps(v) {
		dst[d] = true
	}
}

// encodeConst applies URL encoding to constant values at analysis time so
// URLEncoder.encode on a literal keeps its literal signature.
func encodeConst(v aval) aval {
	if s, ok := v.constString(); ok {
		return aval{sig: siglang.Str(url.QueryEscape(s)), locs: v.locs}
	}
	out := v
	if _, isUnknown := v.sigOf().(*siglang.Unknown); !isUnknown {
		out.sig = siglang.AnyString()
		out.obj = nil
	}
	return out
}

// respNodeVal wraps a response-tree object node as a value.
func respNodeVal(rs *respState, node *siglang.Obj, path string) aval {
	return aval{obj: &aobj{kind: oRespNode, resp: rs, node: node, respPath: path},
		fromResp: rs, respPath: path}
}

func joinPath(base, key string) string {
	if base == "" {
		return key
	}
	return base + "." + key
}

func fmtDP(s taint.StmtID) string {
	return fmt.Sprintf("%s@%d", s.Method, s.Index)
}

package sigbuild

import (
	"strings"
	"testing"

	"extractocol/internal/ir"
	"extractocol/internal/siglang"
)

func TestOkhttpBuilderFlow(t *testing.T) {
	p, c := newApp("t.ok", "t.ok.K")
	b := ir.NewMethod(c, "send", false, []string{"java.lang.String"}, "void")
	payload := b.Param(0)
	body := b.InvokeStatic("okhttp3.RequestBody.create", payload)
	rb := b.New("okhttp3.Request$Builder")
	b.InvokeSpecial("okhttp3.Request$Builder.<init>", rb)
	u := b.ConstStr("https://ok.example.com/v2/submit")
	b.InvokeVoid("okhttp3.Request$Builder.url", rb, u)
	b.InvokeVoid("okhttp3.Request$Builder.post", rb, body)
	hk := b.ConstStr("X-Api")
	hv := b.ConstStr("v2")
	b.InvokeVoid("okhttp3.Request$Builder.header", rb, hk, hv)
	req := b.Invoke("okhttp3.Request$Builder.build", rb)
	cl := b.New("okhttp3.OkHttpClient")
	b.InvokeSpecial("okhttp3.OkHttpClient.<init>", cl)
	call := b.Invoke("okhttp3.OkHttpClient.newCall", cl, req)
	resp := b.Invoke("okhttp3.Call.execute", call)
	rbody := b.Invoke("okhttp3.Response.body", resp)
	raw := b.Invoke("okhttp3.ResponseBody.string", rbody)
	js := b.InvokeStatic("org.json.JSONObject.parse", raw)
	k := b.ConstStr("accepted")
	b.Invoke("org.json.JSONObject.getBoolean", js, k)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.ok.K.send", Kind: ir.EventClick}}

	reqs, resps := analyzeBoth(t, p)
	rq := reqs[0]
	if rq.Method != "POST" {
		t.Errorf("method = %s", rq.Method)
	}
	if got := siglang.RegexBody(rq.URI); got != `https://ok\.example\.com/v2/submit` {
		t.Errorf("URI = %s", got)
	}
	if len(rq.Headers) != 1 || rq.Headers[0].Key != "X-Api" {
		t.Errorf("headers = %+v", rq.Headers)
	}
	if resps[0] == nil || resps[0].BodyKind != "json" {
		t.Fatalf("response = %+v", resps[0])
	}
	kw := siglang.Keywords(&siglang.JSON{Root: resps[0].JSON})
	if strings.Join(kw, ",") != "accepted" {
		t.Errorf("response keys = %v", kw)
	}
}

func TestURLConnectionFlow(t *testing.T) {
	p, c := newApp("t.uc2", "t.uc2.U")
	b := ir.NewMethod(c, "push", false, []string{"java.lang.String"}, "void")
	val := b.Param(0)
	us := b.ConstStr("https://uc.example.com/ingest")
	u := b.New("java.net.URL")
	b.InvokeSpecial("java.net.URL.<init>", u, us)
	conn := b.Invoke("java.net.URL.openConnection", u)
	m := b.ConstStr("PUT")
	b.InvokeVoid("java.net.HttpURLConnection.setRequestMethod", conn, m)
	hk := b.ConstStr("X-Token")
	b.InvokeVoid("java.net.HttpURLConnection.setRequestProperty", conn, hk, val)
	out := b.Invoke("java.net.HttpURLConnection.getOutputStream", conn)
	pre := b.ConstStr("v=")
	b.InvokeVoid("java.io.OutputStream.write", out, pre)
	b.InvokeVoid("java.io.OutputStream.write", out, val)
	in := b.Invoke("java.net.HttpURLConnection.getInputStream", conn)
	b.Invoke("java.io.InputStream.readAll", in)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.uc2.U.push", Kind: ir.EventClick}}

	rq := analyze(t, p)[0]
	if rq.Method != "PUT" {
		t.Errorf("method = %s", rq.Method)
	}
	if rq.BodyKind != "query" && rq.BodyKind != "text" {
		t.Errorf("bodyKind = %s", rq.BodyKind)
	}
	body := siglang.RegexBody(rq.Body)
	if !strings.HasPrefix(body, "v=") {
		t.Errorf("body = %q", body)
	}
	if len(rq.Headers) != 1 || rq.Headers[0].Key != "X-Token" {
		t.Errorf("headers = %+v", rq.Headers)
	}
}

func TestGsonSerializedRequestBody(t *testing.T) {
	p, c := newApp("t.gsr", "t.gsr.G")
	p.AddClass(&ir.Class{Name: "t.gsr.Login", Fields: []*ir.Field{
		{Name: "user", Type: "java.lang.String"},
		{Name: "device", Type: "t.gsr.Device"},
	}})
	p.AddClass(&ir.Class{Name: "t.gsr.Device", Fields: []*ir.Field{
		{Name: "model", Type: "java.lang.String"},
		{Name: "sdk", Type: "int"},
	}})
	b := ir.NewMethod(c, "login", false, []string{"java.lang.String"}, "void")
	user := b.Param(0)
	login := b.New("t.gsr.Login")
	b.InvokeSpecial("t.gsr.Login.<init>", login)
	b.FieldPut(login, "user", user)
	dev := b.New("t.gsr.Device")
	b.InvokeSpecial("t.gsr.Device.<init>", dev)
	model := b.ConstStr("Pixel")
	b.FieldPut(dev, "model", model)
	b.FieldPut(login, "device", dev)
	gson := b.New("com.google.gson.Gson")
	raw := b.Invoke("com.google.gson.Gson.toJson", gson, login)
	ent := b.New("org.apache.http.entity.StringEntity")
	b.InvokeSpecial(seInit, ent, raw)
	u := b.ConstStr("https://gsr.example.com/login")
	req := b.New("org.apache.http.client.methods.HttpPost")
	b.InvokeSpecial(postInit, req, u)
	b.InvokeVoid(setEnt, req, ent)
	execute(b, req)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.gsr.G.login", Kind: ir.EventLogin}}

	rq := analyze(t, p)[0]
	if rq.BodyKind != "json" {
		t.Fatalf("bodyKind = %s (%s)", rq.BodyKind, siglang.Canon(rq.Body))
	}
	kw := siglang.Keywords(rq.Body)
	want := "device,model,sdk,user"
	if strings.Join(kw, ",") != want {
		t.Fatalf("gson body keys = %v, want %s", kw, want)
	}
	// The model constant must survive serialization.
	j := rq.Body.(*siglang.JSON)
	devTree, _ := j.Root.(*siglang.Obj).Get("device").(*siglang.Obj)
	if devTree == nil {
		t.Fatal("nested device tree missing")
	}
	if l, ok := devTree.Get("model").(*siglang.Lit); !ok || l.Val != "Pixel" {
		t.Fatalf("device.model = %s", siglang.Canon(devTree.Get("model")))
	}
}

func TestMapBackedQueryValues(t *testing.T) {
	p, c := newApp("t.map", "t.map.M")
	b := ir.NewMethod(c, "go", false, nil, "void")
	cfg := b.New("java.util.HashMap")
	b.InvokeSpecial("java.util.HashMap.<init>", cfg)
	k := b.ConstStr("region")
	v := b.ConstStr("eu-west")
	b.InvokeVoid("java.util.HashMap.put", cfg, k, v)
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial(sbInit, sb)
	base := b.ConstStr("https://m.example.com/cfg?region=")
	b.InvokeVoid(sbApp, sb, base)
	k2 := b.ConstStr("region")
	got := b.Invoke("java.util.HashMap.get", cfg, k2)
	b.InvokeVoid(sbApp, sb, got)
	uri := b.Invoke(sbStr, sb)
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, uri)
	execute(b, req)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.map.M.go", Kind: ir.EventCreate}}

	rq := analyze(t, p)[0]
	lit, ok := rq.URI.(*siglang.Lit)
	if !ok || lit.Val != "https://m.example.com/cfg?region=eu-west" {
		t.Fatalf("URI = %s", siglang.Canon(rq.URI))
	}
}

func TestResponseHeaderDependency(t *testing.T) {
	p, c := newApp("t.rh", "t.rh.R")
	b := ir.NewMethod(c, "go", false, nil, "void")
	u := b.ConstStr("https://rh.example.com/token")
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, u)
	resp := execute(b, req)
	hk := b.ConstStr("X-Next")
	next := b.Invoke("org.apache.http.HttpResponse.getFirstHeader", resp, hk)
	req2 := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req2, next)
	execute(b, req2)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.rh.R.go", Kind: ir.EventClick}}

	reqs := analyze(t, p)
	if len(reqs) != 2 {
		t.Fatalf("requests = %d", len(reqs))
	}
	var dyn *RequestSig
	for _, rq := range reqs {
		if _, isLit := rq.URI.(*siglang.Lit); !isLit {
			dyn = rq
		}
	}
	if dyn == nil {
		t.Fatal("dynamic follow-up request missing")
	}
	foundHdr := false
	for _, d := range dyn.URIDeps {
		if strings.Contains(d, "header:X-Next") {
			foundHdr = true
		}
	}
	if !foundHdr {
		t.Fatalf("URIDeps = %v, want header:X-Next provenance", dyn.URIDeps)
	}
}

func TestValueOfAndConcatChain(t *testing.T) {
	p, c := newApp("t.vc", "t.vc.V")
	b := ir.NewMethod(c, "go", false, []string{"int"}, "void")
	n := b.Param(0)
	ns := b.InvokeStatic("java.lang.String.valueOf", n)
	base := b.ConstStr("https://vc.example.com/item/")
	uri := b.Invoke("java.lang.String.concat", base, ns)
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, uri)
	execute(b, req)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.vc.V.go", Kind: ir.EventClick}}

	rq := analyze(t, p)[0]
	re := siglang.Regex(rq.URI)
	if re != `^https://vc\.example\.com/item/[0-9]+$` {
		t.Fatalf("URI regex = %s", re)
	}
}

func TestListGetMergesElements(t *testing.T) {
	p, c := newApp("t.lg", "t.lg.L")
	b := ir.NewMethod(c, "go", false, nil, "void")
	list := b.New("java.util.ArrayList")
	b.InvokeSpecial("java.util.ArrayList.<init>", list)
	a1 := b.ConstStr("https://lg.example.com/a")
	b.InvokeVoid("java.util.ArrayList.add", list, a1)
	a2 := b.ConstStr("https://lg.example.com/b")
	b.InvokeVoid("java.util.ArrayList.add", list, a2)
	idx := b.ConstInt(0)
	uri := b.Invoke("java.util.ArrayList.get", list, idx)
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, uri)
	execute(b, req)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.lg.L.go", Kind: ir.EventCreate}}

	rq := analyze(t, p)[0]
	re, err := siglang.Compile(rq.URI)
	if err != nil {
		t.Fatal(err)
	}
	// Conservative: either element may be requested.
	if !re.MatchString("https://lg.example.com/a") || !re.MatchString("https://lg.example.com/b") {
		t.Fatalf("URI = %s", siglang.Regex(rq.URI))
	}
}

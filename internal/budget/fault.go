package budget

import (
	"fmt"
	"strings"
	"sync"
)

// Kind is the behavior an armed fault forces at a probe point.
type Kind uint8

const (
	// FaultNone means no fault fires.
	FaultNone Kind = iota
	// FaultPanic makes the probe panic with an *InjectedPanic value.
	FaultPanic
	// FaultHang makes the probed fixpoint diverge: the loop spins through
	// its Checker until a deadline or step budget stops it.
	FaultHang
)

func (k Kind) String() string {
	switch k {
	case FaultPanic:
		return "panic"
	case FaultHang:
		return "hang"
	}
	return "none"
}

// Fault is one injection rule, addressed by pipeline phase and probe site.
type Fault struct {
	// Phase selects the probe family ("decode", "slice", "taint",
	// "sigbuild", "pairing", ...).
	Phase string
	// Site, when non-empty, arms the rule only at probe sites containing
	// this substring (method references, DP ids); empty matches every site.
	Site string
	// After skips the first After matching probes before firing —
	// seed-addressing a fault at the N-th slice job or fixpoint.
	After int
	// Once disarms the rule after its first firing.
	Once bool
	// Kind is what happens when the rule fires.
	Kind Kind
}

// InjectedPanic is the value injected panics carry, so recovery sites and
// diagnostics can render a deterministic description.
type InjectedPanic struct {
	Phase string
	Site  string
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("injected panic (%s @ %s)", p.Phase, p.Site)
}

// FaultInjector evaluates fault rules at pipeline probe points. Probes are
// cheap rule scans under a mutex (probes fire per job or per fixpoint, not
// per loop iteration), and firing is deterministic given a deterministic
// probe order — which budgeted runs guarantee by forcing serial execution.
// A nil *FaultInjector never fires.
type FaultInjector struct {
	mu    sync.Mutex
	rules []*faultRule
}

type faultRule struct {
	Fault
	probes int
	fired  bool
}

// NewFaultInjector arms the given rules.
func NewFaultInjector(faults ...Fault) *FaultInjector {
	inj := &FaultInjector{}
	for _, f := range faults {
		inj.rules = append(inj.rules, &faultRule{Fault: f})
	}
	return inj
}

// Probe evaluates the rules at one (phase, site) point and returns the
// first kind that fires.
func (i *FaultInjector) Probe(phase, site string) Kind {
	if i == nil {
		return FaultNone
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	for _, r := range i.rules {
		if r.Phase != phase {
			continue
		}
		if r.Site != "" && !strings.Contains(site, r.Site) {
			continue
		}
		r.probes++
		if r.probes <= r.After {
			continue
		}
		if r.Once && r.fired {
			continue
		}
		r.fired = true
		if r.Kind != FaultNone {
			return r.Kind
		}
	}
	return FaultNone
}

// MaybePanic panics with an *InjectedPanic if a FaultPanic rule fires here.
func (i *FaultInjector) MaybePanic(phase, site string) {
	if i.Probe(phase, site) == FaultPanic {
		panic(&InjectedPanic{Phase: phase, Site: site})
	}
}

// Package budget is the pipeline's robustness subsystem: wall-clock
// deadlines, cooperative cancellation, deterministic step budgets for the
// fixpoint loops, typed exhaustion errors, and the degradation diagnostics
// that replace crashes and hangs with per-transaction records in the report.
//
// The paper's toolchain survives pathological apps only through Soot's
// process-level timeouts; hostile bytecode (DexLego-style) aims precisely at
// decoder and fixpoint divergence. Here every long-running loop — taint
// worklists, abstract interpretation, slice extraction jobs, pairing flow
// checks — polls a Checker at its loop head and stops with a typed
// *Exceeded instead of running away. Exhaustion is not failure: the
// orchestrator drops only the affected transaction, records a Diagnostic,
// and ships the report with everything that completed.
//
// All entry points are nil-safe no-ops, so unbudgeted analyses pay one
// predictable-branch nil check per loop iteration and nothing else.
package budget

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Phase names used in budget errors, fault probes and diagnostics. They
// extend the internal/obs phase vocabulary with the decode stage, which
// runs before a Collector exists.
const (
	PhaseDecode   = "decode"
	PhaseValidate = "validate"
	PhaseSlice    = "slice"
	PhaseTaint    = "taint"
	PhasePairing  = "pairing"
	PhaseSigbuild = "sigbuild"
	PhaseTxdep    = "txdep"
	// PhaseCache is the persistent result-cache lookup/store stage that
	// brackets the pipeline (see internal/resultcache).
	PhaseCache = "cache"
)

// Limit names identifying which budget an *Exceeded tripped.
const (
	LimitDeadline      = "deadline"
	LimitCancel        = "cancelled"
	LimitSliceSteps    = "slice_steps"
	LimitFixpointIters = "fixpoint_iters"
)

// Exceeded is the typed error every budget check returns: which phase hit
// which limit, at which pipeline site, after how many steps.
type Exceeded struct {
	Phase string
	Limit string
	Site  string
	Steps int64
}

func (e *Exceeded) Error() string {
	return fmt.Sprintf("budget: %s exceeded in %s phase at %s after %d steps",
		e.Limit, e.Phase, e.Site, e.Steps)
}

// IsExceeded reports whether err is (or wraps) a budget exhaustion.
func IsExceeded(err error) bool {
	var e *Exceeded
	return errors.As(err, &e)
}

// Recovered wraps a panic caught inside a pipeline worker, carrying enough
// context to turn it into a Diagnostic.
type Recovered struct {
	Phase string
	Site  string
	Value any
}

func (r *Recovered) Error() string {
	return fmt.Sprintf("budget: recovered panic in %s phase at %s: %v", r.Phase, r.Site, r.Value)
}

// Limits is the configured resource envelope of one analysis run.
type Limits struct {
	// Deadline is the absolute wall-clock bound; zero means unlimited.
	Deadline time.Time
	// Cancel aborts the run when closed; nil means not cancellable.
	Cancel <-chan struct{}
	// SliceSteps caps cumulative taint-propagation steps across the whole
	// slice phase (a shared pool, consumed in job order); 0 = unlimited.
	SliceSteps int64
	// FixpointIters caps the steps of any single fixpoint (one taint
	// worklist run, one abstract interpretation); 0 = unlimited.
	FixpointIters int64
}

// Budget is the live run-scoped state: the limits plus the shared
// slice-phase step pool and the optional fault injector. A nil *Budget is
// valid everywhere and means "unlimited, no faults".
type Budget struct {
	limits    Limits
	inj       *FaultInjector
	slicePool atomic.Int64
}

// New creates a budget over the given limits.
func New(l Limits) *Budget { return &Budget{limits: l} }

// WithFaults attaches a fault injector (tests only) and returns the budget.
func (b *Budget) WithFaults(inj *FaultInjector) *Budget {
	if b == nil {
		b = New(Limits{})
	}
	b.inj = inj
	return b
}

// HasStepLimits reports whether deterministic step budgets are configured.
// Step pools are consumed in job order, so callers with worker pools must
// fall back to serial execution to keep degradation deterministic.
func (b *Budget) HasStepLimits() bool {
	return b != nil && (b.limits.SliceSteps > 0 || b.limits.FixpointIters > 0)
}

// Over reports deadline or cancellation exhaustion at a coarse checkpoint
// (job boundaries, phase starts). Nil when within budget.
func (b *Budget) Over(phase, site string) *Exceeded {
	if b == nil {
		return nil
	}
	if b.limits.Cancel != nil {
		select {
		case <-b.limits.Cancel:
			return &Exceeded{Phase: phase, Limit: LimitCancel, Site: site}
		default:
		}
	}
	if !b.limits.Deadline.IsZero() && time.Now().After(b.limits.Deadline) {
		return &Exceeded{Phase: phase, Limit: LimitDeadline, Site: site}
	}
	return nil
}

// SliceExhausted reports whether the cumulative slice-phase step pool is
// already spent (checked at job boundaries so exhaustion skips whole jobs).
func (b *Budget) SliceExhausted(site string) *Exceeded {
	if b == nil || b.limits.SliceSteps <= 0 {
		return nil
	}
	if n := b.slicePool.Load(); n >= b.limits.SliceSteps {
		return &Exceeded{Phase: PhaseSlice, Limit: LimitSliceSteps, Site: site, Steps: n}
	}
	return nil
}

// MaybePanic fires an injected panic if a matching fault rule is armed.
func (b *Budget) MaybePanic(phase, site string) {
	if b != nil {
		b.inj.MaybePanic(phase, site)
	}
}

// Hang reports whether an injected hang is armed for this probe point: the
// caller must then diverge (spinning through its Checker, which converts
// the divergence into an *Exceeded once a deadline or step budget trips).
func (b *Budget) Hang(phase, site string) bool {
	return b != nil && b.inj.Probe(phase, site) == FaultHang
}

// checkStride is how many Checker steps pass between deadline/cancel polls:
// frequent enough to stop within microseconds, rare enough that time.Now
// never shows up in a profile.
const checkStride = 256

// Checker bounds one fixpoint loop. It is single-goroutine state handed out
// per worklist run; a nil *Checker is a no-op so unbudgeted engines skip
// everything but one nil check.
type Checker struct {
	b     *Budget
	phase string
	site  string
	max   int64 // per-fixpoint step cap (0 = none)
	pool  bool  // whether steps also drain the shared slice pool
	steps int64
	err   *Exceeded
}

// Checker returns the loop-head checker for one fixpoint in the given
// phase. Slice-phase checkers also drain the shared slice-step pool.
func (b *Budget) Checker(phase, site string) *Checker {
	if b == nil {
		return nil
	}
	return &Checker{
		b:     b,
		phase: phase,
		site:  site,
		max:   b.limits.FixpointIters,
		pool:  phase == PhaseSlice && b.limits.SliceSteps > 0,
	}
}

// Step accounts one loop iteration and returns a non-nil error once any
// budget is exhausted. The error is sticky: every later Step returns it
// again, so loops may keep polling while unwinding.
func (c *Checker) Step() error {
	if c == nil {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	c.steps++
	if c.max > 0 && c.steps > c.max {
		c.err = &Exceeded{Phase: c.phase, Limit: LimitFixpointIters, Site: c.site, Steps: c.steps}
		return c.err
	}
	if c.pool {
		if n := c.b.slicePool.Add(1); n > c.b.limits.SliceSteps {
			c.err = &Exceeded{Phase: c.phase, Limit: LimitSliceSteps, Site: c.site, Steps: n}
			return c.err
		}
	}
	if c.steps&(checkStride-1) == 0 {
		if ex := c.b.Over(c.phase, c.site); ex != nil {
			ex.Steps = c.steps
			c.err = ex
			return c.err
		}
	}
	return nil
}

// Exceeded returns the budget error that stopped this checker, nil if none.
func (c *Checker) Exceeded() *Exceeded {
	if c == nil {
		return nil
	}
	return c.err
}

// Diagnostic kinds.
const (
	// DiagPanic records a worker panic recovered into a degraded result.
	DiagPanic = "panic"
	// DiagBudget records a loop stopped mid-flight by an exhausted budget
	// (the affected slice or signature is truncated and dropped).
	DiagBudget = "budget"
	// DiagSkipped records work never started because the budget was
	// already spent at the job boundary.
	DiagSkipped = "skipped"
	// DiagCache records a persistent result-cache entry that could not be
	// served (corrupt, truncated, wrong format version) or stored; the
	// analysis fell back to — or remained — a full recompute, so the report
	// itself is unaffected.
	DiagCache = "cache"
)

// Diagnostic is one degradation event surfaced in Report.Diagnostics: what
// the pipeline dropped, where, and why — so an exhausted run still tells
// the user exactly which transactions are missing.
type Diagnostic struct {
	Phase  string `json:"phase"`
	Kind   string `json:"kind"`
	Site   string `json:"site"`
	Detail string `json:"detail,omitempty"`

	// Flight is the recording goroutine's recent span history (oldest
	// first) at the moment a panic was recovered or a deadline fired —
	// populated only when the flight recorder was armed (core.Options.
	// Flight). Ring contents depend on worker scheduling, so the field is
	// excluded from String() and from diagnostic sort order, and degraded
	// reports are never cached, keeping default outputs deterministic.
	Flight []string `json:"flight,omitempty"`
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("[%s/%s] %s", d.Phase, d.Kind, d.Site)
	if d.Detail != "" {
		s += ": " + d.Detail
	}
	return s
}

// PanicDiag converts a recovered panic value into a Diagnostic.
func PanicDiag(phase, site string, v any) Diagnostic {
	return Diagnostic{Phase: phase, Kind: DiagPanic, Site: site, Detail: fmt.Sprintf("%v", v)}
}

// ExceededDiag converts a budget error into a Diagnostic.
func ExceededDiag(e *Exceeded) Diagnostic {
	return Diagnostic{Phase: e.Phase, Kind: DiagBudget, Site: e.Site, Detail: e.Limit}
}

// SkippedDiag records work dropped before it started.
func SkippedDiag(phase, site, why string) Diagnostic {
	return Diagnostic{Phase: phase, Kind: DiagSkipped, Site: site, Detail: why}
}

// CacheDiag records an unusable or unwritable persistent-cache entry. The
// site is the content-addressed cache key the entry lived under.
func CacheDiag(site, why string) Diagnostic {
	return Diagnostic{Phase: PhaseCache, Kind: DiagCache, Site: site, Detail: why}
}

package budget

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var b *Budget
	if b.Over(PhaseSlice, "x") != nil || b.SliceExhausted("x") != nil {
		t.Fatal("nil budget reported exhaustion")
	}
	if b.HasStepLimits() {
		t.Fatal("nil budget has step limits")
	}
	if b.Hang(PhaseTaint, "x") {
		t.Fatal("nil budget hangs")
	}
	b.MaybePanic(PhaseTaint, "x") // must not panic
	ck := b.Checker(PhaseTaint, "x")
	if ck != nil {
		t.Fatal("nil budget handed out a checker")
	}
	for i := 0; i < 1000; i++ {
		if err := ck.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if ck.Exceeded() != nil {
		t.Fatal("nil checker exceeded")
	}
	var inj *FaultInjector
	if inj.Probe(PhaseSlice, "x") != FaultNone {
		t.Fatal("nil injector fired")
	}
	inj.MaybePanic(PhaseSlice, "x")
}

func TestFixpointIterLimit(t *testing.T) {
	b := New(Limits{FixpointIters: 10})
	ck := b.Checker(PhaseTaint, "m")
	var err error
	steps := 0
	for err == nil && steps < 100 {
		err = ck.Step()
		steps++
	}
	if err == nil {
		t.Fatal("limit never tripped")
	}
	if !IsExceeded(err) {
		t.Fatalf("err = %v, want *Exceeded", err)
	}
	var ex *Exceeded
	errors.As(err, &ex)
	if ex.Limit != LimitFixpointIters || ex.Phase != PhaseTaint || ex.Site != "m" {
		t.Fatalf("wrong error detail: %+v", ex)
	}
	// Sticky: later steps keep returning the same error.
	if err2 := ck.Step(); err2 != err {
		t.Fatalf("error not sticky: %v vs %v", err2, err)
	}
	if ck.Exceeded() != ex {
		t.Fatal("Exceeded() disagrees with Step error")
	}
}

func TestSliceStepPoolSharedAcrossCheckers(t *testing.T) {
	b := New(Limits{SliceSteps: 30})
	c1 := b.Checker(PhaseSlice, "job1")
	for i := 0; i < 20; i++ {
		if err := c1.Step(); err != nil {
			t.Fatalf("c1 step %d: %v", i, err)
		}
	}
	if ex := b.SliceExhausted("job2"); ex != nil {
		t.Fatalf("pool exhausted too early: %v", ex)
	}
	c2 := b.Checker(PhaseSlice, "job2")
	var err error
	for i := 0; i < 20 && err == nil; i++ {
		err = c2.Step()
	}
	if err == nil {
		t.Fatal("shared pool never exhausted")
	}
	var ex *Exceeded
	if !errors.As(err, &ex) || ex.Limit != LimitSliceSteps {
		t.Fatalf("err = %v, want slice_steps exhaustion", err)
	}
	if b.SliceExhausted("job3") == nil {
		t.Fatal("boundary check missed exhausted pool")
	}
	// Non-slice checkers must not drain the pool.
	b2 := New(Limits{SliceSteps: 5})
	ct := b2.Checker(PhaseTaint, "pairing-flow")
	for i := 0; i < 50; i++ {
		if err := ct.Step(); err != nil {
			t.Fatalf("taint checker drained slice pool: %v", err)
		}
	}
}

func TestDeadlineAndCancel(t *testing.T) {
	b := New(Limits{Deadline: time.Now().Add(-time.Second)})
	if ex := b.Over(PhasePairing, "p"); ex == nil || ex.Limit != LimitDeadline {
		t.Fatalf("expired deadline not reported: %v", ex)
	}
	ck := b.Checker(PhaseTaint, "m")
	var err error
	for i := 0; i < 10*checkStride && err == nil; i++ {
		err = ck.Step()
	}
	var ex *Exceeded
	if !errors.As(err, &ex) || ex.Limit != LimitDeadline {
		t.Fatalf("checker missed expired deadline: %v", err)
	}

	ch := make(chan struct{})
	bc := New(Limits{Cancel: ch})
	if bc.Over(PhaseSlice, "s") != nil {
		t.Fatal("open cancel channel reported as cancelled")
	}
	close(ch)
	if ex := bc.Over(PhaseSlice, "s"); ex == nil || ex.Limit != LimitCancel {
		t.Fatalf("cancellation not reported: %v", ex)
	}
}

func TestFaultInjectorAddressing(t *testing.T) {
	inj := NewFaultInjector(
		Fault{Phase: PhaseSlice, Site: "target", Kind: FaultPanic, Once: true},
		Fault{Phase: PhaseTaint, After: 2, Kind: FaultHang},
	)
	if inj.Probe(PhaseSlice, "other.method") != FaultNone {
		t.Fatal("site filter ignored")
	}
	if inj.Probe(PhaseSigbuild, "target.method") != FaultNone {
		t.Fatal("phase filter ignored")
	}
	if inj.Probe(PhaseSlice, "app.target.method") != FaultPanic {
		t.Fatal("matching probe did not fire")
	}
	if inj.Probe(PhaseSlice, "app.target.method") != FaultNone {
		t.Fatal("Once rule fired twice")
	}
	// After=2: third matching probe fires, then keeps firing (not Once).
	if inj.Probe(PhaseTaint, "a") != FaultNone || inj.Probe(PhaseTaint, "b") != FaultNone {
		t.Fatal("After skipped too few probes")
	}
	if inj.Probe(PhaseTaint, "c") != FaultHang || inj.Probe(PhaseTaint, "d") != FaultHang {
		t.Fatal("After rule did not fire from the third probe on")
	}
}

func TestMaybePanicValue(t *testing.T) {
	inj := NewFaultInjector(Fault{Phase: PhaseSigbuild, Kind: FaultPanic})
	defer func() {
		r := recover()
		ip, ok := r.(*InjectedPanic)
		if !ok {
			t.Fatalf("panic value %v (%T), want *InjectedPanic", r, r)
		}
		if ip.Phase != PhaseSigbuild || ip.Site != "dp@3" {
			t.Fatalf("wrong panic payload: %+v", ip)
		}
		if got := fmt.Sprintf("%v", r); got != "injected panic (sigbuild @ dp@3)" {
			t.Fatalf("unstable rendering: %q", got)
		}
	}()
	inj.MaybePanic(PhaseSigbuild, "dp@3")
	t.Fatal("unreachable")
}

func TestDiagnosticsRender(t *testing.T) {
	d := PanicDiag(PhaseSlice, "job", "boom")
	if d.String() != "[slice/panic] job: boom" {
		t.Fatalf("panic diag = %q", d.String())
	}
	e := &Exceeded{Phase: PhaseTaint, Limit: LimitDeadline, Site: "m", Steps: 512}
	if got := ExceededDiag(e); got.Kind != DiagBudget || got.Detail != LimitDeadline {
		t.Fatalf("exceeded diag = %+v", got)
	}
	if got := SkippedDiag(PhaseSlice, "ep->dp", "slice_steps"); got.Kind != DiagSkipped {
		t.Fatalf("skipped diag = %+v", got)
	}
}

// Package runtime executes applications authored in the IR against the
// simulated network. It is the dynamic-analysis substrate of the
// evaluation: the manual and automatic UI-fuzzing baselines (package fuzz)
// drive entry points through this interpreter, producing the traffic traces
// the paper captures with mitmproxy. The interpreter executes the same API
// semantics the static analyzer models (package semmodel), concretely.
package runtime

import (
	"fmt"
	"strconv"
	"strings"

	"extractocol/internal/httpsim"
	"extractocol/internal/ir"
)

// object is a runtime heap object. Builtin library classes piggyback their
// concrete state on dedicated fields.
type object struct {
	class  string
	fields map[string]value

	sb      *strings.Builder  // StringBuilder
	jsonMap map[string]any    // JSONObject
	jsonOrd []string          // JSONObject key order
	jsonArr []any             // JSONArray
	list    []value           // ArrayList
	kv      map[string]value  // HashMap / ContentValues
	kvOrd   []string          //
	pair    [2]value          // BasicNameValuePair
	req     *reqState         // HTTP request under construction
	resp    *httpsim.Response // HTTP response
	entity  *entityState      // request entity or response stream
	xml     *xmlNode          // parsed XML document/element
	stream  *reqState         // output stream bound to a connection
}

type reqState struct {
	method  string
	uri     string
	headers map[string]string
	hdrOrd  []string
	body    string
	sent    bool
}

type entityState struct {
	body string
}

// value is a runtime value: nil, string, int64, bool or *object.
type value any

// VM interprets one application against a network.
type VM struct {
	Prog *ir.Program
	Net  *httpsim.Network

	// Statics holds static fields ("Class.field" -> value).
	Statics map[string]value
	// DB is the app-local SQLite store ("table.col" -> value).
	DB map[string]value
	// Consumed counts data-sink consumption events by sink name.
	Consumed map[string]int

	// Input supplies entry-point arguments (user input). The default
	// provider returns deterministic placeholder values.
	Input func(method string, param int, typ string) value

	steps    int
	maxSteps int
}

// New creates a VM for the program bound to a network.
func New(p *ir.Program, net *httpsim.Network) *VM {
	return &VM{
		Prog:     p,
		Net:      net,
		Statics:  map[string]value{},
		DB:       map[string]value{},
		Consumed: map[string]int{},
		Input:    DefaultInput,
		maxSteps: 1_000_000,
	}
}

// DefaultInput returns deterministic placeholder user input.
func DefaultInput(method string, param int, typ string) value {
	switch typ {
	case "int", "long", "short", "byte":
		return int64(param + 1)
	case "boolean":
		return true
	default:
		return fmt.Sprintf("input%d", param)
	}
}

// Fire triggers one entry point, as a UI/lifecycle event would.
func (vm *VM) Fire(ep ir.EntryPoint) error {
	m := vm.Prog.Method(ep.Method)
	if m == nil {
		return fmt.Errorf("runtime: entry %s not found", ep.Method)
	}
	vm.steps = 0
	args := make([]value, 0, m.NumParamRegs())
	if !m.Static {
		args = append(args, vm.newObject(m.Class.Name))
	}
	for i, t := range m.Params {
		args = append(args, vm.Input(ep.Method, i, t))
	}
	_, err := vm.call(m, args)
	return err
}

func (vm *VM) newObject(class string) *object {
	return &object{class: class, fields: map[string]value{}}
}

// call interprets a method body.
func (vm *VM) call(m *ir.Method, args []value) (value, error) {
	if len(m.Instrs) == 0 {
		return nil, nil
	}
	regs := make([]value, m.Registers)
	copy(regs, args)
	pc := 0
	for pc < len(m.Instrs) {
		vm.steps++
		if vm.steps > vm.maxSteps {
			return nil, fmt.Errorf("runtime: step budget exhausted in %s", m.Ref())
		}
		in := &m.Instrs[pc]
		switch in.Op {
		case ir.OpNop:
		case ir.OpConstStr:
			regs[in.Dst] = in.Str
		case ir.OpConstInt:
			regs[in.Dst] = in.Int
		case ir.OpConstNull:
			regs[in.Dst] = nil
		case ir.OpMove:
			regs[in.Dst] = regs[in.A]
		case ir.OpBinop:
			v, err := evalBinop(in.Sym, regs[in.A], regs[in.B])
			if err != nil {
				return nil, fmt.Errorf("%s@%d: %w", m.Ref(), pc, err)
			}
			regs[in.Dst] = v
		case ir.OpNew:
			regs[in.Dst] = vm.newObject(in.Sym)
		case ir.OpFieldGet:
			o, ok := regs[in.A].(*object)
			if !ok {
				regs[in.Dst] = nil
			} else {
				regs[in.Dst] = o.fields[in.Sym]
			}
		case ir.OpFieldPut:
			if o, ok := regs[in.A].(*object); ok {
				o.fields[in.Sym] = regs[in.B]
			}
		case ir.OpStaticGet:
			regs[in.Dst] = vm.Statics[in.Sym]
		case ir.OpStaticPut:
			vm.Statics[in.Sym] = regs[in.B]
		case ir.OpIfZ:
			if isZero(regs[in.A]) {
				pc = in.Target
				continue
			}
		case ir.OpIfNZ:
			if !isZero(regs[in.A]) {
				pc = in.Target
				continue
			}
		case ir.OpIfEq:
			if valueEq(regs[in.A], regs[in.B]) {
				pc = in.Target
				continue
			}
		case ir.OpIfNe:
			if !valueEq(regs[in.A], regs[in.B]) {
				pc = in.Target
				continue
			}
		case ir.OpGoto:
			pc = in.Target
			continue
		case ir.OpReturn:
			if in.A == ir.NoReg {
				return nil, nil
			}
			return regs[in.A], nil
		case ir.OpInvoke:
			ret, err := vm.invoke(m, in, regs)
			if err != nil {
				return nil, err
			}
			if in.Dst != ir.NoReg {
				regs[in.Dst] = ret
			}
		}
		pc++
	}
	return nil, nil
}

// invoke dispatches a call: modeled library methods execute builtin
// semantics; application methods are interpreted recursively.
func (vm *VM) invoke(caller *ir.Method, in *ir.Instr, regs []value) (value, error) {
	args := make([]value, len(in.Args))
	for i, r := range in.Args {
		if r != ir.NoReg {
			args[i] = regs[r]
		}
	}
	// Builtin semantics for modeled APIs.
	if handled, ret, err := vm.builtin(in.Sym, args); handled {
		return ret, err
	}
	cls, name, ok := ir.SplitRef(in.Sym)
	if !ok {
		return nil, fmt.Errorf("runtime: bad method ref %q", in.Sym)
	}
	// Virtual dispatch on the receiver's dynamic class.
	var target *ir.Method
	if in.Kind == ir.InvokeVirtual || in.Kind == ir.InvokeInterface {
		if recv, isObj := args[0].(*object); isObj {
			target = vm.Prog.ResolveMethod(recv.class, name)
		}
	}
	if target == nil {
		target = vm.Prog.ResolveMethod(cls, name)
	}
	if target == nil {
		if name == "<init>" {
			return nil, nil // implicit constructor
		}
		// Unmodeled, unknown library call: inert.
		return nil, nil
	}
	return vm.call(target, args)
}

func isZero(v value) bool {
	switch t := v.(type) {
	case nil:
		return true
	case string:
		return t == ""
	case int64:
		return t == 0
	case bool:
		return !t
	default:
		return false
	}
}

func valueEq(a, b value) bool {
	if ao, okA := a.(*object); okA {
		bo, okB := b.(*object)
		return okB && ao == bo
	}
	if ai, okA := a.(int64); okA {
		bi, okB := b.(int64)
		return okB && ai == bi
	}
	if as, okA := a.(string); okA {
		bs, okB := b.(string)
		return okB && as == bs
	}
	if ab, okA := a.(bool); okA {
		bb, okB := b.(bool)
		return okB && ab == bb
	}
	return a == nil && b == nil
}

func evalBinop(op string, a, b value) (value, error) {
	ai, aok := toInt(a)
	bi, bok := toInt(b)
	if !aok || !bok {
		return nil, fmt.Errorf("binop %s on non-integers %T, %T", op, a, b)
	}
	switch op {
	case "+":
		return ai + bi, nil
	case "-":
		return ai - bi, nil
	case "*":
		return ai * bi, nil
	case "/":
		if bi == 0 {
			return int64(0), nil
		}
		return ai / bi, nil
	default:
		return nil, fmt.Errorf("unknown binop %q", op)
	}
}

func toInt(v value) (int64, bool) {
	switch t := v.(type) {
	case int64:
		return t, true
	case bool:
		if t {
			return 1, true
		}
		return 0, true
	case string:
		n, err := strconv.ParseInt(t, 10, 64)
		return n, err == nil
	}
	return 0, false
}

// str renders a runtime value as Java string conversion would.
func str(v value) string {
	switch t := v.(type) {
	case nil:
		return "null"
	case string:
		return t
	case int64:
		return strconv.FormatInt(t, 10)
	case bool:
		return strconv.FormatBool(t)
	case *object:
		if t.sb != nil {
			return t.sb.String()
		}
		if t.jsonMap != nil {
			return jsonSerialize(t)
		}
		if t.entity != nil {
			return t.entity.body
		}
		return t.class + "@obj"
	default:
		return fmt.Sprintf("%v", t)
	}
}

package runtime

import (
	"strings"
	"testing"

	"extractocol/internal/httpsim"
	"extractocol/internal/ir"
)

func TestOkhttpBuilderRoundTrip(t *testing.T) {
	p := ir.NewProgram("t.okr")
	c := p.AddClass(&ir.Class{Name: "t.okr.K"})
	b := ir.NewMethod(c, "send", false, nil, "void")
	payload := b.ConstStr(`{"ping":1}`)
	body := b.InvokeStatic("okhttp3.RequestBody.create", payload)
	rb := b.New("okhttp3.Request$Builder")
	b.InvokeSpecial("okhttp3.Request$Builder.<init>", rb)
	u := b.ConstStr("https://api.test.com/login")
	b.InvokeVoid("okhttp3.Request$Builder.url", rb, u)
	b.InvokeVoid("okhttp3.Request$Builder.post", rb, body)
	hk := b.ConstStr("X-Id")
	hv := b.ConstStr("77")
	b.InvokeVoid("okhttp3.Request$Builder.header", rb, hk, hv)
	req := b.Invoke("okhttp3.Request$Builder.build", rb)
	cl := b.New("okhttp3.OkHttpClient")
	b.InvokeSpecial("okhttp3.OkHttpClient.<init>", cl)
	call := b.Invoke("okhttp3.OkHttpClient.newCall", cl, req)
	resp := b.Invoke("okhttp3.Call.execute", call)
	rbody := b.Invoke("okhttp3.Response.body", resp)
	raw := b.Invoke("okhttp3.ResponseBody.string", rbody)
	b.StaticPut("t.okr.K.raw", raw)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.okr.K.send", Kind: ir.EventClick}}

	n := httpsim.NewNetwork()
	s := httpsim.NewServer("api.test.com")
	s.Handle("POST", "/login", func(r *httpsim.Request) *httpsim.Response {
		if r.Headers["X-Id"] != "77" || !strings.Contains(r.Body, "ping") {
			return httpsim.Error(400, "bad request")
		}
		return httpsim.JSON(`{"session":"S1"}`)
	})
	n.Register(s)
	vm := New(p, n)
	if err := vm.Fire(p.Manifest.EntryPoints[0]); err != nil {
		t.Fatal(err)
	}
	if got := vm.Statics["t.okr.K.raw"]; got != `{"session":"S1"}` {
		t.Fatalf("raw = %v", got)
	}
}

func TestXMLParsingBuiltins(t *testing.T) {
	p := ir.NewProgram("t.xmlr")
	c := p.AddClass(&ir.Class{Name: "t.xmlr.X"})
	b := ir.NewMethod(c, "go", false, nil, "void")
	src := b.ConstStr(`<feed version="3"><entry><title>hello</title></entry></feed>`)
	doc := b.InvokeStatic("android.util.Xml.parse", src)
	tagT := b.ConstStr("title")
	el := b.Invoke("org.w3c.dom.Document.getElementsByTagName", doc, tagT)
	txt := b.Invoke("org.w3c.dom.Element.getTextContent", el)
	b.StaticPut("t.xmlr.X.title", txt)
	tagF := b.ConstStr("feed")
	feed := b.Invoke("org.w3c.dom.Document.getElementsByTagName", doc, tagF)
	attrV := b.ConstStr("version")
	ver := b.Invoke("org.w3c.dom.Element.getAttribute", feed, attrV)
	b.StaticPut("t.xmlr.X.version", ver)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.xmlr.X.go", Kind: ir.EventCreate}}

	vm := New(p, httpsim.NewNetwork())
	if err := vm.Fire(p.Manifest.EntryPoints[0]); err != nil {
		t.Fatal(err)
	}
	if vm.Statics["t.xmlr.X.title"] != "hello" {
		t.Errorf("title = %v", vm.Statics["t.xmlr.X.title"])
	}
	if vm.Statics["t.xmlr.X.version"] != "3" {
		t.Errorf("version = %v", vm.Statics["t.xmlr.X.version"])
	}
}

func TestJSONArrayAndNestedObjects(t *testing.T) {
	p := ir.NewProgram("t.ja")
	c := p.AddClass(&ir.Class{Name: "t.ja.J"})
	b := ir.NewMethod(c, "go", false, nil, "void")
	src := b.ConstStr(`{"outer":{"items":[{"name":"first"},{"name":"second"}]},"n":5,"ok":true}`)
	js := b.InvokeStatic("org.json.JSONObject.parse", src)
	kOuter := b.ConstStr("outer")
	outer := b.Invoke("org.json.JSONObject.getJSONObject", js, kOuter)
	kItems := b.ConstStr("items")
	arr := b.Invoke("org.json.JSONObject.getJSONArray", outer, kItems)
	ln := b.Invoke("org.json.JSONArray.length", arr)
	b.StaticPut("t.ja.J.len", ln)
	one := b.ConstInt(1)
	second := b.Invoke("org.json.JSONArray.getJSONObject", arr, one)
	kName := b.ConstStr("name")
	name := b.Invoke("org.json.JSONObject.getString", second, kName)
	b.StaticPut("t.ja.J.name", name)
	kN := b.ConstStr("n")
	nv := b.Invoke("org.json.JSONObject.getInt", js, kN)
	b.StaticPut("t.ja.J.n", nv)
	kOK := b.ConstStr("ok")
	okv := b.Invoke("org.json.JSONObject.getBoolean", js, kOK)
	b.StaticPut("t.ja.J.ok", okv)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.ja.J.go", Kind: ir.EventCreate}}

	vm := New(p, httpsim.NewNetwork())
	if err := vm.Fire(p.Manifest.EntryPoints[0]); err != nil {
		t.Fatal(err)
	}
	if vm.Statics["t.ja.J.len"] != int64(2) {
		t.Errorf("len = %v", vm.Statics["t.ja.J.len"])
	}
	if vm.Statics["t.ja.J.name"] != "second" {
		t.Errorf("name = %v", vm.Statics["t.ja.J.name"])
	}
	if vm.Statics["t.ja.J.n"] != int64(5) {
		t.Errorf("n = %v", vm.Statics["t.ja.J.n"])
	}
	if vm.Statics["t.ja.J.ok"] != true {
		t.Errorf("ok = %v", vm.Statics["t.ja.J.ok"])
	}
}

func TestTimerAndHandlerCallbacks(t *testing.T) {
	p := ir.NewProgram("t.tm")
	task := p.AddClass(&ir.Class{Name: "t.tm.Task"})
	run := ir.NewMethod(task, "run", false, nil, "void")
	v := run.ConstStr("ran")
	run.StaticPut("t.tm.Task.state", v)
	run.ReturnVoid()
	run.Done()

	main := p.AddClass(&ir.Class{Name: "t.tm.Main"})
	b := ir.NewMethod(main, "onCreate", false, nil, "void")
	tk := b.New("t.tm.Task")
	b.InvokeSpecial("t.tm.Task.<init>", tk)
	timer := b.New("java.util.Timer")
	b.InvokeSpecial("java.util.Timer.<init>", timer)
	delay := b.ConstInt(1000)
	b.InvokeVoid("java.util.Timer.schedule", timer, tk, delay)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.tm.Main.onCreate", Kind: ir.EventCreate}}

	vm := New(p, httpsim.NewNetwork())
	if err := vm.Fire(p.Manifest.EntryPoints[0]); err != nil {
		t.Fatal(err)
	}
	if vm.Statics["t.tm.Task.state"] != "ran" {
		t.Fatalf("timer task did not run: %v", vm.Statics["t.tm.Task.state"])
	}
}

func TestResponseHeaderBuiltin(t *testing.T) {
	p := ir.NewProgram("t.rh")
	c := p.AddClass(&ir.Class{Name: "t.rh.R"})
	b := ir.NewMethod(c, "go", false, nil, "void")
	u := b.ConstStr("https://api.test.com/items?id=1")
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, u)
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial(clInit, cl)
	resp := b.Invoke(execRef, cl, req)
	hk := b.ConstStr("Content-Type")
	ct := b.Invoke("org.apache.http.HttpResponse.getFirstHeader", resp, hk)
	b.StaticPut("t.rh.R.ct", ct)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.rh.R.go", Kind: ir.EventClick}}

	vm := New(p, testNet())
	if err := vm.Fire(p.Manifest.EntryPoints[0]); err != nil {
		t.Fatal(err)
	}
	if vm.Statics["t.rh.R.ct"] != "application/json" {
		t.Fatalf("content type = %v", vm.Statics["t.rh.R.ct"])
	}
}

func TestStringTransforms(t *testing.T) {
	p := ir.NewProgram("t.st")
	c := p.AddClass(&ir.Class{Name: "t.st.S"})
	b := ir.NewMethod(c, "go", false, nil, "void")
	raw := b.ConstStr("  MiXeD  ")
	tr := b.Invoke("java.lang.String.trim", raw)
	lo := b.Invoke("java.lang.String.toLowerCase", tr)
	up := b.Invoke("java.lang.String.toUpperCase", tr)
	cc := b.Invoke("java.lang.String.concat", lo, up)
	b.StaticPut("t.st.S.out", cc)
	n := b.ConstInt(42)
	ns := b.InvokeStatic("java.lang.String.valueOf", n)
	b.StaticPut("t.st.S.n", ns)
	a := b.ConstStr("x")
	bb := b.ConstStr("x")
	eq := b.Invoke("java.lang.String.equals", a, bb)
	b.StaticPut("t.st.S.eq", eq)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.st.S.go", Kind: ir.EventCreate}}

	vm := New(p, httpsim.NewNetwork())
	if err := vm.Fire(p.Manifest.EntryPoints[0]); err != nil {
		t.Fatal(err)
	}
	if vm.Statics["t.st.S.out"] != "mixedMIXED" {
		t.Errorf("out = %v", vm.Statics["t.st.S.out"])
	}
	if vm.Statics["t.st.S.n"] != "42" {
		t.Errorf("n = %v", vm.Statics["t.st.S.n"])
	}
	if vm.Statics["t.st.S.eq"] != true {
		t.Errorf("eq = %v", vm.Statics["t.st.S.eq"])
	}
}

func TestMapBuiltins(t *testing.T) {
	p := ir.NewProgram("t.mp")
	c := p.AddClass(&ir.Class{Name: "t.mp.M"})
	b := ir.NewMethod(c, "go", false, nil, "void")
	m := b.New("java.util.HashMap")
	b.InvokeSpecial("java.util.HashMap.<init>", m)
	k := b.ConstStr("lang")
	v := b.ConstStr("en")
	b.InvokeVoid("java.util.HashMap.put", m, k, v)
	k2 := b.ConstStr("lang")
	got := b.Invoke("java.util.HashMap.get", m, k2)
	b.StaticPut("t.mp.M.v", got)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.mp.M.go", Kind: ir.EventCreate}}

	vm := New(p, httpsim.NewNetwork())
	if err := vm.Fire(p.Manifest.EntryPoints[0]); err != nil {
		t.Fatal(err)
	}
	if vm.Statics["t.mp.M.v"] != "en" {
		t.Fatalf("map get = %v", vm.Statics["t.mp.M.v"])
	}
}

func TestSocketBuiltins(t *testing.T) {
	p := ir.NewProgram("t.skr")
	c := p.AddClass(&ir.Class{Name: "t.skr.S"})
	b := ir.NewMethod(c, "go", false, nil, "void")
	host := b.ConstStr("tcp.test.com")
	port := b.ConstInt(9000)
	sock := b.New("java.net.Socket")
	b.InvokeSpecial("java.net.Socket.<init>", sock, host, port)
	out := b.Invoke("java.net.Socket.getOutputStream", sock)
	msg := b.ConstStr("PING\n")
	b.InvokeVoid("java.io.OutputStream.write", out, msg)
	in := b.Invoke("java.net.Socket.getInputStream", sock)
	resp := b.Invoke("java.io.InputStream.readAll", in)
	b.StaticPut("t.skr.S.resp", resp)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.skr.S.go", Kind: ir.EventClick}}

	n := httpsim.NewNetwork()
	s := httpsim.NewServer("tcp.test.com:9000")
	s.HandlePrefix("TCP", "", func(r *httpsim.Request) *httpsim.Response {
		if r.Body != "PING\n" {
			return httpsim.Error(400, "bad")
		}
		return httpsim.Text("PONG")
	})
	n.Register(s)
	vm := New(p, n)
	if err := vm.Fire(p.Manifest.EntryPoints[0]); err != nil {
		t.Fatal(err)
	}
	if vm.Statics["t.skr.S.resp"] != "PONG" {
		t.Fatalf("socket resp = %v", vm.Statics["t.skr.S.resp"])
	}
	if tr := n.Trace(); len(tr) != 1 || tr[0].Request.Method != "TCP" {
		t.Fatalf("trace = %+v", n.Trace())
	}
}

func TestIntentSendIsInert(t *testing.T) {
	p := ir.NewProgram("t.it")
	c := p.AddClass(&ir.Class{Name: "t.it.I"})
	b := ir.NewMethod(c, "go", false, nil, "void")
	ctx := b.New("android.content.Context")
	intent := b.New("android.content.Intent")
	b.InvokeVoid("android.content.Context.startActivity", ctx, intent)
	marker := b.ConstStr("after")
	b.StaticPut("t.it.I.m", marker)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.it.I.go", Kind: ir.EventCreate}}

	vm := New(p, httpsim.NewNetwork())
	if err := vm.Fire(p.Manifest.EntryPoints[0]); err != nil {
		t.Fatal(err)
	}
	if vm.Statics["t.it.I.m"] != "after" {
		t.Fatal("execution did not continue past the intent send")
	}
}

func TestSourcesReturnPlaceholders(t *testing.T) {
	p := ir.NewProgram("t.src")
	c := p.AddClass(&ir.Class{Name: "t.src.S"})
	b := ir.NewMethod(c, "go", false, nil, "void")
	tm := b.New("android.telephony.TelephonyManager")
	id := b.Invoke("android.telephony.TelephonyManager.getDeviceId", tm)
	b.StaticPut("t.src.S.id", id)
	loc := b.New("android.location.Location")
	lat := b.Invoke("android.location.Location.getLatitude", loc)
	b.StaticPut("t.src.S.lat", lat)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.src.S.go", Kind: ir.EventCreate}}

	vm := New(p, httpsim.NewNetwork())
	if err := vm.Fire(p.Manifest.EntryPoints[0]); err != nil {
		t.Fatal(err)
	}
	if vm.Statics["t.src.S.id"] == nil || vm.Statics["t.src.S.lat"] == nil {
		t.Fatal("source builtins returned nil")
	}
}

package runtime

import (
	"strings"
	"testing"

	"extractocol/internal/httpsim"
	"extractocol/internal/ir"
)

const (
	sbInit   = "java.lang.StringBuilder.<init>"
	sbApp    = "java.lang.StringBuilder.append"
	sbStr    = "java.lang.StringBuilder.toString"
	getInit  = "org.apache.http.client.methods.HttpGet.<init>"
	postInit = "org.apache.http.client.methods.HttpPost.<init>"
	clInit   = "org.apache.http.impl.client.DefaultHttpClient.<init>"
	execRef  = "org.apache.http.client.HttpClient.execute"
	jParse   = "org.json.JSONObject.parse"
	jGetStr  = "org.json.JSONObject.getString"
	entCont  = "org.apache.http.util.EntityUtils.toString"
	getEnt   = "org.apache.http.HttpResponse.getEntity"
	seInit   = "org.apache.http.entity.StringEntity.<init>"
	setEnt   = "org.apache.http.client.methods.HttpPost.setEntity"
)

func testNet() *httpsim.Network {
	n := httpsim.NewNetwork()
	s := httpsim.NewServer("api.test.com")
	s.Handle("GET", "/items", func(r *httpsim.Request) *httpsim.Response {
		return httpsim.JSON(`{"token":"TOK-` + r.Query().Get("id") + `"}`)
	})
	s.Handle("POST", "/login", func(r *httpsim.Request) *httpsim.Response {
		if !strings.Contains(r.Body, "user=") {
			return httpsim.Error(400, "bad login")
		}
		return httpsim.JSON(`{"session":"S1"}`)
	})
	s.HandlePrefix("GET", "/media/", func(r *httpsim.Request) *httpsim.Response {
		return httpsim.Binary("MEDIA")
	})
	n.Register(s)
	return n
}

func fireApp(t *testing.T, p *ir.Program, entry string) *VM {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid program: %v", err)
	}
	net := testNet()
	vm := New(p, net)
	if err := vm.Fire(ir.EntryPoint{Method: entry, Kind: ir.EventClick}); err != nil {
		t.Fatalf("Fire: %v", err)
	}
	return vm
}

func TestExecuteGETAndParseJSON(t *testing.T) {
	p := ir.NewProgram("t.rt")
	c := p.AddClass(&ir.Class{Name: "t.rt.A", Fields: []*ir.Field{
		{Name: "token", Type: "java.lang.String"},
	}})
	b := ir.NewMethod(c, "go", false, nil, "void")
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial(sbInit, sb)
	s1 := b.ConstStr("https://api.test.com/items?id=")
	b.InvokeVoid(sbApp, sb, s1)
	n := b.ConstInt(7)
	b.InvokeVoid(sbApp, sb, n)
	uri := b.Invoke(sbStr, sb)
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, uri)
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial(clInit, cl)
	resp := b.Invoke(execRef, cl, req)
	ent := b.Invoke(getEnt, resp)
	raw := b.InvokeStatic(entCont, ent)
	js := b.InvokeStatic(jParse, raw)
	k := b.ConstStr("token")
	tok := b.Invoke(jGetStr, js, k)
	b.FieldPut(b.This(), "token", tok)
	b.StaticPut("t.rt.A.lastToken", tok)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.rt.A.go", Kind: ir.EventClick}}

	vm := fireApp(t, p, "t.rt.A.go")
	tr := vm.Net.Trace()
	if len(tr) != 1 {
		t.Fatalf("trace = %d", len(tr))
	}
	if tr[0].Request.URL != "https://api.test.com/items?id=7" {
		t.Fatalf("URL = %q", tr[0].Request.URL)
	}
	if got := vm.Statics["t.rt.A.lastToken"]; got != "TOK-7" {
		t.Fatalf("token = %v", got)
	}
}

func TestBranchTakenByInput(t *testing.T) {
	p := ir.NewProgram("t.br")
	c := p.AddClass(&ir.Class{Name: "t.br.B"})
	b := ir.NewMethod(c, "go", false, []string{"int"}, "void")
	mode := b.Param(0)
	u := b.Reg()
	zero := b.ConstInt(0)
	b.IfEq(mode, zero, "alt")
	u1 := b.ConstStr("https://api.test.com/items?id=1")
	b.MoveTo(u, u1)
	b.Goto("send")
	b.Label("alt")
	u2 := b.ConstStr("https://api.test.com/items?id=2")
	b.MoveTo(u, u2)
	b.Label("send")
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, u)
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial(clInit, cl)
	b.Invoke(execRef, cl, req)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.br.B.go", Kind: ir.EventClick}}

	net := testNet()
	vm := New(p, net)
	vm.Input = func(m string, i int, typ string) value { return int64(0) }
	if err := vm.Fire(ir.EntryPoint{Method: "t.br.B.go"}); err != nil {
		t.Fatal(err)
	}
	tr := net.Trace()
	if len(tr) != 1 || !strings.HasSuffix(tr[0].Request.URL, "id=2") {
		t.Fatalf("trace = %+v", tr[0].Request)
	}
}

func TestFormEntityPost(t *testing.T) {
	p := ir.NewProgram("t.fe")
	c := p.AddClass(&ir.Class{Name: "t.fe.F"})
	b := ir.NewMethod(c, "login", false, nil, "void")
	list := b.New("java.util.ArrayList")
	b.InvokeSpecial("java.util.ArrayList.<init>", list)
	k := b.ConstStr("user")
	v := b.ConstStr("alice")
	pair := b.New("org.apache.http.message.BasicNameValuePair")
	b.InvokeSpecial("org.apache.http.message.BasicNameValuePair.<init>", pair, k, v)
	b.InvokeVoid("java.util.ArrayList.add", list, pair)
	ent := b.New("org.apache.http.client.entity.UrlEncodedFormEntity")
	b.InvokeSpecial("org.apache.http.client.entity.UrlEncodedFormEntity.<init>", ent, list)
	u := b.ConstStr("https://api.test.com/login")
	req := b.New("org.apache.http.client.methods.HttpPost")
	b.InvokeSpecial(postInit, req, u)
	b.InvokeVoid(setEnt, req, ent)
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial(clInit, cl)
	b.Invoke(execRef, cl, req)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.fe.F.login", Kind: ir.EventLogin}}

	vm := fireApp(t, p, "t.fe.F.login")
	tr := vm.Net.Trace()
	if len(tr) != 1 || tr[0].Request.Method != "POST" {
		t.Fatalf("trace = %+v", tr)
	}
	if tr[0].Request.Body != "user=alice" {
		t.Fatalf("body = %q", tr[0].Request.Body)
	}
	if tr[0].Response.Status != 200 {
		t.Fatalf("status = %d", tr[0].Response.Status)
	}
}

func TestAsyncTaskChain(t *testing.T) {
	p := ir.NewProgram("t.at")
	task := p.AddClass(&ir.Class{Name: "t.at.Task", Super: "android.os.AsyncTask"})
	dib := ir.NewMethod(task, "doInBackground", false, nil, "java.lang.String")
	u := dib.ConstStr("https://api.test.com/items?id=9")
	req := dib.New("org.apache.http.client.methods.HttpGet")
	dib.InvokeSpecial(getInit, req, u)
	cl := dib.New("org.apache.http.impl.client.DefaultHttpClient")
	dib.InvokeSpecial(clInit, cl)
	resp := dib.Invoke(execRef, cl, req)
	ent := dib.Invoke(getEnt, resp)
	raw := dib.InvokeStatic(entCont, ent)
	dib.Return(raw)
	dib.Done()
	post := ir.NewMethod(task, "onPostExecute", false, []string{"java.lang.String"}, "void")
	body := post.Param(0)
	post.StaticPut("t.at.Task.result", body)
	post.ReturnVoid()
	post.Done()

	main := p.AddClass(&ir.Class{Name: "t.at.Main"})
	b := ir.NewMethod(main, "onCreate", false, nil, "void")
	tk := b.New("t.at.Task")
	b.InvokeSpecial("t.at.Task.<init>", tk)
	b.InvokeVoid("android.os.AsyncTask.execute", tk)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.at.Main.onCreate", Kind: ir.EventCreate}}

	vm := fireApp(t, p, "t.at.Main.onCreate")
	if got := vm.Statics["t.at.Task.result"]; got != `{"token":"TOK-9"}` {
		t.Fatalf("result = %v", got)
	}
}

func TestVolleyEnqueueDeliversJSONCallback(t *testing.T) {
	p := ir.NewProgram("t.vl")
	reqCls := p.AddClass(&ir.Class{Name: "t.vl.Req", Super: "com.android.volley.toolbox.JsonObjectRequest"})
	onr := ir.NewMethod(reqCls, "onResponse", false, []string{"org.json.JSONObject"}, "void")
	js := onr.Param(0)
	k := onr.ConstStr("token")
	v := onr.Invoke(jGetStr, js, k)
	onr.StaticPut("t.vl.Req.got", v)
	onr.ReturnVoid()
	onr.Done()

	main := p.AddClass(&ir.Class{Name: "t.vl.Main"})
	b := ir.NewMethod(main, "onCreate", false, nil, "void")
	u := b.ConstStr("https://api.test.com/items?id=3")
	r := b.New("t.vl.Req")
	b.InvokeSpecial("com.android.volley.toolbox.JsonObjectRequest.<init>", r, u)
	q := b.New("com.android.volley.RequestQueue")
	b.InvokeVoid("com.android.volley.RequestQueue.add", q, r)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.vl.Main.onCreate", Kind: ir.EventCreate}}

	vm := fireApp(t, p, "t.vl.Main.onCreate")
	if got := vm.Statics["t.vl.Req.got"]; got != "TOK-3" {
		t.Fatalf("got = %v", got)
	}
}

func TestMediaSinkFetchesAndCounts(t *testing.T) {
	p := ir.NewProgram("t.ms")
	c := p.AddClass(&ir.Class{Name: "t.ms.M"})
	b := ir.NewMethod(c, "play", false, nil, "void")
	u := b.ConstStr("https://api.test.com/media/song.mp3")
	mp := b.New("android.media.MediaPlayer")
	b.InvokeVoid("android.media.MediaPlayer.setDataSource", mp, u)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.ms.M.play", Kind: ir.EventClick}}

	vm := fireApp(t, p, "t.ms.M.play")
	if vm.Consumed["media"] != 1 {
		t.Fatalf("consumed = %v", vm.Consumed)
	}
	tr := vm.Net.Trace()
	if len(tr) != 1 || tr[0].Response.Type != "binary" {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestDBAndResources(t *testing.T) {
	p := ir.NewProgram("t.db")
	p.Resources["greeting"] = "hello"
	c := p.AddClass(&ir.Class{Name: "t.db.D"})
	b := ir.NewMethod(c, "go", false, nil, "void")
	res := b.New("android.content.res.Resources")
	kn := b.ConstStr("greeting")
	g := b.Invoke("android.content.res.Resources.getString", res, kn)
	cv := b.New("android.content.ContentValues")
	b.InvokeSpecial("android.content.ContentValues.<init>", cv)
	col := b.ConstStr("msg")
	b.InvokeVoid("android.content.ContentValues.put", cv, col, g)
	db := b.New("android.database.sqlite.SQLiteDatabase")
	tbl := b.ConstStr("notes")
	b.InvokeVoid("android.database.sqlite.SQLiteDatabase.insert", db, tbl, cv)
	tbl2 := b.ConstStr("notes")
	col2 := b.ConstStr("msg")
	back := b.Invoke("android.database.sqlite.SQLiteDatabase.query", db, tbl2, col2)
	b.StaticPut("t.db.D.out", back)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.db.D.go", Kind: ir.EventCreate}}

	vm := fireApp(t, p, "t.db.D.go")
	if got := vm.Statics["t.db.D.out"]; got != "hello" {
		t.Fatalf("round trip = %v", got)
	}
}

func TestURLConnectionPost(t *testing.T) {
	p := ir.NewProgram("t.uc")
	c := p.AddClass(&ir.Class{Name: "t.uc.U"})
	b := ir.NewMethod(c, "send", false, nil, "void")
	us := b.ConstStr("https://api.test.com/login")
	u := b.New("java.net.URL")
	b.InvokeSpecial("java.net.URL.<init>", u, us)
	conn := b.Invoke("java.net.URL.openConnection", u)
	meth := b.ConstStr("POST")
	b.InvokeVoid("java.net.HttpURLConnection.setRequestMethod", conn, meth)
	out := b.Invoke("java.net.HttpURLConnection.getOutputStream", conn)
	body := b.ConstStr("user=bob&passwd=pw")
	b.InvokeVoid("java.io.OutputStream.write", out, body)
	in := b.Invoke("java.net.HttpURLConnection.getInputStream", conn)
	resp := b.Invoke("java.io.InputStream.readAll", in)
	b.StaticPut("t.uc.U.resp", resp)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.uc.U.send", Kind: ir.EventClick}}

	vm := fireApp(t, p, "t.uc.U.send")
	tr := vm.Net.Trace()
	if len(tr) != 1 || tr[0].Request.Method != "POST" || tr[0].Request.Body != "user=bob&passwd=pw" {
		t.Fatalf("trace = %+v", tr[0].Request)
	}
	if got := vm.Statics["t.uc.U.resp"]; got != `{"session":"S1"}` {
		t.Fatalf("resp = %v", got)
	}
}

func TestGsonRoundTrip(t *testing.T) {
	p := ir.NewProgram("t.gs")
	p.AddClass(&ir.Class{Name: "t.gs.Item", Fields: []*ir.Field{
		{Name: "token", Type: "java.lang.String"},
	}})
	c := p.AddClass(&ir.Class{Name: "t.gs.G"})
	b := ir.NewMethod(c, "go", false, nil, "void")
	u := b.ConstStr("https://api.test.com/items?id=5")
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, u)
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial(clInit, cl)
	resp := b.Invoke(execRef, cl, req)
	ent := b.Invoke(getEnt, resp)
	raw := b.InvokeStatic(entCont, ent)
	gson := b.New("com.google.gson.Gson")
	cls := b.ConstStr("t.gs.Item")
	item := b.Invoke("com.google.gson.Gson.fromJson", gson, raw, cls)
	tok := b.FieldGet(item, "token")
	b.StaticPut("t.gs.G.tok", tok)
	back := b.Invoke("com.google.gson.Gson.toJson", gson, item)
	b.StaticPut("t.gs.G.json", back)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.gs.G.go", Kind: ir.EventCreate}}

	vm := fireApp(t, p, "t.gs.G.go")
	if got := vm.Statics["t.gs.G.tok"]; got != "TOK-5" {
		t.Fatalf("tok = %v", got)
	}
	if got := vm.Statics["t.gs.G.json"]; got != `{"token":"TOK-5"}` {
		t.Fatalf("json = %v", got)
	}
}

func TestLoopBudgetGuard(t *testing.T) {
	p := ir.NewProgram("t.inf")
	c := p.AddClass(&ir.Class{Name: "t.inf.I"})
	b := ir.NewMethod(c, "spin", false, nil, "void")
	b.Label("again")
	b.ConstInt(1)
	b.Goto("again")
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.inf.I.spin", Kind: ir.EventCreate}}

	net := testNet()
	vm := New(p, net)
	vm.maxSteps = 10_000
	if err := vm.Fire(ir.EntryPoint{Method: "t.inf.I.spin"}); err == nil {
		t.Fatal("expected step-budget error")
	}
}

package runtime

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"net/url"
	"sort"
	"strings"

	"extractocol/internal/httpsim"

	"extractocol/internal/semmodel"
)

// model is shared by all VMs; the semantic table is immutable.
var model = semmodel.Default()

// builtin executes a modeled library call concretely. handled is false when
// the method is not part of the semantic model.
func (vm *VM) builtin(sym string, args []value) (handled bool, ret value, err error) {
	mm := model.Lookup(sym)
	if mm == nil {
		return false, nil, nil
	}
	obj := func(i int) *object {
		if i < len(args) {
			if o, ok := args[i].(*object); ok {
				return o
			}
		}
		return nil
	}
	recv := obj(0)

	switch mm.Kind {
	// ---- Strings ---------------------------------------------------------
	case semmodel.KStringBuilderInit:
		if recv != nil {
			recv.sb = &strings.Builder{}
			if len(args) > 1 {
				recv.sb.WriteString(str(args[1]))
			}
		}
		return true, nil, nil
	case semmodel.KAppend:
		if recv != nil && recv.sb != nil && len(args) > 1 {
			recv.sb.WriteString(str(args[1]))
		}
		return true, args[0], nil
	case semmodel.KToString:
		if recv != nil {
			return true, str(recv), nil
		}
		return true, str(args[0]), nil
	case semmodel.KStringConcat:
		return true, str(args[0]) + str(args[1]), nil
	case semmodel.KValueOf:
		return true, str(args[len(args)-1]), nil
	case semmodel.KURLEncode:
		return true, url.QueryEscape(str(args[0])), nil
	case semmodel.KPassThrough, semmodel.KStringFormatIdentity:
		v := args[0]
		switch {
		case strings.HasSuffix(sym, ".trim"):
			return true, strings.TrimSpace(str(v)), nil
		case strings.HasSuffix(sym, ".toLowerCase"):
			return true, strings.ToLower(str(v)), nil
		case strings.HasSuffix(sym, ".toUpperCase"):
			return true, strings.ToUpper(str(v)), nil
		}
		return true, v, nil
	case semmodel.KStringEquals:
		return true, str(args[0]) == str(args[1]), nil

	// ---- HTTP request construction -----------------------------------------
	case semmodel.KHTTPReqInit:
		if recv == nil {
			return true, nil, nil
		}
		recv.req = &reqState{method: mm.HTTPMethod, headers: map[string]string{}}
		if recv.req.method == "" {
			recv.req.method = "GET"
		}
		for _, a := range args[1:] {
			switch t := a.(type) {
			case string:
				if recv.req.uri == "" {
					recv.req.uri = t
				}
			case int64:
				switch t {
				case 0:
					recv.req.method = "GET"
				case 1:
					recv.req.method = "POST"
				case 2:
					recv.req.method = "PUT"
				case 3:
					recv.req.method = "DELETE"
				}
			case *object:
				if t.jsonMap != nil {
					recv.req.body = jsonSerialize(t)
					if recv.req.method == "GET" {
						recv.req.method = "POST"
					}
				}
			}
		}
		return true, nil, nil
	case semmodel.KHTTPSetEntity:
		if recv != nil && recv.req != nil {
			if e := obj(1); e != nil && e.entity != nil {
				recv.req.body = e.entity.body
			}
		}
		return true, nil, nil
	case semmodel.KHTTPAddHeader, semmodel.KConnSetHeader:
		if recv != nil && recv.req != nil && len(args) > 2 {
			k := str(args[1])
			if _, dup := recv.req.headers[k]; !dup {
				recv.req.hdrOrd = append(recv.req.hdrOrd, k)
			}
			recv.req.headers[k] = str(args[2])
		}
		return true, nil, nil
	case semmodel.KStringEntityInit:
		if recv != nil && len(args) > 1 {
			recv.entity = &entityState{body: str(args[1])}
		}
		return true, nil, nil
	case semmodel.KFormEntityInit:
		if recv != nil {
			if l := obj(1); l != nil {
				var parts []string
				for _, el := range l.list {
					if po, ok := el.(*object); ok {
						parts = append(parts, url.QueryEscape(str(po.pair[0]))+"="+url.QueryEscape(str(po.pair[1])))
					}
				}
				recv.entity = &entityState{body: strings.Join(parts, "&")}
			}
		}
		return true, nil, nil
	case semmodel.KNVPairInit:
		if recv != nil && len(args) > 2 {
			recv.pair = [2]value{args[1], args[2]}
		}
		return true, nil, nil

	// ---- Raw TCP sockets -------------------------------------------------------
	case semmodel.KSocketInit:
		if recv != nil && len(args) > 2 {
			recv.req = &reqState{method: "TCP",
				uri:     "tcp://" + str(args[1]) + ":" + str(args[2]),
				headers: map[string]string{}}
		}
		return true, nil, nil

	// ---- java.net URL / connection ------------------------------------------
	case semmodel.KURLInit:
		if recv != nil && len(args) > 1 {
			recv.req = &reqState{method: "GET", uri: str(args[1]), headers: map[string]string{}}
		}
		return true, nil, nil
	case semmodel.KOpenConnection:
		conn := vm.newObject("java.net.HttpURLConnection")
		if recv != nil && recv.req != nil {
			conn.req = &reqState{method: "GET", uri: recv.req.uri, headers: map[string]string{}}
		} else {
			conn.req = &reqState{method: "GET", headers: map[string]string{}}
		}
		return true, conn, nil
	case semmodel.KConnSetMethod:
		if recv != nil && recv.req != nil && len(args) > 1 {
			recv.req.method = str(args[1])
		}
		return true, nil, nil
	case semmodel.KConnGetOutput:
		if recv != nil && recv.req != nil {
			if recv.req.method == "GET" {
				recv.req.method = "POST"
			}
			s := vm.newObject("java.io.OutputStream")
			s.stream = recv.req
			return true, s, nil
		}
		return true, nil, nil
	case semmodel.KStreamWrite:
		if recv != nil && recv.stream != nil && len(args) > 1 {
			recv.stream.body += str(args[1])
		}
		return true, nil, nil
	case semmodel.KConnGetInput:
		// Demarcation point: perform the exchange.
		if recv != nil && recv.req != nil {
			resp := vm.roundTrip(recv.req)
			s := vm.newObject("java.io.InputStream")
			s.resp = resp
			return true, s, nil
		}
		return true, nil, nil
	case semmodel.KReadStream:
		if recv != nil && recv.resp != nil {
			return true, recv.resp.Body, nil
		}
		return true, "", nil
	case semmodel.KStreamWrap:
		// Stream decorator constructor: alias the wrapped stream's state;
		// gzip and chunked framings declared by the response headers are
		// decoded so reads through the wrapper see the payload.
		if recv != nil {
			if w := obj(1); w != nil {
				recv.req, recv.stream, recv.entity = w.req, w.stream, w.entity
				recv.resp = w.resp
				if w.resp != nil {
					if body, ok := httpsim.DecodeBody(w.resp); ok {
						cp := *w.resp
						cp.Body = body
						recv.resp = &cp
					}
				}
			}
		}
		return true, nil, nil

	// ---- Multipart request bodies ---------------------------------------------
	case semmodel.KMultipartCreate:
		b := vm.newObject("org.apache.http.entity.mime.MultipartEntityBuilder")
		b.kv = map[string]value{}
		return true, b, nil
	case semmodel.KMultipartAddPart:
		if recv != nil && len(args) > 2 {
			k := str(args[1])
			if recv.kv == nil {
				recv.kv = map[string]value{}
			}
			if _, dup := recv.kv[k]; !dup {
				recv.kvOrd = append(recv.kvOrd, k)
			}
			recv.kv[k] = args[2]
		}
		return true, args[0], nil
	case semmodel.KMultipartBuild:
		e := vm.newObject("org.apache.http.HttpEntity")
		var parts [][2]string
		if recv != nil {
			for _, k := range recv.kvOrd {
				parts = append(parts, [2]string{k, str(recv.kv[k])})
			}
		}
		e.entity = &entityState{body: httpsim.MultipartBody(parts)}
		return true, e, nil

	// ---- okhttp ---------------------------------------------------------------
	case semmodel.KOkRequestBuilder:
		if recv != nil {
			recv.req = &reqState{method: "GET", headers: map[string]string{}}
		}
		return true, nil, nil
	case semmodel.KOkURL:
		if recv != nil && recv.req != nil && len(args) > 1 {
			recv.req.uri = str(args[1])
		}
		return true, args[0], nil
	case semmodel.KOkPost:
		if recv != nil && recv.req != nil {
			recv.req.method = "POST"
			if e := obj(1); e != nil && e.entity != nil {
				recv.req.body = e.entity.body
			}
		}
		return true, args[0], nil
	case semmodel.KOkHeader:
		if recv != nil && recv.req != nil && len(args) > 2 {
			k := str(args[1])
			if _, dup := recv.req.headers[k]; !dup {
				recv.req.hdrOrd = append(recv.req.hdrOrd, k)
			}
			recv.req.headers[k] = str(args[2])
		}
		return true, args[0], nil
	case semmodel.KOkBuild:
		return true, args[0], nil
	case semmodel.KOkNewCall:
		call := vm.newObject("okhttp3.Call")
		if r := obj(1); r != nil {
			call.req = r.req
		}
		return true, call, nil
	case semmodel.KOkBodyCreate:
		e := vm.newObject("okhttp3.RequestBody")
		e.entity = &entityState{body: str(args[len(args)-1])}
		return true, e, nil

	// ---- Demarcation points ------------------------------------------------------
	case semmodel.KExecuteDP:
		var rq *reqState
		if mm.ReqArg < len(args) {
			if o := obj(mm.ReqArg); o != nil {
				rq = o.req
			}
		}
		if rq == nil {
			return true, nil, fmt.Errorf("runtime: %s with no request", sym)
		}
		resp := vm.roundTrip(rq)
		ro := vm.newObject("org.apache.http.HttpResponse")
		ro.resp = resp
		return true, ro, nil
	case semmodel.KEnqueueDP:
		// Asynchronous exchange: perform it synchronously and deliver the
		// response through the callback.
		var reqObj *object
		if mm.ReqArg < len(args) {
			reqObj = obj(mm.ReqArg)
		}
		if reqObj == nil || reqObj.req == nil {
			return true, nil, fmt.Errorf("runtime: %s with no request", sym)
		}
		resp := vm.roundTrip(reqObj.req)
		var cb *object
		if mm.CallbackArg < len(args) {
			cb = obj(mm.CallbackArg)
		}
		if cb != nil {
			if target := vm.Prog.ResolveMethod(cb.class, mm.CallbackMethod); target != nil {
				var respVal value
				if resp.Type == "json" {
					respVal = jsonParse(resp.Body)
				} else {
					ro := vm.newObject("okhttp3.Response")
					ro.resp = resp
					respVal = ro
				}
				if _, err := vm.call(target, []value{cb, respVal}); err != nil {
					return true, nil, err
				}
			}
		}
		return true, nil, nil
	case semmodel.KRespGetEntity, semmodel.KRespBody:
		if recv != nil && recv.resp != nil {
			e := vm.newObject("org.apache.http.HttpEntity")
			e.resp = recv.resp
			return true, e, nil
		}
		return true, nil, nil
	case semmodel.KEntityContent:
		src := recv
		if src == nil || src.resp == nil {
			src = obj(len(args) - 1)
		}
		if src != nil && src.resp != nil {
			return true, src.resp.Body, nil
		}
		return true, "", nil
	case semmodel.KRespGetHeader:
		if recv != nil && recv.resp != nil && len(args) > 1 {
			return true, recv.resp.Headers[str(args[1])], nil
		}
		return true, "", nil

	// ---- JSON -----------------------------------------------------------------------
	case semmodel.KJSONInit:
		if recv != nil {
			recv.jsonMap = map[string]any{}
		}
		return true, nil, nil
	case semmodel.KJSONParse:
		src := args[len(args)-1]
		return true, jsonParse(str(src)), nil
	case semmodel.KJSONPut:
		if recv != nil && recv.jsonMap != nil && len(args) > 2 {
			k := str(args[1])
			if _, dup := recv.jsonMap[k]; !dup {
				recv.jsonOrd = append(recv.jsonOrd, k)
			}
			recv.jsonMap[k] = toJSONValue(args[2])
		}
		return true, args[0], nil
	case semmodel.KJSONGetStr:
		return true, jsonGetString(recv, str(args[1])), nil
	case semmodel.KJSONGetInt:
		if recv != nil && recv.jsonMap != nil {
			if f, ok := recv.jsonMap[str(args[1])].(float64); ok {
				return true, int64(f), nil
			}
		}
		return true, int64(0), nil
	case semmodel.KJSONGetBool:
		if recv != nil && recv.jsonMap != nil {
			if b, ok := recv.jsonMap[str(args[1])].(bool); ok {
				return true, b, nil
			}
		}
		return true, false, nil
	case semmodel.KJSONGetObj:
		if recv != nil && recv.jsonMap != nil {
			if m, ok := recv.jsonMap[str(args[1])].(map[string]any); ok {
				return true, wrapJSON(m), nil
			}
		}
		return true, vm.newObject("org.json.JSONObject"), nil
	case semmodel.KJSONGetArr:
		if recv != nil && recv.jsonMap != nil {
			if a, ok := recv.jsonMap[str(args[1])].([]any); ok {
				o := vm.newObject("org.json.JSONArray")
				o.jsonArr = a
				return true, o, nil
			}
		}
		return true, vm.newObject("org.json.JSONArray"), nil
	case semmodel.KJSONArrGet:
		if recv != nil && recv.jsonArr != nil {
			i, _ := toInt(args[1])
			if i >= 0 && int(i) < len(recv.jsonArr) {
				if m, ok := recv.jsonArr[i].(map[string]any); ok {
					return true, wrapJSON(m), nil
				}
				return true, jsonAnyToValue(recv.jsonArr[i]), nil
			}
		}
		return true, nil, nil
	case semmodel.KJSONArrLen:
		if recv != nil {
			return true, int64(len(recv.jsonArr)), nil
		}
		return true, int64(0), nil
	case semmodel.KJSONToString:
		if recv != nil && recv.jsonMap != nil {
			return true, jsonSerialize(recv), nil
		}
		return true, "null", nil

	// ---- gson / jackson ---------------------------------------------------------------
	case semmodel.KGsonFromJSON:
		if len(args) > 2 {
			return true, vm.gsonFromJSON(str(args[1]), str(args[2])), nil
		}
		return true, nil, nil
	case semmodel.KGsonToJSON:
		if len(args) > 1 {
			if o := obj(1); o != nil {
				return true, vm.gsonToJSON(o), nil
			}
		}
		return true, "null", nil

	// ---- XML ----------------------------------------------------------------------------
	case semmodel.KXMLParse:
		src := args[len(args)-1]
		n, perr := parseXMLDoc(str(src))
		if perr != nil {
			return true, nil, nil
		}
		o := vm.newObject("org.w3c.dom.Document")
		o.xml = n
		return true, o, nil
	case semmodel.KXMLGetTag:
		if recv != nil && recv.xml != nil && len(args) > 1 {
			if found := recv.xml.find(str(args[1])); found != nil {
				o := vm.newObject("org.w3c.dom.Element")
				o.xml = found
				return true, o, nil
			}
		}
		return true, nil, nil
	case semmodel.KXMLGetAttr:
		if recv != nil && recv.xml != nil && len(args) > 1 {
			return true, recv.xml.attrs[str(args[1])], nil
		}
		return true, "", nil
	case semmodel.KXMLGetText:
		if recv != nil && recv.xml != nil {
			return true, strings.TrimSpace(recv.xml.text), nil
		}
		return true, "", nil

	// ---- Containers --------------------------------------------------------------------
	case semmodel.KListInit:
		if recv != nil {
			recv.list = []value{}
		}
		return true, nil, nil
	case semmodel.KListAdd:
		if recv != nil && len(args) > 1 {
			recv.list = append(recv.list, args[1])
		}
		return true, true, nil
	case semmodel.KListGet:
		if recv != nil {
			i, _ := toInt(args[1])
			if i >= 0 && int(i) < len(recv.list) {
				return true, recv.list[i], nil
			}
		}
		return true, nil, nil
	case semmodel.KMapInit, semmodel.KCVInit:
		if recv != nil {
			recv.kv = map[string]value{}
		}
		return true, nil, nil
	case semmodel.KMapPut, semmodel.KCVPut:
		if recv != nil && recv.kv != nil && len(args) > 2 {
			k := str(args[1])
			if _, dup := recv.kv[k]; !dup {
				recv.kvOrd = append(recv.kvOrd, k)
			}
			recv.kv[k] = args[2]
		}
		return true, nil, nil
	case semmodel.KMapGet:
		if recv != nil && recv.kv != nil && len(args) > 1 {
			return true, recv.kv[str(args[1])], nil
		}
		return true, nil, nil

	// ---- Android: resources / database ---------------------------------------------------
	case semmodel.KResGetString:
		if len(args) > 1 {
			return true, vm.Prog.Resources[str(args[1])], nil
		}
		return true, "", nil
	case semmodel.KDBInsert, semmodel.KDBUpdate:
		if len(args) > 2 {
			table := str(args[1])
			if cv := obj(2); cv != nil && cv.kv != nil {
				for _, col := range cv.kvOrd {
					vm.DB[table+"."+col] = cv.kv[col]
				}
			}
		}
		return true, int64(1), nil
	case semmodel.KDBQuery:
		if len(args) > 2 {
			return true, vm.DB[str(args[1])+"."+str(args[2])], nil
		}
		return true, nil, nil

	// ---- Sinks / sources ------------------------------------------------------------------
	case semmodel.KMediaSetSource:
		// Streaming sink: fetch the URI, count the consumption.
		if len(args) > 1 {
			rq := &reqState{method: "GET", uri: str(args[1]), headers: map[string]string{}}
			vm.roundTrip(rq)
			vm.Consumed[mm.Sink]++
		}
		return true, nil, nil
	case semmodel.KFileWrite, semmodel.KUIDisplay:
		vm.Consumed[mm.Sink]++
		return true, nil, nil
	case semmodel.KMicRead:
		return true, "mic-bytes", nil
	case semmodel.KCameraRead:
		return true, "jpeg-bytes", nil
	case semmodel.KLocationGet:
		return true, "37.57", nil
	case semmodel.KDeviceID:
		return true, "IMEI-000111222333", nil

	// ---- Implicit control flow ---------------------------------------------------------------
	case semmodel.KAsyncExecute:
		if recv != nil {
			if dib := vm.Prog.ResolveMethod(recv.class, "doInBackground"); dib != nil {
				ret, err := vm.call(dib, args)
				if err != nil {
					return true, nil, err
				}
				if post := vm.Prog.ResolveMethod(recv.class, "onPostExecute"); post != nil {
					if _, err := vm.call(post, []value{recv, ret}); err != nil {
						return true, nil, err
					}
				}
			}
		}
		return true, nil, nil
	case semmodel.KThreadStart:
		if recv != nil {
			if run := vm.Prog.ResolveMethod(recv.class, "run"); run != nil {
				if _, err := vm.call(run, []value{recv}); err != nil {
					return true, nil, err
				}
			}
		}
		return true, nil, nil
	case semmodel.KTimerSchedule, semmodel.KHandlerPost, semmodel.KFutureSubmit, semmodel.KRxSubscribe:
		if mm.CallbackArg < len(args) {
			if task := obj(mm.CallbackArg); task != nil {
				if run := vm.Prog.ResolveMethod(task.class, mm.CallbackMethod); run != nil {
					if _, err := vm.call(run, []value{task}); err != nil {
						return true, nil, err
					}
				}
			}
		}
		return true, nil, nil
	case semmodel.KIntentSend:
		// Intents are delivered by the event loop (fuzz drivers fire the
		// receiving entry point directly); sending is a no-op here.
		return true, nil, nil
	}
	return false, nil, nil
}

// roundTrip sends a constructed request through the network.
func (vm *VM) roundTrip(rq *reqState) *httpsim.Response {
	headers := map[string]string{}
	for k, v := range rq.headers {
		headers[k] = v
	}
	req := &httpsim.Request{Method: rq.method, URL: rq.uri, Headers: headers, Body: rq.body}
	rq.sent = true
	return vm.Net.RoundTrip(req)
}

// ---- JSON helpers ----

func jsonSerialize(o *object) string {
	var b strings.Builder
	b.WriteString("{")
	for i, k := range o.jsonOrd {
		if i > 0 {
			b.WriteString(",")
		}
		kb, _ := json.Marshal(k)
		b.Write(kb)
		b.WriteString(":")
		vb, _ := json.Marshal(o.jsonMap[k])
		b.Write(vb)
	}
	b.WriteString("}")
	return b.String()
}

func jsonParse(s string) *object {
	var m map[string]any
	o := &object{class: "org.json.JSONObject", fields: map[string]value{}}
	if err := json.Unmarshal([]byte(s), &m); err == nil {
		o.jsonMap = m
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		o.jsonOrd = keys
	} else {
		o.jsonMap = map[string]any{}
	}
	return o
}

func wrapJSON(m map[string]any) *object {
	o := &object{class: "org.json.JSONObject", fields: map[string]value{}, jsonMap: m}
	for k := range m {
		o.jsonOrd = append(o.jsonOrd, k)
	}
	sort.Strings(o.jsonOrd)
	return o
}

func jsonGetString(o *object, key string) string {
	if o == nil || o.jsonMap == nil {
		return ""
	}
	switch t := o.jsonMap[key].(type) {
	case string:
		return t
	case float64:
		return strings.TrimSuffix(strings.TrimSuffix(fmt.Sprintf("%f", t), "000000"), ".")
	case bool:
		return fmt.Sprintf("%v", t)
	default:
		return ""
	}
}

func toJSONValue(v value) any {
	switch t := v.(type) {
	case *object:
		if t.jsonMap != nil {
			var m map[string]any
			_ = json.Unmarshal([]byte(jsonSerialize(t)), &m)
			return m
		}
		if t.list != nil {
			var arr []any
			for _, el := range t.list {
				arr = append(arr, toJSONValue(el))
			}
			return arr
		}
		return str(t)
	case int64:
		return float64(t)
	default:
		return t
	}
}

func jsonAnyToValue(v any) value {
	switch t := v.(type) {
	case string:
		return t
	case float64:
		return int64(t)
	case bool:
		return t
	case map[string]any:
		return wrapJSON(t)
	default:
		return nil
	}
}

// gsonFromJSON deserializes into a typed app object using class fields.
func (vm *VM) gsonFromJSON(body, class string) *object {
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		return vm.newObject(class)
	}
	return vm.bindFields(m, class)
}

func (vm *VM) bindFields(m map[string]any, class string) *object {
	o := vm.newObject(class)
	c := vm.Prog.Class(class)
	if c == nil {
		return o
	}
	for _, f := range c.Fields {
		raw, present := m[f.Name]
		if !present {
			continue
		}
		if sub, isMap := raw.(map[string]any); isMap {
			if fc := vm.Prog.Class(f.Type); fc != nil && !fc.Library {
				o.fields[f.Name] = vm.bindFields(sub, f.Type)
				continue
			}
		}
		o.fields[f.Name] = jsonAnyToValue(raw)
	}
	return o
}

// gsonToJSON serializes a typed app object using its class declaration.
func (vm *VM) gsonToJSON(o *object) string {
	var b strings.Builder
	vm.writeGson(o, &b, 0)
	return b.String()
}

func (vm *VM) writeGson(o *object, b *strings.Builder, depth int) {
	b.WriteString("{")
	c := vm.Prog.Class(o.class)
	first := true
	if c != nil && depth < 6 {
		for _, f := range c.Fields {
			if f.Static {
				continue
			}
			if !first {
				b.WriteString(",")
			}
			first = false
			kb, _ := json.Marshal(f.Name)
			b.Write(kb)
			b.WriteString(":")
			v := o.fields[f.Name]
			if so, isObj := v.(*object); isObj {
				vm.writeGson(so, b, depth+1)
				continue
			}
			vb, _ := json.Marshal(toJSONValue(v))
			b.Write(vb)
		}
	}
	b.WriteString("}")
}

// ---- XML helpers ----

type xmlNode struct {
	tag      string
	attrs    map[string]string
	children []*xmlNode
	text     string
}

func (n *xmlNode) find(tag string) *xmlNode {
	if n.tag == tag {
		return n
	}
	for _, c := range n.children {
		if f := c.find(tag); f != nil {
			return f
		}
	}
	return nil
}

func parseXMLDoc(s string) (*xmlNode, error) {
	dec := xml.NewDecoder(strings.NewReader(s))
	var stack []*xmlNode
	var root *xmlNode
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &xmlNode{tag: t.Name.Local, attrs: map[string]string{}}
			for _, a := range t.Attr {
				n.attrs[a.Name.Local] = a.Value
			}
			if len(stack) > 0 {
				p := stack[len(stack)-1]
				p.children = append(p.children, n)
			} else {
				root = n
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].text += string(t)
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("runtime: not XML")
	}
	return root, nil
}

package intern

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestTableInternLookupRoundTrip(t *testing.T) {
	tab := NewTable(4)
	a := tab.Intern("alpha")
	b := tab.Intern("beta")
	if a == b {
		t.Fatalf("distinct symbols share ID %d", a)
	}
	if got := tab.Intern("alpha"); got != a {
		t.Fatalf("re-intern alpha = %d, want %d", got, a)
	}
	if got, ok := tab.Lookup("beta"); !ok || got != b {
		t.Fatalf("Lookup(beta) = %d,%v want %d,true", got, ok, b)
	}
	if _, ok := tab.Lookup("gamma"); ok {
		t.Fatal("Lookup(gamma) found an uninterned symbol")
	}
	if tab.String(a) != "alpha" || tab.String(b) != "beta" {
		t.Fatalf("String round-trip broken: %q %q", tab.String(a), tab.String(b))
	}
	if tab.String(None) != "" || tab.String(99) != "" {
		t.Fatal("out-of-range String should be empty")
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
}

func TestTableIDsAreDense(t *testing.T) {
	tab := NewTable(0)
	for i := 0; i < 100; i++ {
		if id := tab.Intern(string(rune('a'+i%26)) + string(rune('0'+i/26))); int(id) >= 100 {
			t.Fatalf("ID %d not dense", id)
		}
	}
}

func TestSyncTableConcurrentIntern(t *testing.T) {
	var tab SyncTable
	syms := make([]string, 64)
	for i := range syms {
		syms[i] = "sym" + string(rune('A'+i%26)) + string(rune('a'+i/26))
	}
	var wg sync.WaitGroup
	ids := make([][]uint32, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]uint32, len(syms))
			for i, s := range syms {
				ids[g][i] = tab.Intern(s)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		for i := range syms {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d interned %q as %d, goroutine 0 as %d", g, syms[i], ids[g][i], ids[0][i])
			}
		}
	}
	if tab.Len() != len(syms) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(syms))
	}
	for i, s := range syms {
		if tab.String(ids[0][i]) != s {
			t.Fatalf("String(%d) = %q, want %q", ids[0][i], tab.String(ids[0][i]), s)
		}
	}
}

func TestBitsAgainstMapOracle(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	b := &Bits{}
	oracle := map[uint32]bool{}
	for i := 0; i < 5000; i++ {
		id := uint32(r.Intn(2000))
		switch r.Intn(3) {
		case 0:
			fresh := b.Add(id)
			if fresh == oracle[id] {
				t.Fatalf("Add(%d) fresh=%v, oracle has=%v", id, fresh, oracle[id])
			}
			oracle[id] = true
		case 1:
			if b.Has(id) != oracle[id] {
				t.Fatalf("Has(%d) = %v, oracle %v", id, b.Has(id), oracle[id])
			}
		case 2:
			if b.Count() != len(oracle) {
				t.Fatalf("Count = %d, oracle %d", b.Count(), len(oracle))
			}
		}
	}
	// Each must visit exactly the oracle's members, in increasing order.
	want := make([]uint32, 0, len(oracle))
	for id := range oracle {
		want = append(want, id)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := b.Members()
	if len(got) != len(want) {
		t.Fatalf("Members len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Members[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBitsUnionCloneEqual(t *testing.T) {
	a, b := &Bits{}, &Bits{}
	for _, id := range []uint32{1, 64, 1000} {
		a.Add(id)
	}
	for _, id := range []uint32{2, 64} {
		b.Add(id)
	}
	c := a.Clone()
	c.Union(b)
	for _, id := range []uint32{1, 2, 64, 1000} {
		if !c.Has(id) {
			t.Fatalf("union missing %d", id)
		}
	}
	if c.Count() != 4 {
		t.Fatalf("union count = %d, want 4", c.Count())
	}
	if !a.Has(1000) || a.Has(2) {
		t.Fatal("Clone aliases its source")
	}
	// Equal ignores backing capacity.
	small, big := &Bits{}, NewBits(4096)
	small.Add(3)
	big.Add(3)
	if !small.Equal(big) || !big.Equal(small) {
		t.Fatal("Equal sensitive to capacity")
	}
	big.Add(900)
	if small.Equal(big) {
		t.Fatal("Equal missed a high member")
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects missed shared 64")
	}
	solo := &Bits{}
	solo.Add(7)
	if solo.Intersects(b) {
		t.Fatal("Intersects false positive")
	}
}

func TestBitsNilSafety(t *testing.T) {
	var b *Bits
	if b.Has(0) || b.Count() != 0 || !b.Empty() {
		t.Fatal("nil Bits should behave as the empty set")
	}
	b.Each(func(uint32) bool { t.Fatal("nil Bits iterated"); return false })
	if c := b.Clone(); c == nil || !c.Empty() {
		t.Fatal("nil Clone should return an empty set")
	}
	var o *Bits
	if !b.Equal(o) {
		t.Fatal("nil sets should be equal")
	}
	live := &Bits{}
	live.Union(nil) // must not panic
	if !live.Empty() {
		t.Fatal("Union(nil) changed the set")
	}
}

func TestBitsEachEarlyStop(t *testing.T) {
	b := &Bits{}
	for i := uint32(0); i < 200; i += 3 {
		b.Add(i)
	}
	seen := 0
	b.Each(func(uint32) bool { seen++; return seen < 5 })
	if seen != 5 {
		t.Fatalf("early stop visited %d, want 5", seen)
	}
}

func TestSortedStrings(t *testing.T) {
	var tab SyncTable
	ids := []uint32{tab.Intern("zeta"), tab.Intern("alpha"), tab.Intern("mid")}
	b := &Bits{}
	for _, id := range ids {
		b.Add(id)
	}
	b.Add(999) // unknown to the table: dropped
	got := SortedStrings(b, &tab)
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("SortedStrings = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedStrings = %v, want %v", got, want)
		}
	}
	if SortedStrings(nil, &tab) != nil {
		t.Fatal("nil set should resolve to nil")
	}
}

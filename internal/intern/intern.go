// Package intern provides the symbol-interning and dense-set primitives
// behind the analysis hot path: append-only string⇄uint32 tables (a
// single-threaded Table for build-once program indexes, a SyncTable for
// strings discovered concurrently during analysis) and a compact Bits set
// over dense IDs that replaces map[string]bool in the slicing and taint
// fixpoints.
//
// Concurrency contract: a Table is built once (decode/index time) and is
// read-only afterwards, so any number of worker goroutines may resolve IDs
// without synchronization. A SyncTable serializes interning behind a
// mutex but serves lookups lock-free on an atomically swapped read view is
// NOT attempted here — reads take an RLock; the hot loops intern only at
// summary-build time (cold), never per fact, so the lock is off the fast
// path. Bits values are not synchronized: each worker owns its sets and
// merges happen single-threaded at phase boundaries.
package intern

import (
	"math/bits"
	"sort"
	"sync"
)

// None is the sentinel "no ID" value. Valid IDs are dense from 0, so the
// maximum uint32 can never collide with a real symbol in any program small
// enough to decode.
const None = ^uint32(0)

// Table is an append-only string⇄uint32 interner. Zero value is not ready;
// use NewTable. Not safe for concurrent interning — build it fully before
// sharing (see the package comment).
type Table struct {
	ids  map[string]uint32
	strs []string
}

// NewTable returns an empty table with room for n symbols.
func NewTable(n int) *Table {
	return &Table{ids: make(map[string]uint32, n), strs: make([]string, 0, n)}
}

// Intern returns s's ID, assigning the next dense ID on first sight.
func (t *Table) Intern(s string) uint32 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := uint32(len(t.strs))
	t.ids[s] = id
	t.strs = append(t.strs, s)
	return id
}

// Lookup returns s's ID without interning. The second result is false when
// s has never been interned.
func (t *Table) Lookup(s string) (uint32, bool) {
	id, ok := t.ids[s]
	return id, ok
}

// String resolves an ID back to its symbol. Resolving None or an
// out-of-range ID returns "".
func (t *Table) String(id uint32) string {
	if id == None || int(id) >= len(t.strs) {
		return ""
	}
	return t.strs[id]
}

// Len returns the number of interned symbols.
func (t *Table) Len() int { return len(t.strs) }

// SyncTable is a mutex-protected interner for symbols discovered during
// analysis (heap locations, source/sink tags). Zero value is ready.
type SyncTable struct {
	mu   sync.RWMutex
	ids  map[string]uint32
	strs []string
}

// Intern returns s's ID, assigning the next dense ID on first sight. Safe
// for concurrent use.
func (t *SyncTable) Intern(s string) uint32 {
	t.mu.RLock()
	id, ok := t.ids[s]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[s]; ok {
		return id
	}
	if t.ids == nil {
		t.ids = map[string]uint32{}
	}
	id = uint32(len(t.strs))
	t.ids[s] = id
	t.strs = append(t.strs, s)
	return id
}

// String resolves an ID back to its symbol ("" for None/out of range).
// Safe for concurrent use with Intern: IDs are never reassigned, and the
// backing array is only appended to under the lock.
func (t *SyncTable) String(id uint32) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id == None || int(id) >= len(t.strs) {
		return ""
	}
	return t.strs[id]
}

// Len returns the number of interned symbols.
func (t *SyncTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.strs)
}

// Bits is a dense bitset over uint32 IDs: one allocation per ~64 members,
// no hashing, and iteration in increasing ID order — which is program
// order for statement IDs, so every consumer that used to sort string keys
// gets determinism for free.
type Bits struct {
	words []uint64
}

// NewBits returns a set with capacity reserved for IDs in [0, n). The
// visible word slice stays compact — its length tracks the highest member,
// not the reservation — so two sets holding the same IDs are structurally
// identical regardless of how they were built (reflect.DeepEqual-safe).
func NewBits(n int) *Bits {
	return &Bits{words: make([]uint64, 0, (n+63)/64)}
}

// grow ensures the word backing covers id, doubling capacity so repeated
// single-bit growth stays amortized O(1) per word.
func (b *Bits) grow(id uint32) {
	w := int(id >> 6)
	if w < len(b.words) {
		return
	}
	if w < cap(b.words) {
		b.words = b.words[:w+1]
		return
	}
	c := 2 * cap(b.words)
	if c < w+1 {
		c = w + 1
	}
	nw := make([]uint64, w+1, c)
	copy(nw, b.words)
	b.words = nw
}

// Add sets id, growing as needed, and reports whether it was newly set.
func (b *Bits) Add(id uint32) bool {
	b.grow(id)
	w, mask := id>>6, uint64(1)<<(id&63)
	if b.words[w]&mask != 0 {
		return false
	}
	b.words[w] |= mask
	return true
}

// Has reports whether id is set. Safe on a nil receiver (empty set).
func (b *Bits) Has(id uint32) bool {
	if b == nil {
		return false
	}
	w := int(id >> 6)
	return w < len(b.words) && b.words[w]&(1<<(id&63)) != 0
}

// Count returns the number of set IDs. Safe on a nil receiver.
func (b *Bits) Count() int {
	if b == nil {
		return 0
	}
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no ID is set. Safe on a nil receiver.
func (b *Bits) Empty() bool {
	if b == nil {
		return true
	}
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Union adds every member of o. Safe when o is nil.
func (b *Bits) Union(o *Bits) {
	if o == nil || len(o.words) == 0 {
		return
	}
	if n := len(o.words); n > len(b.words) {
		b.grow(uint32(n*64 - 1))
	}
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// Intersects reports whether b and o share any member. Safe on nil
// receivers and arguments.
func (b *Bits) Intersects(o *Bits) bool {
	if b == nil || o == nil {
		return false
	}
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if b.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Clone returns an independent copy. Safe on a nil receiver.
func (b *Bits) Clone() *Bits {
	if b == nil {
		return &Bits{}
	}
	return &Bits{words: append([]uint64(nil), b.words...)}
}

// Equal reports whether b and o contain exactly the same IDs, regardless
// of backing capacity. Safe on nil receivers.
func (b *Bits) Equal(o *Bits) bool {
	var bw, ow []uint64
	if b != nil {
		bw = b.words
	}
	if o != nil {
		ow = o.words
	}
	long, short := bw, ow
	if len(ow) > len(bw) {
		long, short = ow, bw
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Each calls f for every set ID in increasing order; f returning false
// stops the walk. Safe on a nil receiver.
func (b *Bits) Each(f func(id uint32) bool) {
	if b == nil {
		return
	}
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !f(uint32(wi*64 + tz)) {
				return
			}
			w &= w - 1
		}
	}
}

// Members returns the set IDs in increasing order.
func (b *Bits) Members() []uint32 {
	out := make([]uint32, 0, b.Count())
	b.Each(func(id uint32) bool { out = append(out, id); return true })
	return out
}

// SortedStrings resolves the set through tab and returns the symbols
// sorted lexicographically — the canonical string view at the report
// boundary. IDs unknown to tab resolve to "" and are dropped.
func SortedStrings(b *Bits, tab *SyncTable) []string {
	if b == nil {
		return nil
	}
	out := make([]string, 0, b.Count())
	b.Each(func(id uint32) bool {
		if s := tab.String(id); s != "" {
			out = append(out, s)
		}
		return true
	})
	sort.Strings(out)
	return out
}

package corpus

import "fmt"

// Seeded generative corpus: Rand derives arbitrarily many synthetic
// AppSpecs from a single uint64 seed. Every trait — transaction counts per
// verb, body/response key shapes, library, protocol, gating, obfuscation,
// scenario mix, StoreField/UseField chains — is drawn from a splitmix64
// stream, so the same seed reproduces byte-identical programs on any
// platform, while different seeds fan out across the trait space. The
// differential-testing harness (internal/evaluate) runs these corpora
// through every equivalence axis at scale.

// ScenarioNames lists the protocol scenarios the generator can draw.
var ScenarioNames = []string{"gzip", "chunked", "multipart", "cookie", "token", "paginate", "longpoll"}

// RandSpecs derives n reproducible synthetic AppSpecs from seed.
func RandSpecs(seed uint64, n int) []AppSpec {
	out := make([]AppSpec, 0, n)
	for i := 0; i < n; i++ {
		// Decorrelate apps: jump the stream by a golden-ratio multiple per
		// index, then mix a few steps.
		r := &rng{state: seed + uint64(i)*0x9E3779B97F4A7C15}
		r.next()
		r.next()
		out = append(out, randSpec(r, seed, i))
	}
	return out
}

// Rand generates the n-app corpus for seed.
func Rand(seed uint64, n int) []*App {
	specs := RandSpecs(seed, n)
	apps := make([]*App, len(specs))
	for i, s := range specs {
		apps[i] = Generate(s)
	}
	return apps
}

// randSpec draws one spec's traits.
func randSpec(r *rng, seed uint64, i int) AppSpec {
	spec := AppSpec{
		Name:    fmt.Sprintf("gen-%d-%04d", seed, i),
		Package: fmt.Sprintf("gen%d.app%04d", seed, i),
		Host:    fmt.Sprintf("api.app%04d.g%d.example.com", i, seed),
	}

	switch r.intn(10) {
	case 0, 1, 2:
		spec.Protocol = "HTTP"
	case 3:
		spec.Protocol = "HTTP(S)"
	default:
		spec.Protocol = "HTTPS"
	}
	spec.Library = []string{"apache", "urlconn", "okhttp", "volley"}[r.intn(4)]
	spec.OpenSource = r.intn(5) == 0
	spec.Gated = r.intn(10) == 0
	spec.Obfuscated = r.intn(7) == 0

	// Transaction counts per verb. E==M keeps every flow statically and
	// manually visible; occasionally the columns diverge so intent-triggered
	// (missed statically) and timer/push (missed manually) traits appear.
	spec.Counts = map[string]MethodCounts{}
	verbCount := func(base int) MethodCounts {
		e := 1 + r.intn(base)
		m := e
		switch r.intn(5) {
		case 0:
			m = e + 1 // one intent-triggered transaction
		case 1:
			if e > 1 {
				m = e - 1 // one timer/push-triggered transaction
			}
		}
		return MethodCounts{E: e, M: m, A: min(e, m)}
	}
	spec.Counts["GET"] = verbCount(3)
	if r.intn(10) < 7 {
		spec.Counts["POST"] = verbCount(2)
	}
	if r.intn(4) == 0 {
		spec.Counts["PUT"] = MethodCounts{E: 1, M: 1, A: 1}
	}
	if r.intn(5) == 0 {
		spec.Counts["DELETE"] = MethodCounts{E: 1, M: 1, A: 1}
	}

	// Map range is safe here and nowhere else in the generation path: a
	// commutative sum is iteration-order independent, so the rng stream
	// stays platform-deterministic.
	total := 0
	for _, c := range spec.Counts {
		total += c.Total()
	}
	spec.QueryBodies = r.intn(3)
	spec.JSONBodies = r.intn(3)
	spec.XMLBodies = r.intn(2)
	spec.Pairs = r.intn(total + 1)
	spec.Ballast = 5 + r.intn(12)

	// Scenario mix: up to three distinct scenarios per app.
	for _, sc := range ScenarioNames {
		if len(spec.Scenarios) < 3 && r.intn(100) < 30 {
			spec.Scenarios = append(spec.Scenarios, sc)
		}
	}
	return spec
}

// DecodeSpec clamps arbitrary bytes into a valid AppSpec; it is the
// spec-decoder behind FuzzCorpusSpec, mapping any input to a generatable
// app. The byte stream drives the same trait choices randSpec makes.
func DecodeSpec(data []byte) AppSpec {
	at := func(i int) int {
		if len(data) == 0 {
			return 0
		}
		return int(data[i%len(data)])
	}
	// Fold the bytes into a stream seed so key vocabulary picks vary too.
	var h uint64 = 1469598103934665603
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}

	spec := AppSpec{
		Name:    "fuzz-app",
		Package: fmt.Sprintf("fuzz.app%x", h&0xffff),
		Host:    "api.fuzz.example.com",
	}
	spec.Protocol = []string{"HTTP", "HTTPS", "HTTP(S)"}[at(0)%3]
	spec.Library = []string{"apache", "urlconn", "okhttp", "volley"}[at(1)%4]
	spec.OpenSource = at(2)%2 == 0
	spec.Gated = at(3)%4 == 0
	spec.Obfuscated = at(4)%4 == 0

	spec.Counts = map[string]MethodCounts{}
	verbs := []string{"GET", "POST", "PUT", "DELETE"}
	for vi, v := range verbs {
		b := at(5 + vi)
		if vi > 0 && b%3 == 0 {
			continue
		}
		e := 1 + b%3
		m := e + (at(9+vi)%3 - 1)
		if m < 0 {
			m = 0
		}
		if m > 4 {
			m = 4
		}
		spec.Counts[v] = MethodCounts{E: e, M: m, A: min(e, m)}
	}
	spec.QueryBodies = at(13) % 4
	spec.JSONBodies = at(14) % 4
	spec.XMLBodies = at(15) % 3
	spec.Pairs = at(16) % 8
	spec.Ballast = 3 + at(17)%8
	mask := at(18)
	for si, sc := range ScenarioNames {
		if mask&(1<<si) != 0 && len(spec.Scenarios) < 3 {
			spec.Scenarios = append(spec.Scenarios, sc)
		}
	}
	return spec
}

package corpus

import (
	"fmt"
	"strings"

	"extractocol/internal/httpsim"
	"extractocol/internal/ir"
)

// RadioReddit builds the Table 3 case study: an online music streaming
// client with six transactions —
//
//	#1 GET  http://www.reddit.com/api/info.json?
//	#2 GET  http://www.radioreddit.com/<station>/status.json
//	#3 POST https://ssl.reddit.com/api/login        (user/passwd/api_type)
//	#4 POST http://www.reddit.com/api/(unsave|save) (id/uh + Cookie header)
//	#5 POST http://www.reddit.com/api/vote          (id/dir/uh + Cookie)
//	#6 GET  (.*)                                    (relay URI -> MediaPlayer)
//
// Login's response carries modhash and cookie; the modhash value feeds the
// "uh" field of #4/#5 and the cookie value their Cookie headers — the
// dependency graph of Table 3.
func RadioReddit() *App {
	p := ir.NewProgram("com.radioreddit.android")
	p.Manifest.AppName = "radio reddit"
	api := p.AddClass(&ir.Class{Name: "com.radioreddit.android.Api", Fields: []*ir.Field{
		{Name: "modhash", Type: "java.lang.String", Static: true},
		{Name: "cookie", Type: "java.lang.String", Static: true},
		{Name: "relayURI", Type: "java.lang.String", Static: true},
	}})

	emitRRInfo(p, api)
	emitRRStatus(p, api)
	emitRRLogin(p, api)
	emitRRSaveUnsave(p, api)
	emitRRVote(p, api)
	emitBallast(p, api, 60, newRng("rr/ballast"))
	// #6 (the media fetch) happens inside #2's handler via MediaPlayer.

	truth := Truth{
		ByMethod:    map[string]int{"GET": 3, "POST": 3},
		StaticVis:   map[string]int{"GET": 3, "POST": 3},
		ManualVis:   map[string]int{"GET": 3, "POST": 3},
		AutoVis:     map[string]int{"GET": 3, "POST": 0}, // no credentials: votes are rejected
		QueryBodies: 3, JSONBodies: 4, Pairs: 4,
	}

	spec := AppSpec{
		Name: "radio reddit", Package: "com.radioreddit.android",
		Host: "www.radioreddit.com", OpenSource: true, Protocol: "HTTP(S)",
		Library: "apache", Handwritten: true,
		Counts: map[string]MethodCounts{
			"GET":  {E: 3, M: 3, A: 3},
			"POST": {E: 3, M: 3, A: 3},
		},
		QueryBodies: 3, JSONBodies: 4, Pairs: 4,
	}
	return &App{Spec: spec, Prog: p, NewNetwork: newRRNetwork, Truth: truth}
}

func rrExecute(b *ir.B, req int) int {
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial("org.apache.http.impl.client.DefaultHttpClient.<init>", cl)
	resp := b.Invoke("org.apache.http.client.HttpClient.execute", cl, req)
	ent := b.Invoke("org.apache.http.HttpResponse.getEntity", resp)
	return b.InvokeStatic("org.apache.http.util.EntityUtils.toString", ent)
}

// rrDiscard performs the exchange without reading the response body.
func rrDiscard(b *ir.B, req int) {
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial("org.apache.http.impl.client.DefaultHttpClient.<init>", cl)
	b.Invoke("org.apache.http.client.HttpClient.execute", cl, req)
}

func emitRRInfo(p *ir.Program, api *ir.Class) {
	b := ir.NewMethod(api, "onRefreshInfo", false, nil, "void")
	u := b.ConstStr("http://www.reddit.com/api/info.json?")
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial("org.apache.http.client.methods.HttpGet.<init>", req, u)
	raw := rrExecute(b, req)
	js := b.InvokeStatic("org.json.JSONObject.parse", raw)
	kKind := b.ConstStr("kind")
	b.Invoke("org.json.JSONObject.getString", js, kKind)
	kData := b.ConstStr("data")
	b.Invoke("org.json.JSONObject.getJSONObject", js, kData)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = append(p.Manifest.EntryPoints, ir.EntryPoint{
		Method: api.Name + ".onRefreshInfo", Kind: ir.EventCreate, Label: "info",
	})
}

func emitRRStatus(p *ir.Program, api *ir.Class) {
	b := ir.NewMethod(api, "onSelectStation", false, []string{"java.lang.String"}, "void")
	station := b.Param(0)
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial("java.lang.StringBuilder.<init>", sb)
	s1 := b.ConstStr("http://www.radioreddit.com/api/")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, s1)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, station)
	s2 := b.ConstStr("/status.json")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, s2)
	uri := b.Invoke("java.lang.StringBuilder.toString", sb)
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial("org.apache.http.client.methods.HttpGet.<init>", req, uri)
	raw := rrExecute(b, req)

	js := b.InvokeStatic("org.json.JSONObject.parse", raw)
	for _, key := range []string{"all_listeners", "listeners", "online", "playlist"} {
		k := b.ConstStr(key)
		b.Invoke("org.json.JSONObject.getString", js, k)
	}
	kRelay := b.ConstStr("relay")
	relay := b.Invoke("org.json.JSONObject.getString", js, kRelay)
	b.StaticPut(api.Name+".relayURI", relay)
	kSongs := b.ConstStr("songs")
	songs := b.Invoke("org.json.JSONObject.getJSONObject", js, kSongs)
	kSong := b.ConstStr("song")
	arr := b.Invoke("org.json.JSONObject.getJSONArray", songs, kSong)
	zero := b.ConstInt(0)
	song := b.Invoke("org.json.JSONArray.getJSONObject", arr, zero)
	// 11 of the 13 song keys; "album" and "score" are never inspected,
	// reproducing the 16-of-18-keyword observation on Fig. 8.
	for _, key := range []string{
		"artist", "title", "genre", "id", "preview_url", "download_url",
		"reddit_title", "reddit_url", "redditor",
	} {
		k := b.ConstStr(key)
		b.Invoke("org.json.JSONObject.getString", song, k)
	}

	// #6: stream the relay into the media player.
	mp := b.New("android.media.MediaPlayer")
	b.InvokeVoid("android.media.MediaPlayer.setDataSource", mp, relay)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = append(p.Manifest.EntryPoints, ir.EntryPoint{
		Method: api.Name + ".onSelectStation", Kind: ir.EventClick, Label: "station",
	})
}

func emitRRLogin(p *ir.Program, api *ir.Class) {
	b := ir.NewMethod(api, "onLogin", false, []string{"java.lang.String", "java.lang.String"}, "void")
	user, pass := b.Param(0), b.Param(1)
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial("java.lang.StringBuilder.<init>", sb)
	s1 := b.ConstStr("user=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, s1)
	encU := b.InvokeStatic("java.net.URLEncoder.encode", user)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, encU)
	s2 := b.ConstStr("&passwd=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, s2)
	encP := b.InvokeStatic("java.net.URLEncoder.encode", pass)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, encP)
	s3 := b.ConstStr("&api_type=json")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, s3)
	body := b.Invoke("java.lang.StringBuilder.toString", sb)
	ent := b.New("org.apache.http.entity.StringEntity")
	b.InvokeSpecial("org.apache.http.entity.StringEntity.<init>", ent, body)

	u := b.ConstStr("https://ssl.reddit.com/api/login")
	req := b.New("org.apache.http.client.methods.HttpPost")
	b.InvokeSpecial("org.apache.http.client.methods.HttpPost.<init>", req, u)
	b.InvokeVoid("org.apache.http.client.methods.HttpPost.setEntity", req, ent)
	raw := rrExecute(b, req)

	js := b.InvokeStatic("org.json.JSONObject.parse", raw)
	kM := b.ConstStr("modhash")
	mh := b.Invoke("org.json.JSONObject.getString", js, kM)
	b.StaticPut(api.Name+".modhash", mh)
	kC := b.ConstStr("cookie")
	ck := b.Invoke("org.json.JSONObject.getString", js, kC)
	b.StaticPut(api.Name+".cookie", ck)
	kH := b.ConstStr("need_https")
	b.Invoke("org.json.JSONObject.getBoolean", js, kH)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = append(p.Manifest.EntryPoints, ir.EntryPoint{
		Method: api.Name + ".onLogin", Kind: ir.EventLogin, Label: "login",
	})
}

// emitRRSaveUnsave emits transaction #4 with the (unsave | save) URI
// disjunction of Table 3.
func emitRRSaveUnsave(p *ir.Program, api *ir.Class) {
	b := ir.NewMethod(api, "onSave", false, []string{"java.lang.String", "int"}, "void")
	id, mode := b.Param(0), b.Param(1)
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial("java.lang.StringBuilder.<init>", sb)
	base := b.ConstStr("http://www.reddit.com/api/")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, base)
	b.IfZ(mode, "unsave")
	sv := b.ConstStr("save")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, sv)
	b.Goto("built")
	b.Label("unsave")
	us := b.ConstStr("unsave")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, us)
	b.Label("built")
	uri := b.Invoke("java.lang.StringBuilder.toString", sb)

	body := rrAuthBody(b, api, id, ir.NoReg)
	ent := b.New("org.apache.http.entity.StringEntity")
	b.InvokeSpecial("org.apache.http.entity.StringEntity.<init>", ent, body)
	req := b.New("org.apache.http.client.methods.HttpPost")
	b.InvokeSpecial("org.apache.http.client.methods.HttpPost.<init>", req, uri)
	b.InvokeVoid("org.apache.http.client.methods.HttpPost.setEntity", req, ent)
	rrCookieHeader(b, api, req)
	rrDiscard(b, req)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = append(p.Manifest.EntryPoints, ir.EntryPoint{
		Method: api.Name + ".onSave", Kind: ir.EventClick, Label: "save",
	})
}

func emitRRVote(p *ir.Program, api *ir.Class) {
	b := ir.NewMethod(api, "onVote", false, []string{"java.lang.String", "java.lang.String"}, "void")
	id, dir := b.Param(0), b.Param(1)
	u := b.ConstStr("http://www.reddit.com/api/vote")
	body := rrAuthBody(b, api, id, dir)
	ent := b.New("org.apache.http.entity.StringEntity")
	b.InvokeSpecial("org.apache.http.entity.StringEntity.<init>", ent, body)
	req := b.New("org.apache.http.client.methods.HttpPost")
	b.InvokeSpecial("org.apache.http.client.methods.HttpPost.<init>", req, u)
	b.InvokeVoid("org.apache.http.client.methods.HttpPost.setEntity", req, ent)
	rrCookieHeader(b, api, req)
	raw := rrExecute(b, req)
	js := b.InvokeStatic("org.json.JSONObject.parse", raw)
	kOK := b.ConstStr("success")
	b.Invoke("org.json.JSONObject.getBoolean", js, kOK)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = append(p.Manifest.EntryPoints, ir.EntryPoint{
		Method: api.Name + ".onVote", Kind: ir.EventClick, Label: "vote",
	})
}

// rrAuthBody builds "id=<id>[&dir=<dir>]&uh=<modhash>". Pass ir.NoReg as
// dirReg to omit the dir field.
func rrAuthBody(b *ir.B, api *ir.Class, idReg, dirReg int) int {
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial("java.lang.StringBuilder.<init>", sb)
	p1 := b.ConstStr("id=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, p1)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, idReg)
	if dirReg != ir.NoReg {
		d := b.ConstStr("&dir=")
		b.InvokeVoid("java.lang.StringBuilder.append", sb, d)
		b.InvokeVoid("java.lang.StringBuilder.append", sb, dirReg)
	}
	uh := b.ConstStr("&uh=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, uh)
	mh := b.StaticGet(api.Name + ".modhash")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, mh)
	return b.Invoke("java.lang.StringBuilder.toString", sb)
}

func rrCookieHeader(b *ir.B, api *ir.Class, req int) {
	hk := b.ConstStr("Cookie")
	hv := b.StaticGet(api.Name + ".cookie")
	b.InvokeVoid("org.apache.http.client.methods.HttpPost.addHeader", req, hk, hv)
}

// newRRNetwork builds radio reddit's three backends with real session
// state: login issues a modhash the vote/save endpoints verify.
func newRRNetwork() *httpsim.Network {
	n := httpsim.NewNetwork()

	issued := "f0f0f0modhash"
	cookieVal := "reddit_session=abc123"

	www := httpsim.NewServer("www.reddit.com")
	www.Handle("GET", "/api/info.json", func(r *httpsim.Request) *httpsim.Response {
		return httpsim.JSON(`{"kind":"Listing","data":{"children":[]}}`)
	})
	authed := func(r *httpsim.Request) *httpsim.Response {
		if !strings.Contains(r.Body, "uh="+issued) {
			return httpsim.Error(403, "bad modhash")
		}
		if r.Headers["Cookie"] != cookieVal {
			return httpsim.Error(403, "bad cookie")
		}
		return httpsim.JSON(`{"success":true}`)
	}
	www.Handle("POST", "/api/save", authed)
	www.Handle("POST", "/api/unsave", authed)
	www.Handle("POST", "/api/vote", authed)
	n.Register(www)

	ssl := httpsim.NewServer("ssl.reddit.com")
	ssl.Handle("POST", "/api/login", func(r *httpsim.Request) *httpsim.Response {
		if !strings.Contains(r.Body, "user=") || !strings.Contains(r.Body, "passwd=") {
			return httpsim.Error(400, "missing credentials")
		}
		return httpsim.JSON(fmt.Sprintf(`{"modhash":%q,"cookie":%q,"need_https":true}`, issued, cookieVal))
	})
	n.Register(ssl)

	radio := httpsim.NewServer("www.radioreddit.com")
	radio.HandlePrefix("GET", "/api/", func(r *httpsim.Request) *httpsim.Response {
		return httpsim.JSON(`{"all_listeners":"99999","listeners":"13586","online":"TRUE",` +
			`"playlist":"hiphop","relay":"http://cdn.audiopump.example/radioreddit/hiphop_mp3_128k",` +
			`"songs":{"song":[{"album":"","artist":"stirus","download_url":"http://dl.example/837",` +
			`"genre":"HipHop","id":"837","preview_url":"http://pv.example/837",` +
			`"reddit_title":"stirus - Surviving Minds","reddit_url":"http://r.example/837",` +
			`"redditor":"sonus","score":"6","title":"Surviving Minds"}]}}`)
	})
	n.Register(radio)

	cdn := httpsim.NewServer("cdn.audiopump.example")
	cdn.HandlePrefix("GET", "/", func(r *httpsim.Request) *httpsim.Response {
		return httpsim.Binary("MP3STREAMBYTES")
	})
	n.Register(cdn)
	return n
}

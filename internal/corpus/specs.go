package corpus

// Specs returns the 30 generated corpus applications, one per Table 1 row
// except the four hand-written case-study apps (Diode, radio reddit, TED,
// Kayak). Each MethodCounts cell carries the paper's triple: for
// open-source apps {Extractocol, manual fuzzing, source-code analysis};
// for closed-source apps {Extractocol, manual fuzzing, automatic fuzzing}.
//
// Two of the paper's open-source cells report a source-code count *below*
// what both Extractocol and manual fuzzing found (qBittorrent GET 3/3/2 and
// POST 13/13/2); that is an artifact of the authors' human source
// inspection and is not reproducible from a generative corpus, so those
// cells use the self-consistent value. The deviation is recorded in
// EXPERIMENTS.md.
func Specs() []AppSpec {
	g := func(e, m, a int) MethodCounts { return MethodCounts{E: e, M: m, A: a} }

	return []AppSpec{
		// ---- open-source (F-Droid) -----------------------------------------
		{
			Name: "Adblock Plus", Package: "org.adblockplus.android",
			Host: "adblockplus.org", OpenSource: true, Protocol: "HTTPS",
			Counts:      map[string]MethodCounts{"GET": g(2, 2, 2), "POST": g(1, 1, 1)},
			QueryBodies: 1, XMLBodies: 1, Pairs: 1, Library: "urlconn",
		},
		{
			Name: "AnarXiv", Package: "org.anarxiv",
			Host: "export.arxiv.org", OpenSource: true, Protocol: "HTTP",
			Counts:    map[string]MethodCounts{"GET": g(2, 2, 2)},
			XMLBodies: 2, Pairs: 2, Library: "urlconn",
		},
		{
			Name: "blippex", Package: "com.blippex.app",
			Host: "api.blippex.org", OpenSource: true, Protocol: "HTTPS",
			Counts:     map[string]MethodCounts{"GET": g(1, 1, 1)},
			JSONBodies: 1, Pairs: 1, Library: "apache",
		},
		{
			Name: "Diaspora WebClient", Package: "de.baumann.diaspora",
			Host: "pod.diaspora.example", OpenSource: true, Protocol: "HTTP",
			Counts:     map[string]MethodCounts{"GET": g(1, 1, 1)},
			JSONBodies: 1, Pairs: 1, Library: "apache",
		},
		{
			Name: "iFixIt", Package: "com.dozuki.ifixit",
			Host: "www.ifixit.example", OpenSource: true, Protocol: "HTTP",
			Counts:      map[string]MethodCounts{"GET": g(15, 15, 15), "POST": g(7, 7, 7)},
			QueryBodies: 3, JSONBodies: 14, Pairs: 14, Library: "apache",
		},
		{
			Name: "Lightning", Package: "acr.browser.lightning",
			Host: "lightning.example", OpenSource: true, Protocol: "HTTP(S)",
			Counts:    map[string]MethodCounts{"GET": g(2, 2, 2)},
			XMLBodies: 1, Pairs: 1, Library: "urlconn",
		},
		{
			Name: "qBittorrent", Package: "com.qbittorrent.client",
			Host: "qbt.local.example", OpenSource: true, Protocol: "HTTP",
			Counts:      map[string]MethodCounts{"GET": g(3, 3, 3), "POST": g(13, 13, 13)},
			QueryBodies: 13, JSONBodies: 3, Pairs: 3, Library: "apache",
		},
		{
			Name: "Reddinator", Package: "au.com.wallaceit.reddinator",
			Host: "www.reddit.example", OpenSource: true, Protocol: "HTTP(S)",
			Counts:     map[string]MethodCounts{"GET": g(3, 3, 3), "POST": g(3, 3, 3)},
			JSONBodies: 6, Pairs: 6, Library: "apache",
		},
		{
			Name: "Twister", Package: "com.twister.android",
			Host: "twister.example", OpenSource: true, Protocol: "HTTP",
			Counts:      map[string]MethodCounts{"POST": g(11, 11, 11)},
			QueryBodies: 11, JSONBodies: 8, Pairs: 8, Library: "apache",
		},
		{
			Name: "TZM", Package: "org.tzm.android",
			Host: "www.thezeitgeistmovement.example", OpenSource: true, Protocol: "HTTPS",
			Counts:     map[string]MethodCounts{"GET": g(2, 2, 2)},
			JSONBodies: 1, Pairs: 1, Library: "apache",
		},
		{
			Name: "Wallabag", Package: "fr.gaulupeau.apps.InThePoche",
			Host: "wallabag.example", OpenSource: true, Protocol: "HTTP",
			Counts:    map[string]MethodCounts{"GET": g(1, 1, 1)},
			XMLBodies: 1, Pairs: 1, Library: "apache",
		},

		// ---- closed-source (Google Play top apps) ---------------------------
		{
			Name: "5miles", Package: "com.thirdrock.fivemiles",
			Host: "api.5milesapp.example", Protocol: "HTTPS", Gated: true,
			Counts:      map[string]MethodCounts{"GET": g(24, 25, 0), "POST": g(51, 12, 0)},
			QueryBodies: 16, JSONBodies: 16, Pairs: 71, Library: "okhttp",
		},
		{
			Name: "AC App for Android", Package: "com.acapp.android",
			Host: "api.acapp.example", Protocol: "HTTP(S)",
			Counts:      map[string]MethodCounts{"GET": g(9, 9, 7), "POST": g(15, 15, 5)},
			QueryBodies: 15, JSONBodies: 23, Pairs: 23, Library: "apache",
		},
		{
			Name: "AOL: Mail, News & Video", Package: "com.aol.mobile.aolapp",
			Host: "api.aol.example", Protocol: "HTTP",
			Counts:     map[string]MethodCounts{"GET": g(9, 9, 6)},
			JSONBodies: 9, Pairs: 9, Library: "apache",
		},
		{
			Name: "AccuWeather", Package: "com.accuweather.android",
			Host: "api.accuweather.example", Protocol: "HTTP", Gated: true,
			Counts:      map[string]MethodCounts{"GET": g(15, 15, 0), "POST": g(3, 3, 0)},
			QueryBodies: 3, JSONBodies: 16, Pairs: 16, Library: "urlconn",
		},
		{
			Name: "Buzzfeed", Package: "com.buzzfeed.android",
			Host: "api.buzzfeed.example", Protocol: "HTTP(S)",
			Counts:      map[string]MethodCounts{"GET": g(16, 5, 5), "POST": g(12, 5, 1)},
			QueryBodies: 12, JSONBodies: 6, Pairs: 27, Library: "apache",
		},
		{
			Name: "Flipboard", Package: "flipboard.app",
			Host: "fbprod.flipboard.example", Protocol: "HTTPS", Gated: true,
			Counts:      map[string]MethodCounts{"GET": g(23, 24, 0), "POST": g(41, 13, 0)},
			QueryBodies: 28, JSONBodies: 8, Pairs: 63, Library: "okhttp",
		},
		{
			Name: "GEEK", Package: "com.contextlogic.geek",
			Host: "api.geek.example", Protocol: "HTTPS",
			Counts:      map[string]MethodCounts{"GET": g(0, 1, 0), "POST": g(97, 48, 18)},
			QueryBodies: 41, JSONBodies: 11, Pairs: 97, Library: "apache",
		},
		{
			Name: "Letgo", Package: "com.abtnprojects.ambatana",
			Host: "api.letgo.example", Protocol: "HTTPS",
			Counts: map[string]MethodCounts{
				"GET": g(38, 32, 10), "POST": g(10, 14, 2), "PUT": g(2, 2, 0), "DELETE": g(3, 0, 0),
			},
			QueryBodies: 20, JSONBodies: 18, Pairs: 40, Library: "okhttp",
		},
		{
			Name: "LinkedIn", Package: "com.linkedin.android",
			Host: "api.linkedin.example", Protocol: "HTTPS",
			Counts: map[string]MethodCounts{
				"GET": g(38, 42, 16), "POST": g(49, 17, 8), "PUT": g(0, 3, 0),
			},
			QueryBodies: 46, JSONBodies: 47, Pairs: 85, Library: "volley",
		},
		{
			Name: "Lucktastic", Package: "com.lucktastic.scratch",
			Host: "api.lucktastic.example", Protocol: "HTTPS", Gated: true,
			Counts: map[string]MethodCounts{
				"GET": g(16, 2, 0), "POST": g(9, 15, 0), "PUT": g(2, 0, 0), "DELETE": g(4, 0, 0),
			},
			QueryBodies: 5, JSONBodies: 19, Pairs: 31, Library: "apache",
		},
		{
			Name: "MusicDownloader", Package: "com.musicdownloader.app",
			Host: "api.musicdl.example", Protocol: "HTTPS", Gated: true,
			Counts:     map[string]MethodCounts{"GET": g(3, 10, 0), "POST": g(0, 1, 0)},
			JSONBodies: 4, Pairs: 2, Library: "urlconn",
		},
		{
			Name: "Offerup", Package: "com.offerup",
			Host: "api.offerup.example", Protocol: "HTTPS", Gated: true,
			Counts: map[string]MethodCounts{
				"GET": g(33, 20, 0), "POST": g(23, 21, 0), "PUT": g(8, 1, 0), "DELETE": g(3, 0, 0),
			},
			QueryBodies: 12, JSONBodies: 25, Pairs: 63, Library: "okhttp",
		},
		{
			Name: "Pandora Radio", Package: "com.pandora.android",
			Host: "tuner.pandora.example", Protocol: "HTTP(S)",
			Counts:      map[string]MethodCounts{"GET": g(7, 0, 0), "POST": g(53, 20, 2)},
			QueryBodies: 53, JSONBodies: 26, Pairs: 60, Library: "apache",
		},
		{
			Name: "Pinterest", Package: "com.pinterest",
			Host: "api.pinterest.example", Protocol: "HTTPS",
			Counts: map[string]MethodCounts{
				"GET": g(60, 62, 26), "POST": g(36, 19, 16), "PUT": g(32, 8, 3), "DELETE": g(20, 10, 2),
			},
			QueryBodies: 88, JSONBodies: 120, Pairs: 148, Library: "volley",
		},
		{
			Name: "Tophatter", Package: "com.tophatter",
			Host: "api.tophatter.example", Protocol: "HTTPS", Gated: true,
			Counts: map[string]MethodCounts{
				"GET": g(33, 24, 0), "POST": g(32, 14, 0), "PUT": g(1, 0, 0), "DELETE": g(4, 1, 0),
			},
			QueryBodies: 18, JSONBodies: 32, Pairs: 62, Library: "apache",
		},
		{
			Name: "Tumblr", Package: "com.tumblr",
			Host: "api.tumblr.example", Protocol: "HTTPS",
			Counts: map[string]MethodCounts{
				"GET": g(12, 13, 13), "POST": g(8, 5, 5), "DELETE": g(1, 1, 0),
			},
			QueryBodies: 5, JSONBodies: 14, Pairs: 20, Library: "okhttp",
		},
		{
			Name: "WatchESPN", Package: "com.espn.gtv",
			Host: "espn.go.example", Protocol: "HTTP",
			Counts:     map[string]MethodCounts{"GET": g(33, 33, 17)},
			JSONBodies: 32, Pairs: 32, Library: "apache",
		},
		{
			Name: "Wish Local", Package: "com.contextlogic.wishlocal",
			Host: "api.wishlocal.example", Protocol: "HTTPS",
			Counts:      map[string]MethodCounts{"GET": g(0, 1, 0), "POST": g(106, 48, 21)},
			QueryBodies: 15, JSONBodies: 28, Pairs: 106, Library: "apache",
		},
	}
}

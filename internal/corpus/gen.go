package corpus

import (
	"fmt"
	"strings"

	"extractocol/internal/httpsim"
	"extractocol/internal/ir"
	"extractocol/internal/obfuscate"
)

// TxSpec describes one generated transaction.
type TxSpec struct {
	ID        int
	Method    string
	Path      string
	QueryKeys []string // URI query-string keys (values are user input)
	BodyKind  string   // "", "query", "json"
	BodyKeys  []string
	RespKind  string // "", "json", "xml"
	RespKeys  []string
	Trait     ir.EventKind
	// StoreField persists the first response key into a static field;
	// UseField appends a value read from that field to the request,
	// creating an inter-transaction dependency.
	StoreField string
	UseField   string

	// Scenario marks protocol-surface extensions: "gzip" and "chunked"
	// (framed response bodies read through stream decorators), "multipart"
	// (form-data upload), "cookie"/"token" (session headers), "paginate"
	// (cursor threaded through the URI). Empty is a plain transaction.
	Scenario string
	// UsePart places UseField's value: "" or "body" (last body value),
	// "header" (request header HeaderName), "uri" (query-string cursor).
	UsePart    string
	HeaderName string
	// Library overrides the app-wide HTTP stack for this transaction
	// ("" keeps the app's library).
	Library string
}

// fieldInBody reports whether UseField substitutes the last body value.
func (t TxSpec) fieldInBody() bool {
	return t.UseField != "" && (t.UsePart == "" || t.UsePart == "body")
}

// Generate builds a corpus app from its spec.
func Generate(spec AppSpec) *App {
	txs := planTransactions(spec)
	prog, newNet := buildProgram(spec, txs)
	if spec.Obfuscated {
		obfuscate.Apply(prog, obfuscate.Options{KeepEntryPoints: true})
	}
	return &App{Spec: spec, Prog: prog, NewNetwork: newNet, Truth: deriveTruth(spec, txs)}
}

// planTransactions expands the Table 1 cell counts into transaction specs
// with reachability traits.
func planTransactions(spec AppSpec) []TxSpec {
	r := newRng(spec.Package)
	var txs []TxSpec
	usedPaths := map[string]bool{}

	pathFor := func(method string, i int) string {
		for {
			p := fmt.Sprintf("/api/%s/%s", r.pick(resourceWords), r.pick(resourceWords))
			if i%3 == 0 {
				p = fmt.Sprintf("/v%d/%s", 1+r.intn(3), r.pick(resourceWords))
			}
			key := method + " " + p
			if !usedPaths[key] {
				usedPaths[key] = true
				return p
			}
		}
	}

	type slot struct {
		method string
		trait  ir.EventKind
	}
	var slots []slot
	unfuzzable := []ir.EventKind{ir.EventTimer, ir.EventServerPush, ir.EventAction}
	hidden := []ir.EventKind{ir.EventCustomUI, ir.EventLogin}
	// Determinism invariant: spec.Counts is a map, so it is never ranged —
	// verbs iterate in this fixed order and the map is only indexed. Every
	// rng draw downstream depends on ordered state alone; same-seed corpora
	// must stay byte-identical across runs and platforms (the differential
	// harness's regeneration axis and TestGenProgramsDeterministic enforce
	// this).
	for _, method := range []string{"GET", "POST", "PUT", "DELETE"} {
		c, ok := spec.Counts[method]
		if !ok {
			continue
		}
		total := c.Total()
		missStatic := total - c.E // intent-triggered
		missManual := total - c.M // timers / pushes / side effects
		auto := c.A
		if spec.OpenSource {
			// The third cell is source-code analysis for open-source apps;
			// all transactions are plainly clickable.
			auto = c.M - missStatic
		}
		overlap := c.E + c.M - total // visible to both static and manual
		if auto > overlap {
			auto = overlap
		}
		rest := overlap - auto
		idx := 0
		for i := 0; i < missStatic; i++ {
			slots = append(slots, slot{method, ir.EventIntent})
		}
		for i := 0; i < missManual; i++ {
			slots = append(slots, slot{method, unfuzzable[idx%len(unfuzzable)]})
			idx++
		}
		for i := 0; i < auto; i++ {
			k := ir.EventClick
			if i == 0 && method == "GET" {
				k = ir.EventCreate
			}
			slots = append(slots, slot{method, k})
		}
		for i := 0; i < rest; i++ {
			slots = append(slots, slot{method, hidden[i%len(hidden)]})
		}
	}

	// Distribute body kinds. Request bodies go to non-GET transactions;
	// responses fill the pair quota, some as XML. Quotas are offered to
	// statically visible transactions first: intent-triggered flows (which
	// only manual fuzzing sees) take leftovers, so reconstructed-pair
	// counts reflect what the analyzer can actually pair.
	order := make([]int, 0, len(slots))
	for i, s := range slots {
		if s.trait != ir.EventIntent {
			order = append(order, i)
		}
	}
	for i, s := range slots {
		if s.trait == ir.EventIntent {
			order = append(order, i)
		}
	}
	txAt := make([]TxSpec, len(slots))
	queryQuota, jsonQuota, xmlQuota, pairQuota := spec.QueryBodies, spec.JSONBodies, spec.XMLBodies, spec.Pairs
	for _, i := range order {
		s := slots[i]
		tx := TxSpec{
			ID:     i + 1,
			Method: s.method,
			Path:   pathFor(s.method, i),
			Trait:  s.trait,
		}
		// URI query keys on roughly half the GETs.
		if s.method == "GET" && i%2 == 0 {
			tx.QueryKeys = pickKeys(r, keyWords, 1+r.intn(3))
		}
		if s.method != "GET" {
			switch {
			case queryQuota > 0 && spec.Library != "volley":
				// Volley delivers bodies as JSON objects; form-encoded
				// bodies are an apache/urlconn/okhttp idiom.
				queryQuota--
				tx.BodyKind = "query"
				tx.BodyKeys = pickKeys(r, keyWords, 2+r.intn(3))
			default:
				tx.BodyKind = "json"
				tx.BodyKeys = pickKeys(r, keyWords, 2+r.intn(4))
			}
		}
		switch {
		case xmlQuota > 0 && pairQuota > 0:
			xmlQuota--
			pairQuota--
			tx.RespKind = "xml"
			tx.RespKeys = pickKeys(r, respWords, 2+r.intn(3))
		case pairQuota > 0 && (jsonQuota > 0 || tx.BodyKind != "json"):
			pairQuota--
			if jsonQuota > 0 {
				jsonQuota--
			}
			tx.RespKind = "json"
			tx.RespKeys = pickKeys(r, respWords, 2+r.intn(4))
		}
		txAt[i] = tx
	}
	txs = append(txs, txAt...)

	// Inter-transaction dependency: the first paired transaction stores a
	// session token; later non-GET requests reuse it.
	storeIdx := -1
	for i := range txs {
		if txs[i].RespKind == "json" {
			storeIdx = i
			txs[i].StoreField = "session"
			break
		}
	}
	if storeIdx >= 0 {
		for i := storeIdx + 1; i < len(txs); i++ {
			if txs[i].Method != "GET" && i%4 == 0 {
				txs[i].UseField = "session"
			}
		}
	}
	txs = append(txs, planScenarios(spec, r, len(txs))...)
	return txs
}

// planScenarios expands spec.Scenarios into additional transactions
// exercising the widened protocol surface. The 34 Table 1 specs never set
// Scenarios, so their output is unchanged; the generative corpus draws
// freely from the scenario list.
func planScenarios(spec AppSpec, r *rng, startID int) []TxSpec {
	// Header-carrying and body-building idioms need an explicitly modeled
	// header API; volley has none, so scenario transactions pin a library.
	headerLibs := []string{"apache", "urlconn", "okhttp"}
	var out []TxSpec
	add := func(tx TxSpec) {
		tx.ID = startID + len(out) + 1
		tx.Trait = ir.EventClick
		out = append(out, tx)
	}
	for _, sc := range spec.Scenarios {
		switch sc {
		case "gzip":
			add(TxSpec{Method: "GET", Path: "/gz/" + r.pick(resourceWords),
				Scenario: "gzip", Library: "urlconn",
				RespKind: "json", RespKeys: pickKeys(r, respWords, 2+r.intn(2))})
		case "chunked":
			add(TxSpec{Method: "GET", Path: "/stream/" + r.pick(resourceWords),
				Scenario: "chunked", Library: "urlconn",
				RespKind: "json", RespKeys: pickKeys(r, respWords, 2+r.intn(2))})
		case "multipart":
			add(TxSpec{Method: "POST", Path: "/upload/" + r.pick(resourceWords),
				Scenario: "multipart", Library: "apache",
				BodyKind: "multipart", BodyKeys: pickKeys(r, keyWords, 2+r.intn(2)),
				RespKind: "json", RespKeys: pickKeys(r, respWords, 2)})
		case "cookie":
			add(TxSpec{Method: "POST", Path: "/account/login",
				Scenario: "cookie", Library: "apache",
				BodyKind: "query", BodyKeys: []string{"user", "password"},
				RespKind: "json", RespKeys: append([]string{"session_id"}, pickKeys(r, respWords, 1)...),
				StoreField: "cookieSid"})
			add(TxSpec{Method: "GET", Path: "/account/" + r.pick(resourceWords),
				Scenario: "cookie", Library: headerLibs[r.intn(len(headerLibs))],
				UseField: "cookieSid", UsePart: "header", HeaderName: "Cookie",
				RespKind: "json", RespKeys: pickKeys(r, respWords, 2)})
		case "token":
			// OAuth-style refresh chain: obtain, spend (as a header), refresh
			// (the stale token travels in the body and is re-stored).
			add(TxSpec{Method: "POST", Path: "/oauth/token",
				Scenario: "token", Library: "apache",
				BodyKind: "query", BodyKeys: []string{"client_id", "client_secret"},
				RespKind: "json", RespKeys: []string{"access_token", "expires"},
				StoreField: "accessToken"})
			add(TxSpec{Method: "GET", Path: "/secure/" + r.pick(resourceWords),
				Scenario: "token", Library: headerLibs[r.intn(len(headerLibs))],
				UseField: "accessToken", UsePart: "header", HeaderName: "Authorization",
				RespKind: "json", RespKeys: pickKeys(r, respWords, 2)})
			add(TxSpec{Method: "POST", Path: "/oauth/refresh",
				Scenario: "token", Library: "apache",
				BodyKind: "query", BodyKeys: []string{"grant_type", "refresh_token"},
				UseField: "accessToken", UsePart: "body",
				RespKind: "json", RespKeys: []string{"access_token", "expires"},
				StoreField: "accessToken"})
		case "longpoll":
			// Long-polling: the client GETs /poll/ with a server-side wait
			// bound and re-arms itself after every response; the handler's
			// self-invocation forms the retry loop.
			add(TxSpec{Method: "GET", Path: "/poll/" + r.pick(resourceWords),
				Scenario: "longpoll", Library: headerLibs[r.intn(len(headerLibs))],
				QueryKeys: []string{"timeout"},
				RespKind:  "json", RespKeys: append([]string{"event"}, pickKeys(r, respWords, 1)...)})
		case "paginate":
			add(TxSpec{Method: "GET", Path: "/list/" + r.pick(resourceWords),
				Scenario: "paginate", Library: headerLibs[r.intn(len(headerLibs))],
				QueryKeys: []string{"limit"},
				RespKind:  "json", RespKeys: append([]string{"next_page"}, pickKeys(r, respWords, 1)...),
				StoreField: "pageCursor"})
			add(TxSpec{Method: "GET", Path: "/page/" + r.pick(resourceWords),
				Scenario: "paginate", Library: headerLibs[r.intn(len(headerLibs))],
				UseField: "pageCursor", UsePart: "uri",
				RespKind: "json", RespKeys: pickKeys(r, respWords, 2)})
		}
	}
	return out
}

func pickKeys(r *rng, words []string, n int) []string {
	seen := map[string]bool{}
	var out []string
	for len(out) < n {
		w := r.pick(words)
		// Most protocol keys are endpoint-specific in real apps; suffix a
		// second noun so the corpus vocabulary is wide enough that every
		// transaction contributes distinct keywords (Fig. 7 depends on it).
		if r.intn(3) > 0 {
			w = w + "_" + r.pick(resourceWords)
		}
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

func deriveTruth(spec AppSpec, txs []TxSpec) Truth {
	t := Truth{
		ByMethod:  map[string]int{},
		StaticVis: map[string]int{},
		ManualVis: map[string]int{},
		AutoVis:   map[string]int{},
	}
	for _, tx := range txs {
		t.ByMethod[tx.Method]++
		if tx.Trait != ir.EventIntent {
			t.StaticVis[tx.Method]++
		}
		switch tx.Trait {
		case ir.EventCreate, ir.EventClick, ir.EventCustomUI, ir.EventLogin,
			ir.EventLocation, ir.EventIntent:
			t.ManualVis[tx.Method]++
		}
		if !spec.Gated && (tx.Trait == ir.EventCreate || tx.Trait == ir.EventClick) {
			t.AutoVis[tx.Method]++
		}
		switch tx.BodyKind {
		case "query":
			t.QueryBodies++
		case "json":
			t.JSONBodies++
		}
		switch tx.RespKind {
		case "json":
			t.JSONBodies++
			t.Pairs++
		case "xml":
			t.XMLBodies++
			t.Pairs++
		}
	}
	return t
}

// buildProgram emits the IR application and its server factory.
func buildProgram(spec AppSpec, txs []TxSpec) (*ir.Program, func() *httpsim.Network) {
	p := ir.NewProgram(spec.Package)
	p.Manifest.AppName = spec.Name
	cls := p.AddClass(&ir.Class{Name: spec.Package + ".App"})

	scheme := "https"
	if spec.Protocol == "HTTP" {
		scheme = "http"
	}
	base := scheme + "://" + spec.Host

	for _, tx := range txs {
		emitTransaction(p, cls, spec, base, tx)
	}
	ballast := spec.Ballast
	if ballast == 0 {
		ballast = 2*len(txs) + 10
	}
	emitBallast(p, cls, ballast, newRng(spec.Package+"/ballast"))
	if spec.Gated {
		// The custom-drawn first screen: an entry PUMA cannot pass.
		g := ir.NewMethod(cls, "onCustomGate", false, nil, "void")
		g.ReturnVoid()
		g.Done()
		p.Manifest.EntryPoints = append([]ir.EntryPoint{{
			Method: cls.Name + ".onCustomGate", Kind: ir.EventCustomUI, Label: "ui_gate",
		}}, p.Manifest.EntryPoints...)
	}

	newNet := func() *httpsim.Network {
		n := httpsim.NewNetwork()
		s := httpsim.NewServer(spec.Host)
		for _, tx := range txs {
			registerRoute(s, tx)
		}
		n.Register(s)
		return n
	}
	return p, newNet
}

// emitTransaction writes one handler method + entry point implementing tx.
func emitTransaction(p *ir.Program, cls *ir.Class, spec AppSpec, base string, tx TxSpec) {
	name := fmt.Sprintf("onTx%d", tx.ID)
	library := spec.Library
	if tx.Library != "" {
		library = tx.Library
	}
	var params []string
	for range tx.QueryKeys {
		params = append(params, "java.lang.String")
	}
	for range tx.BodyKeys {
		params = append(params, "java.lang.String")
	}
	b := ir.NewMethod(cls, name, false, params, "void")

	// URI construction.
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial("java.lang.StringBuilder.<init>", sb)
	first := b.ConstStr(base + tx.Path)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, first)
	for i, k := range tx.QueryKeys {
		sep := "?"
		if i > 0 {
			sep = "&"
		}
		ks := b.ConstStr(sep + k + "=")
		b.InvokeVoid("java.lang.StringBuilder.append", sb, ks)
		enc := b.InvokeStatic("java.net.URLEncoder.encode", b.Param(i))
		b.InvokeVoid("java.lang.StringBuilder.append", sb, enc)
	}
	if tx.UseField != "" && tx.UsePart == "uri" {
		sep := "?"
		if len(tx.QueryKeys) > 0 {
			sep = "&"
		}
		ks := b.ConstStr(sep + "cursor=")
		b.InvokeVoid("java.lang.StringBuilder.append", sb, ks)
		fv := b.StaticGet(cls.Name + "." + tx.UseField)
		b.InvokeVoid("java.lang.StringBuilder.append", sb, fv)
	}
	uri := b.Invoke("java.lang.StringBuilder.toString", sb)

	// Request body.
	bodyReg := ir.NoReg
	switch tx.BodyKind {
	case "query":
		list := b.New("java.util.ArrayList")
		b.InvokeSpecial("java.util.ArrayList.<init>", list)
		for i, k := range tx.BodyKeys {
			kr := b.ConstStr(k)
			var vr int
			if tx.fieldInBody() && i == len(tx.BodyKeys)-1 {
				vr = b.StaticGet(cls.Name + "." + tx.UseField)
			} else {
				vr = b.Param(len(tx.QueryKeys) + i)
			}
			pair := b.New("org.apache.http.message.BasicNameValuePair")
			b.InvokeSpecial("org.apache.http.message.BasicNameValuePair.<init>", pair, kr, vr)
			b.InvokeVoid("java.util.ArrayList.add", list, pair)
		}
		ent := b.New("org.apache.http.client.entity.UrlEncodedFormEntity")
		b.InvokeSpecial("org.apache.http.client.entity.UrlEncodedFormEntity.<init>", ent, list)
		bodyReg = ent
	case "json":
		js := b.New("org.json.JSONObject")
		b.InvokeSpecial("org.json.JSONObject.<init>", js)
		for i, k := range tx.BodyKeys {
			kr := b.ConstStr(k)
			var vr int
			if tx.fieldInBody() && i == len(tx.BodyKeys)-1 {
				vr = b.StaticGet(cls.Name + "." + tx.UseField)
			} else {
				vr = b.Param(len(tx.QueryKeys) + i)
			}
			b.InvokeVoid("org.json.JSONObject.put", js, kr, vr)
		}
		if library == "volley" {
			bodyReg = js // volley takes the JSONObject itself
		} else {
			raw := b.Invoke("org.json.JSONObject.toString", js)
			ent := b.New("org.apache.http.entity.StringEntity")
			b.InvokeSpecial("org.apache.http.entity.StringEntity.<init>", ent, raw)
			bodyReg = ent
		}
	case "multipart":
		mb := b.InvokeStatic("org.apache.http.entity.mime.MultipartEntityBuilder.create")
		for i, k := range tx.BodyKeys {
			kr := b.ConstStr(k)
			var vr int
			if tx.fieldInBody() && i == len(tx.BodyKeys)-1 {
				vr = b.StaticGet(cls.Name + "." + tx.UseField)
			} else {
				vr = b.Param(len(tx.QueryKeys) + i)
			}
			b.InvokeVoid("org.apache.http.entity.mime.MultipartEntityBuilder.addTextBody", mb, kr, vr)
		}
		bodyReg = b.Invoke("org.apache.http.entity.mime.MultipartEntityBuilder.build", mb)
	}

	respReg := emitSend(b, library, tx.Method, uri, bodyReg, p, cls, tx)

	// Response processing (for synchronous libraries).
	if respReg != ir.NoReg && tx.RespKind != "" && library != "volley" {
		emitRespParse(b, cls, respReg, tx, library)
	}
	if tx.Scenario == "longpoll" {
		// Retry loop: the handler re-invokes itself with the same timeout
		// after each response, the way long-poll clients re-arm. The
		// recursive call edge keeps the poll cycle visible to the call
		// graph without needing intra-method control flow.
		var args []int
		for i := range tx.QueryKeys {
			args = append(args, b.Param(i))
		}
		b.InvokeVoid(cls.Name+"."+name, b.This(), args...)
	}
	b.ReturnVoid()
	b.Done()

	if tx.StoreField != "" && cls.Field(tx.StoreField) == nil {
		cls.Fields = append(cls.Fields, &ir.Field{Name: tx.StoreField, Type: "java.lang.String", Static: true})
	}

	p.Manifest.EntryPoints = append(p.Manifest.EntryPoints, ir.EntryPoint{
		Method: cls.Name + "." + name,
		Kind:   tx.Trait,
		Label:  fmt.Sprintf("tx%d", tx.ID),
	})
}

// emitSend writes the library-specific request dispatch and returns the
// register holding the raw response body string (NoReg when the library
// delivers the response through a callback).
func emitSend(b *ir.B, library, method string, uri, bodyReg int, p *ir.Program, cls *ir.Class, tx TxSpec) int {
	// Session headers (cookie / bearer-token scenarios): the value comes
	// from the static field a prior transaction's response populated.
	headerArgs := func() (int, int) {
		hk := b.ConstStr(tx.HeaderName)
		hv := b.StaticGet(cls.Name + "." + tx.UseField)
		return hk, hv
	}
	sendsHeader := tx.UseField != "" && tx.UsePart == "header"

	switch library {
	case "urlconn":
		u := b.New("java.net.URL")
		b.InvokeSpecial("java.net.URL.<init>", u, uri)
		conn := b.Invoke("java.net.URL.openConnection", u)
		if method != "GET" {
			m := b.ConstStr(method)
			b.InvokeVoid("java.net.HttpURLConnection.setRequestMethod", conn, m)
		}
		if sendsHeader {
			hk, hv := headerArgs()
			b.InvokeVoid("java.net.HttpURLConnection.setRequestProperty", conn, hk, hv)
		}
		if bodyReg != ir.NoReg {
			out := b.Invoke("java.net.HttpURLConnection.getOutputStream", conn)
			b.InvokeVoid("java.io.OutputStream.write", out, bodyReg)
		}
		in := b.Invoke("java.net.HttpURLConnection.getInputStream", conn)
		if tx.RespKind == "" {
			return ir.NoReg // response ignored by the app
		}
		switch tx.Scenario {
		case "gzip":
			// Content-Encoding: gzip — decompress through a decorator.
			gz := b.New("java.util.zip.GZIPInputStream")
			b.InvokeSpecial("java.util.zip.GZIPInputStream.<init>", gz, in)
			return b.Invoke("java.io.InputStream.readAll", gz)
		case "chunked":
			// Transfer-Encoding: chunked — read through a buffered reader.
			isr := b.New("java.io.InputStreamReader")
			b.InvokeSpecial("java.io.InputStreamReader.<init>", isr, in)
			br := b.New("java.io.BufferedReader")
			b.InvokeSpecial("java.io.BufferedReader.<init>", br, isr)
			return b.Invoke("java.io.BufferedReader.readLine", br)
		}
		return b.Invoke("java.io.InputStream.readAll", in)

	case "okhttp":
		rb := b.New("okhttp3.Request$Builder")
		b.InvokeSpecial("okhttp3.Request$Builder.<init>", rb)
		b.InvokeVoid("okhttp3.Request$Builder.url", rb, uri)
		if sendsHeader {
			hk, hv := headerArgs()
			b.InvokeVoid("okhttp3.Request$Builder.header", rb, hk, hv)
		}
		if bodyReg != ir.NoReg {
			b.InvokeVoid("okhttp3.Request$Builder.post", rb, bodyReg)
		}
		if method == "PUT" || method == "DELETE" {
			mv := b.ConstStr(method)
			b.InvokeVoid("okhttp3.Request$Builder.method", rb, mv)
		}
		req := b.Invoke("okhttp3.Request$Builder.build", rb)
		clt := b.New("okhttp3.OkHttpClient")
		b.InvokeSpecial("okhttp3.OkHttpClient.<init>", clt)
		call := b.Invoke("okhttp3.OkHttpClient.newCall", clt, req)
		resp := b.Invoke("okhttp3.Call.execute", call)
		if tx.RespKind == "" {
			return ir.NoReg
		}
		body := b.Invoke("okhttp3.Response.body", resp)
		return b.Invoke("okhttp3.ResponseBody.string", body)

	case "volley":
		// Dedicated request subclass carrying the onResponse callback.
		sub := p.AddClass(&ir.Class{
			Name:  cls.Name + fmt.Sprintf("$VReq%d", tx.ID),
			Super: "com.android.volley.toolbox.JsonObjectRequest",
		})
		onr := ir.NewMethod(sub, "onResponse", false, []string{"org.json.JSONObject"}, "void")
		js := onr.Param(0)
		for i, k := range tx.RespKeys {
			kr := onr.ConstStr(k)
			v := onr.Invoke("org.json.JSONObject.getString", js, kr)
			if tx.StoreField != "" && i == 0 {
				onr.StaticPut(cls.Name+"."+tx.StoreField, v)
			}
		}
		onr.ReturnVoid()
		onr.Done()
		r := b.New(sub.Name)
		mi := b.ConstInt(volleyMethodConst(method))
		if bodyReg != ir.NoReg {
			b.InvokeSpecial("com.android.volley.toolbox.JsonObjectRequest.<init>", r, mi, uri, bodyReg)
		} else {
			b.InvokeSpecial("com.android.volley.toolbox.JsonObjectRequest.<init>", r, mi, uri)
		}
		q := b.New("com.android.volley.RequestQueue")
		b.InvokeVoid("com.android.volley.RequestQueue.add", q, r)
		return ir.NoReg

	default: // apache
		var req int
		switch method {
		case "POST":
			req = b.New("org.apache.http.client.methods.HttpPost")
			b.InvokeSpecial("org.apache.http.client.methods.HttpPost.<init>", req, uri)
		case "PUT":
			req = b.New("org.apache.http.client.methods.HttpPut")
			b.InvokeSpecial("org.apache.http.client.methods.HttpPut.<init>", req, uri)
		case "DELETE":
			req = b.New("org.apache.http.client.methods.HttpDelete")
			b.InvokeSpecial("org.apache.http.client.methods.HttpDelete.<init>", req, uri)
		default:
			req = b.New("org.apache.http.client.methods.HttpGet")
			b.InvokeSpecial("org.apache.http.client.methods.HttpGet.<init>", req, uri)
		}
		if sendsHeader {
			hk, hv := headerArgs()
			b.InvokeVoid("org.apache.http.client.methods.HttpUriRequest.addHeader", req, hk, hv)
		}
		if bodyReg != ir.NoReg {
			b.InvokeVoid("org.apache.http.client.methods.HttpEntityEnclosingRequestBase.setEntity", req, bodyReg)
		}
		clt := b.New("org.apache.http.impl.client.DefaultHttpClient")
		b.InvokeSpecial("org.apache.http.impl.client.DefaultHttpClient.<init>", clt)
		resp := b.Invoke("org.apache.http.client.HttpClient.execute", clt, req)
		if tx.RespKind == "" {
			return ir.NoReg
		}
		ent := b.Invoke("org.apache.http.HttpResponse.getEntity", resp)
		return b.InvokeStatic("org.apache.http.util.EntityUtils.toString", ent)
	}
}

// emitRespParse writes the response-processing code for raw body respReg.
func emitRespParse(b *ir.B, cls *ir.Class, respReg int, tx TxSpec, library string) {
	switch tx.RespKind {
	case "json":
		js := b.InvokeStatic("org.json.JSONObject.parse", respReg)
		for i, k := range tx.RespKeys {
			kr := b.ConstStr(k)
			v := b.Invoke("org.json.JSONObject.getString", js, kr)
			if tx.StoreField != "" && i == 0 {
				b.StaticPut(cls.Name+"."+tx.StoreField, v)
			}
		}
	case "xml":
		doc := b.InvokeStatic("android.util.Xml.parse", respReg)
		for _, tag := range tx.RespKeys {
			tr := b.ConstStr(tag)
			el := b.Invoke("org.w3c.dom.Document.getElementsByTagName", doc, tr)
			b.Invoke("org.w3c.dom.Element.getTextContent", el)
		}
	}
}

// emitBallast writes n non-networking methods: view updates, label
// formatting, arithmetic — the bulk of any real app. A handful become
// UI-only entry points so the fuzzers exercise them too. None of this code
// may appear in protocol slices.
func emitBallast(p *ir.Program, cls *ir.Class, n int, r *rng) {
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("ui%d", i)
		b := ir.NewMethod(cls, name, false, []string{"int"}, "java.lang.String")
		x := b.Param(0)
		sb := b.New("java.lang.StringBuilder")
		b.InvokeSpecial("java.lang.StringBuilder.<init>", sb)
		label := b.ConstStr(r.pick(respWords) + ": ")
		b.InvokeVoid("java.lang.StringBuilder.append", sb, label)
		k := b.ConstInt(int64(r.intn(100)))
		scaled := b.Binop("*", x, k)
		off := b.ConstInt(int64(r.intn(10)))
		adj := b.Binop("+", scaled, off)
		b.InvokeVoid("java.lang.StringBuilder.append", sb, adj)
		txt := b.Invoke("java.lang.StringBuilder.toString", sb)
		tv := b.New("android.widget.TextView")
		b.InvokeVoid("android.widget.TextView.setText", tv, txt)
		unit := b.ConstStr(r.pick(keyWords))
		low := b.Invoke("java.lang.String.toLowerCase", unit)
		b.Return(low)
		b.Done()
		if i%16 == 0 {
			h := ir.NewMethod(cls, fmt.Sprintf("onUi%d", i), false, nil, "void")
			v := h.ConstInt(int64(i))
			h.Invoke(cls.Name+"."+name, h.This(), v)
			h.ReturnVoid()
			h.Done()
			p.Manifest.EntryPoints = append(p.Manifest.EntryPoints, ir.EntryPoint{
				Method: cls.Name + ".onUi" + fmt.Sprint(i), Kind: ir.EventClick,
				Label: "ui-only",
			})
		}
	}
}

// volleyMethodConst maps a verb to com.android.volley.Request.Method.
func volleyMethodConst(method string) int64 {
	switch method {
	case "POST":
		return 1
	case "PUT":
		return 2
	case "DELETE":
		return 3
	default:
		return 0
	}
}

// registerRoute installs the server side of one transaction.
func registerRoute(s *httpsim.Server, tx TxSpec) {
	respond := func(r *httpsim.Request) *httpsim.Response {
		// Enforce declared body keys so fuzzing exercises real parsing.
		for _, k := range tx.BodyKeys {
			if !strings.Contains(r.Body, k) {
				return httpsim.Error(400, "missing field "+k)
			}
		}
		// Session scenarios require their header (cookie / bearer token).
		if tx.UseField != "" && tx.UsePart == "header" && r.Headers[tx.HeaderName] == "" {
			return httpsim.Error(401, "missing header "+tx.HeaderName)
		}
		switch tx.RespKind {
		case "json":
			var b strings.Builder
			b.WriteString("{")
			for i, k := range tx.RespKeys {
				if i > 0 {
					b.WriteString(",")
				}
				fmt.Fprintf(&b, "%q:%q", k, "v-"+k)
			}
			b.WriteString("}")
			switch tx.Scenario {
			case "gzip":
				return httpsim.GzipJSON(b.String())
			case "chunked":
				return httpsim.ChunkedJSON(b.String(), 16)
			}
			return httpsim.JSON(b.String())
		case "xml":
			var b strings.Builder
			b.WriteString("<result>")
			for _, k := range tx.RespKeys {
				fmt.Fprintf(&b, "<%s>v-%s</%s>", k, k, k)
			}
			b.WriteString("</result>")
			return httpsim.XML(b.String())
		default:
			return httpsim.Text("ok")
		}
	}
	s.Handle(tx.Method, tx.Path, respond)
}

package corpus

import (
	"fmt"
	"strings"

	"extractocol/internal/httpsim"
	"extractocol/internal/ir"
)

// kayakUserAgent is the app-specific header the paper found to be load
// bearing: Kayak's backend rejects requests without it (§5.3).
const kayakUserAgent = "kayakandroidphone/8.1"

// KayakCategories mirrors Table 5: API groups by URI prefix.
var KayakCategories = []struct {
	Name   string
	Method string
	Prefix string
	Count  int
}{
	{"Travel Planner", "GET", "/trips/v2", 11},
	{"Authentication", "POST", "/k/authajax", 2},
	{"Facebook Auth", "POST", "/k/run/fbauth", 2},
	{"Flight", "GET", "/api/search/V8/flight", 6},
	{"Hotel", "GET", "/api/search/V8/hotel", 2},
	{"Car", "GET", "/api/search/V8/car", 1},
	{"Mobile Specific", "GET", "/h/mobileapis", 12},
	{"Advertising", "GET", "/s/mobileads", 1},
	{"Etc. (misc GET)", "GET", "/a/api", 6},
	{"Etc.", "POST", "/k", 3},
}

// Kayak builds the §5.3 reverse-engineering target: 46 transactions in
// com.kayak classes (39 GET + 7 POST across the Table 5 categories) plus
// one transaction in an external advertising library, which the scoped
// analysis (com.kayak prefix) must exclude. Session flow: authajax issues
// the _sid_, flight/start consumes it and issues a searchid, flight/poll
// consumes the searchid — Table 6's three signatures, replayable by
// examples/replay.
func Kayak() *App {
	p := ir.NewProgram("com.kayak.android")
	p.Manifest.AppName = "KAYAK"
	api := p.AddClass(&ir.Class{Name: "com.kayak.android.Api", Fields: []*ir.Field{
		{Name: "sid", Type: "java.lang.String", Static: true},
		{Name: "searchid", Type: "java.lang.String", Static: true},
	}})

	nGET, nPOST := 0, 0
	autoGET, autoPOST := 0, 0
	pairs, jsonResp, qs := 0, 0, 0

	emitKayakAuth(p, api)
	nPOST++
	qs++
	jsonResp++
	pairs++
	emitKayakFlightStart(p, api)
	nGET++
	autoGET++
	jsonResp++
	pairs++
	emitKayakFlightPoll(p, api)
	nGET++
	autoGET++
	jsonResp++
	pairs++

	// Remaining category endpoints as straightforward transactions.
	r := newRng("com.kayak.android")
	seq := 0
	usedPaths := map[string]bool{}
	var routes []kayakRoute
	for _, cat := range KayakCategories {
		count := cat.Count
		switch cat.Prefix {
		case "/k/authajax":
			count-- // one written above
		case "/api/search/V8/flight":
			count -= 2 // start and poll written above
		}
		for i := 0; i < count; i++ {
			var sub string
			for {
				sub = fmt.Sprintf("%s/%s", cat.Prefix, r.pick(resourceWords))
				if i%2 == 1 {
					sub = fmt.Sprintf("%s/%s/%s", cat.Prefix, r.pick(resourceWords), r.pick(resourceWords))
				}
				if !usedPaths[cat.Method+" "+sub] {
					usedPaths[cat.Method+" "+sub] = true
					break
				}
			}
			withJSON := false
			switch cat.Name {
			case "Hotel", "Car", "Advertising":
				withJSON = i == 0
			case "Mobile Specific":
				withJSON = i == 0 // currency/allRates
				if i == 0 {
					sub = cat.Prefix + "/currency/allRates"
				}
			}
			trait := ir.EventClick
			if (nGET+nPOST)%3 == 2 {
				trait = ir.EventLogin // session-scoped screens
			}
			seq++
			emitKayakSimple(p, api, seq, cat.Method, sub, withJSON, trait)
			routes = append(routes, kayakRoute{Method: cat.Method, Path: sub})
			if cat.Method == "GET" {
				nGET++
				if trait == ir.EventClick {
					autoGET++
				}
			} else {
				nPOST++
				qs++
				if trait == ir.EventClick {
					autoPOST++
				}
			}
			if withJSON {
				jsonResp++
				pairs++
			}
		}
	}

	emitBallast(p, api, 200, newRng("kayak/ballast"))

	// External advertising library — outside the com.kayak scope.
	lib := p.AddClass(&ir.Class{Name: "com.admarvel.sdk.Tracker"})
	tb := ir.NewMethod(lib, "onBeacon", false, nil, "void")
	tu := tb.ConstStr("https://ads.admarvel.example/beacon?app=kayak")
	treq := tb.New("org.apache.http.client.methods.HttpGet")
	tb.InvokeSpecial("org.apache.http.client.methods.HttpGet.<init>", treq, tu)
	rrExecute(tb, treq)
	tb.ReturnVoid()
	tb.Done()
	p.Manifest.EntryPoints = append(p.Manifest.EntryPoints,
		ir.EntryPoint{Method: lib.Name + ".onBeacon", Kind: ir.EventCreate, Label: "adlib"})
	nGET++ // the ad beacon is a real transaction of the unscoped app
	autoGET++

	truth := Truth{
		ByMethod:    map[string]int{"GET": nGET, "POST": nPOST},
		StaticVis:   map[string]int{"GET": nGET, "POST": nPOST},
		ManualVis:   map[string]int{"GET": nGET, "POST": nPOST},
		AutoVis:     map[string]int{"GET": autoGET, "POST": autoPOST + 1},
		QueryBodies: qs, JSONBodies: jsonResp, Pairs: pairs,
	}
	spec := AppSpec{
		Name: "KAYAK", Package: "com.kayak.android", Host: "www.kayak.example",
		Protocol: "HTTPS", Library: "apache", Handwritten: true,
		Counts: map[string]MethodCounts{
			"GET":  {E: nGET, M: nGET, A: autoGET},
			"POST": {E: nPOST, M: nPOST, A: autoPOST + 1},
		},
		QueryBodies: qs, JSONBodies: jsonResp, Pairs: pairs,
	}
	newNet := func() *httpsim.Network { return newKayakNetwork(routes) }
	return &App{Spec: spec, Prog: p, NewNetwork: newNet, Truth: truth}
}

// kayakRoute is one generated category endpoint.
type kayakRoute struct {
	Method, Path string
}

func kayakRequest(b *ir.B, method string, uriReg int) int {
	var req int
	if method == "POST" {
		req = b.New("org.apache.http.client.methods.HttpPost")
		b.InvokeSpecial("org.apache.http.client.methods.HttpPost.<init>", req, uriReg)
	} else {
		req = b.New("org.apache.http.client.methods.HttpGet")
		b.InvokeSpecial("org.apache.http.client.methods.HttpGet.<init>", req, uriReg)
	}
	hk := b.ConstStr("User-Agent")
	hv := b.ConstStr(kayakUserAgent)
	if method == "POST" {
		b.InvokeVoid("org.apache.http.client.methods.HttpPost.addHeader", req, hk, hv)
	} else {
		b.InvokeVoid("org.apache.http.client.methods.HttpGet.addHeader", req, hk, hv)
	}
	return req
}

// emitKayakAuth: POST /k/authajax with the Table 6 registration body; the
// response _sid_ is stored for the search flow.
func emitKayakAuth(p *ir.Program, api *ir.Class) {
	params := []string{"java.lang.String", "java.lang.String", "java.lang.String",
		"java.lang.String", "java.lang.String", "java.lang.String"}
	b := ir.NewMethod(api, "onStartSession", false, params, "void")
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial("java.lang.StringBuilder.<init>", sb)
	head := b.ConstStr("action=registerandroid&uuid=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, head)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, b.Param(0))
	for i, k := range []string{"hash", "model"} {
		ks := b.ConstStr("&" + k + "=")
		b.InvokeVoid("java.lang.StringBuilder.append", sb, ks)
		b.InvokeVoid("java.lang.StringBuilder.append", sb, b.Param(i+1))
	}
	plat := b.ConstStr("&platform=android&os=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, plat)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, b.Param(3))
	for i, k := range []string{"locale", "tz"} {
		ks := b.ConstStr("&" + k + "=")
		b.InvokeVoid("java.lang.StringBuilder.append", sb, ks)
		b.InvokeVoid("java.lang.StringBuilder.append", sb, b.Param(i+4))
	}
	body := b.Invoke("java.lang.StringBuilder.toString", sb)
	ent := b.New("org.apache.http.entity.StringEntity")
	b.InvokeSpecial("org.apache.http.entity.StringEntity.<init>", ent, body)
	u := b.ConstStr("https://www.kayak.example/k/authajax")
	req := kayakRequest(b, "POST", u)
	b.InvokeVoid("org.apache.http.client.methods.HttpPost.setEntity", req, ent)
	raw := rrExecute(b, req)
	js := b.InvokeStatic("org.json.JSONObject.parse", raw)
	kSid := b.ConstStr("_sid_")
	sid := b.Invoke("org.json.JSONObject.getString", js, kSid)
	b.StaticPut(api.Name+".sid", sid)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = append(p.Manifest.EntryPoints,
		ir.EntryPoint{Method: api.Name + ".onStartSession", Kind: ir.EventCreate, Label: "auth"})
}

// emitKayakFlightStart: GET /api/search/V8/flight/start with the Table 6
// query string; stores the returned searchid.
func emitKayakFlightStart(p *ir.Program, api *ir.Class) {
	params := []string{"java.lang.String", "java.lang.String", "java.lang.String",
		"java.lang.String", "java.lang.String"}
	b := ir.NewMethod(api, "onSearchFlights", false, params, "void")
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial("java.lang.StringBuilder.<init>", sb)
	head := b.ConstStr("https://www.kayak.example/api/search/V8/flight/start?cabin=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, head)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, b.Param(0))
	for i, k := range []string{"travelers", "origin", "destination", "depart_date"} {
		ks := b.ConstStr("&" + k + "=")
		b.InvokeVoid("java.lang.StringBuilder.append", sb, ks)
		enc := b.InvokeStatic("java.net.URLEncoder.encode", b.Param(i+1))
		b.InvokeVoid("java.lang.StringBuilder.append", sb, enc)
	}
	sidK := b.ConstStr("&_sid_=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, sidK)
	sid := b.StaticGet(api.Name + ".sid")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, sid)
	uri := b.Invoke("java.lang.StringBuilder.toString", sb)
	req := kayakRequest(b, "GET", uri)
	raw := rrExecute(b, req)
	js := b.InvokeStatic("org.json.JSONObject.parse", raw)
	kID := b.ConstStr("searchid")
	sidv := b.Invoke("org.json.JSONObject.getString", js, kID)
	b.StaticPut(api.Name+".searchid", sidv)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = append(p.Manifest.EntryPoints,
		ir.EntryPoint{Method: api.Name + ".onSearchFlights", Kind: ir.EventClick, Label: "flightstart"})
}

// emitKayakFlightPoll: GET /api/search/V8/flight/poll consuming searchid.
func emitKayakFlightPoll(p *ir.Program, api *ir.Class) {
	b := ir.NewMethod(api, "onPollFlights", false, []string{"java.lang.String"}, "void")
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial("java.lang.StringBuilder.<init>", sb)
	head := b.ConstStr("https://www.kayak.example/api/search/V8/flight/poll?searchid=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, head)
	sid := b.StaticGet(api.Name + ".searchid")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, sid)
	tail := b.ConstStr("&d=up&includeopaques=true&includeSplit=false&currency=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, tail)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, b.Param(0))
	uri := b.Invoke("java.lang.StringBuilder.toString", sb)
	req := kayakRequest(b, "GET", uri)
	raw := rrExecute(b, req)
	js := b.InvokeStatic("org.json.JSONObject.parse", raw)
	for _, key := range []string{"fares", "cheapest", "currencyCode"} {
		k := b.ConstStr(key)
		b.Invoke("org.json.JSONObject.getString", js, k)
	}
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = append(p.Manifest.EntryPoints,
		ir.EntryPoint{Method: api.Name + ".onPollFlights", Kind: ir.EventClick, Label: "flightpoll"})
}

// emitKayakSimple writes a plain category endpoint transaction.
func emitKayakSimple(p *ir.Program, api *ir.Class, seq int, method, path string, withJSON bool, trait ir.EventKind) {
	name := fmt.Sprintf("onApi%d", seq)
	b := ir.NewMethod(api, name, false, []string{"java.lang.String"}, "void")
	var uri int
	if method == "GET" {
		sb := b.New("java.lang.StringBuilder")
		b.InvokeSpecial("java.lang.StringBuilder.<init>", sb)
		head := b.ConstStr("https://www.kayak.example" + path + "?v=")
		b.InvokeVoid("java.lang.StringBuilder.append", sb, head)
		b.InvokeVoid("java.lang.StringBuilder.append", sb, b.Param(0))
		uri = b.Invoke("java.lang.StringBuilder.toString", sb)
	} else {
		uri = b.ConstStr("https://www.kayak.example" + path)
	}
	req := kayakRequest(b, method, uri)
	if method == "POST" {
		sb := b.New("java.lang.StringBuilder")
		b.InvokeSpecial("java.lang.StringBuilder.<init>", sb)
		s1 := b.ConstStr("payload=")
		b.InvokeVoid("java.lang.StringBuilder.append", sb, s1)
		enc := b.InvokeStatic("java.net.URLEncoder.encode", b.Param(0))
		b.InvokeVoid("java.lang.StringBuilder.append", sb, enc)
		body := b.Invoke("java.lang.StringBuilder.toString", sb)
		ent := b.New("org.apache.http.entity.StringEntity")
		b.InvokeSpecial("org.apache.http.entity.StringEntity.<init>", ent, body)
		b.InvokeVoid("org.apache.http.client.methods.HttpPost.setEntity", req, ent)
	}
	if withJSON {
		raw := rrExecute(b, req)
		js := b.InvokeStatic("org.json.JSONObject.parse", raw)
		for _, key := range []string{"status", "result"} {
			k := b.ConstStr(key)
			b.Invoke("org.json.JSONObject.getString", js, k)
		}
	} else {
		rrDiscard(b, req)
	}
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = append(p.Manifest.EntryPoints,
		ir.EntryPoint{Method: api.Name + "." + name, Kind: trait, Label: name})
}

// newKayakNetwork builds the Kayak backend with User-Agent access control
// and the authajax -> flight/start -> flight/poll session flow.
func newKayakNetwork(routes []kayakRoute) *httpsim.Network {
	n := httpsim.NewNetwork()
	s := httpsim.NewServer("www.kayak.example")
	sid := "SID-7342"
	searchid := "SEARCH-90125"

	guard := func(h httpsim.Handler) httpsim.Handler {
		return func(r *httpsim.Request) *httpsim.Response {
			if !strings.HasPrefix(r.Headers["User-Agent"], "kayakandroidphone/") {
				return httpsim.Error(403, "unsupported client")
			}
			return h(r)
		}
	}
	s.Handle("POST", "/k/authajax", guard(func(r *httpsim.Request) *httpsim.Response {
		if !strings.Contains(r.Body, "action=registerandroid") {
			return httpsim.Error(400, "bad action")
		}
		return httpsim.JSON(fmt.Sprintf(`{"_sid_":%q}`, sid))
	}))
	s.Handle("GET", "/api/search/V8/flight/start", guard(func(r *httpsim.Request) *httpsim.Response {
		if r.Query().Get("_sid_") != sid {
			return httpsim.Error(403, "no session")
		}
		return httpsim.JSON(fmt.Sprintf(`{"searchid":%q}`, searchid))
	}))
	s.Handle("GET", "/api/search/V8/flight/poll", guard(func(r *httpsim.Request) *httpsim.Response {
		if r.Query().Get("searchid") != searchid {
			return httpsim.Error(404, "unknown search")
		}
		return httpsim.JSON(`{"fares":"[{\"price\":123},{\"price\":140}]",` +
			`"cheapest":"123","currencyCode":"USD"}`)
	}))
	for _, rt := range routes {
		if rt.Method == "POST" {
			s.Handle("POST", rt.Path, guard(func(r *httpsim.Request) *httpsim.Response {
				return httpsim.JSON(`{"status":"ok","result":"posted"}`)
			}))
			continue
		}
		s.Handle("GET", rt.Path, guard(func(r *httpsim.Request) *httpsim.Response {
			return httpsim.JSON(`{"status":"ok","result":"data"}`)
		}))
	}
	n.Register(s)

	ads := httpsim.NewServer("ads.admarvel.example")
	ads.HandlePrefix("GET", "/", func(r *httpsim.Request) *httpsim.Response {
		return httpsim.Text("beacon-ok")
	})
	n.Register(ads)
	return n
}

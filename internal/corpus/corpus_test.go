package corpus

import (
	"testing"

	"extractocol/internal/core"
	"extractocol/internal/dex"
	"extractocol/internal/fuzz"
	"extractocol/internal/trace"
)

func TestCorpusHas34Apps(t *testing.T) {
	apps := Apps()
	if len(apps) != 34 {
		t.Fatalf("corpus apps = %d, want 34", len(apps))
	}
	open, closed := 0, 0
	for _, a := range apps {
		if a.Spec.OpenSource {
			open++
		} else {
			closed++
		}
	}
	if open != 14 || closed != 20 {
		t.Fatalf("open=%d closed=%d, want 14/20", open, closed)
	}
}

func TestCorpusValidatesAndRoundTrips(t *testing.T) {
	for _, a := range Apps() {
		a := a
		t.Run(a.Spec.Name, func(t *testing.T) {
			if err := a.Prog.Validate(); err != nil {
				t.Fatalf("invalid program: %v", err)
			}
			data, err := dex.Encode(a.Prog)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if _, err := dex.Decode(data); err != nil {
				t.Fatalf("decode: %v", err)
			}
		})
	}
}

func TestCorpusIsDeterministic(t *testing.T) {
	a1, err := ByName("Pinterest")
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := ByName("Pinterest")
	d1, _ := dex.Encode(a1.Prog)
	d2, _ := dex.Encode(a2.Prog)
	if string(d1) != string(d2) {
		t.Fatal("two corpus builds differ")
	}
}

// TestExtractocolMatchesStaticTruth checks the Table 1 Extractocol column:
// the analyzer must find exactly the statically visible transactions.
func TestExtractocolMatchesStaticTruth(t *testing.T) {
	for _, a := range Apps() {
		a := a
		t.Run(a.Spec.Name, func(t *testing.T) {
			rep, err := core.Analyze(a.Prog, core.NewOptions())
			if err != nil {
				t.Fatal(err)
			}
			got := rep.CountByMethod()
			for method, want := range a.Truth.StaticVis {
				if want == 0 {
					continue
				}
				if got[method] != want {
					t.Errorf("%s: Extractocol found %d, truth %d", method, got[method], want)
				}
			}
			for method, n := range got {
				if a.Truth.StaticVis[method] != n {
					t.Errorf("%s: extra signatures: got %d, truth %d", method, n, a.Truth.StaticVis[method])
				}
			}
		})
	}
}

// TestManualFuzzingMatchesTruth checks the manual-fuzzing column.
func TestManualFuzzingMatchesTruth(t *testing.T) {
	for _, a := range Apps() {
		a := a
		t.Run(a.Spec.Name, func(t *testing.T) {
			n := a.NewNetwork()
			res, err := fuzz.Run(a.Prog, n, fuzz.Manual)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Errors) > 0 {
				t.Fatalf("interpreter errors: %v", res.Errors)
			}
			entries := trace.FromNetwork(n.Trace())
			for _, e := range entries {
				if e.Status >= 400 {
					t.Errorf("failed exchange %s %s -> %d (%s)", e.Method, e.URL, e.Status, e.RespBody)
				}
			}
			got := trace.CountByMethod(entries)
			for method, want := range a.Truth.ManualVis {
				if got[method] != want {
					t.Errorf("%s: manual fuzzing saw %d, truth %d", method, got[method], want)
				}
			}
		})
	}
}

// TestAutoFuzzingMatchesTruth checks the PUMA-like column, including the
// custom-UI gates that zero out whole apps.
func TestAutoFuzzingMatchesTruth(t *testing.T) {
	for _, a := range Apps() {
		a := a
		t.Run(a.Spec.Name, func(t *testing.T) {
			n := a.NewNetwork()
			res, err := fuzz.Run(a.Prog, n, fuzz.Auto)
			if err != nil {
				t.Fatal(err)
			}
			entries := trace.FromNetwork(n.Trace())
			if a.Spec.Gated {
				if !res.Aborted || len(entries) != 0 {
					t.Fatalf("gated app produced auto traffic: %d entries", len(entries))
				}
				return
			}
			got := trace.CountByMethod(entries)
			for method, want := range a.Truth.AutoVis {
				if got[method] != want {
					t.Errorf("%s: auto fuzzing saw %d, truth %d", method, got[method], want)
				}
			}
		})
	}
}

// TestSignaturesValidAgainstTraffic is the paper's signature-validity
// check: every signature with observed traffic must match it.
func TestSignaturesValidAgainstTraffic(t *testing.T) {
	for _, a := range Apps() {
		a := a
		t.Run(a.Spec.Name, func(t *testing.T) {
			rep, err := core.Analyze(a.Prog, core.NewOptions())
			if err != nil {
				t.Fatal(err)
			}
			n := a.NewNetwork()
			if _, err := fuzz.Run(a.Prog, n, fuzz.Manual); err != nil {
				t.Fatal(err)
			}
			entries := trace.FromNetwork(n.Trace())
			res := trace.MatchReport(rep, entries)
			// Every non-intent trace entry must be covered by a signature.
			intentOnly := map[string]bool{}
			for m, c := range a.Truth.ManualVis {
				if c > a.Truth.StaticVis[m] {
					intentOnly[m] = true
				}
			}
			if len(res.Unmatched) > 0 && len(intentOnly) == 0 {
				t.Errorf("unmatched traffic: %v", res.Unmatched)
			}
			if res.SigsWithTraffic > 0 && res.SigsValid < res.SigsWithTraffic {
				t.Errorf("invalid signatures: %d of %d", res.SigsWithTraffic-res.SigsValid, res.SigsWithTraffic)
			}
		})
	}
}

package corpus

import (
	"extractocol/internal/httpsim"
	"extractocol/internal/ir"
)

// WeatherNotification builds the §3.4 asynchronous-event example: a
// location-service callback stores a query-string fragment ("q=<city>&
// units=metric") into a heap field; a later user click reads the field and
// issues the weather request. With the asynchronous-event heuristic
// disabled the fragment's keywords are invisible to static analysis; with
// one hop enabled they are recovered — the ablation the paper runs on the
// open-source corpus.
func WeatherNotification() *App {
	spec := AppSpec{
		Name: "Weather Notification", Package: "ru.gelin.android.weather.notification",
		Host: "api.weather.example", OpenSource: true, Protocol: "HTTP",
		Library: "urlconn", Handwritten: true,
		Counts:    map[string]MethodCounts{"GET": {E: 1, M: 1, A: 1}},
		XMLBodies: 1, Pairs: 1,
	}
	txs := planTransactions(spec)
	prog, baseNet := buildProgram(spec, txs)
	truth := deriveTruth(spec, txs)

	addWeatherAsyncFlow(prog)
	truth.ByMethod["GET"]++
	truth.StaticVis["GET"]++
	truth.ManualVis["GET"]++
	truth.AutoVis["GET"]++
	truth.XMLBodies++
	truth.Pairs++

	newNet := func() *httpsim.Network {
		n := baseNet()
		w := httpsim.NewServer("data.weather.example")
		w.HandlePrefix("GET", "/forecast", func(r *httpsim.Request) *httpsim.Response {
			return httpsim.XML(`<weather><city>` + r.Query().Get("q") +
				`</city><temperature unit="C">21</temperature><condition>sunny</condition></weather>`)
		})
		n.Register(w)
		return n
	}
	return &App{Spec: spec, Prog: prog, NewNetwork: newNet, Truth: truth}
}

func addWeatherAsyncFlow(p *ir.Program) {
	cls := p.AddClass(&ir.Class{
		Name: "ru.gelin.android.weather.notification.Updater",
		Fields: []*ir.Field{
			{Name: "locationQuery", Type: "java.lang.String", Static: true},
		},
	})

	// Location-service callback: build the query fragment into the heap.
	lb := ir.NewMethod(cls, "onLocationChanged", false, []string{"java.lang.String"}, "void")
	city := lb.Param(0)
	sb := lb.New("java.lang.StringBuilder")
	lb.InvokeSpecial("java.lang.StringBuilder.<init>", sb)
	s1 := lb.ConstStr("q=")
	lb.InvokeVoid("java.lang.StringBuilder.append", sb, s1)
	enc := lb.InvokeStatic("java.net.URLEncoder.encode", city)
	lb.InvokeVoid("java.lang.StringBuilder.append", sb, enc)
	s2 := lb.ConstStr("&units=metric")
	lb.InvokeVoid("java.lang.StringBuilder.append", sb, s2)
	frag := lb.Invoke("java.lang.StringBuilder.toString", sb)
	lb.StaticPut(cls.Name+".locationQuery", frag)
	lb.ReturnVoid()
	lb.Done()

	// A later user click reads the fragment and issues the request.
	cb := ir.NewMethod(cls, "onRefresh", false, nil, "void")
	sb2 := cb.New("java.lang.StringBuilder")
	cb.InvokeSpecial("java.lang.StringBuilder.<init>", sb2)
	base := cb.ConstStr("http://data.weather.example/forecast?")
	cb.InvokeVoid("java.lang.StringBuilder.append", sb2, base)
	stored := cb.StaticGet(cls.Name + ".locationQuery")
	cb.InvokeVoid("java.lang.StringBuilder.append", sb2, stored)
	uri := cb.Invoke("java.lang.StringBuilder.toString", sb2)
	u := cb.New("java.net.URL")
	cb.InvokeSpecial("java.net.URL.<init>", u, uri)
	conn := cb.Invoke("java.net.URL.openConnection", u)
	in := cb.Invoke("java.net.HttpURLConnection.getInputStream", conn)
	raw := cb.Invoke("java.io.InputStream.readAll", in)
	doc := cb.InvokeStatic("android.util.Xml.parse", raw)
	for _, tag := range []string{"temperature", "condition"} {
		tr := cb.ConstStr(tag)
		el := cb.Invoke("org.w3c.dom.Document.getElementsByTagName", doc, tr)
		cb.Invoke("org.w3c.dom.Element.getTextContent", el)
	}
	cb.ReturnVoid()
	cb.Done()

	p.Manifest.EntryPoints = append(p.Manifest.EntryPoints,
		ir.EntryPoint{Method: cls.Name + ".onLocationChanged", Kind: ir.EventLocation, Label: "gps"},
		ir.EntryPoint{Method: cls.Name + ".onRefresh", Kind: ir.EventClick, Label: "refresh"},
	)
}

package corpus

import (
	"fmt"

	"extractocol/internal/httpsim"
	"extractocol/internal/ir"
)

// TED builds the Table 4 / Fig. 1 case study: a media app whose catalog
// responses feed an SQLite database that later transactions read, and
// whose advertisement chain (#3 -> #4 -> #5) flows a query URI, then a
// video URI, into the media player — the prefetching opportunity of Fig. 1.
//
//	#1 GET speakers.json?limit=2000&api-key=<res>&filter=...  (JSON -> DB)
//	#2 POST graph.facebook.example/me/photos                  (sharing)
//	#3 GET v1/talks/<id>/android_ad.json?api-key=<res>        (JSON: ad URI)
//	#4 GET (.*) ad query URI from #3                          (XML: video URI)
//	#5 GET (.*) ad video URI from #4                          (-> MediaPlayer)
//	#6 GET v1/talk_catalogs/android_v1.json?api-key=...       (JSON -> DB)
//	#7 GET (.*) thumbnail URI from DB                         (-> ImageView)
//	#8 GET (.*) audio/video URI from DB                       (-> MediaPlayer)
//
// Transaction #6 is triggered by server-initiated content updates, which
// UI fuzzing cannot reproduce (§5.2: PUMA missed it). Ten generated filler
// transactions bring the totals to Table 1's 16 GET + 2 POST.
func TED() *App {
	spec := AppSpec{
		Name: "TED", Package: "com.ted.android", Host: "filler-api.ted.example",
		Protocol: "HTTP(S)", Library: "apache", Handwritten: true,
		Counts:     map[string]MethodCounts{"GET": {E: 9, M: 10, A: 4}, "POST": {E: 1, M: 1, A: 1}},
		JSONBodies: 6, Pairs: 5,
	}
	txs := planTransactions(spec)
	prog, baseNet := buildProgram(spec, txs)
	truth := deriveTruth(spec, txs)

	addTEDCaseStudy(prog)
	// Hand-written additions: 7 GET (one server-push triggered) + 1 POST.
	truth.ByMethod["GET"] += 7
	truth.ByMethod["POST"]++
	truth.StaticVis["GET"] += 7
	truth.StaticVis["POST"]++
	truth.ManualVis["GET"] += 6 // #6 (server push) is unreachable
	truth.ManualVis["POST"]++
	truth.AutoVis["GET"] += 6  // create + click handlers
	truth.AutoVis["POST"] += 0 // sharing sits behind a custom widget
	truth.JSONBodies += 3
	truth.XMLBodies++
	truth.Pairs += 5

	newNet := func() *httpsim.Network {
		n := baseNet()
		registerTEDServers(n)
		return n
	}
	return &App{Spec: spec, Prog: prog, NewNetwork: newNet, Truth: truth}
}

func addTEDCaseStudy(p *ir.Program) {
	p.Resources["api_key"] = "TED-ANDROID-KEY-2014"
	cls := p.AddClass(&ir.Class{Name: "com.ted.android.Catalog"})

	emitTEDSpeakers(p, cls)
	emitTEDFacebookShare(p, cls)
	emitTEDAdChain(p, cls)
	emitTEDTalkCatalog(p, cls)
	emitTEDThumbnail(p, cls)
	emitTEDPlayback(p, cls)
	emitBallast(p, cls, 120, newRng("ted/ballast"))
}

func tedAPIKey(b *ir.B) int {
	res := b.New("android.content.res.Resources")
	k := b.ConstStr("api_key")
	return b.Invoke("android.content.res.Resources.getString", res, k)
}

// emitTEDSpeakers: transaction #1.
func emitTEDSpeakers(p *ir.Program, cls *ir.Class) {
	b := ir.NewMethod(cls, "onSyncSpeakers", false, []string{"java.lang.String"}, "void")
	updatedAt := b.Param(0)
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial("java.lang.StringBuilder.<init>", sb)
	s1 := b.ConstStr("https://app-api.ted.example/v1/speakers.json?limit=2000&api-key=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, s1)
	key := tedAPIKey(b)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, key)
	s2 := b.ConstStr("&filter=updated_at:%3E")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, s2)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, updatedAt)
	uri := b.Invoke("java.lang.StringBuilder.toString", sb)
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial("org.apache.http.client.methods.HttpGet.<init>", req, uri)
	raw := rrExecute(b, req)
	js := b.InvokeStatic("org.json.JSONObject.parse", raw)
	kN := b.ConstStr("name")
	name := b.Invoke("org.json.JSONObject.getString", js, kN)
	kD := b.ConstStr("description")
	desc := b.Invoke("org.json.JSONObject.getString", js, kD)
	cv := b.New("android.content.ContentValues")
	b.InvokeSpecial("android.content.ContentValues.<init>", cv)
	c1 := b.ConstStr("name")
	b.InvokeVoid("android.content.ContentValues.put", cv, c1, name)
	c2 := b.ConstStr("description")
	b.InvokeVoid("android.content.ContentValues.put", cv, c2, desc)
	db := b.New("android.database.sqlite.SQLiteDatabase")
	tbl := b.ConstStr("speakers")
	b.InvokeVoid("android.database.sqlite.SQLiteDatabase.insert", db, tbl, cv)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = append(p.Manifest.EntryPoints,
		ir.EntryPoint{Method: cls.Name + ".onSyncSpeakers", Kind: ir.EventCreate, Label: "speakers"})
}

// emitTEDFacebookShare: transaction #2.
func emitTEDFacebookShare(p *ir.Program, cls *ir.Class) {
	b := ir.NewMethod(cls, "onShare", false, []string{"java.lang.String"}, "void")
	caption := b.Param(0)
	u := b.ConstStr("https://graph.facebook.example/me/photos")
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial("java.lang.StringBuilder.<init>", sb)
	s1 := b.ConstStr("caption=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, s1)
	enc := b.InvokeStatic("java.net.URLEncoder.encode", caption)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, enc)
	body := b.Invoke("java.lang.StringBuilder.toString", sb)
	ent := b.New("org.apache.http.entity.StringEntity")
	b.InvokeSpecial("org.apache.http.entity.StringEntity.<init>", ent, body)
	req := b.New("org.apache.http.client.methods.HttpPost")
	b.InvokeSpecial("org.apache.http.client.methods.HttpPost.<init>", req, u)
	b.InvokeVoid("org.apache.http.client.methods.HttpPost.setEntity", req, ent)
	rrDiscard(b, req)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = append(p.Manifest.EntryPoints,
		ir.EntryPoint{Method: cls.Name + ".onShare", Kind: ir.EventCustomUI, Label: "share"})
}

// emitTEDAdChain: transactions #3, #4 and #5 in one click handler — the
// Fig. 1 prefetching chain.
func emitTEDAdChain(p *ir.Program, cls *ir.Class) {
	b := ir.NewMethod(cls, "onOpenTalk", false, []string{"int"}, "void")
	talkID := b.Param(0)
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial("java.lang.StringBuilder.<init>", sb)
	s1 := b.ConstStr("https://app-api.ted.example/v1/talks/")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, s1)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, talkID)
	s2 := b.ConstStr("/android_ad.json?api-key=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, s2)
	key := tedAPIKey(b)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, key)
	uri := b.Invoke("java.lang.StringBuilder.toString", sb)
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial("org.apache.http.client.methods.HttpGet.<init>", req, uri)
	raw := rrExecute(b, req) // #3

	js := b.InvokeStatic("org.json.JSONObject.parse", raw)
	kComp := b.ConstStr("companions")
	comp := b.Invoke("org.json.JSONObject.getJSONObject", js, kComp)
	kPre := b.ConstStr("preroll")
	pre := b.Invoke("org.json.JSONObject.getJSONObject", comp, kPre)
	kH := b.ConstStr("height")
	b.Invoke("org.json.JSONObject.getInt", pre, kH)
	kW := b.ConstStr("width")
	b.Invoke("org.json.JSONObject.getInt", pre, kW)
	kURL := b.ConstStr("url")
	adQueryURI := b.Invoke("org.json.JSONObject.getString", js, kURL)

	// #4: fetch the ad query URI; XML response carries the video URI.
	req2 := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial("org.apache.http.client.methods.HttpGet.<init>", req2, adQueryURI)
	raw2 := rrExecute(b, req2)
	doc := b.InvokeStatic("android.util.Xml.parse", raw2)
	tagMedia := b.ConstStr("mediafile")
	el := b.Invoke("org.w3c.dom.Document.getElementsByTagName", doc, tagMedia)
	videoURI := b.Invoke("org.w3c.dom.Element.getTextContent", el)

	// #5: stream the advertisement video.
	mp := b.New("android.media.MediaPlayer")
	b.InvokeVoid("android.media.MediaPlayer.setDataSource", mp, videoURI)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = append(p.Manifest.EntryPoints,
		ir.EntryPoint{Method: cls.Name + ".onOpenTalk", Kind: ir.EventClick, Label: "talk"})
}

// emitTEDTalkCatalog: transaction #6, triggered by server content updates.
func emitTEDTalkCatalog(p *ir.Program, cls *ir.Class) {
	b := ir.NewMethod(cls, "onContentUpdate", false, []string{"java.lang.String"}, "void")
	ids := b.Param(0)
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial("java.lang.StringBuilder.<init>", sb)
	s1 := b.ConstStr("https://app-api.ted.example/v1/talk_catalogs/android_v1.json?api-key=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, s1)
	key := tedAPIKey(b)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, key)
	s2 := b.ConstStr("&fields=duration_in_seconds&filter=id:")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, s2)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, ids)
	uri := b.Invoke("java.lang.StringBuilder.toString", sb)
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial("org.apache.http.client.methods.HttpGet.<init>", req, uri)
	raw := rrExecute(b, req)
	js := b.InvokeStatic("org.json.JSONObject.parse", raw)
	kT := b.ConstStr("thumbnail_url")
	thumb := b.Invoke("org.json.JSONObject.getString", js, kT)
	kV := b.ConstStr("video_url")
	video := b.Invoke("org.json.JSONObject.getString", js, kV)
	cv := b.New("android.content.ContentValues")
	b.InvokeSpecial("android.content.ContentValues.<init>", cv)
	c1 := b.ConstStr("thumbnail")
	b.InvokeVoid("android.content.ContentValues.put", cv, c1, thumb)
	c2 := b.ConstStr("video")
	b.InvokeVoid("android.content.ContentValues.put", cv, c2, video)
	db := b.New("android.database.sqlite.SQLiteDatabase")
	tbl := b.ConstStr("talks")
	b.InvokeVoid("android.database.sqlite.SQLiteDatabase.insert", db, tbl, cv)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = append(p.Manifest.EntryPoints,
		ir.EntryPoint{Method: cls.Name + ".onContentUpdate", Kind: ir.EventServerPush, Label: "catalog"})
}

// emitTEDThumbnail: transaction #7 — GET (.*) from the DB into the UI.
func emitTEDThumbnail(p *ir.Program, cls *ir.Class) {
	b := ir.NewMethod(cls, "onShowThumbnail", false, nil, "void")
	db := b.New("android.database.sqlite.SQLiteDatabase")
	tbl := b.ConstStr("talks")
	col := b.ConstStr("thumbnail")
	stored := b.Invoke("android.database.sqlite.SQLiteDatabase.query", db, tbl, col)
	uri := b.Reg()
	b.MoveTo(uri, stored)
	b.IfNZ(stored, "haveThumb")
	def := b.ConstStr("https://cdn.ted.example/thumbs/default.jpg")
	b.MoveTo(uri, def)
	b.Label("haveThumb")
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial("org.apache.http.client.methods.HttpGet.<init>", req, uri)
	raw := rrExecute(b, req)
	iv := b.New("android.widget.ImageView")
	b.InvokeVoid("android.widget.ImageView.setImageBitmap", iv, raw)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = append(p.Manifest.EntryPoints,
		ir.EntryPoint{Method: cls.Name + ".onShowThumbnail", Kind: ir.EventClick, Label: "thumb"})
}

// emitTEDPlayback: transaction #8 — GET (.*) from the DB into the player.
func emitTEDPlayback(p *ir.Program, cls *ir.Class) {
	b := ir.NewMethod(cls, "onPlay", false, nil, "void")
	db := b.New("android.database.sqlite.SQLiteDatabase")
	tbl := b.ConstStr("talks")
	col := b.ConstStr("video")
	stored := b.Invoke("android.database.sqlite.SQLiteDatabase.query", db, tbl, col)
	uri := b.Reg()
	b.MoveTo(uri, stored)
	b.IfNZ(stored, "haveVideo")
	def := b.ConstStr("https://cdn.ted.example/video/intro.mp4")
	b.MoveTo(uri, def)
	b.Label("haveVideo")
	mp := b.New("android.media.MediaPlayer")
	b.InvokeVoid("android.media.MediaPlayer.setDataSource", mp, uri)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = append(p.Manifest.EntryPoints,
		ir.EntryPoint{Method: cls.Name + ".onPlay", Kind: ir.EventClick, Label: "play"})
}

func registerTEDServers(n *httpsim.Network) {
	api := httpsim.NewServer("app-api.ted.example")
	api.Handle("GET", "/v1/speakers.json", func(r *httpsim.Request) *httpsim.Response {
		if r.Query().Get("api-key") == "" {
			return httpsim.Error(401, "missing api key")
		}
		return httpsim.JSON(`{"name":"Speaker A","description":"Researcher"}`)
	})
	api.HandlePrefix("GET", "/v1/talks/", func(r *httpsim.Request) *httpsim.Response {
		return httpsim.JSON(`{"companions":{"on_page":{"height":250,"width":300},` +
			`"preroll":{"height":360,"width":640}},` +
			`"url":"https://ads.ted.example/query/preroll"}`)
	})
	api.Handle("GET", "/v1/talk_catalogs/android_v1.json", func(r *httpsim.Request) *httpsim.Response {
		return httpsim.JSON(`{"thumbnail_url":"https://cdn.ted.example/thumbs/42.jpg",` +
			`"video_url":"https://cdn.ted.example/video/42.mp4","duration_in_seconds":843}`)
	})
	n.Register(api)

	ads := httpsim.NewServer("ads.ted.example")
	ads.HandlePrefix("GET", "/query/", func(r *httpsim.Request) *httpsim.Response {
		return httpsim.XML(`<vast version="2.0"><ad><mediafile>` +
			`https://adcdn.ted.example/creative/77.mp4</mediafile></ad></vast>`)
	})
	n.Register(ads)

	cdn := httpsim.NewServer("cdn.ted.example")
	cdn.HandlePrefix("GET", "/thumbs/", func(r *httpsim.Request) *httpsim.Response {
		return httpsim.Binary(fmt.Sprintf("JPEG:%s", r.Path()))
	})
	cdn.HandlePrefix("GET", "/video/", func(r *httpsim.Request) *httpsim.Response {
		return httpsim.Binary(fmt.Sprintf("H264:%s", r.Path()))
	})
	n.Register(cdn)
	adcdn := httpsim.NewServer("adcdn.ted.example")
	adcdn.HandlePrefix("GET", "/", func(r *httpsim.Request) *httpsim.Response {
		return httpsim.Binary(fmt.Sprintf("BYTES:%s", r.Path()))
	})
	n.Register(adcdn)

	fb := httpsim.NewServer("graph.facebook.example")
	fb.Handle("POST", "/me/photos", func(r *httpsim.Request) *httpsim.Response {
		return httpsim.JSON(`{"id":"photo-1"}`)
	})
	n.Register(fb)
}

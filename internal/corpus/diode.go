package corpus

import (
	"fmt"
	"strings"

	"extractocol/internal/httpsim"
	"extractocol/internal/ir"
)

// Diode builds the paper's running example (Fig. 3): an open-source Reddit
// client whose doInBackground builds one of nine URI patterns depending on
// the selected subreddit and paging state, then executes the request and
// parses the subreddit JSON. Table 1 reports 24 unique GET signatures and
// 5 reconstructed pairs; the Fig. 3 task is one of them, the rest are
// plain browse endpoints.
func Diode() *App {
	spec := AppSpec{
		Name: "Diode", Package: "in.shick.diode", Host: "api.diode.example",
		OpenSource: true, Protocol: "HTTP(S)", Library: "apache", Handwritten: true,
		Counts:     map[string]MethodCounts{"GET": {E: 23, M: 23, A: 23}},
		JSONBodies: 2, Pairs: 5,
		Ballast: 480,
	}
	txs := planTransactions(spec)
	prog, baseNet := buildProgram(spec, txs)
	truth := deriveTruth(spec, txs)

	addDiodeTask(prog)
	truth.ByMethod["GET"]++
	truth.StaticVis["GET"]++
	truth.ManualVis["GET"]++
	truth.AutoVis["GET"]++
	truth.JSONBodies++
	truth.Pairs++

	newNet := func() *httpsim.Network {
		n := baseNet()
		s := httpsim.NewServer("www.reddit.com")
		listing := func(r *httpsim.Request) *httpsim.Response {
			return httpsim.JSON(`{"kind":"Listing","data":{"after":"t3_next","children":[` +
				`{"kind":"t3","data":{"title":"post","author":"u1","score":12,"permalink":"/r/x/1"}}]}}`)
		}
		s.HandlePrefix("GET", "/", listing)
		n.Register(s)
		return n
	}
	return &App{Spec: specNamed(spec, "Diode"), Prog: prog, NewNetwork: newNet, Truth: truth}
}

func specNamed(s AppSpec, name string) AppSpec {
	s.Name = name
	return s
}

// addDiodeTask emits the Fig. 3 DownloadThreadsTask: nine URI shapes from
// two sequential three-way branches, followed by execute and JSON parsing.
func addDiodeTask(p *ir.Program) {
	task := p.AddClass(&ir.Class{
		Name:  "in.shick.diode.DownloadThreadsTask",
		Super: "android.os.AsyncTask",
		Fields: []*ir.Field{
			{Name: "mSubreddit", Type: "java.lang.String"},
			{Name: "mSortByUrl", Type: "java.lang.String"},
			{Name: "mSortByUrlExtra", Type: "java.lang.String"},
			{Name: "mSearchQuery", Type: "java.lang.String"},
			{Name: "mSortSearch", Type: "java.lang.String"},
			{Name: "mAfter", Type: "java.lang.String"},
			{Name: "mBefore", Type: "java.lang.String"},
			{Name: "mCount", Type: "int"},
		},
	})

	b := ir.NewMethod(task, "doInBackground", false, nil, "java.lang.String")
	this := b.This()
	sb := b.New("java.lang.StringBuilder")
	b.InvokeSpecial("java.lang.StringBuilder.<init>", sb)

	sub := b.FieldGet(this, "mSubreddit")
	front := b.ConstStr("frontpage")
	isFront := b.Invoke("java.lang.String.equals", sub, front)
	b.IfNZ(isFront, "frontpage")
	searchK := b.ConstStr("search")
	isSearch := b.Invoke("java.lang.String.equals", sub, searchK)
	b.IfNZ(isSearch, "search")

	// else: /r/<subreddit>/<sort>.json?&
	r1 := b.ConstStr("http://www.reddit.com/r/")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, r1)
	trimmed := b.Invoke("java.lang.String.trim", sub)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, trimmed)
	r2 := b.ConstStr("/")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, r2)
	sortBy := b.FieldGet(this, "mSortByUrl")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, sortBy)
	r3 := b.ConstStr(".json?")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, r3)
	r4 := b.ConstStr("&")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, r4)
	b.Goto("paging")

	b.Label("frontpage")
	f1 := b.ConstStr("http://www.reddit.com/")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, f1)
	sortBy2 := b.FieldGet(this, "mSortByUrl")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, sortBy2)
	f2 := b.ConstStr(".json?")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, f2)
	extra := b.FieldGet(this, "mSortByUrlExtra")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, extra)
	f3 := b.ConstStr("&")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, f3)
	b.Goto("paging")

	b.Label("search")
	s1 := b.ConstStr("http://www.reddit.com/search/.json?q=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, s1)
	q := b.FieldGet(this, "mSearchQuery")
	encQ := b.InvokeStatic("java.net.URLEncoder.encode", q)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, encQ)
	s2 := b.ConstStr("&sort=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, s2)
	srt := b.FieldGet(this, "mSortSearch")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, srt)

	b.Label("paging")
	after := b.FieldGet(this, "mAfter")
	b.IfZ(after, "maybeBefore")
	p1 := b.ConstStr("count=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, p1)
	cnt := b.FieldGet(this, "mCount")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, cnt)
	p2 := b.ConstStr("&after=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, p2)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, after)
	p3 := b.ConstStr("&")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, p3)
	b.Goto("send")

	b.Label("maybeBefore")
	before := b.FieldGet(this, "mBefore")
	b.IfZ(before, "send")
	q1 := b.ConstStr("count=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, q1)
	cnt2 := b.FieldGet(this, "mCount")
	one := b.ConstInt(1)
	limit := b.ConstInt(25) // Constants.DEFAULT_THREAD_DOWNLOAD_LIMIT
	tmp := b.Binop("+", cnt2, one)
	adj := b.Binop("-", tmp, limit)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, adj)
	q2 := b.ConstStr("&before=")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, q2)
	b.InvokeVoid("java.lang.StringBuilder.append", sb, before)
	q3 := b.ConstStr("&")
	b.InvokeVoid("java.lang.StringBuilder.append", sb, q3)

	b.Label("send")
	uri := b.Invoke("java.lang.StringBuilder.toString", sb)
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial("org.apache.http.client.methods.HttpGet.<init>", req, uri)
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial("org.apache.http.impl.client.DefaultHttpClient.<init>", cl)
	resp := b.Invoke("org.apache.http.client.HttpClient.execute", cl, req)
	ent := b.Invoke("org.apache.http.HttpResponse.getEntity", resp)
	raw := b.InvokeStatic("org.apache.http.util.EntityUtils.toString", ent)

	// parseSubredditJSON
	js := b.InvokeStatic("org.json.JSONObject.parse", raw)
	kData := b.ConstStr("data")
	data := b.Invoke("org.json.JSONObject.getJSONObject", js, kData)
	kAfter := b.ConstStr("after")
	newAfter := b.Invoke("org.json.JSONObject.getString", data, kAfter)
	b.FieldPut(this, "mAfter", newAfter)
	kChildren := b.ConstStr("children")
	children := b.Invoke("org.json.JSONObject.getJSONArray", data, kChildren)
	zero := b.ConstInt(0)
	child := b.Invoke("org.json.JSONArray.getJSONObject", children, zero)
	kCD := b.ConstStr("data")
	cd := b.Invoke("org.json.JSONObject.getJSONObject", child, kCD)
	kTitle := b.ConstStr("title")
	b.Invoke("org.json.JSONObject.getString", cd, kTitle)
	kAuthor := b.ConstStr("author")
	b.Invoke("org.json.JSONObject.getString", cd, kAuthor)
	b.Return(raw)
	b.Done()

	// The click handler configures the task from user input and runs it.
	main := p.AddClass(&ir.Class{Name: "in.shick.diode.ThreadsListActivity"})
	h := ir.NewMethod(main, "onClickRefresh", false,
		[]string{"java.lang.String", "java.lang.String", "java.lang.String"}, "void")
	t := h.New("in.shick.diode.DownloadThreadsTask")
	h.InvokeSpecial("in.shick.diode.DownloadThreadsTask.<init>", t)
	h.FieldPut(t, "mSubreddit", h.Param(0))
	h.FieldPut(t, "mSortByUrl", h.Param(1))
	h.FieldPut(t, "mSearchQuery", h.Param(2))
	h.FieldPut(t, "mSortSearch", h.Param(1))
	extraDef := h.ConstStr("")
	h.FieldPut(t, "mSortByUrlExtra", extraDef)
	cntDef := h.ConstInt(25)
	h.FieldPut(t, "mCount", cntDef)
	h.InvokeVoid("android.os.AsyncTask.execute", t)
	h.ReturnVoid()
	h.Done()

	p.Manifest.EntryPoints = append(p.Manifest.EntryPoints, ir.EntryPoint{
		Method: "in.shick.diode.ThreadsListActivity.onClickRefresh",
		Kind:   ir.EventClick, Label: "refresh",
	})
}

// DiodeFigure3URIs returns sample URIs that the Fig. 3 signature must
// accept, used by tests and the quickstart example.
func DiodeFigure3URIs() []string {
	return []string{
		"http://www.reddit.com/search/.json?q=cats&sort=top",
		"http://www.reddit.com/hot.json?&",
		"http://www.reddit.com/r/golang/new.json?&",
		"http://www.reddit.com/r/golang/new.json?&count=25&after=t3_abc&",
	}
}

// diodeInput supplies the runtime user input for Diode's refresh handler:
// subreddit name, sort order and search query.
func diodeInput(method string, param int, typ string) any {
	if strings.HasSuffix(method, "onClickRefresh") {
		switch param {
		case 0:
			return "golang"
		case 1:
			return "new"
		default:
			return "static analysis"
		}
	}
	if typ == "int" {
		return int64(param + 1)
	}
	return fmt.Sprintf("input%d", param)
}

// Package corpus provides the 34-application evaluation corpus: synthetic
// Android applications authored in the IR, one per row of the paper's
// Table 1 (14 open-source and 20 closed-source apps), plus their simulated
// server backends.
//
// Each application is generated from a declarative spec carrying the
// per-method signature counts the paper reports for Extractocol (E),
// manual UI fuzzing (M), and automatic UI fuzzing (A). The spec drives
// which *reachability trait* each transaction's entry point gets:
//
//   - transactions Extractocol misses are intent-triggered (§4);
//   - transactions fuzzing misses are timer-, server-push- or
//     side-effect-triggered (§5.1);
//   - transactions automatic fuzzing misses sit behind login or custom UI;
//   - apps whose auto column is all zeros gate the whole UI behind a
//     custom-drawn first screen PUMA cannot recognize.
//
// Crucially, the static analyzer never sees the traits — it must
// rediscover every transaction from the binary. The traits only gate what
// the dynamic baselines can reach, which is the paper's own explanation
// for the coverage differences.
//
// Four apps are hand-written at full fidelity for the case studies:
// Diode (Fig. 3), radio reddit (Table 3), TED (Table 4, Fig. 1) and
// Kayak (Tables 5 and 6).
package corpus

import (
	"fmt"
	"sort"

	"extractocol/internal/httpsim"
	"extractocol/internal/ir"
)

// MethodCounts carries one Table 1 cell triple for an HTTP method.
type MethodCounts struct {
	E int // Extractocol
	M int // manual UI fuzzing
	A int // automatic UI fuzzing (or source code, for open-source apps)
}

// Total returns the number of distinct transactions implied by the cell:
// the union of what static analysis and manual fuzzing see.
func (c MethodCounts) Total() int {
	if c.E > c.M {
		return c.E
	}
	return c.M
}

// AppSpec describes one corpus application.
type AppSpec struct {
	Name       string
	Package    string
	Host       string
	OpenSource bool
	Protocol   string // "HTTP", "HTTPS", "HTTP(S)" — cosmetic, from Table 1
	Gated      bool   // custom-UI gate: automatic fuzzing explores nothing

	// Counts holds the Table 1 cells keyed by HTTP method.
	Counts map[string]MethodCounts

	// Body-kind quotas (paper's Query string / JSON / XML columns) and the
	// reconstructed-pair count. The generator distributes them over the
	// transactions.
	QueryBodies int
	JSONBodies  int
	XMLBodies   int
	Pairs       int

	// Library selects the HTTP stack the app uses: "apache", "urlconn",
	// "okhttp" or "volley".
	Library string

	// Ballast is the number of non-networking methods (UI plumbing,
	// formatting, view logic) to emit; 0 picks a default proportional to
	// the transaction count. Real apps are mostly not protocol code — the
	// paper's Fig. 3 slices cover only 6.3% of Diode — and the slicer's
	// selectivity is only measurable against such ballast.
	Ballast int

	// Handwritten marks the four case-study apps built by dedicated code.
	Handwritten bool

	// Scenarios lists protocol-surface extensions to append as extra
	// transactions ("gzip", "chunked", "multipart", "cookie", "token",
	// "paginate"); see planScenarios. The Table 1 specs leave it empty.
	Scenarios []string

	// Obfuscated applies ProGuard-style renaming to the generated program
	// (a generative-corpus trait; analysis output must be invariant).
	Obfuscated bool
}

// App is a fully built corpus application.
type App struct {
	Spec AppSpec
	Prog *ir.Program
	// NewNetwork builds a fresh simulated backend (fresh state per run).
	NewNetwork func() *httpsim.Network
	// Truth is the ground truth derived from the spec (the "source code
	// analysis" column for open-source apps).
	Truth Truth
}

// Truth is the per-app ground truth used by the evaluation.
type Truth struct {
	ByMethod    map[string]int // all transactions per method
	StaticVis   map[string]int // transactions visible to static analysis
	ManualVis   map[string]int // reachable by manual fuzzing
	AutoVis     map[string]int // reachable by automatic fuzzing
	QueryBodies int
	JSONBodies  int
	XMLBodies   int
	Pairs       int
}

// Apps builds the complete corpus. Programs are freshly generated on every
// call so callers may mutate (e.g. obfuscate) their copies.
func Apps() []*App {
	var out []*App
	for _, spec := range Specs() {
		out = append(out, Generate(spec))
	}
	out = append(out, Diode(), RadioReddit(), TED(), Kayak(), WeatherNotification())
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// ByName returns one corpus app.
func ByName(name string) (*App, error) {
	for _, a := range Apps() {
		if a.Spec.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("corpus: unknown app %q", name)
}

// Names lists corpus app names in order.
func Names() []string {
	var out []string
	for _, a := range Apps() {
		out = append(out, a.Spec.Name)
	}
	return out
}

// OpenSource returns the open-source subset.
func OpenSource() []*App {
	var out []*App
	for _, a := range Apps() {
		if a.Spec.OpenSource {
			out = append(out, a)
		}
	}
	return out
}

// ClosedSource returns the closed-source subset.
func ClosedSource() []*App {
	var out []*App
	for _, a := range Apps() {
		if !a.Spec.OpenSource {
			out = append(out, a)
		}
	}
	return out
}

// rng is a deterministic splitmix64 generator used for picking keyword
// vocabulary; the corpus must be bit-identical across runs.
type rng struct{ state uint64 }

func newRng(seed string) *rng {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(seed); i++ {
		h ^= uint64(seed[i])
		h *= 1099511628211
	}
	return &rng{state: h}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

func (r *rng) pick(words []string) string { return words[r.intn(len(words))] }

// Vocabulary for resources, query keys and JSON keys.
var (
	resourceWords = []string{
		"items", "feed", "products", "users", "session", "search", "offers",
		"orders", "messages", "notifications", "categories", "photos",
		"reviews", "cart", "profile", "friends", "stories", "boards",
		"pins", "tracks", "stations", "videos", "articles", "deals",
		"auctions", "listings", "jobs", "flights", "hotels", "weather",
		"alerts", "coupons", "payments", "shipments", "wallet", "streams",
	}
	keyWords = []string{
		"id", "token", "page", "limit", "sort", "filter", "lang", "country",
		"device", "version", "q", "category", "price", "status", "user_id",
		"session_id", "offset", "count", "fields", "format", "api_key",
		"timestamp", "lat", "lon", "zip", "currency", "locale", "tab",
		"size", "color", "brand", "rating", "seller", "buyer", "bid",
	}
	respWords = []string{
		"title", "name", "url", "image", "thumbnail", "description",
		"created_at", "updated_at", "score", "likes", "comments", "state",
		"total", "next_page", "prev_page", "owner", "address", "phone",
		"email", "balance", "expires", "kind", "tags", "body", "author",
		"duration", "views", "position", "quantity", "discount", "stock",
	}
)

// Package semmodel is the API semantic model of Extractocol (§3.2): a
// declarative description of the Android/Java APIs commonly used for HTTP
// protocol processing. Each modeled method carries a Kind describing its
// operational semantics. Three engines consume the same table:
//
//   - the taint engine derives forward/backward propagation rules,
//   - the signature builder interprets calls to reconstruct message formats,
//   - the interpreter (dynamic baseline) executes the same semantics.
//
// The model covers the paper's inventory: org.apache.http, java.net,
// android.net.http, com.android.volley, okhttp, retrofit, BeeFramework,
// rx.android, eight JSON/XML libraries (org.json, gson, jackson, org.xml,
// ...), containers, string/byte manipulation, Android resources, SQLite,
// and media/file sinks. Demarcation points (39 across 16 classes) separate
// request construction from response processing.
package semmodel

// Kind is the operational class of a modeled API method.
type Kind int

// Modeled method kinds.
const (
	// KOpaque is an unmodeled library method: conservatively, taint flows
	// from receiver and arguments to the return value.
	KOpaque Kind = iota

	// String construction.
	KStringBuilderInit    // new StringBuilder() / (String)
	KAppend               // sb.append(x) -> sb (receiver accumulates)
	KToString             // sb.toString() -> accumulated string
	KStringConcat         // s.concat(t) / String.+ -> new string
	KValueOf              // String.valueOf(x) / Integer.toString(x)
	KURLEncode            // URLEncoder.encode(s, enc)
	KPassThrough          // trim, toLowerCase, substring, intern...
	KStringEquals         // s.equals(t) -> bool
	KStringFormatIdentity // keeps argument 0's signature (e.g. Uri.parse)

	// HTTP request construction (client side).
	KHTTPReqInit      // new HttpGet/HttpPost/...(uri)
	KHTTPSetEntity    // request.setEntity(entity)
	KHTTPAddHeader    // request.addHeader(name, value)
	KStringEntityInit // new StringEntity(body)
	KFormEntityInit   // new UrlEncodedFormEntity(List<NameValuePair>)
	KNVPairInit       // new BasicNameValuePair(k, v)

	// Raw TCP sockets (§4 extension: "direct use of socket can be handled
	// by modeling socket APIs").
	KSocketInit // new Socket(host, port): a TCP request object

	// URLConnection style.
	KURLInit        // new URL(uri)
	KOpenConnection // url.openConnection() -> connection (request object)
	KConnSetMethod  // conn.setRequestMethod("POST")
	KConnSetHeader  // conn.setRequestProperty(k, v)
	KConnGetOutput  // conn.getOutputStream() -> request body stream
	KStreamWrite    // out.write(bytes/string)
	KConnGetInput   // DP: conn.getInputStream() -> response stream
	KReadStream     // read stream fully -> string

	// okhttp style.
	KOkRequestBuilder // new Request.Builder()
	KOkURL            // builder.url(uri) -> builder
	KOkPost           // builder.post(body) -> builder
	KOkHeader         // builder.header(k, v) -> builder
	KOkBuild          // builder.build() -> request
	KOkNewCall        // client.newCall(request) -> call
	KOkBodyCreate     // RequestBody.create(type, content)
	KRespBody         // response.body() / body().string()

	// Demarcation points and response access.
	KExecuteDP     // client.execute(request) -> response (sync DP)
	KEnqueueDP     // call.enqueue(callback) / queue.add(request): async DP
	KRespGetEntity // response.getEntity()
	KEntityContent // entity.getContent() / EntityUtils.toString(entity)
	KRespGetHeader // response.getFirstHeader(name)

	// JSON.
	KJSONInit     // new JSONObject()
	KJSONParse    // new JSONObject(string) / parser.parse(string)
	KJSONPut      // obj.put(key, val) -> obj
	KJSONGetStr   // obj.getString/optString(key)
	KJSONGetInt   // obj.getInt/optInt(key)
	KJSONGetBool  // obj.getBoolean(key)
	KJSONGetObj   // obj.getJSONObject(key)
	KJSONGetArr   // obj.getJSONArray(key)
	KJSONArrGet   // arr.getJSONObject(i) / arr.get(i)
	KJSONArrLen   // arr.length()
	KJSONToString // obj.toString() -> serialized body
	KGsonFromJSON // gson.fromJson(str, Class) -> typed object (reflection)
	KGsonToJSON   // gson.toJson(obj) -> string (reflection)

	// XML.
	KXMLParse  // parser.parse(string) -> document
	KXMLGetTag // doc.getElementsByTagName(tag) -> element
	KXMLGetAttr
	KXMLGetText

	// Containers.
	KListInit
	KListAdd
	KListGet
	KMapInit
	KMapPut
	KMapGet

	// Android platform semantics.
	KResGetString // Resources.getString(key): value known from the APK
	KDBInsert     // SQLiteDatabase.insert(table, values)
	KDBUpdate     // SQLiteDatabase.update(table, values)
	KDBQuery      // SQLiteDatabase.query(table, column) -> stored value
	KCVInit       // new ContentValues()
	KCVPut        // values.put(column, v)

	// Sinks (how network data is consumed, §2).
	KMediaSetSource // MediaPlayer.setDataSource(uri): DP + media sink
	KFileWrite      // FileOutputStream.write: file sink
	KUIDisplay      // TextView.setText: UI sink

	// Sources (where network-bound data originates, §2).
	KMicRead     // AudioRecord.read: microphone source
	KCameraRead  // Camera.takePicture: camera source
	KLocationGet // Location.getLatitude/getLongitude: location source
	KDeviceID    // TelephonyManager.getDeviceId: device identifier

	// Implicit control flow (threads / async, §3.4).
	KAsyncExecute  // AsyncTask.execute(args) -> doInBackground
	KThreadStart   // Thread.start() -> run
	KTimerSchedule // Timer.schedule(task, delay) -> task.run
	KHandlerPost   // Handler.post(runnable) -> runnable.run
	KFutureSubmit  // ExecutorService.submit(runnable)
	KRxSubscribe   // rx.Observable.subscribe(observer)

	// Intents: recognized but intentionally NOT modeled by the analyzer,
	// matching the paper's stated limitation (§4).
	KIntentSend

	// Stream decorators (gzip / chunked readers): the wrapper aliases the
	// wrapped stream, so reads and writes flow through transparently.
	KStreamWrap // new GZIPInputStream(in) / new BufferedReader(rdr) / ...

	// Multipart request bodies (org.apache.http.entity.mime).
	KMultipartCreate  // MultipartEntityBuilder.create() -> builder
	KMultipartAddPart // builder.addTextBody(name, value) -> builder
	KMultipartBuild   // builder.build() -> entity
)

// Role names the position of a method argument in Args (receiver included
// at index 0 for instance calls).
type Role int

// Method is one modeled API method.
type Method struct {
	Ref  string // fully qualified "Class.method"
	Kind Kind

	// DP marks demarcation points. ReqArg is the Args index holding the
	// request object (or URI string, for single-shot DPs); -1 if none.
	// RespRet marks the return value as the response object.
	DP      bool
	ReqArg  int
	RespRet bool

	// CallbackMethod names the method invoked implicitly on the callback
	// object for async registration calls ("run", "onResponse",
	// "doInBackground"). CallbackArg is the Args index holding the
	// callback receiver.
	CallbackMethod string
	CallbackArg    int

	// HTTPMethod is the request method implied by KHTTPReqInit classes.
	HTTPMethod string

	// Sink/Source classify data endpoints for consumption tracking.
	Sink   string // "media", "file", "ui"
	Source string // "microphone", "camera", "location", "device"
}

// Model is an indexed set of modeled methods.
type Model struct {
	methods map[string]*Method
}

// Lookup returns the model entry for a fully qualified method reference,
// or nil when the method is unmodeled.
func (m *Model) Lookup(ref string) *Method { return m.methods[ref] }

// IsDP reports whether ref is a demarcation point.
func (m *Model) IsDP(ref string) bool {
	e := m.methods[ref]
	return e != nil && e.DP
}

// DemarcationPoints returns all modeled DPs sorted by reference.
func (m *Model) DemarcationPoints() []*Method {
	var out []*Method
	for _, e := range m.methods {
		if e.DP {
			out = append(out, e)
		}
	}
	sortMethods(out)
	return out
}

// Methods returns all modeled methods sorted by reference.
func (m *Model) Methods() []*Method {
	out := make([]*Method, 0, len(m.methods))
	for _, e := range m.methods {
		out = append(out, e)
	}
	sortMethods(out)
	return out
}

// ClassCount returns the number of distinct classes contributing DPs.
func (m *Model) ClassCount() int {
	classes := map[string]bool{}
	for _, e := range m.methods {
		if e.DP {
			cls, _, ok := splitRef(e.Ref)
			if ok {
				classes[cls] = true
			}
		}
	}
	return len(classes)
}

func splitRef(ref string) (string, string, bool) {
	for i := len(ref) - 1; i >= 0; i-- {
		if ref[i] == '.' {
			return ref[:i], ref[i+1:], true
		}
	}
	return "", "", false
}

func sortMethods(ms []*Method) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Ref < ms[j-1].Ref; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

func (m *Model) add(e *Method) {
	if m.methods == nil {
		m.methods = map[string]*Method{}
	}
	if e.ReqArg == 0 && !e.DP {
		e.ReqArg = -1
	}
	m.methods[e.Ref] = e
}

// Register adds or replaces a model entry; it is the extension plugin hook
// the paper describes for adding new API semantics.
func (m *Model) Register(e *Method) { m.add(e) }

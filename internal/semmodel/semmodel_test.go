package semmodel

import "testing"

func TestDefaultModelCoversCoreAPIs(t *testing.T) {
	m := Default()
	refs := []struct {
		ref  string
		kind Kind
	}{
		{"java.lang.StringBuilder.append", KAppend},
		{"java.lang.StringBuilder.toString", KToString},
		{"org.apache.http.client.HttpClient.execute", KExecuteDP},
		{"org.json.JSONObject.getString", KJSONGetStr},
		{"com.google.gson.Gson.fromJson", KGsonFromJSON},
		{"android.content.res.Resources.getString", KResGetString},
		{"android.media.MediaPlayer.setDataSource", KMediaSetSource},
		{"android.os.AsyncTask.execute", KAsyncExecute},
		{"java.net.URLEncoder.encode", KURLEncode},
	}
	for _, tt := range refs {
		e := m.Lookup(tt.ref)
		if e == nil {
			t.Errorf("model missing %s", tt.ref)
			continue
		}
		if e.Kind != tt.kind {
			t.Errorf("%s kind = %v, want %v", tt.ref, e.Kind, tt.kind)
		}
	}
}

func TestDemarcationPointInventoryMatchesPaper(t *testing.T) {
	m := Default()
	dps := m.DemarcationPoints()
	// The paper's implementation uses 39 demarcation points from 16
	// classes (§4). Our model must be in that ballpark and include the
	// canonical execute() DP.
	if len(dps) < 15 || len(dps) > 45 {
		t.Fatalf("demarcation points = %d, want roughly the paper's 39", len(dps))
	}
	if got := m.ClassCount(); got < 10 {
		t.Fatalf("DP classes = %d, want >= 10 (paper: 16)", got)
	}
	if !m.IsDP("org.apache.http.client.HttpClient.execute") {
		t.Fatal("HttpClient.execute must be a DP")
	}
	if m.IsDP("java.lang.StringBuilder.append") {
		t.Fatal("StringBuilder.append must not be a DP")
	}
}

func TestDPRolesAreConsistent(t *testing.T) {
	m := Default()
	for _, dp := range m.DemarcationPoints() {
		if dp.ReqArg < 0 && dp.CallbackMethod == "" && !dp.RespRet {
			t.Errorf("DP %s has neither request arg, callback, nor response", dp.Ref)
		}
		if dp.Kind == KEnqueueDP && dp.CallbackMethod == "" {
			t.Errorf("async DP %s lacks a callback method", dp.Ref)
		}
	}
}

func TestAsyncRegistrationsCarryCallbacks(t *testing.T) {
	m := Default()
	for _, ref := range []string{
		"android.os.AsyncTask.execute",
		"java.lang.Thread.start",
		"java.util.Timer.schedule",
	} {
		e := m.Lookup(ref)
		if e == nil || e.CallbackMethod == "" {
			t.Errorf("%s must carry an implicit callback method", ref)
		}
	}
}

func TestRegisterPluginOverrides(t *testing.T) {
	m := Default()
	m.Register(&Method{Ref: "com.custom.Client.call", Kind: KExecuteDP, DP: true, ReqArg: 1, RespRet: true})
	if !m.IsDP("com.custom.Client.call") {
		t.Fatal("registered plugin DP not visible")
	}
}

func TestLookupUnknownReturnsNil(t *testing.T) {
	if Default().Lookup("com.unknown.Foo.bar") != nil {
		t.Fatal("unknown method should be unmodeled")
	}
}

func TestMethodsSortedAndUnique(t *testing.T) {
	ms := Default().Methods()
	for i := 1; i < len(ms); i++ {
		if ms[i-1].Ref >= ms[i].Ref {
			t.Fatalf("methods not strictly sorted at %d: %s >= %s", i, ms[i-1].Ref, ms[i].Ref)
		}
	}
}

func TestSinksAndSources(t *testing.T) {
	m := Default()
	if e := m.Lookup("android.media.MediaPlayer.setDataSource"); e == nil || e.Sink != "media" {
		t.Fatal("MediaPlayer.setDataSource must be a media sink")
	}
	if e := m.Lookup("android.media.AudioRecord.read"); e == nil || e.Source != "microphone" {
		t.Fatal("AudioRecord.read must be a microphone source")
	}
}

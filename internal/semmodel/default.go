package semmodel

// Default returns the built-in semantic model: the Android/Java HTTP
// surface the paper models (39 demarcation points drawn from 16 classes,
// plus string, container, JSON/XML, resource, database, sink, source and
// async APIs). Callers may Register additional entries (the "easy plugin"
// extension point of §3.2).
func Default() *Model {
	m := &Model{}

	// --- StringBuilder / string manipulation -------------------------------
	for _, ref := range []string{
		"java.lang.StringBuilder.<init>",
		"java.lang.StringBuffer.<init>",
	} {
		m.add(&Method{Ref: ref, Kind: KStringBuilderInit})
	}
	for _, ref := range []string{
		"java.lang.StringBuilder.append",
		"java.lang.StringBuffer.append",
	} {
		m.add(&Method{Ref: ref, Kind: KAppend})
	}
	for _, ref := range []string{
		"java.lang.StringBuilder.toString",
		"java.lang.StringBuffer.toString",
	} {
		m.add(&Method{Ref: ref, Kind: KToString})
	}
	m.add(&Method{Ref: "java.lang.String.concat", Kind: KStringConcat})
	m.add(&Method{Ref: "java.lang.String.equals", Kind: KStringEquals})
	for _, ref := range []string{
		"java.lang.String.valueOf",
		"java.lang.Integer.toString",
		"java.lang.Long.toString",
		"java.lang.Boolean.toString",
	} {
		m.add(&Method{Ref: ref, Kind: KValueOf})
	}
	m.add(&Method{Ref: "java.net.URLEncoder.encode", Kind: KURLEncode})
	for _, ref := range []string{
		"java.lang.String.trim",
		"java.lang.String.toLowerCase",
		"java.lang.String.toUpperCase",
		"java.lang.String.intern",
		"java.lang.String.toString",
		"java.lang.Object.toString",
	} {
		m.add(&Method{Ref: ref, Kind: KPassThrough})
	}
	m.add(&Method{Ref: "android.net.Uri.parse", Kind: KStringFormatIdentity})

	// --- org.apache.http request construction ------------------------------
	httpInits := map[string]string{
		"org.apache.http.client.methods.HttpGet.<init>":    "GET",
		"org.apache.http.client.methods.HttpPost.<init>":   "POST",
		"org.apache.http.client.methods.HttpPut.<init>":    "PUT",
		"org.apache.http.client.methods.HttpDelete.<init>": "DELETE",
		"org.apache.http.client.methods.HttpHead.<init>":   "HEAD",
	}
	for ref, verb := range httpInits {
		m.add(&Method{Ref: ref, Kind: KHTTPReqInit, HTTPMethod: verb})
	}
	m.add(&Method{Ref: "org.apache.http.client.methods.HttpPost.setEntity", Kind: KHTTPSetEntity})
	m.add(&Method{Ref: "org.apache.http.client.methods.HttpPut.setEntity", Kind: KHTTPSetEntity})
	m.add(&Method{Ref: "org.apache.http.client.methods.HttpEntityEnclosingRequestBase.setEntity", Kind: KHTTPSetEntity})
	for _, cls := range []string{
		"org.apache.http.client.methods.HttpGet",
		"org.apache.http.client.methods.HttpPost",
		"org.apache.http.client.methods.HttpPut",
		"org.apache.http.client.methods.HttpDelete",
		"org.apache.http.client.methods.HttpUriRequest",
	} {
		m.add(&Method{Ref: cls + ".addHeader", Kind: KHTTPAddHeader})
		m.add(&Method{Ref: cls + ".setHeader", Kind: KHTTPAddHeader})
	}
	m.add(&Method{Ref: "org.apache.http.entity.StringEntity.<init>", Kind: KStringEntityInit})
	m.add(&Method{Ref: "org.apache.http.client.entity.UrlEncodedFormEntity.<init>", Kind: KFormEntityInit})
	m.add(&Method{Ref: "org.apache.http.message.BasicNameValuePair.<init>", Kind: KNVPairInit})

	// --- Demarcation points: org.apache.http (sync) ------------------------
	for _, ref := range []string{
		"org.apache.http.client.HttpClient.execute",
		"org.apache.http.impl.client.DefaultHttpClient.execute",
		"org.apache.http.impl.client.CloseableHttpClient.execute",
		"android.net.http.AndroidHttpClient.execute",
	} {
		m.add(&Method{Ref: ref, Kind: KExecuteDP, DP: true, ReqArg: 1, RespRet: true})
	}
	m.add(&Method{Ref: "org.apache.http.HttpResponse.getEntity", Kind: KRespGetEntity})
	m.add(&Method{Ref: "org.apache.http.HttpResponse.getFirstHeader", Kind: KRespGetHeader})
	m.add(&Method{Ref: "org.apache.http.HttpEntity.getContent", Kind: KEntityContent})
	m.add(&Method{Ref: "org.apache.http.util.EntityUtils.toString", Kind: KEntityContent})

	// --- Raw TCP sockets (§4 extension) --------------------------------------
	m.add(&Method{Ref: "java.net.Socket.<init>", Kind: KSocketInit})
	m.add(&Method{Ref: "java.net.Socket.getOutputStream", Kind: KConnGetOutput})
	m.add(&Method{Ref: "java.net.Socket.getInputStream", Kind: KConnGetInput,
		DP: true, ReqArg: 0, RespRet: true})

	// --- Demarcation points: java.net.HttpURLConnection ---------------------
	m.add(&Method{Ref: "java.net.URL.<init>", Kind: KURLInit})
	m.add(&Method{Ref: "java.net.URL.openConnection", Kind: KOpenConnection})
	m.add(&Method{Ref: "java.net.HttpURLConnection.setRequestMethod", Kind: KConnSetMethod})
	m.add(&Method{Ref: "java.net.HttpURLConnection.setRequestProperty", Kind: KConnSetHeader})
	m.add(&Method{Ref: "java.net.HttpURLConnection.getOutputStream", Kind: KConnGetOutput})
	m.add(&Method{Ref: "java.io.OutputStream.write", Kind: KStreamWrite})
	m.add(&Method{Ref: "java.io.OutputStreamWriter.write", Kind: KStreamWrite})
	for _, ref := range []string{
		"java.net.HttpURLConnection.getInputStream",
		"java.net.HttpURLConnection.getResponseCode",
		"java.net.URLConnection.getInputStream",
	} {
		m.add(&Method{Ref: ref, Kind: KConnGetInput, DP: true, ReqArg: 0, RespRet: true})
	}
	m.add(&Method{Ref: "java.io.InputStream.readAll", Kind: KReadStream})
	m.add(&Method{Ref: "java.io.BufferedReader.readLine", Kind: KReadStream})
	m.add(&Method{Ref: "android.util.StreamUtils.readFully", Kind: KReadStream})

	// --- Stream decorators (gzip / chunked transfer reading) -----------------
	for _, ref := range []string{
		"java.util.zip.GZIPInputStream.<init>",
		"java.util.zip.GZIPOutputStream.<init>",
		"java.io.InputStreamReader.<init>",
		"java.io.BufferedReader.<init>",
		"java.io.BufferedInputStream.<init>",
	} {
		m.add(&Method{Ref: ref, Kind: KStreamWrap})
	}

	// --- Multipart bodies (org.apache.http.entity.mime) ----------------------
	m.add(&Method{Ref: "org.apache.http.entity.mime.MultipartEntityBuilder.create", Kind: KMultipartCreate})
	m.add(&Method{Ref: "org.apache.http.entity.mime.MultipartEntityBuilder.addTextBody", Kind: KMultipartAddPart})
	m.add(&Method{Ref: "org.apache.http.entity.mime.MultipartEntityBuilder.addPart", Kind: KMultipartAddPart})
	m.add(&Method{Ref: "org.apache.http.entity.mime.MultipartEntityBuilder.build", Kind: KMultipartBuild})

	// --- okhttp (v2 com.squareup and v3 okhttp3) ----------------------------
	for _, pkg := range []string{"okhttp3", "com.squareup.okhttp"} {
		m.add(&Method{Ref: pkg + ".Request$Builder.<init>", Kind: KOkRequestBuilder})
		m.add(&Method{Ref: pkg + ".Request$Builder.url", Kind: KOkURL})
		m.add(&Method{Ref: pkg + ".Request$Builder.post", Kind: KOkPost})
		m.add(&Method{Ref: pkg + ".Request$Builder.header", Kind: KOkHeader})
		m.add(&Method{Ref: pkg + ".Request$Builder.addHeader", Kind: KOkHeader})
		m.add(&Method{Ref: pkg + ".Request$Builder.method", Kind: KConnSetMethod})
		m.add(&Method{Ref: pkg + ".Request$Builder.build", Kind: KOkBuild})
		m.add(&Method{Ref: pkg + ".OkHttpClient.newCall", Kind: KOkNewCall})
		m.add(&Method{Ref: pkg + ".RequestBody.create", Kind: KOkBodyCreate})
		m.add(&Method{Ref: pkg + ".Call.execute", Kind: KExecuteDP, DP: true, ReqArg: 0, RespRet: true})
		m.add(&Method{Ref: pkg + ".Call.enqueue", Kind: KEnqueueDP, DP: true, ReqArg: 0,
			CallbackMethod: "onResponse", CallbackArg: 1})
		m.add(&Method{Ref: pkg + ".Response.body", Kind: KRespGetEntity})
		m.add(&Method{Ref: pkg + ".ResponseBody.string", Kind: KEntityContent})
	}

	// --- volley --------------------------------------------------------------
	m.add(&Method{Ref: "com.android.volley.RequestQueue.add", Kind: KEnqueueDP, DP: true,
		ReqArg: 1, CallbackMethod: "onResponse", CallbackArg: 1})
	m.add(&Method{Ref: "com.android.volley.toolbox.JsonObjectRequest.<init>", Kind: KHTTPReqInit})
	m.add(&Method{Ref: "com.android.volley.toolbox.StringRequest.<init>", Kind: KHTTPReqInit})

	// --- retrofit -------------------------------------------------------------
	m.add(&Method{Ref: "retrofit2.Call.execute", Kind: KExecuteDP, DP: true, ReqArg: 0, RespRet: true})
	m.add(&Method{Ref: "retrofit2.Call.enqueue", Kind: KEnqueueDP, DP: true, ReqArg: 0,
		CallbackMethod: "onResponse", CallbackArg: 1})
	m.add(&Method{Ref: "retrofit2.Response.body", Kind: KRespGetEntity})

	// --- BeeFramework / rx.android -------------------------------------------
	m.add(&Method{Ref: "com.beeframework.BeeQuery.sendRequest", Kind: KExecuteDP, DP: true,
		ReqArg: 1, RespRet: true})
	m.add(&Method{Ref: "rx.android.HttpObservable.execute", Kind: KExecuteDP, DP: true,
		ReqArg: 1, RespRet: true})
	m.add(&Method{Ref: "rx.Observable.subscribe", Kind: KRxSubscribe,
		CallbackMethod: "onNext", CallbackArg: 1})

	// --- google-http-java-client ----------------------------------------------
	m.add(&Method{Ref: "com.google.api.client.http.HttpRequest.execute", Kind: KExecuteDP,
		DP: true, ReqArg: 0, RespRet: true})

	// --- JSON: org.json ----------------------------------------------------
	m.add(&Method{Ref: "org.json.JSONObject.<init>", Kind: KJSONInit})
	m.add(&Method{Ref: "org.json.JSONObject.parse", Kind: KJSONParse})
	m.add(&Method{Ref: "org.json.JSONObject.put", Kind: KJSONPut})
	m.add(&Method{Ref: "org.json.JSONObject.getString", Kind: KJSONGetStr})
	m.add(&Method{Ref: "org.json.JSONObject.optString", Kind: KJSONGetStr})
	m.add(&Method{Ref: "org.json.JSONObject.getInt", Kind: KJSONGetInt})
	m.add(&Method{Ref: "org.json.JSONObject.optInt", Kind: KJSONGetInt})
	m.add(&Method{Ref: "org.json.JSONObject.getBoolean", Kind: KJSONGetBool})
	m.add(&Method{Ref: "org.json.JSONObject.getJSONObject", Kind: KJSONGetObj})
	m.add(&Method{Ref: "org.json.JSONObject.getJSONArray", Kind: KJSONGetArr})
	m.add(&Method{Ref: "org.json.JSONObject.toString", Kind: KJSONToString})
	m.add(&Method{Ref: "org.json.JSONArray.getJSONObject", Kind: KJSONArrGet})
	m.add(&Method{Ref: "org.json.JSONArray.get", Kind: KJSONArrGet})
	m.add(&Method{Ref: "org.json.JSONArray.length", Kind: KJSONArrLen})

	// --- JSON: gson / jackson (reflection based) -----------------------------
	m.add(&Method{Ref: "com.google.gson.Gson.fromJson", Kind: KGsonFromJSON})
	m.add(&Method{Ref: "com.google.gson.Gson.toJson", Kind: KGsonToJSON})
	m.add(&Method{Ref: "com.fasterxml.jackson.databind.ObjectMapper.readValue", Kind: KGsonFromJSON})
	m.add(&Method{Ref: "com.fasterxml.jackson.databind.ObjectMapper.writeValueAsString", Kind: KGsonToJSON})

	// --- XML (org.xml / android.util.Xml) -----------------------------------
	m.add(&Method{Ref: "org.xml.sax.XMLReader.parse", Kind: KXMLParse})
	m.add(&Method{Ref: "android.util.Xml.parse", Kind: KXMLParse})
	m.add(&Method{Ref: "javax.xml.parsers.DocumentBuilder.parse", Kind: KXMLParse})
	m.add(&Method{Ref: "org.w3c.dom.Document.getElementsByTagName", Kind: KXMLGetTag})
	m.add(&Method{Ref: "org.w3c.dom.Element.getElementsByTagName", Kind: KXMLGetTag})
	m.add(&Method{Ref: "org.w3c.dom.Element.getAttribute", Kind: KXMLGetAttr})
	m.add(&Method{Ref: "org.w3c.dom.Element.getTextContent", Kind: KXMLGetText})

	// --- Containers -----------------------------------------------------------
	m.add(&Method{Ref: "java.util.ArrayList.<init>", Kind: KListInit})
	m.add(&Method{Ref: "java.util.ArrayList.add", Kind: KListAdd})
	m.add(&Method{Ref: "java.util.ArrayList.get", Kind: KListGet})
	m.add(&Method{Ref: "java.util.List.add", Kind: KListAdd})
	m.add(&Method{Ref: "java.util.List.get", Kind: KListGet})
	m.add(&Method{Ref: "java.util.HashMap.<init>", Kind: KMapInit})
	m.add(&Method{Ref: "java.util.HashMap.put", Kind: KMapPut})
	m.add(&Method{Ref: "java.util.HashMap.get", Kind: KMapGet})

	// --- Android resources and database --------------------------------------
	m.add(&Method{Ref: "android.content.res.Resources.getString", Kind: KResGetString})
	m.add(&Method{Ref: "android.database.sqlite.SQLiteDatabase.insert", Kind: KDBInsert})
	m.add(&Method{Ref: "android.database.sqlite.SQLiteDatabase.update", Kind: KDBUpdate})
	m.add(&Method{Ref: "android.database.sqlite.SQLiteDatabase.query", Kind: KDBQuery})
	m.add(&Method{Ref: "android.content.ContentValues.<init>", Kind: KCVInit})
	m.add(&Method{Ref: "android.content.ContentValues.put", Kind: KCVPut})

	// --- Sinks -----------------------------------------------------------------
	m.add(&Method{Ref: "android.media.MediaPlayer.setDataSource", Kind: KMediaSetSource,
		DP: true, ReqArg: 1, Sink: "media"})
	m.add(&Method{Ref: "android.webkit.WebView.loadUrl", Kind: KMediaSetSource,
		DP: true, ReqArg: 1, Sink: "webview"})
	m.add(&Method{Ref: "java.io.FileOutputStream.write", Kind: KFileWrite, Sink: "file"})
	m.add(&Method{Ref: "android.widget.TextView.setText", Kind: KUIDisplay, Sink: "ui"})
	m.add(&Method{Ref: "android.widget.ImageView.setImageBitmap", Kind: KUIDisplay, Sink: "ui"})

	// --- Sources ---------------------------------------------------------------
	m.add(&Method{Ref: "android.media.AudioRecord.read", Kind: KMicRead, Source: "microphone"})
	m.add(&Method{Ref: "android.hardware.Camera.takePicture", Kind: KCameraRead, Source: "camera"})
	m.add(&Method{Ref: "android.location.Location.getLatitude", Kind: KLocationGet, Source: "location"})
	m.add(&Method{Ref: "android.location.Location.getLongitude", Kind: KLocationGet, Source: "location"})
	m.add(&Method{Ref: "android.telephony.TelephonyManager.getDeviceId", Kind: KDeviceID, Source: "device"})

	// --- Implicit control flow (threads, async, §3.4) ---------------------------
	m.add(&Method{Ref: "android.os.AsyncTask.execute", Kind: KAsyncExecute,
		CallbackMethod: "doInBackground", CallbackArg: 0})
	m.add(&Method{Ref: "java.lang.Thread.start", Kind: KThreadStart,
		CallbackMethod: "run", CallbackArg: 0})
	m.add(&Method{Ref: "java.util.Timer.schedule", Kind: KTimerSchedule,
		CallbackMethod: "run", CallbackArg: 1})
	m.add(&Method{Ref: "android.os.Handler.post", Kind: KHandlerPost,
		CallbackMethod: "run", CallbackArg: 1})
	m.add(&Method{Ref: "java.util.concurrent.ExecutorService.submit", Kind: KFutureSubmit,
		CallbackMethod: "run", CallbackArg: 1})
	m.add(&Method{Ref: "java.util.concurrent.FutureTask.run", Kind: KThreadStart,
		CallbackMethod: "run", CallbackArg: 0})

	// --- Intents (recognized, deliberately unmodeled by the analyzer) -----------
	m.add(&Method{Ref: "android.content.Context.startActivity", Kind: KIntentSend})
	m.add(&Method{Ref: "android.content.Context.startService", Kind: KIntentSend})
	m.add(&Method{Ref: "android.content.Context.sendBroadcast", Kind: KIntentSend})

	return m
}

package slice

import (
	"reflect"
	"testing"

	"extractocol/internal/callgraph"
	"extractocol/internal/ir"
	"extractocol/internal/obs"
	"extractocol/internal/semmodel"
	"extractocol/internal/taint"
)

// Parallel extraction must be invisible in the output: same transactions,
// same IDs, same slices, regardless of worker count.
func TestFindParallelMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		prog func() *ir.Program
	}{
		{"twoHandler", twoHandlerApp},
		{"sharedDP", sharedDPApp},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.prog()
			model := semmodel.Default()
			cg := callgraph.Build(p, model)
			serial := Find(p, model, cg, Options{MaxAsyncHops: 1, Workers: 1})
			parallel := Find(p, model, cg, Options{MaxAsyncHops: 1, Workers: 4})
			if len(serial) == 0 {
				t.Fatal("no transactions found")
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("parallel Find differs from serial:\nserial:   %+v\nparallel: %+v",
					serial, parallel)
			}
		})
	}
}

// Find must run without any stats plumbing: nil Stats, nil Col.
func TestFindNilStats(t *testing.T) {
	p := twoHandlerApp()
	model := semmodel.Default()
	cg := callgraph.Build(p, model)
	txs := Find(p, model, cg, Options{MaxAsyncHops: 1})
	if len(txs) != 2 {
		t.Fatalf("transactions = %d, want 2", len(txs))
	}
}

// With a Collector attached, the pool reports job/busy counters and the
// worker gauges; with only a Stats shard, counters land there instead.
func TestFindPoolObservability(t *testing.T) {
	p := twoHandlerApp()
	model := semmodel.Default()
	cg := callgraph.Build(p, model)

	col := obs.NewCollector()
	txs := Find(p, model, cg, Options{MaxAsyncHops: 1, Col: col})
	prof := col.Snapshot()
	if got := prof.Counter(obs.CtrSliceJobs); got != int64(len(txs)) {
		t.Errorf("slice_jobs = %d, want %d", got, len(txs))
	}
	if prof.Counter(obs.CtrSlicesBackward) == 0 {
		t.Error("no backward slices counted through the collector")
	}
	if w := prof.Gauges[obs.GaugeSliceWorkers]; w < 1 {
		t.Errorf("slice_workers gauge = %v, want >= 1", w)
	}
	if u := prof.Gauges[obs.GaugeSliceUtilization]; u < 0 || u > 1.05 {
		t.Errorf("slice_worker_utilization = %v, want within [0, 1.05]", u)
	}

	stats := obs.NewShard()
	Find(p, model, cg, Options{MaxAsyncHops: 1, Stats: stats, Workers: 3})
	if stats.Count(obs.CtrSliceJobs) == 0 {
		t.Error("worker shards were not merged into the caller's shard")
	}
	if stats.Count(obs.CtrSlicesBackward) == 0 {
		t.Error("no backward slices counted through the shard")
	}
}

// A shared summary cache passed through Options must not change results.
func TestFindSharedSummaries(t *testing.T) {
	p := sharedDPApp()
	model := semmodel.Default()
	cg := callgraph.Build(p, model)
	plain := Find(p, model, cg, Options{MaxAsyncHops: 1, Workers: 1})
	sums := taint.NewSummaryCache()
	shared := Find(p, model, cg, Options{MaxAsyncHops: 1, Workers: 4, Summaries: sums})
	if !reflect.DeepEqual(plain, shared) {
		t.Error("shared summary cache changed Find output")
	}
}

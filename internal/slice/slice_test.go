package slice

import (
	"testing"

	"extractocol/internal/callgraph"
	"extractocol/internal/ir"
	"extractocol/internal/semmodel"
	"extractocol/internal/taint"
)

const (
	sbInit  = "java.lang.StringBuilder.<init>"
	sbApp   = "java.lang.StringBuilder.append"
	sbStr   = "java.lang.StringBuilder.toString"
	getInit = "org.apache.http.client.methods.HttpGet.<init>"
	clInit  = "org.apache.http.impl.client.DefaultHttpClient.<init>"
	execRef = "org.apache.http.client.HttpClient.execute"
	jParse  = "org.json.JSONObject.parse"
	jGetStr = "org.json.JSONObject.getString"
	entCont = "org.apache.http.util.EntityUtils.toString"
	getEnt  = "org.apache.http.HttpResponse.getEntity"
)

// emitGet appends a full GET + JSON parse flow to builder b using URI uri.
func emitGet(b *ir.B, uriConst, jsonKey string) {
	u := b.ConstStr(uriConst)
	req := b.New("org.apache.http.client.methods.HttpGet")
	b.InvokeSpecial(getInit, req, u)
	cl := b.New("org.apache.http.impl.client.DefaultHttpClient")
	b.InvokeSpecial(clInit, cl)
	resp := b.Invoke(execRef, cl, req)
	ent := b.Invoke(getEnt, resp)
	body := b.InvokeStatic(entCont, ent)
	js := b.InvokeStatic(jParse, body)
	k := b.ConstStr(jsonKey)
	b.Invoke(jGetStr, js, k)
}

func twoHandlerApp() *ir.Program {
	p := ir.NewProgram("t.two")
	c := p.AddClass(&ir.Class{Name: "t.two.A"})
	h1 := ir.NewMethod(c, "onClickOne", false, nil, "void")
	emitGet(h1, "https://a.example.com/one.json", "one")
	h1.ReturnVoid()
	h1.Done()
	h2 := ir.NewMethod(c, "onClickTwo", false, nil, "void")
	emitGet(h2, "https://a.example.com/two.json", "two")
	h2.ReturnVoid()
	h2.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{
		{Method: "t.two.A.onClickOne", Kind: ir.EventClick},
		{Method: "t.two.A.onClickTwo", Kind: ir.EventClick},
	}
	return p
}

func find(p *ir.Program) []*Transaction {
	model := semmodel.Default()
	cg := callgraph.Build(p, model)
	return Find(p, model, cg, Options{MaxAsyncHops: 1})
}

func TestFindEnumeratesPerHandler(t *testing.T) {
	txs := find(twoHandlerApp())
	if len(txs) != 2 {
		t.Fatalf("transactions = %d, want 2", len(txs))
	}
	for _, tx := range txs {
		if tx.Request == nil || tx.Request.Size() == 0 {
			t.Errorf("tx %d missing request slice", tx.ID)
		}
		if tx.Response == nil || tx.Response.Size() == 0 {
			t.Errorf("tx %d missing response slice", tx.ID)
		}
	}
	if txs[0].Entry.Method == txs[1].Entry.Method {
		t.Error("transactions should carry distinct entry contexts")
	}
}

// sharedDPApp reproduces the Fig. 5 code-reuse pattern: two handlers
// compute different URIs and funnel them through one shared doGet method
// containing the demarcation point.
func sharedDPApp() *ir.Program {
	p := ir.NewProgram("t.shared")
	c := p.AddClass(&ir.Class{Name: "t.shared.S"})

	dg := ir.NewMethod(c, "doGet", false, []string{"java.lang.String"}, "java.lang.String")
	uriP := dg.Param(0)
	req := dg.New("org.apache.http.client.methods.HttpGet")
	dg.InvokeSpecial(getInit, req, uriP)
	cl := dg.New("org.apache.http.impl.client.DefaultHttpClient")
	dg.InvokeSpecial(clInit, cl)
	resp := dg.Invoke(execRef, cl, req)
	ent := dg.Invoke(getEnt, resp)
	body := dg.InvokeStatic(entCont, ent)
	dg.Return(body)
	dg.Done()

	a := ir.NewMethod(c, "requestA", false, nil, "void")
	ua := a.ConstStr("https://s.example.com/a.json")
	ra := a.Invoke("t.shared.S.doGet", a.This(), ua)
	ja := a.InvokeStatic(jParse, ra)
	ka := a.ConstStr("fieldA")
	a.Invoke(jGetStr, ja, ka)
	a.ReturnVoid()
	a.Done()

	bm := ir.NewMethod(c, "requestB", false, nil, "void")
	ub := bm.ConstStr("https://s.example.com/b.json")
	rb := bm.Invoke("t.shared.S.doGet", bm.This(), ub)
	jb := bm.InvokeStatic(jParse, rb)
	kb := bm.ConstStr("fieldB")
	bm.Invoke(jGetStr, jb, kb)
	bm.ReturnVoid()
	bm.Done()

	p.Manifest.EntryPoints = []ir.EntryPoint{
		{Method: "t.shared.S.requestA", Kind: ir.EventClick},
		{Method: "t.shared.S.requestB", Kind: ir.EventClick},
	}
	return p
}

func TestSharedDPSeparatedByContext(t *testing.T) {
	p := sharedDPApp()
	txs := find(p)
	if len(txs) != 2 {
		t.Fatalf("transactions = %d, want 2 (one per context)", len(txs))
	}
	reqA, reqB := txs[0].Request, txs[1].Request
	if txs[0].Entry.Method == "t.shared.S.requestB" {
		reqA, reqB = reqB, reqA
	}

	// Context A's slice must contain a.json's constant but not b.json's.
	hasConst := func(r *taint.Result, val string) bool {
		for _, ref := range []string{"t.shared.S.requestA", "t.shared.S.requestB"} {
			m := p.Method(ref)
			for i := range m.Instrs {
				if m.Instrs[i].Op == ir.OpConstStr && m.Instrs[i].Str == val && r.Contains(ref, i) {
					return true
				}
			}
		}
		return false
	}
	if !hasConst(reqA, "https://s.example.com/a.json") {
		t.Error("context A slice missing its URI")
	}
	if hasConst(reqA, "https://s.example.com/b.json") {
		t.Error("context A slice leaked context B's URI (disjointness violated)")
	}
	if !hasConst(reqB, "https://s.example.com/b.json") {
		t.Error("context B slice missing its URI")
	}

	// Responses also stay disjoint: A's response processes fieldA only.
	respA := txs[0].Response
	if txs[0].Entry.Method == "t.shared.S.requestB" {
		respA = txs[1].Response
	}
	mB := p.Method("t.shared.S.requestB")
	for i := range mB.Instrs {
		if mB.Instrs[i].Op == ir.OpInvoke && mB.Instrs[i].Sym == jGetStr &&
			respA.Contains("t.shared.S.requestB", i) {
			t.Error("context A response slice leaked into requestB")
		}
	}
}

func TestAugmentationPullsKeyConstantsIntoResponseSlice(t *testing.T) {
	p := twoHandlerApp()
	txs := find(p)
	tx := txs[0]
	m := p.Method(tx.Entry.Method)
	// The response slice must include the ConstStr for the JSON key, even
	// though forward taint alone would not reach it.
	found := false
	for i := range m.Instrs {
		in := &m.Instrs[i]
		if in.Op == ir.OpConstStr && (in.Str == "one" || in.Str == "two") {
			if tx.Response.Contains(m.Ref(), i) {
				found = true
			}
		}
	}
	if !found {
		t.Error("augmentation did not pull JSON key constant into the response slice")
	}
}

func TestMediaSinkTransaction(t *testing.T) {
	p := ir.NewProgram("t.m")
	c := p.AddClass(&ir.Class{Name: "t.m.P"})
	b := ir.NewMethod(c, "play", false, nil, "void")
	u := b.ConstStr("https://cdn.example.com/s.mp3")
	mp := b.New("android.media.MediaPlayer")
	b.InvokeVoid("android.media.MediaPlayer.setDataSource", mp, u)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.m.P.play", Kind: ir.EventClick}}

	txs := find(p)
	if len(txs) != 1 {
		t.Fatalf("transactions = %d, want 1", len(txs))
	}
	if !txs[0].Sinks["media"] {
		t.Errorf("Sinks = %v, want media", txs[0].Sinks)
	}
	if txs[0].Response != nil {
		t.Error("media DP has no response slice")
	}
}

func TestIntentOnlyTransactionInvisible(t *testing.T) {
	p := ir.NewProgram("t.i")
	c := p.AddClass(&ir.Class{Name: "t.i.I"})
	b := ir.NewMethod(c, "onIntent", false, nil, "void")
	emitGet(b, "https://hidden.example.com/x.json", "k")
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.i.I.onIntent", Kind: ir.EventIntent}}
	if txs := find(p); len(txs) != 0 {
		t.Fatalf("intent-only transactions must be invisible, got %d", len(txs))
	}
}

func TestVolleyCallbackResponseRoot(t *testing.T) {
	p := ir.NewProgram("t.v")
	reqCls := p.AddClass(&ir.Class{Name: "t.v.MyRequest", Super: "com.android.volley.toolbox.JsonObjectRequest"})
	onr := ir.NewMethod(reqCls, "onResponse", false, []string{"org.json.JSONObject"}, "void")
	js := onr.Param(0)
	k := onr.ConstStr("items")
	onr.Invoke(jGetStr, js, k)
	onr.ReturnVoid()
	onr.Done()

	main := p.AddClass(&ir.Class{Name: "t.v.Main"})
	b := ir.NewMethod(main, "onCreate", false, nil, "void")
	u := b.ConstStr("https://v.example.com/list.json")
	r := b.New("t.v.MyRequest")
	b.InvokeSpecial("com.android.volley.toolbox.JsonObjectRequest.<init>", r, u)
	q := b.New("com.android.volley.RequestQueue")
	b.InvokeVoid("com.android.volley.RequestQueue.add", q, r)
	b.ReturnVoid()
	b.Done()
	p.Manifest.EntryPoints = []ir.EntryPoint{{Method: "t.v.Main.onCreate", Kind: ir.EventCreate}}

	txs := find(p)
	if len(txs) != 1 {
		t.Fatalf("transactions = %d, want 1", len(txs))
	}
	tx := txs[0]
	if tx.Response == nil {
		t.Fatal("volley transaction missing callback response slice")
	}
	m := p.Method("t.v.MyRequest.onResponse")
	idx := -1
	for i := range m.Instrs {
		if m.Instrs[i].Op == ir.OpInvoke && m.Instrs[i].Sym == jGetStr {
			idx = i
		}
	}
	if !tx.Response.Contains("t.v.MyRequest.onResponse", idx) {
		t.Error("response slice missing onResponse getString")
	}
}

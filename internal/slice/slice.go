// Package slice enumerates HTTP transactions and extracts their program
// slices (§3.1). For every demarcation point reachable from a non-intent
// entry point it creates a transaction context, computes the backward
// (request) and forward (response) slices with the taint engine, and
// performs object-aware slice augmentation so each slice is self-contained
// for signature building.
//
// Transactions are separated per (entry point, demarcation-point site):
// this is the disjoint-sub-slice preprocessing of §3.3 — when multiple
// requests share a demarcation point through code reuse, their slices are
// distinguished by the disjoint code segments belonging to each context,
// restoring one-to-one request/response pairing.
package slice

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"extractocol/internal/budget"
	"extractocol/internal/callgraph"
	"extractocol/internal/intern"
	"extractocol/internal/ir"
	"extractocol/internal/obs"
	"extractocol/internal/semmodel"
	"extractocol/internal/taint"
)

// Transaction is one HTTP interaction context: a demarcation point reached
// from a specific entry point, with its request and response slices.
type Transaction struct {
	ID    int
	DP    taint.StmtID  // demarcation point statement
	DPRef string        // modeled method reference of the DP
	Entry ir.EntryPoint // triggering entry point (the transaction context)

	ReqReg   int           // register holding the request object at the DP
	Request  *taint.Result // backward slice
	Response *taint.Result // forward slice, nil when the DP has no response flow

	RespRoot    taint.StmtID // statement where response propagation begins
	RespRootReg int
	// RespConsumed reports whether forward propagation found any statement
	// beyond the demarcation point itself, before augmentation inflated the
	// slice with initialization context.
	RespConsumed bool

	// Sink set for "how is the response consumed" (§2): media, file, ui.
	Sinks map[string]bool
	// Sources observed while constructing the request (microphone, ...).
	Sources map[string]bool

	// ReqStmtsSliced / RespStmtsSliced are the slice sizes as taint
	// propagation produced them, before object-aware augmentation inflated
	// them with initialization context — provenance for the explain layer
	// (how much of each slice is propagation versus augmentation).
	ReqStmtsSliced  int
	RespStmtsSliced int
}

// Key returns a stable identity for deduplication across entry points.
func (t *Transaction) Key() string {
	return fmt.Sprintf("%s@%d/%s", t.DP.Method, t.DP.Index, t.Entry.Method)
}

// Options configures transaction extraction.
type Options struct {
	// MaxAsyncHops bounds asynchronous-boundary crossings (§3.4):
	// 0 disables the heuristic, 1 is the paper's default for
	// closed-source apps.
	MaxAsyncHops int
	// IncludeIntents treats intent-triggered entry points as analysis
	// roots. The paper's system does not model intents (§4) — this is the
	// extension it proposes ("intents can be handled by modeling the
	// implicit control flow"), off by default.
	IncludeIntents bool
	// Workers bounds the extraction worker pool: 0 means GOMAXPROCS, 1
	// forces serial extraction. Output is deterministic regardless.
	Workers int
	// Stats receives workload counters (slices computed, taint facts
	// propagated) when Col is nil. Workers count into private shards that
	// are merged in after the pool drains, so a nil shard is fine.
	Stats *obs.Shard
	// Col, when non-nil, receives the worker shards and the pool gauges
	// (slice_workers, slice_worker_utilization) instead of Stats.
	Col *obs.Collector
	// Summaries, when non-nil, is a shared taint transfer-summary cache
	// (see taint.SummaryCache); nil uses a cache private to this call.
	Summaries *taint.SummaryCache
	// Budget, when non-nil, bounds extraction: jobs check it at their
	// boundaries, taint fixpoints at their loop heads, and exhausted or
	// panicking jobs degrade into diagnostics instead of crashing. Step
	// budgets force serial extraction so the completed-transaction set is
	// a deterministic prefix of the unbudgeted run.
	Budget *budget.Budget
	// LegacySets runs the taint engines on the pre-interning string/map
	// replay instead of the dense bitset path. It exists as a differential
	// oracle (see cmd/evaluate's legacy-sets axis) and is much slower;
	// reports must come out identical either way.
	LegacySets bool
}

// sliceJob is one (entry point, demarcation-point site) extraction unit.
type sliceJob struct {
	ep       ir.EntryPoint
	universe *intern.Bits // dense method IDs reachable from ep
	m        *ir.Method
	site     int
	in       *ir.Instr
	mm       *semmodel.Method
}

// id names the job for diagnostics and fault probes: which entry point was
// slicing toward which demarcation point when the job degraded.
func (j sliceJob) id() string {
	return fmt.Sprintf("%s -> %s@%d", j.ep.Method, j.m.Ref(), j.site)
}

// Find enumerates all transactions of the program. Jobs — one per (entry
// point, DP site) pair — are enumerated sequentially in deterministic order,
// extracted across a bounded worker pool, and assembled positionally, so the
// output is identical to serial extraction. Workers share the per-program
// analysis caches (callgraph reachability/types, taint summaries), which are
// safe for concurrent readers.
func Find(p *ir.Program, model *semmodel.Model, cg *callgraph.Graph, opts Options) []*Transaction {
	txs, _ := FindBudgeted(p, model, cg, opts)
	return txs
}

// FindBudgeted is Find plus graceful degradation: jobs that panic, exhaust
// a budget mid-slice, or never start because the budget was already spent
// are dropped from the transaction list and reported as diagnostics in job
// order. With a nil Options.Budget it behaves exactly like Find.
func FindBudgeted(p *ir.Program, model *semmodel.Model, cg *callgraph.Graph, opts Options) ([]*Transaction, []budget.Diagnostic) {
	var jobs []sliceJob
	for _, ep := range p.Manifest.EntryPoints {
		if ep.Kind == ir.EventIntent && !opts.IncludeIntents {
			continue
		}
		universe := cg.ReachableBits(ep.Method)
		// Walk the universe in Ref order (EachSorted), reproducing the
		// sorted-string enumeration the map universe used.
		cg.Index().EachSorted(func(id uint32, m *ir.Method) bool {
			if !universe.Has(id) {
				return true
			}
			for i := range m.Instrs {
				in := &m.Instrs[i]
				if in.Op != ir.OpInvoke {
					continue
				}
				mm := model.Lookup(in.Sym)
				if mm == nil || !mm.DP {
					continue
				}
				jobs = append(jobs, sliceJob{ep: ep, universe: universe, m: m, site: i, in: in, mm: mm})
			}
			return true
		})
	}

	sums := opts.Summaries
	if sums == nil {
		sums = taint.NewSummaryCache()
	}
	bud := opts.Budget
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	// Step pools drain in job order: force serial extraction so exhaustion
	// always cuts the job list at the same deterministic prefix.
	if bud.HasStepLimits() && workers > 1 {
		workers = 1
	}

	fanStart := time.Now()
	results := make([]*Transaction, len(jobs))
	diags := make([]*budget.Diagnostic, len(jobs))
	runJob := func(i int, stats *obs.Shard) {
		j := jobs[i]
		id := j.id()
		defer func() {
			if r := recover(); r != nil {
				results[i] = nil
				d := budget.PanicDiag(budget.PhaseSlice, id, r)
				d.Flight = stats.FlightDump()
				diags[i] = &d
			}
		}()
		if ex := bud.SliceExhausted(id); ex != nil {
			d := budget.SkippedDiag(budget.PhaseSlice, id, ex.Limit)
			diags[i] = &d
			return
		}
		if ex := bud.Over(budget.PhaseSlice, id); ex != nil {
			d := budget.SkippedDiag(budget.PhaseSlice, id, ex.Limit)
			d.Flight = stats.FlightDump()
			diags[i] = &d
			return
		}
		// The span starts before the fault probe so a panicking job is
		// in-flight in the ring: its flight dump names the job that died.
		sp := stats.Span(obs.CatSliceJob, id)
		defer sp.End()
		bud.MaybePanic(budget.PhaseSlice, id)
		t0 := time.Now()
		tx := buildTransaction(p, model, cg, opts, j, stats, sums)
		ns := time.Since(t0).Nanoseconds()
		if ex := truncatedBy(tx); ex != nil {
			// A partial slice would produce a wrong signature: drop the
			// transaction and say exactly what was lost.
			d := budget.ExceededDiag(ex)
			d.Site = id
			d.Flight = stats.FlightDump()
			diags[i] = &d
			tx = nil
		}
		results[i] = tx
		stats.Add(obs.CtrSliceJobs, 1)
		stats.Add(obs.CtrSliceBusyNS, ns)
		stats.Observe(obs.HistSliceJob, ns)
	}
	// Shards come from the collector when one is threaded through, so each
	// worker lands on its own tracer track; standalone shards stay untraced.
	newShard := func() *obs.Shard {
		if opts.Col != nil {
			return opts.Col.NewShard()
		}
		return obs.NewShard()
	}
	drain := func(s *obs.Shard) {
		if opts.Col != nil {
			opts.Col.Drain(s)
		} else {
			opts.Stats.Merge(s)
		}
	}

	if workers > 1 {
		var wg sync.WaitGroup
		ch := make(chan int)
		shards := make([]*obs.Shard, workers)
		for w := 0; w < workers; w++ {
			shard := newShard()
			shards[w] = shard
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range ch {
					runJob(i, shard)
				}
			}()
		}
		for i := range jobs {
			ch <- i
		}
		close(ch)
		wg.Wait()
		for _, shard := range shards {
			drain(shard)
		}
	} else {
		shard := newShard()
		for i := range jobs {
			runJob(i, shard)
		}
		drain(shard)
	}

	if opts.Col != nil && workers > 0 {
		opts.Col.Gauge(obs.GaugeSliceWorkers, float64(workers))
		totalBusy := opts.Col.Snapshot().Counter(obs.CtrSliceBusyNS)
		if wall := time.Since(fanStart).Nanoseconds(); wall > 0 {
			opts.Col.Gauge(obs.GaugeSliceUtilization,
				float64(totalBusy)/float64(int64(workers)*wall))
		}
	}

	// Positional assembly: IDs follow job enumeration order, skipping jobs
	// that produced no transaction — identical to the serial numbering.
	var out []*Transaction
	for _, tx := range results {
		if tx == nil {
			continue
		}
		tx.ID = len(out) + 1
		out = append(out, tx)
	}
	var degraded []budget.Diagnostic
	for _, d := range diags {
		if d != nil {
			degraded = append(degraded, *d)
		}
	}
	return out, degraded
}

// truncatedBy returns the budget error that cut one of tx's slices short,
// nil for complete (or absent) transactions.
func truncatedBy(tx *Transaction) *budget.Exceeded {
	if tx == nil {
		return nil
	}
	if tx.Request != nil && tx.Request.Truncated != nil {
		return tx.Request.Truncated
	}
	if tx.Response != nil && tx.Response.Truncated != nil {
		return tx.Response.Truncated
	}
	return nil
}

func buildTransaction(p *ir.Program, model *semmodel.Model, cg *callgraph.Graph,
	opts Options, j sliceJob, stats *obs.Shard, sums *taint.SummaryCache) *Transaction {

	m, site, in, mm := j.m, j.site, j.in, j.mm
	tx := &Transaction{
		DP:    taint.StmtID{Method: m.Ref(), Index: site},
		DPRef: mm.Ref,
		Entry: j.ep,
	}

	eng := taint.NewEngine(p, model, cg)
	eng.MaxAsyncHops = opts.MaxAsyncHops
	eng.Universe = j.universe
	eng.Stats = stats
	eng.Summaries = sums
	eng.Budget = opts.Budget
	eng.BudgetPhase = budget.PhaseSlice
	eng.Legacy = opts.LegacySets

	// Request side.
	if mm.ReqArg >= 0 && mm.ReqArg < len(in.Args) {
		tx.ReqReg = in.Args[mm.ReqArg]
		tx.Request = eng.Backward(tx.DP, tx.ReqReg)
		stats.Add(obs.CtrSlicesBackward, 1)
	} else {
		return nil
	}
	if tx.Request.Truncated != nil {
		// The request slice is already partial; skip the remaining phases
		// of this job — the caller drops it with a diagnostic.
		return tx
	}

	// Response side.
	switch {
	case mm.RespRet && in.Dst != ir.NoReg:
		tx.RespRoot = tx.DP
		tx.RespRootReg = in.Dst
		tx.Response = eng.Forward(tx.RespRoot, tx.RespRootReg)
	case mm.CallbackMethod != "":
		if root, reg, ok := resolveCallback(p, cg, m, in, mm); ok {
			tx.RespRoot = root
			tx.RespRootReg = reg
			tx.Response = eng.Forward(root, reg)
		}
	}

	if tx.Response != nil {
		tx.RespConsumed = tx.Response.Size() > 1
		stats.Add(obs.CtrSlicesForward, 1)
	}

	// Object-aware augmentation: make slices self-contained (§3.1). The
	// pre-augmentation sizes are kept as provenance, so the explain layer
	// can attribute slice statements to propagation versus augmentation.
	tx.ReqStmtsSliced = tx.Request.Size()
	if tx.Response != nil {
		tx.RespStmtsSliced = tx.Response.Size()
		Augment(p, model, tx.Response)
	}
	Augment(p, model, tx.Request)

	tx.Sinks = map[string]bool{}
	tx.Sources = map[string]bool{}
	if mm.Sink != "" {
		tx.Sinks[mm.Sink] = true
	}
	if tx.Response != nil {
		for _, s := range tx.Response.Sinks() {
			tx.Sinks[s] = true
		}
	}
	for _, s := range tx.Request.Sources() {
		tx.Sources[s] = true
	}
	return tx
}

// resolveCallback locates the implicit response entry for asynchronous
// demarcation points: the onResponse-style method of the callback object's
// inferred type, with the response as its first declared parameter.
func resolveCallback(p *ir.Program, cg *callgraph.Graph, m *ir.Method,
	in *ir.Instr, mm *semmodel.Method) (taint.StmtID, int, bool) {

	if mm.CallbackArg >= len(in.Args) {
		return taint.StmtID{}, 0, false
	}
	types := cg.Types(m)
	reg := in.Args[mm.CallbackArg]
	if reg == ir.NoReg || reg >= len(types) || types[reg] == "" {
		return taint.StmtID{}, 0, false
	}
	target := p.ResolveMethod(types[reg], mm.CallbackMethod)
	if target == nil || len(target.Params) == 0 {
		return taint.StmtID{}, 0, false
	}
	// The response parameter is the first declared parameter (register 1
	// for instance methods).
	root := taint.StmtID{Method: target.Ref(), Index: 0}
	respReg := 1
	if target.Static {
		respReg = 0
	}
	return root, respReg, true
}

// Augment closes a slice over the defining statements of every register its
// statements use, restricted to pure context operations (constants, moves,
// allocations, field/static/resource reads). This reproduces the paper's
// object-aware slice augmentation: a forward slice that uses an object
// initialized before the demarcation point gains the initialization
// context it needs for signature building.
// Every statement Augment adds lives in a method already contributing to the
// slice, so each method reaches its fixpoint independently. Per method, an
// incremental worklist of newly used registers drives the closure: candidate
// statements are indexed once by the register that would pull them in
// (context-op definitions; <init> receivers), and each statement added feeds
// its own uses back into the worklist. This replaces the original
// rebuild-everything-per-iteration fixed-point loop with work proportional
// to statements actually added.
func Augment(p *ir.Program, model *semmodel.Model, res *taint.Result) {
	sc, _ := augPool.Get().(*augScratch)
	if sc == nil {
		sc = &augScratch{}
		sc.useFn = sc.markUse
	}
	sc.model, sc.idx, sc.stmts = model, res.Index(), res.Stmts()
	// Snapshot the seed statements grouped by method before augmenting:
	// augmentation only ever adds statements inside a method already
	// contributing to the slice, so the group list is complete up front and
	// each method reaches its fixpoint independently of group order.
	sc.groups = sc.groups[:0]
	sc.idx.EachStmt(sc.stmts, func(m *ir.Method, mid uint32, idx int) bool {
		if n := len(sc.groups); n == 0 || sc.groups[n-1].mid != mid {
			// Reuse a retired element (and its seed capacity) when possible.
			if n < cap(sc.groups) {
				sc.groups = sc.groups[:n+1]
				g := &sc.groups[n]
				g.m, g.mid, g.seed = m, mid, g.seed[:0]
			} else {
				sc.groups = append(sc.groups, augGroup{m: m, mid: mid})
			}
		}
		g := &sc.groups[len(sc.groups)-1]
		g.seed = append(g.seed, idx)
		return true
	})
	for i := range sc.groups {
		sc.augmentMethod(sc.groups[i].m, sc.groups[i].mid, sc.groups[i].seed)
	}
	sc.model, sc.idx, sc.stmts, sc.m = nil, nil, nil, nil
	augPool.Put(sc)
}

// augPool recycles augmentation scratch state across transactions and
// worker goroutines: the bucket and worklist capacity a warm scratch
// carries makes repeat augmentation allocation-free.
var augPool sync.Pool

// augGroup is one method's seed statements within a slice.
type augGroup struct {
	m    *ir.Method
	mid  uint32
	seed []int
}

// augScratch holds the per-method fixpoint state of Augment. The index
// buckets, visited-register marks, and worklist keep their capacity across
// method groups, so one Augment call allocates the closure state once
// instead of per method.
type augScratch struct {
	model *semmodel.Model
	idx   *ir.Index
	stmts *intern.Bits

	groups []augGroup

	m   *ir.Method
	mid uint32

	// defIdx/initIdx bucket candidate statements by the register whose use
	// pulls them in; used/work drive the incremental closure. Registers are
	// dense small ints, so plain slice buckets replace the maps.
	defIdx  [][]int
	initIdx [][]int
	used    []bool
	work    []int

	// useFn is the EachUse callback, bound once so the hot loop does not
	// allocate a fresh closure per statement.
	useFn func(u int)
}

// reset prepares the scratch for a method with n registers: reallocate on
// growth, otherwise clear in place (bucket capacity is retained).
func (s *augScratch) reset(n int) {
	if n > len(s.defIdx) {
		s.defIdx = make([][]int, n)
		s.initIdx = make([][]int, n)
		s.used = make([]bool, n)
	} else {
		for i := 0; i < n; i++ {
			s.defIdx[i] = s.defIdx[i][:0]
			s.initIdx[i] = s.initIdx[i][:0]
			s.used[i] = false
		}
	}
	s.work = s.work[:0]
}

func (s *augScratch) markUse(u int) {
	if u >= 0 && u < s.m.Registers && !s.used[u] {
		s.used[u] = true
		s.work = append(s.work, u)
	}
}

func (s *augScratch) add(i int) {
	if !s.stmts.Add(s.idx.StmtID(s.mid, i)) {
		return
	}
	s.m.Instrs[i].EachUse(s.useFn)
}

func (s *augScratch) augmentMethod(m *ir.Method, mid uint32, seed []int) {
	s.m, s.mid = m, mid
	s.reset(m.Registers)
	// Index candidate statements by the register whose use pulls them in:
	// pure context operations by their defined register, constructors
	// (which mutate without defining) by their receiver.
	for i := range m.Instrs {
		in := &m.Instrs[i]
		if d := in.Def(); d != ir.NoReg && d < m.Registers && isContextOp(s.model, in) {
			s.defIdx[d] = append(s.defIdx[d], i)
		}
		if in.Op == ir.OpInvoke && in.Kind == ir.InvokeSpecial &&
			len(in.Args) > 0 && isInitRef(in.Sym) {
			if r := in.Args[0]; r >= 0 && r < m.Registers {
				s.initIdx[r] = append(s.initIdx[r], i)
			}
		}
	}
	for _, i := range seed {
		m.Instrs[i].EachUse(s.useFn)
	}
	for len(s.work) > 0 {
		r := s.work[len(s.work)-1]
		s.work = s.work[:len(s.work)-1]
		for _, i := range s.defIdx[r] {
			s.add(i)
		}
		for _, i := range s.initIdx[r] {
			s.add(i)
		}
	}
}

func isInitRef(sym string) bool {
	_, name, ok := ir.SplitRef(sym)
	return ok && name == "<init>"
}

// isContextOp reports whether an instruction may be pulled into a slice as
// pure initialization context.
func isContextOp(model *semmodel.Model, in *ir.Instr) bool {
	switch in.Op {
	case ir.OpConstStr, ir.OpConstInt, ir.OpConstNull, ir.OpMove, ir.OpNew,
		ir.OpStaticGet, ir.OpFieldGet, ir.OpBinop:
		return true
	case ir.OpInvoke:
		if mm := model.Lookup(in.Sym); mm != nil {
			switch mm.Kind {
			case semmodel.KResGetString, semmodel.KStringBuilderInit,
				semmodel.KValueOf, semmodel.KPassThrough, semmodel.KToString:
				return true
			}
		}
		return isInitRef(in.Sym)
	}
	return false
}

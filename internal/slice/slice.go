// Package slice enumerates HTTP transactions and extracts their program
// slices (§3.1). For every demarcation point reachable from a non-intent
// entry point it creates a transaction context, computes the backward
// (request) and forward (response) slices with the taint engine, and
// performs object-aware slice augmentation so each slice is self-contained
// for signature building.
//
// Transactions are separated per (entry point, demarcation-point site):
// this is the disjoint-sub-slice preprocessing of §3.3 — when multiple
// requests share a demarcation point through code reuse, their slices are
// distinguished by the disjoint code segments belonging to each context,
// restoring one-to-one request/response pairing.
package slice

import (
	"fmt"
	"sort"

	"extractocol/internal/callgraph"
	"extractocol/internal/ir"
	"extractocol/internal/obs"
	"extractocol/internal/semmodel"
	"extractocol/internal/taint"
)

// Transaction is one HTTP interaction context: a demarcation point reached
// from a specific entry point, with its request and response slices.
type Transaction struct {
	ID    int
	DP    taint.StmtID  // demarcation point statement
	DPRef string        // modeled method reference of the DP
	Entry ir.EntryPoint // triggering entry point (the transaction context)

	ReqReg   int           // register holding the request object at the DP
	Request  *taint.Result // backward slice
	Response *taint.Result // forward slice, nil when the DP has no response flow

	RespRoot    taint.StmtID // statement where response propagation begins
	RespRootReg int
	// RespConsumed reports whether forward propagation found any statement
	// beyond the demarcation point itself, before augmentation inflated the
	// slice with initialization context.
	RespConsumed bool

	// Sink set for "how is the response consumed" (§2): media, file, ui.
	Sinks map[string]bool
	// Sources observed while constructing the request (microphone, ...).
	Sources map[string]bool
}

// Key returns a stable identity for deduplication across entry points.
func (t *Transaction) Key() string {
	return fmt.Sprintf("%s@%d/%s", t.DP.Method, t.DP.Index, t.Entry.Method)
}

// Options configures transaction extraction.
type Options struct {
	// MaxAsyncHops bounds asynchronous-boundary crossings (§3.4):
	// 0 disables the heuristic, 1 is the paper's default for
	// closed-source apps.
	MaxAsyncHops int
	// IncludeIntents treats intent-triggered entry points as analysis
	// roots. The paper's system does not model intents (§4) — this is the
	// extension it proposes ("intents can be handled by modeling the
	// implicit control flow"), off by default.
	IncludeIntents bool
	// Stats receives workload counters (slices computed, taint facts
	// propagated). Find is sequential, so one unsynchronized shard
	// suffices. Nil disables counting.
	Stats *obs.Shard
}

// Find enumerates all transactions of the program.
func Find(p *ir.Program, model *semmodel.Model, cg *callgraph.Graph, opts Options) []*Transaction {
	var out []*Transaction
	for _, ep := range p.Manifest.EntryPoints {
		if ep.Kind == ir.EventIntent && !opts.IncludeIntents {
			continue
		}
		universe := cg.Reachable([]string{ep.Method})
		methods := make([]string, 0, len(universe))
		for m := range universe {
			methods = append(methods, m)
		}
		sort.Strings(methods)
		for _, ref := range methods {
			m := p.Method(ref)
			if m == nil {
				continue
			}
			for i := range m.Instrs {
				in := &m.Instrs[i]
				if in.Op != ir.OpInvoke {
					continue
				}
				mm := model.Lookup(in.Sym)
				if mm == nil || !mm.DP {
					continue
				}
				tx := buildTransaction(p, model, cg, opts, ep, universe, m, i, in, mm)
				if tx != nil {
					tx.ID = len(out) + 1
					out = append(out, tx)
				}
			}
		}
	}
	return out
}

func buildTransaction(p *ir.Program, model *semmodel.Model, cg *callgraph.Graph,
	opts Options, ep ir.EntryPoint, universe map[string]bool,
	m *ir.Method, site int, in *ir.Instr, mm *semmodel.Method) *Transaction {

	tx := &Transaction{
		DP:    taint.StmtID{Method: m.Ref(), Index: site},
		DPRef: mm.Ref,
		Entry: ep,
	}

	eng := taint.NewEngine(p, model, cg)
	eng.MaxAsyncHops = opts.MaxAsyncHops
	eng.Universe = universe
	eng.Stats = opts.Stats

	// Request side.
	if mm.ReqArg >= 0 && mm.ReqArg < len(in.Args) {
		tx.ReqReg = in.Args[mm.ReqArg]
		tx.Request = eng.Backward(tx.DP, tx.ReqReg)
		opts.Stats.Add(obs.CtrSlicesBackward, 1)
	} else {
		return nil
	}

	// Response side.
	switch {
	case mm.RespRet && in.Dst != ir.NoReg:
		tx.RespRoot = tx.DP
		tx.RespRootReg = in.Dst
		tx.Response = eng.Forward(tx.RespRoot, tx.RespRootReg)
	case mm.CallbackMethod != "":
		if root, reg, ok := resolveCallback(p, cg, m, site, in, mm); ok {
			tx.RespRoot = root
			tx.RespRootReg = reg
			tx.Response = eng.Forward(root, reg)
		}
	}

	if tx.Response != nil {
		tx.RespConsumed = tx.Response.Size() > 1
		opts.Stats.Add(obs.CtrSlicesForward, 1)
	}

	// Object-aware augmentation: make slices self-contained (§3.1).
	if tx.Response != nil {
		Augment(p, model, tx.Response)
	}
	Augment(p, model, tx.Request)

	tx.Sinks = map[string]bool{}
	tx.Sources = map[string]bool{}
	if mm.Sink != "" {
		tx.Sinks[mm.Sink] = true
	}
	if tx.Response != nil {
		for s := range tx.Response.Sinks {
			tx.Sinks[s] = true
		}
	}
	for s := range tx.Request.Sources {
		tx.Sources[s] = true
	}
	return tx
}

// resolveCallback locates the implicit response entry for asynchronous
// demarcation points: the onResponse-style method of the callback object's
// inferred type, with the response as its first declared parameter.
func resolveCallback(p *ir.Program, cg *callgraph.Graph, m *ir.Method, site int,
	in *ir.Instr, mm *semmodel.Method) (taint.StmtID, int, bool) {

	if mm.CallbackArg >= len(in.Args) {
		return taint.StmtID{}, 0, false
	}
	types := callgraph.InferTypes(p, m)
	reg := in.Args[mm.CallbackArg]
	if reg == ir.NoReg || reg >= len(types) || types[reg] == "" {
		return taint.StmtID{}, 0, false
	}
	target := p.ResolveMethod(types[reg], mm.CallbackMethod)
	if target == nil || len(target.Params) == 0 {
		return taint.StmtID{}, 0, false
	}
	// The response parameter is the first declared parameter (register 1
	// for instance methods).
	root := taint.StmtID{Method: target.Ref(), Index: 0}
	respReg := 1
	if target.Static {
		respReg = 0
	}
	return root, respReg, true
}

// Augment closes a slice over the defining statements of every register its
// statements use, restricted to pure context operations (constants, moves,
// allocations, field/static/resource reads). This reproduces the paper's
// object-aware slice augmentation: a forward slice that uses an object
// initialized before the demarcation point gains the initialization
// context it needs for signature building.
func Augment(p *ir.Program, model *semmodel.Model, res *taint.Result) {
	for changed := true; changed; {
		changed = false
		// Group slice statements per method.
		perMethod := map[string][]int{}
		for s := range res.Stmts {
			perMethod[s.Method] = append(perMethod[s.Method], s.Index)
		}
		for ref, idxs := range perMethod {
			m := p.Method(ref)
			if m == nil {
				continue
			}
			used := map[int]bool{}
			for _, i := range idxs {
				for _, u := range m.Instrs[i].Uses() {
					used[u] = true
				}
			}
			for i := range m.Instrs {
				in := &m.Instrs[i]
				if res.Stmts[taint.StmtID{Method: ref, Index: i}] {
					continue
				}
				d := in.Def()
				if d == ir.NoReg || !used[d] {
					// Constructors mutate without defining; include the
					// <init> of used allocations.
					if in.Op == ir.OpInvoke && in.Kind == ir.InvokeSpecial &&
						len(in.Args) > 0 && used[in.Args[0]] && isInitRef(in.Sym) {
						res.Stmts[taint.StmtID{Method: ref, Index: i}] = true
						changed = true
					}
					continue
				}
				if isContextOp(model, in) {
					res.Stmts[taint.StmtID{Method: ref, Index: i}] = true
					changed = true
				}
			}
		}
	}
}

func isInitRef(sym string) bool {
	_, name, ok := ir.SplitRef(sym)
	return ok && name == "<init>"
}

// isContextOp reports whether an instruction may be pulled into a slice as
// pure initialization context.
func isContextOp(model *semmodel.Model, in *ir.Instr) bool {
	switch in.Op {
	case ir.OpConstStr, ir.OpConstInt, ir.OpConstNull, ir.OpMove, ir.OpNew,
		ir.OpStaticGet, ir.OpFieldGet, ir.OpBinop:
		return true
	case ir.OpInvoke:
		if mm := model.Lookup(in.Sym); mm != nil {
			switch mm.Kind {
			case semmodel.KResGetString, semmodel.KStringBuilderInit,
				semmodel.KValueOf, semmodel.KPassThrough, semmodel.KToString:
				return true
			}
		}
		return isInitRef(in.Sym)
	}
	return false
}

package callgraph

import (
	"testing"

	"extractocol/internal/ir"
	"extractocol/internal/semmodel"
)

// testApp builds a small app exercising direct calls, virtual dispatch,
// an AsyncTask-style implicit callback and an intent entry point.
func testApp() *ir.Program {
	p := ir.NewProgram("t.app")

	// Base/Sub hierarchy for CHA.
	base := p.AddClass(&ir.Class{Name: "t.app.Base"})
	bb := ir.NewMethod(base, "work", false, nil, "void")
	bb.ReturnVoid()
	bb.Done()
	sub := p.AddClass(&ir.Class{Name: "t.app.Sub", Super: "t.app.Base"})
	sb := ir.NewMethod(sub, "work", false, nil, "void")
	sb.ReturnVoid()
	sb.Done()

	// AsyncTask-like class.
	task := p.AddClass(&ir.Class{Name: "t.app.FetchTask", Super: "android.os.AsyncTask"})
	dib := ir.NewMethod(task, "doInBackground", false, nil, "java.lang.String")
	s := dib.ConstStr("result")
	dib.Return(s)
	dib.Done()
	poe := ir.NewMethod(task, "onPostExecute", false, []string{"java.lang.String"}, "void")
	poe.ReturnVoid()
	poe.Done()

	main := p.AddClass(&ir.Class{Name: "t.app.Main"})
	b := ir.NewMethod(main, "onCreate", false, nil, "void")
	// Direct static call.
	b.InvokeStatic("t.app.Main.helper")
	// Virtual call through Base (CHA should add Sub.work too).
	o := b.New("t.app.Base")
	b.InvokeSpecial("t.app.Base.<init>", o)
	b.InvokeVoid("t.app.Base.work", o)
	// Async registration: implicit edge to doInBackground.
	tk := b.New("t.app.FetchTask")
	b.InvokeSpecial("t.app.FetchTask.<init>", tk)
	b.InvokeVoid("android.os.AsyncTask.execute", tk)
	b.ReturnVoid()
	b.Done()

	h := ir.NewMethod(main, "helper", true, nil, "void")
	h.ReturnVoid()
	h.Done()

	hidden := ir.NewMethod(main, "onIntentOnly", false, nil, "void")
	hidden.InvokeStatic("t.app.Main.helper")
	hidden.ReturnVoid()
	hidden.Done()

	p.Manifest.EntryPoints = []ir.EntryPoint{
		{Method: "t.app.Main.onCreate", Kind: ir.EventCreate},
		{Method: "t.app.Main.onIntentOnly", Kind: ir.EventIntent},
	}
	return p
}

func edgesTo(g *Graph, caller, callee string) []Edge {
	var out []Edge
	for _, e := range g.Callees(caller) {
		if e.Callee == callee {
			out = append(out, e)
		}
	}
	return out
}

func TestDirectStaticEdge(t *testing.T) {
	g := Build(testApp(), semmodel.Default())
	if len(edgesTo(g, "t.app.Main.onCreate", "t.app.Main.helper")) != 1 {
		t.Fatal("missing static call edge onCreate -> helper")
	}
}

func TestCHAVirtualDispatchIncludesOverrides(t *testing.T) {
	g := Build(testApp(), semmodel.Default())
	if len(edgesTo(g, "t.app.Main.onCreate", "t.app.Base.work")) != 1 {
		t.Fatal("missing Base.work edge")
	}
	if len(edgesTo(g, "t.app.Main.onCreate", "t.app.Sub.work")) != 1 {
		t.Fatal("CHA should include override Sub.work")
	}
}

func TestImplicitAsyncTaskEdges(t *testing.T) {
	g := Build(testApp(), semmodel.Default())
	es := edgesTo(g, "t.app.Main.onCreate", "t.app.FetchTask.doInBackground")
	if len(es) != 1 || !es[0].Implicit {
		t.Fatalf("implicit execute->doInBackground edge wrong: %+v", es)
	}
	chain := edgesTo(g, "t.app.FetchTask.doInBackground", "t.app.FetchTask.onPostExecute")
	if len(chain) != 1 || !chain[0].Implicit {
		t.Fatalf("doInBackground->onPostExecute chain missing: %+v", chain)
	}
}

func TestCallersIndex(t *testing.T) {
	g := Build(testApp(), semmodel.Default())
	callers := g.Callers("t.app.Main.helper")
	if len(callers) != 2 { // onCreate and onIntentOnly
		t.Fatalf("helper callers = %d, want 2", len(callers))
	}
}

func TestAnalysisRootsExcludeIntents(t *testing.T) {
	p := testApp()
	roots := AnalysisRoots(p)
	if len(roots) != 1 || roots[0] != "t.app.Main.onCreate" {
		t.Fatalf("roots = %v, want only onCreate", roots)
	}
}

func TestReachabilityStopsAtIntentOnlyFlows(t *testing.T) {
	p := testApp()
	g := Build(p, semmodel.Default())
	reach := g.Reachable(AnalysisRoots(p))
	if !reach["t.app.FetchTask.doInBackground"] {
		t.Fatal("async callback should be reachable")
	}
	if reach["t.app.Main.onIntentOnly"] {
		t.Fatal("intent-only entry must be invisible to the analyzer")
	}
	// helper is reachable via onCreate even though onIntentOnly also calls it.
	if !reach["t.app.Main.helper"] {
		t.Fatal("helper should be reachable via onCreate")
	}
}

func TestInferTypes(t *testing.T) {
	p := testApp()
	m := p.Method("t.app.Main.onCreate")
	types := InferTypes(p, m)
	if types[0] != "t.app.Main" {
		t.Fatalf("receiver type = %q", types[0])
	}
	// Find the register allocated for FetchTask.
	found := false
	for i := range m.Instrs {
		in := &m.Instrs[i]
		if in.Op == ir.OpNew && in.Sym == "t.app.FetchTask" {
			if types[in.Dst] != "t.app.FetchTask" {
				t.Fatalf("alloc type = %q", types[in.Dst])
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no FetchTask allocation found")
	}
}

func TestCalleesAt(t *testing.T) {
	p := testApp()
	g := Build(p, semmodel.Default())
	m := p.Method("t.app.Main.onCreate")
	for i := range m.Instrs {
		in := &m.Instrs[i]
		if in.Op == ir.OpInvoke && in.Sym == "t.app.Base.work" {
			es := g.CalleesAt("t.app.Main.onCreate", i)
			if len(es) != 2 {
				t.Fatalf("CalleesAt(work) = %d edges, want 2 (Base+Sub)", len(es))
			}
			return
		}
	}
	t.Fatal("work call site not found")
}

func TestInterfaceDispatch(t *testing.T) {
	p := ir.NewProgram("t")
	impl := p.AddClass(&ir.Class{Name: "t.Impl", Interfaces: []string{"t.Listener"}})
	im := ir.NewMethod(impl, "onEvent", false, nil, "void")
	im.ReturnVoid()
	im.Done()

	main := p.AddClass(&ir.Class{Name: "t.Main"})
	b := ir.NewMethod(main, "go", true, []string{"t.Listener"}, "void")
	l := b.Param(0)
	b.InvokeVoid("t.Listener.onEvent", l)
	b.ReturnVoid()
	b.Done()

	g := Build(p, semmodel.Default())
	if len(edgesTo(g, "t.Main.go", "t.Impl.onEvent")) != 1 {
		t.Fatal("interface dispatch edge missing")
	}
}

// Package callgraph builds the inter-procedural call graph the slicer and
// taint engine traverse. Dispatch is resolved with class-hierarchy analysis
// (CHA); implicit call flows introduced by thread and async libraries
// (AsyncTask, Volley, Retrofit, Thread, Timer, ... — §3.4) become explicit
// edges using the callback registry carried by the semantic model, in the
// spirit of EdgeMiner.
package callgraph

import (
	"sort"
	"sync"
	"sync/atomic"

	"extractocol/internal/intern"
	"extractocol/internal/ir"
	"extractocol/internal/obs"
	"extractocol/internal/semmodel"
)

// Edge is one resolved call: the instruction at Site in Caller may invoke
// Callee. Implicit marks callback edges synthesized from async
// registrations rather than direct invocations.
type Edge struct {
	Caller   string // fully qualified method ref
	Site     int    // instruction index within the caller
	Callee   string // fully qualified method ref (always an app method)
	Implicit bool
}

// Graph is the call graph over app methods. Beyond the edge sets it carries
// the per-program analysis cache shared by every transaction extraction:
// memoized per-method type inference and per-root reachability, safe for
// concurrent readers (the slice worker pool queries both from many
// goroutines at once).
type Graph struct {
	prog  *ir.Program
	model *semmodel.Model
	idx   *ir.Index
	out   map[string][]Edge // caller -> edges
	in    map[string][]Edge // callee -> edges

	mu        sync.RWMutex
	types     map[string][]string        // method ref -> inferred register types
	reach     map[string]map[string]bool // root ref -> reachable method set
	reachBits map[string]*intern.Bits    // root ref -> reachable method-ID set

	typesHits, typesMisses atomic.Int64
	reachHits, reachMisses atomic.Int64
}

// Build constructs the call graph for every app method in p.
func Build(p *ir.Program, model *semmodel.Model) *Graph {
	g := &Graph{prog: p, model: model, idx: ir.NewIndex(p),
		out: map[string][]Edge{}, in: map[string][]Edge{},
		types: map[string][]string{}, reach: map[string]map[string]bool{},
		reachBits: map[string]*intern.Bits{}}
	for _, c := range p.AppClasses() {
		for _, m := range c.Methods {
			g.addMethodEdges(m)
		}
	}
	for _, edges := range g.out {
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].Site != edges[j].Site {
				return edges[i].Site < edges[j].Site
			}
			return edges[i].Callee < edges[j].Callee
		})
	}
	return g
}

func (g *Graph) addMethodEdges(m *ir.Method) {
	types := g.Types(m)
	for i := range m.Instrs {
		in := &m.Instrs[i]
		if in.Op != ir.OpInvoke {
			continue
		}
		cls, name, ok := ir.SplitRef(in.Sym)
		if !ok {
			continue
		}

		// Implicit callback edges from modeled async registrations.
		if e := g.model.Lookup(in.Sym); e != nil && e.CallbackMethod != "" {
			g.addCallbackEdge(m, i, in, e, types)
			continue
		}

		// Direct edges to app methods.
		switch in.Kind {
		case ir.InvokeStatic, ir.InvokeSpecial:
			if target := g.prog.ResolveMethod(cls, name); target != nil {
				g.addEdge(Edge{Caller: m.Ref(), Site: i, Callee: target.Ref()})
			}
		default: // virtual / interface dispatch
			// Prefer the precise receiver type when locally inferable.
			recvCls := cls
			if len(in.Args) > 0 && in.Args[0] < len(types) && types[in.Args[0]] != "" {
				if g.prog.Class(types[in.Args[0]]) != nil {
					recvCls = types[in.Args[0]]
				}
			}
			added := map[string]bool{}
			if target := g.prog.ResolveMethod(recvCls, name); target != nil {
				g.addEdge(Edge{Caller: m.Ref(), Site: i, Callee: target.Ref()})
				added[target.Ref()] = true
			}
			// CHA: any subclass override is a possible target.
			for _, sub := range g.prog.Subclasses(recvCls) {
				if sc := g.prog.Class(sub); sc != nil {
					if sm := sc.Method(name); sm != nil && !added[sm.Ref()] {
						g.addEdge(Edge{Caller: m.Ref(), Site: i, Callee: sm.Ref()})
						added[sm.Ref()] = true
					}
				}
			}
			// Interface dispatch: implementers of the declared interface.
			if g.prog.Class(recvCls) == nil || in.Kind == ir.InvokeInterface {
				for _, impl := range g.prog.Implementers(recvCls) {
					if target := g.prog.ResolveMethod(impl, name); target != nil && !added[target.Ref()] {
						g.addEdge(Edge{Caller: m.Ref(), Site: i, Callee: target.Ref()})
						added[target.Ref()] = true
					}
				}
			}
		}
	}
}

// addCallbackEdge synthesizes an implicit edge for an async registration
// like task.execute(...) -> Task.doInBackground, thread.start() -> run.
func (g *Graph) addCallbackEdge(m *ir.Method, site int, in *ir.Instr, e *semmodel.Method, types []string) {
	if e.CallbackArg >= len(in.Args) {
		return
	}
	reg := in.Args[e.CallbackArg]
	if reg == ir.NoReg || reg >= len(types) {
		return
	}
	cbType := types[reg]
	if cbType == "" {
		return
	}
	target := g.prog.ResolveMethod(cbType, e.CallbackMethod)
	if target == nil {
		return
	}
	g.addEdge(Edge{Caller: m.Ref(), Site: site, Callee: target.Ref(), Implicit: true})

	// AsyncTask chains doInBackground's result into onPostExecute.
	if e.Kind == semmodel.KAsyncExecute {
		if post := g.prog.ResolveMethod(cbType, "onPostExecute"); post != nil {
			g.addEdge(Edge{Caller: target.Ref(), Site: -1, Callee: post.Ref(), Implicit: true})
		}
	}
}

func (g *Graph) addEdge(e Edge) {
	g.out[e.Caller] = append(g.out[e.Caller], e)
	g.in[e.Callee] = append(g.in[e.Callee], e)
}

// CalleesAt returns the resolved targets of the call site at instruction
// index site in caller.
func (g *Graph) CalleesAt(caller string, site int) []Edge {
	var out []Edge
	for _, e := range g.out[caller] {
		if e.Site == site {
			out = append(out, e)
		}
	}
	return out
}

// Callees returns all outgoing edges of caller.
func (g *Graph) Callees(caller string) []Edge { return g.out[caller] }

// Callers returns all incoming edges of callee.
func (g *Graph) Callers(callee string) []Edge { return g.in[callee] }

// Types returns the memoized intra-procedural register types of m (see
// InferTypes). The returned slice is shared: callers must treat it as
// read-only. Safe for concurrent use; Build warms the cache for every app
// method, so post-build queries are hits.
func (g *Graph) Types(m *ir.Method) []string {
	ref := m.Ref()
	g.mu.RLock()
	t, ok := g.types[ref]
	g.mu.RUnlock()
	if ok {
		g.typesHits.Add(1)
		return t
	}
	g.typesMisses.Add(1)
	t = InferTypes(g.prog, m)
	g.mu.Lock()
	if prev, ok := g.types[ref]; ok {
		t = prev // another goroutine built it first; keep one canonical slice
	} else {
		g.types[ref] = t
	}
	g.mu.Unlock()
	return t
}

// ReachableFrom returns the memoized reachable set of a single root (the
// per-entry-point transaction universe). The returned map is shared:
// callers must treat it as read-only. Safe for concurrent use.
func (g *Graph) ReachableFrom(root string) map[string]bool {
	g.mu.RLock()
	r, ok := g.reach[root]
	g.mu.RUnlock()
	if ok {
		g.reachHits.Add(1)
		return r
	}
	g.reachMisses.Add(1)
	r = g.Reachable([]string{root})
	g.mu.Lock()
	if prev, ok := g.reach[root]; ok {
		r = prev
	} else {
		g.reach[root] = r
	}
	g.mu.Unlock()
	return r
}

// Index returns the program's dense method/statement index, built once by
// Build and read-only afterwards (safe for concurrent use).
func (g *Graph) Index() *ir.Index { return g.idx }

// ReachableBits is ReachableFrom over dense method IDs: the memoized
// per-entry-point transaction universe as an intern.Bits, so the taint
// engine's gate checks are single bit tests. The returned set is shared:
// callers must treat it as read-only. Safe for concurrent use.
func (g *Graph) ReachableBits(root string) *intern.Bits {
	g.mu.RLock()
	b, ok := g.reachBits[root]
	g.mu.RUnlock()
	if ok {
		g.reachHits.Add(1)
		return b
	}
	g.reachMisses.Add(1)
	r := g.Reachable([]string{root})
	b = intern.NewBits(g.idx.NumMethods())
	for ref := range r {
		if id, ok := g.idx.MethodID(ref); ok {
			b.Add(id)
		}
	}
	g.mu.Lock()
	if prev, ok := g.reachBits[root]; ok {
		b = prev
	} else {
		g.reachBits[root] = b
	}
	g.mu.Unlock()
	return b
}

// DrainCacheCounters moves the cache hit/miss totals accumulated since the
// last drain into col, under the cache_reachable_* and cache_infertypes_*
// counters.
func (g *Graph) DrainCacheCounters(col *obs.Collector) {
	col.Add(obs.CtrCacheReachableHits, g.reachHits.Swap(0))
	col.Add(obs.CtrCacheReachableMisses, g.reachMisses.Swap(0))
	col.Add(obs.CtrCacheInferTypesHits, g.typesHits.Swap(0))
	col.Add(obs.CtrCacheInferTypesMisses, g.typesMisses.Swap(0))
}

// Reachable computes the set of method refs reachable from the given
// roots, following both direct and implicit edges. The result is freshly
// allocated; prefer ReachableFrom for the memoized single-root variant.
func (g *Graph) Reachable(roots []string) map[string]bool {
	seen := map[string]bool{}
	var stack []string
	for _, r := range roots {
		if g.prog.Method(r) != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		m := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.out[m] {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				stack = append(stack, e.Callee)
			}
		}
	}
	return seen
}

// AnalysisRoots returns the entry-point methods the static analyzer may
// legitimately start from. Intent-triggered entry points are excluded: the
// paper's system does not model Android intents (§4), which is the root
// cause of its missed messages in Table 1.
func AnalysisRoots(p *ir.Program) []string {
	var out []string
	for _, ep := range p.Manifest.EntryPoints {
		if ep.Kind == ir.EventIntent {
			continue
		}
		out = append(out, ep.Method)
	}
	sort.Strings(out)
	return out
}

// InferTypes performs a simple intra-procedural forward type inference for
// m's registers: declared parameter types, allocation sites, field types,
// string/int constants and app-method return types. The first inferred
// type for a register wins; authored bytecode is close to SSA form so this
// is sufficient for dispatch and callback resolution.
func InferTypes(p *ir.Program, m *ir.Method) []string {
	types := make([]string, m.Registers)
	idx := 0
	if !m.Static {
		if idx < len(types) {
			types[idx] = m.Class.Name
		}
		idx++
	}
	for _, pt := range m.Params {
		if idx < len(types) {
			types[idx] = pt
		}
		idx++
	}
	set := func(r int, t string) {
		if r >= 0 && r < len(types) && types[r] == "" && t != "" {
			types[r] = t
		}
	}
	for i := range m.Instrs {
		in := &m.Instrs[i]
		switch in.Op {
		case ir.OpNew:
			set(in.Dst, in.Sym)
		case ir.OpConstStr:
			set(in.Dst, "java.lang.String")
		case ir.OpConstInt:
			set(in.Dst, "int")
		case ir.OpMove:
			if in.A >= 0 && in.A < len(types) {
				set(in.Dst, types[in.A])
			}
		case ir.OpFieldGet:
			if in.A >= 0 && in.A < len(types) && types[in.A] != "" {
				if c := p.Class(types[in.A]); c != nil {
					if f := c.Field(in.Sym); f != nil {
						set(in.Dst, f.Type)
					}
				}
			}
			if in.Dst < len(types) && in.Dst >= 0 && types[in.Dst] == "" {
				// Fall back to a field declared anywhere in the owner class
				// named by the instruction when the receiver type is unknown.
				if c := m.Class; c != nil {
					if f := c.Field(in.Sym); f != nil {
						set(in.Dst, f.Type)
					}
				}
			}
		case ir.OpStaticGet:
			cls, fname, ok := ir.SplitRef(in.Sym)
			if ok {
				if c := p.Class(cls); c != nil {
					if f := c.Field(fname); f != nil {
						set(in.Dst, f.Type)
					}
				}
			}
		case ir.OpInvoke:
			if in.Dst != ir.NoReg {
				if target := p.Method(in.Sym); target != nil {
					set(in.Dst, target.Return)
				}
			}
		}
	}
	return types
}

package callgraph

import (
	"reflect"
	"sync"
	"testing"

	"extractocol/internal/obs"
	"extractocol/internal/semmodel"
)

// Types must be memoized: repeated queries return the same canonical slice,
// and Build itself warms the cache for every app method.
func TestTypesMemoized(t *testing.T) {
	p := testApp()
	g := Build(p, semmodel.Default())

	m := p.Method("t.app.Main.onCreate")
	if m == nil {
		t.Fatal("method missing")
	}
	t1 := g.Types(m)
	t2 := g.Types(m)
	if len(t1) == 0 {
		t.Fatal("no types inferred")
	}
	if &t1[0] != &t2[0] {
		t.Error("Types returned distinct slices; cache not shared")
	}

	col := obs.NewCollector()
	g.DrainCacheCounters(col)
	prof := col.Snapshot()
	// Build misses once per method; the two queries above are hits.
	if prof.Counter(obs.CtrCacheInferTypesMisses) == 0 {
		t.Error("no infertypes misses recorded")
	}
	if prof.Counter(obs.CtrCacheInferTypesHits) < 2 {
		t.Errorf("infertypes hits = %d, want >= 2", prof.Counter(obs.CtrCacheInferTypesHits))
	}
}

// ReachableFrom must memoize per root and agree with the uncached Reachable.
func TestReachableFromMemoized(t *testing.T) {
	p := testApp()
	g := Build(p, semmodel.Default())

	root := "t.app.Main.onCreate"
	r1 := g.ReachableFrom(root)
	r2 := g.ReachableFrom(root)
	if len(r1) == 0 {
		t.Fatal("empty reachable set")
	}
	// Same canonical map on the second query.
	if reflect.ValueOf(r1).Pointer() != reflect.ValueOf(r2).Pointer() {
		t.Error("ReachableFrom returned distinct maps; cache not shared")
	}
	fresh := g.Reachable([]string{root})
	if len(fresh) != len(r1) {
		t.Fatalf("ReachableFrom disagrees with Reachable: %d vs %d", len(r1), len(fresh))
	}
	for m := range fresh {
		if !r1[m] {
			t.Errorf("memoized set missing %s", m)
		}
	}

	col := obs.NewCollector()
	g.DrainCacheCounters(col)
	prof := col.Snapshot()
	if got := prof.Counter(obs.CtrCacheReachableMisses); got != 1 {
		t.Errorf("reachable misses = %d, want 1", got)
	}
	if got := prof.Counter(obs.CtrCacheReachableHits); got != 1 {
		t.Errorf("reachable hits = %d, want 1", got)
	}
}

// DrainCacheCounters must reset the accumulators: a second drain with no
// intervening queries adds nothing.
func TestDrainCacheCountersResets(t *testing.T) {
	p := testApp()
	g := Build(p, semmodel.Default())
	g.ReachableFrom("t.app.Main.onCreate")

	col := obs.NewCollector()
	g.DrainCacheCounters(col)
	before := col.Snapshot()
	g.DrainCacheCounters(col)
	after := col.Snapshot()
	for _, name := range []string{
		obs.CtrCacheReachableHits, obs.CtrCacheReachableMisses,
		obs.CtrCacheInferTypesHits, obs.CtrCacheInferTypesMisses,
	} {
		if before.Counter(name) != after.Counter(name) {
			t.Errorf("%s grew on a drain without queries: %d -> %d",
				name, before.Counter(name), after.Counter(name))
		}
	}
}

// The cache must be safe for concurrent readers (exercised under -race by
// ci.sh): many goroutines hammering Types and ReachableFrom concurrently.
func TestCacheConcurrentReaders(t *testing.T) {
	p := testApp()
	g := Build(p, semmodel.Default())
	m := p.Method("t.app.Main.onCreate")

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if len(g.Types(m)) == 0 {
					t.Error("empty types under concurrency")
					return
				}
				if len(g.ReachableFrom("t.app.Main.onCreate")) == 0 {
					t.Error("empty reachable set under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
}

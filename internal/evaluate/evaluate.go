// Package evaluate regenerates every table and figure of the paper's
// evaluation (§5) from the corpus: Table 1 (per-app signature coverage),
// Figures 6 and 7 (signature and keyword totals), Table 2 (matched-byte
// fractions), the Radio reddit and TED case studies (Tables 3 and 4), the
// Kayak reverse-engineering study (Tables 5 and 6), the obfuscation
// invariance check, and analysis timing. The cmd/evaluate binary prints
// these; bench_test.go benchmarks them.
package evaluate

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"extractocol/internal/budget"
	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/fuzz"
	"extractocol/internal/obs"
	"extractocol/internal/resultcache"
	"extractocol/internal/siglang"
	"extractocol/internal/trace"
)

// Methods enumerated in Table 1 order.
var Methods = []string{"GET", "POST", "PUT", "DELETE"}

// optionsFor mirrors the paper's configuration: the asynchronous-event
// heuristic is disabled for open-source apps and enabled for closed-source
// apps (§5.1).
func optionsFor(app *corpus.App) core.Options {
	opts := core.NewOptions()
	if app.Spec.OpenSource {
		opts.MaxAsyncHops = 0
	}
	return opts
}

// AppResult bundles everything measured for one corpus app.
type AppResult struct {
	App    *corpus.App
	Report *core.Report
	Manual []trace.Entry
	Auto   []trace.Entry
	// Tracer holds the app's span timeline when RunConfig.Trace was set
	// (export with Tracer.Export, one pid per app); nil otherwise.
	Tracer *obs.Tracer
}

// RunConfig parameterizes a corpus evaluation: worker count plus the
// robustness budgets threaded into every app's core.Options.
type RunConfig struct {
	// Workers is the fan-out width (0 means one per CPU, 1 forces serial).
	Workers int
	// Deadline bounds each app's analysis wall time (0 means unlimited).
	Deadline time.Duration
	// MaxSliceSteps caps the cumulative slicing step pool per app.
	MaxSliceSteps int64
	// MaxFixpointIters caps every taint fixpoint per app.
	MaxFixpointIters int64
	// Faults injects deterministic failures for robustness testing.
	Faults *budget.FaultInjector
	// Trace records a span timeline per app (see AppResult.Tracer).
	Trace bool
	// CacheDir roots a persistent report cache shared by every app in the
	// run ("" = off): a warm corpus evaluation serves each app's report
	// from disk instead of re-analyzing it.
	CacheDir string
	// Obs attaches every app's collector to a process-wide registry for
	// live /metrics exposition while the corpus runs (see internal/ops).
	Obs *obs.Registry
	// Events streams run/phase/job lifecycle events for every app to one
	// shared JSONL log.
	Events *obs.EventLog
	// Flight arms the per-worker flight recorder for every app (see
	// core.Options.Flight).
	Flight bool
}

// RunApp analyzes one app and runs both fuzzing baselines.
func RunApp(app *corpus.App) (*AppResult, error) {
	return RunAppConfig(app, RunConfig{})
}

// RunAppConfig is RunApp with the config's budgets applied.
func RunAppConfig(app *corpus.App, cfg RunConfig) (*AppResult, error) {
	opts := optionsFor(app)
	opts.Deadline = cfg.Deadline
	opts.MaxSliceSteps = cfg.MaxSliceSteps
	opts.MaxFixpointIters = cfg.MaxFixpointIters
	opts.Faults = cfg.Faults
	opts.Obs = cfg.Obs
	opts.Events = cfg.Events
	opts.Flight = cfg.Flight
	if cfg.Trace {
		opts.Tracer = obs.NewTracer()
	}
	if cfg.CacheDir != "" {
		cache, err := resultcache.Open(cfg.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", app.Spec.Name, err)
		}
		key, err := resultcache.KeyForProgram(app.Prog, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", app.Spec.Name, err)
		}
		opts.Cache = cache
		opts.CacheKey = key
	}
	rep, err := core.Analyze(app.Prog, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", app.Spec.Name, err)
	}
	res := &AppResult{App: app, Report: rep, Tracer: opts.Tracer}

	mn := app.NewNetwork()
	if _, err := fuzz.Run(app.Prog, mn, fuzz.Manual); err != nil {
		return nil, err
	}
	res.Manual = trace.FromNetwork(mn.Trace())

	an := app.NewNetwork()
	if _, err := fuzz.Run(app.Prog, an, fuzz.Auto); err != nil {
		return nil, err
	}
	res.Auto = trace.FromNetwork(an.Trace())
	return res, nil
}

// RunAll evaluates the whole corpus. Apps are analyzed in parallel (one
// worker per CPU); results keep corpus order, so output is byte-identical
// to a serial run.
func RunAll() ([]*AppResult, error) {
	out, _, err := RunAllParallel(0)
	return out, err
}

// ParallelStats describes one parallel corpus evaluation: the wall-clock
// time of the fan-out, the summed per-app analysis time, and the effective
// speedup (app time / wall time) — the observability layer's own
// measurement of how well per-app parallelism pays off.
type ParallelStats struct {
	Workers   int        `json:"workers"`
	WallNS    int64      `json:"wall_ns"`
	AppNSSum  int64      `json:"app_ns_total"`
	SpeedupX  float64    `json:"speedup_x"`
	AppsRun   int        `json:"apps"`
	AppErrors int        `json:"app_errors"`
	Errors    []AppError `json:"errors,omitempty"`

	// Report-cache contention, summed from the per-app profiles when the
	// run used a shared on-disk cache (RunConfig.CacheDir): total time
	// workers spent blocked on per-key cache locks, contended same-key
	// acquisitions, and atomic-install retries. All zero on cache-off runs.
	CacheLockWaitNS     int64 `json:"cache_lock_wait_ns,omitempty"`
	CacheKeyRaces       int64 `json:"cache_key_races,omitempty"`
	CacheInstallRetries int64 `json:"cache_install_retries,omitempty"`
}

// AppError records one failed app in an aggregated corpus run.
type AppError struct {
	App string `json:"app"`
	Err string `json:"error"`
}

// RunAllParallel evaluates the whole corpus with the given number of
// workers (0 means one per CPU, 1 forces the serial path). Results keep
// corpus order regardless of completion order. The first app error aborts
// the evaluation.
func RunAllParallel(workers int) ([]*AppResult, *ParallelStats, error) {
	results, errs, stats := runAll(RunConfig{Workers: workers})
	for _, err := range errs {
		if err != nil {
			return nil, stats, err
		}
	}
	return results, stats, nil
}

// RunAllConfig evaluates the whole corpus under the config's budgets and
// aggregates per-app failures instead of aborting on the first one: failed
// apps are compacted out of the result slice and recorded in
// stats.Errors, so one broken app never discards 33 good reports.
func RunAllConfig(cfg RunConfig) ([]*AppResult, *ParallelStats, error) {
	results, errs, stats := runAll(cfg)
	apps := corpus.Apps()
	ok := results[:0]
	for i, r := range results {
		if errs[i] != nil {
			stats.Errors = append(stats.Errors, AppError{
				App: apps[i].Spec.Name, Err: errs[i].Error(),
			})
			continue
		}
		ok = append(ok, r)
	}
	// Workers finish in scheduling order; sort so -gen failure output is
	// deterministic across runs and worker counts.
	sort.Slice(stats.Errors, func(i, j int) bool {
		return stats.Errors[i].App < stats.Errors[j].App
	})
	return ok, stats, nil
}

// runAll is the shared fan-out: positional results and errors in corpus
// order, regardless of completion order.
func runAll(cfg RunConfig) ([]*AppResult, []error, *ParallelStats) {
	apps := corpus.Apps()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(apps) {
		workers = len(apps)
	}
	start := time.Now()
	results := make([]*AppResult, len(apps))
	errs := make([]error, len(apps))
	if workers > 1 {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					results[i], errs[i] = RunAppConfig(apps[i], cfg)
				}
			}()
		}
		for i := range apps {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	} else {
		for i := range apps {
			results[i], errs[i] = RunAppConfig(apps[i], cfg)
		}
	}

	stats := &ParallelStats{Workers: workers, WallNS: time.Since(start).Nanoseconds(), AppsRun: len(apps)}
	for _, err := range errs {
		if err != nil {
			stats.AppErrors++
		}
	}
	for _, r := range results {
		if r != nil {
			stats.AppNSSum += r.Report.Duration.Nanoseconds()
			stats.CacheLockWaitNS += r.Report.Profile.Counter(obs.CtrCacheLockWaitNS)
			stats.CacheKeyRaces += r.Report.Profile.Counter(obs.CtrCacheKeyRaces)
			stats.CacheInstallRetries += r.Report.Profile.Counter(obs.CtrCacheInstallRetries)
		}
	}
	if stats.WallNS > 0 {
		stats.SpeedupX = float64(stats.AppNSSum) / float64(stats.WallNS)
	}
	return results, errs, stats
}

// CorpusProfile merges every app's per-phase profile into one corpus-wide
// aggregate: total time per pipeline phase and summed workload counters.
func CorpusProfile(results []*AppResult) *obs.Profile {
	agg := &obs.Profile{}
	for _, r := range results {
		agg.Merge(r.Report.Profile)
	}
	return agg
}

// Cell is one Table 1 triple.
type Cell struct{ E, M, A int }

func (c Cell) String() string { return fmt.Sprintf("%d/%d/%d", c.E, c.M, c.A) }

// Table1Row is the measured row for one app.
type Table1Row struct {
	Name       string
	OpenSource bool
	Protocol   string
	ByMethod   map[string]Cell
	Pairs      int
}

// Table1 computes the measured Table 1.
func Table1(results []*AppResult) []Table1Row {
	var rows []Table1Row
	for _, r := range results {
		row := Table1Row{
			Name:       r.App.Spec.Name,
			OpenSource: r.App.Spec.OpenSource,
			Protocol:   r.App.Spec.Protocol,
			ByMethod:   map[string]Cell{},
			Pairs:      r.Report.PairCount(),
		}
		e := r.Report.CountByMethod()
		m := trace.CountByMethod(r.Manual)
		a := trace.CountByMethod(r.Auto)
		for _, method := range Methods {
			if e[method]+m[method]+a[method] > 0 {
				row.ByMethod[method] = Cell{E: e[method], M: m[method], A: a[method]}
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable1 renders Table 1 as text.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: signatures identified (Extractocol / manual fuzzing / auto fuzzing)\n")
	fmt.Fprintf(&b, "%-24s %-8s %-12s %-12s %-10s %-10s %6s\n",
		"App", "Proto", "GET", "POST", "PUT", "DELETE", "#Pair")
	for _, grp := range []bool{true, false} {
		if grp {
			b.WriteString("-- open-source --\n")
		} else {
			b.WriteString("-- closed-source --\n")
		}
		for _, r := range rows {
			if r.OpenSource != grp {
				continue
			}
			fmt.Fprintf(&b, "%-24s %-8s %-12s %-12s %-10s %-10s %6d\n",
				r.Name, r.Protocol, cellOrDash(r.ByMethod, "GET"),
				cellOrDash(r.ByMethod, "POST"), cellOrDash(r.ByMethod, "PUT"),
				cellOrDash(r.ByMethod, "DELETE"), r.Pairs)
		}
	}
	return b.String()
}

func cellOrDash(m map[string]Cell, k string) string {
	if c, ok := m[k]; ok {
		return c.String()
	}
	return "-"
}

// Figure6 totals unique signatures per extraction method.
type Figure6Totals struct {
	// URIs, ReqBodies, RespBodies indexed by source: Extractocol,
	// manual fuzzing, auto fuzzing.
	URIs, ReqBodies, RespBodies Cell
}

// Figure6 computes signature totals for one corpus half.
func Figure6(results []*AppResult, openSource bool) Figure6Totals {
	var t Figure6Totals
	for _, r := range results {
		if r.App.Spec.OpenSource != openSource {
			continue
		}
		t.URIs.E += len(r.Report.Transactions)
		reqBodies := 0
		respBodies := 0
		for _, tx := range r.Report.Transactions {
			if tx.Request.BodyKind != "" {
				reqBodies++
			}
			if tx.Response != nil && tx.Response.HasBody() {
				respBodies++
			}
		}
		t.ReqBodies.E += reqBodies
		t.RespBodies.E += respBodies

		t.URIs.M += len(trace.UniqueRoutes(r.Manual))
		t.URIs.A += len(trace.UniqueRoutes(r.Auto))
		mq, mj, mx := countTraceBodies(r.Manual)
		aq, aj, ax := countTraceBodies(r.Auto)
		t.ReqBodies.M += mq
		t.ReqBodies.A += aq
		t.RespBodies.M += mj + mx
		t.RespBodies.A += aj + ax
	}
	return t
}

// countTraceBodies returns (#routes with request bodies, #routes with JSON
// responses, #routes with XML responses).
func countTraceBodies(entries []trace.Entry) (req, jsonResp, xmlResp int) {
	reqR, jsonR, xmlR := map[string]bool{}, map[string]bool{}, map[string]bool{}
	for _, e := range entries {
		if e.Status >= 400 || e.RouteID == "" {
			continue
		}
		if e.ReqBody != "" {
			reqR[e.RouteID] = true
		}
		switch e.RespType {
		case "json":
			jsonR[e.RouteID] = true
		case "xml":
			xmlR[e.RouteID] = true
		}
	}
	return len(reqR), len(jsonR), len(xmlR)
}

// FormatFigure6 renders both halves.
func FormatFigure6(open, closed Figure6Totals) string {
	var b strings.Builder
	b.WriteString("Figure 6: unique signatures (Extractocol / manual / auto)\n")
	f := func(name string, t Figure6Totals) {
		fmt.Fprintf(&b, "  %-14s URIs %-14s req bodies %-14s resp bodies %s\n",
			name, t.URIs, t.ReqBodies, t.RespBodies)
	}
	f("open-source", open)
	f("closed-source", closed)
	return b.String()
}

// Figure7Totals counts constant protocol keywords per extraction method.
type Figure7Totals struct {
	Request  Cell
	Response Cell
}

// Figure7 counts keywords for one corpus half.
func Figure7(results []*AppResult, openSource bool) Figure7Totals {
	var t Figure7Totals
	for _, r := range results {
		if r.App.Spec.OpenSource != openSource {
			continue
		}
		reqKW := map[string]bool{}
		respKW := map[string]bool{}
		for _, tx := range r.Report.Transactions {
			for _, k := range siglang.Keywords(tx.Request.URI) {
				reqKW[k] = true
			}
			for _, k := range siglang.Keywords(tx.Request.Body) {
				reqKW[k] = true
			}
			if tx.Response == nil {
				continue
			}
			switch tx.Response.BodyKind {
			case "json":
				for _, k := range siglang.Keywords(&siglang.JSON{Root: tx.Response.JSON}) {
					respKW[k] = true
				}
			case "xml":
				for _, k := range siglang.Keywords(&siglang.XML{Root: tx.Response.XML}) {
					respKW[k] = true
				}
			}
		}
		t.Request.E += len(reqKW)
		t.Response.E += len(respKW)
		t.Request.M += len(trace.RequestKeywords(r.Manual))
		t.Request.A += len(trace.RequestKeywords(r.Auto))
		t.Response.M += len(trace.ResponseKeywords(r.Manual))
		t.Response.A += len(trace.ResponseKeywords(r.Auto))
	}
	return t
}

// FormatFigure7 renders both halves.
func FormatFigure7(open, closed Figure7Totals) string {
	var b strings.Builder
	b.WriteString("Figure 7: constant keywords (Extractocol / manual / auto)\n")
	fmt.Fprintf(&b, "  %-14s request %-14s response %s\n", "open-source", open.Request, open.Response)
	fmt.Fprintf(&b, "  %-14s request %-14s response %s\n", "closed-source", closed.Request, closed.Response)
	return b.String()
}

// Table2Stats aggregates matched-byte fractions for one corpus half.
type Table2Stats struct {
	Request  siglang.ByteStats
	Response siglang.ByteStats
}

// Table2 matches every app's signatures against its manual-fuzzing trace
// and aggregates the Rk/Rv/Rn byte fractions.
func Table2(results []*AppResult, openSource bool) Table2Stats {
	var t Table2Stats
	for _, r := range results {
		if r.App.Spec.OpenSource != openSource {
			continue
		}
		m := trace.MatchReport(r.Report, r.Manual)
		t.Request.Add(m.ReqStats)
		t.Response.Add(m.RespStats)
	}
	return t
}

// FormatTable2 renders matched byte fractions as percentages.
func FormatTable2(open, closed Table2Stats) string {
	var b strings.Builder
	b.WriteString("Table 2: matched byte count % (Rk/Rv/Rn)\n")
	p := func(name string, s Table2Stats) {
		rk, rv, rn := s.Request.Fractions()
		qk, qv, qn := s.Response.Fractions()
		fmt.Fprintf(&b, "  %-14s request %2.0f/%2.0f/%2.0f%%   response %2.0f/%2.0f/%2.0f%%\n",
			name, rk*100, rv*100, rn*100, qk*100, qv*100, qn*100)
	}
	p("open-source", open)
	p("closed-source", closed)
	return b.String()
}

// ValiditySummary aggregates signature validity (§5.1): every signature
// with observed traffic must match it.
type ValiditySummary struct {
	Apps            int
	SigsWithTraffic int
	SigsValid       int
	UnmatchedTraces int
	Pairs           int
}

// Validity computes signature-validity totals across the corpus.
func Validity(results []*AppResult) ValiditySummary {
	var v ValiditySummary
	for _, r := range results {
		v.Apps++
		m := trace.MatchReport(r.Report, r.Manual)
		v.SigsWithTraffic += m.SigsWithTraffic
		v.SigsValid += m.SigsValid
		v.UnmatchedTraces += len(m.Unmatched)
		v.Pairs += r.Report.PairCount()
	}
	return v
}

// Timing reports per-app analysis duration, sorted descending, and the
// open/closed averages (the paper: ~4 min open-source, 11 min - 3 h
// closed-source on their hardware; ours run on a simulator substrate, so
// only the relative shape is meaningful).
func Timing(results []*AppResult) string {
	type row struct {
		name string
		ms   int64
		open bool
	}
	var rows []row
	var openSum, closedSum, openN, closedN int64
	for _, r := range results {
		ms := r.Report.Duration.Microseconds()
		rows = append(rows, row{r.App.Spec.Name, ms, r.App.Spec.OpenSource})
		if r.App.Spec.OpenSource {
			openSum += ms
			openN++
		} else {
			closedSum += ms
			closedN++
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ms > rows[j].ms })
	var b strings.Builder
	b.WriteString("Analysis time (per app, microseconds):\n")
	for _, r := range rows {
		kind := "closed"
		if r.open {
			kind = "open"
		}
		fmt.Fprintf(&b, "  %-24s %8dus (%s)\n", r.name, r.ms, kind)
	}
	if openN > 0 && closedN > 0 {
		fmt.Fprintf(&b, "  mean: open-source %dus, closed-source %dus (ratio %.1fx)\n",
			openSum/openN, closedSum/closedN,
			float64(closedSum/closedN)/float64(openSum/openN))
	}
	return b.String()
}

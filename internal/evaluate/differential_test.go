package evaluate

import (
	"strings"
	"testing"

	"extractocol/internal/corpus"
)

// TestRunDifferentialSmallCorpus runs the full seven-axis harness over a
// small generated corpus — the same gate ci.sh runs at N=100, kept small
// enough for every `go test ./...`.
func TestRunDifferentialSmallCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes a generated corpus eight times")
	}
	res, err := RunDifferential(DiffConfig{Seed: 1729, N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Mismatches(); got != 0 {
		t.Fatalf("%d mismatches:\n%s", got, FormatDifferential(res))
	}
	if len(res.Axes) != 7 {
		t.Fatalf("%d axes, want 7", len(res.Axes))
	}
	if last := res.Axes[len(res.Axes)-1]; last.Name != "matchvm" {
		t.Fatalf("last axis = %s, want matchvm", last.Name)
	}
	if !strings.Contains(FormatDifferential(res), "OK: all axes byte-identical") {
		t.Error("formatter missing the OK verdict")
	}

	// The digest names the corpus: a second harness run must agree.
	again, err := RunDifferential(DiffConfig{Seed: 1729, N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != again.Digest {
		t.Errorf("digest not reproducible: %s vs %s", res.Digest, again.Digest)
	}
	other, err := RunDifferential(DiffConfig{Seed: 1730, N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest == other.Digest {
		t.Error("different seeds produced the same corpus digest")
	}
}

func TestRunDifferentialRejectsBadSize(t *testing.T) {
	if _, err := RunDifferential(DiffConfig{Seed: 1, N: 0}); err == nil {
		t.Fatal("accepted empty corpus")
	}
}

// TestCanonicalReportStripsRunLocals pins the comparison contract: two
// reports differing only in wall-clock duration and profile must
// canonicalize to the same bytes.
func TestCanonicalReportStripsRunLocals(t *testing.T) {
	apps := corpus.Rand(1729, 1)
	a, err := RunApp(apps[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunApp(apps[0])
	if err != nil {
		t.Fatal(err)
	}
	ca, err := CanonicalReport(a.Report)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := CanonicalReport(b.Report)
	if err != nil {
		t.Fatal(err)
	}
	if string(ca) != string(cb) {
		t.Error("re-analysis of one app canonicalizes differently")
	}
}

package evaluate

import (
	"fmt"
	"strings"

	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/obfuscate"
	"extractocol/internal/report"
	"extractocol/internal/siglang"
)

// Table3 reproduces the Radio reddit case study: six reconstructed
// transactions and the login -> vote/save dependency graph.
func Table3() (string, error) {
	app := corpus.RadioReddit()
	rep, err := core.Analyze(app.Prog, core.NewOptions())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Table 3: Radio reddit reconstructed transactions\n")
	b.WriteString(report.Text(rep))
	b.WriteString("\nDependency graph:\n")
	b.WriteString(report.DOT(rep))
	return b.String(), nil
}

// Table4 reproduces the TED case study: the ad chain, the DB-mediated
// dependencies and the media-player sinks.
func Table4() (string, error) {
	app := corpus.TED()
	rep, err := core.Analyze(app.Prog, core.NewOptions())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Table 4: TED selected transactions\n")
	for _, tx := range rep.Transactions {
		uri := siglang.RegexBody(tx.Request.URI)
		if !strings.Contains(uri, "ted\\.example") && !strings.Contains(uri, "facebook") && uri != ".*" &&
			!strings.Contains(uri, `(?:`) {
			continue
		}
		kind := "S"
		if uri == ".*" || strings.Contains(uri, `(?:`) {
			kind = "D"
		}
		fmt.Fprintf(&b, "  #%d (%s) %s %s", tx.ID, kind, tx.Request.Method, uri)
		if len(tx.Sinks) > 0 {
			fmt.Fprintf(&b, "  -> %s", strings.Join(tx.Sinks, ","))
		}
		b.WriteString("\n")
	}
	b.WriteString("Dependencies:\n")
	for _, d := range rep.Deps {
		fmt.Fprintf(&b, "  #%d.%s -> #%d.%s via %s\n", d.From, d.FromField, d.To, d.ToPart, d.Via)
	}
	return b.String(), nil
}

// Table5Row is one measured Kayak category.
type Table5Row struct {
	Method string
	Prefix string
	Count  int
}

// Table5 reproduces the Kayak API survey: the analysis scoped to com.kayak
// classes, grouped by URI prefix.
func Table5() ([]Table5Row, *core.Report, error) {
	app := corpus.Kayak()
	opts := core.NewOptions()
	opts.ScopePrefix = "com.kayak."
	rep, err := core.Analyze(app.Prog, opts)
	if err != nil {
		return nil, nil, err
	}
	var rows []Table5Row
	for _, g := range report.GroupByPrefix(rep) {
		rows = append(rows, Table5Row{Method: g.Method, Prefix: g.Prefix, Count: g.Count})
	}
	return rows, rep, nil
}

// FormatTable5 renders the category table.
func FormatTable5(rows []Table5Row, rep *core.Report) string {
	var b strings.Builder
	total := map[string]int{}
	for _, tx := range rep.Transactions {
		total[tx.Request.Method]++
	}
	fmt.Fprintf(&b, "Table 5: Kayak API summary (scoped to com.kayak): %d GET, %d POST\n",
		total["GET"], total["POST"])
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-6s %-28s %3d APIs\n", r.Method, r.Prefix, r.Count)
	}
	return b.String()
}

// Table6 extracts the three flight-search request signatures the paper
// lists, plus the app-specific User-Agent header.
func Table6() (string, error) {
	_, rep, err := Table5()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Table 6: selected Kayak request signatures\n")
	for _, tx := range rep.Transactions {
		uri := siglang.RegexBody(tx.Request.URI)
		interesting := strings.Contains(uri, "authajax") ||
			strings.Contains(uri, "flight/start") || strings.Contains(uri, "flight/poll")
		if !interesting {
			continue
		}
		fmt.Fprintf(&b, "  %s %s\n", tx.Request.Method, uri)
		if tx.Request.BodyKind != "" {
			fmt.Fprintf(&b, "    body: %s\n", siglang.RegexBody(tx.Request.Body))
		}
		for _, h := range tx.Request.Headers {
			fmt.Fprintf(&b, "    header %s: %s\n", h.Key, siglang.RegexBody(h.Val))
		}
	}
	return b.String(), nil
}

// ObfuscationCheck verifies the §5.1 claim: obfuscating an APK with a
// ProGuard-like renamer leaves Extractocol's output unchanged. It returns
// the number of open-source apps whose signature sets were identical.
func ObfuscationCheck() (identical, total int, err error) {
	for _, app := range corpus.OpenSource() {
		plain, aerr := core.Analyze(app.Prog, optionsFor(app))
		if aerr != nil {
			return 0, 0, fmt.Errorf("%s: %w", app.Spec.Name, aerr)
		}
		obf := mustApp(app.Spec.Name)
		obfuscate.Apply(obf.Prog, obfuscate.Options{KeepEntryPoints: true})
		after, aerr := core.Analyze(obf.Prog, optionsFor(app))
		if aerr != nil {
			return 0, 0, fmt.Errorf("%s (obfuscated): %w", app.Spec.Name, aerr)
		}
		total++
		if sigSet(plain) == sigSet(after) {
			identical++
		}
	}
	return identical, total, nil
}

func mustApp(name string) *corpus.App {
	a, err := corpus.ByName(name)
	if err != nil {
		panic(err)
	}
	return a
}

// sigSet canonicalizes a report's request signatures for comparison.
func sigSet(r *core.Report) string {
	var sigs []string
	for _, tx := range r.Transactions {
		sigs = append(sigs, tx.Request.Method+" "+siglang.Canon(tx.Request.URI)+" "+
			siglang.Canon(tx.Request.Body))
	}
	// Sort for set semantics.
	for i := 1; i < len(sigs); i++ {
		for j := i; j > 0 && sigs[j] < sigs[j-1]; j-- {
			sigs[j], sigs[j-1] = sigs[j-1], sigs[j]
		}
	}
	return strings.Join(sigs, "\n")
}

// DiodeSliceFraction measures the fraction of Diode's code contained in
// slices (the paper reports 6.3% for Fig. 3).
func DiodeSliceFraction() (float64, error) {
	app := corpus.Diode()
	rep, err := core.Analyze(app.Prog, optionsFor(app))
	if err != nil {
		return 0, err
	}
	return rep.SliceFraction, nil
}

// AsyncHeuristicAblation reproduces the §5.1 RRD observation: with the
// asynchronous-event heuristic disabled, keywords constructed in another
// handler are lost; enabling it recovers them. It returns the request
// keyword counts for the weather-notification-style flow under both
// settings.
func AsyncHeuristicAblation() (disabled, enabled int, err error) {
	app := mustApp("Weather Notification")
	for _, hops := range []int{0, 1} {
		opts := core.NewOptions()
		opts.MaxAsyncHops = hops
		rep, aerr := core.Analyze(app.Prog, opts)
		if aerr != nil {
			return 0, 0, aerr
		}
		kw := map[string]bool{}
		for _, tx := range rep.Transactions {
			for _, k := range siglang.Keywords(tx.Request.URI) {
				kw[k] = true
			}
			for _, k := range siglang.Keywords(tx.Request.Body) {
				kw[k] = true
			}
		}
		if hops == 0 {
			disabled = len(kw)
		} else {
			enabled = len(kw)
		}
	}
	return disabled, enabled, nil
}

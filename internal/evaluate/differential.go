package evaluate

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"extractocol/internal/core"
	"extractocol/internal/corpus"
	"extractocol/internal/fuzz"
	"extractocol/internal/obs"
	"extractocol/internal/report"
	"extractocol/internal/resultcache"
	"extractocol/internal/trace"
)

// Differential-testing harness: the seeded generative corpus (corpus.Rand)
// is run through every configuration that must not change analysis output —
// serial vs parallel fan-out, cold vs warm result cache, budgeted vs
// unbudgeted execution, and oracle vs inverted-index pairing — and every
// app's report is compared byte-for-byte against the serial baseline. A
// same-seed regeneration pass closes the loop: the corpus itself must be
// reproducible, not just the analysis of one in-memory instance of it.

// DiffConfig parameterizes one differential run.
type DiffConfig struct {
	// Seed and N select the generated corpus (corpus.Rand(Seed, N)).
	Seed uint64
	N    int
	// Workers is the parallel axis fan-out width (0 means one per CPU).
	Workers int
	// BudgetDeadline is the per-app deadline of the budgeted axis. It must
	// be generous: the axis asserts that merely enabling budget accounting
	// changes nothing, so a tripped budget is a mismatch, not noise.
	// 0 means one minute.
	BudgetDeadline time.Duration
	// Obs and Events attach live telemetry (registry exposition, event
	// stream) to every analysis the harness runs. Neither can affect the
	// compared bytes: CanonicalReport strips Duration and Profile, and the
	// harness itself is the regression gate proving that.
	Obs    *obs.Registry
	Events *obs.EventLog
}

// DiffMismatch is one app whose report diverged from the baseline.
type DiffMismatch struct {
	App    string `json:"app"`
	Detail string `json:"detail"`
}

// DiffAxis is the outcome of one equivalence axis.
type DiffAxis struct {
	Name       string         `json:"name"`
	Desc       string         `json:"desc"`
	Apps       int            `json:"apps"`
	WallNS     int64          `json:"wall_ns"`
	Mismatches []DiffMismatch `json:"mismatches,omitempty"`
}

// DiffResult is the full harness outcome for one seeded corpus.
type DiffResult struct {
	Seed uint64 `json:"seed"`
	N    int    `json:"n"`
	// Digest is the SHA-256 over every baseline report's canonical bytes
	// in corpus order — the cross-run identity of (seed, N, analysis).
	Digest string     `json:"digest"`
	Axes   []DiffAxis `json:"axes"`
}

// Mismatches sums divergences across every axis.
func (r *DiffResult) Mismatches() int {
	n := 0
	for _, a := range r.Axes {
		n += len(a.Mismatches)
	}
	return n
}

// CanonicalReport renders a report's comparison bytes: the text rendering
// followed by the JSON rendering, with the run-varying fields (wall-clock
// duration, per-phase profile) zeroed so two equivalent runs produce equal
// bytes. Diagnostics are kept — a budget trip must surface as a mismatch.
func CanonicalReport(rep *core.Report) ([]byte, error) {
	cp := *rep
	cp.Duration = 0
	cp.Profile = nil
	js, err := report.JSON(&cp)
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	b.WriteString(report.Text(&cp))
	b.WriteByte('\n')
	b.Write(js)
	return b.Bytes(), nil
}

// analyzeGen analyzes every generated app and returns canonical report
// bytes in corpus order. mutate (optional) adjusts each app's options
// before analysis; workers <= 1 forces the serial path.
func analyzeGen(apps []*corpus.App, workers int, mutate func(*corpus.App, *core.Options) error) ([][]byte, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(apps) {
		workers = len(apps)
	}
	outs := make([][]byte, len(apps))
	errs := make([]error, len(apps))
	run := func(i int) {
		app := apps[i]
		opts := optionsFor(app)
		if mutate != nil {
			if err := mutate(app, &opts); err != nil {
				errs[i] = fmt.Errorf("%s: %w", app.Spec.Name, err)
				return
			}
		}
		rep, err := core.Analyze(app.Prog, opts)
		if err != nil {
			errs[i] = fmt.Errorf("%s: %w", app.Spec.Name, err)
			return
		}
		outs[i], errs[i] = CanonicalReport(rep)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					run(i)
				}
			}()
		}
		for i := range apps {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	} else {
		for i := range apps {
			run(i)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// compareAxis diffs one axis' outputs against the baseline.
func compareAxis(apps []*corpus.App, baseline, got [][]byte, prefix string) []DiffMismatch {
	var out []DiffMismatch
	for i := range baseline {
		if d := diffBytes(baseline[i], got[i]); d != "" {
			out = append(out, DiffMismatch{App: apps[i].Spec.Name, Detail: prefix + d})
		}
	}
	return out
}

// diffBytes locates the first divergence; "" means equal.
func diffBytes(a, b []byte) string {
	if bytes.Equal(a, b) {
		return ""
	}
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	return fmt.Sprintf("reports diverge at byte %d (%d vs %d bytes): %q vs %q",
		i, len(a), len(b), diffWindow(a, i), diffWindow(b, i))
}

// diffWindow excerpts the bytes around the divergence point.
func diffWindow(b []byte, at int) string {
	lo := at - 20
	if lo < 0 {
		lo = 0
	}
	hi := at + 40
	if hi > len(b) {
		hi = len(b)
	}
	return string(b[lo:hi])
}

// RunDifferential generates the seeded corpus, analyzes it serially for the
// baseline, and replays it through every equivalence axis.
func RunDifferential(cfg DiffConfig) (*DiffResult, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("differential: corpus size must be positive, got %d", cfg.N)
	}
	if cfg.BudgetDeadline == 0 {
		cfg.BudgetDeadline = time.Minute
	}
	apps := corpus.Rand(cfg.Seed, cfg.N)

	// tel wraps an axis' option mutator so every analysis also carries the
	// run's telemetry hooks (no-ops when cfg.Obs/cfg.Events are nil). A live
	// -ops endpoint therefore sees the harness' collectors come and go.
	tel := func(mutate func(*corpus.App, *core.Options) error) func(*corpus.App, *core.Options) error {
		return func(app *corpus.App, opts *core.Options) error {
			opts.Obs = cfg.Obs
			opts.Events = cfg.Events
			if mutate == nil {
				return nil
			}
			return mutate(app, opts)
		}
	}

	baseline, err := analyzeGen(apps, 1, tel(nil))
	if err != nil {
		return nil, fmt.Errorf("differential baseline: %w", err)
	}
	h := sha256.New()
	for _, b := range baseline {
		h.Write(b)
	}
	res := &DiffResult{Seed: cfg.Seed, N: cfg.N, Digest: hex.EncodeToString(h.Sum(nil))}

	axis := func(name, desc string, f func() ([]DiffMismatch, error)) error {
		start := time.Now()
		mm, err := f()
		if err != nil {
			return fmt.Errorf("differential axis %s: %w", name, err)
		}
		res.Axes = append(res.Axes, DiffAxis{
			Name: name, Desc: desc, Apps: len(apps),
			WallNS: time.Since(start).Nanoseconds(), Mismatches: mm,
		})
		return nil
	}

	// Axis 1: same-seed regeneration. The corpus is rebuilt from scratch
	// and re-analyzed serially; any map-iteration or shared-state leak in
	// the generator shows up here before it can contaminate other axes.
	err = axis("regen", "same-seed regeneration, serial re-analysis", func() ([]DiffMismatch, error) {
		regen := corpus.Rand(cfg.Seed, cfg.N)
		got, err := analyzeGen(regen, 1, tel(nil))
		if err != nil {
			return nil, err
		}
		return compareAxis(apps, baseline, got, ""), nil
	})
	if err != nil {
		return nil, err
	}

	// Axis 2: serial vs parallel fan-out.
	err = axis("parallel", "worker fan-out vs serial baseline", func() ([]DiffMismatch, error) {
		got, err := analyzeGen(apps, cfg.Workers, tel(nil))
		if err != nil {
			return nil, err
		}
		return compareAxis(apps, baseline, got, ""), nil
	})
	if err != nil {
		return nil, err
	}

	// Axis 3: cold store then warm load through a persistent result cache.
	// The warm pass replays every report through the codec round-trip.
	err = axis("cache", "cold-store then warm-load result cache", func() ([]DiffMismatch, error) {
		dir, err := os.MkdirTemp("", "extractocol-diffcache-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cache, err := resultcache.Open(dir)
		if err != nil {
			return nil, err
		}
		withCache := func(app *corpus.App, opts *core.Options) error {
			key, err := resultcache.KeyForProgram(app.Prog, *opts)
			if err != nil {
				return err
			}
			opts.Cache = cache
			opts.CacheKey = key
			return nil
		}
		cold, err := analyzeGen(apps, 1, tel(withCache))
		if err != nil {
			return nil, err
		}
		mm := compareAxis(apps, baseline, cold, "cold: ")
		warm, err := analyzeGen(apps, 1, tel(withCache))
		if err != nil {
			return nil, err
		}
		return append(mm, compareAxis(apps, baseline, warm, "warm: ")...), nil
	})
	if err != nil {
		return nil, err
	}

	// Axis 4: budgeted vs unbudgeted. Budgets are generous by construction;
	// enabling the accounting machinery must not change a single byte, and
	// a tripped budget surfaces as report diagnostics — a mismatch.
	err = axis("budget", "generous budgets vs unbudgeted baseline", func() ([]DiffMismatch, error) {
		got, err := analyzeGen(apps, 1, tel(func(_ *corpus.App, opts *core.Options) error {
			opts.Deadline = cfg.BudgetDeadline
			opts.MaxSliceSteps = 1 << 40
			opts.MaxFixpointIters = 1 << 40
			return nil
		}))
		if err != nil {
			return nil, err
		}
		return compareAxis(apps, baseline, got, ""), nil
	})
	if err != nil {
		return nil, err
	}

	// Axis 5: pairing oracle vs inverted index, over the whole corpus.
	err = axis("pairing", "oracle pairwise-scan vs inverted-index pairing", func() ([]DiffMismatch, error) {
		got, err := analyzeGen(apps, 1, tel(func(_ *corpus.App, opts *core.Options) error {
			opts.PairingOracle = true
			return nil
		}))
		if err != nil {
			return nil, err
		}
		return compareAxis(apps, baseline, got, ""), nil
	})
	if err != nil {
		return nil, err
	}

	// Axis 6: legacy string/map taint replay vs dense interned path. Every
	// taint fixpoint (slicing and pairing flow checks) runs on the
	// pre-interning implementation; reports must be byte-identical.
	err = axis("legacysets", "legacy string/map taint sets vs dense bitsets", func() ([]DiffMismatch, error) {
		got, err := analyzeGen(apps, 1, tel(func(_ *corpus.App, opts *core.Options) error {
			opts.LegacySets = true
			return nil
		}))
		if err != nil {
			return nil, err
		}
		return compareAxis(apps, baseline, got, ""), nil
	})
	if err != nil {
		return nil, err
	}

	// Axis 7: interpretive signature matcher vs compiled sigvm bytecode.
	// Every app's signatures classify two traffic sources — the recorded
	// trace of a manual fuzz session and seeded labeled entries from
	// trace.RandEntries — through both backends (the VM under parallel
	// fan-out); the full classifications must be byte-identical, and the
	// interpretive verdicts must reproduce the regex-derived labels exactly.
	err = axis("matchvm", "interpretive matcher vs compiled sigvm bytecode", func() ([]DiffMismatch, error) {
		var out []DiffMismatch
		for i, app := range apps {
			aopts := optionsFor(app)
			aopts.Obs = cfg.Obs
			aopts.Events = cfg.Events
			rep, err := core.Analyze(app.Prog, aopts)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", app.Spec.Name, err)
			}
			n := app.NewNetwork()
			if _, err := fuzz.Run(app.Prog, n, fuzz.Manual); err != nil {
				return nil, fmt.Errorf("%s: %w", app.Spec.Name, err)
			}
			entries := trace.FromNetwork(n.Trace())
			recorded := len(entries)
			labeled := trace.RandEntries(cfg.Seed+uint64(i), rep, 50)
			entries = append(entries, trace.Entries(labeled)...)

			interp := trace.Classify(rep, entries, trace.ClassifyOptions{})
			vm := trace.Classify(rep, entries, trace.ClassifyOptions{VM: true, Workers: -1})
			ji, err := json.Marshal(interp)
			if err != nil {
				return nil, err
			}
			jv, err := json.Marshal(vm)
			if err != nil {
				return nil, err
			}
			if d := diffBytes(ji, jv); d != "" {
				out = append(out, DiffMismatch{App: app.Spec.Name, Detail: d})
				continue
			}
			for j, le := range labeled {
				if got := interp.Verdicts[recorded+j]; got != le.WantID {
					out = append(out, DiffMismatch{
						App: app.Spec.Name,
						Detail: fmt.Sprintf("labeled entry %d (%s %s): verdict %d, label %d",
							j, le.Method, le.URL, got, le.WantID),
					})
					break
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// FormatDifferential renders the per-axis table plus a verdict line.
func FormatDifferential(r *DiffResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Differential harness: seed %d, %d generated apps\n", r.Seed, r.N)
	fmt.Fprintf(&b, "Corpus report digest: %s\n", r.Digest)
	fmt.Fprintf(&b, "%-10s %-46s %6s %10s %10s\n", "Axis", "Checks", "Apps", "Wall(ms)", "Mismatch")
	for _, a := range r.Axes {
		fmt.Fprintf(&b, "%-10s %-46s %6d %10d %10d\n",
			a.Name, a.Desc, a.Apps, a.WallNS/1e6, len(a.Mismatches))
	}
	shown := 0
	for _, a := range r.Axes {
		for _, m := range a.Mismatches {
			if shown == 10 {
				b.WriteString("  ... further mismatches elided\n")
				return b.String()
			}
			fmt.Fprintf(&b, "  MISMATCH [%s] %s: %s\n", a.Name, m.App, m.Detail)
			shown++
		}
	}
	if n := r.Mismatches(); n == 0 {
		b.WriteString("OK: all axes byte-identical\n")
	} else {
		fmt.Fprintf(&b, "FAIL: %d mismatches\n", n)
	}
	return b.String()
}

package evaluate

import (
	"strings"
	"sync"
	"testing"
)

// results are computed once; the full corpus evaluation is the expensive
// fixture every test here shares.
var (
	resultsOnce sync.Once
	resultsAll  []*AppResult
	resultsErr  error
)

func allResults(t *testing.T) []*AppResult {
	t.Helper()
	resultsOnce.Do(func() { resultsAll, resultsErr = RunAll() })
	if resultsErr != nil {
		t.Fatal(resultsErr)
	}
	return resultsAll
}

func TestTable1CoversAllApps(t *testing.T) {
	rows := Table1(allResults(t))
	if len(rows) != 34 {
		t.Fatalf("rows = %d, want 34", len(rows))
	}
	text := FormatTable1(rows)
	for _, name := range []string{"Diode", "radio reddit", "TED", "KAYAK", "Pinterest"} {
		if !strings.Contains(text, name) {
			t.Errorf("Table 1 missing %s", name)
		}
	}
}

// The paper's headline: Extractocol provides higher coverage than dynamic
// fuzzing, and manual fuzzing beats automatic fuzzing.
func TestCoverageOrderingHolds(t *testing.T) {
	open := Figure6(allResults(t), true)
	closed := Figure6(allResults(t), false)

	if !(closed.URIs.E > closed.URIs.M && closed.URIs.M > closed.URIs.A) {
		t.Errorf("closed-source URI ordering violated: %+v", closed.URIs)
	}
	if !(open.URIs.E >= open.URIs.M && open.URIs.M >= open.URIs.A) {
		t.Errorf("open-source URI ordering violated: %+v", open.URIs)
	}
	// Closed-source advantage should be substantial (paper: 1058 vs 402
	// URIs, roughly 2.6x; shape: comfortably more than 1.5x).
	if float64(closed.URIs.E) < 1.5*float64(closed.URIs.M) {
		t.Errorf("Extractocol advantage too small: %d vs %d", closed.URIs.E, closed.URIs.M)
	}
}

func TestFigure7KeywordOrdering(t *testing.T) {
	closed := Figure7(allResults(t), false)
	if !(closed.Request.E > closed.Request.M && closed.Request.M > closed.Request.A) {
		t.Errorf("closed-source request keyword ordering violated: %+v", closed.Request)
	}
	// Paper: 7793 Extractocol vs 3507 manual-trace request keywords (2.2x).
	if float64(closed.Request.E) < 1.2*float64(closed.Request.M) {
		t.Errorf("keyword advantage too small: %+v", closed.Request)
	}
	open := Figure7(allResults(t), true)
	// Open source: Extractocol ~= source code truth, within one keyword of
	// manual traces (the paper's 144-of-145 RRD case).
	if open.Request.E < open.Request.M-2 {
		t.Errorf("open-source request keywords: %+v", open.Request)
	}
}

func TestTable2FractionsReasonable(t *testing.T) {
	for _, openSource := range []bool{true, false} {
		s := Table2(allResults(t), openSource)
		rk, rv, rn := s.Request.Fractions()
		if s.Request.Total() == 0 {
			t.Fatalf("no request bytes accounted (open=%v)", openSource)
		}
		// Paper: Rk+Rv covers >= 79% of request bytes for both halves.
		if rk+rv < 0.75 {
			t.Errorf("request Rk+Rv = %.2f (open=%v)", rk+rv, openSource)
		}
		_, _, respRn := s.Response.Fractions()
		if s.Response.Total() == 0 {
			t.Fatalf("no response bytes accounted (open=%v)", openSource)
		}
		// Responses contain unread keys: Rn must be nonzero but bounded.
		if respRn <= 0 || respRn > 0.8 {
			t.Errorf("response Rn = %.2f (open=%v)", respRn, openSource)
		}
		_ = rn
	}
}

func TestValiditySummary(t *testing.T) {
	v := Validity(allResults(t))
	if v.Apps != 34 {
		t.Fatalf("apps = %d", v.Apps)
	}
	if v.SigsValid != v.SigsWithTraffic {
		t.Errorf("invalid signatures: %d of %d", v.SigsWithTraffic-v.SigsValid, v.SigsWithTraffic)
	}
	// The paper reconstructs 971 pairs across its corpus; ours must be in
	// the hundreds as well.
	if v.Pairs < 400 {
		t.Errorf("pairs = %d, want several hundred", v.Pairs)
	}
}

func TestTable5KayakCategories(t *testing.T) {
	rows, rep, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	total := map[string]int{}
	for _, tx := range rep.Transactions {
		total[tx.Request.Method]++
	}
	if total["GET"] != 39 || total["POST"] != 7 {
		t.Fatalf("scoped Kayak = %d GET / %d POST, want 39/7", total["GET"], total["POST"])
	}
	// The ad library must be excluded by scoping.
	for _, tx := range rep.Transactions {
		if strings.Contains(tx.URIRegex(), "admarvel") {
			t.Fatal("external ad library leaked into scoped analysis")
		}
	}
	byPrefix := map[string]int{}
	for _, r := range rows {
		byPrefix[r.Method+" "+r.Prefix] += r.Count
	}
	if byPrefix["GET /trips/v2"] != 11 || byPrefix["GET /h/mobileapis"] != 12 {
		t.Fatalf("category counts wrong: %v", byPrefix)
	}
}

func TestTable6SignaturesPresent(t *testing.T) {
	text, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"authajax",
		"action=registerandroid&uuid=",
		"flight/start\\?cabin=",
		"flight/poll\\?searchid=",
		"User-Agent: kayakandroidphone/8\\.1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 6 missing %q:\n%s", want, text)
		}
	}
}

func TestObfuscationInvariance(t *testing.T) {
	identical, total, err := ObfuscationCheck()
	if err != nil {
		t.Fatal(err)
	}
	if total != 14 {
		t.Fatalf("total open-source apps = %d", total)
	}
	if identical != total {
		t.Errorf("only %d of %d apps invariant under obfuscation", identical, total)
	}
}

func TestAsyncHeuristicAblation(t *testing.T) {
	disabled, enabled, err := AsyncHeuristicAblation()
	if err != nil {
		t.Fatal(err)
	}
	if enabled <= disabled {
		t.Fatalf("heuristic gained nothing: disabled=%d enabled=%d", disabled, enabled)
	}
}

func TestDiodeSliceFractionSmall(t *testing.T) {
	frac, err := DiodeSliceFraction()
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports 6.3%; a generative corpus is denser in protocol
	// code, so just require a strict, informative fraction.
	if frac <= 0 || frac >= 0.95 {
		t.Fatalf("slice fraction = %.3f", frac)
	}
}

func TestCaseStudyRenderings(t *testing.T) {
	t3, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"api/login", "unsave", "vote", "modhash"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table 3 missing %q", want)
		}
	}
	t4, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"speakers\\.json", "android_ad\\.json", "media", "db:talks.thumbnail"} {
		if !strings.Contains(t4, want) {
			t.Errorf("Table 4 missing %q:\n%s", want, t4)
		}
	}
}

func TestTimingReport(t *testing.T) {
	out := Timing(allResults(t))
	if !strings.Contains(out, "mean:") {
		t.Fatalf("timing report incomplete:\n%s", out)
	}
}

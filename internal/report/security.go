package report

import (
	"sort"
	"strings"

	"extractocol/internal/core"
	"extractocol/internal/siglang"
)

// The security lens classifies each reconstructed transaction along two
// protocol-behavior axes the signatures already expose: the transport
// scheme (cleartext HTTP vs HTTPS) and the shape of request field keys
// (credential-shaped: tokens, passwords, API keys, session cookies;
// PII-shaped: email, phone, location, device identity). It is strictly
// opt-in (Options.Security); default reports render byte-identically to
// the historical output.

// Options selects optional report layers. The zero value reproduces the
// historical Text/JSON output byte-for-byte.
type Options struct {
	// Security annotates each transaction with its transport scheme and
	// any credential- or PII-shaped request field keys. Annotations render
	// only when non-empty: a cleartext transaction, or one carrying
	// sensitive-shaped keys.
	Security bool
}

// SecurityInfo is the lens verdict for one transaction.
type SecurityInfo struct {
	// Scheme is the request URI scheme ("http", "https"); empty when the
	// reconstructed URI has no absolute scheme prefix.
	Scheme string `json:"scheme,omitempty"`
	// Cleartext marks transactions sent over unencrypted HTTP.
	Cleartext bool `json:"cleartext,omitempty"`
	// CredentialKeys are request field keys shaped like secrets (token,
	// password, api_key, session id, auth headers), sorted.
	CredentialKeys []string `json:"credential_keys,omitempty"`
	// PIIKeys are request field keys shaped like personal data (email,
	// phone, location, device identity), sorted.
	PIIKeys []string `json:"pii_keys,omitempty"`
}

// credTokens and piiTokens classify one underscore/dash/dot-separated
// component of a field key. "api_key" is handled by the api+key pair rule
// in classifyKey, because a bare "key" component is too generic.
var credTokens = map[string]bool{
	"token": true, "auth": true, "authorization": true, "bearer": true,
	"secret": true, "password": true, "passwd": true, "pwd": true,
	"credential": true, "credentials": true, "session": true, "sid": true,
	"signature": true, "apikey": true, "cookie": true, "otp": true,
}

var piiTokens = map[string]bool{
	"email": true, "phone": true, "mobile": true, "address": true,
	"street": true, "city": true, "zip": true, "postal": true,
	"lat": true, "lon": true, "lng": true, "latitude": true,
	"longitude": true, "location": true, "gps": true, "device": true,
	"imei": true, "imsi": true, "ssn": true, "dob": true,
	"birthday": true, "gender": true,
}

// classifyKey reports whether a request field key is credential- or
// PII-shaped. Matching is per component, so "access_token", "session_id"
// and "X-Api-Key" classify without enumerating every compound.
func classifyKey(key string) (cred, pii bool) {
	parts := strings.FieldsFunc(strings.ToLower(key), func(r rune) bool {
		return r == '_' || r == '-' || r == '.'
	})
	hasAPI, hasKey := false, false
	for _, p := range parts {
		if credTokens[p] {
			cred = true
		}
		if piiTokens[p] {
			pii = true
		}
		if p == "api" {
			hasAPI = true
		}
		if p == "key" {
			hasKey = true
		}
	}
	if hasAPI && hasKey {
		cred = true
	}
	return cred, pii
}

// requestKeys collects every field key a transaction sends: URI query
// keys, body keys (query-string or JSON/XML), and header names.
func requestKeys(tx *core.Transaction) []string {
	set := map[string]bool{}
	for _, k := range siglang.Keywords(tx.Request.URI) {
		set[k] = true
	}
	if tx.Request.BodyKind != "" {
		for _, k := range siglang.Keywords(tx.Request.Body) {
			set[k] = true
		}
	}
	for _, h := range tx.Request.Headers {
		set[h.Key] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// txScheme extracts the URI scheme from the rendered regex (unescaping
// the regex quoting first, as GroupByPrefix does).
func txScheme(tx *core.Transaction) string {
	s := strings.NewReplacer(`\.`, ".", `\?`, "?", `\/`, "/").
		Replace(siglang.RegexBody(tx.Request.URI))
	switch {
	case strings.HasPrefix(s, "https://"):
		return "https"
	case strings.HasPrefix(s, "http://"):
		return "http"
	default:
		return ""
	}
}

// SecurityFor runs the lens over one transaction. It returns nil when
// there is nothing to report — encrypted transport and no sensitive-shaped
// keys — so both renderers emit annotations only when non-empty.
func SecurityFor(tx *core.Transaction) *SecurityInfo {
	info := &SecurityInfo{Scheme: txScheme(tx)}
	info.Cleartext = info.Scheme == "http"
	for _, k := range requestKeys(tx) {
		cred, pii := classifyKey(k)
		if cred {
			info.CredentialKeys = append(info.CredentialKeys, k)
		}
		if pii {
			info.PIIKeys = append(info.PIIKeys, k)
		}
	}
	if !info.Cleartext && len(info.CredentialKeys) == 0 && len(info.PIIKeys) == 0 {
		return nil
	}
	return info
}

// securityLine renders the lens verdict as one text-report line body.
func securityLine(info *SecurityInfo) string {
	var parts []string
	if info.Cleartext {
		parts = append(parts, "cleartext http")
	}
	if len(info.CredentialKeys) > 0 {
		parts = append(parts, "credential keys: "+strings.Join(info.CredentialKeys, ", "))
	}
	if len(info.PIIKeys) > 0 {
		parts = append(parts, "pii keys: "+strings.Join(info.PIIKeys, ", "))
	}
	return strings.Join(parts, "; ")
}

package report

import (
	"encoding/json"
	"strings"
	"testing"

	"extractocol/internal/core"
	"extractocol/internal/corpus"
)

func rrReport(t *testing.T) *core.Report {
	t.Helper()
	app := corpus.RadioReddit()
	rep, err := core.Analyze(app.Prog, core.NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestTextContainsTransactionsAndDeps(t *testing.T) {
	text := Text(rrReport(t))
	for _, want := range []string{
		"radio reddit",
		"ssl\\.reddit\\.com/api/login",
		"api/vote",
		"response field modhash",
		"header Cookie",
		"response goes to: media",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q", want)
		}
	}
}

func TestJSONIsValidAndComplete(t *testing.T) {
	rep := rrReport(t)
	data, err := JSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	txs, ok := v["transactions"].([]any)
	if !ok || len(txs) != len(rep.Transactions) {
		t.Fatalf("transactions = %v", v["transactions"])
	}
	if _, hasDeps := v["dependencies"]; !hasDeps {
		t.Fatal("dependencies missing")
	}
}

func TestDOTWellFormed(t *testing.T) {
	dot := DOT(rrReport(t))
	if !strings.HasPrefix(dot, "digraph transactions {") || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Fatalf("malformed DOT:\n%s", dot)
	}
	if !strings.Contains(dot, "->") {
		t.Fatal("DOT has no edges")
	}
	if !strings.Contains(dot, "media") {
		t.Fatal("DOT missing media sink edge")
	}
}

func TestGroupByPrefixKayak(t *testing.T) {
	app := corpus.Kayak()
	opts := core.NewOptions()
	opts.ScopePrefix = "com.kayak."
	rep, err := core.Analyze(app.Prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	groups := GroupByPrefix(rep)
	byPrefix := map[string]int{}
	for _, g := range groups {
		byPrefix[g.Method+" "+g.Prefix] += g.Count
	}
	if byPrefix["GET /trips/v2"] != 11 {
		t.Errorf("trips/v2 = %d, want 11", byPrefix["GET /trips/v2"])
	}
	if byPrefix["POST /k/authajax"] != 2 {
		t.Errorf("authajax = %d, want 2", byPrefix["POST /k/authajax"])
	}
	if byPrefix["GET /h/mobileapis"] != 12 {
		t.Errorf("mobileapis = %d, want 12", byPrefix["GET /h/mobileapis"])
	}
}
